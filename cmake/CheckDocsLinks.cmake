# Dead-link check for the markdown docs: every relative link target in
# README.md, docs/*.md and tests/README.md must exist on disk. External
# (http/https/mailto) and intra-page (#anchor) links are skipped; anchors on
# relative links are stripped before the existence check.
#
#   cmake -DREPO_ROOT=/path/to/repo -P cmake/CheckDocsLinks.cmake
if(NOT REPO_ROOT)
  message(FATAL_ERROR "pass -DREPO_ROOT=<repository root>")
endif()

file(GLOB md_files
  ${REPO_ROOT}/README.md
  ${REPO_ROOT}/docs/*.md
  ${REPO_ROOT}/tests/README.md)

set(dead_links "")
set(checked 0)
foreach(md ${md_files})
  file(READ ${md} content)
  # Semicolons in the prose break list splitting, and a literal "]" in a
  # list element breaks it too (unbalanced-bracket quoting) — so drop the
  # semicolons and rewrite the "](" link marker to a bracket-free sentinel
  # before matching.
  string(REPLACE ";" " " content "${content}")
  string(REPLACE "](" "\nLINK->(" content "${content}")
  get_filename_component(base ${md} DIRECTORY)
  file(RELATIVE_PATH md_rel ${REPO_ROOT} ${md})
  # [text](target) markdown links.
  string(REGEX MATCHALL "LINK->\\(([^)\n]+)\\)" links "${content}")
  foreach(link ${links})
    string(REGEX REPLACE "^LINK->\\((.*)\\)$" "\\1" target "${link}")
    if(target MATCHES "^[a-zA-Z][a-zA-Z0-9+.-]*:" OR target MATCHES "^#")
      continue()  # external scheme or intra-page anchor
    endif()
    string(REGEX REPLACE "#[^#]*$" "" target "${target}")
    if(target STREQUAL "")
      continue()
    endif()
    math(EXPR checked "${checked} + 1")
    if(NOT EXISTS ${base}/${target})
      list(APPEND dead_links "  ${md_rel}: (${target})")
    endif()
  endforeach()
endforeach()

if(dead_links)
  list(JOIN dead_links "\n" pretty)
  message(FATAL_ERROR "dead relative links in the docs:\n${pretty}")
endif()
list(LENGTH md_files file_count)
message(STATUS "docs links OK: ${checked} relative link(s) across ${file_count} file(s)")
