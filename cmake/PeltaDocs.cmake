# Docs-as-code checks.
#
# pelta_add_docs_checks(<markdown files...>)
#   * extracts every fenced ```cpp block into its own translation unit under
#     ${CMAKE_BINARY_DIR}/docs_snippets/ and compiles them all as the
#     `docs_snippets` object target (compile-only, no link) — a C++ snippet
#     in the docs that stops compiling breaks the `docs` CTest label and the
#     CI docs job instead of rotting silently. Snippets must therefore be
#     self-contained TUs (include their own headers); illustrative
#     fragments that are not meant to compile use a different fence tag.
#   * registers `docs_links` (cmake/CheckDocsLinks.cmake), which fails on
#     dead relative links in the given files.
# Both tests carry the `docs` label: `ctest -L docs`.
function(pelta_add_docs_checks)
  set(snippet_dir ${CMAKE_BINARY_DIR}/docs_snippets)
  file(MAKE_DIRECTORY ${snippet_dir})
  set(snippet_sources "")

  foreach(md ${ARGN})
    # Re-run configure when a doc changes, so snippets stay in sync.
    set_property(DIRECTORY APPEND PROPERTY CMAKE_CONFIGURE_DEPENDS ${md})
    file(READ ${md} content)
    # Newline-split with the usual semicolon dance; square brackets must be
    # hidden too, or CMake's unbalanced-bracket list quoting fuses lines
    # (e.g. a lambda capture split across lines). Blank lines are dropped
    # by list iteration, which is harmless for compilation.
    string(REPLACE ";" "<SEMI>" content "${content}")
    string(REPLACE "[" "<LBRK>" content "${content}")
    string(REPLACE "]" "<RBRK>" content "${content}")
    string(REPLACE "\n" ";" lines "${content}")
    get_filename_component(stem ${md} NAME_WE)
    string(TOLOWER ${stem} stem)

    set(in_block FALSE)
    set(block "")
    set(index 0)
    foreach(line IN LISTS lines)
      string(REPLACE "<SEMI>" ";" line "${line}")
      string(REPLACE "<LBRK>" "[" line "${line}")
      string(REPLACE "<RBRK>" "]" line "${line}")
      if(in_block)
        if(line MATCHES "^```")
          math(EXPR index "${index} + 1")
          set(out ${snippet_dir}/${stem}_snippet_${index}.cpp)
          set(existing "")
          if(EXISTS ${out})
            file(READ ${out} existing)
          endif()
          if(NOT existing STREQUAL block)  # don't dirty unchanged snippets
            file(WRITE ${out} "${block}")
          endif()
          list(APPEND snippet_sources ${out})
          set(in_block FALSE)
          set(block "")
        else()
          string(APPEND block "${line}\n")
        endif()
      elseif(line MATCHES "^```cpp")
        set(in_block TRUE)
      endif()
    endforeach()
    if(in_block)
      message(FATAL_ERROR "${md}: unterminated \`\`\`cpp fence")
    endif()
  endforeach()

  if(snippet_sources)
    list(LENGTH snippet_sources snippet_count)
    message(STATUS "docs: ${snippet_count} \`\`\`cpp snippet(s) -> docs_snippets target")
    # Object library: compiles every snippet TU, links nothing — the
    # cheapest possible "does the documented code still build" smoke.
    add_library(docs_snippets OBJECT EXCLUDE_FROM_ALL ${snippet_sources})
    target_include_directories(docs_snippets PRIVATE
      ${CMAKE_SOURCE_DIR}/src
      ${CMAKE_BINARY_DIR}/src/include)  # generated core/version.h
    target_link_libraries(docs_snippets PRIVATE pelta_build_flags)
    add_test(NAME docs_snippets_build
      COMMAND ${CMAKE_COMMAND} --build ${CMAKE_BINARY_DIR} --target docs_snippets)
    set_tests_properties(docs_snippets_build PROPERTIES LABELS docs TIMEOUT 600)
  endif()

  add_test(NAME docs_links
    COMMAND ${CMAKE_COMMAND} -DREPO_ROOT=${CMAKE_SOURCE_DIR}
            -P ${CMAKE_SOURCE_DIR}/cmake/CheckDocsLinks.cmake)
  set_tests_properties(docs_links PROPERTIES LABELS docs TIMEOUT 60)
endfunction()
