# pelta_add_test(<name> LABEL <unit|integration|property> [<extra>...]
#                TIMEOUT <sec> [PER_BINARY])
#
# Builds tests/<name>.cpp into a gtest binary linked against pelta::pelta
# and registers it with CTest. By default individual cases are discovered
# via gtest_discover_tests so `ctest -j` parallelises across cases. Pass
# PER_BINARY for fixture-heavy suites: the whole binary registers as one
# CTest test, so per-case process spawns don't re-pay expensive setup
# (training tiny victim models) 5-20x over — this is what keeps
# `ctest -L unit` a sub-minute inner loop on a single core.
#
# LABEL takes the primary label plus optional extras (e.g. `concurrency`,
# which scopes the ThreadSanitizer CI leg to the pool/async suites).
function(pelta_add_test name)
  cmake_parse_arguments(ARG "PER_BINARY" "TIMEOUT" "LABEL" ${ARGN})
  if(NOT ARG_LABEL OR NOT ARG_TIMEOUT)
    message(FATAL_ERROR "pelta_add_test(${name}) requires LABEL and TIMEOUT")
  endif()

  add_executable(${name} ${name}.cpp)
  target_link_libraries(${name} PRIVATE pelta::pelta GTest::gtest_main pelta_build_flags)

  # Sanitized builds run ~10x slower; scale the timeouts, don't fail on them.
  if(PELTA_SANITIZE)
    math(EXPR ARG_TIMEOUT "${ARG_TIMEOUT} * 10")
  endif()

  if(ARG_PER_BINARY)
    add_test(NAME ${name} COMMAND ${name})
    set_tests_properties(${name} PROPERTIES LABELS "${ARG_LABEL}" TIMEOUT ${ARG_TIMEOUT})
  else()
    gtest_discover_tests(${name}
      PROPERTIES LABELS "${ARG_LABEL}" TIMEOUT ${ARG_TIMEOUT}
      DISCOVERY_TIMEOUT 60)
  endif()
endfunction()
