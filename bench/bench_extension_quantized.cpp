// Extension bench: where may the int8 path run in a *shielded* deployment?
//
// PELTA's shield hides the model's lower layers inside the enclave; the
// serving stack quantizes for throughput. That leaves a placement choice:
//   1. fp32 victim                — baseline (no quantization anywhere)
//   2. int8, masked layers fp32   — quantize_model's default policy: every
//                                   layer up to the shield frontier stays
//                                   fp32, only the exposed tail is int8
//   3. int8 everywhere            — quantize_all: the masked layers are
//                                   quantized too
// each evaluated for clean accuracy, white-box PGD (attacker differentiates
// the deployed network itself — through the int8 stages via their
// straight-through BPDA backward) and shielded PGD (the paper's attacker:
// masked prefix replaced by a random-kernel substitute).
//
// Expected shape: quantization is accuracy- and security-neutral — clean
// accuracy within a point of fp32, shielded robust accuracy far above the
// white-box floor for BOTH int8 arms. The shield's protection comes from
// hiding parameters, not from fp32 precision, so the placement choice is
// free to follow systems concerns (keep masked layers fp32 for exactness
// inside the enclave, quantize the exposed tail for throughput).
#include <chrono>

#include "attacks/runner.h"
#include "bench/common.h"
#include "core/table.h"
#include "models/compiler.h"
#include "models/mlp.h"

namespace {

double now_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct arm_eval {
  const char* name;
  float clean = 0.0f;
  float white_box = 0.0f;
  float shielded = 0.0f;
  double eval_wall_s = 0.0;
};

}  // namespace

int main() {
  using namespace pelta;
  const bench::scale s;
  s.print("Extension — int8 placement vs shield: masked layers fp32 or quantized");

  const data::dataset ds = bench::make_scaled_dataset("cifar10_like", s);
  const attacks::suite_params params = attacks::params_for_dataset("cifar10_like");

  models::mlp_config mc;
  mc.name = "mlp-victim";
  mc.image_size = ds.config().image_size;
  mc.channels = ds.config().channels;
  mc.hidden = {128, 64};
  mc.classes = ds.config().classes;
  mc.seed = s.seed;
  models::mlp_model victim{mc};
  models::train_config tc;
  tc.epochs = s.epochs;
  tc.batch_size = 32;
  tc.lr = 3e-3f;
  tc.seed = s.seed + 1;
  tc.shards = s.shards;
  const models::train_report tr = models::train_model(victim, ds, tc);
  std::printf("  trained %s clean=%5.1f%% (loss %.3f)\n\n", mc.name.c_str(),
              100.0 * tr.test_accuracy, tr.final_loss);

  // Calibration shard: a held-out slice of the training set, never the
  // attack pool (which is drawn from test data).
  std::vector<std::int64_t> calib_idx(64);
  for (std::size_t i = 0; i < calib_idx.size(); ++i)
    calib_idx[i] = static_cast<std::int64_t>(i) % ds.train_images().size(0);
  const tensor calib = ds.gather_train(calib_idx).images;

  models::quantize_report keep_report;
  const auto q_keep = models::quantize_model(victim, calib, {}, &keep_report);
  models::quantize_options all_opts;
  all_opts.quantize_all = true;
  models::quantize_report all_report;
  const auto q_all = models::quantize_model(victim, calib, all_opts, &all_report);
  std::printf("  default policy: %zu int8 / %zu fp32 stages\n", keep_report.stages_quantized,
              keep_report.stages_fp32);
  std::printf("  quantize_all:   %zu int8 / %zu fp32 stages\n\n", all_report.stages_quantized,
              all_report.stages_fp32);

  arm_eval arms[] = {{"fp32 victim"}, {"int8, masked layers fp32"}, {"int8 everywhere"}};
  const models::model* deployed[] = {&victim, q_keep.get(), q_all.get()};
  for (std::size_t a = 0; a < 3; ++a) {
    const models::model& m = *deployed[a];
    const double t0 = now_s();
    arms[a].clean = models::accuracy(m, ds.test_images(), ds.test_labels());
    arms[a].eval_wall_s = now_s() - t0;
    arms[a].white_box = attacks::evaluate_attack(m, ds, attacks::attack_kind::pgd, params,
                                                 attacks::clear_oracle_factory(m), s.samples,
                                                 s.seed)
                            .robust_accuracy;
    arms[a].shielded = attacks::evaluate_attack(m, ds, attacks::attack_kind::pgd, params,
                                                attacks::shielded_oracle_factory(m), s.samples,
                                                s.seed)
                           .robust_accuracy;
  }

  text_table t;
  t.set_header({"Deployment arm", "Clean", "White-box PGD", "Shielded PGD", "Eval wall"});
  for (const arm_eval& a : arms)
    t.add_row({a.name, pct(a.clean), pct(a.white_box), pct(a.shielded),
               std::to_string(a.eval_wall_s * 1e3).substr(0, 6) + " ms"});
  std::printf("%s\n", t.to_string().c_str());

  // Gates. Clean-accuracy parity for the default placement mirrors the
  // test-suite bound; the security shape must hold for both int8 arms —
  // if quantizing the masked layers *helped* the attacker, placement would
  // stop being a pure systems choice and this bench is the tripwire.
  const bool accuracy_holds = arms[1].clean >= arms[0].clean - 0.01f - 1e-6f;
  const bool shield_holds = arms[1].shielded >= arms[1].white_box &&
                            arms[2].shielded >= arms[2].white_box &&
                            arms[1].shielded >= arms[0].shielded - 0.1f - 1e-6f &&
                            arms[2].shielded >= arms[0].shielded - 0.1f - 1e-6f;
  std::printf("clean-accuracy parity (default placement): %s\n",
              accuracy_holds ? "HOLDS" : "VIOLATED");
  std::printf("shield neutrality (both int8 arms):        %s\n\n",
              shield_holds ? "HOLDS" : "VIOLATED");

  bench::json record = bench::json::object();
  record.field("bench", "extension_quantized")
      .field("model", mc.name)
      .field("samples", s.samples)
      .field("stages_quantized_default", keep_report.stages_quantized)
      .field("stages_fp32_default", keep_report.stages_fp32)
      .field("stages_quantized_all", all_report.stages_quantized);
  bench::json arm_list = bench::json::array();
  for (const arm_eval& a : arms) {
    bench::json e = bench::json::object();
    e.field("arm", a.name)
        .field("clean_accuracy", static_cast<double>(a.clean))
        .field("white_box_pgd_robust", static_cast<double>(a.white_box))
        .field("shielded_pgd_robust", static_cast<double>(a.shielded))
        .field("eval_wall_s", a.eval_wall_s);
    arm_list.push(e);
  }
  record.field("arms", arm_list)
      .field("clean_accuracy_parity", accuracy_holds)
      .field("shield_neutrality", shield_holds);
  record.write_file("BENCH_extension_quantized.json");

  std::printf("Reading: the shield's robustness is indifferent to where int8 runs —\n"
              "its security comes from hiding the masked layers, not their precision.\n"
              "Keep the enclave side fp32 for exactness; quantize the exposed tail.\n");
  return (accuracy_holds && shield_holds) ? 0 : 1;
}
