// Extension bench (§VII future work (i)): how much prior knowledge of the
// shielded frontier does an attacker need?
//
// PELTA hides only the shallow frontier; the deep layers are clear. An
// attacker therefore assembles substitute = [frontier prior] + [victim's
// clear deep layers] and runs plain white-box PGD on it. Tiers:
//
//   open     — no shield at all (attacker reference point)
//   exact    — frontier prior equals the victim's weights: the "commonly
//              used embedding matrices" case the paper warns about
//   related  — frontier from a same-architecture model trained on public
//              data of the same family
//   none     — random re-initialization at matched statistics (the paper's
//              default no-priors threat model)
//
// Expected shape: robust accuracy ordered open ≈ exact << none, with
// related in between — i.e. the defense degrades exactly as fast as the
// attacker's prior improves, so the defender must train its own first
// parameters (the paper's prescription).
#include "attacks/priors.h"
#include "bench/common.h"
#include "core/table.h"

int main() {
  using namespace pelta;
  const bench::scale s;
  s.print("Extension — frontier priors (shared embeddings) vs PELTA");

  const data::dataset ds = bench::make_scaled_dataset("cifar10_like", s);
  // Public data of the same family: same generator, different draw — what a
  // non-federation attacker could gather on their own.
  data::dataset_config pub_cfg = ds.config();
  pub_cfg.seed = ds.config().seed + 9999;
  const data::dataset public_ds{pub_cfg};

  const attacks::suite_params params = attacks::params_for_dataset("cifar10_like");

  bool all_hold = true;
  for (const char* name : {"ViT-B/16", "BiT-M-R101x3"}) {
    auto victim = bench::train_zoo_model(name, ds, s);

    models::task_spec task;
    task.image_size = ds.config().image_size;
    task.channels = ds.config().channels;
    task.classes = ds.config().classes;
    task.seed = s.seed + 555;  // the attacker's own initialization

    // Related-tier prior source: the attacker trains the same architecture
    // on the public data (one full training run, as §IV-C prices it).
    auto prior_source = bench::train_zoo_model(name, public_ds, s);

    const attacks::robust_eval open =
        attacks::evaluate_attack(*victim, ds, attacks::attack_kind::pgd, params,
                                 attacks::clear_oracle_factory(*victim), s.samples, s.seed);

    const auto run_tier = [&](attacks::prior_tier tier,
                              const models::model* source) -> attacks::robust_eval {
      auto substitute = models::make_model(name, task);
      attacks::prior_attack_config cfg;
      cfg.tier = tier;
      cfg.prior_source = source;
      cfg.seed = s.seed + 17;
      return attacks::evaluate_prior_attack(*victim, *substitute, cfg, ds, params, s.samples,
                                            s.seed);
    };

    const attacks::robust_eval exact = run_tier(attacks::prior_tier::exact, nullptr);
    const attacks::robust_eval related =
        run_tier(attacks::prior_tier::related, prior_source.get());
    const attacks::robust_eval none = run_tier(attacks::prior_tier::none, nullptr);

    text_table t;
    t.set_header({"Attacker prior on the frontier", "Robust accuracy", "Attacker cost"});
    t.add_row({"open white box (no shield)", pct(open.robust_accuracy), "-"});
    t.add_row({attacks::prior_tier_name(attacks::prior_tier::exact), pct(exact.robust_accuracy),
               "download public weights"});
    t.add_row({attacks::prior_tier_name(attacks::prior_tier::related),
               pct(related.robust_accuracy), "one training run on public data"});
    t.add_row({attacks::prior_tier_name(attacks::prior_tier::none), pct(none.robust_accuracy),
               "none"});
    std::printf("\n== %s ==\n%s", name, t.to_string().c_str());

    const bool holds = exact.robust_accuracy <= open.robust_accuracy + 0.15f &&
                       none.robust_accuracy >= exact.robust_accuracy + 0.3f &&
                       related.robust_accuracy <= none.robust_accuracy + 0.1f;
    std::printf("shape check for %s: %s\n\n", name, holds ? "HOLDS" : "VIOLATED");
    all_hold = all_hold && holds;
  }

  std::printf("Reading: PELTA's secrecy is only as good as the frontier's novelty.\n"
              "A defender who re-uses a public pretrained embedding hands the\n"
              "attacker the enclave contents; training private first layers (even\n"
              "briefly) restores the defense — the paper's §VII prescription.\n");
  return all_hold ? 0 : 1;
}
