// Extension bench: the adversarial-transfer matrix the ensemble defense
// rests on (§V-A2, refs [43], [44]).
//
// "Generally, when dealing with the image classification task, adversarial
// examples do not transfer well between attention based and CNN based
// models" — that is the entire premise of the paper's random-selection
// ensemble (and of Table IV's ≈50 % one-member-shielded signature). This
// bench validates that our simulator actually reproduces the effect
// instead of assuming it: PGD examples are crafted white-box on an
// attacker model (rows) and replayed on a victim (columns), for two
// transformer-family and two CNN-family defenders.
//
// Expected shape: the diagonal (white box) collapses to ≈0 % robust
// accuracy, and cross-family transfer is weak (high robust accuracy) —
// the [44] observation our frequency-banded dataset signatures are
// calibrated to reproduce (DESIGN.md §4), and the only premise Table IV
// actually needs. (At simulator scale even *within*-family transfer is
// weak — tiny models overfit model-specific attack directions — so the
// within-vs-cross gap is reported but not asserted beyond consistency.)
#include "attacks/bpda.h"
#include "bench/common.h"
#include "core/table.h"

int main() {
  using namespace pelta;
  const bench::scale s;
  s.print("Extension — cross-family adversarial transfer matrix");

  const data::dataset ds = bench::make_scaled_dataset("cifar10_like", s);
  const attacks::suite_params params = attacks::params_for_dataset("cifar10_like");

  const char* names[] = {"ViT-B/16", "ViT-B/32", "ResNet-56", "BiT-M-R101x3"};
  const bool is_vit[] = {true, true, false, false};
  constexpr std::size_t n = 4;

  std::vector<std::unique_ptr<models::model>> zoo;
  for (const char* name : names) zoo.push_back(bench::train_zoo_model(name, ds, s));
  std::printf("\n");

  // robust[attacker][victim]
  float robust[n][n];
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t v = 0; v < n; ++v) {
      const attacks::robust_eval r = attacks::evaluate_transfer_attack(
          *zoo[v], *zoo[a], ds, params, s.samples, s.seed + static_cast<std::uint64_t>(a * n + v));
      robust[a][v] = r.robust_accuracy;
    }

  text_table t;
  t.set_header({"crafted on \\ replayed on", names[0], names[1], names[2], names[3]});
  for (std::size_t a = 0; a < n; ++a) {
    std::vector<std::string> row{names[a]};
    for (std::size_t v = 0; v < n; ++v) row.push_back(pct(robust[a][v]));
    t.add_row(std::move(row));
  }
  std::printf("Victim robust accuracy under transferred PGD (higher = transfer failed):\n%s",
              t.to_string().c_str());

  float diag = 0.0f, within = 0.0f, cross = 0.0f;
  std::int64_t n_within = 0, n_cross = 0;
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t v = 0; v < n; ++v) {
      if (a == v) {
        diag += robust[a][v] / static_cast<float>(n);
      } else if (is_vit[a] == is_vit[v]) {
        within += robust[a][v];
        ++n_within;
      } else {
        cross += robust[a][v];
        ++n_cross;
      }
    }
  within /= static_cast<float>(n_within);
  cross /= static_cast<float>(n_cross);

  std::printf("\nmean robust accuracy: white box %s | within family %s | cross family %s\n",
              pct(diag).c_str(), pct(within).c_str(), pct(cross).c_str());
  const bool holds = diag < 0.1f && cross > 0.7f && cross > within - 0.05f;
  std::printf("paper-shape check (diagonal falls; cross-family transfer is poor): %s\n",
              holds ? "HOLDS" : "VIOLATED");
  std::printf("\nReading: the ensemble defense of §V-A2 only works because a sample\n"
              "crafted against one family rarely defeats the other — measured here\n"
              "rather than assumed. Our synthetic datasets reproduce the effect by\n"
              "carrying each family's non-robust feature in a disjoint frequency\n"
              "band (DESIGN.md §4).\n");
  return holds ? 0 : 1;
}
