// Extension bench (§II related work, quantified): the defense matrix.
//
// DarkneTZ / PPFL / GradSec shield ∇θL against *inversion* (parameter
// gradients leak private training data); PELTA shields ∇ₓL against
// *evasion*. The paper contrasts the two in prose — this bench puts
// numbers on the full matrix using the §III plain DNN, whose affine first
// layer admits an exact analytic inversion (∇W₁ = xᵀδ, ∇b₁ = δ):
//
//                       inversion quality     evasion success (PGD)
//   no shield                 ≈ 1                    ≈ 1
//   param-gradient shield     0 (blocked)            ≈ 1   <- §II's point
//   PELTA                     0 (frontier covers     ≈ 0   <- the paper's
//                              the first layer)             contribution
//
// The lower-left zero is an observation the paper only hints at: PELTA's
// frontier necessarily contains the first layer's parameters, which are
// exactly the analytically-invertible ones — so the two defense families
// overlap at the strongest leak even though their goals differ.
#include "attacks/inversion.h"
#include "bench/common.h"
#include "core/table.h"
#include "models/trainer.h"

int main() {
  using namespace pelta;
  const bench::scale s;
  s.print("Extension — §II defense matrix (inversion vs evasion)");

  const data::dataset ds = bench::make_scaled_dataset("cifar10_like", s);

  models::mlp_config mc;
  mc.name = "DNN (3-layer MLP, §III)";
  mc.image_size = ds.config().image_size;
  mc.channels = ds.config().channels;
  mc.hidden = {64, 32};
  mc.classes = ds.config().classes;
  mc.seed = s.seed;
  models::mlp_model mlp{mc};
  models::train_config tc;
  tc.epochs = 4 * s.epochs;  // the raw-pixel MLP needs more passes than the ViT
  tc.batch_size = 16;
  tc.lr = 3e-3f;
  tc.seed = s.seed + 1;
  tc.shards = s.shards;
  const models::train_report tr = models::train_model(mlp, ds, tc);
  std::printf("  trained %s: clean=%5.1f%%\n\n", mlp.name().c_str(), 100.0 * tr.test_accuracy);

  const attacks::suite_params params = attacks::params_for_dataset("cifar10_like");
  const std::int64_t inv_samples = std::min<std::int64_t>(s.samples, ds.test_size());

  struct row {
    attacks::observation_policy policy;
    attacks::oracle_factory factory;
  };
  const models::mlp_model* mp = &mlp;
  const row rows[] = {
      {attacks::observation_policy::clear, attacks::clear_oracle_factory(mlp)},
      {attacks::observation_policy::param_gradient,
       [mp](std::uint64_t) { return attacks::make_param_shield_oracle(*mp); }},
      {attacks::observation_policy::pelta, attacks::shielded_oracle_factory(mlp)},
  };

  text_table t;
  t.set_header({"Observation policy", "Inversion quality (cosine)", "PGD attack success",
                "Robust accuracy"});
  float inv_clear = 0.0f, inv_gradsec = 1.0f, inv_pelta = 1.0f;
  float rob_clear = 1.0f, rob_gradsec = 1.0f, rob_pelta = 0.0f;
  for (const row& r : rows) {
    const float quality = attacks::inversion_quality(mlp, ds, r.policy, inv_samples);
    const attacks::robust_eval ev = attacks::evaluate_attack(
        mlp, ds, attacks::attack_kind::pgd, params, r.factory, s.samples, s.seed);
    t.add_row({attacks::observation_policy_name(r.policy), fixed(quality, 3),
               pct(1.0f - ev.robust_accuracy), pct(ev.robust_accuracy)});
    switch (r.policy) {
      case attacks::observation_policy::clear:
        inv_clear = quality;
        rob_clear = ev.robust_accuracy;
        break;
      case attacks::observation_policy::param_gradient:
        inv_gradsec = quality;
        rob_gradsec = ev.robust_accuracy;
        break;
      case attacks::observation_policy::pelta:
        inv_pelta = quality;
        rob_pelta = ev.robust_accuracy;
        break;
    }
  }
  std::printf("%s", t.to_string().c_str());

  const bool holds = inv_clear > 0.8f && inv_gradsec == 0.0f && inv_pelta == 0.0f &&
                     rob_clear < 0.2f && rob_gradsec < rob_clear + 0.15f && rob_pelta > 0.6f;
  std::printf("\npaper-shape check (matrix corners as §II describes): %s\n",
              holds ? "HOLDS" : "VIOLATED");
  std::printf("\nReading: the related-work shields and PELTA protect different\n"
              "gradients. A deployment that fears both inversion and evasion needs\n"
              "the union of the two masked sets — which PELTA's frontier already\n"
              "gives for the single most invertible layer, the first one.\n");
  return holds ? 0 : 1;
}
