// Multi-replica cluster scaling on the simulated clock: one saturating
// Poisson open-loop trace served by 1/2/4/8 replicas behind the round-robin
// router (serve/cluster.h).
//
// The GATE runs on the simulated clock, like bench_serving's primary gate:
// every replica count serves the SAME trace under the SAME cost model
// (per-batch setup + per-sample compute + the metered hotcall enclave
// charge, one enclave per replica), so the scaling curve is deterministic
// and host-independent. The trace is dense enough that even eight replicas
// stay saturated — throughput is service-bound at every point of the sweep,
// and the 8-replica fleet must clear >= PELTA_CLUSTER_MIN_SCALE x the
// single-replica simulated throughput.
//
// Two correctness gates ride along:
//   * chaos: a 4-replica run where one replica is killed mid-stream (and
//     later restarted) must serve EVERY request exactly once — zero lost,
//     zero duplicated, with the kill provably catching work in flight;
//   * bits: every logits row of every fleet size must match the
//     single-server serving path bit for bit (batch-size invariance plus
//     the shared exec.h gather/scatter path).
//
//   PELTA_CLUSTER_REQUESTS=256 PELTA_CLUSTER_ROUNDS=3 ./bench_cluster
//   PELTA_CLUSTER_MIN_SCALE=6      simulated scale gate at 8 replicas
//                                  (0 disables)
//
// Exit code: non-zero if the 8-replica simulated scaling is below the
// threshold, if the chaos leg loses or duplicates a request, or if any
// logits row differs bitwise from the single server. Emits
// BENCH_cluster.json. On failure: see docs/BENCHMARKS.md.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "bench/common.h"
#include "models/vit.h"
#include "serve/cluster.h"
#include "serve/server.h"
#include "tensor/parallel.h"

namespace {

using namespace pelta;

std::int64_t env_requests() {
  if (const char* v = std::getenv("PELTA_CLUSTER_REQUESTS")) return std::atoll(v);
  return 256;
}

int env_rounds() {
  if (const char* v = std::getenv("PELTA_CLUSTER_ROUNDS")) return std::atoi(v);
  return 3;
}

double env_min_scale() {
  if (const char* v = std::getenv("PELTA_CLUSTER_MIN_SCALE")) return std::atof(v);
  return 6.0;
}

models::vit_config cluster_vit_config() {
  models::vit_config c;
  c.name = "cluster-vit";
  c.image_size = 16;
  c.patch_size = 4;
  c.dim = 16;
  c.heads = 2;
  c.blocks = 1;
  c.mlp_hidden = 32;
  c.classes = 6;
  c.seed = 2023;
  return c;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool bits_equal(const tensor& a, const tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data().data(), b.data().data(), a.data().size() * sizeof(float)) == 0;
}

struct sweep_point {
  std::int64_t replicas = 0;
  double sim_span_ns = 0.0;
  double wall_best_s = 1e300;
  double mean_batch_size = 0.0;
  double sim_p50_ms = 0.0;
  double sim_p95_ms = 0.0;
  bool bits_ok = true;
};

}  // namespace

int main() {
  const std::int64_t n = env_requests();
  const int rounds = std::max(1, env_rounds());
  const double min_scale = env_min_scale();

  std::printf("PELTA cluster scaling bench (simulated clock)\n");
  std::printf("requests=%lld rounds=%d threads=%lld min_scale=%.1f\n\n",
              static_cast<long long>(n), rounds,
              static_cast<long long>(parallel_thread_count()), min_scale);

  const models::vit_model model{cluster_vit_config()};
  serve::model_backend backend{model};

  // Saturating open-loop trace: 10 us mean gaps offer ~100 req/ms-sim against
  // a per-replica service rate of ~3.5 req/ms-sim, so even the 8-replica
  // fleet stays service-bound with FULL batches (the coalescing window never
  // expires first) and the scaling curve measures capacity, not the arrival
  // process or the per-batch setup tax.
  const std::vector<double> arrivals = serve::make_poisson_arrivals(n, 1e4, 404);
  std::vector<serve::classify_request> reqs;
  reqs.reserve(static_cast<std::size_t>(n));
  {
    rng gen{77};
    for (std::int64_t i = 0; i < n; ++i) {
      serve::classify_request r;
      r.id = 1000 + i;
      r.image = tensor::rand_uniform(gen, {3, 16, 16});
      r.submit_ns = arrivals[static_cast<std::size_t>(i)];
      reqs.push_back(std::move(r));
    }
  }

  serve::server_config server_config;
  server_config.policy = {16, 2e6};

  // Single-server reference: the bit-identity baseline for every fleet size.
  tee::enclave single_enclave;
  serve::server single{backend, single_enclave, server_config};
  const serve::serving_report single_report = single.run(reqs);

  // ---- replica sweep --------------------------------------------------------
  const std::vector<std::int64_t> fleet_sizes{1, 2, 4, 8};
  std::vector<sweep_point> sweep;
  for (std::int64_t replicas : fleet_sizes) {
    serve::cluster_config config;
    config.replicas = replicas;
    config.policy = serve::router_policy::round_robin;
    config.server = server_config;
    serve::cluster fleet{backend, config};

    sweep_point point;
    point.replicas = replicas;
    serve::cluster_report report;
    for (int round = 0; round < rounds; ++round) {
      const auto t0 = std::chrono::steady_clock::now();
      report = fleet.run(reqs);
      point.wall_best_s = std::min(point.wall_best_s, seconds_since(t0));
    }
    point.sim_span_ns = report.simulated_span_ns();
    std::int64_t executed_batches = 0;
    for (const serve::replica_report& rep : report.replicas)
      executed_batches += static_cast<std::int64_t>(rep.batches.size());
    point.mean_batch_size =
        static_cast<double>(n) / static_cast<double>(std::max<std::int64_t>(1, executed_batches));
    std::vector<double> latencies_ms;
    latencies_ms.reserve(report.results.size());
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      const serve::classify_result& res = report.results[i];
      latencies_ms.push_back((res.finish_ns - res.submit_ns) / 1e6);
      if (!bits_equal(res.logits, single_report.results[i].logits)) point.bits_ok = false;
    }
    point.sim_p50_ms = bench::percentile(latencies_ms, 50.0);
    point.sim_p95_ms = bench::percentile(latencies_ms, 95.0);
    sweep.push_back(point);
  }

  // ---- chaos leg ------------------------------------------------------------
  // Kill one of four replicas mid-stream, restart it near the stream's end;
  // drain-and-requeue must hand every in-flight request to a surviving
  // replica.
  serve::cluster_config chaos_config;
  chaos_config.replicas = 4;
  chaos_config.policy = serve::router_policy::round_robin;
  chaos_config.server = server_config;
  const double kill_ns = arrivals[static_cast<std::size_t>(n / 2)];
  chaos_config.chaos.push_back({kill_ns, 1, /*kill=*/true});
  chaos_config.chaos.push_back({kill_ns + 1e7, 1, /*kill=*/false});
  serve::cluster chaos_fleet{backend, chaos_config};
  const serve::cluster_report chaos_report = chaos_fleet.run(reqs);

  std::int64_t chaos_lost = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i)
    if (chaos_report.results[i].request_id != reqs[i].id) ++chaos_lost;
  std::int64_t chaos_duplicated = 0;
  {
    std::map<std::int64_t, int> seen;
    for (const serve::replica_report& rep : chaos_report.replicas)
      for (const serve::batch_record& b : rep.batches)
        for (std::int64_t id : b.request_ids) ++seen[id];
    for (const serve::classify_request& r : reqs) {
      const auto it = seen.find(r.id);
      if (it == seen.end())
        ++chaos_lost;
      else if (it->second != 1)
        ++chaos_duplicated;
    }
  }
  bool chaos_bits_ok = true;
  for (std::size_t i = 0; i < reqs.size(); ++i)
    if (!bits_equal(chaos_report.results[i].logits, single_report.results[i].logits))
      chaos_bits_ok = false;

  // ---- report ---------------------------------------------------------------
  const double base_sim_rps =
      static_cast<double>(n) / (sweep.front().sim_span_ns / 1e9);
  double gated_scale = 0.0;
  bool bits_ok = true;
  for (const sweep_point& point : sweep) {
    const double sim_rps = static_cast<double>(n) / (point.sim_span_ns / 1e9);
    const double scale = sim_rps / base_sim_rps;
    if (point.replicas == 8) gated_scale = scale;
    bits_ok = bits_ok && point.bits_ok;
    std::printf("replicas=%-2lld %9.0f req/s sim  %9.0f req/s wall  %5.2fx sim scale  "
                "mean batch %5.2f  [sim p50/p95 %.3f/%.3f ms]%s\n",
                static_cast<long long>(point.replicas), sim_rps,
                static_cast<double>(n) / point.wall_best_s, scale, point.mean_batch_size,
                point.sim_p50_ms, point.sim_p95_ms,
                point.bits_ok ? "" : "  BITS DIVERGED");
  }
  std::printf("\nchaos (4 replicas, kill 1 mid-stream + restart): requeued=%lld lost=%lld "
              "duplicated=%lld bits=%s\n",
              static_cast<long long>(chaos_report.plan.requeued),
              static_cast<long long>(chaos_lost), static_cast<long long>(chaos_duplicated),
              chaos_bits_ok ? "ok" : "DIVERGED");

  // ---- machine-readable trajectory record -----------------------------------
  {
    bench::json fleet_json = bench::json::array();
    for (const sweep_point& point : sweep) {
      const double sim_rps = static_cast<double>(n) / (point.sim_span_ns / 1e9);
      fleet_json.push(bench::json::object()
                          .field("replicas", point.replicas)
                          .field("sim_rps", sim_rps)
                          .field("wall_rps", static_cast<double>(n) / point.wall_best_s)
                          .field("sim_scale_vs_1", sim_rps / base_sim_rps)
                          .field("mean_batch_size", point.mean_batch_size)
                          .field("sim_latency_p50_ms", point.sim_p50_ms)
                          .field("sim_latency_p95_ms", point.sim_p95_ms)
                          .field("bits_match_single_server", point.bits_ok));
    }
    bench::json::object()
        .field("bench", "cluster")
        .field("threads", parallel_thread_count())
        .field("requests", n)
        .field("mean_gap_ns", 1e4)
        .field("max_batch", server_config.policy.max_batch)
        .field("max_delay_ns", server_config.policy.max_delay_ns)
        .field("batch_setup_ns", server_config.batch_setup_ns)
        .field("compute_ns_per_sample", server_config.compute_ns_per_sample)
        .field("router", "round_robin")
        .field("fleet", fleet_json)
        .field("scale_threshold", min_scale)
        .field("gated_sim_scale_8_replicas", gated_scale)
        .field("chaos_requeued", chaos_report.plan.requeued)
        .field("chaos_lost", chaos_lost)
        .field("chaos_duplicated", chaos_duplicated)
        .field("chaos_bits_match_single_server", chaos_bits_ok)
        .field("bits_match_single_server", bits_ok)
        .write_file("BENCH_cluster.json");
  }

  // ---- gates ----------------------------------------------------------------
  bool ok = bits_ok && chaos_bits_ok;
  if (min_scale > 0 && gated_scale < min_scale) {
    std::printf("FAIL: 8-replica simulated throughput at %.2fx the single replica, below "
                "the %.1fx gate\n",
                gated_scale, min_scale);
    ok = false;
  }
  if (chaos_lost != 0 || chaos_duplicated != 0) {
    std::printf("FAIL: chaos leg lost %lld and duplicated %lld request(s)\n",
                static_cast<long long>(chaos_lost), static_cast<long long>(chaos_duplicated));
    ok = false;
  }
  if (chaos_report.plan.requeued == 0) {
    std::printf("FAIL: the chaos kill caught no request in flight — the leg proves nothing\n");
    ok = false;
  }
  if (!bits_ok || !chaos_bits_ok)
    std::printf("FAIL: cluster logits diverged bitwise from the single-server path\n");
  if (!ok)
    std::printf("see docs/BENCHMARKS.md for this bench's gate, knobs and expected output\n");
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
