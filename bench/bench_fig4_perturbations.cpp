// Fig. 4: SAGA adversarial samples in the four shielding settings, from one
// correctly classified sample. The paper shows the perturbation image and
// the attack result per setting ("success / success / failure / failure").
//
// This bench regenerates the figure as perturbation statistics plus an
// ASCII heat-map of |x_adv - x0| per setting, and reports the SAGA outcome.
#include <cmath>

#include "attacks/runner.h"
#include "bench/common.h"
#include "core/table.h"
#include "tensor/ops.h"

namespace {

// Coarse ASCII rendering of the channel-mean absolute perturbation.
void render_perturbation(const pelta::tensor& x0, const pelta::tensor& adv) {
  using namespace pelta;
  const std::int64_t c = x0.size(0), h = x0.size(1), w = x0.size(2);
  const char* shades = " .:-=+*#%@";
  float peak = 1e-9f;
  for (std::int64_t i = 0; i < x0.numel(); ++i)
    peak = std::max(peak, std::fabs(adv[i] - x0[i]));
  for (std::int64_t y = 0; y < h; ++y) {
    std::string line = "    ";
    for (std::int64_t x = 0; x < w; ++x) {
      float mag = 0.0f;
      for (std::int64_t ch = 0; ch < c; ++ch)
        mag += std::fabs(adv.at(ch, y, x) - x0.at(ch, y, x));
      mag /= static_cast<float>(c);
      const int level = std::min(9, static_cast<int>(mag / peak * 9.99f));
      line += shades[level];
    }
    std::printf("%s\n", line.c_str());
  }
}

}  // namespace

int main() {
  using namespace pelta;
  const bench::scale s;
  s.print("Fig. 4 — SAGA perturbations across shield settings");

  const data::dataset ds = bench::make_scaled_dataset("cifar10_like", s);
  const attacks::suite_params params = attacks::params_for_dataset("cifar10_like");
  auto vit = bench::train_zoo_model("ViT-L/16", ds, s);
  auto cnn = bench::train_zoo_model("BiT-M-R101x3", ds, s);

  // A sample both members classify correctly (the figure's origin image).
  std::int64_t idx = -1;
  for (std::int64_t i = 0; i < ds.test_size(); ++i)
    if (models::predict_one(*vit, ds.test_image(i)) == ds.test_label(i) &&
        models::predict_one(*cnn, ds.test_image(i)) == ds.test_label(i)) {
      idx = i;
      break;
    }
  if (idx < 0) {
    std::printf("no sample classified correctly by both members — aborting\n");
    return 1;
  }
  const tensor x0 = ds.test_image(idx);
  const std::int64_t label = ds.test_label(idx);
  std::printf("original sample #%lld, class %lld\n\n", static_cast<long long>(idx),
              static_cast<long long>(label));

  struct setting {
    const char* name;
    bool shield_vit;
    bool shield_cnn;
  };
  const setting settings[] = {{"No shield", false, false},
                              {"BiT only", false, true},
                              {"ViT only", true, false},
                              {"Both", true, true}};

  attacks::saga_config config;
  config.eps = params.eps;
  config.eps_step = params.saga_eps_step;
  config.steps = params.saga_steps;
  config.alpha_k = params.saga_alpha_k_sim;
  config.early_stop = false;  // full-budget perturbations, as in the figure

  bool unshielded_success = false, both_failure = false;
  text_table t;
  t.set_header({"Shielding setting", "|pert|_inf", "|pert|_2", "ViT", "BiT", "Attack result"});
  for (const setting& st : settings) {
    rng gen{s.seed};
    auto vit_oracle = st.shield_vit ? attacks::make_shielded_oracle(*vit, gen.next_u64())
                                    : attacks::make_clear_oracle(*vit);
    auto cnn_oracle = st.shield_cnn ? attacks::make_shielded_oracle(*cnn, gen.next_u64())
                                    : attacks::make_clear_oracle(*cnn);
    const attacks::saga_result r = attacks::run_saga(*vit_oracle, *cnn_oracle, x0, label, config);

    tensor pert = r.adversarial;
    pert.sub_(x0);
    const bool success = r.vit_fooled || r.cnn_fooled;  // fools the selected member sometimes
    const bool full_success = r.vit_fooled && r.cnn_fooled;
    t.add_row({st.name, fixed(ops::norm_linf(pert), 4), fixed(ops::norm_l2(pert), 3),
               r.vit_fooled ? "fooled" : "held", r.cnn_fooled ? "fooled" : "held",
               full_success ? "success" : (success ? "partial" : "failure")});

    std::printf("%s — perturbation heat-map:\n", st.name);
    render_perturbation(x0, r.adversarial);
    std::printf("\n");

    if (!st.shield_vit && !st.shield_cnn) unshielded_success = full_success;
    if (st.shield_vit && st.shield_cnn) both_failure = !full_success;
  }
  std::printf("%s\n", t.to_string().c_str());

  const bool holds = unshielded_success && both_failure;
  std::printf("paper-shape check (no shield -> success; both shielded -> failure): %s\n",
              holds ? "HOLDS" : "VIOLATED");
  return holds ? 0 : 1;
}
