// Sync vs async federation: time-to-accuracy under stragglers.
//
// Both runtimes train the same model family over the same fleet: one
// straggler client at PELTA_STRAGGLER_SLOWDOWN (default 4x) compute, the
// rest nominal. The synchronous barrier pays the straggler every round —
// a round lasts max(download + compute + upload) over its participants —
// while the buffered-async runtime (fl/async.h) aggregates whenever
// PELTA_BUFFER_K updates arrive, so the fast clients keep contributing
// during the straggler's episode. Both clocks are the *simulated* event
// clock of the shared cost model, so the comparison is hardware-independent.
//
//   PELTA_CLIENTS=6 PELTA_STRAGGLER_SLOWDOWN=4 PELTA_BUFFER_K=3 ./bench_fl_async
//   PELTA_TARGET_PCT=80 PELTA_ROUNDS=24 ./bench_fl_async
//
// Exits 0 when async reaches the target accuracy in less simulated time
// than sync (the §VI intermittent-availability claim), 1 otherwise.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "fl/federation.h"
#include "models/vit.h"

namespace {

pelta::fl::model_factory tiny_vit_factory() {
  return [] {
    pelta::models::vit_config c;
    c.name = "async-bench-vit";
    c.image_size = 16;
    c.patch_size = 4;
    c.dim = 16;
    c.heads = 2;
    c.blocks = 1;
    c.mlp_hidden = 32;
    c.classes = 4;
    c.seed = 31;
    return std::make_unique<pelta::models::vit_model>(c);
  };
}

}  // namespace

int main() {
  using namespace pelta;
  bench::scale s;
  const std::int64_t clients = bench::env_int("PELTA_CLIENTS", 6);
  const std::int64_t buffer_k = bench::env_int("PELTA_BUFFER_K", 3);
  const double slowdown = static_cast<double>(bench::env_int("PELTA_STRAGGLER_SLOWDOWN", 4));
  const double target = static_cast<double>(bench::env_int("PELTA_TARGET_PCT", 70)) / 100.0;
  const std::int64_t max_rounds = bench::env_int("PELTA_ROUNDS", 16);
  const std::int64_t max_aggregations = bench::env_int("PELTA_AGGREGATIONS", 32);
  s.print("bench_fl_async");

  data::dataset_config dc = data::cifar10_like();
  dc.classes = 4;
  dc.train_per_class = 30;
  dc.test_per_class = 10;
  const data::dataset ds{dc};

  fl::federation_config cfg;
  cfg.clients = clients;
  cfg.compromised = 0;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 16;
  cfg.local.lr = 4e-3f;
  cfg.async.buffer_size = buffer_k;
  cfg.async.max_staleness = 8;
  cfg.async.weighting = fl::staleness_weighting::inverse_sqrt;
  cfg.async.heterogeneity.stragglers = 1;
  cfg.async.heterogeneity.straggler_slowdown = slowdown;

  const std::vector<fl::client_profile> profiles =
      fl::make_client_profiles(clients, cfg.async.heterogeneity);
  std::printf("fleet: %lld clients, 1 straggler at %.1fx compute, buffer K=%lld, "
              "staleness weighting %s\n",
              static_cast<long long>(clients), slowdown,
              static_cast<long long>(buffer_k),
              fl::staleness_weighting_name(cfg.async.weighting));
  std::printf("target: %.0f%% global test accuracy (4-class task, %lld train samples)\n\n",
              100.0 * target, static_cast<long long>(ds.train_size()));

  // ---- synchronous barrier ---------------------------------------------------
  fl::federation sync_fed{cfg, tiny_vit_factory(), ds};
  const fl::network& net = sync_fed.net();  // the federation's own cost model
  const std::int64_t payload =
      static_cast<std::int64_t>(sync_fed.server().broadcast().size());
  const auto episode_ns = [&](std::int64_t client) {
    // The planner's own cost model prices the sync side too.
    return fl::async_episode_ns(cfg.async, profiles[static_cast<std::size_t>(client)],
                                sync_fed.client(client).shard_size(), cfg.local.epochs,
                                payload, net);
  };

  double sync_clock_ns = 0.0, sync_time_to_target = -1.0;
  double sync_accuracy = 0.0;
  std::int64_t sync_rounds = 0;
  for (std::int64_t r = 0; r < max_rounds; ++r) {
    // The barrier: the round ends when its slowest participant finishes.
    double round_ns = 0.0;
    for (const std::int64_t id : sync_fed.round_participant_ids(r))
      round_ns = std::max(round_ns, episode_ns(id));
    sync_fed.run_round();
    sync_clock_ns += round_ns;
    ++sync_rounds;
    sync_accuracy = sync_fed.global_test_accuracy();
    if (sync_accuracy >= target) {
      sync_time_to_target = sync_clock_ns;
      break;
    }
  }

  // ---- buffered async --------------------------------------------------------
  fl::federation async_fed{cfg, tiny_vit_factory(), ds};
  double async_time_to_target = -1.0;
  float async_accuracy = 0.0f;
  std::int64_t async_flushes = 0;
  const fl::async_report report = async_fed.run_async(
      max_aggregations, [&](std::int64_t k, double ns) {
        if (async_time_to_target >= 0.0) return;
        async_accuracy = async_fed.global_test_accuracy();
        async_flushes = k + 1;
        if (async_accuracy >= target) async_time_to_target = ns;
      });

  // ---- report ----------------------------------------------------------------
  const auto ms = [](double ns) { return ns / 1e6; };
  std::printf("%-10s %10s %16s %18s\n", "runtime", "steps", "accuracy", "sim ms to target");
  std::printf("%-10s %10lld %15.1f%% %18s\n", "sync",
              static_cast<long long>(sync_rounds), 100.0 * sync_accuracy,
              sync_time_to_target >= 0.0
                  ? std::to_string(static_cast<long long>(ms(sync_time_to_target))).c_str()
                  : "never");
  std::printf("%-10s %10lld %15.1f%% %18s\n\n", "async",
              static_cast<long long>(async_flushes), 100.0 * async_accuracy,
              async_time_to_target >= 0.0
                  ? std::to_string(static_cast<long long>(ms(async_time_to_target))).c_str()
                  : "never");
  std::printf("async: %lld updates applied (mean staleness %.2f, max %lld), "
              "%lld discarded stale, %lld dropouts\n",
              static_cast<long long>(report.updates_applied), report.mean_staleness,
              static_cast<long long>(report.max_staleness_seen),
              static_cast<long long>(report.updates_stale),
              static_cast<long long>(report.updates_dropped));

  const bool async_wins = async_time_to_target >= 0.0 &&
                          (sync_time_to_target < 0.0 ||
                           async_time_to_target < sync_time_to_target);
  if (async_wins && sync_time_to_target >= 0.0)
    std::printf("\nasync reached %.0f%% in %.1fx less simulated time: the barrier pays "
                "the straggler\nevery round; the buffer keeps aggregating the fast "
                "clients' updates instead.\n",
                100.0 * target, sync_time_to_target / async_time_to_target);
  else if (!async_wins)
    std::printf("\nWARNING: async did not beat the synchronous barrier here — check the "
                "straggler\nslowdown (needs >= 4x for a decisive gap) and the target.\n");
  return async_wins ? 0 : 1;
}
