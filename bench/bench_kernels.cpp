// Kernel-level GEMM baseline: blocked micro-kernel vs the pre-PR naive
// i-k-j loop, swept over GEMM shapes the repo's real models actually
// produce (conv-as-GEMM layers of the resnet zoo, ViT/MLP classifier
// matmuls). Emits machine-readable BENCH_kernels.json so subsequent PRs can
// track the kernel trajectory per commit.
//
// Exit code: non-zero if the blocked kernel is below the single-thread
// speedup threshold on the two largest shapes (default 3x; override or
// disable via PELTA_KERNELS_MIN_SPEEDUP), if the int8 quantized path is
// below its own threshold on the same two shapes (default 2x vs the blocked
// fp32 kernel where VNNI exists, 1.5x on plain AVX2;
// PELTA_QKERNELS_MIN_SPEEDUP), or if a
// steady-state conv2d call still allocates, or if any kernel output
// mismatches its reference bitwise. Everything runs single-thread: this is
// the serial inner-kernel baseline the thread-pool scaling bench multiplies.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "tensor/conv.h"
#include "tensor/kernels.h"
#include "tensor/parallel.h"
#include "tensor/quantized_tensor.h"
#include "tensor/rng.h"
#include "tensor/scratch.h"
#include "tensor/tensor.h"
#include "tests/reference_kernels.h"

namespace {

using pelta::rng;
using pelta::ops::detail::finite_cache;
using pelta::ops::detail::gemm_accumulate;
using pelta::ops::detail::gemm_accumulate_bt;
// THE frozen pre-PR baseline, shared with tests/test_kernels.cpp so the
// test suite and this gate measure against one identical kernel.
using pelta::ops::reference::reference_gemm;
using pelta::ops::reference::reference_gemm_bt;

struct shape {
  const char* name;  // which model layer this GEMM comes from
  std::int64_t m, k, n;
  std::int64_t flops() const { return 2 * m * k * n; }
};

// Conv layers map to GEMM as [OC, C*KH*KW] x [C*KH*KW, OH*OW]; matmuls as
// [batch, features] x [features, out].
const shape k_shapes[] = {
    {"resnet.stem 3->16 @32x32", 16, 27, 1024},
    {"resnet.block 16->16 @32x32", 16, 144, 1024},
    {"resnet.block 32->32 @16x16", 32, 288, 256},
    {"resnet.block 64->64 @8x8", 64, 576, 64},
    {"mlp.fc 256->128 batch 64", 64, 256, 128},
    {"vit.head dim64 batch 50", 50, 64, 10},
    {"bit.block 192->192 @16x16", 192, 1728, 256},
    {"bit.block 256->256 @16x16", 256, 2304, 256},
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Reference and candidate are timed in interleaved rounds (A/B/A/B, best
// of each) so host-load drift on a shared vCPU hits both sides instead of
// skewing the ratio.
template <class FnA, class FnB>
std::pair<double, double> time_ab(int rounds, std::int64_t reps, const FnA& fa, const FnB& fb) {
  double best_a = 1e100, best_b = 1e100;
  for (int r = 0; r < rounds; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < reps; ++i) fa();
    best_a = std::min(best_a, seconds_since(t0) / static_cast<double>(reps));
    t0 = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < reps; ++i) fb();
    best_b = std::min(best_b, seconds_since(t0) / static_cast<double>(reps));
  }
  return {best_a, best_b};
}

std::vector<float> random_vec(rng& gen, std::int64_t count, float zero_fraction) {
  std::vector<float> v(static_cast<std::size_t>(count));
  for (float& x : v) x = gen.bernoulli(zero_fraction) ? 0.0f : gen.uniform(-1.0f, 1.0f);
  return v;
}

struct result {
  shape s;
  double ref_gflops = 0, blocked_gflops = 0, speedup = 0;
  double bt_ref_gflops = 0, bt_gflops = 0, bt_speedup = 0;
};

// Default speedup gate: 3x where FMA exists (PELTA_NATIVE builds — the CI
// leg that runs this bench). The portable SSE2 baseline has no headroom for
// it: the naive kernel's 4-wide mul+add saxpy already runs near that ISA's
// peak, so the gate defaults to report-only there.
double env_threshold() {
  if (const char* v = std::getenv("PELTA_KERNELS_MIN_SPEEDUP")) return std::atof(v);
#if defined(__FMA__)
  return 3.0;
#else
  return 0.0;
#endif
}

struct qresult {
  shape s;
  double fp32_gflops = 0, int8_gflops = 0, speedup = 0;
};

// Int8 gate: 2x over the blocked fp32 kernel where vpdpbusd exists (VNNI —
// the PELTA_NATIVE CI leg on current hosts); 1.5x on plain AVX2, whose
// vpmaddubsw+vpmaddwd form spends three ALU ops where VNNI spends one and
// measures ~1.9x on the largest shapes; report-only on the portable
// baseline, whose scalar 4-byte-group int8 loop has no such headroom.
double env_int8_threshold() {
  if (const char* v = std::getenv("PELTA_QKERNELS_MIN_SPEEDUP")) return std::atof(v);
#if (defined(__AVX512VNNI__) && defined(__AVX512F__)) || defined(__AVXVNNI__)
  return 2.0;
#elif defined(__AVX2__)
  return 1.5;
#else
  return 0.0;
#endif
}

}  // namespace

int main() {
  std::printf("[bench_kernels] blocked GEMM micro-kernel vs pre-PR naive kernel "
              "(single thread)\n\n");
  rng gen{2023};
  bool bits_ok = true;
  std::vector<result> results;

  for (const shape& s : k_shapes) {
    // A is dense: in the swept layers it is the weight matrix (conv-as-GEMM)
    // or a pre-activation batch. The zero-skip path is covered bit-exactly
    // by test_kernels; sparsity throughput is not part of this trajectory.
    const std::vector<float> a = random_vec(gen, s.m * s.k, 0.0f);
    const std::vector<float> b = random_vec(gen, s.k * s.n, 0.0f);
    const std::vector<float> bt = random_vec(gen, s.n * s.k, 0.0f);
    std::vector<float> out_ref(static_cast<std::size_t>(s.m * s.n), 0.0f);
    std::vector<float> out_new = out_ref, out_bt_ref = out_ref, out_bt_new = out_ref;

    // Correctness first: one pass of each, compared bitwise.
    reference_gemm(a.data(), b.data(), out_ref.data(), s.m, s.k, s.n);
    {
      finite_cache cache;
      gemm_accumulate(a.data(), b.data(), out_new.data(), s.m, s.k, s.n, cache);
    }
    std::vector<float> bt_scratch;
    reference_gemm_bt(a.data(), bt.data(), out_bt_ref.data(), s.m, s.k, s.n, bt_scratch);
    {
      finite_cache cache;
      gemm_accumulate_bt(a.data(), bt.data(), out_bt_new.data(), s.m, s.k, s.n, cache);
    }
    const std::size_t bytes = out_ref.size() * sizeof(float);
    if (std::memcmp(out_ref.data(), out_new.data(), bytes) != 0 ||
        std::memcmp(out_bt_ref.data(), out_bt_new.data(), bytes) != 0) {
      std::printf("!! %s: blocked kernel output differs from reference bitwise\n", s.name);
      bits_ok = false;
    }

    // Repetitions sized so even the slow reference gets a stable window.
    const std::int64_t reps =
        std::max<std::int64_t>(2, (1 << 25) / std::max<std::int64_t>(s.flops(), 1));
    result r;
    r.s = s;
    const double gf = static_cast<double>(s.flops()) * 1e-9;
    const auto [ref_s, new_s] = time_ab(
        7, reps,
        [&] { reference_gemm(a.data(), b.data(), out_ref.data(), s.m, s.k, s.n); },
        [&] {
          finite_cache cache;
          gemm_accumulate(a.data(), b.data(), out_new.data(), s.m, s.k, s.n, cache);
        });
    const auto [bt_ref_s, bt_new_s] = time_ab(
        7, reps,
        [&] { reference_gemm_bt(a.data(), bt.data(), out_bt_ref.data(), s.m, s.k, s.n, bt_scratch); },
        [&] {
          finite_cache cache;
          gemm_accumulate_bt(a.data(), bt.data(), out_bt_new.data(), s.m, s.k, s.n, cache);
        });
    r.ref_gflops = gf / ref_s;
    r.blocked_gflops = gf / new_s;
    r.bt_ref_gflops = gf / bt_ref_s;
    r.bt_gflops = gf / bt_new_s;
    r.speedup = r.blocked_gflops / r.ref_gflops;
    r.bt_speedup = r.bt_gflops / r.bt_ref_gflops;
    results.push_back(r);
    std::printf("%-32s m=%-4lld k=%-5lld n=%-5lld  ref %6.2f -> blocked %7.2f GF/s (%5.2fx)   "
                "bt %6.2f -> %7.2f GF/s (%5.2fx)\n",
                s.name, static_cast<long long>(s.m), static_cast<long long>(s.k),
                static_cast<long long>(s.n), r.ref_gflops, r.blocked_gflops, r.speedup,
                r.bt_ref_gflops, r.bt_gflops, r.bt_speedup);
  }

  // ---- int8 quantized path vs the blocked fp32 kernel -----------------------
  // The fp32 side is the PR-4 blocked kernel (the serving baseline the int8
  // path replaces); the int8 side is the WHOLE quantized forward for one
  // layer — quantize activations, qgemm, dequantize epilogue — priced the
  // way serving actually pays it (weights quantize once, offline).
  std::printf("\nint8 quantized path (quantize + qgemm + dequantize) vs blocked fp32:\n");
  bool qbits_ok = true;
  std::vector<qresult> qresults;
  for (const shape& s : k_shapes) {
    const std::vector<float> a = random_vec(gen, s.m * s.k, 0.0f);
    const std::vector<float> b = random_vec(gen, s.k * s.n, 0.0f);
    const pelta::quant::quantized_weights qw =
        pelta::quant::quantize_weights_kn(b.data(), s.k, s.n);
    const float act_scale =
        pelta::quant::activation_scale(pelta::quant::absmax(a.data(), s.m * s.k));
    const std::int64_t lda = pelta::ops::detail::qgemm_row_stride(s.k);
    std::vector<std::uint8_t> a8(static_cast<std::size_t>(s.m * lda), 0);
    std::vector<std::int32_t> acc(static_cast<std::size_t>(s.m * s.n), 0);
    std::vector<std::int32_t> acc_ref = acc;
    std::vector<float> out_fp32(static_cast<std::size_t>(s.m * s.n), 0.0f);
    std::vector<float> out_int8 = out_fp32;

    // Correctness first: packed production kernel vs the frozen unpacked
    // reference, compared bitwise on the int32 accumulators.
    for (std::int64_t i = 0; i < s.m; ++i)
      pelta::quant::quantize_activations(a.data() + i * s.k, s.k, act_scale,
                                         a8.data() + i * lda);
    pelta::ops::detail::qgemm(a8.data(), lda, qw.packed.data(), qw.colsums.data(), acc.data(),
                              s.m, s.k, s.n);
    pelta::ops::reference::reference_qgemm(a8.data(), lda, qw.codes.data(), acc_ref.data(), s.m,
                                           s.k, s.n);
    if (std::memcmp(acc.data(), acc_ref.data(), acc.size() * sizeof(std::int32_t)) != 0) {
      std::printf("!! %s: qgemm differs from the frozen int8 reference bitwise\n", s.name);
      qbits_ok = false;
    }

    const std::int64_t reps =
        std::max<std::int64_t>(2, (1 << 25) / std::max<std::int64_t>(s.flops(), 1));
    const double gf = static_cast<double>(s.flops()) * 1e-9;
    const auto [fp32_s, int8_s] = time_ab(
        7, reps,
        [&] {
          finite_cache cache;
          gemm_accumulate(a.data(), b.data(), out_fp32.data(), s.m, s.k, s.n, cache);
        },
        [&] {
          for (std::int64_t i = 0; i < s.m; ++i)
            pelta::quant::quantize_activations(a.data() + i * s.k, s.k, act_scale,
                                               a8.data() + i * lda);
          pelta::ops::detail::qgemm(a8.data(), lda, qw.packed.data(), qw.colsums.data(),
                                    acc.data(), s.m, s.k, s.n);
          pelta::quant::dequantize_rows(acc.data(), s.m, s.n, act_scale, qw.scales.data(),
                                        nullptr, false, out_int8.data());
        });
    qresult r;
    r.s = s;
    r.fp32_gflops = gf / fp32_s;
    r.int8_gflops = gf / int8_s;
    r.speedup = r.int8_gflops / r.fp32_gflops;
    qresults.push_back(r);
    std::printf("%-32s m=%-4lld k=%-5lld n=%-5lld  fp32 %7.2f -> int8 %7.2f GF/s (%5.2fx)\n",
                s.name, static_cast<long long>(s.m), static_cast<long long>(s.k),
                static_cast<long long>(s.n), r.fp32_gflops, r.int8_gflops, r.speedup);
  }

  // Scratch-arena steady state: after a warm-up conv2d round trip, further
  // identical calls must perform zero allocations.
  std::size_t steady_allocs = 0;
  {
    pelta::serial_guard guard;  // keep every checkout on this thread's arena
    rng cg{7};
    pelta::tensor input = pelta::tensor::randn(cg, {2, 16, 16, 16});
    pelta::tensor weight = pelta::tensor::randn(cg, {32, 16, 3, 3});
    pelta::tensor bias = pelta::tensor::rand_uniform(cg, {32});
    const auto round_trip = [&] {
      pelta::tensor out = pelta::ops::conv2d(input, weight, bias, 1, 1);
      pelta::tensor grad = pelta::tensor::ones(out.shape());
      pelta::ops::conv2d_backward_input(grad, weight, 1, 1, input.shape());
      pelta::ops::conv2d_backward_weight(grad, input, 1, 1, weight.shape());
    };
    round_trip();
    const std::size_t before = pelta::scratch_arena::local().block_allocations();
    round_trip();
    round_trip();
    steady_allocs = pelta::scratch_arena::local().block_allocations() - before;
  }
  std::printf("\nconv2d steady-state arena allocations per call: %zu (want 0)\n", steady_allocs);

  // The acceptance gate: single-thread speedup on the two largest shapes.
  std::vector<const result*> by_flops;
  for (const result& r : results) by_flops.push_back(&r);
  std::sort(by_flops.begin(), by_flops.end(),
            [](const result* x, const result* y) { return x->s.flops() > y->s.flops(); });
  const double min_large_speedup = std::min(by_flops[0]->speedup, by_flops[1]->speedup);
  const double threshold = env_threshold();
  std::printf("two largest shapes: %.2fx / %.2fx (threshold %.1fx)\n", by_flops[0]->speedup,
              by_flops[1]->speedup, threshold);

  // Same two-largest-shapes gate for the int8 path, against the blocked
  // fp32 kernel it must beat to earn its place in the serving stack.
  std::vector<const qresult*> q_by_flops;
  for (const qresult& r : qresults) q_by_flops.push_back(&r);
  std::sort(q_by_flops.begin(), q_by_flops.end(),
            [](const qresult* x, const qresult* y) { return x->s.flops() > y->s.flops(); });
  const double min_large_q_speedup = std::min(q_by_flops[0]->speedup, q_by_flops[1]->speedup);
  const double q_threshold = env_int8_threshold();
  std::printf("int8 two largest shapes: %.2fx / %.2fx (threshold %.1fx)\n",
              q_by_flops[0]->speedup, q_by_flops[1]->speedup, q_threshold);

  // Machine-readable trajectory record.
  {
    pelta::bench::json gemm = pelta::bench::json::array();
    for (const result& r : results) {
      gemm.push(pelta::bench::json::object()
                    .field("name", r.s.name)
                    .field("m", r.s.m)
                    .field("k", r.s.k)
                    .field("n", r.s.n)
                    .field("flops", r.s.flops())
                    .field("ref_gflops", r.ref_gflops)
                    .field("blocked_gflops", r.blocked_gflops)
                    .field("speedup", r.speedup)
                    .field("bt_ref_gflops", r.bt_ref_gflops)
                    .field("bt_gflops", r.bt_gflops)
                    .field("bt_speedup", r.bt_speedup));
    }
    pelta::bench::json int8 = pelta::bench::json::array();
    for (const qresult& r : qresults) {
      int8.push(pelta::bench::json::object()
                    .field("name", r.s.name)
                    .field("m", r.s.m)
                    .field("k", r.s.k)
                    .field("n", r.s.n)
                    .field("flops", r.s.flops())
                    .field("fp32_gflops", r.fp32_gflops)
                    .field("int8_gflops", r.int8_gflops)
                    .field("speedup", r.speedup));
    }
    pelta::bench::json::object()
        .field("bench", "kernels")
        .field("threads", 1)
        .field("gemm", gemm)
        .field("int8", int8)
        .field("conv_arena_steady_state_allocations", steady_allocs)
        .field("two_largest_min_speedup", min_large_speedup)
        .field("speedup_threshold", threshold)
        .field("bits_match_reference", bits_ok)
        .field("int8_two_largest_min_speedup", min_large_q_speedup)
        .field("int8_speedup_threshold", q_threshold)
        .field("int8_bits_match_reference", qbits_ok)
        .write_file("BENCH_kernels.json");
  }

  bool ok = bits_ok && qbits_ok && steady_allocs == 0;
  if (threshold > 0 && min_large_speedup < threshold) {
    std::printf("FAIL: blocked kernel below %.1fx on the largest shapes\n", threshold);
    ok = false;
  }
  if (q_threshold > 0 && min_large_q_speedup < q_threshold) {
    std::printf("FAIL: int8 path below %.1fx over blocked fp32 on the largest shapes\n",
                q_threshold);
    ok = false;
  }
  if (!ok)
    std::printf("see docs/BENCHMARKS.md for this bench's gate, knobs and expected output\n");
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
