// Extension bench (§VI System Implications, quantified): the two
// deployment stages the paper discusses, measured against platform cost
// profiles and the update-pull-frequency knob.
//
// Part 1 — inference stage. One shielded forward/backward pass moves the
// masked frontier tensors into the enclave; the traffic is recorded once
// and projected per platform: TrustZone (SMC ≈ 4 µs), classic SGX
// (ecall ≈ 10 µs), SGX+HotCalls (switchless ≈ 0.6 µs). Expected shape:
// HotCalls removes the switch term and the per-byte marshalling dominates;
// the paper's "microseconds up to milliseconds at most" envelope holds
// everywhere.
//
// Part 2 — training stage. Frontier gradients accumulate inside the
// enclave; the FL client pulls the averaged update every k batches (§VI:
// "the frequency at which the weight updates are pulled out of the enclave
// could be lowered"). Expected shape: boundary bytes fall as 1/k while the
// model staleness the defender accepts grows — the tuning trade-off the
// paper describes.
#include "attacks/oracle.h"
#include "bench/common.h"
#include "core/table.h"
#include "shield/shield.h"
#include "tee/profiles.h"
#include "tee/update_channel.h"

int main() {
  using namespace pelta;
  const bench::scale s;
  s.print("Extension — §VI system implications across TEE platforms");

  const data::dataset ds = bench::make_scaled_dataset("cifar10_like", s);
  models::task_spec task;
  task.image_size = ds.config().image_size;
  task.channels = ds.config().channels;
  task.classes = ds.config().classes;
  task.seed = s.seed;
  auto model = models::make_model("ViT-B/16", task);  // no training needed: traffic only

  // ---- Part 1: one shielded inference, traffic recorded then projected ----------
  tee::enclave probe{tee::enclave::k_default_capacity};
  {
    auto oracle = attacks::make_shielded_oracle(*model, s.seed, &probe);
    (void)oracle->query(ds.test_image(0), ds.test_label(0));
  }
  const tee::tee_stats t = probe.statistics();

  text_table t1;
  t1.set_header({"Platform", "Switches/pass", "KB across boundary", "Modeled cost/pass"});
  double tz_cost = 0.0, sgx_cost = 0.0, hot_cost = 0.0;
  for (const tee::tee_profile_kind kind : tee::all_profiles()) {
    const tee::tee_profile p = tee::profile(kind);
    const auto bytes = static_cast<double>(t.bytes_in);
    const bool switchless = kind == tee::tee_profile_kind::sgx_hotcalls;
    // ecall-style: two switches per store; switchless: one hotcall handoff.
    const double per_op = switchless ? p.costs.hotcall_ns : 2.0 * p.costs.world_switch_ns;
    const double cost_ns = static_cast<double>(t.stores) * per_op + bytes * p.costs.per_byte_ns;
    t1.add_row({p.name,
                switchless ? "0 (polled slot)" : std::to_string(2 * t.stores),
                fixed(bytes / 1024.0, 1), fixed(cost_ns / 1e6, 3) + " ms"});
    if (kind == tee::tee_profile_kind::trustzone_optee) tz_cost = cost_ns;
    if (kind == tee::tee_profile_kind::sgx_classic) sgx_cost = cost_ns;
    if (kind == tee::tee_profile_kind::sgx_hotcalls) hot_cost = cost_ns;
  }
  std::printf("Part 1 — shielded inference traffic of %s (%lld masked stores):\n%s",
              model->name().c_str(), static_cast<long long>(t.stores), t1.to_string().c_str());
  const bool p1_holds = hot_cost < sgx_cost && tz_cost < sgx_cost && sgx_cost < 5e6;
  std::printf("shape check (HotCalls < classic SGX; all within the paper's ms envelope): %s\n\n",
              p1_holds ? "HOLDS" : "VIOLATED");

  // ---- Part 2: training stage, pull-period sweep ---------------------------------
  // Frontier gradient volume per batch from a dry shield run.
  models::forward_pass fp = model->forward(
      ds.test_image(0).reshape({1, task.channels, task.image_size, task.image_size}),
      ad::norm_mode::eval);
  const shield::shield_report report =
      shield::pelta_shield_tags(fp.graph, model->shield_frontier_tags(), nullptr);
  // Frontier gradients are adjoint-shaped, i.e. the same volume as the
  // masked activations (the dry run above records no adjoints to measure).
  const std::int64_t grad_bytes = std::max<std::int64_t>(4, report.bytes_activations);
  const std::int64_t grad_floats = grad_bytes / 4;

  const std::int64_t batches_per_round = 24;
  text_table t2;
  t2.set_header({"Pull period k", "Pulls/round", "MB out/round", "Modeled ms/round",
                 "Update staleness"});
  std::int64_t bytes_k1 = 0, bytes_k8 = 0;
  for (const std::int64_t k : {1, 2, 4, 8, 16}) {
    tee::enclave e = tee::make_enclave(tee::tee_profile_kind::trustzone_optee);
    tee::secure_update_channel ch{e, k};
    for (std::int64_t b = 0; b < batches_per_round; ++b) {
      ch.push_batch({tensor::zeros({grad_floats})});
      if (ch.ready()) (void)ch.pull();
    }
    if (ch.pending_batches() > 0) (void)ch.pull();
    t2.add_row({std::to_string(k), std::to_string(ch.pulls()),
                fixed(static_cast<double>(ch.bytes_pulled()) / (1024.0 * 1024.0), 3),
                fixed(e.statistics().simulated_ns / 1e6, 2),
                std::to_string(k) + " batch(es)"});
    if (k == 1) bytes_k1 = ch.bytes_pulled();
    if (k == 8) bytes_k8 = ch.bytes_pulled();
  }
  std::printf("Part 2 — §VI training stage, %lld batches/round, frontier grads %.1f KB/batch:\n%s",
              static_cast<long long>(batches_per_round),
              static_cast<double>(grad_bytes) / 1024.0, t2.to_string().c_str());
  const bool p2_holds = bytes_k8 * 7 <= bytes_k1;  // ~1/8, up to the end-of-round flush
  std::printf("shape check (boundary bytes fall ~1/k): %s\n", p2_holds ? "HOLDS" : "VIOLATED");

  std::printf("\nReading: the §VI overheads are real but tunable — switchless calls\n"
              "remove the per-operation switch cost at inference, and a lower pull\n"
              "frequency amortizes the training-stage bandwidth, at the price of\n"
              "averaging the hidden gradients over larger windows.\n");
  return p1_holds && p2_holds ? 0 : 1;
}
