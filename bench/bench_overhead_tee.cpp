// §VI System Implications: micro-benchmarks of the TEE-related overheads
// PELTA adds — world switches, secure-channel marshalling, sealing,
// shielded vs clear inference, and the FL-round traffic envelope.
//
// Wall-clock numbers come from google-benchmark; the enclave's *modeled*
// latency (µs-scale world switches, per-byte marshalling — the costs the
// paper attributes to TrustZone/SGX transitions) is reported as counters.
#include <benchmark/benchmark.h>

#include "core/pelta.h"
#include "data/dataset.h"
#include "fl/federation.h"
#include "models/zoo.h"
#include "shield/shield.h"
#include "tee/hotcalls.h"
#include "tee/profiles.h"

namespace {

using namespace pelta;

const data::dataset& bench_dataset() {
  static const data::dataset ds = [] {
    data::dataset_config c = data::cifar10_like();
    c.classes = 6;
    c.train_per_class = 20;
    c.test_per_class = 5;
    return data::dataset{c};
  }();
  return ds;
}

models::model& bench_vit() {
  static std::unique_ptr<models::model> m = [] {
    models::task_spec task;
    task.classes = 6;
    return models::make_vit_b16_sim(task);
  }();
  return *m;
}

void BM_WorldSwitch(benchmark::State& state) {
  tee::enclave e;
  for (auto _ : state) {
    e.enter_secure();
    e.exit_secure();
  }
  state.counters["modeled_us_per_switch"] =
      e.statistics().simulated_ns / 1e3 / static_cast<double>(e.statistics().world_switches);
}
BENCHMARK(BM_WorldSwitch);

void BM_SecureStore(benchmark::State& state) {
  tee::enclave e;
  rng gen{1};
  const tensor payload = tensor::randn(gen, {state.range(0)});
  std::int64_t i = 0;
  for (auto _ : state) e.store("blob" + std::to_string(i++ % 8), payload);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * payload.byte_size());
  state.counters["modeled_ns_per_store"] =
      e.statistics().simulated_ns / static_cast<double>(e.statistics().stores);
}
BENCHMARK(BM_SecureStore)->Arg(256)->Arg(4096)->Arg(65536);

// Switchless HotCalls (Weisse et al.) vs per-call ecall-style stores: the
// real SPSC slot + worker thread runs for wall-clock, and the modeled
// counters contrast the ≈0.6 µs handoff with the multi-µs switch pair.
void BM_HotcallStore(benchmark::State& state) {
  tee::enclave e{tee::enclave::k_default_capacity,
                 tee::profile(tee::tee_profile_kind::sgx_hotcalls).costs};
  tee::hotcall_server server{e};
  rng gen{1};
  const tensor payload = tensor::randn(gen, {state.range(0)});
  std::int64_t i = 0;
  for (auto _ : state) server.store("blob" + std::to_string(i++ % 8), payload);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * payload.byte_size());
  state.counters["modeled_ns_per_call"] =
      server.statistics().simulated_ns / static_cast<double>(server.statistics().calls);
}
BENCHMARK(BM_HotcallStore)->Arg(256)->Arg(4096)->Arg(65536);

void BM_SealUnseal(benchmark::State& state) {
  rng gen{2};
  const byte_buffer plain = to_bytes(tensor::randn(gen, {state.range(0)}));
  for (auto _ : state) {
    const tee::sealed_blob blob = tee::seal(plain, 0xfeed);
    benchmark::DoNotOptimize(tee::unseal(blob, 0xfeed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(plain.size()));
}
BENCHMARK(BM_SealUnseal)->Arg(1024)->Arg(16384);

void BM_ClearInference(benchmark::State& state) {
  const tensor image = bench_dataset().test_image(0);
  shape_t batched{1, image.size(0), image.size(1), image.size(2)};
  for (auto _ : state) {
    models::forward_pass fp = bench_vit().forward(image.reshape(batched), ad::norm_mode::eval);
    benchmark::DoNotOptimize(fp.graph.value(fp.logits));
  }
}
BENCHMARK(BM_ClearInference);

void BM_ShieldedInference(benchmark::State& state) {
  // The first deployment-stage overhead of §VI: every pass stores the
  // frontier quantities into the enclave (context switch + marshalling).
  defended_model defended{models::make_vit_b16_sim({16, 3, 6, 11})};
  const tensor image = bench_dataset().test_image(0);
  for (auto _ : state) benchmark::DoNotOptimize(defended.classify(image));
  state.counters["modeled_overhead_us_per_pass"] =
      defended.enclave().statistics().simulated_ns / 1e3 /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_ShieldedInference);

void BM_ShieldApplication(benchmark::State& state) {
  // Algorithm 1 itself (graph walk + placement), isolated from the forward.
  const tensor image = bench_dataset().test_image(0);
  shape_t batched{1, image.size(0), image.size(1), image.size(2)};
  models::forward_pass fp = bench_vit().forward(image.reshape(batched), ad::norm_mode::eval);
  tee::enclave enclave;
  for (auto _ : state) {
    const shield::shield_report r = shield::pelta_shield_tags(
        fp.graph, bench_vit().shield_frontier_tags(), &enclave, "bench/");
    benchmark::DoNotOptimize(r.total_bytes());
  }
}
BENCHMARK(BM_ShieldApplication);

void BM_FlRoundTraffic(benchmark::State& state) {
  // The second §VI stage: training rounds pull updates across the boundary
  // and the network. Reports bytes per round and the modeled latency.
  fl::federation_config cfg;
  cfg.clients = 3;
  cfg.compromised = 0;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 16;
  fl::model_factory factory = [] {
    models::task_spec task;
    task.classes = 6;
    return models::make_vit_b32_sim(task);
  };
  fl::federation fed{cfg, factory, bench_dataset()};
  for (auto _ : state) fed.run_round();
  state.counters["wire_bytes_per_round"] =
      static_cast<double>(fed.traffic().bytes) / static_cast<double>(state.iterations());
  state.counters["modeled_net_ms_per_round"] =
      fed.traffic().simulated_ns / 1e6 / static_cast<double>(state.iterations());
}
BENCHMARK(BM_FlRoundTraffic)->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
