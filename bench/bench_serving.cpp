// Serving-runtime throughput: dynamic batching vs the serial per-request
// loop, both under the PELTA shield.
//
// The serial baseline is the pre-serve deployment (core/pelta.h): every
// request pays one batch-1 forward (graph construction included) plus one
// ecall-style shield application — two world switches per masked tensor.
// The batched path is serve::server with a {max_batch, max_delay} policy
// and a switchless hotcall enclave session: one big forward and ONE shield
// per batch.
//
// The primary GATE runs on the simulated clock, like bench_fl_async: both
// paths are priced by the same cost model (server_config's per-forward
// setup + per-sample compute, the same convention as fl/async_config's
// modeled compute, plus the §VI TEE cost model — ecall-style for the loop,
// hotcall for the session), so the result is deterministic and
// host-independent. Wall-clock for both paths is measured in the same
// interleaved best-of rounds and gated too: with the pipelined executor
// (PR 6) overlapping gather/scatter with the serialized enclave stage,
// batch-32 wall throughput must not fall below the serial loop's even at
// PELTA_THREADS=1, and scales with threads on multi-core hosts. A
// sequential-executor (pipeline_depth=1) batch-32 leg is timed alongside
// so the pipelining win is visible separately from batching itself.
// Logits are bit-checked against the serial loop regardless: neither
// batching nor pipelining may ever change results.
//
//   PELTA_SERVE_REQUESTS=192 PELTA_SERVE_ROUNDS=5 ./bench_serving
//   PELTA_SERVE_MIN_SPEEDUP=3      simulated-clock gate (0 disables)
//   PELTA_SERVE_MIN_WALL_RATIO=1   wall-clock gate, batch-32 wall rps must
//                                  be >= ratio * serial wall rps (0 disables)
//
// Exit code: non-zero if batch-32 dynamic batching is below the simulated
// speedup threshold, below the wall-ratio threshold, or if any batched
// logits row differs bitwise from the serial loop. Emits BENCH_serving.json.
// On failure: see docs/BENCHMARKS.md (gates, knobs, schema, expected output).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/common.h"
#include "models/mlp.h"
#include "models/vit.h"
#include "serve/server.h"
#include "shield/shield.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace {

using namespace pelta;

double env_speedup_threshold() {
  if (const char* v = std::getenv("PELTA_SERVE_MIN_SPEEDUP")) return std::atof(v);
  return 3.0;
}

double env_wall_ratio_threshold() {
  if (const char* v = std::getenv("PELTA_SERVE_MIN_WALL_RATIO")) return std::atof(v);
  return 1.0;
}

models::vit_config serving_vit_config() {
  models::vit_config c;
  c.name = "serving-vit";
  c.image_size = 16;
  c.patch_size = 4;
  c.dim = 16;
  c.heads = 2;
  c.blocks = 1;
  c.mlp_hidden = 32;
  c.classes = 6;
  c.seed = 2023;
  return c;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct sweep_point {
  std::int64_t max_batch = 0;
  double wall_best_s = 1e300;   // wall-clock for the whole workload
  double sim_span_ns = 0.0;     // simulated makespan of the same workload
  double modeled_tee_ns_per_request = 0.0;
  double mean_batch_size = 0.0;
  double sim_p50_ms = 0.0;      // per-request simulated latency percentiles
  double sim_p95_ms = 0.0;
};

// The quantized-backend leg: fp32 model_backend vs serve::quantized_backend
// over the same workload, on a chain-compilable MLP victim (the ViT above is
// not chain-shaped). The simulated clock has no int8 notion of its own, so
// the quantized leg's compute_ns_per_sample is the fp32 constant scaled by
// the MEASURED per-forward kernel ratio.
struct quant_leg_result {
  double fp32_wall_best_s = 1e300;
  double int8_wall_best_s = 1e300;
  double fp32_sim_span_ns = 0.0;
  double int8_sim_span_ns = 0.0;
  double kernel_ratio = 0.0;  // measured int8/fp32 per-forward wall time
  std::size_t stages_quantized = 0;
  std::size_t stages_fp32 = 0;
  bool bits_ok = true;  // batched int8 rows == batch-1 int8 rows, bitwise
};

bench::json quantized_leg_json(const quant_leg_result& leg, std::int64_t n) {
  return bench::json::object()
      .field("model", "serving-mlp")
      .field("stages_quantized", leg.stages_quantized)
      .field("stages_fp32", leg.stages_fp32)
      .field("measured_kernel_ratio_int8_vs_fp32", leg.kernel_ratio)
      .field("fp32_sim_rps", static_cast<double>(n) / (leg.fp32_sim_span_ns / 1e9))
      .field("fp32_wall_rps", static_cast<double>(n) / leg.fp32_wall_best_s)
      .field("int8_sim_rps", static_cast<double>(n) / (leg.int8_sim_span_ns / 1e9))
      .field("int8_wall_rps", static_cast<double>(n) / leg.int8_wall_best_s)
      .field("int8_bits_batch_invariant", leg.bits_ok);
}

}  // namespace

int main() {
  setenv("PELTA_THREADS", "8", /*overwrite=*/0);
  bench::scale s;
  const std::int64_t n = bench::env_int("PELTA_SERVE_REQUESTS", 192);
  const std::int64_t rounds = bench::env_int("PELTA_SERVE_ROUNDS", 5);
  const double threshold = env_speedup_threshold();
  const double wall_ratio_threshold = env_wall_ratio_threshold();
  s.print("bench_serving");
  std::printf("threads=%d requests=%lld rounds=%lld (interleaved best-of)\n\n",
              parallel_thread_count(), static_cast<long long>(n),
              static_cast<long long>(rounds));

  models::vit_model model{serving_vit_config()};
  const serve::server_config cost_model{};  // the shared compute-cost constants

  // A saturated open-loop workload: all requests pending at t=0, so the
  // batcher always finds a full batch — the pure throughput regime.
  rng gen{s.seed};
  std::vector<serve::classify_request> workload;
  workload.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    serve::classify_request r;
    r.id = i;
    r.image = tensor::rand_uniform(gen, {3, 16, 16});
    r.submit_ns = 0.0;
    workload.push_back(std::move(r));
  }

  // ---- serial per-request reference (logits + modeled cost) -----------------
  std::vector<tensor> serial_logits;
  serial_logits.reserve(static_cast<std::size_t>(n));
  double serial_modeled_tee_ns = 0.0;
  {
    tee::enclave enclave;
    for (const serve::classify_request& r : workload) {
      models::forward_pass fp =
          model.forward(r.image.reshape(shape_t{1, 3, 16, 16}), ad::norm_mode::eval);
      shield::pelta_shield_tags(fp.graph, model.shield_frontier_tags(), &enclave, "serial/");
      const tensor& logits = fp.graph.value(fp.logits);
      serial_logits.push_back(logits.reshape(shape_t{logits.numel()}));
    }
    serial_modeled_tee_ns = enclave.statistics().simulated_ns;
  }
  // Every request pays one full forward: per-forward setup + one sample of
  // compute + its own ecall-style shield.
  const double serial_sim_span_ns =
      static_cast<double>(n) * (cost_model.batch_setup_ns + cost_model.compute_ns_per_sample) +
      serial_modeled_tee_ns;

  const std::int64_t sweep_batches[] = {1, 4, 8, 32};
  std::vector<sweep_point> sweep(std::size(sweep_batches));
  for (std::size_t i = 0; i < sweep.size(); ++i) sweep[i].max_batch = sweep_batches[i];
  double serial_wall_best_s = 1e300;
  double seq_exec_wall_best_s = 1e300;  // batch-32, pipeline_depth=1
  bool bits_ok = true;

  for (std::int64_t round = 0; round < rounds; ++round) {
    // Serial leg (wall-clock).
    {
      tee::enclave enclave;
      const auto t0 = std::chrono::steady_clock::now();
      std::int64_t sink = 0;
      for (const serve::classify_request& r : workload) {
        models::forward_pass fp =
            model.forward(r.image.reshape(shape_t{1, 3, 16, 16}), ad::norm_mode::eval);
        shield::pelta_shield_tags(fp.graph, model.shield_frontier_tags(), &enclave, "serial/");
        sink += ops::argmax(fp.graph.value(fp.logits));
      }
      serial_wall_best_s = std::min(serial_wall_best_s, seconds_since(t0));
      if (sink == -1) std::printf("impossible\n");  // defeat dead-code elimination
    }

    // Sequential-executor comparison leg: same batching, pipeline off, so
    // the wall delta against the batch-32 sweep point below is purely the
    // pipelined executor overlapping gather/scatter with the enclave stage.
    {
      tee::enclave enclave;
      serve::model_backend backend{model};
      serve::server_config cfg = cost_model;
      cfg.policy = {32, 2e6};
      cfg.pipeline_depth = 1;
      serve::server srv{backend, enclave, cfg};
      const auto t0 = std::chrono::steady_clock::now();
      const serve::serving_report report = srv.run(workload);
      seq_exec_wall_best_s = std::min(seq_exec_wall_best_s, seconds_since(t0));
      if (report.requests != n) std::printf("impossible\n");
    }

    // Batched legs (pipelined executor, the server default).
    for (sweep_point& point : sweep) {
      tee::enclave enclave;
      serve::model_backend backend{model};
      serve::server_config cfg = cost_model;
      cfg.policy = {point.max_batch, 2e6};
      serve::server srv{backend, enclave, cfg};
      const auto t0 = std::chrono::steady_clock::now();
      const serve::serving_report report = srv.run(workload);
      point.wall_best_s = std::min(point.wall_best_s, seconds_since(t0));
      point.sim_span_ns = report.simulated_span_ns();
      point.modeled_tee_ns_per_request = report.enclave_ns / static_cast<double>(n);
      point.mean_batch_size = report.mean_batch_size();
      if (round == 0) {
        std::vector<double> total_ms;
        total_ms.reserve(report.results.size());
        for (const serve::classify_result& r : report.results)
          total_ms.push_back(r.latency.total_ns() / 1e6);
        point.sim_p50_ms = bench::percentile(total_ms, 0.5);
        point.sim_p95_ms = bench::percentile(total_ms, 0.95);
      }

      if (round == 0) {
        for (std::int64_t i = 0; i < n; ++i) {
          const tensor& got = report.results[static_cast<std::size_t>(i)].logits;
          const tensor& want = serial_logits[static_cast<std::size_t>(i)];
          if (got.shape() != want.shape() ||
              std::memcmp(got.data().data(), want.data().data(),
                          got.data().size() * sizeof(float)) != 0) {
            bits_ok = false;
            std::printf("BIT MISMATCH: max_batch=%lld request %lld\n",
                        static_cast<long long>(point.max_batch), static_cast<long long>(i));
            break;
          }
        }
      }
    }
  }

  // ---- quantized-backend leg -------------------------------------------------
  quant_leg_result quant_leg;
  {
    models::mlp_config mc;
    mc.name = "serving-mlp";
    mc.image_size = 16;
    mc.channels = 3;
    mc.hidden = {256, 128};
    mc.classes = 6;
    mc.seed = 2023;
    const models::mlp_model mlp{mc};

    // Calibration shard: the first (up to) 32 workload images.
    const std::int64_t calib_n = std::min<std::int64_t>(32, n);
    const std::int64_t px = 3 * 16 * 16;
    tensor calib{shape_t{calib_n, 3, 16, 16}};
    for (std::int64_t i = 0; i < calib_n; ++i)
      std::memcpy(calib.data().data() + i * px,
                  workload[static_cast<std::size_t>(i)].image.data().data(),
                  sizeof(float) * static_cast<std::size_t>(px));

    // Default keep-fp32 policy: the shield-frontier prefix stays fp32.
    serve::quantized_backend qbackend{mlp, calib};
    quant_leg.stages_quantized = qbackend.report().stages_quantized;
    quant_leg.stages_fp32 = qbackend.report().stages_fp32;

    // Measured per-forward kernel ratio, interleaved best-of like every
    // other wall number here; it prices the quantized simulated clock.
    {
      double fp32_best = 1e300, int8_best = 1e300;
      for (std::int64_t r = 0; r < rounds; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        models::predict_logits(mlp, calib);
        fp32_best = std::min(fp32_best, seconds_since(t0));
        t0 = std::chrono::steady_clock::now();
        models::predict_logits(qbackend.model(), calib);
        int8_best = std::min(int8_best, seconds_since(t0));
      }
      quant_leg.kernel_ratio = int8_best / fp32_best;
    }

    serve::server_config qcfg = cost_model;
    qcfg.policy = {32, 2e6};
    qcfg.compute_ns_per_sample = cost_model.compute_ns_per_sample * quant_leg.kernel_ratio;

    for (std::int64_t round = 0; round < rounds; ++round) {
      {
        tee::enclave enclave;
        serve::model_backend backend{mlp};
        serve::server_config cfg = cost_model;
        cfg.policy = {32, 2e6};
        serve::server srv{backend, enclave, cfg};
        const auto t0 = std::chrono::steady_clock::now();
        const serve::serving_report report = srv.run(workload);
        quant_leg.fp32_wall_best_s = std::min(quant_leg.fp32_wall_best_s, seconds_since(t0));
        quant_leg.fp32_sim_span_ns = report.simulated_span_ns();
      }
      {
        tee::enclave enclave;
        serve::server srv{qbackend, enclave, qcfg};
        const auto t0 = std::chrono::steady_clock::now();
        const serve::serving_report report = srv.run(workload);
        quant_leg.int8_wall_best_s = std::min(quant_leg.int8_wall_best_s, seconds_since(t0));
        quant_leg.int8_sim_span_ns = report.simulated_span_ns();
        if (round == 0) {
          // Batched int8 rows must equal a batch-1 int8 forward bitwise —
          // quantization must not loosen the serving determinism contract.
          for (std::int64_t i = 0; i < n; ++i) {
            const tensor& got = report.results[static_cast<std::size_t>(i)].logits;
            const tensor want = models::predict_logits(
                qbackend.model(),
                workload[static_cast<std::size_t>(i)].image.reshape(shape_t{1, 3, 16, 16}));
            if (got.numel() != want.numel() ||
                std::memcmp(got.data().data(), want.data().data(),
                            static_cast<std::size_t>(got.numel()) * sizeof(float)) != 0) {
              quant_leg.bits_ok = false;
              std::printf("BIT MISMATCH: quantized leg request %lld\n",
                          static_cast<long long>(i));
              break;
            }
          }
        }
      }
    }
  }

  // ---- report ---------------------------------------------------------------
  const double serial_sim_rps = static_cast<double>(n) / (serial_sim_span_ns / 1e9);
  const double serial_wall_rps = static_cast<double>(n) / serial_wall_best_s;
  std::printf("%-30s %9.0f req/s sim  %9.0f req/s wall   (TEE %7.0f ns/req, ecall)\n",
              "serial per-request loop", serial_sim_rps, serial_wall_rps,
              serial_modeled_tee_ns / static_cast<double>(n));
  const double seq_exec_wall_rps = static_cast<double>(n) / seq_exec_wall_best_s;
  std::printf("%-30s %9s           %9.0f req/s wall   (pipeline_depth=1, batch 32)\n",
              "sequential executor", "", seq_exec_wall_rps);
  double gated_speedup = 0.0, gated_wall_ratio = 0.0;
  for (const sweep_point& point : sweep) {
    const double sim_rps = static_cast<double>(n) / (point.sim_span_ns / 1e9);
    const double wall_rps = static_cast<double>(n) / point.wall_best_s;
    const double sim_speedup = sim_rps / serial_sim_rps;
    if (point.max_batch == 32) {
      gated_speedup = sim_speedup;
      gated_wall_ratio = wall_rps / serial_wall_rps;
    }
    std::printf("dynamic batching max_batch=%-3lld %8.0f req/s sim  %9.0f req/s wall   "
                "(TEE %7.0f ns/req, hotcall)  %5.2fx sim  [sim p50/p95 %.3f/%.3f ms]\n",
                static_cast<long long>(point.max_batch), sim_rps, wall_rps,
                point.modeled_tee_ns_per_request, sim_speedup, point.sim_p50_ms,
                point.sim_p95_ms);
  }
  std::printf("\nmodeled TEE amortization at batch 32: %.1fx fewer ns/request than the "
              "ecall-style loop\n",
              (serial_modeled_tee_ns / static_cast<double>(n)) /
                  std::max(sweep.back().modeled_tee_ns_per_request, 1e-9));
  std::printf("wall ratio at batch 32: %.2fx vs the serial loop (%.2fx vs the sequential\n"
              "executor — that second factor is pipelining alone: gather and scatter of\n"
              "neighbouring batches overlap the serialized enclave stage, so it holds even\n"
              "on a single hardware core and grows with PELTA_THREADS)\n",
              gated_wall_ratio,
              (static_cast<double>(n) / sweep.back().wall_best_s) / seq_exec_wall_rps);
  std::printf("\nquantized backend (serving-mlp, batch 32, %zu int8 / %zu fp32 stages):\n"
              "  fp32 %8.0f req/s sim %9.0f req/s wall   int8 %8.0f req/s sim %9.0f req/s wall\n"
              "  measured kernel ratio %.3fx (prices the int8 simulated clock)  batch-invariant "
              "bits: %s\n",
              quant_leg.stages_quantized, quant_leg.stages_fp32,
              static_cast<double>(n) / (quant_leg.fp32_sim_span_ns / 1e9),
              static_cast<double>(n) / quant_leg.fp32_wall_best_s,
              static_cast<double>(n) / (quant_leg.int8_sim_span_ns / 1e9),
              static_cast<double>(n) / quant_leg.int8_wall_best_s, quant_leg.kernel_ratio,
              quant_leg.bits_ok ? "yes" : "NO");

  // ---- machine-readable trajectory record -----------------------------------
  {
    bench::json batched = bench::json::array();
    for (const sweep_point& point : sweep) {
      const double sim_rps = static_cast<double>(n) / (point.sim_span_ns / 1e9);
      batched.push(bench::json::object()
                       .field("max_batch", point.max_batch)
                       .field("sim_rps", sim_rps)
                       .field("wall_rps", static_cast<double>(n) / point.wall_best_s)
                       .field("sim_speedup_vs_serial", sim_rps / serial_sim_rps)
                       .field("mean_batch_size", point.mean_batch_size)
                       .field("modeled_tee_ns_per_request", point.modeled_tee_ns_per_request)
                       .field("sim_latency_p50_ms", point.sim_p50_ms)
                       .field("sim_latency_p95_ms", point.sim_p95_ms));
    }
    bench::json::object()
        .field("bench", "serving")
        .field("threads", parallel_thread_count())
        .field("requests", n)
        .field("batch_setup_ns", cost_model.batch_setup_ns)
        .field("compute_ns_per_sample", cost_model.compute_ns_per_sample)
        .field("serial_sim_rps", serial_sim_rps)
        .field("serial_wall_rps", serial_wall_rps)
        .field("serial_modeled_tee_ns_per_request",
               serial_modeled_tee_ns / static_cast<double>(n))
        .field("pipeline_depth", 0)  // 0 = auto (min(4, max(2, threads)))
        .field("seq_exec_wall_rps_batch32", seq_exec_wall_rps)
        .field("batched", batched)
        .field("quantized", quantized_leg_json(quant_leg, n))
        .field("speedup_threshold", threshold)
        .field("gated_sim_speedup_batch32", gated_speedup)
        .field("wall_ratio_threshold", wall_ratio_threshold)
        .field("gated_wall_ratio_batch32", gated_wall_ratio)
        .field("bits_match_serial", bits_ok)
        .write_file("BENCH_serving.json");
  }

  bool ok = bits_ok && quant_leg.bits_ok;
  if (threshold > 0 && gated_speedup < threshold) {
    std::printf("FAIL: batch-32 dynamic batching at %.2fx simulated, below the %.1fx gate\n",
                gated_speedup, threshold);
    ok = false;
  }
  if (wall_ratio_threshold > 0 && gated_wall_ratio < wall_ratio_threshold) {
    std::printf("FAIL: batch-32 wall throughput at %.2fx the serial loop, below the %.2fx "
                "wall gate\n",
                gated_wall_ratio, wall_ratio_threshold);
    ok = false;
  }
  if (!ok)
    std::printf("see docs/BENCHMARKS.md for this bench's gate, knobs and expected output\n");
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
