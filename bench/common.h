// Shared utilities for the benchmark binaries: environment-tunable scale
// knobs and a train-once model helper.
//
// Every bench prints the exact knobs and seeds it ran with; override via
//   PELTA_SAMPLES=200 PELTA_EPOCHS=10 PELTA_TRAIN_PER_CLASS=200 ./bench_...
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "models/trainer.h"
#include "models/zoo.h"

namespace pelta::bench {

/// Insertion-ordered JSON builder for the BENCH_*.json trajectory records.
/// The hand-rolled writers it replaces had drifted apart (ad-hoc quoting,
/// per-bench trailing-comma logic, no escaping); every bench must emit its
/// machine-readable record through this one code path so the schema files
/// in docs/BENCHMARKS.md stay trustworthy. Field order is emission order.
class json {
public:
  static json object() { return json{false}; }
  static json array() { return json{true}; }

  json& field(const std::string& key, double v) { return raw(key, number(v)); }
  json& field(const std::string& key, std::int64_t v) { return raw(key, std::to_string(v)); }
  json& field(const std::string& key, int v) { return field(key, static_cast<std::int64_t>(v)); }
  json& field(const std::string& key, std::size_t v) {
    return field(key, static_cast<std::int64_t>(v));
  }
  json& field(const std::string& key, bool v) { return raw(key, v ? "true" : "false"); }
  json& field(const std::string& key, const char* v) { return raw(key, quote(v)); }
  json& field(const std::string& key, const std::string& v) { return raw(key, quote(v)); }
  json& field(const std::string& key, const json& v) { return raw(key, v.str()); }

  json& push(const json& v) {
    entries_.emplace_back(std::string{}, v.str());
    return *this;
  }

  /// Render with 2-space indentation (one field / element per line).
  std::string str() const {
    const char open = is_array_ ? '[' : '{';
    const char close = is_array_ ? ']' : '}';
    if (entries_.empty()) return {open, close};
    std::string out(1, open);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out += "\n  ";
      if (!is_array_) {
        out += quote(entries_[i].first);
        out += ": ";
      }
      out += indented(entries_[i].second);
      if (i + 1 < entries_.size()) out += ',';
    }
    out += '\n';
    out += close;
    return out;
  }

  /// Write `str()` to `path` (with trailing newline) and log the path.
  void write_file(const std::string& path) const {
    std::ofstream os(path);
    os << str() << "\n";
    std::printf("wrote %s\n", path.c_str());
  }

private:
  explicit json(bool is_array) : is_array_{is_array} {}

  json& raw(const std::string& key, std::string rendered) {
    entries_.emplace_back(key, std::move(rendered));
    return *this;
  }

  static std::string number(double v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  /// Re-indent a pre-rendered (possibly multi-line) child by one level.
  static std::string indented(const std::string& s) {
    std::string out;
    for (const char c : s) {
      out += c;
      if (c == '\n') out += "  ";
    }
    return out;
  }

  bool is_array_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

inline std::int64_t env_int(const char* name, std::int64_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long parsed = std::atoll(v);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

/// Nearest-rank percentile: the smallest sample value with at least a
/// fraction `p` of the sample at or below it — rank ceil(p*n), 1-based.
/// The floored `p*(n-1)` index some dashboards hand-roll understates the
/// tail (over 200 samples it reads "p95" off the 94.7th percentile);
/// every bench/example that reports percentiles must go through here.
inline double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::min(std::max(p, 0.0), 1.0);
  const auto rank =
      static_cast<std::size_t>(std::ceil(clamped * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

/// Scale knobs shared by the evaluation benches. The paper uses 1000
/// correctly-classified samples and fully pretrained models; defaults here
/// are sized for a CPU run of the whole suite in minutes (robust-accuracy
/// estimator stderr at N=60 is ~6 points — far below the measured effects).
struct scale {
  std::int64_t samples = env_int("PELTA_SAMPLES", 50);
  std::int64_t epochs = env_int("PELTA_EPOCHS", 6);
  std::int64_t train_per_class = env_int("PELTA_TRAIN_PER_CLASS", 60);
  std::int64_t test_per_class = env_int("PELTA_TEST_PER_CLASS", 25);
  std::int64_t shards = env_int("PELTA_SHARDS", 12);
  std::uint64_t seed = static_cast<std::uint64_t>(env_int("PELTA_SEED", 2023));

  void print(const char* bench_name) const {
    std::printf("[%s] samples=%lld epochs=%lld train/class=%lld seed=%llu\n\n", bench_name,
                static_cast<long long>(samples), static_cast<long long>(epochs),
                static_cast<long long>(train_per_class),
                static_cast<unsigned long long>(seed));
  }
};

/// Dataset preset by name with the bench scale applied. The imagenet-like
/// preset trains on fewer images per class: its 32x32 resolution costs ~4x
/// per sample and it has 2x the classes of cifar10_like.
inline data::dataset make_scaled_dataset(const std::string& name, const scale& s) {
  data::dataset_config c = name == "cifar100_like" ? data::cifar100_like()
                           : name == "imagenet_like" ? data::imagenet_like()
                                                     : data::cifar10_like();
  c.train_per_class = name == "imagenet_like" ? std::max<std::int64_t>(20, s.train_per_class / 2)
                                              : s.train_per_class;
  c.test_per_class = s.test_per_class;
  return data::dataset{c};
}

/// Instantiate and train one zoo model on `ds`; prints a progress line.
inline std::unique_ptr<models::model> train_zoo_model(const std::string& paper_name,
                                                      const data::dataset& ds, const scale& s,
                                                      float* clean_accuracy_out = nullptr) {
  models::task_spec task;
  task.image_size = ds.config().image_size;
  task.channels = ds.config().channels;
  task.classes = ds.config().classes;
  task.seed = s.seed;
  auto m = models::make_model(paper_name, task);

  models::train_config tc;
  tc.epochs = s.epochs;
  tc.batch_size = 32;
  tc.lr = 3e-3f;
  tc.seed = s.seed + 1;
  tc.shards = s.shards;
  const models::train_report r = models::train_model(*m, ds, tc);
  std::printf("  trained %-13s on %-14s clean=%5.1f%% (loss %.3f)\n", paper_name.c_str(),
              ds.config().name.c_str(), 100.0 * r.test_accuracy, r.final_loss);
  std::fflush(stdout);
  if (clean_accuracy_out != nullptr) *clean_accuracy_out = r.test_accuracy;
  return m;
}

}  // namespace pelta::bench
