// Fig. 3: geometry of the iterative maximum-allowable attacks. The figure
// sketches FGSM / MIM / PGD paths inside the l∞ ε-ball around the origin
// sample, with PGD's projection step pulling iterates back inside.
//
// This bench regenerates the figure's content as data: per-step loss,
// distance from the origin, and the predicted class for each attack on one
// correctly-classified sample — confirming (a) every iterate respects the
// ball, (b) the loss ascends, (c) the projection step activates.
#include "attacks/runner.h"
#include "bench/common.h"
#include "core/table.h"

int main() {
  using namespace pelta;
  const bench::scale s;
  s.print("Fig. 3 — attack trajectories in the eps-ball");

  const data::dataset ds = bench::make_scaled_dataset("cifar10_like", s);
  auto m = bench::train_zoo_model("ViT-B/16", ds, s);
  const attacks::suite_params params = attacks::table2_cifar_params();

  // A correctly classified origin sample x0.
  const auto candidates = attacks::correctly_classified_indices(*m, ds, 1);
  if (candidates.empty()) {
    std::printf("model classifies nothing correctly — aborting\n");
    return 1;
  }
  const tensor x0 = ds.test_image(candidates[0]);
  const std::int64_t label = ds.test_label(candidates[0]);
  std::printf("origin sample #%lld, true class %lld\n\n",
              static_cast<long long>(candidates[0]), static_cast<long long>(label));

  auto oracle = attacks::make_clear_oracle(*m);

  const auto print_traj = [&](const char* name, const attacks::attack_result& r) {
    text_table t;
    t.set_header({"step", "loss", "linf(x - x0)", "inside ball", "predicted"});
    for (const auto& p : r.trajectory)
      t.add_row({std::to_string(p.step), fixed(p.loss, 4), fixed(p.linf_from_origin, 4),
                 p.linf_from_origin <= params.eps + 1e-5f ? "yes" : "NO",
                 std::to_string(p.predicted) + (p.predicted != label ? "  <- adversarial" : "")});
    std::printf("%s trajectory:\n%s\n", name, t.to_string().c_str());
  };

  // FGSM: a single ε jump (one segment of the figure).
  {
    attacks::fgsm_config c;
    c.eps = params.eps;
    const attacks::attack_result r = attacks::run_fgsm(*oracle, x0, label, c);
    std::printf("FGSM: one step to linf distance %.4f — %s\n\n",
                attacks::linf_distance(r.adversarial, x0),
                r.misclassified ? "crossed the boundary" : "did not cross");
  }

  // PGD and MIM: many small steps; trace the full path.
  attacks::pgd_config pc;
  pc.eps = params.eps;
  pc.eps_step = params.eps * 0.2f;  // large steps make the projection visible
  pc.steps = 12;
  pc.early_stop = false;
  pc.trace = true;
  const attacks::attack_result pgd = attacks::run_pgd(*oracle, x0, label, pc);
  print_traj("PGD", pgd);

  attacks::mim_config mc;
  mc.eps = params.eps;
  mc.eps_step = params.eps * 0.2f;
  mc.steps = 12;
  mc.mu = params.mim_mu;
  mc.early_stop = false;
  mc.trace = true;
  const attacks::attack_result mim = attacks::run_mim(*oracle, x0, label, mc);
  print_traj("MIM", mim);

  // Shape checks mirroring the figure.
  bool inside = true, ascends_overall = false, projected = false;
  for (const auto& p : pgd.trajectory) inside = inside && p.linf_from_origin <= params.eps + 1e-5f;
  if (pgd.trajectory.size() >= 2)
    ascends_overall = pgd.trajectory.back().loss > pgd.trajectory.front().loss;
  // With step 0.2*eps, unprojected distance after 12 steps would be 2.4*eps:
  // reaching exactly ~eps proves P(.) clipped the path back onto the ball.
  projected = std::abs(pgd.trajectory.back().linf_from_origin - params.eps) < 1e-4f;

  const bool holds = inside && ascends_overall && projected;
  std::printf("paper-shape check (iterates inside ball; loss ascends; projection active): %s\n",
              holds ? "HOLDS" : "VIOLATED");
  return holds ? 0 : 1;
}
