// Extension bench (§VII future work): "apply PELTA along with existing
// software defenses [47] to assess their combined benefits against a
// sophisticated attacker."
//
// Grid: input-transformation chain x {software only, PELTA underneath} x
// attacker {PGD+BPDA, EOT-PGD} — the sophisticated attacker is Athalye et
// al.'s: identity backward through shattered transforms, expectation over
// randomized ones.
//
// Expected shape:
//   * software-only defenses fall to the matched counter-attack (BPDA for
//     quantize/jpeg, EOT for resize/noise) — robust accuracy stays low;
//   * PELTA alone already mitigates (the §V result);
//   * PELTA + software is no worse than PELTA alone — the "supplementary
//     hardware-reliant aid" composition argument of §II.
#include "attacks/eot.h"
#include "bench/common.h"
#include "core/table.h"

int main() {
  using namespace pelta;
  const bench::scale s;
  s.print("Extension — PELTA composed with software defenses");

  const data::dataset ds = bench::make_scaled_dataset("cifar10_like", s);
  const attacks::suite_params params = attacks::params_for_dataset("cifar10_like");
  auto victim = bench::train_zoo_model("ViT-B/16", ds, s);

  const char* chains[] = {"none", "quantize", "jpeg", "resize", "noise", "quantize+jpeg"};

  text_table t;
  t.set_header({"Defense chain", "Clean acc.", "SW only vs PGD", "SW only vs EOT-PGD",
                "+PELTA vs PGD", "+PELTA vs EOT-PGD"});

  float pelta_only_pgd = -1.0f, best_sw_only = 0.0f, combined_min = 1.0f;
  for (const char* spec : chains) {
    const defenses::preprocessor_chain chain = defenses::make_chain(spec);
    // Randomized chains deploy with a 5-pass majority vote: without it,
    // the defense's own inference-time randomness flips borderline samples
    // and the flip would be mis-attributed to the attacker.
    const defenses::defended_model dm{*victim, chain, chain.randomized() ? 5 : 1};
    const float clean = attacks::defended_clean_accuracy(dm, ds, s.seed);

    attacks::defended_eval_config cfg;
    cfg.kind = attacks::attack_kind::pgd;
    cfg.params = params;
    cfg.max_samples = s.samples;
    cfg.seed = s.seed;

    const auto run = [&](const attacks::oracle_factory& inner, std::int64_t eot) {
      attacks::defended_eval_config c = cfg;
      c.eot_samples = eot;
      return attacks::evaluate_attack_defended(dm, ds, c, inner);
    };

    const attacks::robust_eval sw_pgd = run(attacks::clear_oracle_factory(*victim), 1);
    const attacks::robust_eval sw_eot = run(attacks::clear_oracle_factory(*victim), 8);
    const attacks::robust_eval hw_pgd = run(attacks::shielded_oracle_factory(*victim), 1);
    const attacks::robust_eval hw_eot = run(attacks::shielded_oracle_factory(*victim), 8);

    t.add_row({spec, pct(clean), pct(sw_pgd.robust_accuracy),
               pct(sw_eot.robust_accuracy), pct(hw_pgd.robust_accuracy),
               pct(hw_eot.robust_accuracy)});

    if (std::string{spec} == "none") pelta_only_pgd = hw_pgd.robust_accuracy;
    if (std::string{spec} != "none") {
      best_sw_only = std::max(best_sw_only,
                              std::min(sw_pgd.robust_accuracy, sw_eot.robust_accuracy));
      combined_min = std::min(combined_min,
                              std::min(hw_pgd.robust_accuracy, hw_eot.robust_accuracy));
    }
    std::printf("  chain %-14s done\n", spec);
    std::fflush(stdout);
  }

  std::printf("\n");
  std::printf("%s", t.to_string().c_str());

  const bool software_alone_falls = best_sw_only < 0.5f;
  const bool composition_no_worse = combined_min >= pelta_only_pgd - 0.15f;
  std::printf("\npaper-shape check: software-only falls to matched attack: %s\n",
              software_alone_falls ? "HOLDS" : "VIOLATED");
  std::printf("paper-shape check: PELTA+software >= PELTA alone (tolerance 15pt): %s\n",
              composition_no_worse ? "HOLDS" : "VIOLATED");
  return software_alone_falls && composition_no_worse ? 0 : 1;
}
