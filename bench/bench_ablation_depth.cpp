// Ablation (DESIGN.md §3): how the Select() depth — how far into the model
// the shield reaches — trades enclave memory against robustness, per
// frontier family. Quantifies the paper's §V-C remark that CNNs would need
// "larger parts of the model ... included in the enclave" to blunt the
// upsampling attacker.
#include "attacks/runner.h"
#include "bench/common.h"
#include "core/table.h"
#include "shield/policy.h"

int main() {
  using namespace pelta;
  const bench::scale s;
  s.print("Ablation — shield depth vs enclave memory vs robustness");

  const data::dataset ds = bench::make_scaled_dataset("cifar10_like", s);
  const attacks::suite_params params = attacks::params_for_dataset("cifar10_like");

  bool memory_monotone = true;
  bool shield_beats_clear = true;
  for (const char* name : {"ViT-B/16", "BiT-M-R101x3"}) {
    auto m = bench::train_zoo_model(name, ds, s);
    const tensor probe = ds.test_image(0);
    shape_t batched{1, probe.size(0), probe.size(1), probe.size(2)};

    // Baselines for this model.
    const attacks::robust_eval clear = attacks::evaluate_attack(
        *m, ds, attacks::attack_kind::pgd, params, attacks::clear_oracle_factory(*m), s.samples,
        s.seed);
    const attacks::robust_eval paper_frontier = attacks::evaluate_attack(
        *m, ds, attacks::attack_kind::pgd, params, attacks::shielded_oracle_factory(*m),
        s.samples, s.seed);
    const attacks::robust_eval rand =
        attacks::evaluate_random_uniform(*m, ds, params.eps, s.samples, s.seed);

    text_table t;
    t.set_header({"Select depth", "frontier node", "enclave bytes", "PGD robust acc"});
    t.add_row({"0 (no shield)", "-", "0 B", pct(clear.robust_accuracy)});
    std::int64_t prev = -1;
    for (std::int64_t depth : {1, 2, 3, 5, 8}) {
      // Memory at this depth.
      models::forward_pass fp = m->forward(probe.reshape(batched), ad::norm_mode::eval);
      std::vector<ad::node_id> frontier;
      try {
        frontier = shield::select_first_k_transforms(fp.graph, depth);
      } catch (const error&) {
        break;
      }
      const shield::shield_report r = shield::pelta_shield(fp.graph, frontier, nullptr);
      memory_monotone = memory_monotone && r.total_bytes() >= prev;
      prev = r.total_bytes();

      // Robustness with the shield stopping exactly at this depth.
      const models::model* mp = m.get();
      const attacks::oracle_factory factory = [mp, depth](std::uint64_t seed) {
        return attacks::make_shielded_oracle_depth(*mp, depth, seed);
      };
      const attacks::robust_eval at_depth = attacks::evaluate_attack(
          *m, ds, attacks::attack_kind::pgd, params, factory, s.samples, s.seed);
      shield_beats_clear =
          shield_beats_clear && at_depth.robust_accuracy >= clear.robust_accuracy;

      t.add_row({std::to_string(depth), fp.graph.at(frontier[0]).tag,
                 human_bytes(r.total_bytes()), pct(at_depth.robust_accuracy)});
    }
    t.add_separator();
    t.add_row({"paper frontier", m->shield_frontier_tags()[0], "-",
               pct(paper_frontier.robust_accuracy)});
    t.add_row({"random-noise yardstick", "-", "-", pct(rand.robust_accuracy)});
    std::printf("%s:\n%s\n", name, t.to_string().c_str());
  }

  const bool holds = memory_monotone && shield_beats_clear;
  std::printf("paper-shape check (memory grows with depth; any shield depth >= clear-box "
              "robustness): %s\n",
              holds ? "HOLDS" : "VIOLATED");
  return holds ? 0 : 1;
}
