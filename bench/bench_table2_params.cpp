// Table II: attack parameters. Prints the presets every other bench
// consumes and validates that each attack runs under them (one-sample
// smoke per attack), flagging where the CPU simulator deviates from the
// paper (APGD query budget; SAGA's α under normalized gradient scales).
#include "attacks/runner.h"
#include "bench/common.h"
#include "core/table.h"

int main() {
  using namespace pelta;
  const bench::scale s;
  s.print("Table II — attack parameters");

  const auto print_block = [](const char* title, const attacks::suite_params& p) {
    text_table t;
    t.set_header({"Attack", "Parameters"});
    t.add_row({"FGSM", "eps = " + fixed(p.eps, 3)});
    t.add_row({"PGD", "eps = " + fixed(p.eps, 3) + ", eps_step = " + fixed(p.eps_step, 5) +
                          ", steps = " + std::to_string(p.pgd_steps)});
    t.add_row({"MIM", "eps = " + fixed(p.eps, 3) + ", eps_step = " + fixed(p.eps_step, 5) +
                          ", mu = " + fixed(p.mim_mu, 1)});
    t.add_row({"APGD", "eps = " + fixed(p.eps, 3) + ", Nrestarts = " +
                           std::to_string(p.apgd_restarts) + ", rho = " + fixed(p.apgd_rho, 2) +
                           ", n_queries = " + std::to_string(p.apgd_queries) +
                           "  (paper: 5e3)"});
    t.add_row({"C&W", "confidence = " + fixed(p.cw_confidence, 0) + ", eps_step = " +
                          fixed(p.cw_step, 5) + ", steps = " + std::to_string(p.cw_steps)});
    t.add_row({"SAGA", "alpha_k = " + fixed(p.saga_alpha_k, 5) + " (paper raw scale; sim uses " +
                           fixed(p.saga_alpha_k_sim, 2) + " on unit-scale terms), eps_step = " +
                           fixed(p.saga_eps_step, 4)});
    std::printf("%s\n%s\n", title, t.to_string().c_str());
  };

  print_block("Attack Parameters (CIFAR-10 and CIFAR-100)", attacks::table2_cifar_params());
  print_block("Attack Parameters (ImageNet)", attacks::table2_imagenet_params());

  // Smoke-validate: every attack must run under its preset.
  std::printf("validating presets on a one-sample smoke run ...\n");
  data::dataset_config dc = data::cifar10_like();
  dc.classes = 4;
  dc.train_per_class = 20;
  dc.test_per_class = 4;
  const data::dataset ds{dc};
  models::task_spec task;
  task.classes = 4;
  task.seed = s.seed;
  auto m = models::make_model("ViT-B/32", task);

  const attacks::suite_params p = attacks::table2_cifar_params();
  for (attacks::attack_kind kind :
       {attacks::attack_kind::fgsm, attacks::attack_kind::pgd, attacks::attack_kind::mim,
        attacks::attack_kind::cw, attacks::attack_kind::apgd}) {
    const attacks::robust_eval r = attacks::evaluate_attack(
        *m, ds, kind, p, attacks::clear_oracle_factory(*m), /*max_samples=*/2, s.seed);
    std::printf("  %-5s ok (%lld samples, %.1f mean queries)\n", attacks::attack_name(kind),
                static_cast<long long>(r.samples), r.mean_queries);
  }
  std::printf("all presets valid.\n");
  return 0;
}
