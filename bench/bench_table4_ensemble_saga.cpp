// Table IV: robust accuracy of the ViT + BiT random-selection ensemble
// against the Self-Attention Gradient Attack (SAGA) under the four shield
// settings, with the clean and random-uniform baselines.
//
// Expected shapes (paper):
//   * no shield: SAGA defeats both members (low robust accuracy);
//   * shielding one member yields ~50% ensemble robust accuracy (SAGA
//     chases the clear member; random selection averages), and the clear
//     member does even worse than with no shield at all;
//   * shielding both restores robust accuracy near the random-uniform
//     baseline — the full-protection setting.
#include "attacks/runner.h"
#include "bench/common.h"
#include "core/table.h"

int main() {
  using namespace pelta;
  const bench::scale s;
  s.print("Table IV — ensemble vs SAGA");

  struct setting {
    const char* label;
    bool shield_vit;
    bool shield_cnn;
  };
  const setting settings[] = {{"None", false, false},
                              {"ViT shield", true, false},
                              {"BiT shield", false, true},
                              {"Ensemble (both)", true, true}};

  bool all_hold = true;
  for (const char* dataset_name : {"cifar10_like", "cifar100_like", "imagenet_like"}) {
    const data::dataset ds = bench::make_scaled_dataset(dataset_name, s);
    const attacks::suite_params params = attacks::params_for_dataset(dataset_name);
    const char* cnn_name = dataset_name == std::string{"imagenet_like"} ? "BiT-M-R152x4"
                                                                        : "BiT-M-R101x3";
    std::printf("== %s (eps = %.3f) ==\n", dataset_name, static_cast<double>(params.eps));

    float vit_clean = 0.0f, cnn_clean = 0.0f;
    auto vit = bench::train_zoo_model("ViT-L/16", ds, s, &vit_clean);
    auto cnn = bench::train_zoo_model(cnn_name, ds, s, &cnn_clean);

    // Baselines: clean accuracy and astuteness vs random-uniform noise.
    const attacks::robust_eval vit_rand =
        attacks::evaluate_random_uniform(*vit, ds, params.eps, s.samples, s.seed);
    const attacks::robust_eval cnn_rand =
        attacks::evaluate_random_uniform(*cnn, ds, params.eps, s.samples, s.seed);

    text_table t;
    t.set_header({"Model", "Acc. Clean", "Random", "None", "ViT shield", "BiT shield",
                  "Ensemble"});
    std::vector<std::string> vit_row{"ViT-L/16 (sim)", pct(vit_clean),
                                     pct(vit_rand.robust_accuracy)};
    std::vector<std::string> cnn_row{std::string{cnn_name} + " (sim)", pct(cnn_clean),
                                     pct(cnn_rand.robust_accuracy)};
    std::vector<std::string> ens_row{"Ensemble", pct(0.5f * (vit_clean + cnn_clean)),
                                     pct(0.5f * (vit_rand.robust_accuracy +
                                                 cnn_rand.robust_accuracy))};

    attacks::saga_eval results[4];
    for (int i = 0; i < 4; ++i) {
      results[i] = attacks::evaluate_saga(*vit, *cnn, ds, settings[i].shield_vit,
                                          settings[i].shield_cnn, params, s.samples, s.seed);
      vit_row.push_back(pct(results[i].vit_robust_accuracy));
      cnn_row.push_back(pct(results[i].cnn_robust_accuracy));
      ens_row.push_back(pct(results[i].ensemble_robust_accuracy));
    }
    t.add_row(std::move(vit_row));
    t.add_row(std::move(cnn_row));
    t.add_row(std::move(ens_row));
    std::printf("%s\n", t.to_string().c_str());

    const auto& none = results[0];
    const auto& vit_only = results[1];
    const auto& cnn_only = results[2];
    const auto& both = results[3];
    const bool holds =
        none.ensemble_robust_accuracy < 0.45f &&                       // SAGA wins unshielded
        vit_only.ensemble_robust_accuracy > 0.25f &&                   // ~half protection
        vit_only.ensemble_robust_accuracy < 0.9f &&
        vit_only.vit_robust_accuracy > vit_only.cnn_robust_accuracy && // shielded member holds
        cnn_only.cnn_robust_accuracy > cnn_only.vit_robust_accuracy &&
        both.ensemble_robust_accuracy >
            none.ensemble_robust_accuracy + 0.3f;                      // full shield wins
    std::printf("paper-shape check for %s: %s\n\n", dataset_name, holds ? "HOLDS" : "VIOLATED");
    all_hold = all_hold && holds;
  }
  return all_hold ? 0 : 1;
}
