// Extension bench (§I motivation, §VII): the poisoning attacks adversarial
// examples enable, and what mitigates them on each side of the wire.
//
// Part A — trojan-trigger backdoor with model replacement (Bagdasaryan et
// al. [15], the paper's §I scenario) against four server-side aggregation
// rules. Expected shape: boosted FedAvg embeds the backdoor at high success
// while clean accuracy stays unsuspicious; coordinate median / trimmed mean
// / norm clipping blunt it.
//
// Part B — evasion-based poisoning (Bhagoji et al. [16], §I: "repeatedly
// misclassify their newfound adversarial examples"): the compromised client
// probes its local copy for adversarial examples and reinforces their
// misclassification through its updates. Expected shape: PELTA on the
// client device removes the probe's gradient signal, so the attacker finds
// almost nothing to reinforce — the client-side mitigation complements the
// server-side rules of Part A.
#include "bench/common.h"
#include "core/table.h"
#include "fl/poisoning.h"
#include "fl/server.h"

namespace {

using namespace pelta;

struct fed_setup {
  const data::dataset& ds;
  models::task_spec task;
  std::int64_t clients = 4;
  std::int64_t rounds = 4;
  fl::local_train_config lc;

  std::unique_ptr<models::model> fresh_model(std::uint64_t seed) const {
    models::task_spec t = task;
    t.seed = seed;
    return models::make_model("ViT-B/16", t);
  }

  std::vector<std::int64_t> shard_of(std::int64_t k) const {
    std::vector<std::int64_t> out;
    for (std::int64_t i = k; i < ds.train_size(); i += clients) out.push_back(i);
    return out;
  }
};

void run_rounds(fl::fl_server& server, const std::vector<fl::fl_client*>& clients,
                const fed_setup& s, const fl::aggregation_config& ac) {
  for (std::int64_t r = 0; r < s.rounds; ++r) {
    const byte_buffer g = server.broadcast();
    std::vector<fl::model_update> updates;
    for (fl::fl_client* c : clients) {
      c->receive_global(g);
      updates.push_back(c->local_update(s.lc));
    }
    server.aggregate(updates, ac);
  }
}

struct backdoor_outcome {
  float success = 0.0f;
  float clean = 0.0f;
};

backdoor_outcome run_backdoor(const fed_setup& s, const fl::backdoor_config& bd,
                              const fl::aggregation_config& ac, std::uint64_t seed) {
  fl::fl_server server{s.fresh_model(seed)};
  std::vector<std::unique_ptr<fl::fl_client>> owned;
  for (std::int64_t i = 0; i + 1 < s.clients; ++i)
    owned.push_back(std::make_unique<fl::fl_client>(i, s.fresh_model(seed + 1 + i),
                                                    s.shard_of(i), s.ds));
  owned.push_back(std::make_unique<fl::backdoor_client>(
      s.clients - 1, s.fresh_model(seed + 99), s.shard_of(s.clients - 1), s.ds, bd));
  std::vector<fl::fl_client*> clients;
  for (auto& c : owned) clients.push_back(c.get());
  run_rounds(server, clients, s, ac);
  return {fl::backdoor_success_rate(server.global_model(), s.ds, bd, 100),
          models::accuracy(server.global_model(), s.ds.test_images(), s.ds.test_labels())};
}

struct evasion_outcome {
  float attack_rate = 0.0f;
  float clean = 0.0f;
  std::int64_t found = 0;
  std::int64_t attempts = 0;
};

evasion_outcome run_evasion(const fed_setup& s, bool shielded, std::uint64_t seed) {
  fl::evasion_poison_config ec;
  ec.params = attacks::params_for_dataset(s.ds.config().name);
  ec.shielded = shielded;
  ec.crafts_per_round = 8;

  fl::fl_server server{s.fresh_model(seed)};
  std::vector<std::unique_ptr<fl::fl_client>> owned;
  for (std::int64_t i = 0; i + 1 < s.clients; ++i)
    owned.push_back(std::make_unique<fl::fl_client>(i, s.fresh_model(seed + 1 + i),
                                                    s.shard_of(i), s.ds));
  auto poisoner = std::make_unique<fl::evasion_poison_client>(
      s.clients - 1, s.fresh_model(seed + 99), s.shard_of(s.clients - 1), s.ds, ec);
  fl::evasion_poison_client* pp = poisoner.get();
  owned.push_back(std::move(poisoner));
  std::vector<fl::fl_client*> clients;
  for (auto& c : owned) clients.push_back(c.get());
  run_rounds(server, clients, s, fl::aggregation_config{});
  return {fl::replay_attack_rate(server.global_model(), pp->replay_set(), pp->craft_attempts()),
          models::accuracy(server.global_model(), s.ds.test_images(), s.ds.test_labels()),
          static_cast<std::int64_t>(pp->replay_set().size()), pp->craft_attempts()};
}

}  // namespace

int main() {
  const bench::scale s;
  s.print("Extension — poisoning/backdoor vs aggregation rules and PELTA");

  const data::dataset ds = bench::make_scaled_dataset("cifar10_like", s);
  fed_setup setup{ds, {}, 4, 4, {}};
  setup.task.image_size = ds.config().image_size;
  setup.task.channels = ds.config().channels;
  setup.task.classes = ds.config().classes;
  setup.lc.epochs = 2;
  setup.lc.batch_size = 16;
  setup.lc.lr = 3e-3f;

  // ---- Part A: backdoor vs aggregation rules -----------------------------------
  fl::backdoor_config bd;
  bd.target_class = 0;
  bd.boost = static_cast<float>(setup.clients);  // cancel the FedAvg dilution

  struct row {
    const char* label;
    fl::aggregation_config ac;
    float boost;
  };
  const row rows[] = {
      {"FedAvg, no boost", {fl::aggregation_rule::fedavg, 0.2f, 0.0f}, 1.0f},
      {"FedAvg, model replacement", {fl::aggregation_rule::fedavg, 0.2f, 0.0f}, bd.boost},
      {"coordinate median", {fl::aggregation_rule::coordinate_median, 0.2f, 0.0f}, bd.boost},
      {"trimmed mean", {fl::aggregation_rule::trimmed_mean, 0.2f, 0.0f}, bd.boost},
      {"norm-clipped mean", {fl::aggregation_rule::norm_clipped_mean, 0.2f, 0.0f}, bd.boost},
  };

  text_table ta;
  ta.set_header({"Server aggregation", "Backdoor success", "Clean acc."});
  float fedavg_boosted = 0.0f, best_robust = 1.0f;
  for (const row& r : rows) {
    fl::backdoor_config cfg = bd;
    cfg.boost = r.boost;
    const backdoor_outcome o = run_backdoor(setup, cfg, r.ac, s.seed);
    ta.add_row({r.label, pct(o.success), pct(o.clean)});
    if (std::string{r.label} == "FedAvg, model replacement") fedavg_boosted = o.success;
    if (r.ac.rule != fl::aggregation_rule::fedavg) best_robust = std::min(best_robust, o.success);
    std::printf("  %-28s done (success %s, clean %s)\n", r.label, pct(o.success).c_str(),
                pct(o.clean).c_str());
    std::fflush(stdout);
  }
  std::printf("\nPart A — trojan-trigger backdoor, %lld clients, %lld rounds:\n%s",
              static_cast<long long>(setup.clients), static_cast<long long>(setup.rounds),
              ta.to_string().c_str());
  const bool a_holds = fedavg_boosted > 0.5f && best_robust < fedavg_boosted - 0.3f;
  std::printf("shape check (boosted FedAvg embeds; robust rules mitigate): %s\n\n",
              a_holds ? "HOLDS" : "VIOLATED");

  // ---- Part B: evasion-based poisoning, open vs PELTA ----------------------------
  const evasion_outcome open = run_evasion(setup, /*shielded=*/false, s.seed + 7);
  const evasion_outcome shielded = run_evasion(setup, /*shielded=*/true, s.seed + 7);

  text_table tb;
  tb.set_header({"Compromised device", "Adv. found / probes", "Replay success", "Clean acc."});
  tb.add_row({"open white box",
              std::to_string(open.found) + " / " + std::to_string(open.attempts),
              pct(open.attack_rate), pct(open.clean)});
  tb.add_row({"PELTA-shielded",
              std::to_string(shielded.found) + " / " + std::to_string(shielded.attempts),
              pct(shielded.attack_rate), pct(shielded.clean)});
  std::printf("Part B — evasion-based poisoning (Bhagoji et al. scenario):\n%s",
              tb.to_string().c_str());
  const bool b_holds =
      open.found > shielded.found && open.attack_rate > shielded.attack_rate + 0.1f;
  std::printf("shape check (PELTA defangs the probe): %s\n", b_holds ? "HOLDS" : "VIOLATED");

  std::printf("\nReading: server-side robust aggregation and client-side PELTA attack\n"
              "different links of the same kill chain — the rules blunt what reaches\n"
              "the aggregate, PELTA stops the adversarial examples from being found\n"
              "at all (the paper's framing of evasion as the basis of poisoning).\n");
  return a_holds && b_holds ? 0 : 1;
}
