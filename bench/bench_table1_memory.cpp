// Table I: estimated enclave memory cost and model portion shielded.
//
// Paper row (ImageNet variants, worst case — enclave never flushed):
//   Model          Shielded portion   TEE mem. used
//   ViT-L/16       1.34%              15.16 MB
//   ViT-B/16       3.61%              11.97 MB
//   BiT-M-R101x3   4.50e-3%           65.20 KB
//   BiT-M-R152x4   9.23e-3%           322.14 KB
//
// Expected shape at simulator scale: ViT frontiers cost percents of the
// model and the bulk of the TEE bytes; BiT frontiers are orders of
// magnitude smaller; the summed ensemble stays far below the TrustZone
// ~30 MB budget.
#include "bench/common.h"
#include "core/pelta.h"
#include "core/table.h"

int main() {
  using namespace pelta;
  const bench::scale s;
  s.print("Table I — enclave memory cost");

  // ImageNet-variant models, as in the paper's table.
  const data::dataset ds = bench::make_scaled_dataset("imagenet_like", s);
  rng gen{s.seed};
  const tensor probe = ds.test_image(0);

  struct row {
    std::string name;
    double portion;
    std::int64_t bytes;
    std::int64_t param_bytes;
  };
  std::vector<row> rows;

  // Two accountings: "param-side" (masked weights + their gradients — the
  // quantity the paper's Table I evidently reports: its 65 KB BiT row
  // cannot contain a 224x224x64 activation) and our conservative "full
  // worst case" that also keeps every masked activation/adjoint resident.
  text_table t;
  t.set_header({"Model", "Shielded portion", "TEE mem. (full worst case)", "(activations",
                "gradients", "parameters)"});
  for (const char* name : {"ViT-L/16", "ViT-B/16", "BiT-M-R101x3", "BiT-M-R152x4"}) {
    models::task_spec task;
    task.image_size = ds.config().image_size;
    task.classes = ds.config().classes;
    task.seed = s.seed;
    defended_model defended{models::make_model(name, task)};
    const auto cost = defended.measure_shield_cost(probe, /*with_gradients=*/true);
    rows.push_back({name, cost.shielded_portion, cost.tee_bytes, cost.bytes_parameters});
    char portion[32];
    std::snprintf(portion, sizeof(portion), "%.4f%%", 100.0 * cost.shielded_portion);
    t.add_row({name, portion, human_bytes(cost.tee_bytes),
               human_bytes(cost.bytes_activations), human_bytes(cost.bytes_gradients),
               human_bytes(cost.bytes_parameters)});
  }

  // Ensemble worst case: both members resident, nothing flushed (paper's
  // "less than 16 MB at the very worst" argument).
  const std::int64_t ensemble_bytes = rows[0].bytes + rows[2].bytes;
  t.add_separator();
  t.add_row({"Ensemble (ViT-L/16 + BiT-M-R101x3)", "-", human_bytes(ensemble_bytes)});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("TrustZone budget: %s; ensemble worst case uses %s (%.2f%%)\n",
              human_bytes(30ll * 1024 * 1024).c_str(), human_bytes(ensemble_bytes).c_str(),
              100.0 * static_cast<double>(ensemble_bytes) / (30.0 * 1024 * 1024));

  // Shape: ViT shields a 10x+ larger *fraction* of its model than BiT, and
  // its parameter-side footprint dwarfs BiT's (the paper's ordering); the
  // ensemble stays far below the 30 MB TrustZone cap. (Absolute worst-case
  // bytes flip at simulator scale: 32x32 feature maps rival our token
  // embeddings, unlike 224x224 models — see EXPERIMENTS.md.)
  const bool shape_holds = rows[0].portion > 10.0 * rows[2].portion &&
                           rows[1].portion > 10.0 * rows[3].portion &&
                           rows[0].param_bytes > 5 * rows[2].param_bytes &&
                           rows[1].param_bytes > 5 * rows[3].param_bytes &&
                           ensemble_bytes < 30ll * 1024 * 1024;
  std::printf("paper-shape check (ViT portion >> BiT portion; ViT param bytes >> BiT;\n"
              "ensemble < 30MB): %s\n",
              shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 0 : 1;
}
