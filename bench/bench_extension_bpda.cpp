// Extension bench (§IV-C / §VII): what does a *resourceful* attacker buy
// against PELTA, and what do related-work shields buy against evasion?
//
// Four attacker tiers against the same defended model, PGD throughout:
//   1. open white box            — no defense (upper bound for the attacker)
//   2. param-gradient shield     — DarkneTZ/PPFL/GradSec policy (§II):
//                                  protects inversion, not evasion
//   3. PELTA + upsampling        — the paper's attacker (no priors,
//                                  random-kernel BPDA)
//   4. PELTA + trained surrogate — Athalye et al.'s full BPDA: the attacker
//                                  distills its own copy from the visible
//                                  logits and transfers the attack
//
// Expected shape: (1) ≈ (2)  <<  (4)  <  (3) in robust accuracy — the
// related-work policy does not mitigate evasion; the trained surrogate
// recovers much of the attack at the cost of a full training run (the
// paper's "training resources equivalent to that of the FL system").
#include "attacks/bpda.h"
#include "bench/common.h"
#include "core/table.h"

int main() {
  using namespace pelta;
  const bench::scale s;
  s.print("Extension — BPDA surrogate & related-work shield comparison");

  const data::dataset ds = bench::make_scaled_dataset("cifar10_like", s);
  const attacks::suite_params params = attacks::params_for_dataset("cifar10_like");

  bool all_hold = true;
  for (const char* name : {"ViT-B/16", "BiT-M-R101x3"}) {
    auto victim = bench::train_zoo_model(name, ds, s);
    const models::model* vp = victim.get();

    // Tier 2 oracle factory.
    const attacks::oracle_factory pg_factory = [vp](std::uint64_t) {
      return attacks::make_param_shield_oracle(*vp);
    };

    // Tier 4: distill the surrogate (attacker pays a training run).
    attacks::surrogate_config sc;
    sc.architecture = name;
    sc.epochs = s.epochs;
    sc.shards = s.shards;
    sc.seed = s.seed + 4242;  // attacker's own initialization — no priors
    const attacks::surrogate_result sr = attacks::train_surrogate(*victim, ds, sc);

    const attacks::robust_eval open = attacks::evaluate_attack(
        *victim, ds, attacks::attack_kind::pgd, params, attacks::clear_oracle_factory(*victim),
        s.samples, s.seed);
    const attacks::robust_eval param_shield = attacks::evaluate_attack(
        *victim, ds, attacks::attack_kind::pgd, params, pg_factory, s.samples, s.seed);
    const attacks::robust_eval pelta_upsample = attacks::evaluate_attack(
        *victim, ds, attacks::attack_kind::pgd, params,
        attacks::shielded_oracle_factory(*victim), s.samples, s.seed);
    const attacks::robust_eval pelta_surrogate =
        attacks::evaluate_transfer_attack(*victim, *sr.surrogate, ds, params, s.samples, s.seed);

    text_table t;
    t.set_header({"Attacker tier", "Robust accuracy", "Attacker cost"});
    t.add_row({"open white box", pct(open.robust_accuracy), "-"});
    t.add_row({"param-gradient shield (GradSec-style)", pct(param_shield.robust_accuracy), "-"});
    t.add_row({"PELTA + upsampling (paper attacker)", pct(pelta_upsample.robust_accuracy),
               "random kernel only"});
    t.add_row({"PELTA + trained surrogate (full BPDA)", pct(pelta_surrogate.robust_accuracy),
               std::to_string(sr.label_queries) + " label queries + full training (agreement " +
                   pct(sr.agreement) + ")"});
    std::printf("%s:\n%s\n", name, t.to_string().c_str());

    // The full-BPDA claim (Athalye et al.) presumes the attacker's
    // approximation is *good*: a surrogate that disagrees with the victim
    // on >10% of inputs transfers poorly and can undershoot even the
    // random upsampler. So the "BPDA bites back" leg is only asserted when
    // distillation succeeded; otherwise the bench reports the under-fit.
    const bool distilled = sr.agreement >= 0.9f;
    if (!distilled)
      std::printf("  note: surrogate under-fit (agreement %s) — raise PELTA_EPOCHS/"
                  "PELTA_TRAIN_PER_CLASS for the full BPDA effect\n",
                  pct(sr.agreement).c_str());
    const bool holds =
        param_shield.robust_accuracy <= open.robust_accuracy + 0.1f &&   // no evasion help
        pelta_upsample.robust_accuracy > open.robust_accuracy + 0.3f &&  // PELTA works
        (!distilled ||
         pelta_surrogate.robust_accuracy < pelta_upsample.robust_accuracy);  // BPDA bites back
    std::printf("shape check for %s: %s\n\n", name, holds ? "HOLDS" : "VIOLATED");
    all_hold = all_hold && holds;
  }

  std::printf("Reading: PELTA's security is operational, not information-theoretic —\n"
              "exactly the paper's §IV-C framing. The attacker without priors is\n"
              "blocked; an attacker who re-trains the federation's model locally is\n"
              "not, but has left the cheap-evasion threat model entirely.\n");
  return all_hold ? 0 : 1;
}
