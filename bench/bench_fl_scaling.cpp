// FL round scaling on the persistent thread pool.
//
// Trains one federation round (8 clients by default) at 1/2/4/8 threads via
// concurrency_guard — the pool itself is sized once from PELTA_THREADS,
// which this bench pins to at least 8 before first use — and reports the
// per-round wall clock, speedup over the 1-thread schedule, and a
// bit-identity check of the aggregated global parameters across widths.
//
//   PELTA_CLIENTS=8 PELTA_ROUNDS=2 PELTA_TRAIN_PER_CLASS=60 ./bench_fl_scaling
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "fl/federation.h"
#include "models/zoo.h"
#include "tensor/parallel.h"

namespace {

// Pin the pool size before its first use so the 8-wide leg has real workers
// even when the environment doesn't set PELTA_THREADS. Must run before any
// parallel_for.
const bool k_threads_pinned = [] {
  setenv("PELTA_THREADS", "8", /*overwrite=*/0);
  return true;
}();

double run_rounds_ms(pelta::fl::federation& fed, std::int64_t rounds) {
  const auto start = std::chrono::steady_clock::now();
  fed.run_rounds(rounds);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count() /
         static_cast<double>(rounds);
}

}  // namespace

int main() {
  using namespace pelta;
  bench::scale s;
  const std::int64_t clients = bench::env_int("PELTA_CLIENTS", 8);
  const std::int64_t rounds = bench::env_int("PELTA_ROUNDS", 2);
  s.print("bench_fl_scaling");
  std::printf("pool: PELTA_THREADS=%d (hardware threads visible: %u)\n",
              parallel_thread_count(), std::thread::hardware_concurrency());
  std::printf("federation: %lld clients, %lld round(s) per leg, 1 local epoch\n\n",
              static_cast<long long>(clients), static_cast<long long>(rounds));

  const data::dataset ds = bench::make_scaled_dataset("cifar10_like", s);
  const fl::model_factory factory = [&] {
    models::task_spec task;
    task.image_size = ds.config().image_size;
    task.channels = ds.config().channels;
    task.classes = ds.config().classes;
    task.seed = s.seed;
    return models::make_model("ResNet-56", task);
  };

  const std::vector<int> widths{1, 2, 4, 8};
  std::vector<double> per_round_ms;
  std::vector<byte_buffer> globals;

  for (const int width : widths) {
    fl::federation_config cfg;
    cfg.clients = clients;
    cfg.compromised = 0;
    cfg.local.epochs = 1;
    cfg.local.batch_size = 16;
    cfg.seed = s.seed;
    fl::federation fed{cfg, factory, ds};
    concurrency_guard guard{width};
    per_round_ms.push_back(run_rounds_ms(fed, rounds));
    globals.push_back(fed.server().broadcast());
  }

  std::printf("%-8s %14s %10s\n", "threads", "ms/round", "speedup");
  bool identical = true;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    std::printf("%-8d %14.1f %9.2fx\n", widths[i], per_round_ms[i],
                per_round_ms[0] / per_round_ms[i]);
    identical = identical && globals[i] == globals[0];
  }
  std::printf("\nglobal parameters bit-identical across widths: %s\n",
              identical ? "yes" : "NO — DETERMINISM BUG");
  std::printf("(wall-clock speedup requires >= as many hardware cores as threads;\n"
              " the bit-identity column must hold on any machine)\n");
  return identical ? 0 : 1;
}
