// Table III: robust accuracy of non-shielded (left) vs PELTA-shielded
// (right) individual models against FGSM / PGD / MIM / C&W / APGD on the
// three dataset analogues, plus clean accuracy.
//
// Expected shapes (paper):
//   * iterative attacks drive the open white box to ~0% robust accuracy
//     (FGSM, one-step, is weaker);
//   * shielding lifts robust accuracy dramatically in every cell;
//   * APGD stays the strongest attack against the shield;
//   * shielded ViTs hold up better than shielded CNNs (their clear-layer
//     adjoint carries no spatial structure for the upsampler to exploit).
#include "attacks/runner.h"
#include "bench/common.h"
#include "core/table.h"

int main() {
  using namespace pelta;
  const bench::scale s;
  s.print("Table III — individual models, five white-box attacks");

  const attacks::attack_kind kinds[] = {attacks::attack_kind::fgsm, attacks::attack_kind::pgd,
                                        attacks::attack_kind::mim, attacks::attack_kind::cw,
                                        attacks::attack_kind::apgd};

  struct cell_stats {
    double clear_sum = 0.0;
    double shielded_sum = 0.0;
    int count = 0;
  };
  cell_stats per_attack[5];
  double vit_shielded_sum = 0.0, cnn_shielded_sum = 0.0;
  int vit_cells = 0, cnn_cells = 0;

  for (const char* dataset_name : {"cifar10_like", "cifar100_like", "imagenet_like"}) {
    const data::dataset ds = bench::make_scaled_dataset(dataset_name, s);
    const attacks::suite_params params = attacks::params_for_dataset(dataset_name);
    std::printf("== %s (eps = %.3f) ==\n", dataset_name, static_cast<double>(params.eps));

    text_table t;
    t.set_header({"Model", "FGSM", "PGD", "MIM", "C&W", "APGD", "Clean"});
    for (const std::string& name : models::table3_model_names(dataset_name)) {
      float clean = 0.0f;
      auto m = bench::train_zoo_model(name, ds, s, &clean);
      const bool is_vit = name.rfind("ViT", 0) == 0;

      std::vector<std::string> row{name};
      for (int k = 0; k < 5; ++k) {
        const attacks::robust_eval clear = attacks::evaluate_attack(
            *m, ds, kinds[k], params, attacks::clear_oracle_factory(*m), s.samples, s.seed);
        const attacks::robust_eval shielded = attacks::evaluate_attack(
            *m, ds, kinds[k], params, attacks::shielded_oracle_factory(*m), s.samples, s.seed);
        row.push_back(pct(clear.robust_accuracy) + " " + pct(shielded.robust_accuracy));
        per_attack[k].clear_sum += clear.robust_accuracy;
        per_attack[k].shielded_sum += shielded.robust_accuracy;
        ++per_attack[k].count;
        if (is_vit) {
          vit_shielded_sum += shielded.robust_accuracy;
          ++vit_cells;
        } else {
          cnn_shielded_sum += shielded.robust_accuracy;
          ++cnn_cells;
        }
      }
      row.push_back(pct(clean));
      t.add_row(std::move(row));
    }
    std::printf("%s   (each attack cell: non-shielded  shielded)\n\n", t.to_string().c_str());
  }

  // Paper-shape summary across all datasets/models.
  std::printf("== shape summary (means over all models/datasets) ==\n");
  const char* names[] = {"FGSM", "PGD", "MIM", "C&W", "APGD"};
  double iterative_clear = 0.0, min_lift = 1.0, mean_lift = 0.0;
  double apgd_shielded = 0.0, other_shielded = 0.0;
  for (int k = 0; k < 5; ++k) {
    const double clear = per_attack[k].clear_sum / per_attack[k].count;
    const double shielded = per_attack[k].shielded_sum / per_attack[k].count;
    std::printf("  %-5s non-shielded %5.1f%%  -> shielded %5.1f%%\n", names[k], 100 * clear,
                100 * shielded);
    if (k > 0) iterative_clear += clear / 4.0;
    min_lift = std::min(min_lift, shielded - clear);
    mean_lift += (shielded - clear) / 5.0;
    if (k == 4)
      apgd_shielded = shielded;
    else
      other_shielded += shielded / 4.0;
  }
  const double vit_shielded = vit_shielded_sum / vit_cells;
  const double cnn_shielded = cnn_shielded_sum / cnn_cells;
  std::printf("  shielded ViT mean %5.1f%% vs shielded CNN mean %5.1f%%\n", 100 * vit_shielded,
              100 * cnn_shielded);

  // Note on magnitudes: APGD's advantage against the shield is *amplified*
  // at simulator scale — the CNN clear-layer adjoint has the same spatial
  // resolution as the input, so the upsampled substitute is more
  // informative than against the paper's 224x224 models. Direction and
  // ordering (the paper's claims) are what is checked.
  const bool holds = iterative_clear < 0.15 && mean_lift > 0.3 && min_lift > 0.03 &&
                     apgd_shielded <= other_shielded + 0.02 && vit_shielded > cnn_shielded;
  std::printf("paper-shape check (iterative beat the open box; shield lifts every attack,\n"
              "strongly on average; APGD strongest vs shield; shielded ViT > shielded CNN): %s\n",
              holds ? "HOLDS" : "VIOLATED");
  return holds ? 0 : 1;
}
