// THE frozen copy of the pre-blocked GEMM kernel (the naive cache-friendly
// i-k-j loop with the lazy zero-skip gate) — the single baseline both the
// kernel test suite and bench_kernels compare the blocked micro-kernels
// against, bit for bit. Do not "improve" it: its value is that it never
// changes. Accumulation goes through ops::detail::fmadd, the same
// compile-time rounding choice the blocked kernels use — with a bare
// `out += a * b` here, -ffp-contract would be free to fuse this loop
// differently from the library kernel on FMA targets and the bitwise
// comparisons would break.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/kernels.h"

namespace pelta::ops::reference {

inline void reference_gemm(const float* a, const float* b, float* out, std::int64_t m,
                           std::int64_t k, std::int64_t n) {
  const bool skip = detail::all_finite(b, k * n);
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f && skip) continue;
      const float* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) orow[j] = detail::fmadd(av, brow[j], orow[j]);
    }
  }
}

// Pre-PR transposed-B path: materialize Bᵀ ([n,k] -> [k,n]) per call, then
// run the naive kernel — exactly what conv2d_backward_weight used to do
// with cols_t.
inline void reference_gemm_bt(const float* a, const float* bt, float* out, std::int64_t m,
                              std::int64_t k, std::int64_t n, std::vector<float>& b_storage) {
  b_storage.resize(static_cast<std::size_t>(k * n));
  for (std::int64_t j = 0; j < n; ++j)
    for (std::int64_t kk = 0; kk < k; ++kk)
      b_storage[static_cast<std::size_t>(kk * n + j)] = bt[j * k + kk];
  reference_gemm(a, b_storage.data(), out, m, k, n);
}

// THE frozen int8 reference: the textbook i-k-j loop over UNPACKED operands
// computing out[i][j] = sum_k (a_u8 - 128) * b_s8 in int32. It knows nothing
// of the packed panel layout, the colsum compensation trick or the AVX2
// pair-sum path — which is exactly why comparing ops::detail::qgemm against
// it bitwise proves the production kernel's algebra, not just its porting.
// Like its fp32 sibling above: do not "improve" it.
inline void reference_qgemm(const std::uint8_t* a, std::int64_t lda, const std::int8_t* b,
                            std::int32_t* out, std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) out[i * n + j] = 0;
  for (std::int64_t i = 0; i < m; ++i) {
    const std::uint8_t* arow = a + i * lda;
    std::int32_t* orow = out + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int32_t av = static_cast<std::int32_t>(arow[kk]) - 128;
      const std::int8_t* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) orow[j] += av * static_cast<std::int32_t>(brow[j]);
    }
  }
}

}  // namespace pelta::ops::reference
