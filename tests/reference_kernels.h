// THE frozen copy of the pre-blocked GEMM kernel (the naive cache-friendly
// i-k-j loop with the lazy zero-skip gate) — the single baseline both the
// kernel test suite and bench_kernels compare the blocked micro-kernels
// against, bit for bit. Do not "improve" it: its value is that it never
// changes. Accumulation goes through ops::detail::fmadd, the same
// compile-time rounding choice the blocked kernels use — with a bare
// `out += a * b` here, -ffp-contract would be free to fuse this loop
// differently from the library kernel on FMA targets and the bitwise
// comparisons would break.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/kernels.h"

namespace pelta::ops::reference {

inline void reference_gemm(const float* a, const float* b, float* out, std::int64_t m,
                           std::int64_t k, std::int64_t n) {
  const bool skip = detail::all_finite(b, k * n);
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f && skip) continue;
      const float* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) orow[j] = detail::fmadd(av, brow[j], orow[j]);
    }
  }
}

// Pre-PR transposed-B path: materialize Bᵀ ([n,k] -> [k,n]) per call, then
// run the naive kernel — exactly what conv2d_backward_weight used to do
// with cols_t.
inline void reference_gemm_bt(const float* a, const float* bt, float* out, std::int64_t m,
                              std::int64_t k, std::int64_t n, std::vector<float>& b_storage) {
  b_storage.resize(static_cast<std::size_t>(k * n));
  for (std::int64_t j = 0; j < n; ++j)
    for (std::int64_t kk = 0; kk < k; ++kk)
      b_storage[static_cast<std::size_t>(kk * n + j)] = bt[j * k + kk];
  reference_gemm(a, b_storage.data(), out, m, k, n);
}

}  // namespace pelta::ops::reference
