// Poisoning/backdoor clients and Byzantine-robust aggregation (the §I
// attack stories PELTA is motivated by, plus the server-side defenses a
// production FL substrate ships).
#include <gtest/gtest.h>

#include "fl/poisoning.h"
#include "fl/server.h"
#include "fl/state.h"
#include "models/trainer.h"
#include "models/zoo.h"
#include "tensor/kernels.h"  // detail::fmadd — the accumulation-policy reference
#include "tensor/ops.h"

namespace pelta::fl {
namespace {

// ---- trigger ----------------------------------------------------------------

TEST(Trigger, StampsOnlyTheBottomRightCorner) {
  rng g{1};
  const tensor x = tensor::rand_uniform(g, {3, 8, 8}, 0.0f, 0.5f);
  trigger_pattern t;
  t.size = 2;
  t.value = 1.0f;
  const tensor y = apply_trigger(x, t);
  for (std::int64_t c = 0; c < 3; ++c)
    for (std::int64_t i = 0; i < 8; ++i)
      for (std::int64_t j = 0; j < 8; ++j) {
        if (i >= 6 && j >= 6)
          EXPECT_FLOAT_EQ(y.at(c, i, j), 1.0f);
        else
          EXPECT_FLOAT_EQ(y.at(c, i, j), x.at(c, i, j));
      }
}

TEST(Trigger, OversizedThrowsAndInputUntouched) {
  rng g{2};
  const tensor x = tensor::rand_uniform(g, {1, 4, 4});
  const tensor copy = x;
  trigger_pattern t;
  t.size = 5;
  EXPECT_THROW(apply_trigger(x, t), error);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(x[i], copy[i]);
}

// ---- aggregation rules against hand-computed values ----------------------------

byte_buffer encode1(std::vector<float> v) {
  byte_buffer out;
  serialize_tensor(tensor{shape_t{static_cast<std::int64_t>(v.size())}, std::move(v)}, out);
  return out;
}

std::vector<float> decode1(const byte_buffer& buf) {
  std::size_t offset = 0;
  const tensor t = deserialize_tensor(buf, offset);
  return {t.data().begin(), t.data().end()};
}

model_update make_update(std::int64_t id, std::int64_t samples, std::vector<float> v) {
  model_update u;
  u.client_id = id;
  u.sample_count = samples;
  u.parameters = encode1(std::move(v));
  return u;
}

TEST(Aggregation, FedavgIsSampleWeighted) {
  const byte_buffer ref = encode1({0.0f, 0.0f});
  const std::vector<model_update> updates = {make_update(0, 1, {1.0f, 10.0f}),
                                             make_update(1, 3, {5.0f, 2.0f})};
  aggregation_config cfg;
  cfg.rule = aggregation_rule::fedavg;
  const auto out = decode1(aggregate_states(ref, updates, cfg));
  EXPECT_NEAR(out[0], 0.25f * 1.0f + 0.75f * 5.0f, 1e-5f);
  EXPECT_NEAR(out[1], 0.25f * 10.0f + 0.75f * 2.0f, 1e-5f);
}

TEST(Aggregation, CoordinateMedianOddAndEven) {
  const byte_buffer ref = encode1({0.0f});
  aggregation_config cfg;
  cfg.rule = aggregation_rule::coordinate_median;

  const std::vector<model_update> odd = {make_update(0, 1, {1.0f}), make_update(1, 1, {100.0f}),
                                         make_update(2, 1, {3.0f})};
  EXPECT_FLOAT_EQ(decode1(aggregate_states(ref, odd, cfg))[0], 3.0f);

  const std::vector<model_update> even = {make_update(0, 1, {1.0f}), make_update(1, 1, {2.0f}),
                                          make_update(2, 1, {8.0f}), make_update(3, 1, {100.0f})};
  EXPECT_FLOAT_EQ(decode1(aggregate_states(ref, even, cfg))[0], 5.0f);
}

TEST(Aggregation, MedianIgnoresSampleCountBoosting) {
  // a malicious client claiming a huge sample count moves FedAvg but not
  // the median.
  const byte_buffer ref = encode1({0.0f});
  const std::vector<model_update> updates = {make_update(0, 1, {1.0f}),
                                             make_update(1, 1, {1.2f}),
                                             make_update(2, 1000, {50.0f})};
  aggregation_config median;
  median.rule = aggregation_rule::coordinate_median;
  aggregation_config fedavg;
  const float med = decode1(aggregate_states(ref, updates, median))[0];
  const float avg = decode1(aggregate_states(ref, updates, fedavg))[0];
  EXPECT_FLOAT_EQ(med, 1.2f);
  EXPECT_GT(avg, 45.0f);
}

TEST(Aggregation, TrimmedMeanDropsBothTails) {
  const byte_buffer ref = encode1({0.0f});
  const std::vector<model_update> updates = {
      make_update(0, 1, {-100.0f}), make_update(1, 1, {1.0f}), make_update(2, 1, {2.0f}),
      make_update(3, 1, {3.0f}), make_update(4, 1, {100.0f})};
  aggregation_config cfg;
  cfg.rule = aggregation_rule::trimmed_mean;
  cfg.trim_fraction = 0.2f;  // k = 1 per side
  EXPECT_NEAR(decode1(aggregate_states(ref, updates, cfg))[0], 2.0f, 1e-5f);
}

TEST(Aggregation, TrimmedMeanZeroFractionIsPlainMean) {
  // Regression: an explicit trim_fraction of 0 used to hit the k = 1 floor
  // at n >= 3 and silently discard the extreme updates anyway.
  const byte_buffer ref = encode1({0.0f});
  const std::vector<model_update> updates = {
      make_update(0, 1, {-100.0f}), make_update(1, 1, {1.0f}), make_update(2, 1, {2.0f}),
      make_update(3, 1, {3.0f}), make_update(4, 1, {100.0f})};
  aggregation_config cfg;
  cfg.rule = aggregation_rule::trimmed_mean;
  cfg.trim_fraction = 0.0f;  // untrimmed: keep all five, tails included
  EXPECT_NEAR(decode1(aggregate_states(ref, updates, cfg))[0],
              (-100.0f + 1.0f + 2.0f + 3.0f + 100.0f) / 5.0f, 1e-5f);
}

TEST(Aggregation, TrimmedMeanFloorsSmallPositiveFractions) {
  // A positive fraction that rounds to zero at small n still trims one per
  // side — dropping the floor entirely would silently disable robustness.
  const byte_buffer ref = encode1({0.0f});
  const std::vector<model_update> updates = {
      make_update(0, 1, {-100.0f}), make_update(1, 1, {1.0f}), make_update(2, 1, {2.0f}),
      make_update(3, 1, {3.0f}), make_update(4, 1, {100.0f})};
  aggregation_config cfg;
  cfg.rule = aggregation_rule::trimmed_mean;
  cfg.trim_fraction = 0.05f;  // floor(5 * 0.05) = 0 -> floored to k = 1
  EXPECT_NEAR(decode1(aggregate_states(ref, updates, cfg))[0], 2.0f, 1e-5f);
}

TEST(Aggregation, TrimmedMeanSurvivesCatastrophicCancellation) {
  // Regression for the float accumulator the R1 lint rule flagged: summing
  // the sorted column {-2^25, 1, 2^25} left-to-right in float loses the 1
  // entirely (-2^25 + 1 rounds back to -2^25), so the old code returned 0.
  // The double-widened accumulator keeps it: the mean is exactly 1/3.
  const byte_buffer ref = encode1({0.0f});
  const std::vector<model_update> updates = {make_update(0, 1, {-33554432.0f}),
                                             make_update(1, 1, {1.0f}),
                                             make_update(2, 1, {33554432.0f})};
  aggregation_config cfg;
  cfg.rule = aggregation_rule::trimmed_mean;
  cfg.trim_fraction = 0.0f;  // untrimmed: the extremes must cancel, not swallow
  EXPECT_NEAR(decode1(aggregate_states(ref, updates, cfg))[0], 1.0f / 3.0f, 1e-6f);
}

TEST(Aggregation, TrimmedMeanRejectsDegenerateFractions) {
  const byte_buffer ref = encode1({0.0f});
  const std::vector<model_update> updates = {make_update(0, 1, {1.0f}),
                                             make_update(1, 1, {2.0f})};
  aggregation_config cfg;
  cfg.rule = aggregation_rule::trimmed_mean;
  cfg.trim_fraction = 0.5f;
  EXPECT_THROW(aggregate_states(ref, updates, cfg), error);
}

TEST(Aggregation, NormClipCapsTheOutlierDelta) {
  const byte_buffer ref = encode1({0.0f, 0.0f});
  // honest: delta norm 1; attacker: delta norm 100.
  const std::vector<model_update> updates = {make_update(0, 1, {1.0f, 0.0f}),
                                             make_update(1, 1, {0.0f, 100.0f})};
  aggregation_config cfg;
  cfg.rule = aggregation_rule::norm_clipped_mean;
  cfg.clip_norm = 1.0f;
  const auto out = decode1(aggregate_states(ref, updates, cfg));
  EXPECT_NEAR(out[0], 0.5f, 1e-5f);  // honest delta kept
  EXPECT_NEAR(out[1], 0.5f, 1e-5f);  // attacker clipped 100 -> 1, then averaged
}

TEST(Aggregation, NormClipSelfTunesToMedianNorm) {
  const byte_buffer ref = encode1({0.0f});
  const std::vector<model_update> updates = {make_update(0, 1, {2.0f}),
                                             make_update(1, 1, {2.0f}),
                                             make_update(2, 1, {200.0f})};
  aggregation_config cfg;
  cfg.rule = aggregation_rule::norm_clipped_mean;  // clip_norm = 0: median = 2
  const auto out = decode1(aggregate_states(ref, updates, cfg));
  EXPECT_NEAR(out[0], (2.0f + 2.0f + 2.0f) / 3.0f, 1e-4f);
}

TEST(Aggregation, NormClipFollowsTheFmaddPolicy) {
  // The delta accumulation must round exactly like ops::detail::fmadd — the
  // repo-wide float-accumulation policy (R1) — so the aggregate is
  // bit-identical across build flags (-ffp-contract on FMA targets would
  // otherwise fuse a raw `out += w * delta` into a differently-rounded FMA).
  const std::vector<float> ref_v = {0.1f, -0.3f, 2.5f};
  const std::vector<std::vector<float>> clients = {{1.0f / 3.0f, 0.7f, -0.2f},
                                                   {0.2f, -1.1f, 3.9f}};
  const byte_buffer ref = encode1(ref_v);
  const std::vector<model_update> updates = {make_update(0, 1, clients[0]),
                                             make_update(1, 1, clients[1])};
  aggregation_config cfg;
  cfg.rule = aggregation_rule::norm_clipped_mean;
  cfg.clip_norm = 100.0f;  // far above both delta norms: scale = 1 for all
  const auto out = decode1(aggregate_states(ref, updates, cfg));

  std::vector<float> expect = ref_v;  // same order as the implementation
  for (const auto& s : clients)
    for (std::size_t j = 0; j < expect.size(); ++j)
      expect[j] = ops::detail::fmadd(0.5f, s[j] - ref_v[j], expect[j]);
  ASSERT_EQ(out.size(), expect.size());
  for (std::size_t j = 0; j < expect.size(); ++j) EXPECT_EQ(out[j], expect[j]);
}

TEST(Aggregation, StructureMismatchThrows) {
  const byte_buffer ref = encode1({0.0f, 0.0f});
  const std::vector<model_update> updates = {make_update(0, 1, {1.0f})};
  EXPECT_THROW(aggregate_states(ref, updates, aggregation_config{}), error);
}

TEST(Aggregation, RuleNamesAreDistinct) {
  EXPECT_STRNE(aggregation_rule_name(aggregation_rule::fedavg),
               aggregation_rule_name(aggregation_rule::coordinate_median));
  EXPECT_STRNE(aggregation_rule_name(aggregation_rule::trimmed_mean),
               aggregation_rule_name(aggregation_rule::norm_clipped_mean));
}

// ---- end-to-end federation with a malicious member ------------------------------

models::vit_config tiny_vit_config() {
  models::vit_config vc;
  vc.name = "tiny-vit";
  vc.image_size = 16;
  vc.patch_size = 4;
  vc.dim = 16;
  vc.heads = 2;
  vc.blocks = 2;
  vc.mlp_hidden = 32;
  vc.classes = 4;
  return vc;
}

struct fed_fixture {
  data::dataset ds;

  fed_fixture()
      : ds{[] {
          data::dataset_config c = data::cifar10_like();
          c.classes = 4;
          c.train_per_class = 60;
          c.test_per_class = 20;
          return c;
        }()} {}

  std::unique_ptr<models::model> fresh_model() const {
    return std::make_unique<models::vit_model>(tiny_vit_config());
  }

  std::vector<std::int64_t> shard_of(std::int64_t client, std::int64_t clients) const {
    std::vector<std::int64_t> out;
    for (std::int64_t i = client; i < ds.train_size(); i += clients) out.push_back(i);
    return out;
  }

  static const fed_fixture& get() {
    static fed_fixture f;
    return f;
  }
};

void run_round(fl_server& server, const std::vector<fl_client*>& clients,
               const local_train_config& lc, const aggregation_config& ac) {
  const byte_buffer g = server.broadcast();
  std::vector<model_update> updates;
  for (fl_client* c : clients) {
    c->receive_global(g);
    updates.push_back(c->local_update(lc));
  }
  server.aggregate(updates, ac);
}

struct backdoor_run {
  float success_rate;
  float clean_accuracy;
};

backdoor_run run_backdoor_federation(const fed_fixture& f, aggregation_rule rule, float boost) {
  const std::int64_t n_clients = 4;
  backdoor_config bd;
  bd.trigger.size = 4;  // one full ViT patch
  bd.target_class = 0;
  bd.poison_fraction = 0.25f;
  bd.boost = boost;

  fl_server server{f.fresh_model()};
  std::vector<std::unique_ptr<fl_client>> owned;
  for (std::int64_t i = 0; i + 1 < n_clients; ++i)
    owned.push_back(std::make_unique<fl_client>(i, f.fresh_model(),
                                                f.shard_of(i, n_clients), f.ds));
  owned.push_back(std::make_unique<backdoor_client>(
      n_clients - 1, f.fresh_model(), f.shard_of(n_clients - 1, n_clients), f.ds, bd));

  std::vector<fl_client*> clients;
  for (auto& c : owned) clients.push_back(c.get());

  local_train_config lc;
  lc.epochs = 2;
  lc.batch_size = 16;
  lc.lr = 3e-3f;
  aggregation_config ac;
  ac.rule = rule;
  for (std::int64_t r = 0; r < 4; ++r) run_round(server, clients, lc, ac);

  return {backdoor_success_rate(server.global_model(), f.ds, bd, 60),
          models::accuracy(server.global_model(), f.ds.test_images(), f.ds.test_labels())};
}

TEST(Backdoor, SucceedsUnderFedavgWithBoost) {
  const auto& f = fed_fixture::get();
  const backdoor_run r = run_backdoor_federation(f, aggregation_rule::fedavg, 4.0f);
  EXPECT_GT(r.success_rate, 0.6f) << "trigger did not embed";
  EXPECT_GT(r.clean_accuracy, 0.7f) << "backdoor must stay stealthy on the main task";
}

TEST(Backdoor, CoordinateMedianMitigates) {
  const auto& f = fed_fixture::get();
  const backdoor_run fedavg = run_backdoor_federation(f, aggregation_rule::fedavg, 4.0f);
  const backdoor_run median = run_backdoor_federation(f, aggregation_rule::coordinate_median, 4.0f);
  EXPECT_LT(median.success_rate, fedavg.success_rate - 0.3f);
  EXPECT_GT(median.clean_accuracy, 0.7f);
}

TEST(Backdoor, NormClipBluntsModelReplacement) {
  const auto& f = fed_fixture::get();
  const backdoor_run fedavg = run_backdoor_federation(f, aggregation_rule::fedavg, 8.0f);
  const backdoor_run clipped =
      run_backdoor_federation(f, aggregation_rule::norm_clipped_mean, 8.0f);
  EXPECT_LT(clipped.success_rate, fedavg.success_rate + 1e-3f);
  EXPECT_GT(clipped.clean_accuracy, 0.7f);
}

struct evasion_run {
  float attack_rate;  ///< replay success over ALL probe attempts
  float clean_accuracy;
  std::int64_t successful_crafts;
  std::int64_t attempts;
};

evasion_run run_evasion_federation(const fed_fixture& f, bool shielded) {
  const std::int64_t n_clients = 4;
  evasion_poison_config ec;
  ec.params = attacks::params_for_dataset("cifar10_like");
  ec.shielded = shielded;
  ec.crafts_per_round = 6;

  fl_server server{f.fresh_model()};
  std::vector<std::unique_ptr<fl_client>> owned;
  for (std::int64_t i = 0; i + 1 < n_clients; ++i)
    owned.push_back(std::make_unique<fl_client>(i, f.fresh_model(),
                                                f.shard_of(i, n_clients), f.ds));
  auto poisoner = std::make_unique<evasion_poison_client>(
      n_clients - 1, f.fresh_model(), f.shard_of(n_clients - 1, n_clients), f.ds, ec);
  evasion_poison_client* poisoner_ptr = poisoner.get();
  owned.push_back(std::move(poisoner));

  std::vector<fl_client*> clients;
  for (auto& c : owned) clients.push_back(c.get());

  local_train_config lc;
  lc.epochs = 2;
  lc.batch_size = 16;
  lc.lr = 3e-3f;
  for (std::int64_t r = 0; r < 4; ++r) run_round(server, clients, lc, aggregation_config{});

  return {replay_attack_rate(server.global_model(), poisoner_ptr->replay_set(),
                             poisoner_ptr->craft_attempts()),
          models::accuracy(server.global_model(), f.ds.test_images(), f.ds.test_labels()),
          static_cast<std::int64_t>(poisoner_ptr->replay_set().size()),
          poisoner_ptr->craft_attempts()};
}

TEST(EvasionPoisoning, PeltaDefangsTheReplaySet) {
  const auto& f = fed_fixture::get();
  const evasion_run open = run_evasion_federation(f, /*shielded=*/false);
  const evasion_run shielded = run_evasion_federation(f, /*shielded=*/true);
  // Unshielded: the probe finds real adversarial examples, and reinforcing
  // them through the updates keeps them misclassified by the global model.
  // Shielded: most probes fail outright — there is nothing to reinforce.
  EXPECT_GT(open.successful_crafts, shielded.successful_crafts);
  EXPECT_GT(open.attack_rate, shielded.attack_rate + 0.2f);
  EXPECT_GT(open.clean_accuracy, 0.7f);
  EXPECT_GT(shielded.clean_accuracy, 0.7f);
}

TEST(EvasionPoisoning, AttemptCountingAndReplayGrowth) {
  const auto& f = fed_fixture::get();
  evasion_poison_config ec;
  ec.params = attacks::params_for_dataset("cifar10_like");
  ec.crafts_per_round = 3;
  evasion_poison_client client{0, f.fresh_model(), f.shard_of(0, 4), f.ds, ec};
  local_train_config lc;
  lc.epochs = 1;
  lc.batch_size = 16;
  (void)client.local_update(lc);
  EXPECT_EQ(client.craft_attempts(), 3);
  (void)client.local_update(lc);
  EXPECT_EQ(client.craft_attempts(), 6);
  EXPECT_LE(client.replay_set().size(), 6u);
  for (const auto& s : client.replay_set()) EXPECT_NE(s.adopted_label, s.true_label);
}

}  // namespace
}  // namespace pelta::fl
