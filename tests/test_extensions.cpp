// Extension features: related-work baseline shield (param-gradient
// masking), BPDA surrogate attacker, TEE attestation, FL state payloads.
#include <gtest/gtest.h>

#include "attacks/bpda.h"
#include "autodiff/ops_loss.h"
#include "fl/state.h"
#include "models/trainer.h"
#include "models/zoo.h"
#include "shield/baselines.h"
#include "shield/masked_view.h"
#include "tee/attestation.h"
#include "tensor/ops.h"

namespace pelta {
namespace {

data::dataset small_dataset() {
  data::dataset_config c = data::cifar10_like();
  c.classes = 4;
  c.train_per_class = 50;
  c.test_per_class = 15;
  return data::dataset{c};
}

models::task_spec tiny_task() {
  models::task_spec t;
  t.classes = 4;
  return t;
}

// ---- param-gradient shield (DarkneTZ/PPFL/GradSec policy, §II) ---------------

TEST(ParamShield, MasksParametersButExposesInputGradient) {
  auto m = models::make_vit_b16_sim(tiny_task());
  rng gen{1};
  const tensor image = tensor::rand_uniform(gen, {1, 3, 16, 16});
  models::forward_pass fp = m->forward(image, ad::norm_mode::eval);
  const ad::node_id labels = fp.graph.add_constant(tensor{{1}, {0.0f}});
  const ad::node_id loss = fp.graph.add_transform(ad::make_cross_entropy(), {fp.logits, labels});
  fp.graph.backward(loss);

  tee::enclave enclave;
  const shield::shield_report r = shield::param_gradient_shield(fp.graph, &enclave, "pg/");
  const shield::masked_view view{fp.graph, r};

  // Every parameter masked (the inversion defense)...
  EXPECT_EQ(r.masked_param_scalars, m->parameter_count());
  EXPECT_GT(enclave.used_bytes(), 0);
  // ...but the evasion-attack quantity stays readable.
  EXPECT_TRUE(shield::input_gradient_exposed(fp.graph, r));
  EXPECT_NO_THROW(view.adjoint(fp.input));
  EXPECT_EQ(r.masked_input, ad::invalid_node);
}

TEST(ParamShield, OracleDeliversTrueGradient) {
  auto m = models::make_vit_b16_sim(tiny_task());
  const data::dataset ds = small_dataset();
  auto clear = attacks::make_clear_oracle(*m);
  auto pg = attacks::make_param_shield_oracle(*m);
  const tensor x0 = ds.test_image(0);
  const auto qc = clear->query(x0, ds.test_label(0));
  const auto qp = pg->query(x0, ds.test_label(0));
  // Identical gradients: the related-work policy does nothing for evasion.
  EXPECT_LT(ops::norm_linf(ops::sub(qc.gradient, qp.gradient)), 1e-6f);
}

TEST(ParamShield, PgdSucceedsDespiteParamShield) {
  const data::dataset ds = small_dataset();
  auto m = models::make_vit_b16_sim(tiny_task());
  models::train_config tc;
  tc.epochs = 8;
  tc.lr = 3e-3f;
  models::train_model(*m, ds, tc);

  const attacks::suite_params p = attacks::table2_cifar_params();
  const models::model* mp = m.get();
  const attacks::oracle_factory pg_factory = [mp](std::uint64_t) {
    return attacks::make_param_shield_oracle(*mp);
  };
  const attacks::robust_eval under_pg =
      attacks::evaluate_attack(*m, ds, attacks::attack_kind::pgd, p, pg_factory, 20, 3);
  const attacks::robust_eval under_pelta = attacks::evaluate_attack(
      *m, ds, attacks::attack_kind::pgd, p, attacks::shielded_oracle_factory(*m), 20, 3);
  // The paper's §II claim, measured: param-gradient shielding leaves the
  // model as attackable as the open white box; PELTA does not.
  EXPECT_LE(under_pg.robust_accuracy, 0.2f);
  EXPECT_GT(under_pelta.robust_accuracy, under_pg.robust_accuracy + 0.4f);
}

// ---- BPDA surrogate attacker (§IV-C) -------------------------------------------

TEST(Bpda, SurrogateDistillsFromVictimLogits) {
  const data::dataset ds = small_dataset();
  auto victim = models::make_vit_b16_sim(tiny_task());
  models::train_config tc;
  tc.epochs = 8;
  tc.lr = 3e-3f;
  models::train_model(*victim, ds, tc);

  attacks::surrogate_config sc;
  sc.architecture = "ViT-B/16";
  sc.epochs = 6;
  sc.seed = 777;  // different init than the victim
  const attacks::surrogate_result r = attacks::train_surrogate(*victim, ds, sc);
  ASSERT_NE(r.surrogate, nullptr);
  EXPECT_EQ(r.label_queries, ds.train_size());
  EXPECT_GT(r.agreement, 0.8f) << "distillation should track the victim";

  // Different initialization — genuinely different parameters.
  const tensor& vw = victim->params().get("head.w").value;
  const tensor& sw = r.surrogate->params().get("head.w").value;
  EXPECT_GT(ops::norm_linf(ops::sub(vw, sw)), 1e-3f);
}

TEST(Bpda, TransferAttackBeatsUpsamplingButCostsTraining) {
  const data::dataset ds = small_dataset();
  auto victim = models::make_vit_b16_sim(tiny_task());
  models::train_config tc;
  tc.epochs = 8;
  tc.lr = 3e-3f;
  models::train_model(*victim, ds, tc);

  attacks::surrogate_config sc;
  sc.architecture = "ViT-B/16";
  sc.epochs = 6;
  sc.seed = 778;
  const attacks::surrogate_result sr = attacks::train_surrogate(*victim, ds, sc);

  const attacks::suite_params p = attacks::table2_cifar_params();
  const attacks::robust_eval transfer =
      attacks::evaluate_transfer_attack(*victim, *sr.surrogate, ds, p, 20, 5);
  const attacks::robust_eval upsampling = attacks::evaluate_attack(
      *victim, ds, attacks::attack_kind::pgd, p, attacks::shielded_oracle_factory(*victim), 20,
      5);
  // Athalye et al.'s point, quantified: a trained approximation recovers
  // attack success that random upsampling cannot...
  EXPECT_LT(transfer.robust_accuracy, upsampling.robust_accuracy);
  // ...while the attacker had to spend a full training run + label queries.
  EXPECT_EQ(sr.label_queries, ds.train_size());
}

// ---- attestation ---------------------------------------------------------------

TEST(Attestation, QuoteVerifiesAgainstMatchingState) {
  tee::enclave e;
  e.store("w", tensor::ones({4}));
  const std::uint64_t nonce = 0x1234;
  const tee::quote q = tee::issue_quote(e, nonce);
  EXPECT_TRUE(tee::verify_quote(q, e.measurement(), nonce));
}

TEST(Attestation, RejectsWrongNonceOrMeasurementOrForgery) {
  tee::enclave e;
  e.store("w", tensor::ones({4}));
  const tee::quote q = tee::issue_quote(e, 7);
  EXPECT_FALSE(tee::verify_quote(q, e.measurement(), 8));        // replayed nonce
  EXPECT_FALSE(tee::verify_quote(q, e.measurement() ^ 1, 7));    // wrong state
  tee::quote forged = q;
  forged.measurement ^= 1;                                        // tampered quote
  EXPECT_FALSE(tee::verify_quote(forged, forged.measurement, 7));
}

TEST(Attestation, QuoteTracksEnclaveContents) {
  tee::enclave e;
  const tee::quote before = tee::issue_quote(e, 1);
  e.store("w", tensor::ones({4}));
  const tee::quote after = tee::issue_quote(e, 1);
  EXPECT_NE(before.measurement, after.measurement);
}

// ---- FL state payloads (BN buffers on the wire) --------------------------------

TEST(FlState, SnapshotRoundTripsParamsOnly) {
  auto a = models::make_vit_b16_sim(tiny_task());
  auto b = models::make_vit_b16_sim(tiny_task());
  rng gen{2};
  a->params().get("head.w").value = tensor::randn(gen, {32, 4});
  fl::install_state(*b, fl::snapshot_state(*a));
  EXPECT_LT(ops::norm_linf(ops::sub(a->params().get("head.w").value,
                                    b->params().get("head.w").value)),
            1e-7f);
}

TEST(FlState, SnapshotCarriesBatchnormBuffers) {
  models::task_spec t = tiny_task();
  auto a = models::make_resnet56_sim(t);
  auto b = models::make_resnet56_sim(t);
  ASSERT_FALSE(a->batchnorm_buffers().empty());

  // Mutate a's running stats (as local training would).
  a->batchnorm_buffers()[0]->running_mean.fill_(0.7f);
  a->batchnorm_buffers()[0]->running_var.fill_(2.5f);
  fl::install_state(*b, fl::snapshot_state(*a));
  EXPECT_FLOAT_EQ(b->batchnorm_buffers()[0]->running_mean[0], 0.7f);
  EXPECT_FLOAT_EQ(b->batchnorm_buffers()[0]->running_var[0], 2.5f);
}

TEST(FlState, BitHasNoBatchnormState) {
  auto bit = models::make_bit_r101x3_sim(tiny_task());
  EXPECT_TRUE(bit->batchnorm_buffers().empty());  // GroupNorm: stateless
}

TEST(FlState, InstallRejectsTruncatedPayload) {
  auto a = models::make_resnet56_sim(tiny_task());
  byte_buffer buf = fl::snapshot_state(*a);
  buf.resize(buf.size() - 8);
  EXPECT_THROW(fl::install_state(*a, buf), error);
}

}  // namespace
}  // namespace pelta
