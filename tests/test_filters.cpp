// models/filters: the fixed band-pass input filters encoding the CNN/ViT
// frequency biases. They are constant graph nodes, so the key contracts are
// the filter semantics and that gradients keep flowing to the pixel input.
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/graph.h"
#include "models/filters.h"
#include "tensor/tensor.h"

namespace pelta::models {
namespace {

TEST(Filters, BoxBlurPreservesConstantInterior) {
  // Zero padding only affects the border ring: interior pixels of a
  // constant image are unchanged by a 3x3 box blur.
  ad::graph g;
  const ad::node_id x = g.add_input(tensor::full({1, 2, 5, 5}, 0.75f));
  const ad::node_id y = apply_box_blur(g, x, 2, "lowpass");
  const tensor& out = g.value(y);
  ASSERT_EQ(out.shape(), (shape_t{1, 2, 5, 5}));
  for (std::int64_t c = 0; c < 2; ++c)
    for (std::int64_t i = 1; i < 4; ++i)
      for (std::int64_t j = 1; j < 4; ++j)
        EXPECT_NEAR(out.at(0, c, i, j), 0.75f, 1e-5f);
  // Border rows see zero padding, so they average in zeros and shrink.
  EXPECT_LT(out.at(0, 0, 0, 0), 0.75f);
}

TEST(Filters, HighPassOfConstantIsZeroInterior) {
  ad::graph g;
  const ad::node_id x = g.add_input(tensor::full({1, 3, 6, 6}, 0.4f));
  const ad::node_id y = apply_high_pass(g, x, 3, "highpass");
  const tensor& out = g.value(y);
  for (std::int64_t c = 0; c < 3; ++c)
    for (std::int64_t i = 1; i < 5; ++i)
      for (std::int64_t j = 1; j < 5; ++j)
        EXPECT_NEAR(out.at(0, c, i, j), 0.0f, 1e-4f);
}

TEST(Filters, HighPassAmplifiesByGain) {
  // An isolated spike: high-pass response at the spike is
  // gain * (1 - 1/9) of its magnitude.
  tensor img = tensor::zeros({1, 1, 5, 5});
  img.at(0, 0, 2, 2) = 1.0f;
  ad::graph g2, g4;
  const ad::node_id x2 = g2.add_input(img);
  const ad::node_id y2 = apply_high_pass(g2, x2, 1, "hp", 2.0f);
  const ad::node_id x4 = g4.add_input(img);
  const ad::node_id y4 = apply_high_pass(g4, x4, 1, "hp", 4.0f);
  EXPECT_NEAR(g4.value(y4).at(0, 0, 2, 2) / g2.value(y2).at(0, 0, 2, 2), 2.0f, 1e-4f);
}

TEST(Filters, GradientsFlowThroughToPixels) {
  // Attacks operate in pixel space: backward through the fixed filter must
  // reach the input with nonzero adjoints.
  rng g{5};
  for (const bool high_pass : {false, true}) {
    ad::graph gr;
    const ad::node_id x = gr.add_input(tensor::rand_uniform(g, {1, 2, 5, 5}));
    const ad::node_id y = high_pass ? apply_high_pass(gr, x, 2, "hp")
                                    : apply_box_blur(gr, x, 2, "lp");
    gr.backward_from(y, tensor::ones(gr.value(y).shape()));
    const tensor& adj = gr.adjoint(x);
    float norm = 0.0f;
    for (std::int64_t i = 0; i < adj.numel(); ++i) norm += std::fabs(adj[i]);
    EXPECT_GT(norm, 0.0f) << "high_pass=" << high_pass;
  }
}

}  // namespace
}  // namespace pelta::models
