// Property sweeps over the extension modules: defenses, aggregation rules,
// the model-family shield invariants, and attack-budget monotonicity.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "attacks/runner.h"
#include "autodiff/ops_loss.h"
#include "defenses/encoding.h"
#include "defenses/quantization.h"
#include "fl/aggregation.h"
#include "models/mlp.h"
#include "models/trainer.h"
#include "models/zoo.h"
#include "shield/masked_view.h"
#include "shield/shield.h"
#include "tensor/ops.h"

namespace pelta {
namespace {

// ---- quantizer sweep -----------------------------------------------------------

class QuantizerBits : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(QuantizerBits, IdempotentOnGridAndKillsSubQuantumNoise) {
  const std::int64_t bits = GetParam();
  const defenses::bit_depth_quantizer q{bits};
  rng g{static_cast<std::uint64_t>(bits)};
  const tensor x = tensor::rand_uniform(g, {3, 8, 8});
  rng unused{0};
  const tensor once = q.apply(x, unused);
  const tensor twice = q.apply(once, unused);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    ASSERT_FLOAT_EQ(twice[i], once[i]);
    // the grid error is at most half a quantum
    ASSERT_LE(std::abs(once[i] - x[i]), 0.5f / static_cast<float>(q.levels()) + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizerBits, ::testing::Values(1, 2, 3, 4, 6, 8));

// ---- JPEG quality sweep ----------------------------------------------------------

TEST(JpegQualitySweep, RoundTripErrorIsMonotoneInQuality) {
  rng g{5};
  const tensor x = tensor::rand_uniform(g, {3, 16, 16}, 0.2f, 0.8f);
  rng unused{0};
  float prev_err = 1e9f;
  for (const std::int64_t q : {5, 20, 40, 60, 80, 100}) {
    const float err = ops::norm_l2(ops::sub(defenses::jpeg_codec{q}.apply(x, unused), x));
    EXPECT_LE(err, prev_err * 1.05f) << "quality " << q;  // 5% slack for rounding luck
    prev_err = err;
  }
}

// ---- shield invariants across every model family ----------------------------------

class ShieldFamilies : public ::testing::TestWithParam<int> {};

TEST_P(ShieldFamilies, FrontierMasksInputGradientAndLeavesClearAdjoint) {
  models::task_spec task;
  task.image_size = 16;
  task.channels = 3;
  task.classes = 4;
  const int idx = GetParam();
  std::unique_ptr<models::model> m;
  switch (idx) {
    case 0: m = models::make_vit_b16_sim(task); break;
    case 1: m = models::make_resnet56_sim(task); break;
    case 2: m = models::make_bit_r101x3_sim(task); break;
    default: {
      models::mlp_config c;
      c.image_size = task.image_size;
      c.classes = task.classes;
      c.hidden = {32, 16};
      m = std::make_unique<models::mlp_model>(c);
    }
  }

  rng g{7};
  const tensor image = tensor::rand_uniform(g, {3, 16, 16});
  models::forward_pass fp = m->forward(image.reshape({1, 3, 16, 16}), ad::norm_mode::eval);
  const ad::node_id labels = fp.graph.add_constant(tensor{shape_t{1}, {0.0f}});
  const ad::node_id loss =
      fp.graph.add_transform(ad::make_cross_entropy(), {fp.logits, labels}, "loss");
  fp.graph.backward(loss);

  const shield::shield_report report =
      shield::pelta_shield_tags(fp.graph, m->shield_frontier_tags(), nullptr);
  const shield::masked_view view{fp.graph, report};

  // invariant 1: dL/dx is always denied
  EXPECT_THROW((void)view.input_gradient(), tee::enclave_access_error);
  // invariant 2: the adjoint of the shallowest clear layer is available
  const tensor& delta = view.clear_adjoint();
  EXPECT_GT(delta.numel(), 0);
  // invariant 3: something parametric is inside the enclave, and the input
  // value itself (the attacker's own sample) stays readable
  EXPECT_GT(report.masked_param_scalars, 0);
  EXPECT_NO_THROW((void)view.value(fp.input));
  // invariant 4: every masked transform is input-dependent
  for (ad::node_id id : report.masked_transforms) EXPECT_TRUE(fp.graph.at(id).input_dependent);
}

std::string shield_family_name(int index) {
  switch (index) {
    case 0: return "vit";
    case 1: return "resnet";
    case 2: return "bit";
    default: return "mlp";
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ShieldFamilies, ::testing::Values(0, 1, 2, 3),
                         [](const auto& info) { return shield_family_name(info.param); });

// ---- attack-budget monotonicity ----------------------------------------------------

TEST(AttackBudget, PgdSuccessIsMonotoneInEpsilon) {
  data::dataset_config dc = data::cifar10_like();
  dc.classes = 4;
  dc.train_per_class = 50;
  dc.test_per_class = 15;
  const data::dataset ds{dc};

  models::vit_config vc;
  vc.name = "tiny";
  vc.image_size = 16;
  vc.patch_size = 4;
  vc.dim = 16;
  vc.heads = 2;
  vc.blocks = 2;
  vc.mlp_hidden = 32;
  vc.classes = 4;
  models::vit_model m{vc};
  models::train_config tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  models::train_model(m, ds, tc);

  float prev_success = -1.0f;
  for (const float eps : {0.004f, 0.016f, 0.062f}) {
    attacks::suite_params p = attacks::table2_cifar_params();
    p.eps = eps;
    p.eps_step = eps / 10.0f;
    const attacks::robust_eval r = attacks::evaluate_attack(
        m, ds, attacks::attack_kind::pgd, p, attacks::clear_oracle_factory(m), 20, 3);
    const float success = 1.0f - r.robust_accuracy;
    EXPECT_GE(success, prev_success - 0.05f) << "eps " << eps;  // small slack: finite N
    prev_success = success;
  }
  EXPECT_GT(prev_success, 0.8f);  // the largest ball must be devastating
}

// ---- aggregation-rule algebraic properties -------------------------------------------

byte_buffer encode_vec(std::vector<float> v) {
  byte_buffer out;
  serialize_tensor(tensor{shape_t{static_cast<std::int64_t>(v.size())}, std::move(v)}, out);
  return out;
}

class AggregationRules : public ::testing::TestWithParam<fl::aggregation_rule> {};

TEST_P(AggregationRules, InvariantUnderClientPermutation) {
  rng g{11};
  const byte_buffer ref = encode_vec({0.0f, 0.0f, 0.0f});
  std::vector<fl::model_update> updates;
  for (std::int64_t c = 0; c < 5; ++c) {
    fl::model_update u;
    u.client_id = c;
    u.sample_count = 1 + c % 3;
    u.parameters = encode_vec({g.uniform(-1, 1), g.uniform(-1, 1), g.uniform(-1, 1)});
    updates.push_back(std::move(u));
  }
  fl::aggregation_config cfg;
  cfg.rule = GetParam();
  const byte_buffer forward = fl::aggregate_states(ref, updates, cfg);
  std::reverse(updates.begin(), updates.end());
  const byte_buffer reversed = fl::aggregate_states(ref, updates, cfg);
  // equal up to accumulation rounding (FedAvg and norm-clip sum in client order)
  std::size_t of = 0, orv = 0;
  const tensor tf = deserialize_tensor(forward, of);
  const tensor tr = deserialize_tensor(reversed, orv);
  ASSERT_TRUE(tf.same_shape(tr));
  for (std::int64_t i = 0; i < tf.numel(); ++i) EXPECT_NEAR(tf[i], tr[i], 1e-6f);
}

TEST_P(AggregationRules, IdenticalUpdatesAggregateToThemselves) {
  const byte_buffer ref = encode_vec({0.5f, -0.25f});
  std::vector<fl::model_update> updates;
  for (std::int64_t c = 0; c < 4; ++c) {
    fl::model_update u;
    u.client_id = c;
    u.sample_count = 2;
    u.parameters = encode_vec({1.5f, -2.0f});
    updates.push_back(std::move(u));
  }
  fl::aggregation_config cfg;
  cfg.rule = GetParam();
  const byte_buffer out = fl::aggregate_states(ref, updates, cfg);
  std::size_t offset = 0;
  const tensor t = deserialize_tensor(out, offset);
  EXPECT_NEAR(t[0], 1.5f, 1e-4f);
  EXPECT_NEAR(t[1], -2.0f, 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Rules, AggregationRules,
                         ::testing::Values(fl::aggregation_rule::fedavg,
                                           fl::aggregation_rule::coordinate_median,
                                           fl::aggregation_rule::trimmed_mean,
                                           fl::aggregation_rule::norm_clipped_mean),
                         [](const auto& info) {
                           std::string name = fl::aggregation_rule_name(info.param);
                           for (char& ch : name)
                             if (ch == ' ' || ch == '-') ch = '_';
                           return name;
                         });

}  // namespace
}  // namespace pelta
