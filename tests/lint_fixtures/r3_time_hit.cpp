#include <chrono>
// R3 time-vocabulary hit. Wall-clock/sleep APIs (and <chrono>) are banned
// in EVERY src/ file, core/simclock included; the bare `now` / `clock`
// identifiers below additionally hit everywhere EXCEPT core/simclock —
// the one file allowed to name time.
struct timers {
  long now = 0;                        // line 7: vocabulary
  long clock = 0;                      // line 8: vocabulary
};
long wall(timers& t) {
  struct timespec ts;
  clock_gettime(0, &ts);               // line 12: wall API
  timespec_get(&ts, 1);                // line 13: wall API
  gettimeofday(&ts, nullptr);          // line 14: wall API
  nanosleep(&ts, &ts);                 // line 15: wall API
  usleep(100);                         // line 16: wall API
  return t.now + t.clock;              // line 17: vocabulary, twice
}
