// R6 fixture (miss): the annotated wrappers used with full discipline.
// Prose mentions of std::mutex (like this one) are scrubbed before matching,
// and so is the string literal below.
#include "core/sync.h"

class stats {
 public:
  void add(double v) PELTA_EXCLUDES(mutex_);
  double total() const PELTA_REQUIRES(mutex_);

 private:
  mutable sync::mutex mutex_;
  double total_ PELTA_GUARDED_BY(mutex_) = 0.0;
};

const char* describe() { return "std::condition_variable"; }

sync::mutex& accessor();         // reference: not an owning member declaration
static sync::mutex local_guard;  // no trailing underscore: not a member
