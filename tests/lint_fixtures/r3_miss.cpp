// R3 miss: the simulated clock is integers, and identifier boundaries must
// hold — operand/brand/strand contain "rand" but are not rand().
struct sim_clock { long now_ns = 0; };
long operand(long brand) { return brand; }
long strand(long x) { return x; }
// talking about steady_clock in a comment is fine
const char* doc() { return "uses steady_clock::now and rand() in prose"; }
long f(sim_clock& clk) {
  clk.now_ns += 10;
  return operand(strand(clk.now_ns));
}
