// R2 miss: arena workspace, and a std::vector that only lives in prose —
// "use std::vector here" in a comment or "new" in a string must not count.
struct scratch_buffer { float* data(); };
struct scratch_arena { static scratch_arena& local(); scratch_buffer take(unsigned long); };
const char* banner() { return "brand new std::vector resize( story"; }
void f(long krows, long spatial) {
  scratch_buffer cols = scratch_arena::local().take(krows * spatial);  // the sanctioned path
  // a renewed newline is fine: `news`, `renew` and `newline` are not `new`
  long news = 0; long renew = news; (void)renew;
  (void)cols;
}
