#include <chrono>
#include <cstdlib>
#include <random>
// R3 hit: wall clock + OS entropy in simulated-clock / seeded-RNG territory.
long f() {
  auto t0 = std::chrono::steady_clock::now();              // line 6
  auto t1 = std::chrono::system_clock::now();              // line 7
  auto t2 = std::chrono::high_resolution_clock::now();     // line 8
  std::random_device rd;                                   // line 9
  std::srand(rd());                                        // line 10
  long r = std::rand();                                    // line 11
  return r + t0.time_since_epoch().count() + t1.time_since_epoch().count() +
         t2.time_since_epoch().count();
}
