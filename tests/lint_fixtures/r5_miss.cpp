#include <map>
#include <set>
#include <vector>
// R5 miss: ordered containers iterate deterministically.
struct report {
  std::map<long, long> per_client;
  std::set<long> seen;
  std::vector<long> order;
};
