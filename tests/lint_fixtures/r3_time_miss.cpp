// R3 time-vocabulary miss: stamps are named explicitly, and identifier
// boundaries must hold — now_ns / known / snowball contain "now",
// sim_clock_view / clocked contain "clock", asynchronous contains
// "chrono", and none of them are the banned words.
struct sim_clock_view {
  double now_ns = 0.0;
  double submit_ns = 0.0;
  bool clocked = false;
  long asynchronous_rounds = 0;
};
long known(long snowball) { return snowball; }
// prose may say now, clock, chrono, clock_gettime, nanosleep
const char* doc() { return "clock_gettime and now in prose are fine"; }
double f(sim_clock_view& v) { return v.now_ns + v.submit_ns + known(7); }
