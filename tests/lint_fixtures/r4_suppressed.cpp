#include <thread>
// R4 suppressed: an architectural exception with its reason on record.
struct server {
  // pelta-lint: allow(R4) enclave-resident worker, cannot be a pool task
  std::thread worker_;
};
