// R1 miss in the quantization file: integer code/column-sum accumulation is
// the quantized path's exact arithmetic, not a float-rounding hazard.
#include <cstdint>
void colsums(const std::int8_t* codes, std::int32_t* sums, long k, long n) {
  for (long j = 0; j < n; ++j) {
    std::int32_t csum = 0;
    for (long kk = 0; kk < k; ++kk) csum += codes[kk * n + j];  // int32 accumulator
    sums[j] += csum;                                            // int32 element
  }
}
