#include <unordered_map>
#include <unordered_set>
// R5 hit: unordered containers in a deterministic aggregation/report path.
struct report {
  std::unordered_map<long, long> per_client;  // line 5
  std::unordered_set<long> seen;              // line 6
};
