// R1 miss: every accumulation shape the rule must NOT flag.
namespace detail { inline float fmadd(float a, float b, float c) { return a * b + c; } }
void f(const float* a, const float* b, float* out, long n) {
  double acc = 0.0;                                   // double-widened accumulator
  for (long i = 0; i < n; i += 4) acc += a[i];        // loop stepping + double acc
  long count = 0;
  count += n;                                         // integral accumulation
  const float* p = a;
  p += 2;                                             // pointer stepping
  double sums[2] = {0.0, 0.0};
  sums[0] += acc;                                     // double element
  for (long i = 0; i < n; ++i) out[i] = detail::fmadd(a[i], b[i], out[i]);  // the policy
  out[0] = static_cast<float>(sums[0]) + *p + static_cast<float>(count);
}
