#include <vector>
// R2 hit: heap allocation in an arena-governed hot file.
void f(long krows, long spatial) {
  std::vector<float> cols(krows * spatial);  // line 4: std::vector
  cols.resize(krows);                        // line 5: resize()
  float* raw = new float[16];                // line 6: raw new
  delete[] raw;
}
