// R6 fixture (suppressed): documented exceptions ride reasoned allows —
// both the raw-primitive form and the unguarded-member form.
#include "core/sync.h"

class legacy {
  std::mutex raw_;      // pelta-lint: allow(R6) fixture: third-party handoff owns this lock
  sync::mutex orphan_;  // pelta-lint: allow(R6) fixture: guards caller-owned tensors, nothing to annotate
};
