// R1 hit in the quantization file: a raw float accumulation on the fp32
// dequantize side (the int32 accumulators are the exempt shape below).
void dequant(const int* acc, const float* scale, float* out, int n) {
  float drift = 0.0f;
  for (int i = 0; i < n; ++i) {
    out[i] = static_cast<float>(acc[i]) * scale[i];
    drift += out[i];  // line 7: float var += — must go through detail::fmadd
  }
  out[0] = drift;
}
