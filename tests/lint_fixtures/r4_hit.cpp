#include <future>
#include <thread>
// R4 hit: hand-rolled concurrency outside tensor/parallel.
void f() {
  std::thread t([] {});                         // line 5
  auto fut = std::async([] { return 1; });      // line 6
  t.join();
  fut.get();
}
