// R6 fixture (hit): raw std lock primitives outside core/sync.h, and a
// sync::mutex member that no PELTA_* annotation ever names.
#include "core/sync.h"

class stats {
  std::mutex raw_mutex_;
  std::condition_variable raw_cv_;
  sync::mutex orphan_;
};
