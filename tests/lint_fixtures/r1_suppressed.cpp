// R1 suppressed: trailing and own-line allows with reasons.
void f(const float* go, const long* ix, float* gi, long n) {
  for (long i = 0; i < n; ++i)
    gi[ix[i]] += go[i];  // pelta-lint: allow(R1) disjoint scatter, plain + in fixed order
  // pelta-lint: allow(R1) demo of the own-line form covering the next line
  gi[0] += go[0];
}
