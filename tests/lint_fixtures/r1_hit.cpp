// R1 hit: raw float accumulation outside fmadd / double accumulators.
void f(const float* a, const float* b, float* out, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += a[i];          // line 4: float var +=
  for (int i = 0; i < n; ++i) out[i] += a[i] * b[i];  // line 5: float elem += (fma hazard)
  out[0] = acc;
}
