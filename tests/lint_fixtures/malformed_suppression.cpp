// A pelta-lint comment that is not a well-formed allow() is diagnosed, not
// silently ignored — typos must not become silent holes in the gate.
void f() {}
// pelta-lint: alow(R3) typo in the verb
// pelta-lint: allow R3 missing parentheses
