// Edge-collection fixture: quoted includes become layering edges; an
// allow(L1) marks its line's edge suppressed; system headers and
// commented-out directives are never edges.
#include <vector>
#include "beta/util.h"
// #include "gamma/dead.h"
#include "gamma/exception.h"  // pelta-lint: allow(L1) fixture: documented one-off edge
