// Reason is mandatory: this allow() must NOT silence the finding, and the
// bare suppression is itself diagnosed.
void f(const float* a, float* out, long n) {
  for (long i = 0; i < n; ++i)
    out[i] += a[i];  // pelta-lint: allow(R1)
}
