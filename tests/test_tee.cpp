// TEE enclave simulator: world access control, capacity, sealing,
// attestation, cost accounting.
#include <gtest/gtest.h>

#include "tee/enclave.h"

namespace pelta::tee {
namespace {

TEST(Enclave, StartsInNormalWorld) {
  enclave e;
  EXPECT_EQ(e.current_world(), world::normal);
  EXPECT_EQ(e.used_bytes(), 0);
  EXPECT_EQ(e.capacity_bytes(), enclave::k_default_capacity);
}

TEST(Enclave, NormalWorldLoadDenied) {
  enclave e;
  e.store("secret", tensor::ones({4}));
  EXPECT_THROW(e.load("secret"), enclave_access_error);
  EXPECT_EQ(e.statistics().denied_accesses, 1);
}

TEST(Enclave, SecureWorldLoadSucceeds) {
  enclave e;
  e.store("secret", tensor::full({4}, 2.5f));
  {
    secure_session session{e};
    const tensor& t = e.load("secret");
    EXPECT_FLOAT_EQ(t[0], 2.5f);
  }
  // Session ended: back to denial.
  EXPECT_THROW(e.load("secret"), enclave_access_error);
}

TEST(Enclave, WorldSwitchAccounting) {
  enclave e;
  const auto before = e.statistics().world_switches;
  {
    secure_session session{e};
  }
  EXPECT_EQ(e.statistics().world_switches - before, 2);  // enter + exit
  EXPECT_GT(e.statistics().simulated_ns, 0.0);
}

TEST(Enclave, DoubleEnterThrows) {
  enclave e;
  e.enter_secure();
  EXPECT_THROW(e.enter_secure(), error);
  e.exit_secure();
  EXPECT_THROW(e.exit_secure(), error);
}

TEST(Enclave, StoreReplacesAndTracksBytes) {
  enclave e;
  e.store("a", tensor::ones({100}));
  EXPECT_EQ(e.used_bytes(), 400);
  e.store("a", tensor::ones({10}));  // replacement shrinks usage
  EXPECT_EQ(e.used_bytes(), 40);
  EXPECT_EQ(e.entry_count(), 1);
  e.store("b", tensor::ones({5}));
  EXPECT_EQ(e.used_bytes(), 60);
  EXPECT_EQ(e.keys().size(), 2u);
}

TEST(Enclave, CapacityEnforced) {
  enclave e{256};  // 64 floats
  e.store("a", tensor::ones({32}));
  EXPECT_THROW(e.store("b", tensor::ones({64})), enclave_capacity_error);
  // The failed store must not corrupt accounting.
  EXPECT_EQ(e.used_bytes(), 128);
  EXPECT_FALSE(e.contains("b"));
}

TEST(Enclave, TrustZoneBudgetMatchesPaperConstraint) {
  // The paper's motivation: TrustZone secure memory is ~30 MB, far below
  // model sizes (>500 MB), hence partial shielding.
  enclave e;
  EXPECT_EQ(e.capacity_bytes(), 30ll * 1024 * 1024);
}

TEST(Enclave, EraseAndClear) {
  enclave e;
  e.store("a", tensor::ones({8}));
  e.store("b", tensor::ones({8}));
  e.erase("a");
  EXPECT_FALSE(e.contains("a"));
  EXPECT_EQ(e.used_bytes(), 32);
  e.erase("missing");  // no-op
  e.clear();
  EXPECT_EQ(e.used_bytes(), 0);
  EXPECT_EQ(e.entry_count(), 0);
}

TEST(Enclave, LoadMissingKeyThrowsInSecureWorld) {
  enclave e;
  secure_session session{e};
  EXPECT_THROW(e.load("nope"), error);
}

TEST(Enclave, IdempotentStoresKeepUsageConstant) {
  // Iterated attacks re-shield the same pass: keys repeat, usage is stable
  // (the paper's worst case of an unflushed enclave).
  enclave e;
  for (int i = 0; i < 10; ++i) e.store("u3", tensor::ones({64}));
  EXPECT_EQ(e.used_bytes(), 256);
}

TEST(Sealing, RoundTrip) {
  byte_buffer plain{1, 2, 3, 4, 5, 250};
  const sealed_blob blob = seal(plain, 0xdeadbeef);
  EXPECT_NE(blob.ciphertext, plain);  // actually encrypted
  EXPECT_EQ(unseal(blob, 0xdeadbeef), plain);
}

TEST(Sealing, TamperDetected) {
  byte_buffer plain{9, 9, 9, 9};
  sealed_blob blob = seal(plain, 0x1234);
  blob.ciphertext[1] ^= 0x40;
  EXPECT_THROW(unseal(blob, 0x1234), error);
}

TEST(Sealing, WrongKeyDetected) {
  const sealed_blob blob = seal(byte_buffer{7, 7, 7}, 0x1111);
  EXPECT_THROW(unseal(blob, 0x2222), error);
}

TEST(Sealing, EmptyBufferRoundTrips) {
  const sealed_blob blob = seal(byte_buffer{}, 5);
  EXPECT_TRUE(unseal(blob, 5).empty());
}

TEST(Enclave, SealedEntryExportImport) {
  enclave e;
  rng g{1};
  const tensor secret = tensor::randn(g, {3, 3});
  e.store("w", secret);
  const sealed_blob blob = e.seal_entry("w");

  enclave e2;
  e2.import_sealed("w", blob);
  secure_session session{e2};
  const tensor& back = e2.load("w");
  for (std::int64_t i = 0; i < secret.numel(); ++i) EXPECT_FLOAT_EQ(back[i], secret[i]);
}

TEST(Enclave, MeasurementReflectsContents) {
  enclave a, b;
  EXPECT_EQ(a.measurement(), b.measurement());  // both empty
  a.store("w", tensor::ones({4}));
  EXPECT_NE(a.measurement(), b.measurement());
  b.store("w", tensor::ones({4}));
  EXPECT_EQ(a.measurement(), b.measurement());  // same contents, same measure
  b.store("w2", tensor::zeros({1}));
  EXPECT_NE(a.measurement(), b.measurement());
}

TEST(Enclave, TransferCostsAccrue) {
  cost_model costs;
  costs.world_switch_ns = 1000.0;
  costs.per_byte_ns = 1.0;
  enclave e{1 << 20, costs};
  e.reset_statistics();
  e.store("x", tensor::ones({256}));  // 1 KiB across the boundary
  const auto& s = e.statistics();
  EXPECT_EQ(s.bytes_in, 1024);
  // 2 switches (ecall in/out) + 1024 bytes * 1 ns
  EXPECT_NEAR(s.simulated_ns, 2 * 1000.0 + 1024.0, 1e-6);
}

TEST(Enclave, FnvHashIsStable) {
  const std::uint8_t data[] = {1, 2, 3};
  EXPECT_EQ(fnv1a(data, 3), fnv1a(data, 3));
  EXPECT_NE(fnv1a(data, 3), fnv1a(data, 2));
}

}  // namespace
}  // namespace pelta::tee
