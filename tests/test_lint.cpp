// pelta-lint's own suite: fixture snippets under tests/lint_fixtures/
// exercise each rule's hit, miss, allowlist and suppression paths, and a
// self-check asserts the real src/ tree is clean — so this suite and the
// `lint_pelta_tree` CTest gate can never drift apart: a rule change that
// would fail the tree gate fails here first, with gtest-grade diagnostics.
//
// The fixture files are data, not translation units: they are read at run
// time and linted under a masqueraded repo-relative path, which is what
// selects the applicable rules (see lint::applicable_rules).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "layering.h"
#include "lint.h"

namespace {

using pelta::lint::file_report;
using pelta::lint::finding;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(PELTA_LINT_FIXTURES) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

file_report lint_fixture(const std::string& name, const std::string& as_path) {
  return pelta::lint::lint_source(as_path, read_fixture(name));
}

std::vector<int> lines_for_rule(const file_report& r, const std::string& rule) {
  std::vector<int> lines;
  for (const finding& f : r.findings)
    if (f.rule == rule) lines.push_back(f.line);
  return lines;
}

// ---------------------------------------------------------------------------
// Rule scoping
// ---------------------------------------------------------------------------

TEST(LintScoping, KernelFilesGetTheAccumulationAndArenaRules) {
  using pelta::lint::applicable_rules;
  EXPECT_EQ(applicable_rules("src/tensor/kernels.cpp"),
            (std::vector<std::string>{"R1", "R2", "R3", "R4", "R6"}));
  EXPECT_EQ(applicable_rules("src/tensor/conv.cpp"),
            (std::vector<std::string>{"R1", "R2", "R3", "R4", "R6"}));
  EXPECT_EQ(applicable_rules("src/fl/aggregation.cpp"),
            (std::vector<std::string>{"R1", "R3", "R4", "R5", "R6"}));
  // The quantization vocabulary is fp32 on its dequantize side, so it owes
  // the fmadd policy — but not the arena rule (it only packs weights).
  EXPECT_EQ(applicable_rules("src/tensor/quantized_tensor.cpp"),
            (std::vector<std::string>{"R1", "R3", "R4", "R6"}));
}

TEST(LintScoping, AllowlistedCoresLoseExactlyTheirRule) {
  using pelta::lint::applicable_rules;
  // rng core may use OS entropy; it still may not spawn threads or raw-lock.
  EXPECT_EQ(applicable_rules("src/tensor/rng.h"), (std::vector<std::string>{"R4", "R6"}));
  // the pool implements concurrency; it still may not read the wall clock.
  EXPECT_EQ(applicable_rules("src/tensor/parallel.cpp"),
            (std::vector<std::string>{"R3", "R6"}));
  EXPECT_EQ(applicable_rules("src/serve/batcher.cpp"),
            (std::vector<std::string>{"R3", "R4", "R5", "R6"}));
  // the annotated-wrapper home is the one place allowed to touch the raw
  // primitives; the macro home defines, not uses, the annotations.
  EXPECT_EQ(applicable_rules("src/core/sync.h"), (std::vector<std::string>{"R3", "R4"}));
  EXPECT_EQ(applicable_rules("src/core/thread_annotations.h"),
            (std::vector<std::string>{"R3", "R4"}));
}

TEST(LintScoping, OutsideSrcNothingApplies) {
  EXPECT_TRUE(pelta::lint::applicable_rules("bench/bench_serving.cpp").empty());
  EXPECT_TRUE(pelta::lint::applicable_rules("tests/test_parallel.cpp").empty());
  EXPECT_TRUE(pelta::lint::applicable_rules("tools/pelta-lint/lint.cpp").empty());
}

// ---------------------------------------------------------------------------
// R1: raw float accumulation
// ---------------------------------------------------------------------------

TEST(LintR1, FlagsFloatVarAndFloatElementAccumulation) {
  const file_report r = lint_fixture("r1_hit.cpp", "src/tensor/kernels.cpp");
  EXPECT_EQ(lines_for_rule(r, "R1"), (std::vector<int>{4, 5}));
  EXPECT_EQ(r.suppressed, 0);
}

TEST(LintR1, AllowsLoopSteppingDoublesIntsPointersAndFmadd) {
  const file_report r = lint_fixture("r1_miss.cpp", "src/tensor/kernels.cpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings.front().message << " at line " << r.findings.front().line;
}

TEST(LintR1, WellFormedSuppressionsSilenceBothForms) {
  const file_report r = lint_fixture("r1_suppressed.cpp", "src/tensor/conv.cpp");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 2);  // trailing form + own-line form
}

TEST(LintR1, SuppressionWithoutReasonDoesNotSuppress) {
  const file_report r =
      lint_fixture("r1_suppressed_no_reason.cpp", "src/tensor/conv.cpp");
  EXPECT_EQ(lines_for_rule(r, "R1").size(), 1u);          // the violation stands
  EXPECT_EQ(lines_for_rule(r, "suppression").size(), 1u);  // and the bare allow is diagnosed
  EXPECT_EQ(r.suppressed, 0);
}

TEST(LintR1, DoesNotApplyOutsideTheAccumulationFiles) {
  const file_report r = lint_fixture("r1_hit.cpp", "src/nn/layers.cpp");
  EXPECT_TRUE(lines_for_rule(r, "R1").empty());
}

TEST(LintR1, FlagsFloatDriftOnTheDequantizeSide) {
  const file_report r =
      lint_fixture("quantize_r1_hit.cpp", "src/tensor/quantized_tensor.cpp");
  EXPECT_EQ(lines_for_rule(r, "R1"), (std::vector<int>{7}));
}

TEST(LintR1, AllowsInt32CodeAccumulationInTheQuantizeFile) {
  const file_report r =
      lint_fixture("quantize_r1_miss.cpp", "src/tensor/quantized_tensor.cpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings.front().message << " at line " << r.findings.front().line;
}

// ---------------------------------------------------------------------------
// R2: allocation in arena-governed hot files
// ---------------------------------------------------------------------------

TEST(LintR2, FlagsVectorResizeAndNew) {
  const file_report r = lint_fixture("r2_hit.cpp", "src/tensor/conv.cpp");
  EXPECT_EQ(lines_for_rule(r, "R2"), (std::vector<int>{4, 5, 6}));
}

TEST(LintR2, ArenaUseAndProseMentionsAreClean) {
  const file_report r = lint_fixture("r2_miss.cpp", "src/tensor/kernels.cpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings.front().message << " at line " << r.findings.front().line;
}

TEST(LintR2, OnlyGovernsTheHotFiles) {
  // aggregation.cpp legitimately uses std::vector — R2 must not reach it.
  const file_report r = lint_fixture("r2_hit.cpp", "src/fl/aggregation.cpp");
  EXPECT_TRUE(lines_for_rule(r, "R2").empty());
}

// ---------------------------------------------------------------------------
// R3: wall clock / OS entropy
// ---------------------------------------------------------------------------

TEST(LintR3, FlagsEveryClockAndEntropySource) {
  const file_report r = lint_fixture("r3_hit.cpp", "src/fl/async.cpp");
  // Line 1 is `#include <chrono>`; lines 6-8 each carry three findings
  // (chrono + the named clock + the bare `now` call) — the token bans are
  // independent, so a `std::chrono::steady_clock::now()` line hits thrice.
  EXPECT_EQ(lines_for_rule(r, "R3"),
            (std::vector<int>{1, 6, 6, 6, 7, 7, 7, 8, 8, 8, 9, 10, 11}));
}

TEST(LintR3, SimulatedClockAndIdentifierBoundariesAreClean) {
  const file_report r = lint_fixture("r3_miss.cpp", "src/serve/batcher.cpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings.front().message << " at line " << r.findings.front().line;
}

TEST(LintR3, RngCoreIsAllowlisted) {
  const file_report r = lint_fixture("r3_hit.cpp", "src/tensor/rng.h");
  EXPECT_TRUE(lines_for_rule(r, "R3").empty());
}

TEST(LintR3, WallClockApisHitEverywhereIncludingSimclock) {
  // core/simclock may NAME time but never read it: the vocabulary lines
  // (7, 8, 17) go quiet under the simclock path while <chrono> and the
  // POSIX wall/sleep APIs still hit.
  const file_report cpp = lint_fixture("r3_time_hit.cpp", "src/core/simclock.cpp");
  EXPECT_EQ(lines_for_rule(cpp, "R3"), (std::vector<int>{1, 12, 13, 14, 15, 16}));
  const file_report hdr = lint_fixture("r3_time_hit.cpp", "src/core/simclock.h");
  EXPECT_EQ(lines_for_rule(hdr, "R3"), (std::vector<int>{1, 12, 13, 14, 15, 16}));
}

TEST(LintR3, TimeVocabularyIsAllowedOnlyInSimclock) {
  // The same fixture under any other src/ path adds the bare `now` /
  // `clock` identifier hits (line 17 carries both, hence the duplicate).
  const file_report r = lint_fixture("r3_time_hit.cpp", "src/serve/cluster.cpp");
  EXPECT_EQ(lines_for_rule(r, "R3"),
            (std::vector<int>{1, 7, 8, 12, 13, 14, 15, 16, 17, 17}));
}

TEST(LintR3, TimeVocabularyRespectsIdentifierBoundaries) {
  // now_ns / sim_clock_view / clocked / asynchronous stay clean: the word
  // match demands identifier boundaries, and comments/strings are scrubbed.
  const file_report r = lint_fixture("r3_time_miss.cpp", "src/serve/batcher.cpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings.front().message << " at line " << r.findings.front().line;
}

// ---------------------------------------------------------------------------
// R4: threads outside the pool
// ---------------------------------------------------------------------------

TEST(LintR4, FlagsThreadAndAsync) {
  const file_report r = lint_fixture("r4_hit.cpp", "src/serve/server.cpp");
  EXPECT_EQ(lines_for_rule(r, "R4"), (std::vector<int>{5, 6}));
}

TEST(LintR4, PoolImplementationIsAllowlisted) {
  const file_report r = lint_fixture("r4_hit.cpp", "src/tensor/parallel.cpp");
  EXPECT_TRUE(lines_for_rule(r, "R4").empty());
}

TEST(LintR4, ArchitecturalExceptionRidesASuppression) {
  const file_report r = lint_fixture("r4_suppressed.cpp", "src/tee/hotcalls.h");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1);
}

// ---------------------------------------------------------------------------
// R5: unordered containers in fl/serve
// ---------------------------------------------------------------------------

TEST(LintR5, FlagsUnorderedContainersInFlAndServe) {
  EXPECT_EQ(lines_for_rule(lint_fixture("r5_hit.cpp", "src/fl/federation.cpp"), "R5"),
            (std::vector<int>{5, 6}));
  EXPECT_EQ(lines_for_rule(lint_fixture("r5_hit.cpp", "src/serve/server.cpp"), "R5"),
            (std::vector<int>{5, 6}));
}

TEST(LintR5, OrderedContainersAreClean) {
  const file_report r = lint_fixture("r5_miss.cpp", "src/fl/federation.cpp");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintR5, OtherSubsystemsMayUseHashMaps) {
  const file_report r = lint_fixture("r5_hit.cpp", "src/models/zoo.cpp");
  EXPECT_TRUE(lines_for_rule(r, "R5").empty());
}

// ---------------------------------------------------------------------------
// R6: lock discipline (raw primitives + unguarded sync::mutex members)
// ---------------------------------------------------------------------------

TEST(LintR6, FlagsRawPrimitivesAndUnguardedMembers) {
  const file_report r = lint_fixture("r6_hit.cpp", "src/serve/server.cpp");
  EXPECT_EQ(lines_for_rule(r, "R6"), (std::vector<int>{6, 7, 8}));
  EXPECT_EQ(r.suppressed, 0);
}

TEST(LintR6, AnnotatedWrappersProseAndNonMembersAreClean) {
  const file_report r = lint_fixture("r6_miss.cpp", "src/serve/server.cpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings.front().message << " at line " << r.findings.front().line;
}

TEST(LintR6, DocumentedExceptionsRideSuppressions) {
  const file_report r = lint_fixture("r6_suppressed.cpp", "src/autodiff/ops_norm.cpp");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 2);
}

TEST(LintR6, AnyAnnotationFamilyReferenceCountsAsGuarding) {
  // A mutex named only by EXCLUDES (a lock-ordering contract, no guarded
  // field of its own) is still disciplined.
  const std::string src =
      "#include \"core/sync.h\"\n"
      "class port {\n"
      "  void call() PELTA_EXCLUDES(client_mutex_);\n"
      "  mutable sync::mutex client_mutex_;\n"
      "};\n";
  const file_report r = pelta::lint::lint_source("src/tee/hotcalls.h", src);
  EXPECT_TRUE(lines_for_rule(r, "R6").empty());
}

TEST(LintR6, SyncHomeIsExemptByScope) {
  const file_report r = lint_fixture("r6_hit.cpp", "src/core/sync.h");
  EXPECT_TRUE(lines_for_rule(r, "R6").empty());
}

// ---------------------------------------------------------------------------
// Suppression syntax
// ---------------------------------------------------------------------------

TEST(LintSuppression, MalformedCommentsAreDiagnosed) {
  const file_report r = lint_fixture("malformed_suppression.cpp", "src/core/pelta.cpp");
  EXPECT_EQ(lines_for_rule(r, "suppression").size(), 2u);
}

TEST(LintSuppression, WrongRuleDoesNotSilence) {
  const std::string src =
      "void f(float* out, const float* a, long n) {\n"
      "  for (long i = 0; i < n; ++i)\n"
      "    out[i] += a[i];  // pelta-lint: allow(R2) wrong rule named\n"
      "}\n";
  const file_report r = pelta::lint::lint_source("src/tensor/conv.cpp", src);
  EXPECT_EQ(lines_for_rule(r, "R1").size(), 1u);
  EXPECT_EQ(r.suppressed, 0);
}

TEST(LintSuppression, MultiRuleAllowCoversEachNamedRule) {
  const std::string src =
      "#include <vector>\n"
      "// pelta-lint: allow(R1,R2) fixture: own-line list covers the next line\n"
      "std::vector<float> scratch;\n"                                // R2, suppressed
      "void f(float* out, const float* a, long n) {\n"
      "  for (long i = 0; i < n; ++i)\n"
      "    out[i] += a[i];  // pelta-lint: allow(R2,R1) trailing list\n"  // R1, suppressed
      "}\n";
  const file_report r = pelta::lint::lint_source("src/tensor/conv.cpp", src);
  EXPECT_TRUE(r.findings.empty())
      << r.findings.front().rule << " at line " << r.findings.front().line;
  EXPECT_EQ(r.suppressed, 2);
}

TEST(LintSuppression, SuppressionsDoNotLeakAcrossLines) {
  // The own-line form covers exactly the next line — a violation two lines
  // down must still surface.
  const std::string src =
      "void f(float* out, const float* a, long n) {\n"
      "  // pelta-lint: allow(R1) only shields the line below\n"
      "  for (long i = 0; i < n; ++i)\n"
      "    out[i] += a[i];\n"
      "}\n";
  const file_report r = pelta::lint::lint_source("src/tensor/conv.cpp", src);
  EXPECT_EQ(lines_for_rule(r, "R1"), (std::vector<int>{4}));
  EXPECT_EQ(r.suppressed, 0);
}

// ---------------------------------------------------------------------------
// Layering: edge collection out of lint_source
// ---------------------------------------------------------------------------

TEST(LintEdges, CollectsQuotedIncludesWithSuppressionState) {
  std::vector<pelta::lint::include_edge> edges;
  pelta::lint::lint_source("src/alpha/user.cpp", read_fixture("l1_suppressed.cpp"), &edges);
  ASSERT_EQ(edges.size(), 2u);  // <vector> and the commented include are not edges
  EXPECT_EQ(edges[0].target, "beta/util.h");
  EXPECT_EQ(edges[0].line, 5);
  EXPECT_FALSE(edges[0].suppressed);
  EXPECT_EQ(edges[1].target, "gamma/exception.h");
  EXPECT_EQ(edges[1].line, 7);
  EXPECT_TRUE(edges[1].suppressed);
}

// ---------------------------------------------------------------------------
// Layering: declaration parsing and DAG checking
// ---------------------------------------------------------------------------

pelta::lint::layering_spec fixture_spec(const std::string& name) {
  return pelta::lint::parse_layering_doc(read_fixture(name));
}

const std::vector<std::string> k_fixture_subs{"alpha", "beta", "delta", "gamma"};

TEST(LintLayering, ParsesAnchoredTables) {
  const pelta::lint::layering_spec spec = fixture_spec("layering_doc.md");
  ASSERT_TRUE(spec.parsed) << spec.error;
  EXPECT_EQ(spec.subsystems,
            (std::vector<std::string>{"alpha", "beta", "gamma", "delta"}));
  EXPECT_EQ(spec.allowed, (std::vector<std::pair<std::string, std::string>>{
                              {"alpha", "beta"}, {"beta", "gamma"},
                              {"delta", "beta"}, {"delta", "gamma"}}));
  EXPECT_EQ(spec.vocabulary, (std::vector<std::string>{"src/gamma/vocab.h"}));
}

TEST(LintLayering, MissingAnchorsAreAnL2Finding) {
  const pelta::lint::layering_spec spec =
      pelta::lint::parse_layering_doc("# a page without the anchors\n");
  EXPECT_FALSE(spec.parsed);
  const pelta::lint::layering_report r =
      pelta::lint::check_layering(spec, {}, k_fixture_subs);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "L2");
  EXPECT_EQ(r.findings[0].file, "docs/ARCHITECTURE.md");
}

// Edges exercising every declared edge of layering_doc.md, so the checks
// below start from a stale-free baseline.
std::vector<pelta::lint::include_edge> all_declared_edges() {
  return {{"src/alpha/a.cpp", 3, "beta/util.h", false},
          {"src/beta/b.cpp", 4, "gamma/g.h", false},
          {"src/delta/d.cpp", 5, "beta/util.h", false},
          {"src/delta/d.cpp", 6, "gamma/g.h", false}};
}

TEST(LintLayering, DeclaredEdgesAndIntraSubsystemIncludesAreClean) {
  std::vector<pelta::lint::include_edge> edges = all_declared_edges();
  edges.push_back({"src/alpha/a.cpp", 9, "alpha/sibling.h", false});  // implicit
  const pelta::lint::layering_report r =
      pelta::lint::check_layering(fixture_spec("layering_doc.md"), edges, k_fixture_subs);
  EXPECT_TRUE(r.findings.empty())
      << r.findings.front().file << ": " << r.findings.front().message;
}

TEST(LintLayering, UndeclaredEdgeIsL1AtTheIncludeLine) {
  std::vector<pelta::lint::include_edge> edges = all_declared_edges();
  edges.push_back({"src/alpha/a.cpp", 12, "gamma/g.h", false});  // alpha->gamma undeclared
  const pelta::lint::layering_report r =
      pelta::lint::check_layering(fixture_spec("layering_doc.md"), edges, k_fixture_subs);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "L1");
  EXPECT_EQ(r.findings[0].file, "src/alpha/a.cpp");
  EXPECT_EQ(r.findings[0].line, 12);
}

TEST(LintLayering, SuppressedUndeclaredEdgeMovesToSuppressed) {
  std::vector<pelta::lint::include_edge> edges = all_declared_edges();
  edges.push_back({"src/alpha/a.cpp", 12, "gamma/g.h", true});
  const pelta::lint::layering_report r =
      pelta::lint::check_layering(fixture_spec("layering_doc.md"), edges, k_fixture_subs);
  EXPECT_TRUE(r.findings.empty());
  ASSERT_EQ(r.suppressed_findings.size(), 1u);
  EXPECT_EQ(r.suppressed_findings[0].rule, "L1");
}

TEST(LintLayering, VocabularyTargetsCreateNoEdgeButVocabularyMustStayPure) {
  std::vector<pelta::lint::include_edge> edges = all_declared_edges();
  // alpha -> gamma is undeclared, but vocab.h is a vocabulary header: no edge.
  edges.push_back({"src/alpha/a.cpp", 12, "gamma/vocab.h", false});
  // ...and the vocabulary header itself reaching into beta is an L2.
  edges.push_back({"src/gamma/vocab.h", 2, "beta/util.h", false});
  const pelta::lint::layering_report r =
      pelta::lint::check_layering(fixture_spec("layering_doc.md"), edges, k_fixture_subs);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "L2");
  EXPECT_EQ(r.findings[0].file, "src/gamma/vocab.h");
}

TEST(LintLayering, StaleDeclaredEdgeIsL2) {
  std::vector<pelta::lint::include_edge> edges = all_declared_edges();
  edges.pop_back();  // nobody uses delta -> gamma any more
  const pelta::lint::layering_report r =
      pelta::lint::check_layering(fixture_spec("layering_doc.md"), edges, k_fixture_subs);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "L2");
  EXPECT_NE(r.findings[0].message.find("stale"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("`delta` -> `gamma`"), std::string::npos);
}

TEST(LintLayering, DeclaredCycleIsL2) {
  const pelta::lint::layering_report r = pelta::lint::check_layering(
      fixture_spec("layering_cycle_doc.md"),
      {{"src/alpha/a.cpp", 3, "beta/b.h", false},
       {"src/beta/b.cpp", 3, "gamma/g.h", false},
       {"src/gamma/g.cpp", 3, "alpha/a.h", false}},
      {"alpha", "beta", "gamma"});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "L2");
  EXPECT_NE(r.findings[0].message.find("cycle"), std::string::npos);
}

TEST(LintLayering, SubsystemSetMismatchIsL2BothWays) {
  // epsilon exists on disk but has no row; delta has a row but no directory.
  const pelta::lint::layering_report r = pelta::lint::check_layering(
      fixture_spec("layering_doc.md"), all_declared_edges(),
      {"alpha", "beta", "epsilon", "gamma"});
  std::vector<std::string> messages;
  for (const finding& f : r.findings) messages.push_back(f.message);
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_NE(messages[0].find("delta"), std::string::npos);
  EXPECT_NE(messages[1].find("epsilon"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON report (the CI artifact format)
// ---------------------------------------------------------------------------

TEST(LintJson, EscapesAndMarksSuppressionState) {
  pelta::lint::tree_report r;
  r.files_scanned = 2;
  r.findings.push_back({"src/a\"b\"\\c.cpp", 3, "R1", "line1\nline2\ttab"});
  r.suppressed_findings.push_back({"src/d.cpp", 7, "R4", "worker owns the enclave"});
  r.suppressed = 1;
  const std::string json = pelta::lint::to_json(r);
  EXPECT_NE(json.find("\"files_scanned\": 2"), std::string::npos);
  EXPECT_NE(json.find("a\\\"b\\\"\\\\c.cpp"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\ttab"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": false}"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": true}"), std::string::npos);
}

TEST(LintJson, EmptyReportIsValid) {
  const std::string json = pelta::lint::to_json(pelta::lint::tree_report{});
  EXPECT_NE(json.find("\"files_scanned\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"findings\": []"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Self-check: the real tree is clean. This is the same walk the
// lint_pelta_tree CTest entry gates on — if a sweep regression or a rule
// change breaks one, it breaks both, so they cannot drift apart.
// ---------------------------------------------------------------------------

TEST(LintTree, RealSourceTreeIsClean) {
  const pelta::lint::tree_report r = pelta::lint::lint_tree(PELTA_LINT_SOURCE_ROOT);
  EXPECT_GT(r.files_scanned, 100) << "walker lost the tree?";
  for (const finding& f : r.findings)
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] " << f.message;
  // The documented architectural exceptions currently on record (hotcalls
  // worker thread, conv scatter-adds). More may be added; fewer means a
  // suppression went stale and should be deleted.
  EXPECT_GE(r.suppressed, 4);
  EXPECT_EQ(static_cast<int>(r.suppressed_findings.size()), r.suppressed);
}

TEST(LintTree, LiveIncludeGraphMatchesTheDeclaredDag) {
  // The declaration the tree gate enforces: docs/ARCHITECTURE.md parses, it
  // names exactly the src/ subsystems, and — via RealSourceTreeIsClean
  // producing zero L1/L2 — every live edge is declared and no declared edge
  // is stale. Parsed here explicitly so a doc-format regression gets a
  // pointed diagnostic instead of a generic tree failure.
  std::ifstream in(std::string(PELTA_LINT_SOURCE_ROOT) + "/docs/ARCHITECTURE.md",
                   std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const pelta::lint::layering_spec spec = pelta::lint::parse_layering_doc(buf.str());
  ASSERT_TRUE(spec.parsed) << spec.error;
  std::set<std::string> declared(spec.subsystems.begin(), spec.subsystems.end());
  std::set<std::string> observed;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::string(PELTA_LINT_SOURCE_ROOT) + "/src"))
    if (entry.is_directory()) observed.insert(entry.path().filename().string());
  EXPECT_EQ(declared, observed);
  EXPECT_EQ(spec.vocabulary, (std::vector<std::string>{"src/core/thread_annotations.h",
                                                       "src/core/sync.h"}));

  const pelta::lint::tree_report r = pelta::lint::lint_tree(PELTA_LINT_SOURCE_ROOT);
  EXPECT_GT(r.edges.size(), 100u) << "include-edge collection lost the tree?";
}

}  // namespace
