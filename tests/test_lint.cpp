// pelta-lint's own suite: fixture snippets under tests/lint_fixtures/
// exercise each rule's hit, miss, allowlist and suppression paths, and a
// self-check asserts the real src/ tree is clean — so this suite and the
// `lint_pelta_tree` CTest gate can never drift apart: a rule change that
// would fail the tree gate fails here first, with gtest-grade diagnostics.
//
// The fixture files are data, not translation units: they are read at run
// time and linted under a masqueraded repo-relative path, which is what
// selects the applicable rules (see lint::applicable_rules).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

using pelta::lint::file_report;
using pelta::lint::finding;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(PELTA_LINT_FIXTURES) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

file_report lint_fixture(const std::string& name, const std::string& as_path) {
  return pelta::lint::lint_source(as_path, read_fixture(name));
}

std::vector<int> lines_for_rule(const file_report& r, const std::string& rule) {
  std::vector<int> lines;
  for (const finding& f : r.findings)
    if (f.rule == rule) lines.push_back(f.line);
  return lines;
}

// ---------------------------------------------------------------------------
// Rule scoping
// ---------------------------------------------------------------------------

TEST(LintScoping, KernelFilesGetTheAccumulationAndArenaRules) {
  using pelta::lint::applicable_rules;
  EXPECT_EQ(applicable_rules("src/tensor/kernels.cpp"),
            (std::vector<std::string>{"R1", "R2", "R3", "R4"}));
  EXPECT_EQ(applicable_rules("src/tensor/conv.cpp"),
            (std::vector<std::string>{"R1", "R2", "R3", "R4"}));
  EXPECT_EQ(applicable_rules("src/fl/aggregation.cpp"),
            (std::vector<std::string>{"R1", "R3", "R4", "R5"}));
}

TEST(LintScoping, AllowlistedCoresLoseExactlyTheirRule) {
  using pelta::lint::applicable_rules;
  // rng core may use OS entropy; it still may not spawn threads.
  EXPECT_EQ(applicable_rules("src/tensor/rng.h"), (std::vector<std::string>{"R4"}));
  // the pool implements concurrency; it still may not read the wall clock.
  EXPECT_EQ(applicable_rules("src/tensor/parallel.cpp"), (std::vector<std::string>{"R3"}));
  EXPECT_EQ(applicable_rules("src/serve/batcher.cpp"),
            (std::vector<std::string>{"R3", "R4", "R5"}));
}

TEST(LintScoping, OutsideSrcNothingApplies) {
  EXPECT_TRUE(pelta::lint::applicable_rules("bench/bench_serving.cpp").empty());
  EXPECT_TRUE(pelta::lint::applicable_rules("tests/test_parallel.cpp").empty());
  EXPECT_TRUE(pelta::lint::applicable_rules("tools/pelta-lint/lint.cpp").empty());
}

// ---------------------------------------------------------------------------
// R1: raw float accumulation
// ---------------------------------------------------------------------------

TEST(LintR1, FlagsFloatVarAndFloatElementAccumulation) {
  const file_report r = lint_fixture("r1_hit.cpp", "src/tensor/kernels.cpp");
  EXPECT_EQ(lines_for_rule(r, "R1"), (std::vector<int>{4, 5}));
  EXPECT_EQ(r.suppressed, 0);
}

TEST(LintR1, AllowsLoopSteppingDoublesIntsPointersAndFmadd) {
  const file_report r = lint_fixture("r1_miss.cpp", "src/tensor/kernels.cpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings.front().message << " at line " << r.findings.front().line;
}

TEST(LintR1, WellFormedSuppressionsSilenceBothForms) {
  const file_report r = lint_fixture("r1_suppressed.cpp", "src/tensor/conv.cpp");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 2);  // trailing form + own-line form
}

TEST(LintR1, SuppressionWithoutReasonDoesNotSuppress) {
  const file_report r =
      lint_fixture("r1_suppressed_no_reason.cpp", "src/tensor/conv.cpp");
  EXPECT_EQ(lines_for_rule(r, "R1").size(), 1u);          // the violation stands
  EXPECT_EQ(lines_for_rule(r, "suppression").size(), 1u);  // and the bare allow is diagnosed
  EXPECT_EQ(r.suppressed, 0);
}

TEST(LintR1, DoesNotApplyOutsideTheAccumulationFiles) {
  const file_report r = lint_fixture("r1_hit.cpp", "src/nn/layers.cpp");
  EXPECT_TRUE(lines_for_rule(r, "R1").empty());
}

// ---------------------------------------------------------------------------
// R2: allocation in arena-governed hot files
// ---------------------------------------------------------------------------

TEST(LintR2, FlagsVectorResizeAndNew) {
  const file_report r = lint_fixture("r2_hit.cpp", "src/tensor/conv.cpp");
  EXPECT_EQ(lines_for_rule(r, "R2"), (std::vector<int>{4, 5, 6}));
}

TEST(LintR2, ArenaUseAndProseMentionsAreClean) {
  const file_report r = lint_fixture("r2_miss.cpp", "src/tensor/kernels.cpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings.front().message << " at line " << r.findings.front().line;
}

TEST(LintR2, OnlyGovernsTheHotFiles) {
  // aggregation.cpp legitimately uses std::vector — R2 must not reach it.
  const file_report r = lint_fixture("r2_hit.cpp", "src/fl/aggregation.cpp");
  EXPECT_TRUE(lines_for_rule(r, "R2").empty());
}

// ---------------------------------------------------------------------------
// R3: wall clock / OS entropy
// ---------------------------------------------------------------------------

TEST(LintR3, FlagsEveryClockAndEntropySource) {
  const file_report r = lint_fixture("r3_hit.cpp", "src/fl/async.cpp");
  EXPECT_EQ(lines_for_rule(r, "R3"), (std::vector<int>{6, 7, 8, 9, 10, 11}));
}

TEST(LintR3, SimulatedClockAndIdentifierBoundariesAreClean) {
  const file_report r = lint_fixture("r3_miss.cpp", "src/serve/batcher.cpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings.front().message << " at line " << r.findings.front().line;
}

TEST(LintR3, RngCoreIsAllowlisted) {
  const file_report r = lint_fixture("r3_hit.cpp", "src/tensor/rng.h");
  EXPECT_TRUE(lines_for_rule(r, "R3").empty());
}

// ---------------------------------------------------------------------------
// R4: threads outside the pool
// ---------------------------------------------------------------------------

TEST(LintR4, FlagsThreadAndAsync) {
  const file_report r = lint_fixture("r4_hit.cpp", "src/serve/server.cpp");
  EXPECT_EQ(lines_for_rule(r, "R4"), (std::vector<int>{5, 6}));
}

TEST(LintR4, PoolImplementationIsAllowlisted) {
  const file_report r = lint_fixture("r4_hit.cpp", "src/tensor/parallel.cpp");
  EXPECT_TRUE(lines_for_rule(r, "R4").empty());
}

TEST(LintR4, ArchitecturalExceptionRidesASuppression) {
  const file_report r = lint_fixture("r4_suppressed.cpp", "src/tee/hotcalls.h");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1);
}

// ---------------------------------------------------------------------------
// R5: unordered containers in fl/serve
// ---------------------------------------------------------------------------

TEST(LintR5, FlagsUnorderedContainersInFlAndServe) {
  EXPECT_EQ(lines_for_rule(lint_fixture("r5_hit.cpp", "src/fl/federation.cpp"), "R5"),
            (std::vector<int>{5, 6}));
  EXPECT_EQ(lines_for_rule(lint_fixture("r5_hit.cpp", "src/serve/server.cpp"), "R5"),
            (std::vector<int>{5, 6}));
}

TEST(LintR5, OrderedContainersAreClean) {
  const file_report r = lint_fixture("r5_miss.cpp", "src/fl/federation.cpp");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintR5, OtherSubsystemsMayUseHashMaps) {
  const file_report r = lint_fixture("r5_hit.cpp", "src/models/zoo.cpp");
  EXPECT_TRUE(lines_for_rule(r, "R5").empty());
}

// ---------------------------------------------------------------------------
// Suppression syntax
// ---------------------------------------------------------------------------

TEST(LintSuppression, MalformedCommentsAreDiagnosed) {
  const file_report r = lint_fixture("malformed_suppression.cpp", "src/core/pelta.cpp");
  EXPECT_EQ(lines_for_rule(r, "suppression").size(), 2u);
}

TEST(LintSuppression, WrongRuleDoesNotSilence) {
  const std::string src =
      "void f(float* out, const float* a, long n) {\n"
      "  for (long i = 0; i < n; ++i)\n"
      "    out[i] += a[i];  // pelta-lint: allow(R2) wrong rule named\n"
      "}\n";
  const file_report r = pelta::lint::lint_source("src/tensor/conv.cpp", src);
  EXPECT_EQ(lines_for_rule(r, "R1").size(), 1u);
  EXPECT_EQ(r.suppressed, 0);
}

TEST(LintSuppression, MultiRuleAllowCoversEachNamedRule) {
  const std::string src =
      "#include <vector>\n"
      "// pelta-lint: allow(R1,R2) fixture: own-line list covers the next line\n"
      "std::vector<float> scratch;\n"                                // R2, suppressed
      "void f(float* out, const float* a, long n) {\n"
      "  for (long i = 0; i < n; ++i)\n"
      "    out[i] += a[i];  // pelta-lint: allow(R2,R1) trailing list\n"  // R1, suppressed
      "}\n";
  const file_report r = pelta::lint::lint_source("src/tensor/conv.cpp", src);
  EXPECT_TRUE(r.findings.empty())
      << r.findings.front().rule << " at line " << r.findings.front().line;
  EXPECT_EQ(r.suppressed, 2);
}

TEST(LintSuppression, SuppressionsDoNotLeakAcrossLines) {
  // The own-line form covers exactly the next line — a violation two lines
  // down must still surface.
  const std::string src =
      "void f(float* out, const float* a, long n) {\n"
      "  // pelta-lint: allow(R1) only shields the line below\n"
      "  for (long i = 0; i < n; ++i)\n"
      "    out[i] += a[i];\n"
      "}\n";
  const file_report r = pelta::lint::lint_source("src/tensor/conv.cpp", src);
  EXPECT_EQ(lines_for_rule(r, "R1"), (std::vector<int>{4}));
  EXPECT_EQ(r.suppressed, 0);
}

// ---------------------------------------------------------------------------
// Self-check: the real tree is clean. This is the same walk the
// lint_pelta_tree CTest entry gates on — if a sweep regression or a rule
// change breaks one, it breaks both, so they cannot drift apart.
// ---------------------------------------------------------------------------

TEST(LintTree, RealSourceTreeIsClean) {
  const pelta::lint::tree_report r = pelta::lint::lint_tree(PELTA_LINT_SOURCE_ROOT);
  EXPECT_GT(r.files_scanned, 100) << "walker lost the tree?";
  for (const finding& f : r.findings)
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] " << f.message;
  // The documented architectural exceptions currently on record (hotcalls
  // worker thread, conv scatter-adds). More may be added; fewer means a
  // suppression went stale and should be deleted.
  EXPECT_GE(r.suppressed, 4);
}

}  // namespace
