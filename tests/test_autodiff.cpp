// Computational graph: construction, eager forward, reverse sweep, the
// paper's G = ⟨n, l, E, u, f⟩ introspection used by Algorithm 1.
#include <gtest/gtest.h>

#include "autodiff/graph.h"
#include "autodiff/gradcheck.h"
#include "autodiff/ops_elementwise.h"
#include "autodiff/ops_linalg.h"
#include "autodiff/ops_loss.h"
#include "tensor/ops.h"

namespace pelta::ad {
namespace {

TEST(Graph, EagerForwardOnAdd) {
  graph g;
  const node_id a = g.add_constant(tensor{{2}, {1, 2}});
  const node_id b = g.add_constant(tensor{{2}, {10, 20}});
  const node_id c = g.add_transform(make_add(), {a, b}, "sum");
  EXPECT_FLOAT_EQ(g.value(c)[0], 11.0f);
  EXPECT_FLOAT_EQ(g.value(c)[1], 22.0f);
}

TEST(Graph, KindsAndFlags) {
  graph g;
  parameter w{"w", tensor::ones({2})};
  const node_id x = g.add_input(tensor{{2}, {1, 1}});
  const node_id p = g.add_parameter(w);
  const node_id k = g.add_constant(tensor::ones({2}));
  const node_id t = g.add_transform(make_add(), {x, p});
  const node_id t2 = g.add_transform(make_add(), {p, k});

  EXPECT_TRUE(g.at(x).input_dependent);
  EXPECT_FALSE(g.at(p).input_dependent);
  EXPECT_TRUE(g.at(t).input_dependent);
  EXPECT_FALSE(g.at(t2).input_dependent);  // parameter-only branch
  EXPECT_TRUE(g.at(t).requires_grad);
  EXPECT_TRUE(g.at(t2).requires_grad);
  EXPECT_FALSE(g.at(k).requires_grad);
}

TEST(Graph, BackwardThroughChain) {
  // y = 3 * (x + x) -> dy/dx = 6 per element, summed via a dot with ones.
  graph g;
  const node_id x = g.add_input(tensor{{3}, {1, 2, 3}});
  const node_id s = g.add_transform(make_add(), {x, x});
  const node_id y = g.add_transform(make_scale(3.0f), {s});
  g.backward_from(y, tensor::ones({3}));
  const tensor& gx = g.adjoint(x);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(gx[i], 6.0f);
}

TEST(Graph, BackwardScalarSeedRequiresScalar) {
  graph g;
  const node_id x = g.add_input(tensor{{2}, {1, 2}});
  EXPECT_THROW(g.backward(x), error);
}

TEST(Graph, BackwardFromChecksSeedShape) {
  graph g;
  const node_id x = g.add_input(tensor{{2}, {1, 2}});
  EXPECT_THROW(g.backward_from(x, tensor::ones({3})), error);
}

TEST(Graph, AdjointAccumulatesAcrossSeeds) {
  graph g;
  const node_id x = g.add_input(tensor{{2}, {1, 1}});
  const node_id y = g.add_transform(make_scale(2.0f), {x});
  g.backward_from(y, tensor::ones({2}));
  g.backward_from(y, tensor::ones({2}));
  EXPECT_FLOAT_EQ(g.adjoint(x)[0], 4.0f);
  g.zero_adjoints();
  EXPECT_FALSE(g.has_adjoint(x));
}

TEST(Graph, MatmulGradientsMatchFiniteDifference) {
  rng gen{20};
  const tensor a0 = tensor::randn(gen, {3, 4});
  const tensor b0 = tensor::randn(gen, {4, 2});
  const tensor seed = tensor::randn(gen, {3, 2});

  graph g;
  const node_id a = g.add_input(a0, "a");
  parameter bp{"b", b0};
  const node_id b = g.add_parameter(bp);
  const node_id c = g.add_transform(make_matmul(), {a, b});
  g.backward_from(c, seed);

  const auto fa = [&](const tensor& probe) { return ops::dot(ops::matmul(probe, b0), seed); };
  EXPECT_LT(max_rel_error(g.adjoint(a), numeric_grad(fa, a0, 1e-2f)), 0.05f);
  const auto fb = [&](const tensor& probe) { return ops::dot(ops::matmul(a0, probe), seed); };
  EXPECT_LT(max_rel_error(g.adjoint(b), numeric_grad(fb, b0, 1e-2f)), 0.05f);
}

TEST(Graph, ParamGradAccumulation) {
  parameter w{"w", tensor{{2}, {3, 4}}};
  graph g;
  const node_id x = g.add_input(tensor{{2}, {1, 2}});
  const node_id p = g.add_parameter(w);
  const node_id y = g.add_transform(make_mul(), {x, p});
  g.backward_from(y, tensor::ones({2}));
  g.accumulate_param_grads();
  EXPECT_FLOAT_EQ(w.grad[0], 1.0f);  // d(x*w)/dw = x
  EXPECT_FLOAT_EQ(w.grad[1], 2.0f);

  // second accumulation adds
  g.zero_adjoints();
  g.backward_from(y, tensor::ones({2}));
  g.accumulate_param_grads();
  EXPECT_FLOAT_EQ(w.grad[1], 4.0f);
}

TEST(Graph, ChildrenAndTags) {
  graph g;
  const node_id x = g.add_input(tensor::ones({2}), "x");
  const node_id a = g.add_transform(make_scale(1.0f), {x}, "branch.a");
  const node_id b = g.add_transform(make_scale(2.0f), {x}, "branch.b");
  const node_id c = g.add_transform(make_add(), {a, b}, "join");

  const auto kids = g.children(x);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0], a);
  EXPECT_EQ(kids[1], b);
  EXPECT_EQ(g.find_tag("join"), c);
  EXPECT_EQ(g.find_tag("nope"), invalid_node);
  EXPECT_EQ(g.find_tag_prefix("branch.").size(), 2u);
  ASSERT_EQ(g.inputs().size(), 1u);
  EXPECT_EQ(g.inputs()[0], x);
}

TEST(Graph, TopologicalEdgeEnforcement) {
  graph g;
  const node_id x = g.add_input(tensor::ones({2}));
  (void)x;
  EXPECT_THROW(g.add_transform(make_add(), {x, 5}, ""), error);  // forward reference
}

TEST(Graph, NonRequiresGradBranchSkipped) {
  graph g;
  const node_id c1 = g.add_constant(tensor::ones({2}));
  const node_id c2 = g.add_constant(tensor::ones({2}));
  const node_id sum = g.add_transform(make_add(), {c1, c2});
  g.backward_from(sum, tensor::ones({2}));
  EXPECT_FALSE(g.has_adjoint(c1));  // constants never receive adjoints
}

TEST(Graph, CrossEntropyKnownGradient) {
  // Two classes, logits [0, 0]: softmax = [.5,.5]; label 0 -> grad = (p - 1, p)/B
  graph g;
  const node_id logits = g.add_input(tensor::zeros({1, 2}));
  const node_id labels = g.add_constant(tensor{{1}, {0.0f}});
  const node_id loss = g.add_transform(make_cross_entropy(), {logits, labels});
  EXPECT_NEAR(g.value(loss).item(), std::log(2.0f), 1e-5f);
  g.backward(loss);
  EXPECT_NEAR(g.adjoint(logits).at(0, 0), -0.5f, 1e-5f);
  EXPECT_NEAR(g.adjoint(logits).at(0, 1), 0.5f, 1e-5f);
}

TEST(Graph, DiamondGraphAccumulatesBothPaths) {
  // y = 2x + 3x through two branches -> dy/dx = 5.
  graph g;
  const node_id x = g.add_input(tensor::ones({1}));
  const node_id a = g.add_transform(make_scale(2.0f), {x});
  const node_id b = g.add_transform(make_scale(3.0f), {x});
  const node_id y = g.add_transform(make_add(), {a, b});
  g.backward_from(y, tensor::ones({1}));
  EXPECT_FLOAT_EQ(g.adjoint(x)[0], 5.0f);
}

TEST(Graph, ToStringListsNodes) {
  graph g;
  const node_id x = g.add_input(tensor::ones({2}), "x");
  g.add_transform(make_relu(), {x}, "act");
  const std::string dump = g.to_string();
  EXPECT_NE(dump.find("input"), std::string::npos);
  EXPECT_NE(dump.find("relu"), std::string::npos);
  EXPECT_NE(dump.find("tag=act"), std::string::npos);
  EXPECT_NE(dump.find("[x-dep]"), std::string::npos);
}

TEST(Graph, NumericJacobianOfLinearMapIsItsMatrix) {
  // J of x -> W x equals W — the §IV-B observation that forces PELTA to
  // also mask the weights of masked linear transforms.
  rng gen{21};
  const tensor w = tensor::randn(gen, {3, 3});
  const auto f = [&](const tensor& probe) {
    return ops::matmul(probe.reshape({1, 3}), ops::transpose2d(w)).reshape({3});
  };
  const tensor x = tensor::randn(gen, {3});
  const tensor jac = numeric_jacobian(f, x, 1e-2f);
  EXPECT_LT(max_rel_error(jac, w), 0.05f);
}

}  // namespace
}  // namespace pelta::ad
