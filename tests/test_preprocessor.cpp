// defenses/preprocessor: the common input-transformation interface and the
// chain combinator the software defenses (randomization / quantization /
// encoding) compose through.
#include <gtest/gtest.h>

#include "defenses/encoding.h"
#include "defenses/preprocessor.h"
#include "defenses/quantization.h"
#include "defenses/randomization.h"
#include "tensor/tensor.h"

namespace pelta::defenses {
namespace {

tensor probe_image(std::uint64_t seed = 9) {
  rng g{seed};
  return tensor::rand_uniform(g, {3, 8, 8});
}

TEST(PreprocessorChain, EmptyChainIsIdentity) {
  preprocessor_chain chain;
  EXPECT_TRUE(chain.empty());
  EXPECT_FALSE(chain.randomized());
  EXPECT_FALSE(chain.shatters_gradient());

  rng g{1};
  const tensor img = probe_image();
  const tensor out = chain.apply(img, g);
  ASSERT_EQ(out.shape(), img.shape());
  for (std::int64_t i = 0; i < img.numel(); ++i) EXPECT_EQ(out[i], img[i]);
}

TEST(PreprocessorChain, FlagsAggregateAcrossStages) {
  preprocessor_chain chain;
  chain.add(std::make_unique<gaussian_noise>(0.05f));
  EXPECT_TRUE(chain.randomized());
  EXPECT_FALSE(chain.shatters_gradient());  // noise is differentiable

  chain.add(std::make_unique<bit_depth_quantizer>(4));
  EXPECT_TRUE(chain.randomized());
  EXPECT_TRUE(chain.shatters_gradient());  // quantizer staircase
  EXPECT_EQ(chain.size(), 2);
}

TEST(PreprocessorChain, DescribeJoinsStageNames) {
  preprocessor_chain chain;
  chain.add(std::make_unique<bit_depth_quantizer>(4));
  chain.add(std::make_unique<gaussian_noise>(0.05f));
  const std::string desc = chain.describe();
  EXPECT_NE(desc.find(chain.stage(0).name()), std::string::npos);
  EXPECT_NE(desc.find(chain.stage(1).name()), std::string::npos);
}

TEST(PreprocessorChain, AppliesStagesFrontToBack) {
  // quantize-then-noise differs from noise-then-quantize: the latter's
  // output lands exactly on the quantizer grid.
  const tensor img = probe_image();
  const std::int64_t levels = bit_depth_quantizer{3}.levels();

  preprocessor_chain noise_then_quant;
  noise_then_quant.add(std::make_unique<gaussian_noise>(0.1f));
  noise_then_quant.add(std::make_unique<bit_depth_quantizer>(3));
  rng g{2};
  const tensor out = noise_then_quant.apply(img, g);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    const float scaled = out[i] * static_cast<float>(levels);
    EXPECT_NEAR(scaled, std::round(scaled), 1e-3f);
  }
}

TEST(Preprocessor, ShapeAndRangePreserved) {
  const tensor img = probe_image();
  rng g{3};
  preprocessor_chain chain;
  chain.add(std::make_unique<random_resize_pad>(2));
  chain.add(std::make_unique<bit_depth_quantizer>(5));
  chain.add(std::make_unique<gaussian_noise>(0.02f));
  for (int rep = 0; rep < 4; ++rep) {
    const tensor out = chain.apply(img, g);
    ASSERT_EQ(out.shape(), img.shape());
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      EXPECT_GE(out[i], 0.0f);
      EXPECT_LE(out[i], 1.0f);
    }
  }
}

TEST(Preprocessor, DeterministicStagesIgnoreRngState) {
  const tensor img = probe_image();
  bit_depth_quantizer q{4};
  rng g1{1}, g2{999};
  const tensor a = q.apply(img, g1);
  const tensor b = q.apply(img, g2);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace pelta::defenses
