// Property-based suites (parameterized over seeds): PELTA's Algorithm 1
// invariants on randomly generated graphs, attack ε-ball containment,
// serialization round-trips, enclave accounting under random workloads.
#include <gtest/gtest.h>

#include <map>

#include "attacks/runner.h"
#include "autodiff/ops_elementwise.h"
#include "autodiff/ops_loss.h"
#include "models/trainer.h"
#include "models/zoo.h"
#include "shield/masked_view.h"
#include "shield/policy.h"
#include "tee/enclave.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace pelta {
namespace {

// ---- random graphs: Algorithm 1 invariants ------------------------------------

// Build a random DAG: a chain of input-dependent transforms with random
// parameter attachments and random skip connections.
struct random_graph {
  ad::graph g;
  std::vector<std::unique_ptr<ad::parameter>> params;
  std::vector<ad::node_id> chain;  // input-dependent transforms in order

  explicit random_graph(std::uint64_t seed) {
    rng gen{seed};
    const std::int64_t dim = 4;
    const ad::node_id x = g.add_input(tensor::randn(gen, {dim}), "x");
    chain.push_back(x);

    const std::int64_t depth = 3 + static_cast<std::int64_t>(gen.uniform_int(0, 4));
    for (std::int64_t d = 0; d < depth; ++d) {
      const ad::node_id prev = chain.back();
      ad::node_id next;
      switch (gen.uniform_int(0, 3)) {
        case 0: {  // elementwise product with a parameter
          params.push_back(std::make_unique<ad::parameter>(
              "p" + std::to_string(d), tensor::randn(gen, {dim})));
          next = g.add_transform(ad::make_mul(), {prev, g.add_parameter(*params.back())});
          break;
        }
        case 1: {  // skip connection to a random earlier chain node
          const std::size_t pick =
              static_cast<std::size_t>(gen.uniform_int(0, static_cast<std::int64_t>(chain.size()) - 1));
          next = g.add_transform(ad::make_add(), {prev, chain[pick]});
          break;
        }
        case 2:
          next = g.add_transform(ad::make_gelu(), {prev});
          break;
        default:
          next = g.add_transform(ad::make_scale(gen.uniform(0.5f, 2.0f)), {prev});
      }
      chain.push_back(next);
    }
    g.backward_from(chain.back(), tensor::ones({dim}));
  }
};

class ShieldInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShieldInvariants, AlgorithmOneOnRandomGraphs) {
  random_graph rg{GetParam()};
  rng gen{GetParam() ^ 0xabcdu};
  // Select a random frontier along the chain (never the input itself).
  const std::size_t k =
      1 + static_cast<std::size_t>(gen.uniform_int(0, static_cast<std::int64_t>(rg.chain.size()) - 2));
  const ad::node_id frontier = rg.chain[k];

  const shield::shield_report r = shield::pelta_shield(rg.g, {frontier}, nullptr);
  const shield::masked_view view{rg.g, r};

  // (1) The input is always reached and its gradient denied.
  EXPECT_EQ(r.masked_input, rg.chain.front());
  EXPECT_THROW(view.input_gradient(), tee::enclave_access_error);

  // (2) Every masked transform is input-dependent; every one of its
  //     input-dependent parents is masked too (transitive closure).
  for (ad::node_id id : r.masked_transforms) {
    const ad::node& n = rg.g.at(id);
    EXPECT_TRUE(n.input_dependent);
    for (ad::node_id p : n.parents) {
      const ad::node& parent = rg.g.at(p);
      if (parent.input_dependent) {
        EXPECT_TRUE(r.is_masked(p)) << "edge " << p << "->" << id;
      }
    }
  }

  // (3) Jacobian records exist exactly for input-dependent edges into
  //     masked transforms.
  std::map<std::pair<ad::node_id, ad::node_id>, int> expected;
  for (ad::node_id id : r.masked_transforms)
    for (ad::node_id p : rg.g.at(id).parents)
      if (rg.g.at(p).input_dependent) ++expected[{p, id}];
  std::map<std::pair<ad::node_id, ad::node_id>, int> got;
  for (const auto& j : r.jacobians) ++got[{j.from, j.to}];
  EXPECT_EQ(got, expected);

  // (4) Parameters attached to masked transforms are masked; parameters
  //     attached only to clear transforms are not.
  for (const auto& p : rg.params) {
    const ad::node_id pid = rg.g.find_tag(p->name);
    if (pid == ad::invalid_node) continue;
    bool feeds_masked = false;
    for (ad::node_id child : rg.g.children(pid))
      if (r.is_masked(child) && rg.g.at(child).input_dependent) feeds_masked = true;
    EXPECT_EQ(r.is_masked(pid), feeds_masked) << p->name;
  }

  // (5) Every clear-frontier member has a masked parent and is itself
  //     clear. (When the Select frontier is the deepest vertex the whole
  //     graph is masked and the clear frontier is legitimately empty.)
  const auto clear = view.clear_frontier();
  if (frontier != rg.chain.back()) {
    ASSERT_FALSE(clear.empty());
  }
  for (ad::node_id id : clear) {
    bool has_masked_parent = false;
    for (ad::node_id p : rg.g.at(id).parents) has_masked_parent |= r.is_masked(p);
    EXPECT_TRUE(has_masked_parent);
    EXPECT_FALSE(r.is_masked(id));
  }

  // (6) Accounting is internally consistent.
  EXPECT_EQ(r.total_bytes(), r.bytes_activations + r.bytes_gradients + r.bytes_parameters);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShieldInvariants,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---- attack containment properties --------------------------------------------

class AttackBall : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AttackBall, IteratesStayInEpsilonBallAndPixelRange) {
  const std::uint64_t seed = GetParam();
  models::task_spec task;
  task.classes = 3;
  task.seed = seed;
  auto m = models::make_vit_b32_sim(task);  // untrained is fine for containment

  rng gen{seed};
  const tensor x0 = tensor::rand_uniform(gen, {3, 16, 16});
  const std::int64_t label = gen.uniform_int(0, 2);
  const float eps = gen.uniform(0.01f, 0.1f);

  auto clear = attacks::make_clear_oracle(*m);
  auto shielded = attacks::make_shielded_oracle(*m, seed);
  for (attacks::gradient_oracle* oracle : {clear.get(), shielded.get()}) {
    attacks::pgd_config pc;
    pc.eps = eps;
    pc.eps_step = eps / 4.0f;
    pc.steps = 6;
    pc.early_stop = false;
    const tensor xp = attacks::run_pgd(*oracle, x0, label, pc).adversarial;
    EXPECT_LE(attacks::linf_distance(xp, x0), eps + 1e-5f);
    EXPECT_LE(ops::max(xp), 1.0f);
    EXPECT_GE(ops::min(xp), 0.0f);

    attacks::mim_config mc;
    mc.eps = eps;
    mc.eps_step = eps / 4.0f;
    mc.steps = 6;
    mc.early_stop = false;
    const tensor xm = attacks::run_mim(*oracle, x0, label, mc).adversarial;
    EXPECT_LE(attacks::linf_distance(xm, x0), eps + 1e-5f);

    attacks::apgd_config ac;
    ac.eps = eps;
    ac.max_queries = 12;
    ac.early_stop = false;
    rng restart{seed + 1};
    const tensor xa = attacks::run_apgd(*oracle, x0, label, ac, restart).adversarial;
    EXPECT_LE(attacks::linf_distance(xa, x0), eps + 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttackBall, ::testing::Values(3u, 4u, 5u, 6u));

// ---- serialization fuzz ---------------------------------------------------------

class SerializeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeFuzz, RandomShapesRoundTrip) {
  rng gen{GetParam()};
  byte_buffer buf;
  std::vector<tensor> originals;
  const int count = 1 + static_cast<int>(gen.uniform_int(0, 5));
  for (int i = 0; i < count; ++i) {
    shape_t s;
    const int rank = static_cast<int>(gen.uniform_int(0, 4));
    for (int d = 0; d < rank; ++d) s.push_back(gen.uniform_int(1, 5));
    originals.push_back(tensor::randn(gen, s));
    serialize_tensor(originals.back(), buf);
  }
  std::size_t offset = 0;
  for (const tensor& t : originals) {
    const tensor back = deserialize_tensor(buf, offset);
    ASSERT_TRUE(back.same_shape(t));
    for (std::int64_t i = 0; i < t.numel(); ++i) ASSERT_FLOAT_EQ(back[i], t[i]);
  }
  EXPECT_EQ(offset, buf.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzz, ::testing::Range<std::uint64_t>(1, 11));

// ---- enclave accounting under random workloads ----------------------------------

class EnclaveWorkload : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnclaveWorkload, UsageAlwaysMatchesContents) {
  rng gen{GetParam()};
  tee::enclave e{1 << 16};
  std::map<std::string, std::int64_t> expect;

  for (int step = 0; step < 60; ++step) {
    const std::string key = "k" + std::to_string(gen.uniform_int(0, 7));
    if (gen.bernoulli(0.7)) {
      const std::int64_t n = gen.uniform_int(1, 64);
      try {
        e.store(key, tensor::zeros({n}));
        expect[key] = n * 4;
      } catch (const tee::enclave_capacity_error&) {
        // rejected stores must leave accounting untouched (checked below)
      }
    } else {
      e.erase(key);
      expect.erase(key);
    }
    std::int64_t total = 0;
    for (const auto& [k, v] : expect) total += v;
    ASSERT_EQ(e.used_bytes(), total);
    ASSERT_EQ(e.entry_count(), static_cast<std::int64_t>(expect.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnclaveWorkload, ::testing::Range<std::uint64_t>(1, 9));

// ---- sealing fuzz ---------------------------------------------------------------

class SealingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SealingFuzz, RandomBuffersRoundTripAndDetectTamper) {
  rng gen{GetParam()};
  byte_buffer plain(static_cast<std::size_t>(gen.uniform_int(1, 256)));
  for (auto& b : plain) b = static_cast<std::uint8_t>(gen.uniform_int(0, 255));
  const std::uint64_t key = gen.next_u64();

  const tee::sealed_blob blob = tee::seal(plain, key);
  EXPECT_EQ(tee::unseal(blob, key), plain);

  tee::sealed_blob tampered = blob;
  const std::size_t pos = static_cast<std::size_t>(
      gen.uniform_int(0, static_cast<std::int64_t>(tampered.ciphertext.size()) - 1));
  tampered.ciphertext[pos] ^= static_cast<std::uint8_t>(1 + gen.uniform_int(0, 254));
  EXPECT_THROW(tee::unseal(tampered, key), error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SealingFuzz, ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace pelta
