// Tensor substrate: shapes, factories, arithmetic, reductions, linear
// algebra, serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/ops.h"
#include "tensor/parallel.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace pelta {
namespace {

TEST(Shape, NumelAndStrides) {
  EXPECT_EQ(numel_of({}), 1);
  EXPECT_EQ(numel_of({3}), 3);
  EXPECT_EQ(numel_of({2, 3, 4}), 24);
  EXPECT_EQ(numel_of({5, 0}), 0);
  const shape_t st = strides_of({2, 3, 4});
  EXPECT_EQ(st, (shape_t{12, 4, 1}));
  EXPECT_EQ(to_string(shape_t{2, 3}), "[2, 3]");
}

TEST(Shape, NegativeExtentThrows) { EXPECT_THROW(numel_of({2, -1}), error); }

TEST(Tensor, DefaultIsScalarZero) {
  tensor t;
  EXPECT_EQ(t.ndim(), 0);
  EXPECT_EQ(t.numel(), 1);
  EXPECT_FLOAT_EQ(t.item(), 0.0f);
}

TEST(Tensor, Factories) {
  tensor z = tensor::zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  for (float v : z.data()) EXPECT_FLOAT_EQ(v, 0.0f);

  tensor o = tensor::ones({4});
  for (float v : o.data()) EXPECT_FLOAT_EQ(v, 1.0f);

  tensor f = tensor::full({2, 2}, 3.5f);
  for (float v : f.data()) EXPECT_FLOAT_EQ(v, 3.5f);

  tensor s = tensor::scalar(-2.0f);
  EXPECT_FLOAT_EQ(s.item(), -2.0f);

  tensor a = tensor::arange(5);
  EXPECT_FLOAT_EQ(a[0], 0.0f);
  EXPECT_FLOAT_EQ(a[4], 4.0f);
}

TEST(Tensor, RandomFactoriesDeterministic) {
  rng g1{99}, g2{99};
  tensor a = tensor::randn(g1, {8, 8});
  tensor b = tensor::randn(g2, {8, 8});
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);

  rng g3{7};
  tensor u = tensor::rand_uniform(g3, {100}, -0.5f, 0.5f);
  for (float v : u.data()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
  }
}

TEST(Tensor, ExplicitDataCtorValidatesSize) {
  EXPECT_NO_THROW((tensor{{2, 2}, {1, 2, 3, 4}}));
  EXPECT_THROW((tensor{{2, 2}, {1, 2, 3}}), error);
}

TEST(Tensor, MultiDimAccess) {
  tensor t{{2, 3}};
  t.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 7.0f);
  EXPECT_FLOAT_EQ(t[5], 7.0f);

  tensor t3{{2, 2, 2}};
  t3.at(1, 0, 1) = 2.0f;
  EXPECT_FLOAT_EQ(t3[5], 2.0f);

  tensor t4{{2, 2, 2, 2}};
  t4.at(1, 1, 1, 1) = 9.0f;
  EXPECT_FLOAT_EQ(t4[15], 9.0f);
}

TEST(Tensor, BoundsChecked) {
  tensor t{{2, 2}};
  EXPECT_THROW(t.at(2, 0), error);
  EXPECT_THROW(t.at(0, -1), error);
  EXPECT_THROW(t[4], error);
  EXPECT_THROW(t.item(), error);  // not a single element
}

TEST(Tensor, SizeNegativeIndexing) {
  tensor t{{2, 3, 4}};
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-3), 2);
  EXPECT_THROW(t.size(3), error);
}

TEST(Tensor, ReshapePreservesData) {
  tensor t = tensor::arange(6).reshape({2, 3});
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
  tensor f = t.flatten();
  EXPECT_EQ(f.ndim(), 1);
  EXPECT_THROW(t.reshape({4}), error);
}

TEST(Tensor, InPlaceArithmetic) {
  tensor a = tensor::ones({3});
  tensor b = tensor::full({3}, 2.0f);
  a.add_(b);
  EXPECT_FLOAT_EQ(a[0], 3.0f);
  a.sub_(b);
  EXPECT_FLOAT_EQ(a[1], 1.0f);
  a.mul_(4.0f);
  EXPECT_FLOAT_EQ(a[2], 4.0f);
  a.add_scaled_(b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 5.0f);
  a.fill_(0.25f);
  EXPECT_FLOAT_EQ(a[1], 0.25f);
  a.clamp_(0.0f, 0.2f);
  EXPECT_FLOAT_EQ(a[2], 0.2f);
  tensor c = tensor::ones({4});
  EXPECT_THROW(a.add_(c), error);
}

TEST(Tensor, ByteSize) {
  EXPECT_EQ(tensor::zeros({10, 10}).byte_size(), 400);
}

TEST(Ops, ElementwiseBinary) {
  tensor a{{3}, {1, 2, 3}};
  tensor b{{3}, {4, 5, 6}};
  EXPECT_FLOAT_EQ(ops::add(a, b)[1], 7.0f);
  EXPECT_FLOAT_EQ(ops::sub(a, b)[0], -3.0f);
  EXPECT_FLOAT_EQ(ops::mul(a, b)[2], 18.0f);
  EXPECT_FLOAT_EQ(ops::div(b, a)[1], 2.5f);
  tensor c{{2}, {1, 2}};
  EXPECT_THROW(ops::add(a, c), error);
}

TEST(Ops, ElementwiseUnary) {
  tensor a{{4}, {-2, -0.5f, 0, 3}};
  EXPECT_FLOAT_EQ(ops::neg(a)[0], 2.0f);
  EXPECT_FLOAT_EQ(ops::relu(a)[0], 0.0f);
  EXPECT_FLOAT_EQ(ops::relu(a)[3], 3.0f);
  EXPECT_FLOAT_EQ(ops::abs(a)[1], 0.5f);
  EXPECT_FLOAT_EQ(ops::sign(a)[0], -1.0f);
  EXPECT_FLOAT_EQ(ops::sign(a)[2], 0.0f);
  EXPECT_FLOAT_EQ(ops::sign(a)[3], 1.0f);
  EXPECT_NEAR(ops::exp(a)[2], 1.0f, 1e-6f);
  EXPECT_NEAR(ops::tanh(a)[2], 0.0f, 1e-6f);
  EXPECT_FLOAT_EQ(ops::clamp(a, -1, 1)[0], -1.0f);
  EXPECT_NEAR(ops::sqrt(tensor{{1}, {9}})[0], 3.0f, 1e-6f);
  EXPECT_NEAR(ops::log(tensor{{1}, {1}})[0], 0.0f, 1e-6f);
  EXPECT_FLOAT_EQ(ops::map(a, [](float x) { return x * 10; })[3], 30.0f);
  EXPECT_FLOAT_EQ(ops::add_scalar(a, 1.0f)[2], 1.0f);
  EXPECT_FLOAT_EQ(ops::mul_scalar(a, -2.0f)[0], 4.0f);
}

TEST(Ops, Reductions) {
  tensor a{{4}, {1, -2, 3, 0}};
  EXPECT_FLOAT_EQ(ops::sum(a), 2.0f);
  EXPECT_FLOAT_EQ(ops::mean(a), 0.5f);
  EXPECT_FLOAT_EQ(ops::max(a), 3.0f);
  EXPECT_FLOAT_EQ(ops::min(a), -2.0f);
  EXPECT_EQ(ops::argmax(a), 2);
  EXPECT_NEAR(ops::norm_l2(tensor{{2}, {3, 4}}), 5.0f, 1e-6f);
  EXPECT_FLOAT_EQ(ops::norm_linf(a), 3.0f);
  EXPECT_FLOAT_EQ(ops::dot(a, a), 14.0f);
}

TEST(Ops, ArgmaxLastDim) {
  tensor logits{{2, 3}, {0.1f, 0.9f, 0.0f, 2.0f, -1.0f, 1.0f}};
  tensor preds = ops::argmax_lastdim(logits);
  EXPECT_EQ(preds.shape(), (shape_t{2}));
  EXPECT_FLOAT_EQ(preds[0], 1.0f);
  EXPECT_FLOAT_EQ(preds[1], 0.0f);
}

TEST(Ops, MatmulKnownValues) {
  tensor a{{2, 2}, {1, 2, 3, 4}};
  tensor b{{2, 2}, {5, 6, 7, 8}};
  tensor c = ops::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
  EXPECT_THROW(ops::matmul(a, tensor::zeros({3, 2})), error);
}

TEST(Ops, MatmulIdentity) {
  rng g{5};
  tensor a = tensor::randn(g, {4, 4});
  tensor eye = tensor::zeros({4, 4});
  for (std::int64_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0f;
  tensor c = ops::matmul(a, eye);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(c[i], a[i]);
}

TEST(Ops, BatchedMatmul) {
  rng g{6};
  tensor a = tensor::randn(g, {3, 2, 4});
  tensor b = tensor::randn(g, {3, 4, 5});
  tensor c = ops::bmm(a, b);
  EXPECT_EQ(c.shape(), (shape_t{3, 2, 5}));
  // batch 1 equals the standalone matmul of its slices
  tensor a1{{2, 4}};
  tensor b1{{4, 5}};
  for (std::int64_t i = 0; i < 8; ++i) a1[i] = a[8 + i];
  for (std::int64_t i = 0; i < 20; ++i) b1[i] = b[20 + i];
  tensor c1 = ops::matmul(a1, b1);
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_NEAR(c[10 + i], c1[i], 1e-5f);
}

TEST(Ops, Transpose) {
  tensor a{{2, 3}, {1, 2, 3, 4, 5, 6}};
  tensor t = ops::transpose2d(a);
  EXPECT_EQ(t.shape(), (shape_t{3, 2}));
  EXPECT_FLOAT_EQ(t.at(2, 1), 6.0f);

  tensor b = a.reshape({1, 2, 3});
  tensor bt = ops::transpose_last2(b);
  EXPECT_EQ(bt.shape(), (shape_t{1, 3, 2}));
  EXPECT_FLOAT_EQ(bt.at(0, 0, 1), 4.0f);
}

TEST(Serialize, RoundTrip) {
  rng g{3};
  tensor t = tensor::randn(g, {2, 3, 4});
  byte_buffer buf = to_bytes(t);
  tensor back = from_bytes(buf);
  ASSERT_TRUE(back.same_shape(t));
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(back[i], t[i]);
}

TEST(Serialize, MultipleTensorsSequential) {
  byte_buffer buf;
  serialize_tensor(tensor::ones({2}), buf);
  serialize_tensor(tensor::full({3}, 2.0f), buf);
  std::size_t offset = 0;
  tensor a = deserialize_tensor(buf, offset);
  tensor b = deserialize_tensor(buf, offset);
  EXPECT_EQ(offset, buf.size());
  EXPECT_FLOAT_EQ(a[0], 1.0f);
  EXPECT_FLOAT_EQ(b[2], 2.0f);
}

TEST(Serialize, TruncatedThrows) {
  byte_buffer buf = to_bytes(tensor::ones({4}));
  buf.resize(buf.size() - 3);
  EXPECT_THROW(from_bytes(buf), error);
}

TEST(Serialize, TrailingBytesThrow) {
  byte_buffer buf = to_bytes(tensor::ones({4}));
  buf.push_back(0);
  EXPECT_THROW(from_bytes(buf), error);
}

TEST(Rng, ForkIndependence) {
  rng root{42};
  rng a = root.fork(0);
  rng b = root.fork(1);
  rng a2 = root.fork(0);
  EXPECT_EQ(a.next_u64(), a2.next_u64());
  // different streams should diverge
  rng c = root.fork(2);
  EXPECT_NE(b.next_u64(), c.next_u64());
}

TEST(Rng, ForkStableRegardlessOfParentDraws) {
  rng r1{42};
  (void)r1.uniform();
  (void)r1.normal();
  rng r2{42};
  EXPECT_EQ(r1.fork(5).next_u64(), r2.fork(5).next_u64());
}

TEST(Matmul, ZeroTimesNonFiniteStillPropagates) {
  // Regression: the zero-skip fast path used to drop NaN/Inf coming from
  // the B operand — a poisoned update could vanish through a zero weight.
  tensor a{shape_t{1, 2}};
  a[0] = 0.0f;
  a[1] = 0.0f;
  tensor b{shape_t{2, 1}};
  b[0] = std::numeric_limits<float>::quiet_NaN();
  b[1] = 1.0f;
  const tensor out = ops::matmul(a, b);
  EXPECT_TRUE(std::isnan(out[0]));

  b[0] = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isnan(ops::matmul(a, b)[0]));  // 0 * Inf = NaN
}

TEST(Matmul, ZeroSkipFastPathStaysExactOnFiniteInputs) {
  rng g{7};
  tensor a = tensor::randn(g, {5, 4});
  a.at(1, 2) = 0.0f;  // exercise the skip
  a.at(3, 0) = 0.0f;
  tensor b = tensor::randn(g, {4, 3});
  const tensor out = ops::matmul(a, b);
  for (std::int64_t i = 0; i < 5; ++i)
    for (std::int64_t j = 0; j < 3; ++j) {
      float acc = 0.0f;
      for (std::int64_t k = 0; k < 4; ++k) acc += a.at(i, k) * b.at(k, j);
      EXPECT_FLOAT_EQ(out.at(i, j), acc);
    }
}

TEST(Bmm, NanInOneBatchPropagatesOnlyThere) {
  tensor a = tensor::zeros({2, 1, 1});
  tensor b = tensor::ones({2, 1, 1});
  b[0] = std::numeric_limits<float>::quiet_NaN();
  const tensor out = ops::bmm(a, b);
  EXPECT_TRUE(std::isnan(out[0]));   // 0 * NaN
  EXPECT_FLOAT_EQ(out[1], 0.0f);     // finite batch untouched
}

TEST(Matmul, ParallelRowSplitMatchesSerial) {
  // Big enough to cross the parallel dispatch threshold; rows are disjoint,
  // so the pooled result must be bit-identical to the forced-serial one.
  rng g{11};
  const tensor a = tensor::randn(g, {64, 32});
  const tensor b = tensor::randn(g, {32, 48});
  tensor serial;
  {
    serial_guard guard;
    serial = ops::matmul(a, b);
  }
  const tensor pooled = ops::matmul(a, b);
  ASSERT_TRUE(serial.same_shape(pooled));
  for (std::int64_t i = 0; i < serial.numel(); ++i) EXPECT_EQ(serial[i], pooled[i]);
}

TEST(Parallel, MatchesSerialExecution) {
  std::vector<std::int64_t> out(1000, 0);
  parallel_for(1000, [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = i * i; });
  for (std::int64_t i = 0; i < 1000; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(64, [](std::int64_t i) {
        if (i == 13) throw error{"boom"};
      }),
      error);
}

TEST(Parallel, ZeroAndNegativeCountsAreNoops) {
  bool ran = false;
  parallel_for(0, [&](std::int64_t) { ran = true; });
  parallel_for(-5, [&](std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace pelta
