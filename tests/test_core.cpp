// Public API: defended_model, Table I measurement, table formatting.
#include <gtest/gtest.h>

#include "core/pelta.h"
#include "core/table.h"
#include "models/trainer.h"
#include "models/zoo.h"

namespace pelta {
namespace {

models::task_spec tiny_task() {
  models::task_spec t;
  t.classes = 4;
  return t;
}

TEST(DefendedModel, ClassifyMatchesUnderlyingModel) {
  data::dataset_config dc = data::cifar10_like();
  dc.classes = 4;
  dc.train_per_class = 30;
  dc.test_per_class = 8;
  const data::dataset ds{dc};

  defended_model defended{models::make_vit_b16_sim(tiny_task())};
  models::train_config tc;
  tc.epochs = 6;
  models::train_model(defended.model(), ds, tc);

  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(defended.classify(ds.test_image(i)),
              models::predict_one(defended.model(), ds.test_image(i)));
  }
  // Shielded inference populated the enclave.
  EXPECT_GT(defended.enclave().used_bytes(), 0);
}

TEST(DefendedModel, ShieldCostConsistency) {
  defended_model defended{models::make_vit_b16_sim(tiny_task())};
  rng g{1};
  const tensor probe = tensor::rand_uniform(g, {3, 16, 16});

  const auto cost = defended.measure_shield_cost(probe, /*with_gradients=*/true);
  EXPECT_EQ(cost.tee_bytes,
            cost.bytes_activations + cost.bytes_gradients + cost.bytes_parameters);
  EXPECT_GT(cost.bytes_gradients, 0);  // gradients were produced
  EXPECT_GT(cost.masked_parameters, 0);
  EXPECT_LT(cost.masked_parameters, cost.total_parameters);
  EXPECT_GT(cost.shielded_portion, 0.0);
  EXPECT_LT(cost.shielded_portion, 1.0);
  EXPECT_GT(cost.jacobian_records, 0);

  // Inference-only case strictly cheaper (no adjoints in the enclave).
  const auto inference = defended.measure_shield_cost(probe, /*with_gradients=*/false);
  EXPECT_LT(inference.tee_bytes, cost.tee_bytes);
  EXPECT_EQ(inference.bytes_gradients, 0);
}

TEST(DefendedModel, AttackerOracleIsShielded) {
  data::dataset_config dc = data::cifar10_like();
  dc.classes = 4;
  dc.train_per_class = 20;
  dc.test_per_class = 5;
  const data::dataset ds{dc};
  defended_model defended{models::make_vit_b16_sim(tiny_task())};

  auto oracle = defended.attacker_oracle(33);
  const auto q = oracle->query(ds.test_image(0), ds.test_label(0));
  EXPECT_TRUE(q.gradient.same_shape(ds.test_image(0)));
}

TEST(DefendedModel, Version) {
  EXPECT_NE(std::string{version()}.find("pelta"), std::string::npos);
}

TEST(TextTable, AlignsColumnsAndSeparators) {
  text_table t;
  t.set_header({"Model", "Acc"});
  t.add_row({"ViT-L/16", "99.4%"});
  t.add_separator();
  t.add_row({"BiT", "98.8%"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("ViT-L/16"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  // Column alignment: "Acc" and the accuracy cells start at the same column.
  const auto col_of = [&](const std::string& needle) {
    const auto pos = s.find(needle);
    const auto line_start = s.rfind('\n', pos);
    return pos - (line_start == std::string::npos ? 0 : line_start + 1);
  };
  EXPECT_EQ(col_of("Acc"), col_of("99.4%"));
  EXPECT_EQ(col_of("Acc"), col_of("98.8%"));
}

TEST(Format, Percent) {
  EXPECT_EQ(pct(0.994), "99.4%");
  EXPECT_EQ(pct(0.0), "0.0%");
  EXPECT_EQ(pct(1.0), "100.0%");
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(2048), "2.0 KB");
  EXPECT_EQ(human_bytes(15898624), "15.16 MB");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace pelta
