// The configured version header and its runtime accessor.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/pelta.h"
#include "core/version.h"

namespace pelta {
namespace {

TEST(Version, AccessorMatchesConfiguredHeader) {
  ASSERT_NE(version_string(), nullptr);
  EXPECT_STREQ(version_string(), PELTA_VERSION_STRING);
}

TEST(Version, BannerEmbedsConfiguredVersion) {
  // The human-facing banner and the machine-facing string must agree.
  EXPECT_NE(std::string{version()}.find(version_string()), std::string::npos);
}

TEST(Version, StringAgreesWithComponents) {
  const std::string expected = std::to_string(PELTA_VERSION_MAJOR) + "." +
                               std::to_string(PELTA_VERSION_MINOR) + "." +
                               std::to_string(PELTA_VERSION_PATCH);
  EXPECT_EQ(std::string{PELTA_VERSION_STRING}, expected);
}

}  // namespace
}  // namespace pelta
