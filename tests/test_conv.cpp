// Convolution / pooling kernels, including backward-vs-finite-difference.
#include <gtest/gtest.h>

#include "autodiff/gradcheck.h"
#include "tensor/conv.h"
#include "tensor/kernels.h"  // detail::fmadd — the accumulation-policy reference
#include "tensor/ops.h"

namespace pelta {
namespace {

TEST(Conv2d, IdentityKernelReproducesInput) {
  rng g{1};
  tensor x = tensor::randn(g, {1, 1, 5, 5});
  tensor w = tensor::zeros({1, 1, 3, 3});
  w.at(0, 0, 1, 1) = 1.0f;  // delta kernel
  tensor y = ops::conv2d(x, w, tensor{shape_t{0}}, 1, 1);
  ASSERT_EQ(y.shape(), x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(y[i], x[i], 1e-6f);
}

TEST(Conv2d, KnownValue) {
  // 2x2 input, 2x2 all-ones kernel, no padding -> single sum.
  tensor x{{1, 1, 2, 2}, {1, 2, 3, 4}};
  tensor w = tensor::ones({1, 1, 2, 2});
  tensor y = ops::conv2d(x, w, tensor{shape_t{0}}, 1, 0);
  EXPECT_EQ(y.shape(), (shape_t{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 10.0f);
}

TEST(Conv2d, BiasIsAdded) {
  tensor x = tensor::zeros({1, 2, 3, 3});
  tensor w = tensor::zeros({4, 2, 3, 3});
  tensor b{{4}, {1, 2, 3, 4}};
  tensor y = ops::conv2d(x, w, b, 1, 1);
  EXPECT_EQ(y.shape(), (shape_t{1, 4, 3, 3}));
  EXPECT_FLOAT_EQ(y.at(0, 2, 1, 1), 3.0f);
}

TEST(Conv2d, StrideReducesResolution) {
  rng g{2};
  tensor x = tensor::randn(g, {2, 3, 8, 8});
  tensor w = tensor::randn(g, {5, 3, 3, 3});
  tensor y = ops::conv2d(x, w, tensor{shape_t{0}}, 2, 1);
  EXPECT_EQ(y.shape(), (shape_t{2, 5, 4, 4}));
}

TEST(Conv2d, ChannelMismatchThrows) {
  tensor x = tensor::zeros({1, 3, 4, 4});
  tensor w = tensor::zeros({2, 4, 3, 3});
  EXPECT_THROW(ops::conv2d(x, w, tensor{shape_t{0}}, 1, 1), error);
}

TEST(Conv2d, BackwardInputMatchesFiniteDifference) {
  rng g{3};
  const tensor x = tensor::randn(g, {1, 2, 4, 4});
  const tensor w = tensor::randn(g, {3, 2, 3, 3});
  const tensor seed = tensor::randn(g, {1, 3, 4, 4});

  const auto f = [&](const tensor& probe) {
    return ops::dot(ops::conv2d(probe, w, tensor{shape_t{0}}, 1, 1), seed);
  };
  const tensor numeric = ad::numeric_grad(f, x, 1e-2f);
  const tensor analytic = ops::conv2d_backward_input(seed, w, 1, 1, x.shape());
  EXPECT_LT(ad::max_rel_error(analytic, numeric), 0.05f);
}

TEST(Conv2d, BackwardWeightMatchesFiniteDifference) {
  rng g{4};
  const tensor x = tensor::randn(g, {1, 2, 4, 4});
  const tensor w = tensor::randn(g, {3, 2, 3, 3});
  const tensor seed = tensor::randn(g, {1, 3, 4, 4});

  const auto f = [&](const tensor& probe) {
    return ops::dot(ops::conv2d(x, probe, tensor{shape_t{0}}, 1, 1), seed);
  };
  const tensor numeric = ad::numeric_grad(f, w, 1e-2f);
  const tensor analytic = ops::conv2d_backward_weight(seed, x, 1, 1, w.shape());
  EXPECT_LT(ad::max_rel_error(analytic, numeric), 0.05f);
}

TEST(Conv2d, BackwardBiasSumsOverSpatialAndBatch) {
  tensor go = tensor::ones({2, 3, 4, 4});
  tensor gb = ops::conv2d_backward_bias(go);
  EXPECT_EQ(gb.shape(), (shape_t{3}));
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(gb[i], 32.0f);
}

TEST(Conv2d, BackwardBiasIsExactAcrossLargeBatchCancellation) {
  // Regression for the per-image float re-narrowing the R1 lint rule
  // surfaced: summing each image in double but folding into grad_b in float
  // lost small contributions between large cancelling ones across the
  // batch ({2^25, 1, -2^25} summed that way yields 0). One double
  // accumulator per channel across the whole batch keeps the exact 1.
  tensor go{{3, 1, 1, 1}, {33554432.0f, 1.0f, -33554432.0f}};
  tensor gb = ops::conv2d_backward_bias(go);
  ASSERT_EQ(gb.shape(), (shape_t{1}));
  EXPECT_FLOAT_EQ(gb[0], 1.0f);
}

TEST(Conv2d, StridedBackwardMatchesFiniteDifference) {
  rng g{5};
  const tensor x = tensor::randn(g, {1, 2, 6, 6});
  const tensor w = tensor::randn(g, {3, 2, 3, 3});
  const tensor seed = tensor::randn(g, {1, 3, 3, 3});
  const auto f = [&](const tensor& probe) {
    return ops::dot(ops::conv2d(probe, w, tensor{shape_t{0}}, 2, 1), seed);
  };
  const tensor numeric = ad::numeric_grad(f, x, 1e-2f);
  const tensor analytic = ops::conv2d_backward_input(seed, w, 2, 1, x.shape());
  EXPECT_LT(ad::max_rel_error(analytic, numeric), 0.05f);
}

TEST(ConvTranspose, UpsamplesGeometry) {
  rng g{6};
  tensor x = tensor::randn(g, {1, 4, 4, 4});
  tensor w = tensor::randn(g, {4, 3, 4, 4});
  tensor y = ops::conv2d_transpose(x, w, 4, 0);
  EXPECT_EQ(y.shape(), (shape_t{1, 3, 16, 16}));
}

TEST(ConvTranspose, Stride1KeepsShapeWithPad1Kernel3) {
  rng g{7};
  tensor x = tensor::randn(g, {1, 5, 8, 8});
  tensor w = tensor::randn(g, {5, 3, 3, 3});
  tensor y = ops::conv2d_transpose(x, w, 1, 1);
  EXPECT_EQ(y.shape(), (shape_t{1, 3, 8, 8}));
}

TEST(ConvTranspose, IsAdjointOfConv) {
  // <conv(x), y> == <x, conv_transpose(y)> for matching geometry.
  rng g{8};
  const tensor x = tensor::randn(g, {1, 2, 6, 6});
  const tensor w = tensor::randn(g, {3, 2, 3, 3});  // conv weight [OC,C,KH,KW]
  const tensor y = tensor::randn(g, {1, 3, 6, 6});

  const tensor cx = ops::conv2d(x, w, tensor{shape_t{0}}, 1, 1);
  // The conv weight [OC,C,KH,KW] reinterpreted as a transposed-conv weight
  // [C'=OC, OC'=C, KH, KW] yields the exact adjoint — no kernel flip needed
  // with this layout convention.
  const tensor ty = ops::conv2d_transpose(y, w, 1, 1);
  EXPECT_NEAR(ops::dot(cx, y), ops::dot(x, ty), 1e-3f);
}

TEST(ConvTranspose, FollowsTheFmaddPolicy) {
  // The scatter accumulation must round exactly like ops::detail::fmadd in
  // the implementation's loop order (R1): a raw `out += v * w` would let
  // -ffp-contract fuse it on FMA targets, making the transpose round
  // differently per build flag while conv2d stays mul+add.
  rng g{11};
  const tensor x = tensor::randn(g, {1, 2, 2, 2});
  const tensor w = tensor::randn(g, {2, 2, 2, 2});  // [C, OC, KH, KW]
  const tensor y = ops::conv2d_transpose(x, w, 1, 0);
  ASSERT_EQ(y.shape(), (shape_t{1, 2, 3, 3}));

  tensor expect = tensor::zeros(y.shape());
  for (std::int64_t ci = 0; ci < 2; ++ci)
    for (std::int64_t iy = 0; iy < 2; ++iy)
      for (std::int64_t ix = 0; ix < 2; ++ix) {
        const float v = x.at(0, ci, iy, ix);
        for (std::int64_t o = 0; o < 2; ++o)
          for (std::int64_t ky = 0; ky < 2; ++ky)
            for (std::int64_t kx = 0; kx < 2; ++kx)
              expect.at(0, o, iy + ky, ix + kx) = ops::detail::fmadd(
                  v, w.at(ci, o, ky, kx), expect.at(0, o, iy + ky, ix + kx));
      }
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], expect[i]);
}

TEST(MaxPool, ForwardAndIndices) {
  tensor x{{1, 1, 2, 2}, {1, 5, 3, 2}};
  auto r = ops::maxpool2x2(x);
  EXPECT_EQ(r.output.shape(), (shape_t{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(r.output[0], 5.0f);
  EXPECT_FLOAT_EQ(r.indices[0], 1.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  tensor x{{1, 1, 2, 2}, {1, 5, 3, 2}};
  auto r = ops::maxpool2x2(x);
  tensor go = tensor::full({1, 1, 1, 1}, 2.0f);
  tensor gi = ops::maxpool2x2_backward(go, r.indices, x.shape());
  EXPECT_FLOAT_EQ(gi[0], 0.0f);
  EXPECT_FLOAT_EQ(gi[1], 2.0f);
}

TEST(MaxPool, OddSpatialThrows) {
  EXPECT_THROW(ops::maxpool2x2(tensor::zeros({1, 1, 3, 4})), error);
}

TEST(GlobalAvgPool, ForwardBackward) {
  tensor x{{1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40}};
  tensor y = ops::global_avgpool(x);
  EXPECT_EQ(y.shape(), (shape_t{1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 25.0f);

  tensor go{{1, 2}, {4.0f, 8.0f}};
  tensor gi = ops::global_avgpool_backward(go, x.shape());
  EXPECT_FLOAT_EQ(gi[0], 1.0f);
  EXPECT_FLOAT_EQ(gi[4], 2.0f);
}

TEST(Upsample, FactorOneIsIdentity) {
  rng g{9};
  tensor x = tensor::randn(g, {3, 4, 4});
  tensor y = ops::upsample_bilinear(x, 1);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Upsample, ConstantStaysConstant) {
  tensor x = tensor::full({2, 3, 3}, 0.7f);
  tensor y = ops::upsample_bilinear(x, 4);
  EXPECT_EQ(y.shape(), (shape_t{2, 12, 12}));
  for (float v : y.data()) EXPECT_NEAR(v, 0.7f, 1e-6f);
}

TEST(Upsample, BatchedInput) {
  rng g{10};
  tensor x = tensor::randn(g, {2, 3, 4, 4});
  tensor y = ops::upsample_bilinear(x, 2);
  EXPECT_EQ(y.shape(), (shape_t{2, 3, 8, 8}));
}

TEST(Upsample, ValuesBoundedByInputRange) {
  rng g{11};
  tensor x = tensor::rand_uniform(g, {1, 4, 4}, 0.2f, 0.8f);
  tensor y = ops::upsample_bilinear(x, 4);
  for (float v : y.data()) {
    EXPECT_GE(v, 0.2f - 1e-5f);
    EXPECT_LE(v, 0.8f + 1e-5f);
  }
}

}  // namespace
}  // namespace pelta
