// The §III plain-DNN family and the §II defense matrix: gradient inversion
// (the related-work threat) vs evasion (PELTA's threat) under the three
// observation policies.
#include <gtest/gtest.h>

#include "attacks/inversion.h"
#include "attacks/priors.h"
#include "models/trainer.h"
#include "tensor/ops.h"

namespace pelta::attacks {
namespace {

models::mlp_config tiny_mlp_config() {
  models::mlp_config c;
  c.name = "tiny-mlp";
  c.image_size = 16;
  c.channels = 3;
  c.hidden = {48, 24};
  c.classes = 4;
  return c;
}

struct fixture {
  data::dataset ds;
  std::unique_ptr<models::mlp_model> mlp;

  fixture()
      : ds{[] {
          data::dataset_config c = data::cifar10_like();
          c.classes = 4;
          c.train_per_class = 60;
          c.test_per_class = 20;
          return c;
        }()} {
    mlp = std::make_unique<models::mlp_model>(tiny_mlp_config());
    models::train_config tc;
    tc.epochs = 8;
    tc.batch_size = 16;
    tc.lr = 3e-3f;
    models::train_model(*mlp, ds, tc);
  }

  static const fixture& get() {
    static fixture f;
    return f;
  }
};

TEST(Mlp, TrainsToUsableAccuracy) {
  const auto& f = fixture::get();
  EXPECT_GT(models::accuracy(*f.mlp, f.ds.test_images(), f.ds.test_labels()), 0.8f);
}

TEST(Mlp, ForwardShapesAndFrontier) {
  const auto& f = fixture::get();
  const models::forward_pass fp = f.mlp->forward(tensor::zeros({2, 3, 16, 16}), ad::norm_mode::eval);
  EXPECT_EQ(fp.graph.value(fp.logits).shape(), (shape_t{2, 4}));
  EXPECT_EQ(f.mlp->shield_frontier_tags(), std::vector<std::string>{"mlp.act0"});
  EXPECT_EQ(f.mlp->attention_blocks(), 0);
}

TEST(Mlp, ShieldFrontierMasksExactlyTheFirstAffineLayer) {
  const auto& f = fixture::get();
  auto names = shielded_parameter_names(*f.mlp, f.ds.test_image(0));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"mlp.fc0.b", "mlp.fc0.w"}));
}

TEST(Mlp, ShieldedOracleLiftsDenseAdjointToImageShape) {
  const auto& f = fixture::get();
  auto oracle = make_shielded_oracle(*f.mlp, 7);
  const oracle_result r = oracle->query(f.ds.test_image(0), f.ds.test_label(0));
  EXPECT_EQ(r.gradient.shape(), (shape_t{3, 16, 16}));
  EXPECT_GT(ops::norm_l2(r.gradient), 0.0f);
}

// ---- the inversion primitive ---------------------------------------------------

TEST(Inversion, ClearObservationReconstructsTheInputExactly) {
  const auto& f = fixture::get();
  std::int64_t checked = 0;
  for (std::int64_t i = 0; i < 8; ++i) {
    const inversion_result r = run_gradient_inversion(*f.mlp, f.ds.test_image(i),
                                                      f.ds.test_label(i),
                                                      observation_policy::clear);
    ASSERT_FALSE(r.blocked);
    if (ops::norm_l2(r.reconstruction) == 0.0f) continue;  // zero-loss step
    EXPECT_GT(r.cosine, 0.999f) << "sample " << i;
    EXPECT_LT(r.mse, 1e-4f) << "sample " << i;
    ++checked;
  }
  EXPECT_GE(checked, 4);
}

TEST(Inversion, ParamGradientShieldBlocksIt) {
  const auto& f = fixture::get();
  const inversion_result r = run_gradient_inversion(
      *f.mlp, f.ds.test_image(0), f.ds.test_label(0), observation_policy::param_gradient);
  EXPECT_TRUE(r.blocked);
}

TEST(Inversion, PeltaFrontierBlocksTheAnalyticForm) {
  const auto& f = fixture::get();
  const inversion_result r = run_gradient_inversion(*f.mlp, f.ds.test_image(0),
                                                    f.ds.test_label(0), observation_policy::pelta);
  EXPECT_TRUE(r.blocked);
}

TEST(Inversion, QualityMetricSeparatesThePolicies) {
  const auto& f = fixture::get();
  const float clear = inversion_quality(*f.mlp, f.ds, observation_policy::clear, 12);
  const float gradsec = inversion_quality(*f.mlp, f.ds, observation_policy::param_gradient, 12);
  const float pelta = inversion_quality(*f.mlp, f.ds, observation_policy::pelta, 12);
  EXPECT_GT(clear, 0.8f);
  EXPECT_FLOAT_EQ(gradsec, 0.0f);
  EXPECT_FLOAT_EQ(pelta, 0.0f);
}

// ---- the evasion side of the matrix ---------------------------------------------

TEST(DefenseMatrix, EvasionOnlyPeltaBlocks) {
  const auto& f = fixture::get();
  const suite_params params = params_for_dataset("cifar10_like");

  const robust_eval clear = evaluate_attack(*f.mlp, f.ds, attack_kind::pgd, params,
                                            clear_oracle_factory(*f.mlp), 16, 5);
  const oracle_factory gradsec_factory = [&](std::uint64_t) {
    return make_param_shield_oracle(*f.mlp);
  };
  const robust_eval gradsec =
      evaluate_attack(*f.mlp, f.ds, attack_kind::pgd, params, gradsec_factory, 16, 5);
  const robust_eval pelta = evaluate_attack(*f.mlp, f.ds, attack_kind::pgd, params,
                                            shielded_oracle_factory(*f.mlp), 16, 5);

  EXPECT_LT(clear.robust_accuracy, 0.3f);                       // open white box falls
  EXPECT_LT(gradsec.robust_accuracy, clear.robust_accuracy + 0.15f);  // GradSec: no help
  EXPECT_GT(pelta.robust_accuracy, 0.6f);                       // PELTA holds
}

TEST(Inversion, PolicyNamesAreDistinct) {
  EXPECT_STRNE(observation_policy_name(observation_policy::clear),
               observation_policy_name(observation_policy::pelta));
  EXPECT_STRNE(observation_policy_name(observation_policy::param_gradient),
               observation_policy_name(observation_policy::pelta));
}

}  // namespace
}  // namespace pelta::attacks
