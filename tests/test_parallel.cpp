// Persistent thread-pool runtime: chunked range dispatch, grain edge cases,
// nesting safety, cancellation, and the serial / concurrency guards.
//
// The static initializer pins PELTA_THREADS=8 (without overriding an
// explicit environment setting, e.g. the CI PELTA_THREADS=2 leg) before the
// pool's first use, so real workers are exercised even on single-core hosts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "tensor/check.h"
#include "tensor/parallel.h"

namespace pelta {
namespace {

const bool k_threads_pinned = [] {
  setenv("PELTA_THREADS", "8", /*overwrite=*/0);
  return true;
}();

TEST(Pool, ThreadCountHonorsEnvironment) {
  ASSERT_TRUE(k_threads_pinned);
  const char* env = std::getenv("PELTA_THREADS");
  ASSERT_NE(env, nullptr);
  const int parsed = std::atoi(env);
  if (parsed >= 1)
    EXPECT_EQ(parallel_thread_count(), parsed);
  else  // empty/garbage values fall back to the hardware concurrency
    EXPECT_GE(parallel_thread_count(), 1);
}

TEST(Pool, CoversEveryIndexExactlyOnce) {
  constexpr std::int64_t n = 20000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  parallel_for(n, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (std::int64_t i = 0; i < n; ++i) ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(Pool, RangeChunksPartitionOnGrainBoundaries) {
  constexpr std::int64_t n = 1003, grain = 17;
  std::mutex mu;
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  parallel_for_range(n, grain, [&](std::int64_t lo, std::int64_t hi) {
    std::lock_guard<std::mutex> lock{mu};
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(static_cast<std::int64_t>(chunks.size()), (n + grain - 1) / grain);
  std::int64_t expect_lo = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_EQ(lo % grain, 0);
    EXPECT_LE(hi - lo, grain);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, n);
}

TEST(Pool, GrainEdgeCases) {
  // n = 0: body never runs.
  bool ran = false;
  parallel_for_range(0, 4, [&](std::int64_t, std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);

  // grain > n: a single chunk covering everything.
  std::mutex mu;
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  parallel_for_range(3, 100, [&](std::int64_t lo, std::int64_t hi) {
    std::lock_guard<std::mutex> lock{mu};
    chunks.emplace_back(lo, hi);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::int64_t, std::int64_t>{0, 3}));

  // n smaller than the thread count: every index still runs exactly once.
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  parallel_for(3, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Pool, NestedParallelForRunsInlineOnTheSameThread) {
  constexpr std::int64_t outer_n = 12, inner_n = 64;
  std::vector<std::int64_t> sums(outer_n, 0);
  std::atomic<int> nested_offloads{0};
  parallel_for(outer_n, 1, [&](std::int64_t o) {
    const std::thread::id outer_thread = std::this_thread::get_id();
    EXPECT_TRUE(in_parallel_region() || parallel_thread_count() == 1);
    std::int64_t local = 0;
    parallel_for(inner_n, [&](std::int64_t i) {
      if (std::this_thread::get_id() != outer_thread) nested_offloads.fetch_add(1);
      local += i;  // safe: the nested loop must run inline, single-threaded
    });
    sums[static_cast<std::size_t>(o)] = local;
  });
  EXPECT_EQ(nested_offloads.load(), 0) << "nested loop escaped to another thread";
  for (std::int64_t s : sums) EXPECT_EQ(s, inner_n * (inner_n - 1) / 2);
}

TEST(Pool, NestedThrowPropagatesToTheSubmitter) {
  EXPECT_THROW(parallel_for(16, 1,
                            [&](std::int64_t o) {
                              parallel_for(8, [&](std::int64_t i) {
                                if (o == 5 && i == 3) throw error{"inner boom"};
                              });
                            }),
               error);
}

TEST(Pool, FirstFailureCancelsTheSweepPromptly) {
  constexpr std::int64_t n = 1000000;
  std::atomic<std::int64_t> executed{0};
  EXPECT_THROW(parallel_for(n,
                            [&](std::int64_t) {
                              if (executed.fetch_add(1) == 0) throw error{"boom"};
                            }),
               error);
  // Without cancellation every remaining index would still be dispatched;
  // with it, at most the in-flight chunks finish their current index.
  EXPECT_LT(executed.load(), n / 2) << "sweep kept dispatching after the failure";
}

TEST(Pool, SerialGuardForcesInlineExecution) {
  serial_guard guard;
  const std::thread::id main_thread = std::this_thread::get_id();
  std::atomic<int> offloaded{0};
  parallel_for(5000, [&](std::int64_t) {
    if (std::this_thread::get_id() != main_thread) offloaded.fetch_add(1);
  });
  EXPECT_EQ(offloaded.load(), 0);
  EXPECT_FALSE(in_parallel_region());
}

TEST(Pool, ConcurrencyGuardCapsParticipants) {
  concurrency_guard guard{2};
  std::atomic<int> active{0}, peak{0};
  parallel_for(2000, 1, [&](std::int64_t) {
    const int now = active.fetch_add(1) + 1;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::yield();
    active.fetch_sub(1);
  });
  EXPECT_LE(peak.load(), 2);
}

TEST(Pool, WorkersActuallyParticipate) {
  if (parallel_thread_count() < 2) GTEST_SKIP() << "pool disabled at 1 thread";
  // Even on one core the mutex-gated chunk claims hand work to pool threads
  // with overwhelming probability across a few attempts.
  std::set<std::thread::id> seen;
  std::mutex mu;
  for (int attempt = 0; attempt < 20 && seen.size() < 2; ++attempt) {
    parallel_for(4000, 1, [&](std::int64_t) {
      {
        std::lock_guard<std::mutex> lock{mu};
        seen.insert(std::this_thread::get_id());
      }
      std::this_thread::yield();
    });
  }
  EXPECT_GE(seen.size(), 2u);
}

TEST(Pool, ConcurrentSubmittersBothComplete) {
  // Two external threads submit loops at once; the pool serves both.
  std::atomic<std::int64_t> total{0};
  std::thread other{[&] {
    parallel_for(10000, [&](std::int64_t) { total.fetch_add(1); });
  }};
  parallel_for(10000, [&](std::int64_t) { total.fetch_add(1); });
  other.join();
  EXPECT_EQ(total.load(), 20000);
}

}  // namespace
}  // namespace pelta
