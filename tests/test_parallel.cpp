// Persistent thread-pool runtime: chunked range dispatch, grain edge cases,
// nesting safety, cancellation, and the serial / concurrency guards.
//
// The static initializer pins PELTA_THREADS=8 (without overriding an
// explicit environment setting, e.g. the CI PELTA_THREADS=2 leg) before the
// pool's first use, so real workers are exercised even on single-core hosts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "tensor/check.h"
#include "tensor/parallel.h"

namespace pelta {
namespace {

const bool k_threads_pinned = [] {
  setenv("PELTA_THREADS", "8", /*overwrite=*/0);
  return true;
}();

TEST(Pool, ThreadCountHonorsEnvironment) {
  ASSERT_TRUE(k_threads_pinned);
  const char* env = std::getenv("PELTA_THREADS");
  ASSERT_NE(env, nullptr);
  const int parsed = std::atoi(env);
  if (parsed >= 1)
    EXPECT_EQ(parallel_thread_count(), parsed);
  else  // empty/garbage values fall back to the hardware concurrency
    EXPECT_GE(parallel_thread_count(), 1);
}

TEST(Pool, CoversEveryIndexExactlyOnce) {
  constexpr std::int64_t n = 20000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  parallel_for(n, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (std::int64_t i = 0; i < n; ++i) ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(Pool, RangeChunksPartitionOnGrainBoundaries) {
  constexpr std::int64_t n = 1003, grain = 17;
  std::mutex mu;
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  parallel_for_range(n, grain, [&](std::int64_t lo, std::int64_t hi) {
    std::lock_guard<std::mutex> lock{mu};
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(static_cast<std::int64_t>(chunks.size()), (n + grain - 1) / grain);
  std::int64_t expect_lo = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_EQ(lo % grain, 0);
    EXPECT_LE(hi - lo, grain);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, n);
}

TEST(Pool, GrainEdgeCases) {
  // n = 0: body never runs.
  bool ran = false;
  parallel_for_range(0, 4, [&](std::int64_t, std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);

  // grain > n: a single chunk covering everything.
  std::mutex mu;
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  parallel_for_range(3, 100, [&](std::int64_t lo, std::int64_t hi) {
    std::lock_guard<std::mutex> lock{mu};
    chunks.emplace_back(lo, hi);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::int64_t, std::int64_t>{0, 3}));

  // n smaller than the thread count: every index still runs exactly once.
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  parallel_for(3, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Pool, NestedParallelForRunsInlineOnTheSameThread) {
  constexpr std::int64_t outer_n = 12, inner_n = 64;
  std::vector<std::int64_t> sums(outer_n, 0);
  std::atomic<int> nested_offloads{0};
  parallel_for(outer_n, 1, [&](std::int64_t o) {
    const std::thread::id outer_thread = std::this_thread::get_id();
    EXPECT_TRUE(in_parallel_region() || parallel_thread_count() == 1);
    std::int64_t local = 0;
    parallel_for(inner_n, [&](std::int64_t i) {
      if (std::this_thread::get_id() != outer_thread) nested_offloads.fetch_add(1);
      local += i;  // safe: the nested loop must run inline, single-threaded
    });
    sums[static_cast<std::size_t>(o)] = local;
  });
  EXPECT_EQ(nested_offloads.load(), 0) << "nested loop escaped to another thread";
  for (std::int64_t s : sums) EXPECT_EQ(s, inner_n * (inner_n - 1) / 2);
}

TEST(Pool, NestedThrowPropagatesToTheSubmitter) {
  EXPECT_THROW(parallel_for(16, 1,
                            [&](std::int64_t o) {
                              parallel_for(8, [&](std::int64_t i) {
                                if (o == 5 && i == 3) throw error{"inner boom"};
                              });
                            }),
               error);
}

TEST(Pool, FirstFailureCancelsTheSweepPromptly) {
  constexpr std::int64_t n = 1000000;
  std::atomic<std::int64_t> executed{0};
  EXPECT_THROW(parallel_for(n,
                            [&](std::int64_t) {
                              if (executed.fetch_add(1) == 0) throw error{"boom"};
                            }),
               error);
  // Without cancellation every remaining index would still be dispatched;
  // with it, at most the in-flight chunks finish their current index.
  EXPECT_LT(executed.load(), n / 2) << "sweep kept dispatching after the failure";
}

TEST(Pool, SerialGuardForcesInlineExecution) {
  serial_guard guard;
  const std::thread::id main_thread = std::this_thread::get_id();
  std::atomic<int> offloaded{0};
  parallel_for(5000, [&](std::int64_t) {
    if (std::this_thread::get_id() != main_thread) offloaded.fetch_add(1);
  });
  EXPECT_EQ(offloaded.load(), 0);
  EXPECT_FALSE(in_parallel_region());
}

TEST(Pool, ConcurrencyGuardCapsParticipants) {
  concurrency_guard guard{2};
  std::atomic<int> active{0}, peak{0};
  parallel_for(2000, 1, [&](std::int64_t) {
    const int now = active.fetch_add(1) + 1;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::yield();
    active.fetch_sub(1);
  });
  EXPECT_LE(peak.load(), 2);
}

TEST(Pool, WorkersActuallyParticipate) {
  if (parallel_thread_count() < 2) GTEST_SKIP() << "pool disabled at 1 thread";
  // Even on one core the mutex-gated chunk claims hand work to pool threads
  // with overwhelming probability across a few attempts.
  std::set<std::thread::id> seen;
  std::mutex mu;
  for (int attempt = 0; attempt < 20 && seen.size() < 2; ++attempt) {
    parallel_for(4000, 1, [&](std::int64_t) {
      {
        std::lock_guard<std::mutex> lock{mu};
        seen.insert(std::this_thread::get_id());
      }
      std::this_thread::yield();
    });
  }
  EXPECT_GE(seen.size(), 2u);
}

TEST(Pool, ConcurrentSubmittersBothComplete) {
  // Two external threads submit loops at once; the pool serves both.
  std::atomic<std::int64_t> total{0};
  std::thread other{[&] {
    parallel_for(10000, [&](std::int64_t) { total.fetch_add(1); });
  }};
  parallel_for(10000, [&](std::int64_t) { total.fetch_add(1); });
  other.join();
  EXPECT_EQ(total.load(), 20000);
}

// ---- one-shot tasks (submit_task / task_future) -----------------------------

TEST(Tasks, EveryTaskRunsExactlyOnceAndFutureEmptiesAfterGet) {
  std::atomic<std::int64_t> ran{0};
  std::vector<task_future> futures;
  for (int t = 0; t < 64; ++t)
    futures.push_back(submit_task([&ran] { ran.fetch_add(1); }));
  for (task_future& f : futures) {
    ASSERT_TRUE(f.valid());
    f.get();
    EXPECT_FALSE(f.valid());  // get() is one-shot
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(Tasks, GetRethrowsTheBodyException) {
  task_future ok = submit_task([] {});
  task_future bad = submit_task([] { throw error{"task boom"}; });
  EXPECT_NO_THROW(ok.get());
  // One task's failure is its own: nothing else is cancelled.
  EXPECT_THROW(bad.get(), error);
  task_future after = submit_task([] {});
  EXPECT_NO_THROW(after.get());
}

TEST(Tasks, TaskBodiesCountAsParallelRegions) {
  // Inside a task, nested parallel loops must run inline (one thread per
  // task — the same nesting rule as pool chunks) and a task must never
  // look cancelled just because it shares a worker with some sweep.
  std::atomic<bool> in_region{false}, nested_inline{true}, cancelled{false};
  task_future f = submit_task([&] {
    in_region.store(in_parallel_region());
    cancelled.store(parallel_cancelled());
    const std::thread::id task_thread = std::this_thread::get_id();
    parallel_for(64, [&](std::int64_t) {
      if (std::this_thread::get_id() != task_thread) nested_inline.store(false);
    });
  });
  f.get();
  EXPECT_TRUE(in_region.load());
  EXPECT_TRUE(nested_inline.load());
  EXPECT_FALSE(cancelled.load());
}

TEST(Tasks, InlineAtSubmissionUnderSerialGuardAndWidthOne) {
  const std::thread::id main_thread = std::this_thread::get_id();
  {
    serial_guard guard;
    std::thread::id ran_on;
    task_future f = submit_task([&] { ran_on = std::this_thread::get_id(); });
    EXPECT_EQ(ran_on, main_thread);  // already ran, on this thread
    f.get();
  }
  {
    concurrency_guard guard{1};
    std::thread::id ran_on;
    task_future f = submit_task([&] { ran_on = std::this_thread::get_id(); });
    EXPECT_EQ(ran_on, main_thread);
    f.get();
  }
}

TEST(Tasks, GetClaimsQueuedWorkInsteadOfWaiting) {
  // Saturate the workers with slow tasks, then submit more tasks than the
  // pool has threads: some stay queued, and get() must claim and run them
  // on the waiting thread rather than deadlock behind the slow ones.
  std::atomic<std::int64_t> ran{0};
  std::vector<task_future> futures;
  for (int t = 0; t < 4 * parallel_thread_count(); ++t)
    futures.push_back(submit_task([&ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ran.fetch_add(1);
    }));
  for (task_future& f : futures) f.get();
  EXPECT_EQ(ran.load(), 4 * parallel_thread_count());
}

TEST(Tasks, TasksComposeWithForkJoinSweeps) {
  // A fork-join loop keeps its full semantics while independent tasks are
  // in flight on the same pool.
  std::atomic<std::int64_t> task_sum{0}, sweep_sum{0};
  std::vector<task_future> futures;
  for (int t = 0; t < 8; ++t)
    futures.push_back(submit_task([&task_sum] { task_sum.fetch_add(1); }));
  parallel_for(5000, [&](std::int64_t) { sweep_sum.fetch_add(1); });
  for (task_future& f : futures) f.get();
  EXPECT_EQ(task_sum.load(), 8);
  EXPECT_EQ(sweep_sum.load(), 5000);
}

}  // namespace
}  // namespace pelta
