// The shared simulated-clock event queue (core/simclock.h): total order,
// push/pop interleaving, the inclusive drain-on-shutdown rule, and golden
// regressions pinning fl::plan_async_schedule and serve::plan_batches to
// the exact plans their pre-simclock event loops produced (a hand-rolled
// priority queue and a stable sort, reimplemented here as references).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>
#include <vector>

#include "core/simclock.h"
#include "fl/async.h"
#include "serve/batcher.h"
#include "tensor/check.h"

namespace pelta {
namespace {

constexpr double k_inf = std::numeric_limits<double>::infinity();

// ---- total order -----------------------------------------------------------

TEST(SimClock, EqualStampsPopInIdOrder) {
  core::event_queue q;
  q.push(5.0, 3);
  q.push(5.0, 1);
  q.push(5.0, 2);
  EXPECT_EQ(q.pop().id, 1);
  EXPECT_EQ(q.pop().id, 2);
  EXPECT_EQ(q.pop().id, 3);
  EXPECT_TRUE(q.empty());
}

TEST(SimClock, EqualStampAndIdPopInPushOrder) {
  core::event_queue q;
  q.push(5.0, 7);
  q.push(5.0, 7);
  q.push(5.0, 7);
  EXPECT_EQ(q.pop().seq, 0u);
  EXPECT_EQ(q.pop().seq, 1u);
  EXPECT_EQ(q.pop().seq, 2u);
}

TEST(SimClock, StampDominatesIdDominatesSeq) {
  const core::sim_event early{1.0, 9, 5};
  const core::sim_event late{2.0, 0, 0};
  EXPECT_TRUE(core::sim_event_before(early, late));
  EXPECT_FALSE(core::sim_event_before(late, early));
  const core::sim_event low_id{2.0, 0, 9};
  EXPECT_TRUE(core::sim_event_before(low_id, core::sim_event{2.0, 1, 0}));
  EXPECT_FALSE(core::sim_event_before(low_id, low_id));  // strict order
}

// Interleave pushes and pops; every pop must return the minimum of the live
// contents under sim_event_before, even when later pushes land earlier than
// everything still queued.
TEST(SimClock, PopPushInterleavingStaysTotallyOrdered) {
  core::event_queue q;
  std::vector<core::sim_event> mirror;  // the events currently in the queue
  const auto push = [&](double stamp, std::int64_t id) {
    const std::uint64_t seq = q.pushes();
    ASSERT_TRUE(q.push(stamp, id));
    mirror.push_back(core::sim_event{stamp, id, seq});
  };
  const auto pop_and_check = [&] {
    const auto min_it = std::min_element(mirror.begin(), mirror.end(), core::sim_event_before);
    const core::sim_event got = q.pop();
    EXPECT_EQ(got.stamp_ns, min_it->stamp_ns);
    EXPECT_EQ(got.id, min_it->id);
    EXPECT_EQ(got.seq, min_it->seq);
    mirror.erase(min_it);
  };

  push(10.0, 1);
  push(4.0, 2);
  push(10.0, 0);
  pop_and_check();  // 4.0
  push(1.0, 5);     // earlier than everything still queued
  pop_and_check();  // 1.0
  push(10.0, 0);    // duplicate (stamp, id): seq breaks the tie
  push(7.5, 3);
  while (!mirror.empty()) pop_and_check();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(SimClock, RejectsNonFiniteStamps) {
  core::event_queue q;
  EXPECT_THROW(q.push(std::numeric_limits<double>::quiet_NaN(), 0), error);
}

// ---- the drain-on-shutdown rule --------------------------------------------

TEST(SimClock, ShutdownBoundaryIsInclusive) {
  core::event_queue q{10.0};
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.shutdown_ns(), 10.0);
  EXPECT_TRUE(q.push(10.0, 1));  // stamped exactly AT shutdown: still lands
  EXPECT_FALSE(q.push(std::nextafter(10.0, 11.0), 2));
  EXPECT_EQ(q.rejected(), 1);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().id, 1);
}

TEST(SimClock, EverySeqIsConsumedEvenByRejectedPushes) {
  core::event_queue q{10.0};
  EXPECT_TRUE(q.push(1.0, 0));    // seq 0
  EXPECT_FALSE(q.push(20.0, 1));  // seq 1, rejected
  EXPECT_TRUE(q.push(2.0, 2));    // seq 2
  EXPECT_EQ(q.pushes(), 3u);
  EXPECT_EQ(q.pop().seq, 0u);
  EXPECT_EQ(q.pop().seq, 2u);  // seq still indexes the caller's side tables
}

TEST(SimClock, CloseAtDropsQueuedEventsBeyondTheBoundary) {
  core::event_queue q;
  q.push(1.0, 0);
  q.push(5.0, 1);
  q.push(5.0, 2);
  q.push(9.0, 3);
  q.close_at(5.0);
  EXPECT_EQ(q.rejected(), 1);  // only the 9.0 event; 5.0 is AT the boundary
  EXPECT_EQ(q.size(), 3u);
  EXPECT_FALSE(q.push(6.0, 4));
  EXPECT_EQ(q.rejected(), 2);
  std::vector<std::int64_t> order;
  while (!q.empty()) order.push_back(q.pop().id);
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(SimClock, CloseAtMayOnlyTighten) {
  core::event_queue q{5.0};
  q.close_at(3.0);  // tightening is fine
  EXPECT_EQ(q.shutdown_ns(), 3.0);
  EXPECT_THROW(q.close_at(4.0), error);
}

// ---- golden regression: plan_async_schedule --------------------------------

// The pre-simclock async planner, verbatim: a std::priority_queue of
// (finish stamp, job index) popped min-first. Any divergence between this
// and fl::plan_async_schedule is a behaviour change in the port.
fl::async_schedule reference_async_plan(const fl::async_config& config,
                                        const std::vector<fl::client_profile>& profiles,
                                        const std::vector<std::int64_t>& shard_sizes,
                                        std::int64_t epochs, std::int64_t payload_bytes,
                                        const fl::network& net,
                                        std::int64_t target_aggregations, std::uint64_t seed) {
  const std::size_t clients = profiles.size();
  const rng base{seed};
  fl::async_schedule plan;

  using finish_event = std::pair<double, std::size_t>;  // (finish_ns, job index)
  std::priority_queue<finish_event, std::vector<finish_event>, std::greater<finish_event>>
      events;

  std::int64_t version = 0;
  std::vector<std::size_t> buffer;

  const auto start_job = [&](std::size_t c, double now_ns) {
    fl::async_job job;
    job.client = static_cast<std::int64_t>(c);
    job.start_version = version;
    job.start_ns = now_ns;
    job.finish_ns = now_ns + fl::async_episode_ns(config, profiles[c], shard_sizes[c], epochs,
                                                  payload_bytes, net);
    plan.legs.push_back({job.client, false, now_ns});
    const std::size_t index = plan.jobs.size();
    plan.jobs.push_back(job);
    events.push({job.finish_ns, index});
  };

  for (std::size_t c = 0; c < clients; ++c) start_job(c, 0.0);

  while (plan.aggregations < target_aggregations && !events.empty()) {
    const auto [now_ns, index] = events.top();
    events.pop();
    fl::async_job& job = plan.jobs[index];
    rng fate = base.fork(0xd20ull + static_cast<std::uint64_t>(index));
    if (profiles[static_cast<std::size_t>(job.client)].dropout_rate > 0.0 &&
        fate.bernoulli(profiles[static_cast<std::size_t>(job.client)].dropout_rate)) {
      job.dropped = true;
      ++plan.dropped;
    } else {
      plan.legs.push_back({job.client, true, now_ns});
      job.staleness = version - job.start_version;
      if (job.staleness > config.max_staleness) {
        job.stale = true;
        ++plan.stale;
      } else {
        buffer.push_back(index);
        if (static_cast<std::int64_t>(buffer.size()) == config.buffer_size) {
          for (const std::size_t b : buffer) plan.jobs[b].aggregation = plan.aggregations;
          plan.flush_inputs.push_back(std::move(buffer));
          buffer.clear();
          plan.flush_ns.push_back(now_ns);
          ++plan.aggregations;
          ++version;
          plan.end_ns = now_ns;
          if (plan.aggregations == target_aggregations) break;
        }
      }
    }
    start_job(static_cast<std::size_t>(job.client), now_ns);
  }
  return plan;
}

void expect_same_schedule(const fl::async_schedule& a, const fl::async_schedule& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].client, b.jobs[j].client) << "job " << j;
    EXPECT_EQ(a.jobs[j].start_version, b.jobs[j].start_version) << "job " << j;
    EXPECT_EQ(a.jobs[j].aggregation, b.jobs[j].aggregation) << "job " << j;
    EXPECT_EQ(a.jobs[j].staleness, b.jobs[j].staleness) << "job " << j;
    EXPECT_EQ(a.jobs[j].dropped, b.jobs[j].dropped) << "job " << j;
    EXPECT_EQ(a.jobs[j].stale, b.jobs[j].stale) << "job " << j;
    EXPECT_EQ(a.jobs[j].start_ns, b.jobs[j].start_ns) << "job " << j;
    EXPECT_EQ(a.jobs[j].finish_ns, b.jobs[j].finish_ns) << "job " << j;
  }
  EXPECT_EQ(a.flush_inputs, b.flush_inputs);
  EXPECT_EQ(a.flush_ns, b.flush_ns);
  ASSERT_EQ(a.legs.size(), b.legs.size());
  for (std::size_t l = 0; l < a.legs.size(); ++l) {
    EXPECT_EQ(a.legs[l].client, b.legs[l].client) << "leg " << l;
    EXPECT_EQ(a.legs[l].upload, b.legs[l].upload) << "leg " << l;
    EXPECT_EQ(a.legs[l].ns, b.legs[l].ns) << "leg " << l;
  }
  EXPECT_EQ(a.aggregations, b.aggregations);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.stale, b.stale);
  EXPECT_EQ(a.end_ns, b.end_ns);
}

TEST(SimClockGolden, AsyncPlanMatchesThePreSimclockPlannerOnAStragglerFleet) {
  fl::async_config cfg;
  cfg.buffer_size = 3;
  cfg.max_staleness = 4;
  cfg.heterogeneity.compute_spread = 4.0;
  cfg.heterogeneity.bandwidth_spread = 2.0;
  cfg.heterogeneity.stragglers = 3;
  cfg.heterogeneity.straggler_slowdown = 6.0;
  cfg.heterogeneity.dropout_rate = 0.15;
  cfg.heterogeneity.seed = 91;
  const auto profiles = fl::make_client_profiles(12, cfg.heterogeneity);
  std::vector<std::int64_t> shard_sizes;
  for (std::int64_t c = 0; c < 12; ++c) shard_sizes.push_back(20 + 5 * (c % 4));
  const fl::network net;

  const fl::async_schedule expected =
      reference_async_plan(cfg, profiles, shard_sizes, 2, 4096, net, 10, 7);
  const fl::async_schedule got =
      fl::plan_async_schedule(cfg, profiles, shard_sizes, 2, 4096, net, 10, 7);
  expect_same_schedule(expected, got);
  EXPECT_EQ(got.aggregations, 10);
  EXPECT_GT(got.dropped, 0);  // the fleet actually exercises the dropout path
}

// ---- golden regression: plan_batches ---------------------------------------

// The pre-simclock batcher, verbatim: stable-sort the arrivals by
// (submit_ns, id, index), then the same greedy window scan.
serve::batch_plan reference_batch_plan(const std::vector<double>& submit_ns,
                                       const std::vector<std::int64_t>& ids,
                                       const serve::batch_policy& policy) {
  const std::size_t n = submit_ns.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (submit_ns[a] != submit_ns[b]) return submit_ns[a] < submit_ns[b];
    if (!ids.empty() && ids[a] != ids[b]) return ids[a] < ids[b];
    return false;
  });

  serve::batch_plan plan;
  plan.requests = static_cast<std::int64_t>(n);
  std::size_t i = 0;
  while (i < n) {
    serve::planned_batch batch;
    batch.open_ns = submit_ns[order[i]];
    batch.members.push_back(order[i]);
    const double deadline = batch.open_ns + policy.max_delay_ns;
    double last_arrival_ns = batch.open_ns;
    std::size_t j = i + 1;
    while (j < n && static_cast<std::int64_t>(batch.members.size()) < policy.max_batch &&
           submit_ns[order[j]] <= deadline) {
      batch.members.push_back(order[j]);
      last_arrival_ns = submit_ns[order[j]];
      ++j;
    }
    batch.closed_by_fill = static_cast<std::int64_t>(batch.members.size()) == policy.max_batch;
    batch.closed_by_drain = !batch.closed_by_fill && j == n;
    batch.close_ns =
        (batch.closed_by_fill || batch.closed_by_drain) ? last_arrival_ns : deadline;
    plan.batches.push_back(std::move(batch));
    i = j;
  }
  return plan;
}

void expect_same_batch_plan(const serve::batch_plan& a, const serve::batch_plan& b) {
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].members, b.batches[i].members) << "batch " << i;
    EXPECT_EQ(a.batches[i].open_ns, b.batches[i].open_ns) << "batch " << i;
    EXPECT_EQ(a.batches[i].close_ns, b.batches[i].close_ns) << "batch " << i;
    EXPECT_EQ(a.batches[i].closed_by_fill, b.batches[i].closed_by_fill) << "batch " << i;
    EXPECT_EQ(a.batches[i].closed_by_drain, b.batches[i].closed_by_drain) << "batch " << i;
  }
  EXPECT_EQ(a.requests, b.requests);
}

TEST(SimClockGolden, BatchPlanMatchesThePreSimclockPlannerOnAPoissonTrace) {
  const std::vector<double> arrivals = serve::make_poisson_arrivals(200, 5e5, 11);
  std::vector<std::int64_t> ids;
  for (std::size_t i = 0; i < arrivals.size(); ++i)
    ids.push_back(static_cast<std::int64_t>((i * 37) % 211));  // distinct, shuffled
  serve::batch_policy policy;
  policy.max_batch = 8;
  policy.max_delay_ns = 1.5e6;
  expect_same_batch_plan(reference_batch_plan(arrivals, ids, policy),
                         serve::plan_batches(arrivals, ids, policy));
}

TEST(SimClockGolden, EqualStampArrivalsBatchInIdOrder) {
  const std::vector<double> arrivals{5.0, 5.0, 5.0, 5.0, 9.0};
  const std::vector<std::int64_t> ids{40, 10, 30, 20, 1};
  serve::batch_policy policy;
  policy.max_batch = 3;
  policy.max_delay_ns = 10.0;
  const serve::batch_plan plan = serve::plan_batches(arrivals, ids, policy);
  expect_same_batch_plan(reference_batch_plan(arrivals, ids, policy), plan);
  ASSERT_EQ(plan.batches.size(), 2u);
  // ids 10 < 20 < 30 fill the first batch; 40 opens the second.
  EXPECT_EQ(plan.batches[0].members, (std::vector<std::size_t>{1, 3, 2}));
  EXPECT_EQ(plan.batches[1].members, (std::vector<std::size_t>{0, 4}));
}

// ---- the unified drain rule, end to end ------------------------------------

TEST(SimClockDrain, BatchShutdownAtTheLastArrivalStillFlushes) {
  const std::vector<double> arrivals = serve::make_poisson_arrivals(64, 8e5, 3);
  std::vector<std::int64_t> ids;
  for (std::size_t i = 0; i < arrivals.size(); ++i) ids.push_back(static_cast<std::int64_t>(i));
  serve::batch_policy policy;
  policy.max_batch = 5;
  policy.max_delay_ns = 1e6;
  const double last = *std::max_element(arrivals.begin(), arrivals.end());

  const serve::batch_plan open_plan = serve::plan_batches(arrivals, ids, policy);
  const serve::batch_plan at_last = serve::plan_batches(arrivals, ids, policy, last);
  expect_same_batch_plan(open_plan, at_last);  // inclusive: nothing is lost
  EXPECT_EQ(at_last.rejected, 0);

  // Just below the last arrival: exactly the requests stamped at `last` are
  // rejected, everything else still batches, and no member index ever
  // refers to a rejected request.
  const serve::batch_plan below =
      serve::plan_batches(arrivals, ids, policy, std::nextafter(last, 0.0));
  std::int64_t at_last_count = 0;
  for (double a : arrivals)
    if (a == last) ++at_last_count;
  EXPECT_EQ(below.rejected, at_last_count);
  std::int64_t members = 0;
  for (const serve::planned_batch& b : below.batches) {
    members += static_cast<std::int64_t>(b.members.size());
    for (std::size_t m : b.members) EXPECT_LT(arrivals[m], last);
  }
  EXPECT_EQ(members + below.rejected, static_cast<std::int64_t>(arrivals.size()));
}

TEST(SimClockDrain, AsyncHorizonAtTheFinalFlushStillAggregates) {
  fl::async_config cfg;
  cfg.buffer_size = 2;
  cfg.heterogeneity.compute_spread = 3.0;
  cfg.heterogeneity.stragglers = 1;
  cfg.heterogeneity.seed = 5;
  const auto profiles = fl::make_client_profiles(6, cfg.heterogeneity);
  const std::vector<std::int64_t> shard_sizes(6, 25);
  const fl::network net;

  const fl::async_schedule open_plan =
      fl::plan_async_schedule(cfg, profiles, shard_sizes, 1, 2048, net, 6, 17);
  ASSERT_EQ(open_plan.aggregations, 6);

  // Horizon stamped exactly at the final flush: the shared inclusive drain
  // rule keeps the whole schedule.
  const fl::async_schedule at_end = fl::plan_async_schedule(cfg, profiles, shard_sizes, 1, 2048,
                                                            net, 6, 17, open_plan.end_ns);
  expect_same_schedule(open_plan, at_end);

  // Just below it: the final aggregation is lost, the prefix is untouched.
  const fl::async_schedule below = fl::plan_async_schedule(
      cfg, profiles, shard_sizes, 1, 2048, net, 6, 17, std::nextafter(open_plan.end_ns, 0.0));
  EXPECT_EQ(below.aggregations, 5);
  ASSERT_EQ(below.flush_ns.size(), 5u);
  for (std::size_t f = 0; f < 5; ++f) EXPECT_EQ(below.flush_ns[f], open_plan.flush_ns[f]);
  EXPECT_EQ(below.end_ns, open_plan.flush_ns[4]);
}

}  // namespace
}  // namespace pelta
