// Int8 quantized inference suite: the quantization vocabulary
// (tensor/quantized_tensor.h), the packed int8 GEMM kernel vs its frozen
// unpacked reference, the arena's aligned typed claims, the nn/compile
// fusion pass and the models/compiler calibration wrapper.
//
// Determinism posture matches test_kernels: integer-accumulation paths are
// compared with memcmp, never a tolerance — the int8 forward promises
// BITWISE identity across thread counts, batch sizes and packing paths.
// Only the fp32 dequantized logits of a whole compiled model get a
// tolerance (against the fp32 source model, whose arithmetic it replaces).
// The static initializer pins PELTA_THREADS=8 (without overriding an
// explicit environment setting) so pooled runs really cross threads.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "autodiff/ops_conv.h"
#include "autodiff/ops_elementwise.h"
#include "autodiff/ops_loss.h"
#include "autodiff/ops_norm.h"
#include "models/compiler.h"
#include "models/ensemble.h"
#include "models/mlp.h"
#include "models/trainer.h"
#include "nn/compile.h"
#include "reference_kernels.h"
#include "tensor/kernels.h"
#include "tensor/parallel.h"
#include "tensor/quantized_tensor.h"
#include "tensor/rng.h"
#include "tensor/scratch.h"
#include "tensor/tensor.h"

namespace pelta {
namespace {

const bool k_threads_pinned = [] {
  setenv("PELTA_THREADS", "8", /*overwrite=*/0);
  return true;
}();

using ops::reference::reference_qgemm;  // THE frozen unpacked int8 baseline

// ---- rounding and round-trip ------------------------------------------------

TEST(Quantize, RoundNearestEvenTiesToEven) {
  EXPECT_EQ(quant::round_nearest_even(0.0f), 0);
  EXPECT_EQ(quant::round_nearest_even(2.0f), 2);
  EXPECT_EQ(quant::round_nearest_even(-2.0f), -2);
  EXPECT_EQ(quant::round_nearest_even(2.4f), 2);
  EXPECT_EQ(quant::round_nearest_even(2.6f), 3);
  // Ties go to the even neighbour, both signs.
  EXPECT_EQ(quant::round_nearest_even(0.5f), 0);
  EXPECT_EQ(quant::round_nearest_even(1.5f), 2);
  EXPECT_EQ(quant::round_nearest_even(2.5f), 2);
  EXPECT_EQ(quant::round_nearest_even(-0.5f), 0);
  EXPECT_EQ(quant::round_nearest_even(-1.5f), -2);
  EXPECT_EQ(quant::round_nearest_even(-2.5f), -2);
}

TEST(Quantize, ActivationRoundTripErrorBound) {
  rng gen{11};
  const std::int64_t n = 4096;
  std::vector<float> x(static_cast<std::size_t>(n));
  for (float& v : x) v = gen.uniform(-3.0f, 3.0f);
  const float amax = quant::absmax(x.data(), n);
  const float scale = quant::activation_scale(amax);
  std::vector<std::uint8_t> codes(x.size());
  quant::quantize_activations(x.data(), n, scale, codes.data());
  for (std::int64_t i = 0; i < n; ++i) {
    const float back = quant::dequantize_activation(codes[static_cast<std::size_t>(i)], scale);
    // In-range values round to the nearest representable multiple of scale.
    EXPECT_LE(std::fabs(back - x[static_cast<std::size_t>(i)]), 0.5f * scale + 1e-6f);
  }
  // Exact zero always lands on the exact zero code — conv spatial padding
  // depends on this.
  std::uint8_t zero_code = 0;
  const float zero = 0.0f;
  quant::quantize_activations(&zero, 1, scale, &zero_code);
  EXPECT_EQ(static_cast<std::int32_t>(zero_code), quant::k_act_zero);
}

TEST(Quantize, DegenerateRangesFallBackToScaleOne) {
  EXPECT_EQ(quant::activation_scale(0.0f), 1.0f);
  EXPECT_EQ(quant::activation_scale(-1.0f), 1.0f);
  // An all-zero weight channel gets scale 1 and all-zero codes.
  const std::vector<float> w(8, 0.0f);
  const quant::quantized_weights qw = quant::quantize_weights_kn(w.data(), 4, 2);
  EXPECT_EQ(qw.scales[0], 1.0f);
  for (const std::int8_t c : qw.codes) EXPECT_EQ(c, 0);
  for (const std::int32_t s : qw.colsums) EXPECT_EQ(s, 0);
}

// ---- weight quantization ----------------------------------------------------

TEST(Quantize, WeightScaleSelectionIsDeterministic) {
  rng gen{23};
  const std::int64_t k = 37, n = 19;
  std::vector<float> w(static_cast<std::size_t>(k * n));
  for (float& v : w) v = gen.uniform(-2.0f, 2.0f);
  const quant::quantized_weights a = quant::quantize_weights_kn(w.data(), k, n);
  const quant::quantized_weights b = quant::quantize_weights_kn(w.data(), k, n);
  ASSERT_EQ(a.codes.size(), b.codes.size());
  EXPECT_EQ(std::memcmp(a.codes.data(), b.codes.data(), a.codes.size()), 0);
  EXPECT_EQ(std::memcmp(a.packed.data(), b.packed.data(), a.packed.size()), 0);
  EXPECT_EQ(std::memcmp(a.scales.data(), b.scales.data(), a.scales.size() * sizeof(float)), 0);
  // Codes respect the 7-bit kernel contract and colsums really are the
  // column sums the -128 compensation relies on.
  for (std::int64_t j = 0; j < n; ++j) {
    std::int32_t sum = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int8_t c = a.codes[static_cast<std::size_t>(kk * n + j)];
      EXPECT_LE(std::abs(static_cast<int>(c)), quant::k_weight_qmax);
      sum += c;
    }
    EXPECT_EQ(sum, a.colsums[static_cast<std::size_t>(j)]);
  }
}

// ---- packed int8 GEMM vs the frozen reference -------------------------------

TEST(Qgemm, MatchesReferenceBitwiseAcrossTileGrid) {
  // Sizes straddle every tile boundary: register tiles (4x16), k-groups of
  // 4, the KCQ k-block (256 groups = 1024 rows is too slow for a grid, so
  // 65 covers multi-group + remainders; the k-block edge gets its own case).
  const std::int64_t sizes[] = {1, 3, 4, 5, 15, 16, 17, 33, 64, 65};
  rng gen{31};
  for (const std::int64_t m : sizes) {
    for (const std::int64_t k : sizes) {
      const std::int64_t lda = ops::detail::qgemm_row_stride(k);
      std::vector<std::uint8_t> a(static_cast<std::size_t>(m * lda), 0);
      for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t kk = 0; kk < k; ++kk)
          a[static_cast<std::size_t>(i * lda + kk)] =
              static_cast<std::uint8_t>(1 + (gen.next_u64() % 255));
      for (const std::int64_t n : sizes) {
        std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
        for (std::int8_t& v : b)
          v = static_cast<std::int8_t>(static_cast<std::int64_t>(gen.next_u64() % 127) - 63);
        std::vector<std::int8_t> packed(
            static_cast<std::size_t>(ops::detail::qgemm_packed_size(k, n)), 0);
        ops::detail::qgemm_pack_b(b.data(), k, n, packed.data());
        std::vector<std::int32_t> colsums(static_cast<std::size_t>(n), 0);
        for (std::int64_t j = 0; j < n; ++j)
          for (std::int64_t kk = 0; kk < k; ++kk)
            colsums[static_cast<std::size_t>(j)] += b[static_cast<std::size_t>(kk * n + j)];
        std::vector<std::int32_t> got(static_cast<std::size_t>(m * n), -1);
        std::vector<std::int32_t> want(static_cast<std::size_t>(m * n), -2);
        ops::detail::qgemm(a.data(), lda, packed.data(), colsums.data(), got.data(), m, k, n);
        reference_qgemm(a.data(), lda, b.data(), want.data(), m, k, n);
        ASSERT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(std::int32_t)), 0)
            << "m=" << m << " k=" << k << " n=" << n;
      }
    }
  }
}

TEST(Qgemm, MatchesReferenceAcrossKBlockBoundary) {
  // KCQ = 256 k-groups = 1024 depth rows per block: straddle it.
  rng gen{37};
  const std::int64_t m = 5, n = 17;
  for (const std::int64_t k : {1023LL, 1024LL, 1025LL}) {
    const std::int64_t lda = ops::detail::qgemm_row_stride(k);
    std::vector<std::uint8_t> a(static_cast<std::size_t>(m * lda), 0);
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t kk = 0; kk < k; ++kk)
        a[static_cast<std::size_t>(i * lda + kk)] =
            static_cast<std::uint8_t>(1 + (gen.next_u64() % 255));
    std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
    for (std::int8_t& v : b)
      v = static_cast<std::int8_t>(static_cast<std::int64_t>(gen.next_u64() % 127) - 63);
    std::vector<std::int8_t> packed(static_cast<std::size_t>(ops::detail::qgemm_packed_size(k, n)),
                                    0);
    ops::detail::qgemm_pack_b(b.data(), k, n, packed.data());
    std::vector<std::int32_t> colsums(static_cast<std::size_t>(n), 0);
    for (std::int64_t j = 0; j < n; ++j)
      for (std::int64_t kk = 0; kk < k; ++kk)
        colsums[static_cast<std::size_t>(j)] += b[static_cast<std::size_t>(kk * n + j)];
    std::vector<std::int32_t> got(static_cast<std::size_t>(m * n), -1);
    std::vector<std::int32_t> want(static_cast<std::size_t>(m * n), -2);
    ops::detail::qgemm(a.data(), lda, packed.data(), colsums.data(), got.data(), m, k, n);
    reference_qgemm(a.data(), lda, b.data(), want.data(), m, k, n);
    ASSERT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(std::int32_t)), 0)
        << "k=" << k;
  }
}

TEST(Qgemm, ZeroDepthYieldsZeros) {
  std::vector<std::int32_t> out(4 * 16, 123);
  const std::vector<std::int32_t> colsums(16, 0);
  ops::detail::qgemm(nullptr, 0, nullptr, colsums.data(), out.data(), 4, 0, 16);
  for (const std::int32_t v : out) EXPECT_EQ(v, 0);
}

// ---- arena typed claims -----------------------------------------------------

TEST(ScratchArena, TypedClaimsAreAligned) {
  scratch_arena& arena = scratch_arena::local();
  {
    const scratch_typed<std::uint8_t> bytes = arena.take_typed<std::uint8_t>(13);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(bytes.data()) % scratch_arena::k_claim_alignment,
              0u);
    EXPECT_EQ(bytes.size(), 13u);
    // Nested LIFO claim of a different element type.
    const scratch_typed<std::int32_t> acc = arena.take_typed<std::int32_t>(7);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(acc.data()) % scratch_arena::k_claim_alignment,
              0u);
    acc.data()[6] = -1;
    bytes.data()[12] = 255;
  }
  // Empty claims are legal and need no arena space.
  const scratch_typed<std::int32_t> empty = arena.take_typed<std::int32_t>(0);
  EXPECT_EQ(empty.size(), 0u);
}

// ---- compile pass over a real model -----------------------------------------

tensor first_train_images(const data::dataset& ds, std::int64_t count) {
  std::vector<std::int64_t> idx(static_cast<std::size_t>(count));
  std::iota(idx.begin(), idx.end(), 0);
  return ds.gather_train(idx).images;
}

models::mlp_config small_mlp_config(std::uint64_t seed) {
  models::mlp_config c;
  c.name = "qmlp";
  c.image_size = 16;
  c.channels = 3;
  c.hidden = {48, 24};
  c.classes = 10;
  c.seed = seed;
  return c;
}

TEST(CompilePass, PlanRespectsKeepTagsAndMergesFp32Runs) {
  const models::mlp_model mlp{small_mlp_config(5)};
  rng gen{41};
  const tensor images = tensor::rand_uniform(gen, {2, 3, 16, 16});
  const models::forward_pass fp = mlp.forward(images, ad::norm_mode::eval);
  const std::vector<nn::chain_step> chain = nn::parse_chain(fp.graph, fp.input, fp.logits);
  // flatten, fc0, act0, fc1, act1, head
  ASSERT_EQ(chain.size(), 6u);
  EXPECT_EQ(chain[0].kind, nn::step_kind::reshape);
  EXPECT_EQ(chain[1].kind, nn::step_kind::linear);
  EXPECT_EQ(chain[1].param_names.size(), 2u);

  // No keep-list: flatten stays fp32, both hidden stages and the head fuse.
  const std::vector<nn::fusion_group> all = nn::plan_fusion(chain, {});
  ASSERT_EQ(all.size(), 4u);
  EXPECT_FALSE(all[0].quantize);
  EXPECT_TRUE(all[1].quantize && all[1].begin == 1 && all[1].end == 3);
  EXPECT_TRUE(all[2].quantize && all[2].begin == 3 && all[2].end == 5);
  EXPECT_TRUE(all[3].quantize && all[3].begin == 5 && all[3].end == 6);

  // Keeping the first activation fp32 merges the whole prefix into one run.
  const std::vector<nn::fusion_group> kept = nn::plan_fusion(chain, {"mlp.act0"});
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_FALSE(kept[0].quantize);
  EXPECT_EQ(kept[0].begin, 0u);
  EXPECT_EQ(kept[0].end, 3u);
  EXPECT_TRUE(kept[1].quantize);
  EXPECT_TRUE(kept[2].quantize);
}

TEST(CompilePass, DefaultPolicyKeepsShieldFrontierFp32) {
  const models::mlp_model mlp{small_mlp_config(7)};
  rng gen{43};
  const tensor calib = tensor::rand_uniform(gen, {8, 3, 16, 16});
  models::quantize_report report;
  const auto qm = models::quantize_model(mlp, calib, {}, &report);
  EXPECT_EQ(qm->name(), "qmlp+int8");
  // Frontier = mlp.act0: flatten/fc0/act0 stay fp32, fc1+act1 and head fuse.
  EXPECT_EQ(report.stages_quantized, 2u);
  EXPECT_EQ(report.kept_fp32_tags,
            (std::vector<std::string>{"mlp.flatten", "mlp.fc0", "mlp.act0"}));
  // The frontier tag must still be addressable in the compiled graph.
  const models::forward_pass fp = qm->forward(calib, ad::norm_mode::eval);
  EXPECT_NE(fp.graph.find_tag("mlp.act0"), ad::invalid_node);
}

TEST(CompilePass, FusedLogitsMatchSourceWithinDequantTolerance) {
  const models::mlp_model mlp{small_mlp_config(9)};
  rng gen{47};
  const tensor calib = tensor::rand_uniform(gen, {16, 3, 16, 16});
  const tensor images = tensor::rand_uniform(gen, {12, 3, 16, 16});
  models::quantize_options all;
  all.quantize_all = true;
  models::quantize_report report;
  const auto qm = models::quantize_model(mlp, calib, all, &report);
  EXPECT_EQ(report.stages_fp32, 1u);  // only the flatten reshape
  EXPECT_EQ(report.stages_quantized, 3u);

  const tensor want = models::predict_logits(mlp, images);
  const tensor got = models::predict_logits(*qm, images);
  ASSERT_TRUE(want.same_shape(got));
  float max_abs = 0.0f, max_diff = 0.0f;
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    max_abs = std::max(max_abs, std::fabs(want[i]));
    max_diff = std::max(max_diff, std::fabs(want[i] - got[i]));
  }
  // 8-bit activations / 7-bit weights through 3 stages: a few percent of
  // the logit range, far below class-flip scale on these random nets.
  EXPECT_LE(max_diff, 0.05f * (1.0f + max_abs));
}

TEST(CompilePass, Int8PathIsBitwiseReproducible) {
  const models::mlp_model mlp{small_mlp_config(13)};
  rng gen{53};
  const tensor calib = tensor::rand_uniform(gen, {8, 3, 16, 16});
  const tensor images = tensor::rand_uniform(gen, {9, 3, 16, 16});
  const auto qa = models::quantize_model(mlp, calib);
  const auto qb = models::quantize_model(mlp, calib);
  const tensor la = models::predict_logits(*qa, images);
  const tensor lb = models::predict_logits(*qb, images);
  ASSERT_TRUE(la.same_shape(lb));
  EXPECT_EQ(std::memcmp(la.data().data(), lb.data().data(),
                        static_cast<std::size_t>(la.numel()) * sizeof(float)),
            0);
}

TEST(CompilePass, QuantizedForwardIsBatchInvariant) {
  const models::mlp_model mlp{small_mlp_config(17)};
  rng gen{59};
  const tensor calib = tensor::rand_uniform(gen, {8, 3, 16, 16});
  const tensor images = tensor::rand_uniform(gen, {11, 3, 16, 16});
  models::quantize_options all;
  all.quantize_all = true;
  const auto qm = models::quantize_model(mlp, calib, all);
  const tensor batched = models::predict_logits(*qm, images);
  const std::int64_t px = 3 * 16 * 16;
  for (std::int64_t i = 0; i < images.size(0); ++i) {
    tensor one{shape_t{1, 3, 16, 16}};
    std::memcpy(one.data().data(), images.data().data() + i * px,
                sizeof(float) * static_cast<std::size_t>(px));
    const tensor row = models::predict_logits(*qm, one);
    ASSERT_EQ(std::memcmp(row.data().data(), batched.data().data() + i * row.numel(),
                          static_cast<std::size_t>(row.numel()) * sizeof(float)),
              0)
        << "row " << i;
  }
}

TEST(CompilePass, PooledAndSerialSchedulesAreBitIdentical) {
  const models::mlp_model mlp{small_mlp_config(19)};
  rng gen{61};
  const tensor calib = tensor::rand_uniform(gen, {8, 3, 16, 16});
  // Big enough batch that quantized_stage::run really splits across the
  // pinned 8-thread pool.
  const tensor images = tensor::rand_uniform(gen, {64, 3, 16, 16});
  models::quantize_options all;
  all.quantize_all = true;
  const auto qm = models::quantize_model(mlp, calib, all);
  tensor serial;
  {
    serial_guard guard;
    serial = models::predict_logits(*qm, images);
  }
  const tensor pooled = models::predict_logits(*qm, images);
  ASSERT_TRUE(serial.same_shape(pooled));
  EXPECT_EQ(std::memcmp(serial.data().data(), pooled.data().data(),
                        static_cast<std::size_t>(serial.numel()) * sizeof(float)),
            0);
}

// ---- conv chain: batch-norm folding and straight-through backward -----------

// Chain-shaped conv victim: conv -> eval batchnorm -> relu -> global
// avgpool -> linear head. Exercises the conv im2col int8 path, BN folding
// into per-channel scales/bias, and the fused op's BPDA backward.
class tiny_conv_model final : public models::model {
public:
  explicit tiny_conv_model(std::uint64_t seed) {
    rng gen{seed};
    conv_w_ = &params_.create("tiny.conv.w", tensor::randn(gen, {6, 3, 3, 3}, 0.0f, 0.4f));
    bn_gamma_ = &params_.create("tiny.bn.gamma", tensor::rand_uniform(gen, {6}, 0.5f, 1.5f));
    bn_beta_ = &params_.create("tiny.bn.beta", tensor::rand_uniform(gen, {6}, -0.2f, 0.2f));
    head_w_ = &params_.create("tiny.head.w", tensor::randn(gen, {6, 4}, 0.0f, 0.6f));
    head_b_ = &params_.create("tiny.head.b", tensor::rand_uniform(gen, {4}, -0.1f, 0.1f));
    stats_.running_mean = tensor::zeros({6});
    stats_.running_var = tensor::ones({6});
  }

  const std::string& name() const override { return name_; }
  std::int64_t num_classes() const override { return 4; }
  models::forward_pass forward(const tensor& images, ad::norm_mode mode) const override {
    models::forward_pass fp;
    fp.input = fp.graph.add_input(images);
    ad::node_id x = fp.graph.add_transform(ad::make_conv2d(1, 1, /*with_bias=*/false),
                                           {fp.input, fp.graph.add_parameter(*conv_w_)},
                                           "tiny.conv");
    x = fp.graph.add_transform(
        ad::make_batchnorm2d(&stats_, mode),
        {x, fp.graph.add_parameter(*bn_gamma_), fp.graph.add_parameter(*bn_beta_)}, "tiny.bn");
    x = fp.graph.add_transform(ad::make_relu(), {x}, "tiny.act");
    x = fp.graph.add_transform(ad::make_global_avgpool(), {x}, "tiny.pool");
    fp.logits = fp.graph.add_transform(
        ad::make_linear(/*with_bias=*/true),
        {x, fp.graph.add_parameter(*head_w_), fp.graph.add_parameter(*head_b_)}, "tiny.head");
    return fp;
  }
  nn::param_store& params() override { return params_; }
  const nn::param_store& params() const override { return params_; }
  std::vector<std::string> shield_frontier_tags() const override { return {"tiny.act"}; }
  std::vector<ad::batchnorm_stats*> batchnorm_buffers() const override { return {&stats_}; }

private:
  std::string name_ = "tiny-conv";
  nn::param_store params_;
  ad::parameter* conv_w_ = nullptr;
  ad::parameter* bn_gamma_ = nullptr;
  ad::parameter* bn_beta_ = nullptr;
  ad::parameter* head_w_ = nullptr;
  ad::parameter* head_b_ = nullptr;
  mutable ad::batchnorm_stats stats_;
};

TEST(CompilePass, ConvBatchnormFoldingMatchesSource) {
  tiny_conv_model m{29};
  rng gen{67};
  // A train-mode pass first, so the running stats the eval fold consumes
  // are non-trivial.
  (void)m.forward(tensor::rand_uniform(gen, {16, 3, 8, 8}), ad::norm_mode::train);
  const tensor calib = tensor::rand_uniform(gen, {8, 3, 8, 8});
  const tensor images = tensor::rand_uniform(gen, {6, 3, 8, 8});
  models::quantize_options all;
  all.quantize_all = true;
  models::quantize_report report;
  const auto qm = models::quantize_model(m, calib, all, &report);
  // conv+bn+relu fuse into ONE int8 stage; pool stays fp32; head fuses.
  EXPECT_EQ(report.stages_quantized, 2u);
  EXPECT_EQ(report.quantized_tags, (std::vector<std::string>{"tiny.act", "tiny.head"}));

  const tensor want = models::predict_logits(m, images);
  const tensor got = models::predict_logits(*qm, images);
  ASSERT_TRUE(want.same_shape(got));
  float max_abs = 0.0f, max_diff = 0.0f;
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    max_abs = std::max(max_abs, std::fabs(want[i]));
    max_diff = std::max(max_diff, std::fabs(want[i] - got[i]));
  }
  EXPECT_LE(max_diff, 0.05f * (1.0f + max_abs));
}

TEST(CompilePass, StraightThroughBackwardReachesTheInput) {
  tiny_conv_model m{31};
  rng gen{71};
  (void)m.forward(tensor::rand_uniform(gen, {16, 3, 8, 8}), ad::norm_mode::train);
  const tensor calib = tensor::rand_uniform(gen, {8, 3, 8, 8});
  models::quantize_options all;
  all.quantize_all = true;
  const auto qm = models::quantize_model(m, calib, all);

  const tensor x = tensor::rand_uniform(gen, {2, 3, 8, 8});
  models::forward_pass fp = qm->forward(x, ad::norm_mode::eval);
  tensor seed{fp.graph.value(fp.logits).shape()};
  seed.fill_(1.0f);
  fp.graph.backward_from(fp.logits, std::move(seed));
  ASSERT_TRUE(fp.graph.has_adjoint(fp.input));
  const tensor& g = fp.graph.adjoint(fp.input);
  EXPECT_TRUE(g.same_shape(x));
  float norm = 0.0f;
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(g[i]));
    norm += std::fabs(g[i]);
  }
  // The BPDA surrogate must carry real signal (an all-zero gradient would
  // silently disarm every gradient attack on quantized models).
  EXPECT_GT(norm, 0.0f);
}

// ---- calibrated accuracy ----------------------------------------------------

TEST(CompilePass, EnsembleAccuracyDropsAtMostOnePoint) {
  data::dataset_config dc = data::cifar10_like();
  dc.classes = 4;
  dc.train_per_class = 40;
  dc.test_per_class = 25;
  const data::dataset ds{dc};

  models::train_config tc;
  tc.epochs = 8;
  tc.batch_size = 32;
  tc.lr = 3e-3f;
  tc.shards = 4;

  models::mlp_config ca = small_mlp_config(101);
  ca.hidden = {64, 32};
  ca.classes = 4;
  models::mlp_model first{ca};
  tc.seed = 211;
  (void)models::train_model(first, ds, tc);
  models::mlp_config cb = small_mlp_config(103);
  cb.hidden = {56, 28};
  cb.classes = 4;
  models::mlp_model second{cb};
  tc.seed = 223;
  (void)models::train_model(second, ds, tc);

  const tensor calib = first_train_images(ds, 64);
  const auto q_first = models::quantize_model(first, calib);
  const auto q_second = models::quantize_model(second, calib);

  const models::random_selection_ensemble fp32_ens{first, second};
  const models::random_selection_ensemble int8_ens{*q_first, *q_second};
  // Same selection seed: both policies draw the same member per sample, so
  // the comparison isolates quantization.
  rng sel_a{9001};
  rng sel_b{9001};
  const float fp32_acc = fp32_ens.accuracy(ds.test_images(), ds.test_labels(), sel_a);
  const float int8_acc = int8_ens.accuracy(ds.test_images(), ds.test_labels(), sel_b);
  EXPECT_GE(fp32_acc, 0.5f) << "victim too weak for the drop bound to mean anything";
  EXPECT_GE(int8_acc, fp32_acc - 0.01f - 1e-6f);
}

}  // namespace
}  // namespace pelta
