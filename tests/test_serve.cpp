// Batched shielded-inference serving runtime (src/serve).
//
// The suite pins the three contracts the runtime promises:
//   * the dynamic batcher is a pure policy — max_batch/max_delay boundary
//     behaviour, FIFO fairness and drain-on-shutdown are enumerable;
//   * batching never changes results — every logits row is bit-identical
//     to a batch-1 forward (the serial per-request deployment), pooled and
//     forced-serial schedules agree bitwise at PELTA_THREADS=8, and every
//     per-request latency breakdown sums to its end-to-end latency;
//   * TEE costs are charged per batch, not per request — the hotcall
//     session's modeled cost sits far below the ecall-style per-request
//     loop's;
//   * the wall-clock pipelined executor is invisible in the results — the
//     serving_report is byte-identical to the strictly sequential chain at
//     every pipeline depth and thread width, the enclave stage never
//     interleaves its session brackets (including when a mid-pipeline
//     batch throws), and a failed run leaves the server serviceable.
// The static initializer pins PELTA_THREADS=8 (without overriding an
// explicit environment setting) so pooled runs really cross threads even on
// single-core hosts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/pelta.h"
#include "defenses/defended.h"
#include "models/vit.h"
#include "serve/server.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace pelta {
namespace {

const bool k_threads_pinned = [] {
  setenv("PELTA_THREADS", "8", /*overwrite=*/0);
  return true;
}();

models::vit_config tiny_vit_config(std::uint64_t seed = 31) {
  models::vit_config c;
  c.name = "serve-test-vit";
  c.image_size = 16;
  c.patch_size = 4;
  c.dim = 16;
  c.heads = 2;
  c.blocks = 1;
  c.mlp_hidden = 32;
  c.classes = 4;
  c.seed = seed;
  return c;
}

std::vector<serve::classify_request> make_requests(std::int64_t n,
                                                   const std::vector<double>& submit_ns,
                                                   std::uint64_t seed = 7) {
  rng gen{seed};
  std::vector<serve::classify_request> reqs;
  reqs.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    serve::classify_request r;
    r.id = i;
    r.image = tensor::rand_uniform(gen, {3, 16, 16});
    r.submit_ns = submit_ns[static_cast<std::size_t>(i)];
    reqs.push_back(std::move(r));
  }
  return reqs;
}

bool bits_equal(const tensor& a, const tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

// Byte-level equality of two serving reports: every per-request field
// (logits bits, latency breakdown, batch attribution), every batch record
// and every session-level total. Doubles compare with == on purpose — the
// pipelined executor must reproduce the sequential chain EXACTLY.
void expect_reports_identical(const serve::serving_report& got,
                              const serve::serving_report& want) {
  EXPECT_EQ(got.requests, want.requests);
  EXPECT_EQ(got.first_submit_ns, want.first_submit_ns);
  EXPECT_EQ(got.last_finish_ns, want.last_finish_ns);
  EXPECT_EQ(got.enclave_ns, want.enclave_ns);
  EXPECT_EQ(got.hotcalls, want.hotcalls);
  ASSERT_EQ(got.results.size(), want.results.size());
  for (std::size_t i = 0; i < want.results.size(); ++i) {
    const serve::classify_result& g = got.results[i];
    const serve::classify_result& w = want.results[i];
    ASSERT_TRUE(bits_equal(g.logits, w.logits)) << "request " << i;
    EXPECT_EQ(g.request_id, w.request_id);
    EXPECT_EQ(g.predicted, w.predicted);
    EXPECT_EQ(g.batch_index, w.batch_index);
    EXPECT_EQ(g.batch_size, w.batch_size);
    EXPECT_EQ(g.masked_transforms, w.masked_transforms);
    EXPECT_EQ(g.shield_bytes_batch, w.shield_bytes_batch);
    EXPECT_EQ(g.submit_ns, w.submit_ns);
    EXPECT_EQ(g.finish_ns, w.finish_ns);
    EXPECT_EQ(g.latency.queue_ns, w.latency.queue_ns);
    EXPECT_EQ(g.latency.batch_ns, w.latency.batch_ns);
    EXPECT_EQ(g.latency.enclave_ns, w.latency.enclave_ns);
    EXPECT_EQ(g.latency.compute_ns, w.latency.compute_ns);
  }
  ASSERT_EQ(got.batches.size(), want.batches.size());
  for (std::size_t b = 0; b < want.batches.size(); ++b) {
    const serve::batch_record& g = got.batches[b];
    const serve::batch_record& w = want.batches[b];
    EXPECT_EQ(g.request_ids, w.request_ids) << "batch " << b;
    EXPECT_EQ(g.close_ns, w.close_ns);
    EXPECT_EQ(g.exec_start_ns, w.exec_start_ns);
    EXPECT_EQ(g.enclave_ns, w.enclave_ns);
    EXPECT_EQ(g.compute_ns, w.compute_ns);
    EXPECT_EQ(g.hotcalls, w.hotcalls);
  }
}

// ---- batcher policy ---------------------------------------------------------

TEST(Batcher, ClosesByFillAtExactlyMaxBatch) {
  serve::batch_policy policy{4, 1e9};
  const std::vector<double> arrivals{0, 1, 2, 3, 4, 5, 6, 7, 8};
  const serve::batch_plan plan = serve::plan_batches(arrivals, policy);
  ASSERT_EQ(plan.batches.size(), 3u);
  EXPECT_EQ(plan.batches[0].members, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_TRUE(plan.batches[0].closed_by_fill);
  EXPECT_DOUBLE_EQ(plan.batches[0].close_ns, 3.0);  // the 4th arrival closes it
  EXPECT_TRUE(plan.batches[1].closed_by_fill);
  // Tail: 1 request, end of stream — drains at its own arrival.
  EXPECT_EQ(plan.batches[2].members, (std::vector<std::size_t>{8}));
  EXPECT_TRUE(plan.batches[2].closed_by_drain);
  EXPECT_DOUBLE_EQ(plan.batches[2].close_ns, 8.0);
}

TEST(Batcher, MaxDelayBoundaryIsInclusive) {
  serve::batch_policy policy{8, 100.0};
  // 100 is exactly open+delay (joins); 101 is past it (new batch).
  const std::vector<double> arrivals{0, 50, 100, 101, 400};
  const serve::batch_plan plan = serve::plan_batches(arrivals, policy);
  ASSERT_EQ(plan.batches.size(), 3u);
  EXPECT_EQ(plan.batches[0].members, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_FALSE(plan.batches[0].closed_by_fill);
  EXPECT_FALSE(plan.batches[0].closed_by_drain);
  EXPECT_DOUBLE_EQ(plan.batches[0].close_ns, 100.0);  // deadline: stream continues
  EXPECT_EQ(plan.batches[1].members, (std::vector<std::size_t>{3}));
  EXPECT_DOUBLE_EQ(plan.batches[1].close_ns, 201.0);  // 101 + 100, 400 proves continuation
  EXPECT_EQ(plan.batches[2].members, (std::vector<std::size_t>{4}));
  EXPECT_TRUE(plan.batches[2].closed_by_drain);
}

TEST(Batcher, DrainOnShutdownNeverWaitsOutTheDelay) {
  serve::batch_policy policy{32, 1e9};  // a huge window that must NOT be served out
  const std::vector<double> arrivals{10, 20, 30};
  const serve::batch_plan plan = serve::plan_batches(arrivals, policy);
  ASSERT_EQ(plan.batches.size(), 1u);
  EXPECT_TRUE(plan.batches[0].closed_by_drain);
  EXPECT_DOUBLE_EQ(plan.batches[0].close_ns, 30.0);  // last arrival, not 10 + 1e9
}

TEST(Batcher, FifoFairnessAndCoverageProperty) {
  // Random arrival processes: every request is served exactly once, in
  // arrival order (ties by index), under the policy's size/window bounds.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const std::int64_t n = 97;
    const std::vector<double> arrivals =
        serve::make_poisson_arrivals(n, /*mean_gap_ns=*/5e5, seed);
    serve::batch_policy policy{static_cast<std::int64_t>(1 + seed % 7), 1e6};
    const serve::batch_plan plan = serve::plan_batches(arrivals, policy);

    std::vector<std::size_t> served;
    for (const serve::planned_batch& b : plan.batches) {
      ASSERT_GE(b.members.size(), 1u);
      ASSERT_LE(static_cast<std::int64_t>(b.members.size()), policy.max_batch);
      ASSERT_LE(b.close_ns, b.open_ns + policy.max_delay_ns);
      for (std::size_t m : b.members) {
        ASSERT_LE(arrivals[m], b.close_ns);  // nobody joins after dispatch
        served.push_back(m);
      }
      if (!b.closed_by_fill && !b.closed_by_drain) {
        ASSERT_DOUBLE_EQ(b.close_ns, b.open_ns + policy.max_delay_ns);
      }
    }
    ASSERT_EQ(static_cast<std::int64_t>(served.size()), n);
    // FIFO: dispatch order == (arrival, index) order, no overtaking.
    for (std::size_t i = 1; i < served.size(); ++i) {
      const bool ordered = arrivals[served[i - 1]] < arrivals[served[i]] ||
                           (arrivals[served[i - 1]] == arrivals[served[i]] &&
                            served[i - 1] < served[i]);
      ASSERT_TRUE(ordered) << "request " << served[i] << " overtook " << served[i - 1];
    }
  }
}

TEST(Batcher, RejectsNonFiniteSubmitStamps) {
  const std::vector<double> nan_arrival{0.0, std::nan("")};
  EXPECT_THROW(serve::plan_batches(nan_arrival, serve::batch_policy{4, 1e6}), error);
  serve::request_queue q;
  serve::classify_request r;
  r.image = tensor::ones(shape_t{3, 16, 16});
  r.submit_ns = std::numeric_limits<double>::infinity();
  EXPECT_THROW(q.push(r), error);
}

TEST(Batcher, EqualStampsTieBreakByIdWhenIdsAreGiven) {
  // Producer interleaving delivered ids out of order, all with one stamp.
  const std::vector<double> arrivals{0, 0, 0, 0};
  const std::vector<std::int64_t> ids{3, 1, 2, 0};
  serve::batch_policy policy{2, 1e6};

  // Id-aware planning (server::run's path): batches form in id order —
  // the same order canonicalize() would have produced.
  const serve::batch_plan by_id = serve::plan_batches(arrivals, ids, policy);
  ASSERT_EQ(by_id.batches.size(), 2u);
  EXPECT_EQ(by_id.batches[0].members, (std::vector<std::size_t>{3, 1}));  // ids 0, 1
  EXPECT_EQ(by_id.batches[1].members, (std::vector<std::size_t>{2, 0}));  // ids 2, 3

  // Without ids the planner falls back to vector position.
  const serve::batch_plan by_index = serve::plan_batches(arrivals, policy);
  ASSERT_EQ(by_index.batches.size(), 2u);
  EXPECT_EQ(by_index.batches[0].members, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(by_index.batches[1].members, (std::vector<std::size_t>{2, 3}));
}

TEST(Batcher, SingleRequestPolicyDegeneratesToSerial) {
  const std::vector<double> arrivals{0, 1, 2};
  const serve::batch_plan plan = serve::plan_batches(arrivals, serve::batch_policy{1, 1e6});
  ASSERT_EQ(plan.batches.size(), 3u);
  for (const serve::planned_batch& b : plan.batches) EXPECT_EQ(b.members.size(), 1u);
}

// ---- serving fixture --------------------------------------------------------

class ServeTest : public ::testing::Test {
protected:
  ServeTest() : model_{tiny_vit_config()} {}

  serve::serving_report serve_workload(const std::vector<serve::classify_request>& reqs,
                                       serve::batch_policy policy = {32, 2e6}) {
    tee::enclave enclave;
    serve::model_backend backend{model_};
    serve::server_config cfg;
    cfg.policy = policy;
    serve::server srv{backend, enclave, cfg};
    return srv.run(reqs);
  }

  models::vit_model model_;
};

TEST_F(ServeTest, BatchedLogitsBitIdenticalToSerialPerRequestLoop) {
  const std::int64_t n = 37;  // 32 + ragged tail batch of 5
  const std::vector<serve::classify_request> reqs =
      make_requests(n, std::vector<double>(static_cast<std::size_t>(n), 0.0));
  const serve::serving_report report = serve_workload(reqs);
  ASSERT_EQ(report.results.size(), static_cast<std::size_t>(n));
  ASSERT_EQ(report.batches.size(), 2u);

  // The serial per-request deployment: one batch-1 forward + one
  // ecall-style shield per request.
  tee::enclave serial_enclave;
  for (std::int64_t i = 0; i < n; ++i) {
    shape_t batched{1, 3, 16, 16};
    models::forward_pass fp =
        model_.forward(reqs[static_cast<std::size_t>(i)].image.reshape(batched),
                       ad::norm_mode::eval);
    shield::pelta_shield_tags(fp.graph, model_.shield_frontier_tags(), &serial_enclave,
                              "serial/");
    const tensor& logits = fp.graph.value(fp.logits);
    const tensor row = logits.reshape(shape_t{logits.numel()});
    const serve::classify_result& res = report.results[static_cast<std::size_t>(i)];
    EXPECT_TRUE(bits_equal(res.logits, row)) << "logits diverged for request " << i;
    EXPECT_EQ(res.predicted, static_cast<std::int64_t>(ops::argmax(logits)));
    EXPECT_EQ(res.request_id, i);
  }
}

TEST_F(ServeTest, PooledAndForcedSerialSchedulesAgreeBitwise) {
  const std::int64_t n = 24;
  const std::vector<double> arrivals = serve::make_poisson_arrivals(n, 1e5, 3);
  const std::vector<serve::classify_request> reqs = make_requests(n, arrivals);

  const serve::serving_report pooled = serve_workload(reqs, {8, 5e5});
  serve::serving_report serial;
  {
    serial_guard guard;
    serial = serve_workload(reqs, {8, 5e5});
  }

  ASSERT_EQ(pooled.results.size(), serial.results.size());
  ASSERT_EQ(pooled.batches.size(), serial.batches.size());
  EXPECT_EQ(pooled.hotcalls, serial.hotcalls);
  EXPECT_EQ(pooled.enclave_ns, serial.enclave_ns);  // exact: same counts, same bytes
  for (std::size_t i = 0; i < pooled.results.size(); ++i) {
    const serve::classify_result& p = pooled.results[i];
    const serve::classify_result& s = serial.results[i];
    ASSERT_TRUE(bits_equal(p.logits, s.logits)) << "request " << i;
    EXPECT_EQ(p.predicted, s.predicted);
    EXPECT_EQ(p.batch_index, s.batch_index);
    EXPECT_EQ(p.latency.queue_ns, s.latency.queue_ns);
    EXPECT_EQ(p.latency.batch_ns, s.latency.batch_ns);
    EXPECT_EQ(p.latency.enclave_ns, s.latency.enclave_ns);
    EXPECT_EQ(p.latency.compute_ns, s.latency.compute_ns);
  }
}

TEST_F(ServeTest, LatencyBreakdownSumsToEndToEnd) {
  const std::int64_t n = 41;
  const std::vector<double> arrivals = serve::make_poisson_arrivals(n, 3e5, 9);
  const serve::serving_report report =
      serve_workload(make_requests(n, arrivals), {8, 1e6});
  ASSERT_EQ(report.results.size(), static_cast<std::size_t>(n));
  for (const serve::classify_result& r : report.results) {
    const double end_to_end = r.finish_ns - r.submit_ns;
    EXPECT_NEAR(r.latency.total_ns(), end_to_end, 1e-3)
        << "request " << r.request_id << " breakdown does not sum";
    EXPECT_GE(r.latency.queue_ns, 0.0);
    EXPECT_GE(r.latency.batch_ns, 0.0);
    EXPECT_GT(r.latency.enclave_ns, 0.0);  // every batch crosses the boundary
    EXPECT_GT(r.latency.compute_ns, 0.0);
  }
  // Batches execute as a single pipeline in dispatch order.
  for (std::size_t b = 1; b < report.batches.size(); ++b)
    EXPECT_GE(report.batches[b].exec_start_ns,
              report.batches[b - 1].exec_start_ns + report.batches[b - 1].enclave_ns +
                  report.batches[b - 1].compute_ns - 1e-6);
}

TEST_F(ServeTest, TeeCostsChargedPerBatchNotPerRequest) {
  const std::int64_t n = 32;
  const std::vector<serve::classify_request> reqs =
      make_requests(n, std::vector<double>(static_cast<std::size_t>(n), 0.0));

  tee::enclave enclave;
  serve::model_backend backend{model_};
  serve::server srv{backend, enclave, serve::server_config{{32, 2e6}, 2e5, 1e6, nullptr, 1}};
  const serve::serving_report batched = srv.run(reqs);
  ASSERT_EQ(batched.batches.size(), 1u);
  EXPECT_EQ(srv.session().accumulated().batches, 1);
  // Every masked tensor leaves through exactly one switchless hot call.
  EXPECT_EQ(batched.hotcalls, srv.session().accumulated().stores);
  EXPECT_GT(batched.hotcalls, 0);

  // The ecall-style per-request loop pays a world-switch pair per store.
  tee::enclave serial_enclave;
  for (const serve::classify_request& r : reqs) {
    shape_t batched_shape{1, 3, 16, 16};
    models::forward_pass fp =
        model_.forward(r.image.reshape(batched_shape), ad::norm_mode::eval);
    shield::pelta_shield_tags(fp.graph, model_.shield_frontier_tags(), &serial_enclave,
                              "serial/");
  }
  const double serial_ns = serial_enclave.statistics().simulated_ns;
  EXPECT_GT(serial_ns, 3.0 * batched.enclave_ns)
      << "batched session should amortize TEE costs by far more than 3x";
  EXPECT_EQ(serial_enclave.statistics().world_switches,
            2 * serial_enclave.statistics().stores);
}

TEST_F(ServeTest, ChainedServerMatchesPerRequestChainAndForward) {
  const defenses::preprocessor_chain chain = defenses::make_chain("noise");
  const std::int64_t n = 10;
  const std::vector<serve::classify_request> reqs =
      make_requests(n, std::vector<double>(static_cast<std::size_t>(n), 0.0));

  tee::enclave enclave;
  serve::model_backend backend{model_};
  serve::server_config cfg;
  cfg.policy = {16, 1e6};
  cfg.chain = &chain;
  cfg.chain_seed = 77;
  serve::server srv{backend, enclave, cfg};
  const serve::serving_report report = srv.run(reqs);

  // Serial reference: chain per request under the fork(request id) stream,
  // then a batch-1 forward — the server's chained gather must match it bitwise.
  const rng root{77};
  for (std::int64_t i = 0; i < n; ++i) {
    rng gen = root.fork(static_cast<std::uint64_t>(reqs[static_cast<std::size_t>(i)].id));
    const tensor pre = chain.apply(reqs[static_cast<std::size_t>(i)].image, gen);
    models::forward_pass fp =
        model_.forward(pre.reshape(shape_t{1, 3, 16, 16}), ad::norm_mode::eval);
    const tensor& logits = fp.graph.value(fp.logits);
    EXPECT_TRUE(bits_equal(report.results[static_cast<std::size_t>(i)].logits,
                           logits.reshape(shape_t{logits.numel()})))
        << "chained request " << i;
  }
}

TEST_F(ServeTest, CoreClassifyBatchMatchesClassify) {
  defended_model defended{std::make_unique<models::vit_model>(tiny_vit_config())};
  rng gen{5};
  const tensor images = tensor::rand_uniform(gen, {9, 3, 16, 16});
  const tensor batched = defended.classify_batch(images);
  ASSERT_EQ(batched.numel(), 9);
  for (std::int64_t i = 0; i < 9; ++i) {
    tensor image{shape_t{3, 16, 16}};
    std::copy(images.data().begin() + i * 3 * 16 * 16,
              images.data().begin() + (i + 1) * 3 * 16 * 16, image.data().begin());
    EXPECT_EQ(static_cast<std::int64_t>(batched[i]), defended.classify(image)) << "sample " << i;
  }
}

TEST_F(ServeTest, QueueAcceptsManyProducersAndDrainsDeterministically) {
  const std::int64_t producers = 4, per_producer = 8;
  const std::int64_t n = producers * per_producer;
  const std::vector<double> arrivals = serve::make_poisson_arrivals(n, 1e5, 17);
  const std::vector<serve::classify_request> reqs = make_requests(n, arrivals);

  tee::enclave enclave;
  serve::model_backend backend{model_};
  serve::server_config cfg;
  cfg.policy = {8, 1e6};
  serve::server srv{backend, enclave, cfg};

  // Producers push interleaved; the drain canonicalizes by (submit, id).
  std::vector<std::thread> threads;
  for (std::int64_t p = 0; p < producers; ++p)
    threads.emplace_back([&, p] {
      for (std::int64_t i = 0; i < per_producer; ++i)
        srv.queue().push(reqs[static_cast<std::size_t>(i * producers + p)]);
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(srv.queue().pending(), n);
  const serve::serving_report live = srv.drain();
  EXPECT_EQ(srv.queue().pending(), 0);
  ASSERT_EQ(live.results.size(), static_cast<std::size_t>(n));

  // Same requests through the deterministic path, same canonical order.
  tee::enclave enclave2;
  serve::model_backend backend2{model_};
  serve::server srv2{backend2, enclave2, cfg};
  const serve::serving_report planned = srv2.run(serve::canonicalize(reqs));

  std::set<std::int64_t> seen;
  for (std::size_t i = 0; i < live.results.size(); ++i) {
    seen.insert(live.results[i].request_id);
    ASSERT_TRUE(bits_equal(live.results[i].logits, planned.results[i].logits));
    EXPECT_EQ(live.results[i].request_id, planned.results[i].request_id);
    EXPECT_EQ(live.results[i].batch_index, planned.results[i].batch_index);
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), n);  // nothing lost, nothing duplicated

  srv.queue().close();
  EXPECT_FALSE(srv.queue().push(reqs.front()));  // graceful rejection, not an abort
  EXPECT_EQ(srv.queue().rejected(), 1);
}

TEST(RequestQueue, WaitDrainWakesOnPushAndOnClose) {
  serve::request_queue q;
  std::vector<std::size_t> sizes;
  std::thread consumer([&] {
    sizes.push_back(q.wait_drain().size());  // woken by the push
    sizes.push_back(q.wait_drain().size());  // woken by close(), empty
  });

  serve::classify_request r;
  r.id = 1;
  r.image = tensor::ones(shape_t{3, 16, 16});
  q.push(r);
  // Let the consumer reach its second (blocking) wait before closing, so
  // the wake-on-close path is genuinely exercised on most runs; the test
  // stays correct under any interleaving.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  q.close();
  consumer.join();

  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 0u);
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.total_pushed(), 1);
}

// ---- pipelined executor -----------------------------------------------------

// A backend that fails on one chosen batch — the mid-pipeline throw case.
class flaky_backend final : public serve::shielded_backend {
public:
  flaky_backend(serve::shielded_backend& inner, std::int64_t fail_on_call)
      : inner_{&inner}, fail_on_call_{fail_on_call} {}

  std::int64_t num_classes() const override { return inner_->num_classes(); }
  tensor run_batch(const tensor& images, const std::vector<std::int64_t>& ids,
                   tee::secure_store& sink, batch_stats* stats) override {
    if (calls_++ == fail_on_call_) throw error{"injected backend failure"};
    return inner_->run_batch(images, ids, sink, stats);
  }
  std::int64_t calls() const { return calls_; }

private:
  serve::shielded_backend* inner_;
  std::int64_t fail_on_call_;
  std::int64_t calls_ = 0;
};

TEST_F(ServeTest, PipelinedReportBitIdenticalToSequentialExecutor) {
  const std::int64_t n = 53;  // several full batches + a ragged tail
  const std::vector<double> arrivals = serve::make_poisson_arrivals(n, 2e5, 21);
  const std::vector<serve::classify_request> reqs = make_requests(n, arrivals);
  serve::server_config cfg;
  cfg.policy = {8, 1e6};

  const auto run_with = [&](std::int64_t depth) {
    serve::server_config c = cfg;
    c.pipeline_depth = depth;
    tee::enclave enclave;
    serve::model_backend backend{model_};
    serve::server srv{backend, enclave, c};
    serve::serving_report report = srv.run(reqs);
    // Session totals are part of the contract too: the serialized enclave
    // stage must charge exactly the sequential chain's accounting.
    EXPECT_EQ(srv.session().accumulated().batches,
              static_cast<std::int64_t>(report.batches.size()));
    return report;
  };

  // The strictly sequential chain is the reference...
  const serve::serving_report sequential = run_with(1);
  // ...and the pipelined executor must reproduce it byte-for-byte at every
  // effective thread count (1 = all tasks inline at submission) and depth.
  for (const int width : {1, 2, 8}) {
    concurrency_guard guard{width};
    for (const std::int64_t depth : {0, 3, 8}) {
      const serve::serving_report pipelined = run_with(depth);
      expect_reports_identical(pipelined, sequential);
    }
  }
}

TEST_F(ServeTest, RunBatchesDuplicateStampsInCanonicalOrder) {
  // Four producers' pushes interleaved into one drained vector: ids out of
  // order, every submit stamp equal. Batching must follow the canonical
  // (submit_ns, id) order, not the producer interleaving.
  const std::int64_t n = 12;
  std::vector<serve::classify_request> reqs =
      make_requests(n, std::vector<double>(static_cast<std::size_t>(n), 5.0));
  std::vector<serve::classify_request> shuffled;
  for (std::int64_t p = 0; p < 4; ++p)  // column-major interleaving: 0,4,8,1,5,9,...
    for (std::int64_t i = p; i < n; i += 4)
      shuffled.push_back(reqs[static_cast<std::size_t>(i)]);

  const serve::serving_report interleaved = serve_workload(shuffled, {4, 1e6});
  const serve::serving_report canonical =
      serve_workload(serve::canonicalize(shuffled), {4, 1e6});

  // Match results by request id: same batch attribution, same bits.
  ASSERT_EQ(interleaved.batches.size(), canonical.batches.size());
  for (std::size_t b = 0; b < canonical.batches.size(); ++b)
    EXPECT_EQ(interleaved.batches[b].request_ids, canonical.batches[b].request_ids)
        << "batch " << b << " composition depends on producer interleaving";
  for (const serve::classify_result& got : interleaved.results) {
    const auto want = std::find_if(
        canonical.results.begin(), canonical.results.end(),
        [&](const serve::classify_result& r) { return r.request_id == got.request_id; });
    ASSERT_NE(want, canonical.results.end());
    EXPECT_EQ(got.batch_index, want->batch_index);
    EXPECT_EQ(got.finish_ns, want->finish_ns);
    ASSERT_TRUE(bits_equal(got.logits, want->logits));
  }
}

TEST_F(ServeTest, MidPipelineBackendThrowKeepsSessionAndQueueConsistent) {
  const std::int64_t n = 40;  // 5 batches of 8; the 3rd one throws
  const std::vector<serve::classify_request> reqs =
      make_requests(n, std::vector<double>(static_cast<std::size_t>(n), 0.0));
  serve::server_config cfg;
  cfg.policy = {8, 1e6};

  const auto run_flaky = [&](std::int64_t depth) {
    serve::server_config c = cfg;
    c.pipeline_depth = depth;
    tee::enclave enclave;
    serve::model_backend inner{model_};
    flaky_backend backend{inner, /*fail_on_call=*/2};
    serve::server srv{backend, enclave, c};
    EXPECT_THROW(srv.run(reqs), error);
    // The bracket closed on the failing batch: the session is not wedged
    // and its totals match the sequential chain's (2 clean + 1 aborted).
    const serve::enclave_session::totals after_throw = srv.session().accumulated();
    EXPECT_EQ(backend.calls(), 3);

    // The server stays serviceable: the queue still accepts and drains,
    // and the next run's results are bit-identical to a fresh server's.
    for (std::int64_t i = 0; i < 10; ++i)
      EXPECT_TRUE(srv.queue().push(reqs[static_cast<std::size_t>(i)]));
    const serve::serving_report drained = srv.drain();
    EXPECT_EQ(drained.requests, 10);
    EXPECT_EQ(srv.queue().pending(), 0);
    return std::pair{after_throw, drained};
  };

  const auto [seq_totals, seq_drained] = run_flaky(1);
  for (const std::int64_t depth : {3, 8}) {
    const auto [pipe_totals, pipe_drained] = run_flaky(depth);
    EXPECT_EQ(pipe_totals.batches, seq_totals.batches);
    EXPECT_EQ(pipe_totals.hotcalls, seq_totals.hotcalls);
    EXPECT_EQ(pipe_totals.stores, seq_totals.stores);
    EXPECT_EQ(pipe_totals.bytes_in, seq_totals.bytes_in);
    EXPECT_EQ(pipe_totals.enclave_ns, seq_totals.enclave_ns);
    expect_reports_identical(pipe_drained, seq_drained);
  }
}

TEST(RequestQueue, PushAfterCloseIsCountedRejection) {
  serve::request_queue q;
  serve::classify_request r;
  r.id = 9;
  r.image = tensor::ones(shape_t{3, 16, 16});
  EXPECT_TRUE(q.push(r));
  q.close();
  EXPECT_FALSE(q.push(r));
  EXPECT_FALSE(q.push(r));
  EXPECT_EQ(q.rejected(), 2);
  EXPECT_EQ(q.total_pushed(), 1);   // rejected pushes never count as accepted
  EXPECT_EQ(q.drain().size(), 1u);  // pending work survives the close
}

TEST(RequestQueue, ProducersRacingCloseGetRejectionsNotAborts) {
  // Every push lands either in the queue or in the rejected counter —
  // never an abort, never a lost request — no matter where close() cuts in.
  constexpr std::int64_t producers = 4, per_producer = 64;
  serve::request_queue q;
  const tensor image = tensor::ones(shape_t{3, 16, 16});
  std::atomic<std::int64_t> accepted{0};
  std::vector<std::thread> fleet;
  for (std::int64_t p = 0; p < producers; ++p)
    fleet.emplace_back([&, p] {
      for (std::int64_t i = 0; i < per_producer; ++i) {
        serve::classify_request r;
        r.id = p * per_producer + i;
        r.image = image;
        if (q.push(std::move(r))) accepted.fetch_add(1);
      }
    });
  std::this_thread::sleep_for(std::chrono::microseconds(200));
  q.close();
  for (std::thread& t : fleet) t.join();

  EXPECT_EQ(q.total_pushed(), accepted.load());
  EXPECT_EQ(q.rejected(), producers * per_producer - accepted.load());
  EXPECT_EQ(static_cast<std::int64_t>(q.drain().size()), accepted.load());
}

// ---- batched entry points of the lower layers -------------------------------

TEST(ServeBatchedEntries, EnsembleBackendMatchesPerRequestSelection) {
  models::vit_model first{tiny_vit_config(31)};
  models::vit_model second{tiny_vit_config(77)};
  models::random_selection_ensemble ensemble{first, second};
  const std::uint64_t seed = 123;

  const std::int64_t n = 21;
  const std::vector<serve::classify_request> reqs =
      make_requests(n, std::vector<double>(static_cast<std::size_t>(n), 0.0));

  tee::enclave enclave;
  serve::ensemble_backend backend{ensemble, seed};
  serve::server_config cfg;
  cfg.policy = {32, 1e6};
  serve::server srv{backend, enclave, cfg};
  const serve::serving_report report = srv.run(reqs);

  const rng root{seed};
  for (std::int64_t i = 0; i < n; ++i) {
    rng gen = root.fork(static_cast<std::uint64_t>(reqs[static_cast<std::size_t>(i)].id));
    const models::model& member = gen.bernoulli(0.5) ? first : second;
    EXPECT_EQ(report.results[static_cast<std::size_t>(i)].predicted,
              models::predict_one(member, reqs[static_cast<std::size_t>(i)].image))
        << "request " << i;
  }
}

TEST(ServeBatchedEntries, EnsembleClassifyBatchMatchesSerialLoop) {
  models::vit_model first{tiny_vit_config(31)};
  models::vit_model second{tiny_vit_config(77)};
  models::random_selection_ensemble ensemble{first, second};

  rng gen{2};
  const tensor images = tensor::rand_uniform(gen, {15, 3, 16, 16});
  const tensor batched = ensemble.classify_batch(images, 55);

  const rng root{55};
  for (std::int64_t i = 0; i < 15; ++i) {
    tensor image{shape_t{3, 16, 16}};
    std::copy(images.data().begin() + i * 3 * 16 * 16,
              images.data().begin() + (i + 1) * 3 * 16 * 16, image.data().begin());
    rng fork = root.fork(static_cast<std::uint64_t>(i));
    EXPECT_EQ(static_cast<std::int64_t>(batched[i]), ensemble.classify(image, fork));
  }
}

TEST(ServeBatchedEntries, DefendedPredictBatchMatchesPerSamplePath) {
  models::vit_model model{tiny_vit_config()};
  const defenses::preprocessor_chain chain = defenses::make_chain("noise+quantize");
  const defenses::defended_model defended{model, chain, /*votes=*/3};

  rng gen{4};
  const tensor images = tensor::rand_uniform(gen, {11, 3, 16, 16});
  const std::uint64_t seed = 99;
  const tensor batched = defended.predict_batch(images, seed);

  const rng root{seed};
  for (std::int64_t i = 0; i < 11; ++i) {
    tensor image{shape_t{3, 16, 16}};
    std::copy(images.data().begin() + i * 3 * 16 * 16,
              images.data().begin() + (i + 1) * 3 * 16 * 16, image.data().begin());
    rng fork = root.fork(static_cast<std::uint64_t>(i));
    EXPECT_EQ(static_cast<std::int64_t>(batched[i]), defended.predict_one(image, fork))
        << "sample " << i;
  }
}

TEST(ServeBatchedEntries, ApplyChainBatchForksPerStreamId) {
  const defenses::preprocessor_chain chain = defenses::make_chain("noise");
  rng gen{6};
  const tensor images = tensor::rand_uniform(gen, {5, 3, 16, 16});
  const std::vector<std::int64_t> ids{40, 41, 42, 43, 44};
  const tensor batch = defenses::apply_chain_batch(chain, images, 11, ids);

  // Each row must match a lone application under the same forked stream —
  // randomness depends on the request id, never on batch composition.
  const rng root{11};
  for (std::int64_t i = 0; i < 5; ++i) {
    tensor image{shape_t{3, 16, 16}};
    std::copy(images.data().begin() + i * 3 * 16 * 16,
              images.data().begin() + (i + 1) * 3 * 16 * 16, image.data().begin());
    rng fork = root.fork(static_cast<std::uint64_t>(ids[static_cast<std::size_t>(i)]));
    const tensor lone = chain.apply(image, fork);
    tensor row{shape_t{3, 16, 16}};
    std::copy(batch.data().begin() + i * 3 * 16 * 16,
              batch.data().begin() + (i + 1) * 3 * 16 * 16, row.data().begin());
    EXPECT_TRUE(bits_equal(lone, row)) << "stream " << ids[static_cast<std::size_t>(i)];
  }
}

TEST(ServeBatchedEntries, PredictLogitsRowsMatchSingleSampleForwards) {
  models::vit_model model{tiny_vit_config()};
  rng gen{8};
  const tensor images = tensor::rand_uniform(gen, {7, 3, 16, 16});
  const tensor logits = models::predict_logits(model, images);
  ASSERT_EQ(logits.size(0), 7);
  ASSERT_EQ(logits.size(1), model.num_classes());
  for (std::int64_t i = 0; i < 7; ++i) {
    tensor image{shape_t{1, 3, 16, 16}};
    std::copy(images.data().begin() + i * 3 * 16 * 16,
              images.data().begin() + (i + 1) * 3 * 16 * 16, image.data().begin());
    models::forward_pass fp = model.forward(image, ad::norm_mode::eval);
    const tensor& one = fp.graph.value(fp.logits);
    for (std::int64_t c = 0; c < model.num_classes(); ++c)
      EXPECT_EQ(logits[i * model.num_classes() + c], one[c]) << "row " << i;
  }
}

}  // namespace
}  // namespace pelta
