// Determinism suite: the pooled schedule must be bit-identical to the
// forced-serial schedule — the same guarantee as running the whole process
// under PELTA_THREADS=1 vs PELTA_THREADS=8.
//
// Covered: a 6-client 2-round federation (global parameters, traffic
// accounting), a buffered-async run over a heterogeneous fleet (straggler +
// dropout; schedule, staleness stamps and aggregates), and a PGD
// evaluate_attack (robust-accuracy counters). The
// static initializer pins PELTA_THREADS=8 (without overriding an explicit
// environment setting, e.g. the CI PELTA_THREADS=2 leg) so the pooled runs
// really cross threads even on single-core hosts.
#include <gtest/gtest.h>

#include <cstdlib>

#include "attacks/runner.h"
#include "fl/federation.h"
#include "models/trainer.h"
#include "models/vit.h"
#include "tensor/parallel.h"

namespace pelta::fl {
namespace {

const bool k_threads_pinned = [] {
  setenv("PELTA_THREADS", "8", /*overwrite=*/0);
  return true;
}();

data::dataset small_dataset() {
  data::dataset_config c = data::cifar10_like();
  c.classes = 4;
  c.train_per_class = 30;
  c.test_per_class = 10;
  return data::dataset{c};
}

model_factory tiny_vit_factory() {
  return [] {
    models::vit_config c;
    c.name = "det-vit";
    c.image_size = 16;
    c.patch_size = 4;
    c.dim = 16;
    c.heads = 2;
    c.blocks = 1;
    c.mlp_hidden = 32;
    c.classes = 4;
    c.seed = 31;  // identical initial params on server and clients
    return std::make_unique<models::vit_model>(c);
  };
}

struct federation_outcome {
  byte_buffer global;
  network_stats traffic;
  float accuracy = 0.0f;
};

federation_outcome run_federation(bool force_serial) {
  const data::dataset ds = small_dataset();
  federation_config cfg;
  cfg.clients = 6;
  cfg.compromised = 1;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 8;
  federation fed{cfg, tiny_vit_factory(), ds};
  {
    std::unique_ptr<serial_guard> guard;
    if (force_serial) guard = std::make_unique<serial_guard>();
    fed.run_rounds(2);
  }
  federation_outcome out;
  out.global = fed.server().broadcast();
  out.traffic = fed.traffic();
  out.accuracy = fed.global_test_accuracy();
  return out;
}

TEST(Determinism, FederationRoundsBitIdenticalAcrossThreadCounts) {
  ASSERT_TRUE(k_threads_pinned);
  const federation_outcome serial = run_federation(/*force_serial=*/true);
  const federation_outcome pooled = run_federation(/*force_serial=*/false);

  // Global parameters byte-for-byte: every float of every tensor matches.
  ASSERT_EQ(serial.global.size(), pooled.global.size());
  EXPECT_TRUE(serial.global == pooled.global) << "global parameters diverged";

  // Network accounting replays in participant order post-join, so even the
  // double-accumulated simulated latency is bit-identical.
  EXPECT_EQ(serial.traffic.messages, pooled.traffic.messages);
  EXPECT_EQ(serial.traffic.bytes, pooled.traffic.bytes);
  EXPECT_EQ(serial.traffic.simulated_ns, pooled.traffic.simulated_ns);

  EXPECT_EQ(serial.accuracy, pooled.accuracy);
}

struct async_outcome {
  byte_buffer global;
  network_stats traffic;
  async_report report;
  float accuracy = 0.0f;
};

async_outcome run_async_federation(bool force_serial) {
  const data::dataset ds = small_dataset();
  federation_config cfg;
  cfg.clients = 6;
  cfg.compromised = 1;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 8;
  cfg.async.buffer_size = 2;
  cfg.async.max_staleness = 4;
  cfg.async.heterogeneity.compute_spread = 2.0;
  cfg.async.heterogeneity.stragglers = 1;
  cfg.async.heterogeneity.straggler_slowdown = 4.0;
  cfg.async.heterogeneity.dropout_rate = 0.2;
  federation fed{cfg, tiny_vit_factory(), ds};
  async_outcome out;
  {
    std::unique_ptr<serial_guard> guard;
    if (force_serial) guard = std::make_unique<serial_guard>();
    out.report = fed.run_async(4);
  }
  out.global = fed.server().broadcast();
  out.traffic = fed.traffic();
  out.accuracy = fed.global_test_accuracy();
  return out;
}

TEST(Determinism, AsyncFederationBitIdenticalAcrossThreadCounts) {
  ASSERT_TRUE(k_threads_pinned);
  const async_outcome serial = run_async_federation(/*force_serial=*/true);
  const async_outcome pooled = run_async_federation(/*force_serial=*/false);

  // The async schedule is planned on the simulated clock (never wall-clock),
  // so buffer order, staleness stamps and the aggregated parameters are all
  // bit-identical regardless of how the pool interleaves the training.
  ASSERT_EQ(serial.global.size(), pooled.global.size());
  EXPECT_TRUE(serial.global == pooled.global) << "async global parameters diverged";

  EXPECT_EQ(serial.traffic.messages, pooled.traffic.messages);
  EXPECT_EQ(serial.traffic.bytes, pooled.traffic.bytes);
  EXPECT_EQ(serial.traffic.simulated_ns, pooled.traffic.simulated_ns);

  EXPECT_EQ(serial.report.aggregations, pooled.report.aggregations);
  EXPECT_EQ(serial.report.updates_applied, pooled.report.updates_applied);
  EXPECT_EQ(serial.report.updates_dropped, pooled.report.updates_dropped);
  EXPECT_EQ(serial.report.updates_stale, pooled.report.updates_stale);
  EXPECT_EQ(serial.report.trainings, pooled.report.trainings);
  EXPECT_EQ(serial.report.simulated_ns, pooled.report.simulated_ns);
  EXPECT_EQ(serial.report.mean_staleness, pooled.report.mean_staleness);

  EXPECT_EQ(serial.accuracy, pooled.accuracy);
}

TEST(Determinism, PgdEvaluateAttackBitIdenticalAcrossThreadCounts) {
  const data::dataset ds = small_dataset();
  auto m = tiny_vit_factory()();
  models::train_config tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  tc.lr = 4e-3f;
  tc.seed = 5;
  {
    serial_guard guard;  // one reference model, trained deterministically
    models::train_model(*m, ds, tc);
  }

  attacks::suite_params params = attacks::table2_cifar_params();
  params.pgd_steps = 8;
  const auto factory = attacks::clear_oracle_factory(*m);

  attacks::robust_eval serial_eval;
  {
    serial_guard guard;
    serial_eval = attacks::evaluate_attack(*m, ds, attacks::attack_kind::pgd, params, factory,
                                           /*max_samples=*/12, /*seed=*/99);
  }
  const attacks::robust_eval pooled_eval = attacks::evaluate_attack(
      *m, ds, attacks::attack_kind::pgd, params, factory, /*max_samples=*/12, /*seed=*/99);

  EXPECT_EQ(serial_eval.samples, pooled_eval.samples);
  EXPECT_EQ(serial_eval.attack_successes, pooled_eval.attack_successes);
  EXPECT_EQ(serial_eval.robust_accuracy, pooled_eval.robust_accuracy);
  EXPECT_EQ(serial_eval.mean_queries, pooled_eval.mean_queries);
}

}  // namespace
}  // namespace pelta::fl
