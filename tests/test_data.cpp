// Synthetic dataset substrate: determinism, structure, calibration.
#include <gtest/gtest.h>

#include <set>

#include "data/dataset.h"
#include "tensor/ops.h"

namespace pelta::data {
namespace {

dataset_config tiny_config() {
  dataset_config c = cifar10_like();
  c.classes = 4;
  c.train_per_class = 10;
  c.test_per_class = 5;
  return c;
}

TEST(DatasetConfig, Presets) {
  EXPECT_EQ(cifar10_like().classes, 10);
  EXPECT_EQ(cifar10_like().image_size, 16);
  EXPECT_GT(cifar100_like().classes, cifar10_like().classes);
  EXPECT_LT(cifar100_like().template_amp, cifar10_like().template_amp);
  EXPECT_EQ(imagenet_like().image_size, 32);
}

TEST(Dataset, ShapesAndLabels) {
  const dataset ds{tiny_config()};
  EXPECT_EQ(ds.train_images().shape(), (shape_t{40, 3, 16, 16}));
  EXPECT_EQ(ds.train_labels().shape(), (shape_t{40}));
  EXPECT_EQ(ds.test_size(), 20);
  for (std::int64_t i = 0; i < ds.test_size(); ++i) {
    EXPECT_GE(ds.test_label(i), 0);
    EXPECT_LT(ds.test_label(i), 4);
  }
}

TEST(Dataset, PixelsInUnitRange) {
  const dataset ds{tiny_config()};
  for (float v : ds.train_images().data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Dataset, DeterministicAcrossConstructions) {
  const dataset a{tiny_config()};
  const dataset b{tiny_config()};
  for (std::int64_t i = 0; i < 100; ++i)
    EXPECT_FLOAT_EQ(a.train_images()[i], b.train_images()[i]);
}

TEST(Dataset, SeedChangesData) {
  dataset_config c1 = tiny_config();
  dataset_config c2 = tiny_config();
  c2.seed = c1.seed + 1;
  const dataset a{c1}, b{c2};
  bool any_diff = false;
  for (std::int64_t i = 0; i < 200 && !any_diff; ++i)
    any_diff = a.train_images()[i] != b.train_images()[i];
  EXPECT_TRUE(any_diff);
}

TEST(Dataset, TemplatesAreSeparated) {
  const dataset ds{tiny_config()};
  const auto& cfg = ds.config();
  for (std::int64_t a = 0; a < cfg.classes; ++a)
    for (std::int64_t b = a + 1; b < cfg.classes; ++b) {
      const tensor diff = ops::sub(ds.template_of(a), ds.template_of(b));
      // Distinct smooth patterns: l∞ separation on the order of template_amp.
      EXPECT_GT(ops::norm_linf(diff), cfg.template_amp * 0.3f) << a << " vs " << b;
    }
}

TEST(Dataset, SamplesClusterAroundTemplate) {
  const dataset ds{tiny_config()};
  rng g{5};
  const tensor s = ds.sample_image(g, 2);
  const tensor diff = ops::sub(s, ds.template_of(2));
  // noise_std + brightness jitter bound (loose, 6 sigma)
  EXPECT_LT(ops::norm_linf(diff),
            6.0f * ds.config().noise_std + ds.config().brightness_jitter + 1e-3f);
}

TEST(Dataset, TestImageMatchesBatchRow) {
  const dataset ds{tiny_config()};
  const tensor img = ds.test_image(7);
  EXPECT_EQ(img.shape(), (shape_t{3, 16, 16}));
  auto all = ds.test_images().data();
  for (std::int64_t i = 0; i < img.numel(); ++i)
    EXPECT_FLOAT_EQ(img[i], all[7 * img.numel() + i]);
  EXPECT_THROW(ds.test_image(ds.test_size()), error);
}

TEST(Dataset, GatherTrainSelectsRows) {
  const dataset ds{tiny_config()};
  const batch b = ds.gather_train({0, 39, 5});
  EXPECT_EQ(b.images.shape(), (shape_t{3, 3, 16, 16}));
  EXPECT_FLOAT_EQ(b.labels[0], ds.train_labels()[0]);
  EXPECT_FLOAT_EQ(b.labels[1], ds.train_labels()[39]);
  EXPECT_THROW(ds.gather_train({99}), error);
}

TEST(BatchIterator, CoversEpochWithoutRepeats) {
  batch_iterator it{10, 3, rng{1}};
  EXPECT_EQ(it.batches_per_epoch(), 4);
  std::set<std::int64_t> seen;
  for (int b = 0; b < 4; ++b)
    for (std::int64_t i : it.next()) seen.insert(i);
  EXPECT_EQ(seen.size(), 10u);
}

TEST(BatchIterator, ReshufflesBetweenEpochs) {
  batch_iterator it{64, 64, rng{2}};
  const auto e1 = it.next();
  const auto e2 = it.next();
  EXPECT_NE(e1, e2);  // astronomically unlikely to coincide
}

TEST(Dataset, ClassBalance) {
  const dataset ds{tiny_config()};
  std::vector<int> counts(4, 0);
  for (std::int64_t i = 0; i < ds.train_size(); ++i)
    counts[static_cast<std::size_t>(ds.train_labels()[i])]++;
  for (int c : counts) EXPECT_EQ(c, 10);
}

}  // namespace
}  // namespace pelta::data
