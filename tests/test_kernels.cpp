// Kernel suite for the blocked GEMM micro-kernels and the scratch arena.
//
// The blocked kernels promise bit-identity with the classic i-k-j loop on
// every path (full register tiles, row tails, column tails, any row split a
// parallel chunking might produce) — each case here compares against a
// frozen copy of the pre-blocked reference kernel with memcmp, not a
// tolerance. The static initializer pins PELTA_THREADS=8 (without
// overriding an explicit environment setting) so the pooled runs really
// cross threads even on single-core hosts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "reference_kernels.h"
#include "tensor/conv.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"
#include "tensor/scratch.h"
#include "tensor/tensor.h"

namespace pelta {
namespace {

const bool k_threads_pinned = [] {
  setenv("PELTA_THREADS", "8", /*overwrite=*/0);
  return true;
}();

using ops::detail::finite_cache;
using ops::detail::gemm_accumulate;
using ops::detail::gemm_accumulate_bt;
using ops::detail::k_gemm_mr;
using ops::detail::k_gemm_nr;
using ops::reference::reference_gemm;  // THE frozen pre-PR baseline

// Operand with zeros sprinkled in (the skip path must see real zeros).
std::vector<float> random_operand(rng& gen, std::int64_t count, float zero_fraction) {
  std::vector<float> v(static_cast<std::size_t>(count));
  for (float& x : v)
    x = gen.bernoulli(zero_fraction) ? 0.0f : gen.uniform(-1.0f, 1.0f);
  return v;
}

bool bits_equal(const std::vector<float>& x, const std::vector<float>& y) {
  return x.size() == y.size() &&
         (x.empty() || std::memcmp(x.data(), y.data(), x.size() * sizeof(float)) == 0);
}

TEST(BlockedGemm, BitEqualsReferenceOnEdgeShapes) {
  rng gen{41};
  // Every combination straddling the register tile: empty, single, tile-1,
  // tile, tile+1 for both MR (rows) and NR (columns), plus non-multiples.
  const std::vector<std::int64_t> row_dims{0, 1, 3, 4, 5, 11};
  const std::vector<std::int64_t> k_dims{0, 1, 2, 7, 19};
  const std::vector<std::int64_t> col_dims{0,  1,  3,  static_cast<std::int64_t>(k_gemm_mr) - 1,
                                           4,  5,  15, static_cast<std::int64_t>(k_gemm_nr),
                                           17, 37};
  for (std::int64_t m : row_dims)
    for (std::int64_t k : k_dims)
      for (std::int64_t n : col_dims) {
        const std::vector<float> a = random_operand(gen, m * k, 0.25f);
        const std::vector<float> b = random_operand(gen, k * n, 0.1f);
        std::vector<float> base(static_cast<std::size_t>(m * n));
        for (float& x : base) x = gen.uniform(-0.5f, 0.5f);  // nonzero accumulation base
        std::vector<float> want = base, got = base;
        reference_gemm(a.data(), b.data(), want.data(), m, k, n);
        finite_cache cache;
        gemm_accumulate(a.data(), b.data(), got.data(), m, k, n, cache);
        ASSERT_TRUE(bits_equal(want, got)) << "m=" << m << " k=" << k << " n=" << n;
      }
}

TEST(BlockedGemm, RowSliceInvariance) {
  // Chunked invocation over arbitrary row splits must reproduce the whole-
  // matrix call bit for bit — the invariant parallel_for_range relies on.
  rng gen{43};
  const std::int64_t m = 37, k = 23, n = 41;
  const std::vector<float> a = random_operand(gen, m * k, 0.3f);
  const std::vector<float> b = random_operand(gen, k * n, 0.0f);
  std::vector<float> whole(static_cast<std::size_t>(m * n), 0.0f);
  {
    finite_cache cache;
    gemm_accumulate(a.data(), b.data(), whole.data(), m, k, n, cache);
  }
  for (const std::int64_t step : {1, 2, 3, 5, 8, 36}) {
    std::vector<float> sliced(static_cast<std::size_t>(m * n), 0.0f);
    finite_cache cache;
    for (std::int64_t lo = 0; lo < m; lo += step) {
      const std::int64_t len = std::min<std::int64_t>(step, m - lo);
      gemm_accumulate(a.data() + lo * k, b.data(), sliced.data() + lo * n, len, k, n, cache);
    }
    ASSERT_TRUE(bits_equal(whole, sliced)) << "step=" << step;
  }
}

TEST(BlockedGemm, TransposedBVariantBitEqualsMaterializedTranspose) {
  rng gen{47};
  for (std::int64_t m : {1, 3, 4, 5, 10})
    for (std::int64_t k : {1, 2, 9, 24})
      for (std::int64_t n : {1, 2, 3, 4, 5, 13, 16}) {
        const std::vector<float> a = random_operand(gen, m * k, 0.3f);
        const std::vector<float> bt = random_operand(gen, n * k, 0.1f);  // [n, k]
        std::vector<float> b(static_cast<std::size_t>(k * n));           // [k, n]
        for (std::int64_t j = 0; j < n; ++j)
          for (std::int64_t kk = 0; kk < k; ++kk)
            b[static_cast<std::size_t>(kk * n + j)] = bt[static_cast<std::size_t>(j * k + kk)];
        std::vector<float> want(static_cast<std::size_t>(m * n), 0.0f), got = want;
        reference_gemm(a.data(), b.data(), want.data(), m, k, n);
        finite_cache cache;
        gemm_accumulate_bt(a.data(), bt.data(), got.data(), m, k, n, cache);
        ASSERT_TRUE(bits_equal(want, got)) << "m=" << m << " k=" << k << " n=" << n;
      }
}

// Regression for the poisoned-update gate: a NaN/Inf B operand must surface
// through a zero A row — the zero-skip fast path is only legal when B is
// fully finite, and the gate is now decided once per call, not per element.
TEST(BlockedGemm, PoisonedBPropagatesThroughZeroARow) {
  const std::int64_t m = 3, k = 4, n = 8;
  std::vector<float> a(static_cast<std::size_t>(m * k), 0.0f);
  for (std::int64_t j = 0; j < k; ++j) a[static_cast<std::size_t>(0 * k + j)] = 1.0f;
  // Row 1 and 2 of A are all zeros. B: one NaN, one Inf.
  std::vector<float> b(static_cast<std::size_t>(k * n), 0.5f);
  b[static_cast<std::size_t>(1 * n + 2)] = std::numeric_limits<float>::quiet_NaN();
  b[static_cast<std::size_t>(2 * n + 5)] = std::numeric_limits<float>::infinity();

  std::vector<float> out(static_cast<std::size_t>(m * n), 0.0f);
  finite_cache cache;
  gemm_accumulate(a.data(), b.data(), out.data(), m, k, n, cache);
  // The nonzero row sees NaN (NaN term) and Inf (Inf term); the all-zero
  // rows see NaN in both poisoned columns, because 0 * NaN and 0 * Inf are
  // NaN — the zero-skip fast path must be disabled for this operand.
  EXPECT_TRUE(std::isnan(out[2]));
  EXPECT_TRUE(std::isinf(out[5]));
  for (std::int64_t i = 1; i < m; ++i) {
    EXPECT_TRUE(std::isnan(out[static_cast<std::size_t>(i * n + 2)])) << "row " << i;
    EXPECT_TRUE(std::isnan(out[static_cast<std::size_t>(i * n + 5)])) << "row " << i;
  }

  // Transposed-B variant: same contract.
  std::vector<float> bt(static_cast<std::size_t>(n * k), 0.5f);
  bt[static_cast<std::size_t>(2 * k + 1)] = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> out_bt(static_cast<std::size_t>(m * n), 0.0f);
  finite_cache cache_bt;
  gemm_accumulate_bt(a.data(), bt.data(), out_bt.data(), m, k, n, cache_bt);
  for (std::int64_t i = 0; i < m; ++i)
    EXPECT_TRUE(std::isnan(out_bt[static_cast<std::size_t>(i * n + 2)])) << "row " << i;

  // And the complement: with a fully finite B, zero A rows stay exactly at
  // the accumulation base.
  std::vector<float> b_fin(static_cast<std::size_t>(k * n), 0.5f);
  std::vector<float> out_fin(static_cast<std::size_t>(m * n), 0.0f);
  finite_cache cache_fin;
  gemm_accumulate(a.data(), b_fin.data(), out_fin.data(), m, k, n, cache_fin);
  for (std::int64_t j = 0; j < n; ++j) {
    EXPECT_EQ(out_fin[static_cast<std::size_t>(1 * n + j)], 0.0f);
    EXPECT_EQ(out_fin[static_cast<std::size_t>(2 * n + j)], 0.0f);
  }
}

TEST(BlockedGemm, MatmulBitIdenticalAcrossThreadWidths) {
  rng gen{53};
  const std::int64_t m = 130, k = 64, n = 50;  // m deliberately not a tile multiple
  tensor a = tensor::randn(gen, {m, k});
  tensor b = tensor::randn(gen, {k, n});
  tensor pooled = ops::matmul(a, b);
  tensor serial = [&] {
    serial_guard guard;
    return ops::matmul(a, b);
  }();
  tensor two_wide = [&] {
    concurrency_guard guard{2};
    return ops::matmul(a, b);
  }();
  ASSERT_EQ(0, std::memcmp(pooled.data().data(), serial.data().data(),
                           static_cast<std::size_t>(pooled.numel()) * sizeof(float)));
  ASSERT_EQ(0, std::memcmp(pooled.data().data(), two_wide.data().data(),
                           static_cast<std::size_t>(pooled.numel()) * sizeof(float)));
}

// Satellite: elementwise zip/unary now dispatch through the pool above a
// grain threshold. Values must be bit-identical at every thread width.
TEST(Elementwise, BitIdenticalAcrossThreadWidths) {
  rng gen{59};
  const std::int64_t count = (1 << 17) + 7;  // above the grain, odd tail
  tensor a = tensor::randn(gen, {count});
  tensor b = ops::add_scalar(ops::abs(tensor::randn(gen, {count})), 0.5f);

  const auto run_all = [&] {
    std::vector<tensor> r;
    r.push_back(ops::add(a, b));
    r.push_back(ops::sub(a, b));
    r.push_back(ops::mul(a, b));
    r.push_back(ops::div(a, b));
    r.push_back(ops::relu(a));
    r.push_back(ops::exp(a));
    r.push_back(ops::tanh(a));
    r.push_back(ops::sign(a));
    r.push_back(ops::add_scalar(a, 0.25f));
    r.push_back(ops::mul_scalar(a, -1.5f));
    return r;
  };
  const std::vector<tensor> pooled = run_all();
  serial_guard guard;
  const std::vector<tensor> serial = run_all();
  ASSERT_EQ(pooled.size(), serial.size());
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    ASSERT_TRUE(pooled[i].same_shape(serial[i]));
    ASSERT_EQ(0, std::memcmp(pooled[i].data().data(), serial[i].data().data(),
                             static_cast<std::size_t>(pooled[i].numel()) * sizeof(float)))
        << "op index " << i;
  }
}

// Direct-convolution reference accumulating in the same (ci, ky, kx) order
// as the im2col GEMM: values must match exactly (float ==, padding
// contributes exact zero terms).
tensor reference_conv2d(const tensor& input, const tensor& weight, const tensor& bias,
                        std::int64_t stride, std::int64_t pad) {
  const std::int64_t b = input.size(0), c = input.size(1), h = input.size(2), w = input.size(3);
  const std::int64_t oc = weight.size(0), kh = weight.size(2), kw = weight.size(3);
  const std::int64_t oh = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - kw) / stride + 1;
  tensor out{shape_t{b, oc, oh, ow}};
  for (std::int64_t n = 0; n < b; ++n)
    for (std::int64_t o = 0; o < oc; ++o)
      for (std::int64_t y = 0; y < oh; ++y)
        for (std::int64_t x = 0; x < ow; ++x) {
          float acc = bias.numel() == oc ? bias[o] : 0.0f;
          for (std::int64_t ci = 0; ci < c; ++ci)
            for (std::int64_t ky = 0; ky < kh; ++ky)
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t iy = y * stride - pad + ky;
                const std::int64_t ix = x * stride - pad + kx;
                const float v =
                    (iy < 0 || iy >= h || ix < 0 || ix >= w) ? 0.0f : input.at(n, ci, iy, ix);
                acc += weight.at(o, ci, ky, kx) * v;
              }
          out.at(n, o, y, x) = acc;
        }
  return out;
}

// Covers the fringe-only zero-fill in im2col: strides and paddings that
// clip every edge (including pad >= kernel, whose first/last taps are
// entirely out of bounds).
TEST(Im2col, FringeFillMatchesDirectConvolution) {
  rng gen{61};
  struct case_t {
    std::int64_t c, h, w, oc, kh, kw, stride, pad;
  };
  const case_t cases[] = {
      {1, 5, 5, 2, 3, 3, 1, 0}, {2, 6, 6, 3, 3, 3, 1, 1}, {2, 7, 5, 3, 3, 3, 2, 1},
      {1, 8, 8, 2, 5, 5, 1, 2}, {2, 9, 7, 2, 3, 3, 3, 2}, {1, 6, 6, 2, 3, 3, 1, 3},
      {2, 5, 5, 2, 1, 1, 1, 0}, {1, 7, 7, 2, 3, 1, 2, 1}, {1, 4, 4, 1, 4, 4, 4, 2},
  };
  for (const case_t& cs : cases) {
    tensor input = tensor::randn(gen, {2, cs.c, cs.h, cs.w});
    tensor weight = tensor::randn(gen, {cs.oc, cs.c, cs.kh, cs.kw});
    tensor bias = tensor::rand_uniform(gen, {cs.oc}, 0.1f, 0.9f);
    tensor got = ops::conv2d(input, weight, bias, cs.stride, cs.pad);
    tensor want = reference_conv2d(input, weight, bias, cs.stride, cs.pad);
    ASSERT_TRUE(got.same_shape(want));
    auto pg = got.data();
    auto pw = want.data();
    for (std::size_t i = 0; i < pg.size(); ++i)
      ASSERT_EQ(pg[i], pw[i]) << "stride=" << cs.stride << " pad=" << cs.pad << " i=" << i;
  }
}

// Satellite: steady state performs zero allocations — the second identical
// conv2d call sequence must not grow any arena. Forced serial so every
// checkout lands on this thread's arena, where the accessors can see it.
TEST(ScratchArena, SecondConvCallAllocatesNothing) {
  serial_guard guard;
  rng gen{67};
  tensor input = tensor::randn(gen, {2, 3, 12, 12});
  tensor weight = tensor::randn(gen, {8, 3, 3, 3});
  tensor bias = tensor::rand_uniform(gen, {8}, -0.1f, 0.1f);

  const auto run_once = [&] {
    tensor out = ops::conv2d(input, weight, bias, 1, 1);
    tensor grad_out = tensor::ones(out.shape());
    ops::conv2d_backward_input(grad_out, weight, 1, 1, input.shape());
    ops::conv2d_backward_weight(grad_out, input, 1, 1, weight.shape());
  };

  run_once();
  scratch_arena& arena = scratch_arena::local();
  EXPECT_EQ(arena.outstanding(), 0u);
  EXPECT_GT(arena.high_water_floats(), 0u);
  const std::size_t allocs_after_warmup = arena.block_allocations();
  run_once();
  run_once();
  EXPECT_EQ(arena.block_allocations(), allocs_after_warmup)
      << "steady-state conv2d calls must reuse the arena high-water block";
  EXPECT_EQ(arena.outstanding(), 0u);
  EXPECT_GE(arena.capacity_floats(), arena.high_water_floats());
}

TEST(ScratchArena, LifoGrowthPreservesLiveClaims) {
  scratch_arena arena;  // private instance: counters start at zero
  {
    scratch_buffer small = arena.take(64);
    for (std::size_t i = 0; i < small.size(); ++i) small.data()[i] = static_cast<float>(i);
    const float* small_ptr = small.data();
    // Force growth while `small` is live: the new claim must come from a
    // fresh block and `small` must stay in place, contents intact.
    scratch_buffer big = arena.take(1 << 20);
    big.data()[0] = 1.0f;  // the claim is real, writable memory
    EXPECT_EQ(small.data(), small_ptr);
    for (std::size_t i = 0; i < small.size(); ++i)
      EXPECT_EQ(small.data()[i], static_cast<float>(i));
    EXPECT_EQ(arena.outstanding(), 2u);
    EXPECT_GE(arena.block_allocations(), 2u);
  }
  // All claims back: the arena consolidates to one high-water block and
  // an identical take pattern no longer allocates.
  EXPECT_EQ(arena.outstanding(), 0u);
  const std::size_t allocs = arena.block_allocations();
  {
    scratch_buffer small = arena.take(64);
    scratch_buffer big = arena.take(1 << 20);
    EXPECT_EQ(arena.block_allocations(), allocs);
  }
  EXPECT_EQ(arena.block_allocations(), allocs);
}

TEST(ScratchArena, EmptyTakeAndMoveSemantics) {
  scratch_arena arena;
  scratch_buffer empty = arena.take(0);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(arena.outstanding(), 0u);

  scratch_buffer a = arena.take(10);
  scratch_buffer moved = std::move(a);
  EXPECT_EQ(moved.size(), 10u);
  EXPECT_EQ(arena.outstanding(), 1u);  // the claim followed the move
}

}  // namespace
}  // namespace pelta
