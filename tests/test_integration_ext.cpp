// End-to-end scenario over the extension subsystems: a realistic federation
// (non-iid data, partial participation, robust aggregation) containing a
// backdoor client, whose global model is then checkpointed, reloaded,
// deployed behind a software defense chain with PELTA underneath, and
// attacked — every layer of the repository in one story.
#include <gtest/gtest.h>

#include "attacks/eot.h"
#include "fl/federation.h"
#include "fl/poisoning.h"
#include "models/checkpoint.h"
#include "models/trainer.h"
#include "models/zoo.h"
#include "tee/profiles.h"

namespace pelta {
namespace {

TEST(EndToEnd, FederatedTrainingToShieldedDeployment) {
  // 1. A skewed federation with median aggregation and 75% availability.
  data::dataset_config dc = data::cifar10_like();
  dc.classes = 4;
  dc.train_per_class = 60;
  dc.test_per_class = 20;
  const data::dataset ds{dc};

  models::task_spec task;
  task.image_size = dc.image_size;
  task.classes = dc.classes;
  task.seed = 31;

  fl::federation_config fc;
  fc.clients = 4;
  fc.compromised = 0;
  fc.local.epochs = 2;
  fc.local.batch_size = 16;
  fc.sharding.strategy = fl::shard_strategy::dirichlet;
  fc.sharding.dirichlet_alpha = 1.0f;
  fc.aggregation.rule = fl::aggregation_rule::coordinate_median;
  fc.participation = 0.75f;
  fl::federation fed{fc, [&] { return models::make_model("ViT-B/16", task); }, ds};
  fed.run_rounds(6);
  const float trained_acc = fed.global_test_accuracy();
  ASSERT_GT(trained_acc, 0.8f) << "federation failed to train";

  // 2. Checkpoint the global model and reload it into a fresh instance —
  //    the deployment artifact.
  const std::string path = ::testing::TempDir() + "/e2e_global.peltackp";
  models::save_checkpoint(fed.server().global_model(), path);
  models::task_spec fresh_task = task;
  fresh_task.seed = 777;
  auto deployed = models::make_model("ViT-B/16", fresh_task);
  models::load_checkpoint(*deployed, path);
  EXPECT_FLOAT_EQ(models::accuracy(*deployed, ds.test_images(), ds.test_labels()), trained_acc);

  // 3. Deploy behind quantization with PELTA underneath; a compromised
  //    device mounts PGD+BPDA against it.
  const defenses::preprocessor_chain chain = defenses::make_chain("quantize");
  const defenses::defended_model dm{*deployed, chain};

  attacks::defended_eval_config cfg;
  cfg.kind = attacks::attack_kind::pgd;
  cfg.params = attacks::params_for_dataset("cifar10_like");
  cfg.max_samples = 16;
  cfg.seed = 99;
  const attacks::robust_eval open =
      attacks::evaluate_attack_defended(dm, ds, cfg, attacks::clear_oracle_factory(*deployed));
  const attacks::robust_eval shielded =
      attacks::evaluate_attack_defended(dm, ds, cfg, attacks::shielded_oracle_factory(*deployed));
  EXPECT_LT(open.robust_accuracy, 0.4f);      // software defense alone falls
  EXPECT_GT(shielded.robust_accuracy, 0.7f);  // the enclave holds

  // 4. The TEE budget of that deployment stays within TrustZone limits.
  tee::enclave enclave = tee::make_enclave(tee::tee_profile_kind::trustzone_optee);
  auto probe = attacks::make_shielded_oracle(*deployed, 5, &enclave);
  (void)probe->query(ds.test_image(0), ds.test_label(0));
  EXPECT_GT(enclave.used_bytes(), 0);
  EXPECT_LT(enclave.used_bytes(), enclave.capacity_bytes() / 4);
}

TEST(EndToEnd, BackdooredFederationIsCaughtByTheRobustRuleNotByPelta) {
  // PELTA mitigates what the *client* can craft; a trigger backdoor needs
  // no gradients, so only the server-side rule stops it — the two defenses
  // cover different links, as the poisoning bench quantifies.
  data::dataset_config dc = data::cifar10_like();
  dc.classes = 4;
  dc.train_per_class = 60;
  dc.test_per_class = 20;
  const data::dataset ds{dc};

  models::task_spec task;
  task.image_size = dc.image_size;
  task.classes = dc.classes;
  task.seed = 13;
  const auto factory = [&](std::uint64_t seed) {
    models::task_spec t = task;
    t.seed = seed;
    return models::make_model("ViT-B/16", t);
  };

  const auto run = [&](fl::aggregation_rule rule) {
    fl::backdoor_config bd;
    bd.target_class = 0;
    bd.boost = 4.0f;
    fl::fl_server server{factory(1)};
    std::vector<std::unique_ptr<fl::fl_client>> owned;
    const auto shard_of = [&](std::int64_t k) {
      std::vector<std::int64_t> out;
      for (std::int64_t i = k; i < ds.train_size(); i += 4) out.push_back(i);
      return out;
    };
    for (std::int64_t i = 0; i < 3; ++i)
      owned.push_back(std::make_unique<fl::fl_client>(i, factory(2 + i), shard_of(i), ds));
    owned.push_back(std::make_unique<fl::backdoor_client>(3, factory(99), shard_of(3), ds, bd));

    fl::local_train_config lc;
    lc.epochs = 2;
    lc.batch_size = 16;
    fl::aggregation_config ac;
    ac.rule = rule;
    for (std::int64_t r = 0; r < 3; ++r) {
      const byte_buffer g = server.broadcast();
      std::vector<fl::model_update> updates;
      for (auto& c : owned) {
        c->receive_global(g);
        updates.push_back(c->local_update(lc));
      }
      server.aggregate(updates, ac);
    }
    return fl::backdoor_success_rate(server.global_model(), ds, bd, 60);
  };

  const float under_fedavg = run(fl::aggregation_rule::fedavg);
  const float under_median = run(fl::aggregation_rule::coordinate_median);
  EXPECT_GT(under_fedavg, 0.5f);
  EXPECT_LT(under_median, under_fedavg - 0.3f);
}

}  // namespace
}  // namespace pelta
