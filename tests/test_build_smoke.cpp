// Build smoke test: the cheapest end-to-end exercise of the public API.
// Constructs a tiny defended model, runs one shielded classify, and checks
// that the shield actually placed bytes into the enclave. Registered with a
// short CTest timeout so a broken build or a hang fails the suite fast.
#include <gtest/gtest.h>

#include "core/pelta.h"
#include "models/zoo.h"
#include "tensor/tensor.h"

namespace pelta {
namespace {

TEST(BuildSmoke, ShieldedClassifyPopulatesEnclave) {
  models::task_spec task;
  task.classes = 4;
  defended_model defended{models::make_vit_b16_sim(task)};

  rng g{7};
  const tensor image = tensor::rand_uniform(g, {3, 16, 16});
  const std::int64_t label = defended.classify(image);

  EXPECT_GE(label, 0);
  EXPECT_LT(label, task.classes);
  EXPECT_GT(defended.enclave().used_bytes(), 0);
}

}  // namespace
}  // namespace pelta
