// Model checkpointing: durable state round-trips, integrity and
// architecture checks.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "models/checkpoint.h"
#include "models/mlp.h"
#include "models/trainer.h"
#include "models/zoo.h"
#include "tensor/ops.h"

namespace pelta::models {
namespace {

std::string temp_path(const char* stem) {
  return ::testing::TempDir() + "/" + stem + ".peltackp";
}

struct fixture {
  data::dataset ds;
  std::unique_ptr<models::model> vit;
  std::unique_ptr<models::model> resnet;  // carries batch-norm buffers

  fixture()
      : ds{[] {
          data::dataset_config c = data::cifar10_like();
          c.classes = 4;
          c.train_per_class = 40;
          c.test_per_class = 15;
          return c;
        }()} {
    models::task_spec task;
    task.classes = 4;
    vit = models::make_vit_b16_sim(task);
    resnet = models::make_resnet56_sim(task);
    models::train_config tc;
    tc.epochs = 3;
    tc.batch_size = 16;
    models::train_model(*vit, ds, tc);
    models::train_model(*resnet, ds, tc);
  }

  static const fixture& get() {
    static fixture f;
    return f;
  }
};

TEST(Checkpoint, RoundTripPreservesEveryPrediction) {
  const auto& f = fixture::get();
  const std::string path = temp_path("vit_roundtrip");
  save_checkpoint(*f.vit, path);

  models::task_spec task;
  task.classes = 4;
  task.seed = 999;  // different init — must be fully overwritten
  auto fresh = models::make_vit_b16_sim(task);
  load_checkpoint(*fresh, path);

  const tensor before = predict(*f.vit, f.ds.test_images());
  const tensor after = predict(*fresh, f.ds.test_images());
  for (std::int64_t i = 0; i < before.numel(); ++i) ASSERT_FLOAT_EQ(after[i], before[i]);
}

TEST(Checkpoint, CarriesBatchnormRunningStatistics) {
  const auto& f = fixture::get();
  const std::string path = temp_path("resnet_bn");
  save_checkpoint(*f.resnet, path);

  models::task_spec task;
  task.classes = 4;
  task.seed = 321;
  auto fresh = models::make_resnet56_sim(task);
  load_checkpoint(*fresh, path);

  const auto src = f.resnet->batchnorm_buffers();
  const auto dst = fresh->batchnorm_buffers();
  ASSERT_EQ(src.size(), dst.size());
  ASSERT_FALSE(src.empty());
  for (std::size_t i = 0; i < src.size(); ++i)
    for (std::int64_t j = 0; j < src[i]->running_mean.numel(); ++j) {
      ASSERT_FLOAT_EQ(dst[i]->running_mean[j], src[i]->running_mean[j]);
      ASSERT_FLOAT_EQ(dst[i]->running_var[j], src[i]->running_var[j]);
    }
}

TEST(Checkpoint, HeaderNameIsReadableWithoutLoading) {
  const auto& f = fixture::get();
  const std::string path = temp_path("name_probe");
  save_checkpoint(*f.vit, path);
  EXPECT_EQ(checkpoint_model_name(path), f.vit->name());
}

TEST(Checkpoint, NameMismatchThrowsUnlessIgnored) {
  const auto& f = fixture::get();
  const std::string path = temp_path("vit_for_mlp");
  save_checkpoint(*f.vit, path);

  models::task_spec task;
  task.classes = 4;
  auto other = models::make_vit_b16_sim(task);
  // same architecture registered under a different label
  const std::string renamed = temp_path("renamed");
  save_checkpoint(*other, renamed);

  mlp_config mc;
  mc.classes = 4;
  mlp_model mlp{mc};
  EXPECT_THROW(load_checkpoint(mlp, path), checkpoint_error);  // name and shape both differ
}

TEST(Checkpoint, ArchitectureMismatchThrowsEvenWithIgnoreName) {
  const auto& f = fixture::get();
  const std::string path = temp_path("arch_mismatch");
  save_checkpoint(*f.vit, path);
  mlp_config mc;
  mc.classes = 4;
  mlp_model mlp{mc};
  EXPECT_THROW(load_checkpoint(mlp, path, /*ignore_name=*/true), error);
}

TEST(Checkpoint, TruncationIsDetected) {
  const auto& f = fixture::get();
  const std::string path = temp_path("truncated");
  save_checkpoint(*f.vit, path);

  std::ifstream in{path, std::ios::binary};
  std::string bytes{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  in.close();
  bytes.resize(bytes.size() / 2);
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  models::task_spec task;
  task.classes = 4;
  auto fresh = models::make_vit_b16_sim(task);
  EXPECT_THROW(load_checkpoint(*fresh, path), checkpoint_error);
}

TEST(Checkpoint, BitFlipInPayloadIsDetected) {
  const auto& f = fixture::get();
  const std::string path = temp_path("corrupted");
  save_checkpoint(*f.vit, path);

  std::fstream io{path, std::ios::binary | std::ios::in | std::ios::out};
  io.seekp(200);  // somewhere inside the payload
  char b = 0;
  io.seekg(200);
  io.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  io.seekp(200);
  io.write(&b, 1);
  io.close();

  models::task_spec task;
  task.classes = 4;
  auto fresh = models::make_vit_b16_sim(task);
  EXPECT_THROW(load_checkpoint(*fresh, path), checkpoint_error);
}

TEST(Checkpoint, GarbageFileIsRejected) {
  const std::string path = temp_path("garbage");
  std::ofstream out{path, std::ios::binary};
  out << "definitely not a checkpoint";
  out.close();
  models::task_spec task;
  task.classes = 4;
  auto fresh = models::make_vit_b16_sim(task);
  EXPECT_THROW(load_checkpoint(*fresh, path), checkpoint_error);
  EXPECT_THROW((void)checkpoint_model_name(path), checkpoint_error);
}

TEST(Checkpoint, MissingFileThrows) {
  models::task_spec task;
  task.classes = 4;
  auto fresh = models::make_vit_b16_sim(task);
  EXPECT_THROW(load_checkpoint(*fresh, "/nonexistent/dir/x.peltackp"), checkpoint_error);
  EXPECT_THROW(save_checkpoint(*fresh, "/nonexistent/dir/x.peltackp"), checkpoint_error);
}

}  // namespace
}  // namespace pelta::models
