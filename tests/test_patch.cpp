// Adversarial patch attacks (Brown et al. [14], the paper's §I sticker
// scenario): support-constrained perturbations, per-sample and universal.
#include <gtest/gtest.h>

#include "attacks/patch.h"
#include "models/trainer.h"
#include "models/zoo.h"
#include "tensor/ops.h"

namespace pelta::attacks {
namespace {

struct fixture {
  data::dataset ds;
  std::unique_ptr<models::vit_model> vit;

  fixture()
      : ds{[] {
          data::dataset_config c = data::cifar10_like();
          c.classes = 4;
          c.train_per_class = 60;
          c.test_per_class = 20;
          return c;
        }()} {
    models::vit_config vc;
    vc.name = "tiny-vit";
    vc.image_size = 16;
    vc.patch_size = 4;
    vc.dim = 16;
    vc.heads = 2;
    vc.blocks = 2;
    vc.mlp_hidden = 32;
    vc.classes = 4;
    vit = std::make_unique<models::vit_model>(vc);
    models::train_config tc;
    tc.epochs = 10;
    tc.batch_size = 16;
    tc.lr = 4e-3f;
    models::train_model(*vit, ds, tc);
  }

  static const fixture& get() {
    static fixture f;
    return f;
  }
};

TEST(PatchGeometry, OnlyTheStickerRegionChanges) {
  const auto& f = fixture::get();
  auto oracle = make_clear_oracle(*f.vit);
  const tensor x0 = f.ds.test_image(0);
  patch_config c;
  c.size = 4;
  c.steps = 10;
  c.early_stop = false;
  const attack_result r = run_patch(*oracle, x0, f.ds.test_label(0), c);
  for (std::int64_t ch = 0; ch < 3; ++ch)
    for (std::int64_t y = 0; y < 16; ++y)
      for (std::int64_t x = 0; x < 16; ++x) {
        if (y >= 12 && x >= 12) continue;  // sticker support (bottom-right 4x4)
        ASSERT_FLOAT_EQ(r.adversarial.at(ch, y, x), x0.at(ch, y, x))
            << "pixel outside the sticker changed at " << ch << "," << y << "," << x;
      }
  EXPECT_GE(ops::min(r.adversarial), 0.0f);
  EXPECT_LE(ops::max(r.adversarial), 1.0f);
}

TEST(PatchGeometry, ExplicitLocationIsRespected) {
  const auto& f = fixture::get();
  auto oracle = make_clear_oracle(*f.vit);
  const tensor x0 = f.ds.test_image(1);
  patch_config c;
  c.size = 3;
  c.top = 2;
  c.left = 5;
  c.steps = 5;
  c.early_stop = false;
  const attack_result r = run_patch(*oracle, x0, f.ds.test_label(1), c);
  bool changed_inside = false;
  for (std::int64_t ch = 0; ch < 3; ++ch)
    for (std::int64_t y = 0; y < 16; ++y)
      for (std::int64_t x = 0; x < 16; ++x) {
        const bool inside = y >= 2 && y < 5 && x >= 5 && x < 8;
        if (!inside)
          ASSERT_FLOAT_EQ(r.adversarial.at(ch, y, x), x0.at(ch, y, x));
        else if (r.adversarial.at(ch, y, x) != x0.at(ch, y, x))
          changed_inside = true;
      }
  EXPECT_TRUE(changed_inside);
}

TEST(PatchGeometry, InvalidConfigsThrow) {
  const auto& f = fixture::get();
  auto oracle = make_clear_oracle(*f.vit);
  patch_config too_big;
  too_big.size = 20;
  EXPECT_THROW(run_patch(*oracle, f.ds.test_image(0), 0, too_big), error);
  patch_config out_of_bounds;
  out_of_bounds.size = 4;
  out_of_bounds.top = 14;
  out_of_bounds.left = 0;
  EXPECT_THROW(run_patch(*oracle, f.ds.test_image(0), 0, out_of_bounds), error);
}

TEST(PatchAttack, FoolsTheClearModelButNotTheShieldedOne) {
  const auto& f = fixture::get();
  std::int64_t clear_hits = 0, shielded_hits = 0, runs = 0;
  patch_config c;
  c.size = 6;  // a big sticker: the §I threat is unconstrained in magnitude
  c.steps = 60;
  for (std::int64_t i = 0; i < 12; ++i) {
    const std::int64_t label = f.ds.test_label(i);
    if (models::predict_one(*f.vit, f.ds.test_image(i)) != label) continue;
    ++runs;
    auto clear = make_clear_oracle(*f.vit);
    auto shielded = make_shielded_oracle(*f.vit, static_cast<std::uint64_t>(i));
    if (run_patch(*clear, f.ds.test_image(i), label, c).misclassified) ++clear_hits;
    if (run_patch(*shielded, f.ds.test_image(i), label, c).misclassified) ++shielded_hits;
  }
  ASSERT_GE(runs, 6);
  EXPECT_GT(static_cast<float>(clear_hits) / static_cast<float>(runs), 0.5f);
  EXPECT_LT(shielded_hits, clear_hits);
}

TEST(PatchAttack, TargetedModeHitsTheTarget) {
  const auto& f = fixture::get();
  auto oracle = make_clear_oracle(*f.vit);
  for (std::int64_t i = 0; i < 6; ++i) {
    const std::int64_t label = f.ds.test_label(i);
    patch_config c;
    c.size = 6;
    c.steps = 60;
    c.target = (label + 1) % 4;
    const attack_result r = run_patch(*oracle, f.ds.test_image(i), label, c);
    if (r.misclassified) {
      EXPECT_EQ(models::predict_one(*f.vit, r.adversarial), c.target);
    }
  }
}

TEST(UniversalPatch, TransfersToHeldOutImages) {
  const auto& f = fixture::get();
  auto oracle = make_clear_oracle(*f.vit);

  std::vector<tensor> pool;
  std::vector<std::int64_t> labels;
  for (std::int64_t i = 0; i < 12; ++i) {
    if (models::predict_one(*f.vit, f.ds.test_image(i)) != f.ds.test_label(i)) continue;
    pool.push_back(f.ds.test_image(i));
    labels.push_back(f.ds.test_label(i));
  }
  ASSERT_GE(pool.size(), 6u);

  patch_config c;
  c.size = 6;
  c.steps = 30;
  rng gen{17};
  const universal_patch_result up = train_universal_patch(*oracle, pool, labels, c, gen);
  EXPECT_GT(up.train_success, 0.5f);

  // replay the one sticker on unseen samples
  std::int64_t held_hits = 0, held_total = 0;
  for (std::int64_t i = 12; i < 30 && held_total < 10; ++i) {
    const std::int64_t label = f.ds.test_label(i);
    if (models::predict_one(*f.vit, f.ds.test_image(i)) != label) continue;
    ++held_total;
    const tensor stamped = apply_patch(f.ds.test_image(i), up.patch, c);
    if (models::predict_one(*f.vit, stamped) != label) ++held_hits;
  }
  ASSERT_GE(held_total, 5);
  EXPECT_GT(static_cast<float>(held_hits) / static_cast<float>(held_total), 0.4f);
}

TEST(UniversalPatch, ShieldedTrainingYieldsAWeakerSticker) {
  const auto& f = fixture::get();
  std::vector<tensor> pool;
  std::vector<std::int64_t> labels;
  for (std::int64_t i = 0; i < 12; ++i) {
    if (models::predict_one(*f.vit, f.ds.test_image(i)) != f.ds.test_label(i)) continue;
    pool.push_back(f.ds.test_image(i));
    labels.push_back(f.ds.test_label(i));
  }
  patch_config c;
  c.size = 6;
  c.steps = 30;
  rng gen{18};
  auto clear = make_clear_oracle(*f.vit);
  auto shielded = make_shielded_oracle(*f.vit, 5);
  const universal_patch_result open = train_universal_patch(*clear, pool, labels, c, gen);

  rng gen2{18};
  const universal_patch_result masked = train_universal_patch(*shielded, pool, labels, c, gen2);
  // success judged by the real model either way
  std::int64_t open_hits = 0, masked_hits = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (models::predict_one(*f.vit, apply_patch(pool[i], open.patch, c)) != labels[i]) ++open_hits;
    if (models::predict_one(*f.vit, apply_patch(pool[i], masked.patch, c)) != labels[i])
      ++masked_hits;
  }
  EXPECT_GT(open_hits, masked_hits);
}

}  // namespace
}  // namespace pelta::attacks
