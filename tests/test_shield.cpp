// PELTA shielding — Algorithm 1 semantics on hand-built graphs and on the
// real model families.
#include <gtest/gtest.h>

#include "autodiff/ops_conv.h"
#include "autodiff/ops_elementwise.h"
#include "autodiff/ops_loss.h"
#include "autodiff/ops_norm.h"
#include "models/zoo.h"
#include "shield/masked_view.h"
#include "shield/policy.h"
#include "shield/shield.h"
#include "tensor/ops.h"

namespace pelta::shield {
namespace {

// Tiny DNN mirroring §III: x -> linear(W1,b1) -> relu -> linear(W2,b2).
struct dnn_fixture {
  ad::graph g;
  ad::parameter w1{"w1", tensor::ones({3, 4})};
  ad::parameter b1{"b1", tensor::zeros({4})};
  ad::parameter w2{"w2", tensor::ones({4, 2})};
  ad::parameter b2{"b2", tensor::zeros({2})};
  ad::node_id x, l1, r1, l2;

  dnn_fixture() {
    rng gen{1};
    x = g.add_input(tensor::randn(gen, {1, 3}), "x");
    l1 = g.add_transform(ad::make_linear(true),
                         {x, g.add_parameter(w1), g.add_parameter(b1)}, "l1");
    r1 = g.add_transform(ad::make_relu(), {l1}, "r1");
    l2 = g.add_transform(ad::make_linear(true),
                         {r1, g.add_parameter(w2), g.add_parameter(b2)}, "l2");
    g.backward_from(l2, tensor::ones({1, 2}));
  }
};

TEST(Shield, MasksExactlyTheFrontierAncestry) {
  dnn_fixture f;
  const shield_report r = pelta_shield(f.g, {f.r1}, nullptr);

  EXPECT_EQ(r.masked_input, f.x);
  EXPECT_EQ(r.masked_transforms, (std::vector<ad::node_id>{f.l1, f.r1}));
  // W1 and b1 are arguments of a masked transform -> masked; W2/b2 clear.
  ASSERT_EQ(r.masked_side.size(), 2u);
  EXPECT_EQ(f.g.at(r.masked_side[0]).tag, "w1");
  EXPECT_EQ(f.g.at(r.masked_side[1]).tag, "b1");
  EXPECT_TRUE(r.is_masked(f.x));
  EXPECT_TRUE(r.is_masked(f.l1));
  EXPECT_FALSE(r.is_masked(f.l2));
}

TEST(Shield, JacobianRecordsFollowInputDependentEdges) {
  dnn_fixture f;
  const shield_report r = pelta_shield(f.g, {f.r1}, nullptr);
  // Exactly two input-dependent edges inside the masked region:
  // (x -> l1) and (l1 -> r1); parameter edges carry no Jacobian records.
  ASSERT_EQ(r.jacobians.size(), 2u);
  EXPECT_EQ(r.jacobians[0].from, f.l1);
  EXPECT_EQ(r.jacobians[0].to, f.r1);
  EXPECT_EQ(r.jacobians[0].op_name, "relu");
  EXPECT_EQ(r.jacobians[1].from, f.x);
  EXPECT_EQ(r.jacobians[1].to, f.l1);
  EXPECT_EQ(r.jacobians[1].op_name, "linear");
  EXPECT_EQ(r.jacobians[1].rows, 4);
  EXPECT_EQ(r.jacobians[1].cols, 3);
}

TEST(Shield, EnclavePlacementMatchesAccounting) {
  dnn_fixture f;
  tee::enclave e;
  const shield_report r = pelta_shield(f.g, {f.r1}, &e, "m/");
  EXPECT_EQ(e.used_bytes(), r.total_bytes());
  // Values of l1, r1; adjoints of l1, r1, x; params w1, b1 (+ adjoints).
  EXPECT_TRUE(e.contains("m/u" + std::to_string(f.l1)));
  EXPECT_TRUE(e.contains("m/u" + std::to_string(f.r1)));
  EXPECT_TRUE(e.contains("m/du" + std::to_string(f.x)));
  EXPECT_FALSE(e.contains("m/u" + std::to_string(f.l2)));
  EXPECT_EQ(r.bytes_activations, (4 + 4) * 4);     // l1 + r1 outputs [1,4]
  EXPECT_EQ(r.masked_param_scalars, 12 + 4);       // w1 + b1
}

TEST(Shield, ReportOnlyModeStoresNothing) {
  dnn_fixture f;
  const shield_report r = pelta_shield(f.g, {f.r1}, nullptr);
  EXPECT_GT(r.total_bytes(), 0);
}

TEST(Shield, FrontierValidation) {
  dnn_fixture f;
  tee::enclave e;
  EXPECT_THROW(pelta_shield(f.g, {}, &e), error);            // empty Select
  EXPECT_THROW(pelta_shield(f.g, {f.x}, &e), error);         // leaf frontier (i > l violated)
  EXPECT_THROW(pelta_shield_tags(f.g, {"nope"}, &e), error); // unknown tag
}

TEST(Shield, FrontierMustDependOnInput) {
  ad::graph g;
  ad::parameter w{"w", tensor::ones({2})};
  g.add_input(tensor::ones({2}), "x");
  const ad::node_id p = g.add_parameter(w);
  const ad::node_id t = g.add_transform(ad::make_scale(2.0f), {p}, "param_branch");
  EXPECT_THROW(pelta_shield(g, {t}, nullptr), error);
}

TEST(Shield, ParameterDerivedChainsMaskedRecursively) {
  // W -> weight_standardize -> conv (the BiT stem): masking the conv must
  // also mask the WS vertex and the raw W (§IV-B recovery argument).
  ad::graph g;
  rng gen{2};
  ad::parameter w{"w", tensor::randn(gen, {2, 3, 3, 3})};
  const ad::node_id x = g.add_input(tensor::randn(gen, {1, 3, 8, 8}), "x");
  const ad::node_id wp = g.add_parameter(w);
  const ad::node_id ws = g.add_transform(ad::make_weight_standardize(), {wp}, "ws");
  const ad::node_id conv = g.add_transform(ad::make_conv2d(1, 1, false), {x, ws}, "conv");
  g.backward_from(conv, tensor::ones({1, 2, 8, 8}));

  const shield_report r = pelta_shield(g, {conv}, nullptr);
  EXPECT_EQ(r.masked_side, (std::vector<ad::node_id>{wp, ws}));
  EXPECT_EQ(r.masked_param_scalars, w.value.numel());
}

TEST(Shield, SharedFrontierBranchesBothMasked) {
  // Two transforms consuming the input (diamond): selecting the join masks
  // both branches and records Jacobians along each edge.
  ad::graph g;
  const ad::node_id x = g.add_input(tensor::ones({4}), "x");
  const ad::node_id a = g.add_transform(ad::make_scale(2.0f), {x}, "a");
  const ad::node_id b = g.add_transform(ad::make_scale(3.0f), {x}, "b");
  const ad::node_id j = g.add_transform(ad::make_add(), {a, b}, "join");
  g.backward_from(j, tensor::ones({4}));

  const shield_report r = pelta_shield(g, {j}, nullptr);
  EXPECT_EQ(r.masked_transforms, (std::vector<ad::node_id>{a, b, j}));
  EXPECT_EQ(r.jacobians.size(), 4u);  // a->j, b->j, x->a, x->b
}

TEST(MaskedView, AccessRulesMatchThreatModel) {
  dnn_fixture f;
  const shield_report r = pelta_shield(f.g, {f.r1}, nullptr);
  const masked_view view{f.g, r};

  // The attacker's own sample stays readable; its gradient does not.
  EXPECT_NO_THROW(view.value(f.x));
  EXPECT_THROW(view.adjoint(f.x), tee::enclave_access_error);
  EXPECT_THROW(view.input_gradient(), tee::enclave_access_error);

  // Masked transforms deny both directions.
  EXPECT_THROW(view.value(f.l1), tee::enclave_access_error);
  EXPECT_THROW(view.adjoint(f.r1), tee::enclave_access_error);

  // Clear nodes behave like an open white box.
  EXPECT_NO_THROW(view.value(f.l2));
  EXPECT_NO_THROW(view.adjoint(f.l2));
}

TEST(MaskedView, ClearFrontierIsShallowestClearChild) {
  dnn_fixture f;
  const shield_report r = pelta_shield(f.g, {f.r1}, nullptr);
  const masked_view view{f.g, r};
  EXPECT_EQ(view.clear_frontier_node(), f.l2);
  // δ_{L+1} has the shape of the shallowest clear layer's output.
  EXPECT_TRUE(view.clear_adjoint().same_shape(f.g.value(f.l2)));
}

TEST(MaskedView, MaskedParamValuesDenied) {
  dnn_fixture f;
  const shield_report r = pelta_shield(f.g, {f.r1}, nullptr);
  const masked_view view{f.g, r};
  // Find the w1 parameter node: masked; w2: clear.
  EXPECT_THROW(view.value(f.g.find_tag("w1")), tee::enclave_access_error);
  EXPECT_NO_THROW(view.value(f.g.find_tag("w2")));
}

TEST(Policy, SelectFirstKTransforms) {
  dnn_fixture f;
  const auto frontier1 = select_first_k_transforms(f.g, 1);
  EXPECT_EQ(frontier1, (std::vector<ad::node_id>{f.l1}));
  const auto frontier3 = select_first_k_transforms(f.g, 3);
  EXPECT_EQ(frontier3, (std::vector<ad::node_id>{f.l2}));
  EXPECT_THROW(select_first_k_transforms(f.g, 9), error);
  EXPECT_THROW(select_first_k_transforms(f.g, 0), error);
}

TEST(Policy, SelectUpToTag) {
  dnn_fixture f;
  EXPECT_EQ(select_up_to_tag(f.g, "r1"), (std::vector<ad::node_id>{f.r1}));
  EXPECT_THROW(select_up_to_tag(f.g, "zzz"), error);
}

// ---- on the real model families (§V-A shielding setups) ---------------------

class ModelShield : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelShield, FrontierShieldsAndDeniesInputGradient) {
  models::task_spec task;
  task.classes = 4;
  auto m = models::make_model(GetParam(), task);

  rng gen{3};
  const tensor image = tensor::rand_uniform(gen, {1, 3, 16, 16});
  models::forward_pass fp = m->forward(image, ad::norm_mode::eval);
  const ad::node_id labels = fp.graph.add_constant(tensor{{1}, {0.0f}});
  const ad::node_id loss =
      fp.graph.add_transform(ad::make_cross_entropy(), {fp.logits, labels}, "loss");
  fp.graph.backward(loss);

  tee::enclave enclave;
  const shield_report r =
      pelta_shield_tags(fp.graph, m->shield_frontier_tags(), &enclave, m->name() + "/");
  const masked_view view{fp.graph, r};

  EXPECT_THROW(view.input_gradient(), tee::enclave_access_error);
  EXPECT_NO_THROW(view.clear_adjoint());
  EXPECT_NO_THROW(view.value(fp.logits));   // the head stays clear
  EXPECT_NO_THROW(view.adjoint(fp.logits));
  EXPECT_GT(r.masked_param_scalars, 0);
  EXPECT_LT(r.masked_param_scalars, m->parameter_count());  // partial shield
  EXPECT_LE(enclave.used_bytes(), enclave.capacity_bytes());
}

INSTANTIATE_TEST_SUITE_P(Families, ModelShield,
                         ::testing::Values("ViT-B/16", "ResNet-56", "BiT-M-R101x3"));

TEST(ModelShieldDetail, VitClearAdjointIsTokenShaped) {
  models::task_spec task;
  task.classes = 4;
  auto vit = models::make_vit_b16_sim(task);
  rng gen{4};
  const tensor image = tensor::rand_uniform(gen, {1, 3, 16, 16});
  models::forward_pass fp = vit->forward(image, ad::norm_mode::eval);
  const ad::node_id labels = fp.graph.add_constant(tensor{{1}, {1.0f}});
  const ad::node_id loss = fp.graph.add_transform(ad::make_cross_entropy(), {fp.logits, labels});
  fp.graph.backward(loss);

  const shield_report r = pelta_shield_tags(fp.graph, vit->shield_frontier_tags(), nullptr);
  const masked_view view{fp.graph, r};
  // ViT δ_{L+1}: token-space [1, T+1, D] — spatial structure already gone
  // (the §V-C explanation of why upsampling helps less against ViT).
  EXPECT_EQ(view.clear_adjoint().ndim(), 3);
}

TEST(ModelShieldDetail, CnnClearAdjointIsSpatial) {
  models::task_spec task;
  task.classes = 4;
  auto bit = models::make_bit_r101x3_sim(task);
  rng gen{5};
  const tensor image = tensor::rand_uniform(gen, {1, 3, 16, 16});
  models::forward_pass fp = bit->forward(image, ad::norm_mode::eval);
  const ad::node_id labels = fp.graph.add_constant(tensor{{1}, {1.0f}});
  const ad::node_id loss = fp.graph.add_transform(ad::make_cross_entropy(), {fp.logits, labels});
  fp.graph.backward(loss);

  const shield_report r = pelta_shield_tags(fp.graph, bit->shield_frontier_tags(), nullptr);
  const masked_view view{fp.graph, r};
  // BiT δ_{L+1}: still [1, C, H, W] — carries the spatial information the
  // paper says average-style upsampling can partially recover.
  EXPECT_EQ(view.clear_adjoint().ndim(), 4);
  EXPECT_EQ(view.clear_adjoint().size(2), 16);
}

TEST(ModelShieldDetail, Table1OrderingVitShieldsLargerPortionThanBit) {
  models::task_spec task;
  task.classes = 4;
  auto vit = models::make_vit_l16_sim(task);
  auto bit = models::make_bit_r101x3_sim(task);
  rng gen{6};
  const tensor image = tensor::rand_uniform(gen, {1, 3, 16, 16});

  const auto portion = [&](models::model& m) {
    models::forward_pass fp = m.forward(image, ad::norm_mode::eval);
    const shield_report r = pelta_shield_tags(fp.graph, m.shield_frontier_tags(), nullptr);
    return static_cast<double>(r.masked_param_scalars) /
           static_cast<double>(m.parameter_count());
  };
  // Table I: ViT shields percents of the model, BiT shields orders of
  // magnitude less (just the stem conv).
  EXPECT_GT(portion(*vit), 10.0 * portion(*bit));
}

}  // namespace
}  // namespace pelta::shield
