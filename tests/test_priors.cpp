// Prior-based attacker tiers (§VII (i)) and targeted attack variants.
#include <gtest/gtest.h>

#include "attacks/priors.h"
#include "models/trainer.h"
#include "models/zoo.h"
#include "tensor/ops.h"

namespace pelta::attacks {
namespace {

models::vit_config tiny_vit_config() {
  models::vit_config vc;
  vc.name = "tiny-vit";
  vc.image_size = 16;
  vc.patch_size = 4;
  vc.dim = 16;
  vc.heads = 2;
  vc.blocks = 2;
  vc.mlp_hidden = 32;
  vc.classes = 4;
  return vc;
}

data::dataset_config small_data_config(std::uint64_t seed) {
  data::dataset_config c = data::cifar10_like();
  c.classes = 4;
  c.train_per_class = 60;
  c.test_per_class = 20;
  c.seed = seed;
  return c;
}

struct fixture {
  data::dataset ds;        // the federation's private data
  data::dataset public_ds; // a *public* dataset of the same family
  std::unique_ptr<models::vit_model> victim;
  std::unique_ptr<models::vit_model> public_model;  // related-tier prior source

  fixture() : ds{small_data_config(42)}, public_ds{small_data_config(4242)} {
    victim = std::make_unique<models::vit_model>(tiny_vit_config());
    public_model = std::make_unique<models::vit_model>([] {
      models::vit_config c = tiny_vit_config();
      c.seed = 77;  // attacker's own initialization
      return c;
    }());
    models::train_config tc;
    tc.epochs = 10;
    tc.batch_size = 16;
    tc.lr = 4e-3f;
    models::train_model(*victim, ds, tc);
    models::train_model(*public_model, public_ds, tc);
  }

  static const fixture& get() {
    static fixture f;
    return f;
  }
};

TEST(PriorNames, FrontierCoversTheEmbedding) {
  const auto& f = fixture::get();
  const auto names = shielded_parameter_names(*f.victim, f.ds.test_image(0));
  ASSERT_FALSE(names.empty());
  // ViT frontier = everything up to the position embedding (§V-A): the
  // patch projection and the embedding tokens, nothing deeper.
  bool has_embed = false;
  for (const auto& n : names) {
    EXPECT_EQ(n.rfind("embed", 0), 0u) << "non-frontier parameter masked: " << n;
    has_embed = true;
  }
  EXPECT_TRUE(has_embed);
}

TEST(PriorAssemble, ExactTierEqualsVictimEverywhere) {
  const auto& f = fixture::get();
  models::vit_model substitute{tiny_vit_config()};
  prior_attack_config cfg;
  cfg.tier = prior_tier::exact;
  const auto frontier =
      assemble_prior_substitute(substitute, *f.victim, cfg, f.ds.test_image(0));
  EXPECT_FLOAT_EQ(frontier_agreement(substitute, *f.victim, frontier), 1.0f);
  // deep layers too: full parameter vectors byte-identical
  const byte_buffer a = substitute.params().save_values();
  const byte_buffer b = f.victim->params().save_values();
  EXPECT_EQ(a, b);
}

TEST(PriorAssemble, NoneTierRerollsOnlyTheFrontier) {
  const auto& f = fixture::get();
  models::vit_model substitute{tiny_vit_config()};
  prior_attack_config cfg;
  cfg.tier = prior_tier::none;
  cfg.seed = 5;
  const auto frontier =
      assemble_prior_substitute(substitute, *f.victim, cfg, f.ds.test_image(0));
  EXPECT_LT(frontier_agreement(substitute, *f.victim, frontier), 0.5f);

  // every non-frontier parameter still equals the victim's
  for (std::size_t i = 0; i < substitute.params().size(); ++i) {
    const ad::parameter& p = substitute.params().at(i);
    const bool in_frontier =
        std::find(frontier.begin(), frontier.end(), p.name) != frontier.end();
    if (in_frontier) continue;
    const ad::parameter& v = f.victim->params().get(p.name);
    for (std::int64_t j = 0; j < p.value.numel(); ++j)
      ASSERT_FLOAT_EQ(p.value[j], v.value[j]) << p.name;
  }
}

TEST(PriorAssemble, NoneTierIsSeedDeterministic) {
  const auto& f = fixture::get();
  models::vit_model a{tiny_vit_config()}, b{tiny_vit_config()};
  prior_attack_config cfg;
  cfg.tier = prior_tier::none;
  cfg.seed = 11;
  assemble_prior_substitute(a, *f.victim, cfg, f.ds.test_image(0));
  assemble_prior_substitute(b, *f.victim, cfg, f.ds.test_image(0));
  EXPECT_EQ(a.params().save_values(), b.params().save_values());
}

TEST(PriorAssemble, RelatedTierCopiesThePriorSourceFrontier) {
  const auto& f = fixture::get();
  models::vit_model substitute{tiny_vit_config()};
  prior_attack_config cfg;
  cfg.tier = prior_tier::related;
  cfg.prior_source = f.public_model.get();
  const auto frontier =
      assemble_prior_substitute(substitute, *f.victim, cfg, f.ds.test_image(0));
  EXPECT_FLOAT_EQ(frontier_agreement(substitute, *f.public_model, frontier), 1.0f);
  EXPECT_LT(frontier_agreement(substitute, *f.victim, frontier), 0.9f);
}

TEST(PriorAssemble, RelatedTierWithoutSourceThrows) {
  const auto& f = fixture::get();
  models::vit_model substitute{tiny_vit_config()};
  prior_attack_config cfg;
  cfg.tier = prior_tier::related;
  EXPECT_THROW(assemble_prior_substitute(substitute, *f.victim, cfg, f.ds.test_image(0)), error);
}

TEST(PriorEval, ExactPriorDefeatsTheShieldNoPriorDoesNot) {
  // The §VII claim, end to end: a shared pretrained embedding voids the
  // enclave's secrecy; training your own first parameters restores it.
  const auto& f = fixture::get();
  const suite_params params = params_for_dataset("cifar10_like");

  models::vit_model exact_sub{tiny_vit_config()};
  prior_attack_config exact_cfg;
  exact_cfg.tier = prior_tier::exact;
  const robust_eval exact =
      evaluate_prior_attack(*f.victim, exact_sub, exact_cfg, f.ds, params, 16, 3);

  models::vit_model none_sub{tiny_vit_config()};
  prior_attack_config none_cfg;
  none_cfg.tier = prior_tier::none;
  const robust_eval none =
      evaluate_prior_attack(*f.victim, none_sub, none_cfg, f.ds, params, 16, 3);

  EXPECT_LT(exact.robust_accuracy, 0.3f);
  EXPECT_GT(none.robust_accuracy, 0.6f);
}

TEST(PriorTierNames, AreDistinct) {
  EXPECT_STRNE(prior_tier_name(prior_tier::none), prior_tier_name(prior_tier::exact));
  EXPECT_STRNE(prior_tier_name(prior_tier::related), prior_tier_name(prior_tier::exact));
}

// ---- targeted attack variants -------------------------------------------------

TEST(Targeted, PgdReachesTheChosenClassOnClearModel) {
  const auto& f = fixture::get();
  auto oracle = make_clear_oracle(*f.victim);
  std::int64_t hits = 0, runs = 0;
  for (std::int64_t i = 0; i < 12; ++i) {
    const std::int64_t label = f.ds.test_label(i);
    if (models::predict_one(*f.victim, f.ds.test_image(i)) != label) continue;
    pgd_config c;
    c.eps = 0.062f;
    c.eps_step = 0.0062f;
    c.steps = 40;
    c.target = (label + 1) % 4;
    const attack_result r = run_pgd(*oracle, f.ds.test_image(i), label, c);
    ++runs;
    if (r.misclassified) {
      ++hits;
      EXPECT_EQ(models::predict_one(*f.victim, r.adversarial), c.target);
    }
  }
  ASSERT_GT(runs, 4);
  EXPECT_GT(static_cast<float>(hits) / static_cast<float>(runs), 0.5f);
}

TEST(Targeted, SuccessFlagMeansTargetHitForFgsm) {
  const auto& f = fixture::get();
  auto oracle = make_clear_oracle(*f.victim);
  for (std::int64_t i = 0; i < 8; ++i) {
    const std::int64_t label = f.ds.test_label(i);
    fgsm_config c;
    c.eps = 0.062f;
    c.target = (label + 2) % 4;
    const attack_result r = run_fgsm(*oracle, f.ds.test_image(i), label, c);
    if (r.misclassified) {
      EXPECT_EQ(models::predict_one(*f.victim, r.adversarial), c.target);
    }
  }
}

TEST(Targeted, TargetEqualToLabelThrows) {
  const auto& f = fixture::get();
  auto oracle = make_clear_oracle(*f.victim);
  pgd_config c;
  c.target = f.ds.test_label(0);
  EXPECT_THROW(run_pgd(*oracle, f.ds.test_image(0), f.ds.test_label(0), c), error);
}

TEST(Targeted, ShieldBlocksTargetedPgd) {
  const auto& f = fixture::get();
  std::int64_t clear_hits = 0, shielded_hits = 0, runs = 0;
  for (std::int64_t i = 0; i < 10; ++i) {
    const std::int64_t label = f.ds.test_label(i);
    if (models::predict_one(*f.victim, f.ds.test_image(i)) != label) continue;
    pgd_config c;
    c.eps = 0.062f;
    c.eps_step = 0.0062f;
    c.steps = 30;
    c.target = (label + 1) % 4;
    auto clear = make_clear_oracle(*f.victim);
    auto shielded = make_shielded_oracle(*f.victim, static_cast<std::uint64_t>(i));
    ++runs;
    if (run_pgd(*clear, f.ds.test_image(i), label, c).misclassified) ++clear_hits;
    if (run_pgd(*shielded, f.ds.test_image(i), label, c).misclassified) ++shielded_hits;
  }
  ASSERT_GT(runs, 4);
  EXPECT_LT(shielded_hits, clear_hits);
}

TEST(Targeted, MimDescendsTowardTarget) {
  const auto& f = fixture::get();
  auto oracle = make_clear_oracle(*f.victim);
  const std::int64_t i = 0;
  const std::int64_t label = f.ds.test_label(i);
  mim_config c;
  c.eps = 0.062f;
  c.eps_step = 0.0062f;
  c.steps = 30;
  c.target = (label + 1) % 4;
  c.early_stop = false;
  const attack_result r = run_mim(*oracle, f.ds.test_image(i), label, c);
  // the loss toward the target must not increase vs the clean sample
  const float loss_before = oracle->query(f.ds.test_image(i), c.target).loss;
  const float loss_after = oracle->query(r.adversarial, c.target).loss;
  EXPECT_LE(loss_after, loss_before + 1e-4f);
}

}  // namespace
}  // namespace pelta::attacks
