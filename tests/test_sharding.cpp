// Client data partitioning (fl/sharding.h): iid, by-class and Dirichlet
// strategies — coverage/disjointness invariants and skew ordering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "fl/federation.h"
#include "models/zoo.h"

namespace pelta::fl {
namespace {

const data::dataset& shard_dataset() {
  static const data::dataset ds = [] {
    data::dataset_config c = data::cifar10_like();
    c.train_per_class = 30;
    c.test_per_class = 10;
    return data::dataset{c};
  }();
  return ds;
}

void expect_valid_partition(const std::vector<std::vector<std::int64_t>>& shards,
                            std::int64_t total) {
  std::set<std::int64_t> seen;
  for (const auto& s : shards) {
    EXPECT_FALSE(s.empty());
    for (std::int64_t i : s) {
      EXPECT_TRUE(seen.insert(i).second) << "index " << i << " assigned twice";
      EXPECT_GE(i, 0);
      EXPECT_LT(i, total);
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), total);
}

double mean_entropy(const data::dataset& ds,
                    const std::vector<std::vector<std::int64_t>>& shards) {
  double acc = 0.0;
  for (const auto& s : shards) acc += shard_label_entropy(ds, s);
  return acc / static_cast<double>(shards.size());
}

class ShardingStrategies : public ::testing::TestWithParam<shard_strategy> {};

TEST_P(ShardingStrategies, ProducesAValidPartition) {
  const auto& ds = shard_dataset();
  sharding_config cfg;
  cfg.strategy = GetParam();
  const auto shards = make_shards(ds, 5, cfg);
  ASSERT_EQ(shards.size(), 5u);
  expect_valid_partition(shards, ds.train_size());
}

TEST_P(ShardingStrategies, IsSeedDeterministic) {
  const auto& ds = shard_dataset();
  sharding_config cfg;
  cfg.strategy = GetParam();
  cfg.seed = 99;
  const auto first = make_shards(ds, 4, cfg);
  EXPECT_EQ(first, make_shards(ds, 4, cfg));
  cfg.seed = 100;
  EXPECT_NE(first, make_shards(ds, 4, cfg));
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ShardingStrategies,
                         ::testing::Values(shard_strategy::iid, shard_strategy::by_class,
                                           shard_strategy::dirichlet),
                         [](const auto& info) {
                           std::string name = shard_strategy_name(info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(Sharding, IidShardsAreBalancedAndDiverse) {
  const auto& ds = shard_dataset();
  sharding_config cfg;  // iid
  const auto shards = make_shards(ds, 5, cfg);
  const auto expected = ds.train_size() / 5;
  for (const auto& s : shards) {
    EXPECT_NEAR(static_cast<double>(s.size()), static_cast<double>(expected), 1.0);
    // near-uniform labels: entropy close to log(10)
    EXPECT_GT(shard_label_entropy(ds, s), 0.85 * std::log(10.0));
  }
}

TEST(Sharding, ByClassShardsSeeFewClasses) {
  const auto& ds = shard_dataset();
  sharding_config cfg;
  cfg.strategy = shard_strategy::by_class;
  const auto shards = make_shards(ds, 5, cfg);
  for (const auto& s : shards) {
    std::set<std::int64_t> labels;
    for (std::int64_t i : s) labels.insert(static_cast<std::int64_t>(ds.train_labels()[i]));
    EXPECT_LE(labels.size(), 3u);  // 10 classes over 5 clients: ~2 each (+1 boundary)
  }
}

TEST(Sharding, DirichletSkewGrowsAsAlphaShrinks) {
  const auto& ds = shard_dataset();
  const auto entropy_at = [&](float alpha) {
    sharding_config cfg;
    cfg.strategy = shard_strategy::dirichlet;
    cfg.dirichlet_alpha = alpha;
    return mean_entropy(ds, make_shards(ds, 5, cfg));
  };
  const double skewed = entropy_at(0.1f);
  const double mild = entropy_at(1.0f);
  const double near_iid = entropy_at(100.0f);
  EXPECT_LT(skewed, mild);
  EXPECT_LT(mild, near_iid);
  EXPECT_GT(near_iid, 0.9 * std::log(10.0));
}

TEST(Sharding, DirichletRejectsNonPositiveAlpha) {
  sharding_config cfg;
  cfg.strategy = shard_strategy::dirichlet;
  cfg.dirichlet_alpha = 0.0f;
  EXPECT_THROW(make_shards(shard_dataset(), 3, cfg), error);
}

TEST(Sharding, MoreClientsThanSamplesThrows) {
  data::dataset_config c = data::cifar10_like();
  c.classes = 2;
  c.train_per_class = 2;
  c.test_per_class = 1;
  const data::dataset tiny{c};
  EXPECT_THROW(make_shards(tiny, 10, sharding_config{}), error);
}

TEST(Sharding, EveryClientKeepsAtLeastOneSampleUnderExtremeSkew) {
  const auto& ds = shard_dataset();
  sharding_config cfg;
  cfg.strategy = shard_strategy::dirichlet;
  cfg.dirichlet_alpha = 0.01f;  // near-degenerate draws
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    cfg.seed = seed;
    const auto shards = make_shards(ds, 8, cfg);
    for (const auto& s : shards) EXPECT_FALSE(s.empty());
  }
}

TEST(Sharding, TinyAlphaStillCoversEverySampleDisjointly) {
  const auto& ds = shard_dataset();
  sharding_config cfg;
  cfg.strategy = shard_strategy::dirichlet;
  cfg.dirichlet_alpha = 0.01f;  // near-degenerate: most classes collapse to one client
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    cfg.seed = seed;
    const auto shards = make_shards(ds, 8, cfg);
    expect_valid_partition(shards, ds.train_size());
  }
}

TEST(Sharding, MoreClientsThanClassesStillPartitions) {
  data::dataset_config c = data::cifar10_like();
  c.classes = 4;
  c.train_per_class = 30;
  c.test_per_class = 5;
  const data::dataset ds{c};
  for (const shard_strategy strategy :
       {shard_strategy::iid, shard_strategy::by_class, shard_strategy::dirichlet}) {
    sharding_config cfg;
    cfg.strategy = strategy;
    cfg.dirichlet_alpha = 0.1f;
    const auto shards = make_shards(ds, 7, cfg);  // 7 clients > 4 classes
    ASSERT_EQ(shards.size(), 7u) << shard_strategy_name(strategy);
    expect_valid_partition(shards, ds.train_size());
  }
}

TEST(Sharding, EmptyShardRedistributionPreservesThePartition) {
  // A tiny dataset with extreme skew forces empty shards before
  // fix_empty_shards moves one sample from the largest shard into each;
  // the result must still be a disjoint full cover with no empties.
  data::dataset_config c = data::cifar10_like();
  c.classes = 2;
  c.train_per_class = 30;
  c.test_per_class = 5;
  const data::dataset tiny{c};
  sharding_config cfg;
  cfg.strategy = shard_strategy::dirichlet;
  cfg.dirichlet_alpha = 0.01f;  // 2 classes over 10 clients: >= 8 empties pre-fix
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    cfg.seed = seed;
    const auto shards = make_shards(tiny, 10, cfg);
    expect_valid_partition(shards, tiny.train_size());
    for (const auto& s : shards) EXPECT_FALSE(s.empty());
  }
}

TEST(Federation, ParticipationFloorsAtHalfBoundaries) {
  // Regression: llround(0.5 * 5) picked 3 of 5 clients — more than the
  // requested fraction. Floor semantics keep it at 2.
  const auto& ds = shard_dataset();
  models::task_spec task;
  task.image_size = ds.config().image_size;
  task.classes = ds.config().classes;
  federation_config fc;
  fc.clients = 5;
  fc.compromised = 0;
  fc.participation = 0.5f;
  federation fed{fc, [&] { return models::make_model("ViT-B/16", task); }, ds};
  for (std::int64_t round = 0; round < 4; ++round)
    EXPECT_EQ(fed.round_participant_ids(round).size(), 2u);

  // Floor must absorb float representation error from either side: 0.3f
  // stores above 0.3 and 0.7f below 0.7 — both must reach their exact count.
  fc.clients = 10;
  fc.participation = 0.3f;
  federation three{fc, [&] { return models::make_model("ViT-B/16", task); }, ds};
  EXPECT_EQ(three.round_participant_ids(0).size(), 3u);
  fc.participation = 0.7f;
  federation seven{fc, [&] { return models::make_model("ViT-B/16", task); }, ds};
  EXPECT_EQ(seven.round_participant_ids(0).size(), 7u);
}

TEST(Federation, RoundSamplingVariesAcrossRoundsAndSeeds) {
  // Regression for the weak seed ^ (0xab5e17 + round * 131) mix: the round
  // seed now routes through a splitmix64 finalizer, so consecutive rounds
  // draw visibly different participant sets.
  const auto& ds = shard_dataset();
  models::task_spec task;
  task.image_size = ds.config().image_size;
  task.classes = ds.config().classes;
  federation_config fc;
  fc.clients = 10;
  fc.compromised = 0;
  fc.participation = 0.4f;
  federation fed{fc, [&] { return models::make_model("ViT-B/16", task); }, ds};

  std::set<std::vector<std::int64_t>> distinct;
  for (std::int64_t round = 0; round < 8; ++round) {
    std::vector<std::int64_t> ids = fed.round_participant_ids(round);
    EXPECT_EQ(ids.size(), 4u);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::set<std::int64_t>(ids.begin(), ids.end()).size(), ids.size());
    distinct.insert(std::move(ids));
  }
  // 8 draws of 4-of-10: collisions are possible, ubiquity is not.
  EXPECT_GE(distinct.size(), 4u);

  // The preview is deterministic per (seed, round) and shifts with the seed.
  federation same{fc, [&] { return models::make_model("ViT-B/16", task); }, ds};
  EXPECT_EQ(fed.round_participant_ids(3), same.round_participant_ids(3));
  fc.seed = fc.seed + 1;
  federation other{fc, [&] { return models::make_model("ViT-B/16", task); }, ds};
  bool any_difference = false;
  for (std::int64_t round = 0; round < 8; ++round)
    any_difference =
        any_difference || fed.round_participant_ids(round) != other.round_participant_ids(round);
  EXPECT_TRUE(any_difference);
}

TEST(Federation, PartialParticipationHalvesTheTraffic) {
  const auto& ds = shard_dataset();
  models::task_spec task;
  task.image_size = ds.config().image_size;
  task.classes = ds.config().classes;
  const fl::model_factory factory = [&] { return models::make_model("ViT-B/16", task); };

  const auto run = [&](float participation) {
    federation_config fc;
    fc.clients = 4;
    fc.compromised = 0;
    fc.local.epochs = 1;
    fc.local.batch_size = 16;
    fc.participation = participation;
    federation fed{fc, factory, ds};
    fed.run_rounds(2);
    return fed.traffic().messages;
  };
  const std::int64_t full = run(1.0f);
  const std::int64_t half = run(0.5f);
  EXPECT_EQ(full, 16);  // 2 rounds x 4 clients x (broadcast + upload)
  EXPECT_EQ(half, 8);   // only 2 of 4 clients per round
}

TEST(Federation, ParticipationAlwaysReachesAtLeastOneClient) {
  const auto& ds = shard_dataset();
  models::task_spec task;
  task.image_size = ds.config().image_size;
  task.classes = ds.config().classes;
  federation_config fc;
  fc.clients = 3;
  fc.compromised = 0;
  fc.local.epochs = 1;
  fc.local.batch_size = 16;
  fc.participation = 0.01f;  // rounds to zero clients; must clamp to one
  federation fed{fc, [&] { return models::make_model("ViT-B/16", task); }, ds};
  fed.run_round();
  EXPECT_EQ(fed.traffic().messages, 2);
  EXPECT_EQ(fed.server().round(), 1);
}

TEST(Federation, InvalidParticipationThrows) {
  const auto& ds = shard_dataset();
  models::task_spec task;
  task.image_size = ds.config().image_size;
  task.classes = ds.config().classes;
  federation_config fc;
  fc.clients = 2;
  fc.compromised = 0;
  fc.participation = 0.0f;
  federation fed{fc, [&] { return models::make_model("ViT-B/16", task); }, ds};
  EXPECT_THROW(fed.run_round(), error);
}

TEST(Federation, RunsUnderNonIidShardingAndRobustAggregation) {
  const auto& ds = shard_dataset();
  federation_config fc;
  fc.clients = 3;
  fc.compromised = 1;
  fc.local.epochs = 1;
  fc.local.batch_size = 16;
  fc.sharding.strategy = shard_strategy::dirichlet;
  fc.sharding.dirichlet_alpha = 0.5f;
  fc.aggregation.rule = aggregation_rule::coordinate_median;

  models::task_spec task;
  task.image_size = ds.config().image_size;
  task.classes = ds.config().classes;
  federation fed{fc, [&] { return models::make_model("ViT-B/16", task); }, ds};
  fed.run_rounds(2);
  EXPECT_GT(fed.global_test_accuracy(), 0.3f);  // learns despite skew + median
  EXPECT_EQ(fed.server().round(), 2);
}

}  // namespace
}  // namespace pelta::fl
