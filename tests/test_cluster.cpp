// Multi-replica serving cluster (src/serve/cluster.h).
//
// The suite pins the cluster contracts:
//   * the router is a pure plan-time policy — round-robin is fair,
//     power-of-two-choices never picks the strictly-more-loaded of its two
//     candidates, and a one-replica cluster batches EXACTLY like
//     plan_batches (the unification evidence for the shared simclock);
//   * chaos is drain-and-requeue — killing a replica mid-stream loses no
//     request and duplicates none, at plan level and through execution;
//   * the autoscaler has hysteresis — a square-wave load produces grouped
//     scale phases, never tick-to-tick flapping;
//   * execution is bit-deterministic — pooled (PELTA_THREADS=8) and
//     forced-serial runs produce byte-identical reports, and every logits
//     row matches the single-server path bit for bit.
// The static initializer pins PELTA_THREADS=8 (without overriding an
// explicit environment setting) so replica tasks really cross threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "models/vit.h"
#include "serve/cluster.h"
#include "serve/server.h"
#include "tensor/parallel.h"

namespace pelta {
namespace {

const bool k_threads_pinned = [] {
  setenv("PELTA_THREADS", "8", /*overwrite=*/0);
  return true;
}();

models::vit_config tiny_vit_config(std::uint64_t seed = 31) {
  models::vit_config c;
  c.name = "cluster-test-vit";
  c.image_size = 16;
  c.patch_size = 4;
  c.dim = 16;
  c.heads = 2;
  c.blocks = 1;
  c.mlp_hidden = 32;
  c.classes = 4;
  c.seed = seed;
  return c;
}

// Ids offset from the workload index so an unwritten (default -1) or
// zero-initialized result row can never masquerade as a served request.
std::vector<serve::classify_request> make_requests(std::int64_t n,
                                                   const std::vector<double>& submit_ns,
                                                   std::uint64_t seed = 7) {
  rng gen{seed};
  std::vector<serve::classify_request> reqs;
  reqs.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    serve::classify_request r;
    r.id = 100 + i;
    r.image = tensor::rand_uniform(gen, {3, 16, 16});
    r.submit_ns = submit_ns[static_cast<std::size_t>(i)];
    reqs.push_back(std::move(r));
  }
  return reqs;
}

bool bits_equal(const tensor& a, const tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data().data(), b.data().data(), a.data().size() * sizeof(float)) == 0;
}

// Every request index appears in EXACTLY one surviving batch; aborted
// batches only ever hold requests that survive elsewhere.
void expect_exactly_once_coverage(const serve::cluster_plan& plan, std::size_t n) {
  std::vector<int> served(n, 0);
  for (const serve::planned_cluster_batch& pb : plan.batches) {
    if (pb.aborted) continue;
    for (std::size_t m : pb.batch.members) {
      ASSERT_LT(m, n);
      ++served[m];
    }
  }
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(served[i], 1) << "workload index " << i << " served " << served[i] << " times";
  for (std::size_t i = 0; i < n; ++i) EXPECT_GE(plan.final_replica[i], 0);
}

// Byte-level equality of two cluster reports — doubles compare with == on
// purpose: pooled and forced-serial execution must agree EXACTLY.
void expect_cluster_reports_identical(const serve::cluster_report& got,
                                      const serve::cluster_report& want) {
  EXPECT_EQ(got.requests, want.requests);
  EXPECT_EQ(got.first_submit_ns, want.first_submit_ns);
  EXPECT_EQ(got.last_finish_ns, want.last_finish_ns);
  EXPECT_EQ(got.enclave_ns, want.enclave_ns);
  EXPECT_EQ(got.hotcalls, want.hotcalls);
  ASSERT_EQ(got.results.size(), want.results.size());
  for (std::size_t i = 0; i < want.results.size(); ++i) {
    const serve::classify_result& g = got.results[i];
    const serve::classify_result& w = want.results[i];
    EXPECT_EQ(g.request_id, w.request_id) << "request " << i;
    EXPECT_EQ(g.predicted, w.predicted) << "request " << i;
    ASSERT_TRUE(bits_equal(g.logits, w.logits)) << "request " << i;
    EXPECT_EQ(g.batch_index, w.batch_index) << "request " << i;
    EXPECT_EQ(g.batch_size, w.batch_size) << "request " << i;
    EXPECT_EQ(g.finish_ns, w.finish_ns) << "request " << i;
    EXPECT_EQ(g.latency.queue_ns, w.latency.queue_ns) << "request " << i;
    EXPECT_EQ(g.latency.batch_ns, w.latency.batch_ns) << "request " << i;
    EXPECT_EQ(g.latency.enclave_ns, w.latency.enclave_ns) << "request " << i;
    EXPECT_EQ(g.latency.compute_ns, w.latency.compute_ns) << "request " << i;
  }
  ASSERT_EQ(got.replicas.size(), want.replicas.size());
  for (std::size_t s = 0; s < want.replicas.size(); ++s) {
    const serve::replica_report& g = got.replicas[s];
    const serve::replica_report& w = want.replicas[s];
    EXPECT_EQ(g.requests, w.requests) << "slot " << s;
    EXPECT_EQ(g.enclave_ns, w.enclave_ns) << "slot " << s;
    EXPECT_EQ(g.hotcalls, w.hotcalls) << "slot " << s;
    EXPECT_EQ(g.last_finish_ns, w.last_finish_ns) << "slot " << s;
    ASSERT_EQ(g.batches.size(), w.batches.size()) << "slot " << s;
    for (std::size_t b = 0; b < w.batches.size(); ++b) {
      EXPECT_EQ(g.batches[b].request_ids, w.batches[b].request_ids);
      EXPECT_EQ(g.batches[b].close_ns, w.batches[b].close_ns);
      EXPECT_EQ(g.batches[b].exec_start_ns, w.batches[b].exec_start_ns);
      EXPECT_EQ(g.batches[b].enclave_ns, w.batches[b].enclave_ns);
      EXPECT_EQ(g.batches[b].compute_ns, w.batches[b].compute_ns);
      EXPECT_EQ(g.batches[b].hotcalls, w.batches[b].hotcalls);
    }
  }
}

serve::cluster_config base_config(std::int64_t replicas,
                                  serve::router_policy policy = serve::router_policy::round_robin) {
  serve::cluster_config c;
  c.replicas = replicas;
  c.policy = policy;
  c.server.policy = {4, 1e6};
  return c;
}

// ---- router policies (plan level) ------------------------------------------

TEST(ClusterPlan, RoundRobinIsFair) {
  std::vector<double> stamps;
  std::vector<std::int64_t> ids;
  for (std::int64_t i = 0; i < 31; ++i) {
    stamps.push_back(static_cast<double>(i) * 3e5);
    ids.push_back(i);
  }
  const serve::cluster_plan plan = serve::plan_cluster(base_config(3), stamps, ids);
  ASSERT_EQ(plan.routed_per_slot.size(), 3u);
  const auto [lo, hi] =
      std::minmax_element(plan.routed_per_slot.begin(), plan.routed_per_slot.end());
  EXPECT_LE(*hi - *lo, 1) << "round-robin counts diverged";
  EXPECT_EQ(plan.routed_per_slot[0] + plan.routed_per_slot[1] + plan.routed_per_slot[2], 31);
  EXPECT_EQ(plan.requeued, 0);
  expect_exactly_once_coverage(plan, stamps.size());
}

TEST(ClusterPlan, PowerOfTwoNeverPicksTheStrictlyMoreLoadedCandidate) {
  const std::vector<double> stamps = serve::make_poisson_arrivals(200, 2e5, 11);
  std::vector<std::int64_t> ids;
  for (std::int64_t i = 0; i < 200; ++i) ids.push_back(i);
  const serve::cluster_plan plan =
      serve::plan_cluster(base_config(4, serve::router_policy::power_of_two), stamps, ids);
  ASSERT_EQ(plan.decisions.size(), 200u);
  std::int64_t contested = 0;
  for (const serve::route_decision& d : plan.decisions) {
    if (d.candidate_b == -1) continue;  // only one live replica at the time
    ++contested;
    ASSERT_TRUE(d.replica == d.candidate_a || d.replica == d.candidate_b);
    const std::int64_t picked = d.replica == d.candidate_a ? d.load_a : d.load_b;
    const std::int64_t other = d.replica == d.candidate_a ? d.load_b : d.load_a;
    EXPECT_LE(picked, other) << "p2c picked the more loaded replica for request " << d.request;
    if (d.load_a == d.load_b) {  // tie: the lower slot index wins
      EXPECT_EQ(d.replica, std::min(d.candidate_a, d.candidate_b));
    }
  }
  EXPECT_GT(contested, 0);
  expect_exactly_once_coverage(plan, stamps.size());
}

TEST(ClusterPlan, LeastLoadedNeverPicksAboveTheMinimum) {
  const std::vector<double> stamps = serve::make_poisson_arrivals(120, 3e5, 5);
  std::vector<std::int64_t> ids;
  for (std::int64_t i = 0; i < 120; ++i) ids.push_back(i);
  const serve::cluster_plan plan =
      serve::plan_cluster(base_config(3, serve::router_policy::least_loaded), stamps, ids);
  expect_exactly_once_coverage(plan, stamps.size());
}

// A one-replica cluster IS the single-server batcher: same members, same
// open/close stamps, same close reasons as plan_batches on the same stream.
TEST(ClusterPlan, SingleReplicaBatchesExactlyLikePlanBatches) {
  const std::vector<double> stamps = serve::make_poisson_arrivals(150, 6e5, 23);
  std::vector<std::int64_t> ids;
  for (std::int64_t i = 0; i < 150; ++i) ids.push_back(i);
  const serve::cluster_config config = base_config(1);
  const serve::cluster_plan plan = serve::plan_cluster(config, stamps, ids);
  const serve::batch_plan flat = serve::plan_batches(stamps, ids, config.server.policy);
  ASSERT_EQ(plan.batches.size(), flat.batches.size());
  for (std::size_t b = 0; b < flat.batches.size(); ++b) {
    const serve::planned_batch& got = plan.batches[b].batch;
    const serve::planned_batch& want = flat.batches[b];
    EXPECT_FALSE(plan.batches[b].aborted);
    EXPECT_EQ(plan.batches[b].replica, 0);
    EXPECT_EQ(got.members, want.members) << "batch " << b;
    EXPECT_EQ(got.open_ns, want.open_ns) << "batch " << b;
    EXPECT_EQ(got.close_ns, want.close_ns) << "batch " << b;
    EXPECT_EQ(got.closed_by_fill, want.closed_by_fill) << "batch " << b;
    EXPECT_EQ(got.closed_by_drain, want.closed_by_drain) << "batch " << b;
  }
}

// ---- chaos (plan level) ----------------------------------------------------

TEST(ClusterPlan, KillOneReplicaLosesAndDuplicatesNothing) {
  // Dense enough that every replica has work in flight when the kill lands.
  const std::vector<double> stamps = serve::make_poisson_arrivals(160, 2e5, 13);
  std::vector<std::int64_t> ids;
  for (std::int64_t i = 0; i < 160; ++i) ids.push_back(i);
  serve::cluster_config config = base_config(3);
  const double mid = stamps[80];
  config.chaos.push_back({mid, 1, /*kill=*/true});
  config.chaos.push_back({mid + 2e7, 1, /*kill=*/false});  // later restart

  const serve::cluster_plan plan = serve::plan_cluster(config, stamps, ids);
  EXPECT_GT(plan.requeued, 0) << "the kill should catch requests in flight";
  bool any_aborted = false;
  for (const serve::planned_cluster_batch& pb : plan.batches) any_aborted |= pb.aborted;
  EXPECT_TRUE(any_aborted);
  expect_exactly_once_coverage(plan, stamps.size());
  // While slot 1 is down, nothing opens on it.
  for (const serve::planned_cluster_batch& pb : plan.batches) {
    if (pb.replica != 1 || pb.aborted) continue;
    EXPECT_TRUE(pb.batch.open_ns <= mid || pb.batch.open_ns >= mid + 2e7)
        << "batch opened on a dead replica at " << pb.batch.open_ns;
  }
}

TEST(ClusterPlan, KillingEveryReplicaWithoutRestartIsRejected) {
  const std::vector<double> stamps{0.0, 1e5, 5e8};
  const std::vector<std::int64_t> ids{0, 1, 2};
  serve::cluster_config config = base_config(2);
  config.chaos.push_back({2e8, 0, true});
  config.chaos.push_back({2e8, 1, true});
  EXPECT_THROW(serve::plan_cluster(config, stamps, ids), error);
}

TEST(ClusterPlan, HeldRequestsFlushAtTheRestart) {
  const std::vector<double> stamps{0.0, 1e5, 5e8};  // the last arrives into a dead fleet
  const std::vector<std::int64_t> ids{0, 1, 2};
  serve::cluster_config config = base_config(2);
  config.chaos.push_back({2e8, 0, true});
  config.chaos.push_back({2e8, 1, true});
  config.chaos.push_back({6e8, 0, false});
  const serve::cluster_plan plan = serve::plan_cluster(config, stamps, ids);
  expect_exactly_once_coverage(plan, stamps.size());
  EXPECT_EQ(plan.final_replica[2], 0);
  // The held request routes when the restart lands, not at its own stamp.
  const serve::route_decision& d = plan.decisions.back();
  EXPECT_EQ(d.request, 2u);
  EXPECT_EQ(d.at_ns, 6e8);
}

// ---- autoscaler (plan level) -----------------------------------------------

TEST(ClusterPlan, AutoscalerRidesASquareWaveWithoutFlapping) {
  // Two dense bursts separated by silence: 60 arrivals at 0.1 ms gaps
  // (~10/ms offered vs ~2.2/ms per-replica capacity), 30 ms of quiet, then
  // the same burst again.
  std::vector<double> stamps;
  std::vector<std::int64_t> ids;
  for (std::int64_t i = 0; i < 60; ++i) stamps.push_back(static_cast<double>(i) * 1e5);
  for (std::int64_t i = 0; i < 60; ++i) stamps.push_back(4e7 + static_cast<double>(i) * 1e5);
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(stamps.size()); ++i) ids.push_back(i);

  serve::cluster_config config = base_config(1);
  config.autoscale.enabled = true;
  config.autoscale.tick_ns = 1e6;
  config.autoscale.high_watermark = 6.0;
  config.autoscale.low_watermark = 1.0;
  config.autoscale.hysteresis_ticks = 3;
  config.autoscale.min_replicas = 1;
  config.autoscale.max_replicas = 4;

  const serve::cluster_plan plan = serve::plan_cluster(config, stamps, ids);
  expect_exactly_once_coverage(plan, stamps.size());
  EXPECT_EQ(plan.slots, 4);
  EXPECT_GT(plan.peak_live, 1) << "the burst should trigger a scale-up";

  bool any_up = false;
  bool any_down = false;
  std::int64_t direction_changes = 0;
  for (std::size_t i = 0; i < plan.scales.size(); ++i) {
    const serve::scale_decision& d = plan.scales[i];
    (d.up ? any_up : any_down) = true;
    EXPECT_GE(d.live_after, config.autoscale.min_replicas);
    EXPECT_LE(d.live_after, config.autoscale.max_replicas);
    if (i > 0) {
      if (plan.scales[i - 1].up != d.up) ++direction_changes;
      // Streaks rebuild from zero after every action: consecutive decisions
      // are at least hysteresis_ticks ticks apart — the no-flapping bound.
      EXPECT_GE(d.at_ns - plan.scales[i - 1].at_ns,
                static_cast<double>(config.autoscale.hysteresis_ticks) *
                    config.autoscale.tick_ns);
    }
  }
  EXPECT_TRUE(any_up);
  EXPECT_TRUE(any_down);
  // A two-burst square wave yields at most grow/shrink/grow/shrink phases —
  // three direction changes. Flapping would alternate far more often.
  EXPECT_LE(direction_changes, 3);
}

// ---- execution -------------------------------------------------------------

class ClusterTest : public ::testing::Test {
protected:
  ClusterTest() : model_{tiny_vit_config()} {}

  models::vit_model model_;
};

TEST_F(ClusterTest, PooledAndSerialRunsAreByteIdentical) {
  const std::vector<double> stamps = serve::make_poisson_arrivals(48, 5e5, 19);
  const std::vector<serve::classify_request> reqs = make_requests(48, stamps);
  serve::cluster_config config = base_config(3, serve::router_policy::power_of_two);
  config.chaos.push_back({stamps[24], 2, true});
  config.chaos.push_back({stamps[24] + 1.5e7, 2, false});

  serve::model_backend backend{model_};
  serve::cluster fleet{backend, config};
  ASSERT_GE(parallel_thread_count(), 2) << "pooled run would not cross threads";
  const serve::cluster_report pooled = fleet.run(reqs);
  serve::cluster_report serial;
  {
    serial_guard guard;  // every replica task runs inline on this thread
    serial = fleet.run(reqs);
  }
  expect_cluster_reports_identical(pooled, serial);
}

TEST_F(ClusterTest, EveryLogitsRowMatchesTheSingleServerBitwise) {
  const std::vector<double> stamps = serve::make_poisson_arrivals(40, 6e5, 29);
  const std::vector<serve::classify_request> reqs = make_requests(40, stamps);
  serve::cluster_config config = base_config(3, serve::router_policy::least_loaded);

  serve::model_backend backend{model_};
  serve::cluster fleet{backend, config};
  const serve::cluster_report fleet_report = fleet.run(reqs);

  serve::model_backend single_backend{model_};
  tee::enclave enclave;
  serve::server single{single_backend, enclave, config.server};
  const serve::serving_report single_report = single.run(reqs);

  ASSERT_EQ(fleet_report.results.size(), single_report.results.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const serve::classify_result& f = fleet_report.results[i];
    const serve::classify_result& s = single_report.results[i];
    EXPECT_EQ(f.request_id, s.request_id);
    EXPECT_EQ(f.predicted, s.predicted) << "request " << i;
    ASSERT_TRUE(bits_equal(f.logits, s.logits))
        << "cluster logits diverged from the single server for request " << i;
  }
}

TEST_F(ClusterTest, ChaosRunServesEveryRequestExactlyOnce) {
  const std::vector<double> stamps = serve::make_poisson_arrivals(60, 4e5, 37);
  const std::vector<serve::classify_request> reqs = make_requests(60, stamps);
  serve::cluster_config config = base_config(3);
  config.chaos.push_back({stamps[30], 0, true});
  config.chaos.push_back({stamps[30] + 2e7, 0, false});

  serve::model_backend backend{model_};
  serve::cluster fleet{backend, config};
  const serve::cluster_report report = fleet.run(reqs);
  EXPECT_GT(report.plan.requeued, 0);

  // Result rows: every request answered under its own id, none defaulted.
  ASSERT_EQ(report.results.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i)
    EXPECT_EQ(report.results[i].request_id, reqs[i].id) << "row " << i;

  // Executed batches: each id exactly once across all replicas.
  std::map<std::int64_t, int> seen;
  for (const serve::replica_report& rep : report.replicas)
    for (const serve::batch_record& b : rep.batches)
      for (std::int64_t id : b.request_ids) ++seen[id];
  ASSERT_EQ(seen.size(), reqs.size());
  for (const serve::classify_request& r : reqs)
    EXPECT_EQ(seen[r.id], 1) << "request id " << r.id;

  // Replica totals commit in slot order and add up.
  std::int64_t total = 0;
  for (const serve::replica_report& rep : report.replicas) total += rep.requests;
  EXPECT_EQ(total, static_cast<std::int64_t>(reqs.size()));
}

}  // namespace
}  // namespace pelta
