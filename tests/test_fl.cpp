// Federated-learning substrate: sharding, FedAvg, rounds, the compromised
// client of Fig. 1, and network accounting.
#include <gtest/gtest.h>

#include <set>

#include "fl/federation.h"
#include "models/trainer.h"
#include "models/vit.h"
#include "tensor/ops.h"

namespace pelta::fl {
namespace {

data::dataset small_dataset() {
  data::dataset_config c = data::cifar10_like();
  c.classes = 4;
  c.train_per_class = 30;
  c.test_per_class = 10;
  return data::dataset{c};
}

model_factory tiny_vit_factory() {
  return [] {
    models::vit_config c;
    c.name = "fl-vit";
    c.image_size = 16;
    c.patch_size = 4;
    c.dim = 16;
    c.heads = 2;
    c.blocks = 1;
    c.mlp_hidden = 32;
    c.classes = 4;
    c.seed = 31;  // identical initial params on server and clients
    return std::make_unique<models::vit_model>(c);
  };
}

TEST(Network, RecordsMessagesBytesLatency) {
  network net{2.0, 1000.0};
  const double ns = net.record(500);
  EXPECT_NEAR(ns, 1000.0 + 1000.0, 1e-9);
  net.record(100);
  EXPECT_EQ(net.stats().messages, 2);
  EXPECT_EQ(net.stats().bytes, 600);
  net.reset();
  EXPECT_EQ(net.stats().messages, 0);
}

TEST(Client, ReceiveGlobalInstallsParameters) {
  const data::dataset ds = small_dataset();
  auto m1 = tiny_vit_factory()();
  auto m2 = tiny_vit_factory()();
  rng g{1};
  m1->params().get("head.w").value = tensor::randn(g, {16, 4});
  const byte_buffer payload = m1->params().save_values();

  fl_client client{0, std::move(m2), {0, 1, 2, 3}, ds};
  client.receive_global(payload);
  const tensor& w = client.local_model().params().get("head.w").value;
  EXPECT_FLOAT_EQ(w[0], m1->params().get("head.w").value[0]);
}

TEST(Client, LocalUpdateTrainsOnShard) {
  const data::dataset ds = small_dataset();
  fl_client client{0, tiny_vit_factory()(), {0, 1, 2, 3, 30, 31, 60, 61, 90, 91}, ds};
  const byte_buffer before = client.local_model().params().save_values();

  local_train_config cfg;
  cfg.epochs = 2;
  const model_update u = client.local_update(cfg);
  EXPECT_EQ(u.client_id, 0);
  EXPECT_EQ(u.sample_count, 10);
  EXPECT_NE(u.parameters, before);  // parameters moved
}

TEST(Client, EmptyShardRejected) {
  const data::dataset ds = small_dataset();
  EXPECT_THROW((fl_client{0, tiny_vit_factory()(), {}, ds}), error);
}

TEST(Server, FedAvgExactWeightedMean) {
  auto global = tiny_vit_factory()();
  nn::param_store& gp = global->params();
  const std::size_t n_params = gp.size();
  fl_server server{std::move(global)};

  // Two synthetic updates: all-ones (10 samples) and all-fives (30 samples);
  // FedAvg must land at 0.25*1 + 0.75*5 = 4.
  auto a = tiny_vit_factory()();
  auto b = tiny_vit_factory()();
  for (std::size_t k = 0; k < n_params; ++k) {
    a->params().at(k).value.fill_(1.0f);
    b->params().at(k).value.fill_(5.0f);
  }
  model_update ua{0, 10, a->params().save_values()};
  model_update ub{1, 30, b->params().save_values()};
  server.aggregate({ua, ub});

  for (std::size_t k = 0; k < n_params; ++k)
    for (float v : server.global_model().params().at(k).value.data())
      ASSERT_NEAR(v, 4.0f, 1e-5f);
  EXPECT_EQ(server.round(), 1);
}

TEST(Server, RejectsEmptyAndMalformedUpdates) {
  fl_server server{tiny_vit_factory()()};
  EXPECT_THROW(server.aggregate({}), error);
  model_update bad{0, 4, byte_buffer{1, 2, 3}};
  EXPECT_THROW(server.aggregate({bad}), error);
  model_update zero{0, 0, server.broadcast()};
  EXPECT_THROW(server.aggregate({zero}), error);
}

TEST(Federation, ShardsArePartition) {
  const data::dataset ds = small_dataset();
  federation_config cfg;
  cfg.clients = 4;
  cfg.compromised = 1;
  federation fed{cfg, tiny_vit_factory(), ds};
  EXPECT_EQ(fed.client_count(), 4);
  std::int64_t total = 0;
  for (std::int64_t c = 0; c < 4; ++c) total += fed.client(c).shard_size();
  EXPECT_EQ(total, ds.train_size());
  EXPECT_EQ(fed.compromised_clients().size(), 1u);
}

TEST(Federation, RoundsImproveGlobalModel) {
  const data::dataset ds = small_dataset();
  federation_config cfg;
  cfg.clients = 3;
  cfg.compromised = 0;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 16;
  cfg.local.lr = 4e-3f;
  federation fed{cfg, tiny_vit_factory(), ds};

  const float before = fed.global_test_accuracy();
  fed.run_rounds(4);
  const float after = fed.global_test_accuracy();
  EXPECT_GT(after, before + 0.2f) << "before=" << before << " after=" << after;
  EXPECT_GT(after, 0.7f);
}

TEST(Federation, TrafficAccountsBothLegs) {
  const data::dataset ds = small_dataset();
  federation_config cfg;
  cfg.clients = 2;
  cfg.compromised = 0;
  cfg.local.epochs = 1;
  federation fed{cfg, tiny_vit_factory(), ds};
  fed.run_round();
  // broadcast + upload per client
  EXPECT_EQ(fed.traffic().messages, 4);
  const std::int64_t payload =
      static_cast<std::int64_t>(fed.server().broadcast().size());
  EXPECT_EQ(fed.traffic().bytes, 4 * payload);
}

TEST(Federation, CompromisedClientCraftsAdversarialExample) {
  const data::dataset ds = small_dataset();
  federation_config cfg;
  cfg.clients = 2;
  cfg.compromised = 1;
  cfg.local.epochs = 2;
  cfg.local.lr = 4e-3f;
  federation fed{cfg, tiny_vit_factory(), ds};
  fed.run_rounds(4);

  // The attacker probes its local copy after the final broadcast.
  const byte_buffer global = fed.server().broadcast();
  compromised_client* attacker = fed.compromised_clients()[0];
  attacker->receive_global(global);

  // Pick a sample the local model classifies correctly.
  std::int64_t idx = -1;
  for (std::int64_t i = 0; i < ds.test_size(); ++i)
    if (models::predict_one(attacker->local_model(), ds.test_image(i)) == ds.test_label(i)) {
      idx = i;
      break;
    }
  ASSERT_GE(idx, 0);

  const attacks::suite_params p = attacks::table2_cifar_params();
  const attacks::attack_result clear = attacker->craft_adversarial(
      ds.test_image(idx), ds.test_label(idx), /*shielded=*/false, attacks::attack_kind::pgd, p,
      101);
  EXPECT_LE(attacks::linf_distance(clear.adversarial, ds.test_image(idx)), p.eps + 1e-5f);

  const attacks::attack_result shielded = attacker->craft_adversarial(
      ds.test_image(idx), ds.test_label(idx), /*shielded=*/true, attacks::attack_kind::pgd, p,
      101);
  // PELTA on the local copy: the probe sees only the masked view; the
  // crafted sample is far less likely to fool the model. At minimum the
  // clear attack must not be weaker than the shielded one on this sample.
  EXPECT_GE(static_cast<int>(clear.misclassified), static_cast<int>(shielded.misclassified));
}

TEST(Federation, AdversarialExampleTransfersToVictim) {
  // Fig. 1: the sample crafted on the attacker's copy is replayed against a
  // victim running the same broadcast model — same parameters, same result.
  const data::dataset ds = small_dataset();
  federation_config cfg;
  cfg.clients = 3;
  cfg.compromised = 1;
  cfg.local.epochs = 2;
  cfg.local.lr = 4e-3f;
  federation fed{cfg, tiny_vit_factory(), ds};
  fed.run_rounds(4);

  const byte_buffer global = fed.server().broadcast();
  compromised_client* attacker = fed.compromised_clients()[0];
  attacker->receive_global(global);
  fl_client& victim = fed.client(0);
  victim.receive_global(global);

  const attacks::suite_params p = attacks::table2_cifar_params();
  std::int64_t transferred = 0, crafted = 0;
  for (std::int64_t i = 0; i < 10; ++i) {
    if (models::predict_one(attacker->local_model(), ds.test_image(i)) != ds.test_label(i))
      continue;
    const attacks::attack_result r = attacker->craft_adversarial(
        ds.test_image(i), ds.test_label(i), false, attacks::attack_kind::pgd, p, 200 + i);
    if (!r.misclassified) continue;
    ++crafted;
    if (models::predict_one(victim.local_model(), r.adversarial) != ds.test_label(i))
      ++transferred;
  }
  ASSERT_GT(crafted, 0);
  EXPECT_EQ(transferred, crafted);  // identical weights -> perfect replay
}

}  // namespace
}  // namespace pelta::fl
