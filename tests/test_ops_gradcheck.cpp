// Property-based gradient checking: every differentiable op's backward pass
// is validated against central finite differences across random seeds
// (parameterized suite), for every parent it feeds gradients to.
#include <gtest/gtest.h>

#include <functional>

#include "autodiff/gradcheck.h"
#include "autodiff/graph.h"
#include "autodiff/ops_conv.h"
#include "autodiff/ops_elementwise.h"
#include "autodiff/ops_linalg.h"
#include "autodiff/ops_loss.h"
#include "autodiff/ops_norm.h"
#include "tensor/ops.h"

namespace pelta::ad {
namespace {

using op_factory = std::function<op_ptr()>;
using input_gen = std::function<tensor(rng&, const shape_t&)>;

tensor default_gen(rng& g, const shape_t& s) { return tensor::randn(g, s); }

// Inputs pushed away from zero: keeps finite differences off ReLU/maxpool kinks.
tensor kink_free_gen(rng& g, const shape_t& s) {
  tensor t = tensor::randn(g, s);
  for (float& v : t.data()) v += (v >= 0.0f ? 0.25f : -0.25f);
  return t;
}

struct op_case {
  std::string name;
  op_factory make;
  std::vector<shape_t> parent_shapes;
  std::vector<std::size_t> check_parents;  // which parents receive gradients
  input_gen gen = default_gen;
  float tol = 0.05f;
};

// Gradcheck one parent of one op: analytic adjoint vs numeric gradient of
// dot(op(parents), seed) with respect to parents[wrt].
float gradcheck_parent(const op_case& c, std::size_t wrt, std::uint64_t seed) {
  rng g{seed};
  std::vector<tensor> values;
  for (const shape_t& s : c.parent_shapes) values.push_back(c.gen(g, s));

  graph gr;
  std::vector<node_id> parents;
  for (const tensor& v : values) parents.push_back(gr.add_input(v));
  const node_id out = gr.add_transform(c.make(), parents);
  const tensor seed_t = tensor::randn(g, gr.value(out).shape());
  gr.backward_from(out, seed_t);
  const tensor analytic = gr.adjoint(parents[wrt]);

  const auto f = [&](const tensor& probe) {
    graph g2;
    std::vector<node_id> p2;
    for (std::size_t i = 0; i < values.size(); ++i)
      p2.push_back(g2.add_input(i == wrt ? probe : values[i]));
    const node_id o2 = g2.add_transform(c.make(), p2);
    return ops::dot(g2.value(o2), seed_t);
  };
  const tensor numeric = numeric_grad(f, values[wrt], 1e-2f);
  return max_rel_error(analytic, numeric);
}

std::vector<op_case> all_cases() {
  std::vector<op_case> cases;
  cases.push_back({"add", [] { return make_add(); }, {{2, 3}, {2, 3}}, {0, 1}});
  cases.push_back(
      {"add_broadcast_bias", [] { return make_add_broadcast(); }, {{4, 3}, {3}}, {0, 1}});
  cases.push_back(
      {"add_broadcast_posemb", [] { return make_add_broadcast(); }, {{2, 5, 3}, {5, 3}}, {0, 1}});
  cases.push_back({"mul", [] { return make_mul(); }, {{2, 4}, {2, 4}}, {0, 1}});
  cases.push_back({"scale", [] { return make_scale(-1.7f); }, {{3, 3}}, {0}});
  cases.push_back({"affine", [] { return make_affine(4.0f, -0.5f); }, {{3, 3}}, {0}});
  cases.push_back({"relu", [] { return make_relu(); }, {{4, 4}}, {0}, kink_free_gen});
  cases.push_back({"gelu", [] { return make_gelu(); }, {{4, 4}}, {0}});
  cases.push_back({"softmax", [] { return make_softmax_lastdim(); }, {{3, 5}}, {0}});
  cases.push_back({"log_softmax", [] { return make_log_softmax_lastdim(); }, {{3, 5}}, {0}});
  cases.push_back({"matmul", [] { return make_matmul(); }, {{3, 4}, {4, 2}}, {0, 1}});
  cases.push_back({"bmm", [] { return make_bmm(); }, {{2, 3, 4}, {2, 4, 2}}, {0, 1}});
  cases.push_back({"transpose", [] { return make_transpose_last2(); }, {{2, 3, 4}}, {0}});
  cases.push_back({"reshape", [] { return make_reshape({6, 2}); }, {{3, 4}}, {0}});
  cases.push_back({"slice_lastdim", [] { return make_slice_lastdim(1, 2); }, {{2, 3, 4}}, {0}});
  cases.push_back({"concat_lastdim",
                   [] { return make_concat_lastdim(); },
                   {{2, 3, 2}, {2, 3, 3}},
                   {0, 1}});
  cases.push_back(
      {"prepend_token", [] { return make_prepend_token(); }, {{4}, {2, 3, 4}}, {0, 1}});
  cases.push_back({"slice_row", [] { return make_slice_row(1); }, {{2, 3, 4}}, {0}});
  cases.push_back({"linear",
                   [] { return make_linear(true); },
                   {{3, 4}, {4, 2}, {2}},
                   {0, 1, 2}});
  cases.push_back({"linear_nobias", [] { return make_linear(false); }, {{3, 4}, {4, 2}}, {0, 1}});
  cases.push_back({"token_linear",
                   [] { return make_token_linear(true); },
                   {{2, 3, 4}, {4, 5}, {5}},
                   {0, 1, 2}});
  cases.push_back({"conv2d",
                   [] { return make_conv2d(1, 1, true); },
                   {{1, 2, 4, 4}, {3, 2, 3, 3}, {3}},
                   {0, 1, 2}});
  cases.push_back({"conv2d_stride2",
                   [] { return make_conv2d(2, 1, false); },
                   {{1, 2, 6, 6}, {3, 2, 3, 3}},
                   {0, 1}});
  // Stride/padding edge cases: valid (pad=0) convs, pad wider than kernel//2,
  // stride 3, 1x1 kernels, rectangular inputs, batch > 1.
  cases.push_back({"conv2d_pad0",
                   [] { return make_conv2d(1, 0, true); },
                   {{1, 2, 5, 5}, {3, 2, 3, 3}, {3}},
                   {0, 1, 2}});
  cases.push_back({"conv2d_stride2_pad0",
                   [] { return make_conv2d(2, 0, false); },
                   {{1, 2, 7, 7}, {3, 2, 3, 3}},
                   {0, 1}});
  cases.push_back({"conv2d_stride2_pad2",
                   [] { return make_conv2d(2, 2, true); },
                   {{1, 2, 5, 5}, {2, 2, 3, 3}, {2}},
                   {0, 1, 2}});
  cases.push_back({"conv2d_stride3",
                   [] { return make_conv2d(3, 1, false); },
                   {{1, 2, 8, 8}, {3, 2, 3, 3}},
                   {0, 1}});
  cases.push_back({"conv2d_1x1",
                   [] { return make_conv2d(1, 0, false); },
                   {{1, 3, 4, 4}, {2, 3, 1, 1}},
                   {0, 1}});
  cases.push_back({"conv2d_rect_batch2",
                   [] { return make_conv2d(1, 1, true); },
                   {{2, 2, 4, 6}, {3, 2, 3, 3}, {3}},
                   {0, 1, 2}});
  cases.push_back(
      {"maxpool", [] { return make_maxpool2x2(); }, {{1, 2, 4, 4}}, {0}, kink_free_gen});
  cases.push_back({"global_avgpool", [] { return make_global_avgpool(); }, {{2, 3, 4, 4}}, {0}});
  cases.push_back({"patchify", [] { return make_patchify(2); }, {{1, 3, 4, 4}}, {0}});
  cases.push_back({"layernorm",
                   [] { return make_layernorm_lastdim(); },
                   {{3, 6}, {6}, {6}},
                   {0, 1, 2}});
  cases.push_back({"groupnorm",
                   [] { return make_groupnorm(2); },
                   {{2, 4, 3, 3}, {4}, {4}},
                   {0, 1, 2}});
  // Norm edge cases: one group (layernorm-over-channels) and one group per
  // channel (instance-norm-like).
  cases.push_back({"groupnorm_1group",
                   [] { return make_groupnorm(1); },
                   {{2, 4, 3, 3}, {4}, {4}},
                   {0, 1, 2}});
  cases.push_back({"groupnorm_per_channel",
                   [] { return make_groupnorm(4); },
                   {{2, 4, 3, 3}, {4}, {4}},
                   {0, 1, 2}});
  cases.push_back({"layernorm_eps",
                   [] { return make_layernorm_lastdim(1e-3f); },
                   {{2, 4, 6}, {6}, {6}},
                   {0, 1, 2}});
  cases.push_back(
      {"weight_standardize", [] { return make_weight_standardize(); }, {{3, 2, 3, 3}}, {0}});
  return cases;
}

class OpGradcheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OpGradcheck, AllOpsMatchFiniteDifferences) {
  const std::uint64_t seed = GetParam();
  for (const op_case& c : all_cases()) {
    for (std::size_t wrt : c.check_parents) {
      const float err = gradcheck_parent(c, wrt, seed);
      EXPECT_LT(err, c.tol) << "op=" << c.name << " parent=" << wrt << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpGradcheck, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---- ops whose state/setup does not fit the generic harness ------------------

TEST(BatchNormGradcheck, TrainMode) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    rng g{seed};
    const tensor x0 = tensor::randn(g, {3, 2, 3, 3});
    const tensor ga0 = tensor::rand_uniform(g, {2}, 0.5f, 1.5f);
    const tensor be0 = tensor::randn(g, {2});
    const tensor seed_t = tensor::randn(g, {3, 2, 3, 3});

    batchnorm_stats stats{tensor::zeros({2}), tensor::ones({2})};
    graph gr;
    const node_id x = gr.add_input(x0);
    const node_id ga = gr.add_input(ga0);
    const node_id be = gr.add_input(be0);
    const node_id y =
        gr.add_transform(make_batchnorm2d(&stats, norm_mode::train), {x, ga, be});
    gr.backward_from(y, seed_t);

    const auto make_f = [&](int wrt) {
      return [&, wrt](const tensor& probe) {
        batchnorm_stats s2{tensor::zeros({2}), tensor::ones({2})};
        graph g2;
        const node_id x2 = g2.add_input(wrt == 0 ? probe : x0);
        const node_id ga2 = g2.add_input(wrt == 1 ? probe : ga0);
        const node_id be2 = g2.add_input(wrt == 2 ? probe : be0);
        const node_id y2 =
            g2.add_transform(make_batchnorm2d(&s2, norm_mode::train), {x2, ga2, be2});
        return ops::dot(g2.value(y2), seed_t);
      };
    };
    EXPECT_LT(max_rel_error(gr.adjoint(x), numeric_grad(make_f(0), x0, 1e-2f)), 0.06f)
        << "seed=" << seed;
    EXPECT_LT(max_rel_error(gr.adjoint(ga), numeric_grad(make_f(1), ga0, 1e-2f)), 0.06f)
        << "seed=" << seed;
    EXPECT_LT(max_rel_error(gr.adjoint(be), numeric_grad(make_f(2), be0, 1e-2f)), 0.06f)
        << "seed=" << seed;
  }
}

TEST(BatchNormGradcheck, EvalModeUsesRunningStats) {
  rng g{7};
  const tensor x0 = tensor::randn(g, {2, 2, 2, 2});
  const tensor seed_t = tensor::randn(g, {2, 2, 2, 2});
  batchnorm_stats stats{tensor{{2}, {0.3f, -0.2f}}, tensor{{2}, {1.5f, 0.7f}}};

  graph gr;
  const node_id x = gr.add_input(x0);
  const node_id ga = gr.add_input(tensor::ones({2}));
  const node_id be = gr.add_input(tensor::zeros({2}));
  const node_id y = gr.add_transform(make_batchnorm2d(&stats, norm_mode::eval), {x, ga, be});
  gr.backward_from(y, seed_t);

  // Eval mode is an affine map: dx = seed / sqrt(var + eps) per channel.
  const float s0 = 1.0f / std::sqrt(1.5f + 1e-5f);
  const float s1 = 1.0f / std::sqrt(0.7f + 1e-5f);
  const tensor& dx = gr.adjoint(x);
  for (std::int64_t n = 0; n < 2; ++n)
    for (std::int64_t i = 0; i < 2; ++i)
      for (std::int64_t j = 0; j < 2; ++j) {
        EXPECT_NEAR(dx.at(n, 0, i, j), seed_t.at(n, 0, i, j) * s0, 1e-5f);
        EXPECT_NEAR(dx.at(n, 1, i, j), seed_t.at(n, 1, i, j) * s1, 1e-5f);
      }
}

TEST(BatchNormGradcheck, TrainModeUpdatesRunningStats) {
  rng g{8};
  batchnorm_stats stats{tensor::zeros({2}), tensor::ones({2})};
  graph gr;
  const node_id x = gr.add_input(ops::add_scalar(tensor::randn(g, {4, 2, 3, 3}), 2.0f));
  const node_id ga = gr.add_input(tensor::ones({2}));
  const node_id be = gr.add_input(tensor::zeros({2}));
  gr.add_transform(make_batchnorm2d(&stats, norm_mode::train, 0.1f), {x, ga, be});
  // Running mean moved towards the (shifted) batch mean.
  EXPECT_GT(stats.running_mean[0], 0.05f);
  EXPECT_GT(stats.running_mean[1], 0.05f);
}

TEST(CrossEntropyGradcheck, MatchesFiniteDifferences) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    rng g{seed};
    const tensor logits0 = tensor::randn(g, {4, 5});
    const tensor labels{{4}, {0, 2, 4, 1}};

    graph gr;
    const node_id logits = gr.add_input(logits0);
    const node_id lab = gr.add_constant(labels);
    const node_id loss = gr.add_transform(make_cross_entropy(), {logits, lab});
    gr.backward(loss);

    const auto f = [&](const tensor& probe) {
      graph g2;
      const node_id l2 = g2.add_input(probe);
      const node_id la2 = g2.add_constant(labels);
      return g2.value(g2.add_transform(make_cross_entropy(), {l2, la2})).item();
    };
    EXPECT_LT(max_rel_error(gr.adjoint(logits), numeric_grad(f, logits0, 1e-2f)), 0.05f)
        << "seed=" << seed;
  }
}

TEST(SoftmaxProperty, RowsSumToOne) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    rng g{seed};
    graph gr;
    const node_id x = gr.add_input(tensor::randn(g, {4, 7}, 0.0f, 3.0f));
    const node_id s = gr.add_transform(make_softmax_lastdim(), {x});
    const tensor& out = gr.value(s);
    for (std::int64_t r = 0; r < 4; ++r) {
      double row = 0.0;
      for (std::int64_t c = 0; c < 7; ++c) {
        EXPECT_GE(out.at(r, c), 0.0f);
        row += out.at(r, c);
      }
      EXPECT_NEAR(row, 1.0, 1e-5);
    }
  }
}

TEST(WeightStandardizeProperty, RowsZeroMeanUnitVar) {
  rng g{11};
  graph gr;
  const node_id w = gr.add_input(tensor::randn(g, {4, 2, 3, 3}, 1.0f, 2.0f));
  const node_id ws = gr.add_transform(make_weight_standardize(), {w});
  const tensor& out = gr.value(ws);
  for (std::int64_t o = 0; o < 4; ++o) {
    double mu = 0.0, var = 0.0;
    for (std::int64_t i = 0; i < 18; ++i) mu += out[o * 18 + i];
    mu /= 18.0;
    for (std::int64_t i = 0; i < 18; ++i) {
      const double d = out[o * 18 + i] - mu;
      var += d * d;
    }
    var /= 18.0;
    EXPECT_NEAR(mu, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(PatchifyProperty, RoundTripsThroughBackward) {
  // patchify is a permutation: backward(forward seed) recovers the seed.
  rng g{12};
  const tensor x0 = tensor::randn(g, {1, 3, 4, 4});
  graph gr;
  const node_id x = gr.add_input(x0);
  const node_id p = gr.add_transform(make_patchify(2), {x});
  EXPECT_EQ(gr.value(p).shape(), (shape_t{1, 4, 12}));
  gr.backward_from(p, gr.value(p));  // seed with the output itself
  const tensor& gx = gr.adjoint(x);
  for (std::int64_t i = 0; i < x0.numel(); ++i) EXPECT_FLOAT_EQ(gx[i], x0[i]);
}

}  // namespace
}  // namespace pelta::ad
