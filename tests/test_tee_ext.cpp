// TEE extensions: platform profiles, switchless HotCalls, and the §VI
// training-phase secure update channel.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "tee/hotcalls.h"
#include "tee/profiles.h"
#include "tee/update_channel.h"
#include "tensor/ops.h"

namespace pelta::tee {
namespace {

// ---- profiles ---------------------------------------------------------------

TEST(Profiles, MatchTheCitedLiterature) {
  const tee_profile tz = profile(tee_profile_kind::trustzone_optee);
  const tee_profile sgx = profile(tee_profile_kind::sgx_classic);
  const tee_profile hot = profile(tee_profile_kind::sgx_hotcalls);

  EXPECT_EQ(tz.capacity_bytes, 30ll * 1024 * 1024);  // the paper's constraint
  EXPECT_GT(sgx.capacity_bytes, tz.capacity_bytes);  // EPC > TrustZone secure RAM
  EXPECT_GT(sgx.costs.world_switch_ns, tz.costs.world_switch_ns);  // ecall > SMC
  EXPECT_LT(hot.costs.world_switch_ns, 0.1 * sgx.costs.world_switch_ns);  // switchless
  EXPECT_EQ(all_profiles().size(), 3u);
}

TEST(Profiles, MakeEnclaveEnforcesTheProfileCapacity) {
  enclave e = make_enclave(tee_profile_kind::trustzone_optee);
  EXPECT_EQ(e.capacity_bytes(), 30ll * 1024 * 1024);
  // 10M floats = 40 MB > 30 MB cap.
  EXPECT_THROW(e.store("too-big", tensor::zeros({10'000'000})), enclave_capacity_error);
}

// ---- hotcalls ---------------------------------------------------------------

TEST(HotCalls, StoreLoadRoundTripsThroughTheWorker) {
  enclave e{1 << 20};
  rng g{3};
  const tensor v = tensor::rand_uniform(g, {4, 4});
  {
    hotcall_server server{e};
    server.store("k", v);
    EXPECT_TRUE(server.contains("k"));
    const tensor back = server.load("k");
    for (std::int64_t i = 0; i < v.numel(); ++i) EXPECT_FLOAT_EQ(back[i], v[i]);
    server.erase("k");
    EXPECT_FALSE(server.contains("k"));
  }
  EXPECT_EQ(e.current_world(), world::normal);  // returned on shutdown
}

TEST(HotCalls, LifetimeCostsTwoSwitchesRegardlessOfCallCount) {
  enclave e{1 << 22};
  e.reset_statistics();
  {
    hotcall_server server{e};
    for (std::int64_t i = 0; i < 50; ++i) {
      // Append, not `"k" + to_string(...)`: that prepend path trips GCC 12's
      // -Wrestrict false positive at -O3 (see models/resnet.cpp), which the
      // -Werror CI legs would promote.
      std::string key = "k";
      key += std::to_string(i % 4);
      server.store(key, tensor::full({8}, static_cast<float>(i)));
    }
  }
  // enter + exit only; the 50 stores crossed via the polled slot.
  EXPECT_EQ(e.statistics().world_switches, 2);
  EXPECT_EQ(e.statistics().stores, 50);
}

TEST(HotCalls, BeatsPerCallWorldSwitchingOnModeledLatency) {
  const tee_profile p = profile(tee_profile_kind::sgx_classic);
  const std::int64_t n = 100;
  const tensor v = tensor::zeros({16});

  enclave classic{1 << 22, p.costs};
  classic.reset_statistics();
  for (std::int64_t i = 0; i < n; ++i) classic.store("k", v);  // 2 switches each

  enclave hot{1 << 22, profile(tee_profile_kind::sgx_hotcalls).costs};
  hot.reset_statistics();
  {
    hotcall_server server{hot};
    for (std::int64_t i = 0; i < n; ++i) server.store("k", v);
  }
  EXPECT_LT(hot.statistics().simulated_ns, 0.2 * classic.statistics().simulated_ns);
}

TEST(HotCalls, ErrorsPropagateToTheCaller) {
  enclave e{1 << 20};
  hotcall_server server{e};
  EXPECT_THROW((void)server.load("missing"), error);
  // the server survives the error and keeps serving
  server.store("x", tensor::ones({2}));
  EXPECT_TRUE(server.contains("x"));
}

TEST(HotCalls, CapacityErrorsCrossTheSlotToo) {
  enclave e{64};  // tiny enclave
  hotcall_server server{e};
  EXPECT_THROW(server.store("big", tensor::zeros({1024})), error);
}

TEST(HotCalls, SustainsManySerializedCalls) {
  enclave e{1 << 22};
  hotcall_server server{e};
  for (std::int64_t i = 0; i < 300; ++i) {
    server.store("slot", tensor::full({4}, static_cast<float>(i)));
    const tensor back = server.load("slot");
    ASSERT_FLOAT_EQ(back[0], static_cast<float>(i));
  }
  const hotcall_stats s = server.statistics();
  EXPECT_EQ(s.calls, 600);
  EXPECT_GT(s.simulated_ns, 0.0);
}

// ---- §VI secure update channel ---------------------------------------------------

TEST(UpdateChannel, AveragesExactlyOverThePullPeriod) {
  enclave e{1 << 20};
  secure_update_channel ch{e, 4};
  for (std::int64_t b = 0; b < 4; ++b) {
    ch.push_batch({tensor::full({3}, static_cast<float>(b + 1)),
                   tensor::full({2}, 2.0f * static_cast<float>(b))});
    EXPECT_EQ(ch.ready(), b == 3);
  }
  const std::vector<tensor> avg = ch.pull();
  ASSERT_EQ(avg.size(), 2u);
  EXPECT_FLOAT_EQ(avg[0][0], (1.0f + 2.0f + 3.0f + 4.0f) / 4.0f);
  EXPECT_FLOAT_EQ(avg[1][0], (0.0f + 2.0f + 4.0f + 6.0f) / 4.0f);
  EXPECT_EQ(ch.pending_batches(), 0);
  EXPECT_EQ(ch.pulls(), 1);
}

TEST(UpdateChannel, BoundaryBytesScaleInverselyWithPullPeriod) {
  const auto run = [](std::int64_t period) {
    enclave e{1 << 22};
    secure_update_channel ch{e, period};
    for (std::int64_t b = 0; b < 8; ++b) {
      ch.push_batch({tensor::ones({256})});
      if (ch.ready()) (void)ch.pull();
    }
    if (ch.pending_batches() > 0) (void)ch.pull();  // end-of-round flush
    return ch;
  };
  const secure_update_channel every = run(1);
  const secure_update_channel fourth = run(4);
  EXPECT_EQ(every.pulls(), 8);
  EXPECT_EQ(fourth.pulls(), 2);
  EXPECT_EQ(every.bytes_pulled(), 4 * fourth.bytes_pulled());
}

TEST(UpdateChannel, EnclaveIsCleanAfterPull) {
  enclave e{1 << 20};
  secure_update_channel ch{e, 2};
  ch.push_batch({tensor::ones({8})});
  ch.push_batch({tensor::ones({8})});
  EXPECT_GT(e.used_bytes(), 0);
  (void)ch.pull();
  EXPECT_EQ(e.used_bytes(), 0);
  EXPECT_EQ(e.entry_count(), 0);
}

TEST(UpdateChannel, ContractViolationsThrow) {
  enclave e{1 << 20};
  EXPECT_THROW((secure_update_channel{e, 0}), error);

  secure_update_channel ch{e, 2};
  EXPECT_THROW((void)ch.pull(), error);  // nothing accumulated
  ch.push_batch({tensor::ones({4})});
  EXPECT_THROW(ch.push_batch({tensor::ones({4}), tensor::ones({4})}), error);  // count change
  EXPECT_THROW(ch.push_batch({tensor::ones({5})}), error);                     // shape change
}

TEST(UpdateChannel, CapacityErrorsSurfaceOnPush) {
  enclave e{64};  // 16 floats — too small for the accumulators below
  secure_update_channel ch{e, 2};
  EXPECT_THROW(ch.push_batch({tensor::ones({1024})}), enclave_capacity_error);
}

TEST(HotCalls, TwoClientThreadsSerializeSafely) {
  enclave e{1 << 22};
  hotcall_server server{e};
  auto hammer = [&](std::int64_t base) {
    for (std::int64_t i = 0; i < 100; ++i) {
      // Append, not `"k" + to_string(...)` — GCC 12 -Wrestrict, as above.
      std::string key = "k";
      key += std::to_string(base + i);
      server.store(key, tensor::full({4}, static_cast<float>(i)));
    }
  };
  std::thread a{hammer, 0}, b{hammer, 1000};
  a.join();
  b.join();
  EXPECT_EQ(e.entry_count(), 200);
  EXPECT_EQ(server.statistics().calls, 200);
}

// Regression for a lock-discipline defect the thread-safety annotation
// sweep surfaced: statistics() read calls_/simulated_ns_ WITHOUT
// client_mutex_ while call() wrote them under it, so a monitor polling a
// live server raced the client thread (a TSan-visible data race, and a
// potentially torn double on 32-bit targets). statistics() now locks.
// This test is the racing workload: a client thread drives store() while
// the main thread polls — the TSan concurrency leg turns any relapse into
// a hard failure, and the monotonicity assertions catch torn reads.
TEST(HotCalls, StatisticsAreSafeToPollWhileAClientCalls) {
  enclave e{1 << 22};
  hotcall_server server{e};
  constexpr std::int64_t k_stores = 200;
  const tensor v = tensor::zeros({8});
  std::thread client{[&] {
    for (std::int64_t i = 0; i < k_stores; ++i) {
      // Append, not `"k" + to_string(...)` — GCC 12 -Wrestrict, as above.
      std::string key = "k";
      key += std::to_string(i % 7);
      server.store(key, v);
    }
  }};
  hotcall_stats seen;
  while (seen.calls < k_stores) {
    const hotcall_stats now = server.statistics();
    ASSERT_GE(now.calls, seen.calls) << "calls counter went backwards";
    ASSERT_GE(now.simulated_ns, seen.simulated_ns) << "cost meter went backwards";
    seen = now;
  }
  client.join();
  const hotcall_stats final_stats = server.statistics();
  EXPECT_EQ(final_stats.calls, k_stores);
  EXPECT_GT(final_stats.simulated_ns, 0.0);
}

TEST(UpdateChannel, LargePullPeriodMatchesADoubleReference) {
  // Regression: the accumulator used to sum in plain float, so a large
  // pull_period drifted — adding a small gradient into a large running sum
  // sheds its low-order bits entirely (1e6 + 0.003 == 1e6 in float). The
  // Kahan-compensated slot carries those bits; the averaged pull must pin
  // to a double-precision reference.
  enclave e{1 << 20};
  const std::int64_t period = 256;
  secure_update_channel ch{e, period};

  // One huge gradient then 255 tiny ones, each below half an ulp of the
  // running sum (ulp(2^20) = 0.125): a plain float accumulator drops every
  // single one of them.
  double reference = 0.0;
  for (std::int64_t b = 0; b < period; ++b) {
    const float g = b == 0 ? 1048576.0f : 0.03f;
    reference += static_cast<double>(g);
    ch.push_batch({tensor::full({4}, g)});
  }
  ASSERT_TRUE(ch.ready());
  const std::vector<tensor> avg = ch.pull();
  reference /= static_cast<double>(period);

  // Naive float accumulation would land ~3e-2 off the reference (all 255
  // small gradients lost); the compensated sum stays within ~1 accumulator
  // ulp, i.e. ~5e-4 after averaging.
  for (std::int64_t j = 0; j < 4; ++j)
    EXPECT_NEAR(static_cast<double>(avg[0][j]), reference, 5e-3);
}

TEST(UpdateChannel, EarlyFlushAveragesThePartialWindow) {
  enclave e{1 << 20};
  secure_update_channel ch{e, 8};
  ch.push_batch({tensor::full({2}, 1.0f)});
  ch.push_batch({tensor::full({2}, 3.0f)});
  const std::vector<tensor> avg = ch.pull();  // flush after 2 of 8
  EXPECT_FLOAT_EQ(avg[0][0], 2.0f);
}

}  // namespace
}  // namespace pelta::tee
