// Buffered asynchronous federation (fl/async.h): staleness weighting,
// seeded fleet heterogeneity, the simulated-clock planner's invariants, and
// the end-to-end run_async path on a tiny federation.
#include <gtest/gtest.h>

#include <set>

#include "fl/federation.h"
#include "models/vit.h"

namespace pelta::fl {
namespace {

data::dataset small_dataset() {
  data::dataset_config c = data::cifar10_like();
  c.classes = 4;
  c.train_per_class = 30;
  c.test_per_class = 10;
  return data::dataset{c};
}

model_factory tiny_vit_factory() {
  return [] {
    models::vit_config c;
    c.name = "async-vit";
    c.image_size = 16;
    c.patch_size = 4;
    c.dim = 16;
    c.heads = 2;
    c.blocks = 1;
    c.mlp_hidden = 32;
    c.classes = 4;
    c.seed = 31;  // identical initial params on server and clients
    return std::make_unique<models::vit_model>(c);
  };
}

// ---- staleness weighting ---------------------------------------------------

TEST(StalenessWeight, MatchesTheConfiguredDecay) {
  EXPECT_FLOAT_EQ(staleness_weight(staleness_weighting::none, 0), 1.0f);
  EXPECT_FLOAT_EQ(staleness_weight(staleness_weighting::none, 100), 1.0f);
  EXPECT_FLOAT_EQ(staleness_weight(staleness_weighting::inverse_sqrt, 0), 1.0f);
  EXPECT_FLOAT_EQ(staleness_weight(staleness_weighting::inverse_sqrt, 3), 0.5f);
  EXPECT_FLOAT_EQ(staleness_weight(staleness_weighting::inverse_linear, 0), 1.0f);
  EXPECT_FLOAT_EQ(staleness_weight(staleness_weighting::inverse_linear, 4), 0.2f);
  EXPECT_THROW(staleness_weight(staleness_weighting::inverse_sqrt, -1), error);
}

TEST(StalenessWeight, DownWeightsStaleUpdatesInWeightedRules) {
  auto global = tiny_vit_factory()();
  const byte_buffer ref = global->params().save_values();
  auto a = tiny_vit_factory()();
  auto b = tiny_vit_factory()();
  const std::size_t n_params = a->params().size();
  for (std::size_t k = 0; k < n_params; ++k) {
    a->params().at(k).value.fill_(1.0f);
    b->params().at(k).value.fill_(5.0f);
  }
  model_update fresh{0, 10, a->params().save_values(), /*staleness=*/0};
  model_update stale{1, 10, b->params().save_values(), /*staleness=*/3};

  aggregation_config cfg;  // fedavg
  cfg.staleness = staleness_weighting::none;
  const byte_buffer unweighted = aggregate_states(ref, {fresh, stale}, cfg);
  cfg.staleness = staleness_weighting::inverse_sqrt;
  const byte_buffer weighted = aggregate_states(ref, {fresh, stale}, cfg);

  auto first_value = [&](const byte_buffer& state) {
    std::size_t offset = 0;
    return deserialize_tensor(state, offset)[0];
  };
  // equal weights -> 3; stale side halved (1/sqrt(4)) -> (1 + 5*0.5) / 1.5
  EXPECT_NEAR(first_value(unweighted), 3.0f, 1e-5f);
  EXPECT_NEAR(first_value(weighted), 7.0f / 3.0f, 1e-5f);
}

TEST(StalenessWeight, OrderStatisticRulesIgnoreStaleness) {
  auto global = tiny_vit_factory()();
  const byte_buffer ref = global->params().save_values();
  std::vector<model_update> updates;
  for (int i = 0; i < 3; ++i) {
    auto m = tiny_vit_factory()();
    const std::size_t n_params = m->params().size();
    for (std::size_t k = 0; k < n_params; ++k)
      m->params().at(k).value.fill_(static_cast<float>(i + 1));
    updates.push_back({i, 10, m->params().save_values(), /*staleness=*/4 * i});
  }
  for (const aggregation_rule rule :
       {aggregation_rule::coordinate_median, aggregation_rule::trimmed_mean}) {
    aggregation_config cfg;
    cfg.rule = rule;
    cfg.staleness = staleness_weighting::none;
    const byte_buffer plain = aggregate_states(ref, updates, cfg);
    cfg.staleness = staleness_weighting::inverse_linear;
    EXPECT_TRUE(plain == aggregate_states(ref, updates, cfg))
        << aggregation_rule_name(rule) << " must ignore staleness weights";
  }
}

// ---- fleet heterogeneity ---------------------------------------------------

TEST(Heterogeneity, ProfilesAreSeedDeterministic) {
  heterogeneity_config cfg;
  cfg.bandwidth_spread = 3.0;
  cfg.latency_spread = 2.0;
  cfg.compute_spread = 2.0;
  cfg.stragglers = 2;
  cfg.straggler_slowdown = 4.0;
  cfg.seed = 11;
  const auto first = make_client_profiles(8, cfg);
  const auto again = make_client_profiles(8, cfg);
  ASSERT_EQ(first.size(), 8u);
  for (std::size_t c = 0; c < first.size(); ++c) {
    EXPECT_EQ(first[c].bandwidth_scale, again[c].bandwidth_scale);
    EXPECT_EQ(first[c].compute_scale, again[c].compute_scale);
    EXPECT_GE(first[c].bandwidth_scale, 1.0 / 3.0 - 1e-12);
    EXPECT_LE(first[c].bandwidth_scale, 3.0 + 1e-12);
  }
  cfg.seed = 12;
  const auto other = make_client_profiles(8, cfg);
  bool any_difference = false;
  for (std::size_t c = 0; c < first.size(); ++c)
    any_difference = any_difference || first[c].bandwidth_scale != other[c].bandwidth_scale;
  EXPECT_TRUE(any_difference);
}

TEST(Heterogeneity, StragglersGetTheConfiguredSlowdown) {
  heterogeneity_config cfg;  // unit spreads: compute_scale is exactly 1 or slowdown
  cfg.stragglers = 3;
  cfg.straggler_slowdown = 6.0;
  const auto profiles = make_client_profiles(10, cfg);
  std::int64_t slowed = 0;
  for (const client_profile& p : profiles) {
    if (p.compute_scale == 6.0) {
      ++slowed;
    } else {
      EXPECT_EQ(p.compute_scale, 1.0);
    }
  }
  EXPECT_EQ(slowed, 3);
}

TEST(Heterogeneity, RejectsInvalidConfigs) {
  heterogeneity_config cfg;
  cfg.stragglers = 5;
  EXPECT_THROW(make_client_profiles(3, cfg), error);
  cfg.stragglers = 0;
  cfg.dropout_rate = 1.0;
  EXPECT_THROW(make_client_profiles(3, cfg), error);
}

// ---- the simulated-clock planner -------------------------------------------

async_schedule plan_uniform(const async_config& cfg, std::int64_t clients,
                            std::int64_t target, std::uint64_t seed = 7) {
  const network net;
  const std::vector<client_profile> profiles =
      make_client_profiles(clients, cfg.heterogeneity);
  const std::vector<std::int64_t> shard_sizes(static_cast<std::size_t>(clients), 10);
  return plan_async_schedule(cfg, profiles, shard_sizes, /*epochs=*/1,
                             /*payload_bytes=*/1000, net, target, seed);
}

TEST(AsyncPlan, FlushesExactlyEveryKUpdates) {
  async_config cfg;
  cfg.buffer_size = 2;
  const async_schedule plan = plan_uniform(cfg, 4, 3);
  EXPECT_EQ(plan.aggregations, 3);
  ASSERT_EQ(plan.flush_inputs.size(), 3u);
  ASSERT_EQ(plan.flush_ns.size(), 3u);
  for (const auto& flush : plan.flush_inputs) EXPECT_EQ(flush.size(), 2u);
  for (std::size_t k = 1; k < plan.flush_ns.size(); ++k)
    EXPECT_GE(plan.flush_ns[k], plan.flush_ns[k - 1]);
  EXPECT_EQ(plan.end_ns, plan.flush_ns.back());
  EXPECT_EQ(plan.dropped, 0);
  EXPECT_EQ(plan.stale, 0);

  // Consumed jobs: consistent version/staleness bookkeeping.
  for (std::size_t k = 0; k < plan.flush_inputs.size(); ++k)
    for (const std::size_t j : plan.flush_inputs[k]) {
      const async_job& job = plan.jobs[j];
      EXPECT_EQ(job.aggregation, static_cast<std::int64_t>(k));
      EXPECT_EQ(job.staleness, static_cast<std::int64_t>(k) - job.start_version);
      EXPECT_LE(job.start_version, static_cast<std::int64_t>(k));
    }
}

TEST(AsyncPlan, IsDeterministicForFixedSeed) {
  async_config cfg;
  cfg.buffer_size = 3;
  cfg.heterogeneity.compute_spread = 2.0;
  cfg.heterogeneity.dropout_rate = 0.3;
  const async_schedule a = plan_uniform(cfg, 5, 4, /*seed=*/21);
  const async_schedule b = plan_uniform(cfg, 5, 4, /*seed=*/21);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].client, b.jobs[j].client);
    EXPECT_EQ(a.jobs[j].aggregation, b.jobs[j].aggregation);
    EXPECT_EQ(a.jobs[j].dropped, b.jobs[j].dropped);
    EXPECT_EQ(a.jobs[j].finish_ns, b.jobs[j].finish_ns);
  }
  EXPECT_EQ(a.end_ns, b.end_ns);
  EXPECT_EQ(a.dropped, b.dropped);
}

TEST(AsyncPlan, StragglerContributesFewerUpdates) {
  async_config cfg;
  cfg.buffer_size = 2;
  const network net;
  std::vector<client_profile> profiles(3);
  profiles[0].compute_scale = 10.0;  // the straggler
  const std::vector<std::int64_t> shard_sizes(3, 50);
  const async_schedule plan =
      plan_async_schedule(cfg, profiles, shard_sizes, 1, 1000, net, 8, 7);

  std::vector<std::int64_t> applied(3, 0);
  for (const async_job& job : plan.jobs)
    if (job.aggregation >= 0) ++applied[static_cast<std::size_t>(job.client)];
  EXPECT_LT(applied[0], applied[1]);
  EXPECT_LT(applied[0], applied[2]);
  EXPECT_EQ(applied[0] + applied[1] + applied[2], 16);  // 8 flushes x K=2
}

TEST(AsyncPlan, TightStalenessBoundDiscardsSlowArrivals) {
  async_config cfg;
  cfg.buffer_size = 2;
  cfg.max_staleness = 0;
  const network net;
  std::vector<client_profile> profiles(3);
  profiles[0].compute_scale = 5.0;  // arrives a few versions late
  const std::vector<std::int64_t> shard_sizes(3, 50);
  const async_schedule plan =
      plan_async_schedule(cfg, profiles, shard_sizes, 1, 1000, net, 10, 7);
  EXPECT_GT(plan.stale, 0);
  for (const async_job& job : plan.jobs)
    if (job.aggregation >= 0) {
      EXPECT_EQ(job.staleness, 0);
    }
}

TEST(AsyncPlan, DropoutDiscardsButStillConverges) {
  async_config cfg;
  cfg.buffer_size = 2;
  cfg.heterogeneity.dropout_rate = 0.5;
  const async_schedule plan = plan_uniform(cfg, 4, 5, /*seed=*/3);
  EXPECT_EQ(plan.aggregations, 5);
  EXPECT_GT(plan.dropped, 0);
  for (const async_job& job : plan.jobs)
    if (job.dropped) {
      EXPECT_EQ(job.aggregation, -1);
    }
}

TEST(AsyncPlan, RejectsInvalidConfigs) {
  async_config cfg;
  cfg.buffer_size = 0;
  EXPECT_THROW(plan_uniform(cfg, 3, 1), error);
  cfg.buffer_size = 2;
  cfg.max_staleness = -1;
  EXPECT_THROW(plan_uniform(cfg, 3, 1), error);
}

// ---- end-to-end run_async --------------------------------------------------

TEST(FederationAsync, BufferedRoundsImproveTheGlobalModel) {
  const data::dataset ds = small_dataset();
  federation_config cfg;
  cfg.clients = 4;
  cfg.compromised = 0;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 16;
  cfg.local.lr = 4e-3f;
  cfg.async.buffer_size = 2;
  cfg.async.heterogeneity.stragglers = 1;
  cfg.async.heterogeneity.straggler_slowdown = 4.0;
  federation fed{cfg, tiny_vit_factory(), ds};

  const float before = fed.global_test_accuracy();
  std::vector<double> flush_times;
  std::vector<std::int64_t> flush_messages;
  const async_report report = fed.run_async(6, [&](std::int64_t, double ns) {
    flush_times.push_back(ns);
    flush_messages.push_back(fed.traffic().messages);
  });
  const float after = fed.global_test_accuracy();

  EXPECT_EQ(report.aggregations, 6);
  EXPECT_EQ(report.updates_applied, 12);  // 6 flushes x K=2
  EXPECT_GE(report.trainings, report.updates_applied);
  EXPECT_GT(report.simulated_ns, 0.0);
  EXPECT_EQ(fed.server().round(), 6);  // each flush advances the version

  ASSERT_EQ(flush_times.size(), 6u);
  for (std::size_t k = 1; k < flush_times.size(); ++k)
    EXPECT_GE(flush_times[k], flush_times[k - 1]);
  EXPECT_EQ(flush_times.back(), report.simulated_ns);

  // Traffic is replayed up to each flush, so the observer sees consistent,
  // monotone stats — and both legs meter against the same payload size.
  EXPECT_GT(flush_messages.front(), 0);
  for (std::size_t k = 1; k < flush_messages.size(); ++k)
    EXPECT_GE(flush_messages[k], flush_messages[k - 1]);
  const std::int64_t payload = static_cast<std::int64_t>(fed.server().broadcast().size());
  EXPECT_GE(fed.traffic().messages, flush_messages.back());
  EXPECT_EQ(fed.traffic().bytes, fed.traffic().messages * payload);

  EXPECT_GT(after, before) << "async federation failed to learn";
}

TEST(FederationAsync, StalenessIsBoundedByTheConfiguredMaximum) {
  const data::dataset ds = small_dataset();
  federation_config cfg;
  cfg.clients = 3;
  cfg.compromised = 0;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 16;
  cfg.async.buffer_size = 1;
  cfg.async.max_staleness = 2;
  cfg.async.heterogeneity.stragglers = 1;
  cfg.async.heterogeneity.straggler_slowdown = 8.0;
  federation fed{cfg, tiny_vit_factory(), ds};
  const async_report report = fed.run_async(5);
  EXPECT_EQ(report.aggregations, 5);
  EXPECT_LE(report.max_staleness_seen, 2);
  EXPECT_GE(report.mean_staleness, 0.0);
}

}  // namespace
}  // namespace pelta::fl
