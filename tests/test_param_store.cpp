// nn::param_store: named ownership of trainable parameters, stable
// addresses, flat-value serialization (the FL wire payload), and the
// in-place merge primitives FedAvg builds on.
#include <gtest/gtest.h>

#include "nn/param_store.h"
#include "tensor/check.h"
#include "tensor/tensor.h"

namespace pelta::nn {
namespace {

TEST(ParamStore, CreateLookupAndCount) {
  param_store ps;
  ps.create("w", tensor::ones({2, 3}));
  ps.create("b", tensor::zeros({3}));

  EXPECT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps.scalar_count(), 9);
  EXPECT_TRUE(ps.contains("w"));
  EXPECT_TRUE(ps.contains("b"));
  EXPECT_FALSE(ps.contains("missing"));
  EXPECT_EQ(ps.get("w").value.shape(), (shape_t{2, 3}));
  EXPECT_THROW(ps.get("missing"), pelta::error);
  EXPECT_THROW(ps.create("w", tensor::zeros({1})), pelta::error);
}

TEST(ParamStore, AddressesStableAcrossGrowth) {
  // Graphs and optimizers hold parameter pointers; creating more
  // parameters must not invalidate them.
  param_store ps;
  ad::parameter* first = &ps.create("p0", tensor::zeros({4}));
  for (int i = 1; i < 64; ++i) {
    // Append, not `"p" + to_string(i)`: the const char* + string&& prepend
    // path trips GCC 12's -Wrestrict false positive at -O3 (see
    // models/resnet.cpp), which the -Werror CI legs would promote.
    std::string name = "p";
    name += std::to_string(i);
    ps.create(name, tensor::zeros({4}));
  }
  EXPECT_EQ(first, &ps.get("p0"));
  EXPECT_EQ(first->name, "p0");
}

TEST(ParamStore, SaveLoadRoundTrip) {
  rng g{3};
  param_store a;
  a.create("w", tensor::randn(g, {3, 2}));
  a.create("b", tensor::randn(g, {2}));

  param_store b;
  b.create("w", tensor::zeros({3, 2}));
  b.create("b", tensor::zeros({2}));

  const byte_buffer buf = a.save_values();
  b.load_values(buf);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(b.get("w").value[i], a.get("w").value[i]);
  for (std::int64_t i = 0; i < 2; ++i) EXPECT_EQ(b.get("b").value[i], a.get("b").value[i]);
}

TEST(ParamStore, LoadValuesAtReturnsTrailingOffset) {
  param_store a;
  a.create("w", tensor::ones({4}));
  byte_buffer buf = a.save_values();
  const std::size_t payload = buf.size();
  buf.push_back(0x7f);  // trailing extra state (e.g. BN buffers)

  param_store b;
  b.create("w", tensor::zeros({4}));
  const std::size_t end = b.load_values_at(buf, 0);
  EXPECT_EQ(end, payload);
  EXPECT_EQ(b.get("w").value[3], 1.0f);
}

TEST(ParamStore, AxpyAndCopyMergePrimitives) {
  param_store a;
  a.create("w", tensor::full({3}, 1.0f));
  param_store b;
  b.create("w", tensor::full({3}, 2.0f));

  a.axpy_values(b, 0.5f);  // 1 + 0.5*2 = 2
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(a.get("w").value[i], 2.0f);

  a.copy_values_from(b);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(a.get("w").value[i], 2.0f);
}

TEST(ParamStore, ZeroGradsClearsAccumulation) {
  param_store ps;
  ad::parameter& p = ps.create("w", tensor::ones({3}));
  p.grad = tensor::full({3}, 5.0f);
  ps.zero_grads();
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_EQ(p.grad[i], 0.0f);
}

}  // namespace
}  // namespace pelta::nn
