// Software-defense suite (§VII composition study): DCT codec, quantizer,
// randomization transforms, chains, the defended model, and the BPDA/EOT
// attack machinery that counters them.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "attacks/eot.h"
#include "defenses/encoding.h"
#include "defenses/quantization.h"
#include "defenses/randomization.h"
#include "models/trainer.h"
#include "models/zoo.h"
#include "tensor/ops.h"

namespace pelta::defenses {
namespace {

tensor random_image(std::uint64_t seed, std::int64_t c = 3, std::int64_t s = 16) {
  rng g{seed};
  return tensor::rand_uniform(g, {c, s, s});
}

// ---- blockwise DCT ----------------------------------------------------------

TEST(Dct, RoundTripIsExact) {
  const tensor x = random_image(7);
  const tensor back = idct2_blockwise(dct2_blockwise(x));
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(back[i], x[i], 1e-5f);
}

TEST(Dct, IsUnitaryParseval) {
  const tensor x = random_image(8);
  EXPECT_NEAR(ops::norm_l2(dct2_blockwise(x)), ops::norm_l2(x), 1e-4f);
}

TEST(Dct, CompactsConstantBlockIntoDc) {
  const tensor x = tensor::full({1, 8, 8}, 0.5f);
  const tensor coef = dct2_blockwise(x);
  EXPECT_NEAR(coef.at(0, 0, 0), 0.5f * 8.0f, 1e-5f);  // DC = sum / sqrt(64)
  float off_dc = 0.0f;
  for (std::int64_t i = 1; i < coef.numel(); ++i) off_dc += std::abs(coef[i]);
  EXPECT_LT(off_dc, 1e-4f);
}

TEST(Dct, PureCosineModeMapsToSingleCoefficient) {
  // x(y,x) = basis row u=0 x column v=3 → exactly one nonzero coefficient.
  tensor x{shape_t{1, 8, 8}};
  const double pi = std::acos(-1.0);
  for (std::int64_t i = 0; i < 8; ++i)
    for (std::int64_t j = 0; j < 8; ++j)
      x.at(0, i, j) = static_cast<float>(std::cos((2.0 * j + 1.0) * 3.0 * pi / 16.0));
  const tensor coef = dct2_blockwise(x);
  std::int64_t nonzero = 0;
  for (std::int64_t i = 0; i < coef.numel(); ++i)
    if (std::abs(coef[i]) > 1e-4f) ++nonzero;
  EXPECT_EQ(nonzero, 1);
  EXPECT_GT(std::abs(coef.at(0, 0, 3)), 1.0f);
}

TEST(Dct, RejectsNonBlockableShape) {
  EXPECT_THROW(dct2_blockwise(tensor::zeros({3, 12, 12})), error);
  EXPECT_THROW(dct2_blockwise(tensor::zeros({3, 16})), error);
}

// ---- JPEG codec -------------------------------------------------------------

TEST(Jpeg, Quality100IsNearIdentity) {
  const tensor x = random_image(11);
  rng g{0};
  const tensor y100 = jpeg_codec{100}.apply(x, g);
  const tensor y10 = jpeg_codec{10}.apply(x, g);
  const float err100 = ops::norm_l2(ops::sub(y100, x));
  const float err10 = ops::norm_l2(ops::sub(y10, x));
  EXPECT_LT(err100 / ops::norm_l2(x), 0.02f);
  EXPECT_GT(err10, 4.0f * err100);
}

TEST(Jpeg, StepsGrowWithFrequencyAndShrinkWithQuality) {
  const jpeg_codec q40{40}, q80{80};
  EXPECT_GT(q40.step(7, 7), q40.step(0, 0));
  EXPECT_GT(q40.step(0, 0), q80.step(0, 0));
  EXPECT_GT(q40.step(7, 7), q80.step(7, 7));
}

TEST(Jpeg, RemovesHighFrequencyKeepsSmooth) {
  // smooth gradient + faint checkerboard (the highest 2-D frequency).
  tensor x{shape_t{1, 16, 16}};
  for (std::int64_t i = 0; i < 16; ++i)
    for (std::int64_t j = 0; j < 16; ++j)
      x.at(0, i, j) = 0.3f + 0.02f * static_cast<float>(i + j) / 30.0f +
                      0.015f * (((i + j) % 2 == 0) ? 1.0f : -1.0f);
  rng g{0};
  const tensor y = jpeg_codec{40}.apply(x, g);
  // checkerboard correlation collapses, mean brightness survives.
  float checker_in = 0.0f, checker_out = 0.0f;
  for (std::int64_t i = 0; i < 16; ++i)
    for (std::int64_t j = 0; j < 16; ++j) {
      const float sign = ((i + j) % 2 == 0) ? 1.0f : -1.0f;
      checker_in += sign * x.at(0, i, j);
      checker_out += sign * y.at(0, i, j);
    }
  EXPECT_LT(std::abs(checker_out), 0.2f * std::abs(checker_in));
  EXPECT_NEAR(ops::mean(y), ops::mean(x), 0.01f);
}

TEST(Jpeg, IdempotentAwayFromClamp) {
  rng g0{13};
  const tensor x = tensor::rand_uniform(g0, {3, 16, 16}, 0.25f, 0.75f);
  rng g{0};
  const jpeg_codec codec{40};
  const tensor once = codec.apply(x, g);
  const tensor twice = codec.apply(once, g);
  EXPECT_LT(ops::norm_linf(ops::sub(twice, once)), 2e-3f);
}

TEST(Jpeg, InvalidQualityThrows) {
  EXPECT_THROW(jpeg_codec{0}, error);
  EXPECT_THROW(jpeg_codec{101}, error);
}

// ---- quantizer --------------------------------------------------------------

TEST(Quantizer, IsIdempotent) {
  const tensor x = random_image(3);
  rng g{0};
  const bit_depth_quantizer q{4};
  const tensor once = q.apply(x, g);
  const tensor twice = q.apply(once, g);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(twice[i], once[i]);
}

TEST(Quantizer, OutputsLieOnTheGrid) {
  const tensor x = random_image(4);
  rng g{0};
  const bit_depth_quantizer q{3};
  const tensor y = q.apply(x, g);
  std::set<float> values(y.data().begin(), y.data().end());
  EXPECT_LE(static_cast<std::int64_t>(values.size()), q.levels() + 1);
  for (float v : values) {
    const float scaled = v * static_cast<float>(q.levels());
    EXPECT_NEAR(scaled, std::round(scaled), 1e-4f);
  }
}

TEST(Quantizer, KillsSubQuantumPerturbation) {
  rng g0{5};
  const bit_depth_quantizer q{4};
  const tensor x = random_image(6);
  tensor perturbed = x;
  // stay strictly inside the rounding cell: |δ| < half quantum, away from
  // cell boundaries via a nudge toward the cell center first.
  rng g{0};
  const tensor base = q.apply(x, g);
  tensor centered = base;  // cell centers are the grid points themselves
  const float quantum = 1.0f / static_cast<float>(q.levels());
  tensor delta{centered.shape()};
  for (std::int64_t i = 0; i < delta.numel(); ++i)
    delta[i] = (g0.uniform() - 0.5f) * 0.8f * quantum;
  perturbed = ops::clamp(ops::add(centered, delta), 0.0f, 1.0f);
  const tensor after = q.apply(perturbed, g);
  for (std::int64_t i = 0; i < after.numel(); ++i)
    if (centered[i] > quantum && centered[i] < 1.0f - quantum) {
      EXPECT_FLOAT_EQ(after[i], centered[i]) << "at " << i;
    }
}

TEST(Quantizer, ValidatesBitRange) {
  EXPECT_THROW(bit_depth_quantizer{0}, error);
  EXPECT_THROW(bit_depth_quantizer{17}, error);
  EXPECT_EQ(bit_depth_quantizer{8}.levels(), 255);
}

// ---- resize / randomization ---------------------------------------------------

TEST(Resize, SameSizeIsIdentity) {
  const tensor x = random_image(21);
  const tensor y = resize_bilinear(x, 16, 16);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Resize, ConstantImageStaysConstant) {
  const tensor x = tensor::full({2, 16, 16}, 0.37f);
  const tensor y = resize_bilinear(x, 11, 9);
  for (float v : y.data()) EXPECT_NEAR(v, 0.37f, 1e-6f);
}

TEST(Resize, LinearRampIsReproducedExactly) {
  // align-corners bilinear interpolation is exact on affine images.
  tensor x{shape_t{1, 16, 16}};
  for (std::int64_t i = 0; i < 16; ++i)
    for (std::int64_t j = 0; j < 16; ++j)
      x.at(0, i, j) = 0.1f + 0.02f * static_cast<float>(i) + 0.03f * static_cast<float>(j);
  const tensor y = resize_bilinear(x, 9, 7);
  for (std::int64_t i = 0; i < 9; ++i)
    for (std::int64_t j = 0; j < 7; ++j) {
      const float sy = 15.0f / 8.0f, sx = 15.0f / 6.0f;
      EXPECT_NEAR(y.at(0, i, j),
                  0.1f + 0.02f * static_cast<float>(i) * sy + 0.03f * static_cast<float>(j) * sx,
                  1e-5f);
    }
}

TEST(RandomResizePad, KeepsShapeRangeAndMass) {
  const tensor x = random_image(30);
  const random_resize_pad d{3};
  for (std::uint64_t s = 0; s < 8; ++s) {
    rng g{s};
    const tensor y = d.apply(x, g);
    ASSERT_EQ(y.shape(), x.shape());
    EXPECT_GE(ops::min(y), 0.0f);
    EXPECT_LE(ops::max(y), 1.0f);
    // the pasted content is a resize of x: mean brightness is similar
    // (zero border can only lower it, bounded by the shrink fraction).
    EXPECT_GT(ops::mean(y), 0.5f * ops::mean(x));
  }
}

TEST(RandomResizePad, RejectsOversizedShrink) {
  EXPECT_THROW(random_resize_pad{0}, error);
  rng g{1};
  EXPECT_THROW(random_resize_pad{16}.apply(random_image(1), g), error);
}

TEST(GaussianNoise, ZeroStddevIsIdentityAndClampHolds) {
  const tensor x = random_image(31);
  rng g{9};
  const tensor same = gaussian_noise{0.0f}.apply(x, g);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(same[i], x[i]);
  const tensor noisy = gaussian_noise{0.5f}.apply(x, g);
  EXPECT_GE(ops::min(noisy), 0.0f);
  EXPECT_LE(ops::max(noisy), 1.0f);
  EXPECT_GT(ops::norm_l2(ops::sub(noisy, x)), 0.1f);
}

// ---- chain ------------------------------------------------------------------

TEST(Chain, FlagsAndDescription) {
  const preprocessor_chain deterministic = make_chain("quantize+jpeg");
  EXPECT_FALSE(deterministic.randomized());
  EXPECT_TRUE(deterministic.shatters_gradient());
  EXPECT_EQ(deterministic.describe(), "quantize4+jpeg40");

  const preprocessor_chain randomized = make_chain("resize+noise");
  EXPECT_TRUE(randomized.randomized());
  EXPECT_FALSE(randomized.shatters_gradient());

  EXPECT_EQ(make_chain("").describe(), "none");
  EXPECT_EQ(make_chain("none").size(), 0);
  EXPECT_THROW(make_chain("foo"), error);
}

TEST(Chain, ThreeStageSpecParsesInOrder) {
  const preprocessor_chain chain = make_chain("quantize+jpeg+noise");
  ASSERT_EQ(chain.size(), 3);
  EXPECT_EQ(chain.stage(0).name(), "quantize4");
  EXPECT_EQ(chain.stage(1).name(), "jpeg40");
  EXPECT_EQ(chain.stage(2).name(), "noise");
  EXPECT_TRUE(chain.randomized());
  EXPECT_TRUE(chain.shatters_gradient());
}

TEST(Chain, AppliesStagesFrontToBack) {
  // quantize(noise(x)) != noise(quantize(x)) in general; the chain is
  // front-to-back, so "quantize" first yields grid values before noise.
  const tensor x = random_image(40);
  rng g{3};
  const tensor y = make_chain("quantize").apply(x, g);
  const bit_depth_quantizer q{4};
  rng g2{3};
  const tensor expect = q.apply(x, g2);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], expect[i]);
}

// ---- defended model + BPDA/EOT ------------------------------------------------

struct fixture {
  data::dataset ds;
  std::unique_ptr<models::vit_model> vit;

  fixture()
      : ds{[] {
          data::dataset_config c = data::cifar10_like();
          c.classes = 4;
          c.train_per_class = 60;
          c.test_per_class = 20;
          return c;
        }()} {
    models::vit_config vc;
    vc.name = "tiny-vit";
    vc.image_size = 16;
    vc.patch_size = 4;
    vc.dim = 16;
    vc.heads = 2;
    vc.blocks = 2;
    vc.mlp_hidden = 32;
    vc.classes = 4;
    vit = std::make_unique<models::vit_model>(vc);
    models::train_config tc;
    tc.epochs = 10;
    tc.batch_size = 16;
    tc.lr = 4e-3f;
    models::train_model(*vit, ds, tc);
  }

  static const fixture& get() {
    static fixture f;
    return f;
  }
};

TEST(DefendedModel, EmptyChainMatchesBase) {
  const auto& f = fixture::get();
  const preprocessor_chain none = make_chain("");
  const defended_model dm{*f.vit, none};
  rng g{1};
  for (std::int64_t i = 0; i < 10; ++i)
    EXPECT_EQ(dm.predict_one(f.ds.test_image(i), g), models::predict_one(*f.vit, f.ds.test_image(i)));
}

TEST(DefendedModel, DeterministicChainIgnoresSeed) {
  const auto& f = fixture::get();
  const preprocessor_chain chain = make_chain("quantize");
  const defended_model dm{*f.vit, chain, 5};
  rng a{1}, b{999};
  for (std::int64_t i = 0; i < 6; ++i)
    EXPECT_EQ(dm.predict_one(f.ds.test_image(i), a), dm.predict_one(f.ds.test_image(i), b));
}

TEST(DefendedModel, QuantizeKeepsCleanAccuracyClose) {
  const auto& f = fixture::get();
  const preprocessor_chain chain = make_chain("quantize");
  const defended_model dm{*f.vit, chain};
  const float base = models::accuracy(*f.vit, f.ds.test_images(), f.ds.test_labels());
  const float defended = dm.accuracy(f.ds.test_images(), f.ds.test_labels(), 7);
  EXPECT_GT(defended, base - 0.15f);
}

TEST(DefendedOracle, DeterministicChainCollapsesEotToOnePass) {
  const auto& f = fixture::get();
  const preprocessor_chain chain = make_chain("quantize");
  auto oracle = attacks::make_defended_oracle(attacks::make_clear_oracle(*f.vit), chain,
                                              /*eot_samples=*/8, /*seed=*/3);
  const tensor x = f.ds.test_image(0);
  (void)oracle->query(x, f.ds.test_label(0));
  EXPECT_EQ(oracle->queries(), 1);  // collapsed: 8 identical draws would waste passes
}

TEST(DefendedOracle, RandomizedChainSpendsEotPasses) {
  const auto& f = fixture::get();
  const preprocessor_chain chain = make_chain("noise");
  auto oracle = attacks::make_defended_oracle(attacks::make_clear_oracle(*f.vit), chain, 4, 3);
  (void)oracle->query(f.ds.test_image(0), f.ds.test_label(0));
  EXPECT_EQ(oracle->queries(), 4);
}

TEST(DefendedOracle, EotAverageIsCloserToNoiseFreeGradient) {
  const auto& f = fixture::get();
  const tensor x = f.ds.test_image(1);
  const std::int64_t y = f.ds.test_label(1);

  auto clean = attacks::make_clear_oracle(*f.vit);
  const tensor g_ref = clean->query(x, y).gradient;

  const preprocessor_chain chain = make_chain("noise");
  double d1 = 0.0, d16 = 0.0;
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    auto one = attacks::make_defended_oracle(attacks::make_clear_oracle(*f.vit), chain, 1,
                                             trial * 2 + 1);
    auto many = attacks::make_defended_oracle(attacks::make_clear_oracle(*f.vit), chain, 16,
                                              trial * 2 + 2);
    d1 += ops::norm_l2(ops::sub(one->query(x, y).gradient, g_ref));
    d16 += ops::norm_l2(ops::sub(many->query(x, y).gradient, g_ref));
  }
  EXPECT_LT(d16, d1);
}

TEST(DefendedEval, QuantizeChainPgdBpdaStillBeatsSoftwareOnlyDefense) {
  // Athalye et al.'s point, reproduced: a shattered-gradient software
  // defense alone does not survive BPDA.
  const auto& f = fixture::get();
  const preprocessor_chain chain = make_chain("quantize");
  const defended_model dm{*f.vit, chain};

  attacks::defended_eval_config cfg;
  cfg.kind = attacks::attack_kind::pgd;
  cfg.params = attacks::params_for_dataset("cifar10_like");
  cfg.max_samples = 16;
  cfg.seed = 77;
  const attacks::robust_eval r =
      attacks::evaluate_attack_defended(dm, f.ds, cfg, attacks::clear_oracle_factory(*f.vit));
  EXPECT_EQ(r.samples, 16);
  EXPECT_LT(r.robust_accuracy, 0.5f);  // the software defense falls to BPDA
}

TEST(DefendedEval, PeltaPlusSoftwareKeepsRobustAccuracyHigh) {
  const auto& f = fixture::get();
  const preprocessor_chain chain = make_chain("quantize");
  const defended_model dm{*f.vit, chain};

  attacks::defended_eval_config cfg;
  cfg.kind = attacks::attack_kind::pgd;
  cfg.params = attacks::params_for_dataset("cifar10_like");
  cfg.max_samples = 16;
  cfg.seed = 78;
  const attacks::robust_eval r =
      attacks::evaluate_attack_defended(dm, f.ds, cfg, attacks::shielded_oracle_factory(*f.vit));
  EXPECT_GT(r.robust_accuracy, 0.6f);  // PELTA's masking still holds underneath
}

}  // namespace
}  // namespace pelta::defenses
