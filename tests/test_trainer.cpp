// Trainer: data-parallel shard equivalence, gradient accumulation, epochs.
#include <gtest/gtest.h>

#include "autodiff/gradcheck.h"
#include "autodiff/ops_elementwise.h"
#include "models/trainer.h"
#include "models/vit.h"
#include "tensor/ops.h"

namespace pelta::models {
namespace {

data::dataset tiny_dataset() {
  data::dataset_config c = data::cifar10_like();
  c.classes = 4;
  c.train_per_class = 20;
  c.test_per_class = 5;
  return data::dataset{c};
}

vit_config tiny_vit() {
  vit_config c;
  c.name = "trainer-vit";
  c.image_size = 16;
  c.patch_size = 4;
  c.dim = 16;
  c.heads = 2;
  c.blocks = 1;
  c.mlp_hidden = 32;
  c.classes = 4;
  return c;
}

TEST(ShardedTrainer, GradientsMatchSequential) {
  const data::dataset ds = tiny_dataset();
  const data::batch b = ds.gather_train({0, 1, 20, 21, 40, 41, 60, 61});

  vit_model seq{tiny_vit()};
  vit_model par{tiny_vit()};  // identical seed -> identical parameters

  seq.params().zero_grads();
  const float loss_seq = loss_and_grad(seq, b);
  par.params().zero_grads();
  const float loss_par = loss_and_grad_sharded(par, b, 4);

  EXPECT_NEAR(loss_seq, loss_par, 1e-4f);
  for (std::size_t k = 0; k < seq.params().size(); ++k) {
    const tensor& gs = seq.params().at(k).grad;
    const tensor& gp = par.params().at(k).grad;
    EXPECT_LT(ad::max_rel_error(gs, gp, 1e-3f), 1e-2f) << seq.params().at(k).name;
  }
}

TEST(ShardedTrainer, DeterministicAcrossRuns) {
  const data::dataset ds = tiny_dataset();
  const data::batch b = ds.gather_train({0, 5, 21, 26, 41, 46, 61, 66});
  vit_model a{tiny_vit()}, c{tiny_vit()};
  a.params().zero_grads();
  c.params().zero_grads();
  loss_and_grad_sharded(a, b, 8);
  loss_and_grad_sharded(c, b, 8);
  for (std::size_t k = 0; k < a.params().size(); ++k) {
    auto ga = a.params().at(k).grad.data();
    auto gc = c.params().at(k).grad.data();
    for (std::size_t i = 0; i < ga.size(); ++i) ASSERT_FLOAT_EQ(ga[i], gc[i]);
  }
}

TEST(ShardedTrainer, ShardCountClampedToBatch) {
  const data::dataset ds = tiny_dataset();
  const data::batch b = ds.gather_train({0, 1});
  vit_model m{tiny_vit()};
  m.params().zero_grads();
  EXPECT_NO_THROW(loss_and_grad_sharded(m, b, 64));  // clamps to 2 shards
}

TEST(ShardedTrainer, SingleShardIsSequentialPath) {
  const data::dataset ds = tiny_dataset();
  const data::batch b = ds.gather_train({0, 1, 2, 3});
  vit_model a{tiny_vit()}, c{tiny_vit()};
  a.params().zero_grads();
  c.params().zero_grads();
  const float l1 = loss_and_grad(a, b);
  const float l2 = loss_and_grad_sharded(c, b, 1);
  EXPECT_FLOAT_EQ(l1, l2);
  for (std::size_t k = 0; k < a.params().size(); ++k) {
    auto ga = a.params().at(k).grad.data();
    auto gc = c.params().at(k).grad.data();
    for (std::size_t i = 0; i < ga.size(); ++i) ASSERT_FLOAT_EQ(ga[i], gc[i]);
  }
}

TEST(Trainer, GradAccumulatesAcrossCalls) {
  const data::dataset ds = tiny_dataset();
  const data::batch b = ds.gather_train({0, 1, 2, 3});
  vit_model m{tiny_vit()};
  m.params().zero_grads();
  loss_and_grad(m, b);
  const float g1 = ops::norm_l2(m.params().get("head.w").grad);
  loss_and_grad(m, b);
  const float g2 = ops::norm_l2(m.params().get("head.w").grad);
  EXPECT_NEAR(g2, 2.0f * g1, 1e-3f * g1);  // same batch -> doubled gradient
}

TEST(Trainer, ShardedTrainingConvergesLikeSequential) {
  const data::dataset ds = tiny_dataset();
  vit_model m{tiny_vit()};
  train_config cfg;
  cfg.epochs = 6;
  cfg.batch_size = 16;
  cfg.lr = 4e-3f;
  cfg.shards = 4;
  const train_report r = train_model(m, ds, cfg);
  EXPECT_GT(r.test_accuracy, 0.8f);
}

TEST(Graph, ParamAdjointsListsOnlyGradHolders) {
  ad::parameter used{"used", tensor::ones({2})};
  ad::parameter unused{"unused", tensor::ones({2})};
  ad::graph g;
  const ad::node_id x = g.add_input(tensor::ones({2}));
  const ad::node_id p = g.add_parameter(used);
  g.add_parameter(unused);  // present in graph, not on the loss path
  const ad::node_id y = g.add_transform(ad::make_mul(), {x, p});
  g.backward_from(y, tensor::ones({2}));

  const auto adjoints = g.param_adjoints();
  ASSERT_EQ(adjoints.size(), 1u);
  EXPECT_EQ(adjoints[0].first, &used);
}

}  // namespace
}  // namespace pelta::models
