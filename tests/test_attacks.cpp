// Attack suite: oracles, the six attacks, the runner — and the paper's
// headline behaviour: white-box attacks succeed against clear models and
// largely fail against PELTA-shielded ones.
#include <gtest/gtest.h>

#include "attacks/runner.h"
#include "models/trainer.h"
#include "models/zoo.h"
#include "tensor/ops.h"

namespace pelta::attacks {
namespace {

// One shared trained fixture (training once keeps the suite fast).
struct fixture {
  data::dataset ds;
  std::unique_ptr<models::vit_model> vit;
  std::unique_ptr<models::resnet_model> bit;

  fixture()
      : ds{[] {
          data::dataset_config c = data::cifar10_like();
          c.classes = 4;
          c.train_per_class = 60;
          c.test_per_class = 20;
          return c;
        }()} {
    models::vit_config vc;
    vc.name = "tiny-vit";
    vc.image_size = 16;
    vc.patch_size = 4;
    vc.dim = 16;
    vc.heads = 2;
    vc.blocks = 2;
    vc.mlp_hidden = 32;
    vc.classes = 4;
    vit = std::make_unique<models::vit_model>(vc);

    models::resnet_config rc;
    rc.name = "tiny-bit";
    rc.flavor = models::resnet_flavor::groupnorm_ws;
    rc.stage_widths = {8, 16};
    rc.blocks_per_stage = 1;
    rc.classes = 4;
    bit = std::make_unique<models::resnet_model>(rc);

    models::train_config tc;
    tc.epochs = 10;
    tc.batch_size = 16;
    tc.lr = 4e-3f;
    models::train_model(*vit, ds, tc);
    models::train_model(*bit, ds, tc);
  }

  static const fixture& get() {
    static fixture f;
    return f;
  }
};

TEST(ProjectLinf, StaysInBallAndPixelRange) {
  rng g{1};
  const tensor x0 = tensor::rand_uniform(g, {3, 4, 4});
  const tensor far = tensor::rand_uniform(g, {3, 4, 4}, -2.0f, 3.0f);
  const tensor p = project_linf(far, x0, 0.1f);
  EXPECT_LE(linf_distance(p, x0), 0.1f + 1e-6f);
  for (float v : p.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(ProjectLinf, InsideBallUntouched) {
  rng g{2};
  const tensor x0 = tensor::rand_uniform(g, {8}, 0.3f, 0.7f);
  tensor x = x0;
  x.add_scaled_(tensor::ones({8}), 0.01f);
  const tensor p = project_linf(x, x0, 0.05f);
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(p[i], x[i]);
}

TEST(ClearOracle, GradientIsDirectionOfLossIncrease) {
  const fixture& f = fixture::get();
  auto oracle = make_clear_oracle(*f.vit);
  const tensor x0 = f.ds.test_image(0);
  const std::int64_t y = f.ds.test_label(0);

  const oracle_result q = oracle->query(x0, y);
  EXPECT_TRUE(q.gradient.same_shape(x0));
  EXPECT_GT(ops::norm_l2(q.gradient), 0.0f);
  EXPECT_EQ(q.logits.numel(), 4);

  // Directional-derivative check: stepping along the gradient must raise
  // the loss.
  tensor x1 = x0;
  x1.add_scaled_(q.gradient, 1e-2f / ops::norm_l2(q.gradient));
  const oracle_result q1 = oracle->query(x1, y);
  EXPECT_GT(q1.loss, q.loss);
  EXPECT_EQ(oracle->queries(), 2);
}

TEST(ClearOracle, LogitSeedSelectsObjective) {
  const fixture& f = fixture::get();
  auto oracle = make_clear_oracle(*f.vit);
  const tensor x0 = f.ds.test_image(1);
  tensor seed = tensor::zeros({4});
  seed[2] = 1.0f;  // objective = Z_2
  const oracle_result q = oracle->query_logit_seed(x0, seed);
  EXPECT_NEAR(q.loss, q.logits[2], 1e-5f);
  EXPECT_TRUE(q.gradient.same_shape(x0));
}

TEST(ShieldedOracle, SubstituteGradientHasInputShape) {
  const fixture& f = fixture::get();
  for (const models::model* m : {static_cast<const models::model*>(f.vit.get()),
                                 static_cast<const models::model*>(f.bit.get())}) {
    auto oracle = make_shielded_oracle(*m, 77);
    const oracle_result q = oracle->query(f.ds.test_image(2), f.ds.test_label(2));
    EXPECT_TRUE(q.gradient.same_shape(f.ds.test_image(2))) << m->name();
    EXPECT_GT(ops::norm_l2(q.gradient), 0.0f) << m->name();
  }
}

TEST(ShieldedOracle, SubstituteDivergesFromTrueGradient) {
  const fixture& f = fixture::get();
  auto clear = make_clear_oracle(*f.vit);
  auto shielded = make_shielded_oracle(*f.vit, 78);
  const tensor x0 = f.ds.test_image(3);
  const std::int64_t y = f.ds.test_label(3);
  const tensor g_true = clear->query(x0, y).gradient;
  const tensor g_sub = shielded->query(x0, y).gradient;
  // cosine similarity of sign patterns should be far from 1
  const float agree = ops::dot(ops::sign(g_true), ops::sign(g_sub)) /
                      static_cast<float>(g_true.numel());
  EXPECT_LT(agree, 0.8f);
}

TEST(ShieldedOracle, ResetRedrawsKernel) {
  const fixture& f = fixture::get();
  auto oracle = make_shielded_oracle(*f.vit, 79);
  const tensor x0 = f.ds.test_image(4);
  const tensor g1 = oracle->query(x0, f.ds.test_label(4)).gradient;
  rng g{80};
  oracle->reset(g);
  const tensor g2 = oracle->query(x0, f.ds.test_label(4)).gradient;
  EXPECT_GT(ops::norm_linf(ops::sub(g1, g2)), 1e-6f);
}

TEST(ShieldedOracle, EnclaveAccumulatesWorstCaseFootprint) {
  const fixture& f = fixture::get();
  tee::enclave enclave;
  auto oracle = make_shielded_oracle(*f.vit, 81, &enclave);
  oracle->query(f.ds.test_image(5), f.ds.test_label(5));
  const std::int64_t after_one = enclave.used_bytes();
  EXPECT_GT(after_one, 0);
  oracle->query(f.ds.test_image(5), f.ds.test_label(5));
  EXPECT_EQ(enclave.used_bytes(), after_one);  // idempotent keys, no growth
}

TEST(AttentionRollout, UnitMeanPositiveSaliency) {
  const fixture& f = fixture::get();
  auto oracle = make_clear_oracle(*f.vit);
  const tensor phi = oracle->attention_saliency(f.ds.test_image(6));
  EXPECT_TRUE(phi.same_shape(f.ds.test_image(6)));
  for (float v : phi.data()) EXPECT_GE(v, 0.0f);
  EXPECT_NEAR(ops::mean(phi), 1.0f, 1e-3f);
}

TEST(AttentionRollout, CnnThrows) {
  const fixture& f = fixture::get();
  auto oracle = make_clear_oracle(*f.bit);
  EXPECT_THROW(oracle->attention_saliency(f.ds.test_image(0)), error);
}

// ---- attack behaviour on the clear (unshielded) model -----------------------

TEST(ClearAttacks, PgdDefeatsUnshieldedModel) {
  const fixture& f = fixture::get();
  const suite_params p = table2_cifar_params();
  const robust_eval r = evaluate_attack(*f.vit, f.ds, attack_kind::pgd, p,
                                        clear_oracle_factory(*f.vit), 30, 5);
  EXPECT_LE(r.robust_accuracy, 0.15f) << "PGD should defeat the open white box";
}

TEST(ClearAttacks, FgsmWeakerThanPgd) {
  const fixture& f = fixture::get();
  const suite_params p = table2_cifar_params();
  const robust_eval fgsm = evaluate_attack(*f.vit, f.ds, attack_kind::fgsm, p,
                                           clear_oracle_factory(*f.vit), 30, 5);
  const robust_eval pgd = evaluate_attack(*f.vit, f.ds, attack_kind::pgd, p,
                                          clear_oracle_factory(*f.vit), 30, 5);
  EXPECT_GE(fgsm.robust_accuracy, pgd.robust_accuracy);
}

TEST(ClearAttacks, AllIterativeAttacksStayInBall) {
  const fixture& f = fixture::get();
  const suite_params p = table2_cifar_params();
  const tensor x0 = f.ds.test_image(7);
  const std::int64_t y = f.ds.test_label(7);
  auto oracle = make_clear_oracle(*f.vit);
  rng g{6};

  fgsm_config fc;
  fc.eps = p.eps;
  EXPECT_LE(linf_distance(run_fgsm(*oracle, x0, y, fc).adversarial, x0), p.eps + 1e-5f);

  pgd_config pc;
  pc.eps = p.eps;
  pc.eps_step = p.eps_step;
  pc.steps = 10;
  EXPECT_LE(linf_distance(run_pgd(*oracle, x0, y, pc).adversarial, x0), p.eps + 1e-5f);

  mim_config mc;
  mc.eps = p.eps;
  mc.eps_step = p.eps_step;
  mc.steps = 10;
  EXPECT_LE(linf_distance(run_mim(*oracle, x0, y, mc).adversarial, x0), p.eps + 1e-5f);

  apgd_config ac;
  ac.eps = p.eps;
  ac.max_queries = 20;
  EXPECT_LE(linf_distance(run_apgd(*oracle, x0, y, ac, g).adversarial, x0), p.eps + 1e-5f);
}

TEST(ClearAttacks, CwFindsSmallPerturbation) {
  const fixture& f = fixture::get();
  auto oracle = make_clear_oracle(*f.vit);
  cw_config c;
  c.steps = 40;
  c.eps_step = 0.01f;
  c.c = 20.0f;
  std::int64_t fooled = 0;
  for (std::int64_t i = 0; i < 10; ++i) {
    const attack_result r = run_cw(*oracle, f.ds.test_image(i), f.ds.test_label(i), c);
    if (r.misclassified) ++fooled;
  }
  EXPECT_GE(fooled, 6);
}

TEST(ClearAttacks, TrajectoryTraceRecordsSteps) {
  const fixture& f = fixture::get();
  auto oracle = make_clear_oracle(*f.vit);
  pgd_config c;
  c.eps = 0.031f;
  c.eps_step = 0.0031f;
  c.steps = 8;
  c.early_stop = false;
  c.trace = true;
  const attack_result r = run_pgd(*oracle, f.ds.test_image(8), f.ds.test_label(8), c);
  ASSERT_GE(r.trajectory.size(), 2u);
  // l∞ distance grows monotonically from 0 and stays inside the ball.
  EXPECT_FLOAT_EQ(r.trajectory.front().linf_from_origin, 0.0f);
  for (const auto& pt : r.trajectory) EXPECT_LE(pt.linf_from_origin, 0.031f + 1e-5f);
}

// ---- the paper's central claim ------------------------------------------------

TEST(ShieldedAttacks, PeltaLiftsRobustAccuracy) {
  const fixture& f = fixture::get();
  const suite_params p = table2_cifar_params();
  for (const models::model* m : {static_cast<const models::model*>(f.vit.get()),
                                 static_cast<const models::model*>(f.bit.get())}) {
    const robust_eval clear = evaluate_attack(*m, f.ds, attack_kind::pgd, p,
                                              clear_oracle_factory(*m), 30, 7);
    const robust_eval shielded = evaluate_attack(*m, f.ds, attack_kind::pgd, p,
                                                 shielded_oracle_factory(*m), 30, 7);
    EXPECT_GT(shielded.robust_accuracy, clear.robust_accuracy + 0.4f)
        << m->name() << ": clear=" << clear.robust_accuracy
        << " shielded=" << shielded.robust_accuracy;
  }
}

TEST(ShieldedAttacks, RandomUniformBaselineIsWeak) {
  const fixture& f = fixture::get();
  const robust_eval r = evaluate_random_uniform(*f.vit, f.ds, 0.031f, 40, 8);
  EXPECT_GE(r.robust_accuracy, 0.8f);
}

TEST(Saga, DefeatsUnshieldedEnsembleMembers) {
  const fixture& f = fixture::get();
  suite_params p = table2_cifar_params();
  p.saga_steps = 25;
  const saga_eval r = evaluate_saga(*f.vit, *f.bit, f.ds, false, false, p, 25, 9);
  EXPECT_LE(r.vit_robust_accuracy, 0.5f);
  EXPECT_LE(r.cnn_robust_accuracy, 0.5f);
}

TEST(Saga, FullShieldProtectsEnsemble) {
  const fixture& f = fixture::get();
  suite_params p = table2_cifar_params();
  p.saga_steps = 25;
  const saga_eval none = evaluate_saga(*f.vit, *f.bit, f.ds, false, false, p, 25, 9);
  const saga_eval both = evaluate_saga(*f.vit, *f.bit, f.ds, true, true, p, 25, 9);
  EXPECT_GT(both.ensemble_robust_accuracy, none.ensemble_robust_accuracy + 0.3f);
}

TEST(Saga, PartialShieldYieldsHalfProtection) {
  // Shield only the ViT: SAGA chases the clear BiT loss; random selection
  // lands the ensemble near 50% (Table IV signature).
  const fixture& f = fixture::get();
  suite_params p = table2_cifar_params();
  p.saga_steps = 25;
  const saga_eval r = evaluate_saga(*f.vit, *f.bit, f.ds, true, false, p, 30, 10);
  EXPECT_GT(r.ensemble_robust_accuracy, 0.25f);
  EXPECT_LT(r.ensemble_robust_accuracy, 0.85f);
  EXPECT_GT(r.vit_robust_accuracy, r.cnn_robust_accuracy);
}

TEST(Runner, DeterministicAcrossRuns) {
  const fixture& f = fixture::get();
  const suite_params p = table2_cifar_params();
  const robust_eval a = evaluate_attack(*f.vit, f.ds, attack_kind::pgd, p,
                                        shielded_oracle_factory(*f.vit), 15, 11);
  const robust_eval b = evaluate_attack(*f.vit, f.ds, attack_kind::pgd, p,
                                        shielded_oracle_factory(*f.vit), 15, 11);
  EXPECT_EQ(a.attack_successes, b.attack_successes);
  EXPECT_FLOAT_EQ(a.robust_accuracy, b.robust_accuracy);
}

TEST(Runner, RespectsSampleBudget) {
  const fixture& f = fixture::get();
  const auto idx = correctly_classified_indices(*f.vit, f.ds, 12);
  EXPECT_LE(idx.size(), 12u);
  for (std::int64_t i : idx)
    EXPECT_EQ(models::predict_one(*f.vit, f.ds.test_image(i)), f.ds.test_label(i));
}

TEST(Runner, AttackNames) {
  EXPECT_STREQ(attack_name(attack_kind::fgsm), "FGSM");
  EXPECT_STREQ(attack_name(attack_kind::apgd), "APGD");
  EXPECT_STREQ(attack_name(attack_kind::cw), "C&W");
}

TEST(Params, Table2PresetsMatchPaper) {
  const suite_params c = table2_cifar_params();
  EXPECT_FLOAT_EQ(c.eps, 0.031f);
  EXPECT_FLOAT_EQ(c.eps_step, 0.00155f);
  EXPECT_EQ(c.pgd_steps, 20);
  EXPECT_FLOAT_EQ(c.mim_mu, 1.0f);
  EXPECT_FLOAT_EQ(c.apgd_rho, 0.75f);
  EXPECT_FLOAT_EQ(c.cw_confidence, 50.0f);
  EXPECT_EQ(c.cw_steps, 30);
  EXPECT_FLOAT_EQ(c.saga_alpha_k, 2.0e-4f);

  const suite_params i = table2_imagenet_params();
  EXPECT_FLOAT_EQ(i.eps, 0.062f);
  EXPECT_FLOAT_EQ(i.eps_step, 0.0031f);
  EXPECT_FLOAT_EQ(i.saga_alpha_k, 0.001f);

  EXPECT_FLOAT_EQ(params_for_dataset("cifar10_like").eps, 0.031f);
  EXPECT_FLOAT_EQ(params_for_dataset("imagenet_like").eps, 0.062f);
}

}  // namespace
}  // namespace pelta::attacks
