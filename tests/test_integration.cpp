// End-to-end integration: the full Fig. 1 story — federated training, a
// compromised client probing its local copy, PELTA shielding, and the
// replay against a victim node.
#include <gtest/gtest.h>

#include "core/pelta.h"
#include "fl/federation.h"
#include "models/trainer.h"
#include "models/zoo.h"
#include "shield/policy.h"

namespace pelta {
namespace {

TEST(EndToEnd, FederatedTrainShieldAttackReplay) {
  data::dataset_config dc = data::cifar10_like();
  dc.classes = 4;
  dc.train_per_class = 40;
  dc.test_per_class = 15;
  const data::dataset ds{dc};

  // 1. Federated training with one compromised node.
  fl::federation_config cfg;
  cfg.clients = 3;
  cfg.compromised = 1;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 16;
  cfg.local.lr = 4e-3f;
  fl::model_factory factory = [] {
    models::vit_config c;
    c.name = "e2e-vit";
    c.image_size = 16;
    c.patch_size = 4;
    c.dim = 16;
    c.heads = 2;
    c.blocks = 2;
    c.mlp_hidden = 32;
    c.classes = 4;
    c.seed = 41;
    return std::make_unique<models::vit_model>(c);
  };
  fl::federation fed{cfg, factory, ds};
  fed.run_rounds(5);
  ASSERT_GT(fed.global_test_accuracy(), 0.8f);

  // 2. Broadcast the final model; attacker and victim install it.
  const byte_buffer global = fed.server().broadcast();
  fl::compromised_client* attacker = fed.compromised_clients()[0];
  attacker->receive_global(global);
  fl::fl_client& victim = fed.client(0);
  victim.receive_global(global);

  // 3. Attack without and with PELTA on the attacker's own device.
  const attacks::suite_params params = attacks::table2_cifar_params();
  std::int64_t clear_hits = 0, shielded_hits = 0, victims_fooled = 0, evaluated = 0;
  for (std::int64_t i = 0; i < ds.test_size() && evaluated < 12; ++i) {
    if (models::predict_one(attacker->local_model(), ds.test_image(i)) != ds.test_label(i))
      continue;
    ++evaluated;
    const auto clear = attacker->craft_adversarial(ds.test_image(i), ds.test_label(i), false,
                                                   attacks::attack_kind::pgd, params, 500 + i);
    const auto shielded = attacker->craft_adversarial(ds.test_image(i), ds.test_label(i), true,
                                                      attacks::attack_kind::pgd, params, 500 + i);
    if (clear.misclassified) {
      ++clear_hits;
      // 4. Replay against the victim: identical weights, identical outcome.
      if (models::predict_one(victim.local_model(), clear.adversarial) != ds.test_label(i))
        ++victims_fooled;
    }
    if (shielded.misclassified) ++shielded_hits;
  }
  ASSERT_GE(evaluated, 8);
  EXPECT_GE(clear_hits, evaluated * 7 / 10) << "open white box should mostly succeed";
  EXPECT_LT(shielded_hits, clear_hits) << "PELTA must reduce attack success";
  EXPECT_EQ(victims_fooled, clear_hits) << "replay against same weights is exact";
}

TEST(EndToEnd, DefendedModelEnclaveWithinTrustZoneBudget) {
  // Table I's system constraint on the full zoo: every model's shield fits
  // comfortably inside the 30 MB TrustZone budget, even with gradients.
  models::task_spec task;
  task.classes = 10;
  rng g{7};
  const tensor probe = tensor::rand_uniform(g, {3, 16, 16});
  for (const char* name : {"ViT-L/16", "ViT-B/16", "ViT-B/32", "ResNet-56", "ResNet-164",
                           "BiT-M-R101x3", "BiT-M-R152x4"}) {
    defended_model defended{models::make_model(name, task)};
    const auto cost = defended.measure_shield_cost(probe, true);
    EXPECT_LE(cost.tee_bytes, defended.enclave().capacity_bytes()) << name;
    EXPECT_GT(cost.tee_bytes, 0) << name;
  }
}

TEST(EndToEnd, ShieldDepthAblationMonotoneMemory) {
  // Deeper Select frontiers strictly grow the enclave footprint.
  models::task_spec task;
  task.classes = 4;
  auto vit = models::make_vit_b16_sim(task);
  rng g{8};
  const tensor image = tensor::rand_uniform(g, {1, 3, 16, 16});

  std::int64_t last = 0;
  for (std::int64_t k = 1; k <= 4; ++k) {
    models::forward_pass fp = vit->forward(image, ad::norm_mode::eval);
    const auto frontier = shield::select_first_k_transforms(fp.graph, k);
    const shield::shield_report r = shield::pelta_shield(fp.graph, frontier, nullptr);
    EXPECT_GE(r.total_bytes(), last) << "depth " << k;
    last = r.total_bytes();
  }
}

}  // namespace
}  // namespace pelta
