// nn layer zoo: parameter store, initializers, layers, attention, optimizers.
#include <gtest/gtest.h>

#include "autodiff/gradcheck.h"
#include "nn/blocks.h"
#include "nn/init.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace pelta::nn {
namespace {

TEST(ParamStore, CreateAndLookup) {
  param_store store;
  rng g{1};
  store.create("a", tensor::ones({2, 3}));
  store.create("b", tensor::zeros({4}));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.scalar_count(), 10);
  EXPECT_TRUE(store.contains("a"));
  EXPECT_FALSE(store.contains("c"));
  EXPECT_FLOAT_EQ(store.get("a").value.at(0, 0), 1.0f);
  EXPECT_THROW(store.get("c"), error);
  EXPECT_THROW(store.create("a", tensor::ones({1})), error);  // duplicate
}

TEST(ParamStore, ZeroGrads) {
  param_store store;
  auto& p = store.create("w", tensor::ones({3}));
  p.grad.fill_(5.0f);
  store.zero_grads();
  for (float v : p.grad.data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(ParamStore, SaveLoadRoundTrip) {
  param_store a;
  rng g{2};
  a.create("w1", tensor::randn(g, {3, 3}));
  a.create("w2", tensor::randn(g, {5}));
  const byte_buffer buf = a.save_values();

  param_store b;
  b.create("w1", tensor::zeros({3, 3}));
  b.create("w2", tensor::zeros({5}));
  b.load_values(buf);
  for (std::int64_t i = 0; i < 9; ++i)
    EXPECT_FLOAT_EQ(b.get("w1").value[i], a.get("w1").value[i]);
  for (std::int64_t i = 0; i < 5; ++i)
    EXPECT_FLOAT_EQ(b.get("w2").value[i], a.get("w2").value[i]);
}

TEST(ParamStore, LoadRejectsWrongStructure) {
  param_store a;
  a.create("w", tensor::ones({4}));
  param_store b;
  b.create("w", tensor::ones({5}));
  EXPECT_THROW(b.load_values(a.save_values()), error);
}

TEST(ParamStore, AxpyAndCopy) {
  param_store a, b;
  a.create("w", tensor::ones({2}));
  b.create("w", tensor::full({2}, 3.0f));
  a.axpy_values(b, 2.0f);
  EXPECT_FLOAT_EQ(a.get("w").value[0], 7.0f);
  a.copy_values_from(b);
  EXPECT_FLOAT_EQ(a.get("w").value[1], 3.0f);
}

TEST(Init, XavierBounds) {
  rng g{3};
  const tensor w = xavier_uniform(g, {64, 64}, 64, 64);
  const float bound = std::sqrt(6.0f / 128.0f);
  for (float v : w.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(Init, HeNormalStd) {
  rng g{4};
  const tensor w = he_normal(g, {5000}, 50);
  float mean = ops::mean(w);
  double var = 0.0;
  for (float v : w.data()) var += (v - mean) * (v - mean);
  var /= static_cast<double>(w.numel());
  EXPECT_NEAR(std::sqrt(var), std::sqrt(2.0 / 50.0), 0.02);
}

TEST(Init, TruncNormalBounded) {
  rng g{5};
  const tensor w = trunc_normal02(g, {2000});
  for (float v : w.data()) EXPECT_LE(std::fabs(v), 0.04f);
}

TEST(Init, ConvFans) {
  EXPECT_EQ(conv_fan_in({8, 3, 5, 5}), 75);
  EXPECT_EQ(conv_fan_out({8, 3, 5, 5}), 200);
}

TEST(Layers, LinearShapesAndBias) {
  param_store store;
  rng g{6};
  linear_layer fc{store, g, "fc", 4, 3};
  EXPECT_TRUE(store.contains("fc.w"));
  EXPECT_TRUE(store.contains("fc.b"));

  ad::graph gr;
  const ad::node_id x = gr.add_input(tensor::randn(g, {2, 4}));
  const ad::node_id y = fc.apply(gr, x);
  EXPECT_EQ(gr.value(y).shape(), (shape_t{2, 3}));
  EXPECT_EQ(gr.at(y).tag, "fc");
}

TEST(Layers, TokenLinearShapes) {
  param_store store;
  rng g{7};
  token_linear_layer fc{store, g, "tl", 6, 4};
  ad::graph gr;
  const ad::node_id x = gr.add_input(tensor::randn(g, {2, 5, 6}));
  const ad::node_id y = fc.apply(gr, x);
  EXPECT_EQ(gr.value(y).shape(), (shape_t{2, 5, 4}));
}

TEST(Layers, ConvShapesPlain) {
  param_store store;
  rng g{8};
  conv2d_layer conv{store, g, "c", 3, 8, 3, 1, 1, true, false};
  ad::graph gr;
  const ad::node_id x = gr.add_input(tensor::randn(g, {2, 3, 8, 8}));
  const ad::node_id y = conv.apply(gr, x);
  EXPECT_EQ(gr.value(y).shape(), (shape_t{2, 8, 8, 8}));
  EXPECT_EQ(gr.find_tag("c.ws"), ad::invalid_node);  // no WS node
}

TEST(Layers, WeightStandardizedConvAddsWsNode) {
  param_store store;
  rng g{9};
  conv2d_layer conv{store, g, "c", 3, 8, 3, 1, 1, false, true};
  ad::graph gr;
  const ad::node_id x = gr.add_input(tensor::randn(g, {1, 3, 8, 8}));
  conv.apply(gr, x);
  const ad::node_id ws = gr.find_tag("c.ws");
  ASSERT_NE(ws, ad::invalid_node);
  EXPECT_FALSE(gr.at(ws).input_dependent);  // parameter-derived branch
}

TEST(Layers, NormLayersPreserveShape) {
  param_store store;
  rng g{10};
  batchnorm_layer bn{store, "bn", 4};
  groupnorm_layer gn{store, "gn", 4, 2};
  layernorm_layer ln{store, "ln", 6};

  ad::graph gr;
  const ad::node_id x4 = gr.add_input(tensor::randn(g, {2, 4, 3, 3}));
  EXPECT_EQ(gr.value(bn.apply(gr, x4, ad::norm_mode::train)).shape(), (shape_t{2, 4, 3, 3}));
  EXPECT_EQ(gr.value(gn.apply(gr, x4)).shape(), (shape_t{2, 4, 3, 3}));
  const ad::node_id x3 = gr.add_input(tensor::randn(g, {2, 5, 6}));
  EXPECT_EQ(gr.value(ln.apply(gr, x3)).shape(), (shape_t{2, 5, 6}));
}

TEST(Attention, OutputShapeAndSoftmaxTags) {
  param_store store;
  rng g{11};
  multi_head_attention mha{store, g, "attn", 8, 2};
  ad::graph gr;
  const ad::node_id x = gr.add_input(tensor::randn(g, {2, 5, 8}));
  const ad::node_id y = mha.apply(gr, x);
  EXPECT_EQ(gr.value(y).shape(), (shape_t{2, 5, 8}));

  for (int h = 0; h < 2; ++h) {
    const ad::node_id sm = gr.find_tag("attn.softmax.h" + std::to_string(h));
    ASSERT_NE(sm, ad::invalid_node);
    const tensor& probs = gr.value(sm);
    EXPECT_EQ(probs.shape(), (shape_t{2, 5, 5}));
    for (std::int64_t b = 0; b < 2; ++b)
      for (std::int64_t i = 0; i < 5; ++i) {
        double row = 0.0;
        for (std::int64_t j = 0; j < 5; ++j) row += probs.at(b, i, j);
        EXPECT_NEAR(row, 1.0, 1e-5);
      }
  }
}

TEST(Attention, IndivisibleHeadsThrow) {
  param_store store;
  rng g{12};
  EXPECT_THROW((multi_head_attention{store, g, "a", 7, 2}), error);
}

TEST(Attention, GradientFlowsToInput) {
  param_store store;
  rng g{13};
  multi_head_attention mha{store, g, "attn", 4, 2};
  ad::graph gr;
  const tensor x0 = tensor::randn(g, {1, 3, 4});
  const ad::node_id x = gr.add_input(x0);
  const ad::node_id y = mha.apply(gr, x);
  gr.backward_from(y, tensor::ones({1, 3, 4}));
  EXPECT_TRUE(gr.has_adjoint(x));
  EXPECT_GT(ops::norm_l2(gr.adjoint(x)), 0.0f);
}

TEST(Blocks, PatchEmbeddingPipeline) {
  param_store store;
  rng g{14};
  patch_embedding embed{store, g, "embed", 3, 8, 2, 16};
  EXPECT_EQ(embed.tokens(), 16);

  ad::graph gr;
  const ad::node_id x = gr.add_input(tensor::randn(g, {2, 3, 8, 8}));
  const ad::node_id z0 = embed.apply(gr, x);
  EXPECT_EQ(gr.value(z0).shape(), (shape_t{2, 17, 16}));  // T+1 class token
  EXPECT_NE(gr.find_tag("embed.patchify"), ad::invalid_node);
  EXPECT_NE(gr.find_tag("embed.proj"), ad::invalid_node);
  EXPECT_NE(gr.find_tag("embed.cls_cat"), ad::invalid_node);
  EXPECT_EQ(gr.find_tag("embed.out"), z0);
}

TEST(Blocks, EncoderBlockResidualIdentityAtZeroWeights) {
  // With all attention/MLP output-projection weights zeroed, the block must
  // reduce to the identity (residual connections only).
  param_store store;
  rng g{15};
  encoder_block block{store, g, "enc", 8, 2, 16};
  store.get("enc.attn.out.w").value.fill_(0.0f);
  store.get("enc.attn.out.b").value.fill_(0.0f);
  store.get("enc.mlp.fc2.w").value.fill_(0.0f);
  store.get("enc.mlp.fc2.b").value.fill_(0.0f);

  ad::graph gr;
  const tensor x0 = tensor::randn(g, {1, 4, 8});
  const ad::node_id x = gr.add_input(x0);
  const ad::node_id y = block.apply(gr, x);
  const tensor& out = gr.value(y);
  for (std::int64_t i = 0; i < x0.numel(); ++i) EXPECT_NEAR(out[i], x0[i], 1e-5f);
}

TEST(Optimizer, SgdConvergesOnQuadratic) {
  param_store store;
  auto& p = store.create("w", tensor::full({4}, 5.0f));
  sgd opt{0.1f};
  for (int i = 0; i < 200; ++i) {
    store.zero_grads();
    p.grad = p.value;  // d/dw (0.5 w²) = w
    opt.step(store);
  }
  EXPECT_LT(ops::norm_linf(p.value), 1e-4f);
}

TEST(Optimizer, SgdMomentumFasterThanPlain) {
  param_store a, b;
  auto& pa = a.create("w", tensor::full({1}, 5.0f));
  auto& pb = b.create("w", tensor::full({1}, 5.0f));
  sgd plain{0.02f};
  sgd heavy{0.02f, 0.9f};
  for (int i = 0; i < 40; ++i) {
    a.zero_grads();
    pa.grad = pa.value;
    plain.step(a);
    b.zero_grads();
    pb.grad = pb.value;
    heavy.step(b);
  }
  EXPECT_LT(std::fabs(pb.value[0]), std::fabs(pa.value[0]));
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  param_store store;
  auto& p = store.create("w", tensor::full({4}, 3.0f));
  adam opt{0.1f};
  for (int i = 0; i < 300; ++i) {
    store.zero_grads();
    p.grad = p.value;
    opt.step(store);
  }
  EXPECT_LT(ops::norm_linf(p.value), 1e-2f);
}

TEST(Optimizer, WeightDecayShrinksParams) {
  param_store store;
  auto& p = store.create("w", tensor::full({1}, 1.0f));
  sgd opt{0.1f, 0.0f, 0.5f};
  store.zero_grads();  // zero gradient: only decay acts
  opt.step(store);
  EXPECT_LT(p.value[0], 1.0f);
}

}  // namespace
}  // namespace pelta::nn
