// Model zoo: construction, forward shapes, frontier declarations, training.
#include <gtest/gtest.h>

#include "data/dataset.h"
#include "models/ensemble.h"
#include "models/trainer.h"
#include "models/zoo.h"
#include "tensor/ops.h"

namespace pelta::models {
namespace {

task_spec tiny_task() {
  task_spec t;
  t.image_size = 16;
  t.channels = 3;
  t.classes = 4;
  t.seed = 3;
  return t;
}

data::dataset tiny_dataset() {
  data::dataset_config c = data::cifar10_like();
  c.classes = 4;
  c.train_per_class = 40;
  c.test_per_class = 10;
  return data::dataset{c};
}

vit_config tiny_vit() {
  vit_config c;
  c.name = "tiny-vit";
  c.image_size = 16;
  c.patch_size = 4;
  c.dim = 16;
  c.heads = 2;
  c.blocks = 1;
  c.mlp_hidden = 32;
  c.classes = 4;
  return c;
}

resnet_config tiny_resnet(resnet_flavor flavor) {
  resnet_config c;
  c.name = "tiny-resnet";
  c.flavor = flavor;
  c.stage_widths = {8, 16};
  c.blocks_per_stage = 1;
  c.classes = 4;
  return c;
}

TEST(Zoo, AllSevenModelsConstruct) {
  const task_spec t = tiny_task();
  for (const char* name : {"ViT-L/16", "ViT-B/16", "ViT-B/32", "ResNet-56", "ResNet-164",
                           "BiT-M-R101x3", "BiT-M-R152x4"}) {
    auto m = make_model(name, t);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->name(), name);
    EXPECT_GT(m->parameter_count(), 0);
  }
  EXPECT_THROW(make_model("AlexNet", t), error);
}

TEST(Zoo, SizeOrderingMatchesPaperFamilies) {
  const task_spec t = tiny_task();
  EXPECT_GT(make_vit_l16_sim(t)->parameter_count(), make_vit_b16_sim(t)->parameter_count());
  EXPECT_GT(make_resnet164_sim(t)->parameter_count(), make_resnet56_sim(t)->parameter_count());
  EXPECT_GT(make_bit_r152x4_sim(t)->parameter_count(),
            make_bit_r101x3_sim(t)->parameter_count());
  EXPECT_GT(make_bit_r101x3_sim(t)->parameter_count(), make_resnet56_sim(t)->parameter_count());
}

TEST(Zoo, Table3RowsPerDataset) {
  EXPECT_EQ(table3_model_names("cifar10_like").size(), 6u);
  EXPECT_EQ(table3_model_names("imagenet_like").size(), 4u);
}

TEST(Vit, ForwardShapesAndTags) {
  vit_model m{tiny_vit()};
  rng g{4};
  forward_pass fp = m.forward(tensor::rand_uniform(g, {2, 3, 16, 16}), ad::norm_mode::eval);
  EXPECT_EQ(fp.graph.value(fp.logits).shape(), (shape_t{2, 4}));
  // The shield frontier tag must exist in every built graph.
  for (const std::string& tag : m.shield_frontier_tags())
    EXPECT_NE(fp.graph.find_tag(tag), ad::invalid_node) << tag;
  // Attention introspection used by SAGA.
  EXPECT_EQ(m.attention_blocks(), 1);
  EXPECT_EQ(m.attention_heads(), 2);
  EXPECT_NE(fp.graph.find_tag(m.attention_softmax_tag(0, 1)), ad::invalid_node);
  EXPECT_THROW(m.attention_softmax_tag(5, 0), error);
}

TEST(Vit, RejectsWrongInputShape) {
  vit_model m{tiny_vit()};
  rng g{5};
  EXPECT_THROW(m.forward(tensor::rand_uniform(g, {1, 3, 8, 8}), ad::norm_mode::eval), error);
}

TEST(Resnet, ForwardShapesBothFlavors) {
  rng g{6};
  const tensor x = tensor::rand_uniform(g, {2, 3, 16, 16});
  for (resnet_flavor flavor : {resnet_flavor::batchnorm, resnet_flavor::groupnorm_ws}) {
    resnet_model m{tiny_resnet(flavor)};
    forward_pass fp = m.forward(x, ad::norm_mode::eval);
    EXPECT_EQ(fp.graph.value(fp.logits).shape(), (shape_t{2, 4}));
    for (const std::string& tag : m.shield_frontier_tags())
      EXPECT_NE(fp.graph.find_tag(tag), ad::invalid_node) << tag;
    EXPECT_EQ(m.attention_blocks(), 0);  // CNNs expose no attention
  }
}

TEST(Resnet, FrontiersFollowPaperSectionVA) {
  EXPECT_EQ(resnet_model{tiny_resnet(resnet_flavor::batchnorm)}.shield_frontier_tags(),
            (std::vector<std::string>{"stem.relu"}));
  EXPECT_EQ(resnet_model{tiny_resnet(resnet_flavor::groupnorm_ws)}.shield_frontier_tags(),
            (std::vector<std::string>{"stem.conv"}));
}

TEST(Resnet, BitUsesWeightStandardizationAndGroupNorm) {
  resnet_model bit{tiny_resnet(resnet_flavor::groupnorm_ws)};
  rng g{7};
  forward_pass fp = bit.forward(tensor::rand_uniform(g, {1, 3, 16, 16}), ad::norm_mode::eval);
  EXPECT_NE(fp.graph.find_tag("stem.conv.ws"), ad::invalid_node);
  EXPECT_FALSE(bit.params().contains("stem.bn.gamma"));
  EXPECT_TRUE(bit.params().contains("s0b0.gn1.gamma"));

  resnet_model rn{tiny_resnet(resnet_flavor::batchnorm)};
  forward_pass fp2 = rn.forward(tensor::rand_uniform(g, {1, 3, 16, 16}), ad::norm_mode::eval);
  EXPECT_EQ(fp2.graph.find_tag("stem.conv.ws"), ad::invalid_node);
  EXPECT_TRUE(rn.params().contains("stem.bn.gamma"));
}

TEST(Trainer, VitLearnsTinyTask) {
  const data::dataset ds = tiny_dataset();
  vit_model m{tiny_vit()};
  train_config cfg;
  cfg.epochs = 8;
  cfg.batch_size = 16;
  cfg.lr = 3e-3f;
  const train_report r = train_model(m, ds, cfg);
  EXPECT_GT(r.train_accuracy, 0.9f) << "loss=" << r.final_loss;
  EXPECT_GT(r.test_accuracy, 0.85f);
}

TEST(Trainer, ResnetLearnsTinyTask) {
  const data::dataset ds = tiny_dataset();
  resnet_model m{tiny_resnet(resnet_flavor::batchnorm)};
  train_config cfg;
  cfg.epochs = 12;
  cfg.batch_size = 16;
  cfg.lr = 5e-3f;
  const train_report r = train_model(m, ds, cfg);
  EXPECT_GT(r.test_accuracy, 0.85f) << "loss=" << r.final_loss;
}

TEST(Trainer, BitLearnsTinyTask) {
  const data::dataset ds = tiny_dataset();
  resnet_model m{tiny_resnet(resnet_flavor::groupnorm_ws)};
  train_config cfg;
  cfg.epochs = 12;
  cfg.batch_size = 16;
  cfg.lr = 5e-3f;
  const train_report r = train_model(m, ds, cfg);
  EXPECT_GT(r.test_accuracy, 0.85f) << "loss=" << r.final_loss;
}

TEST(Trainer, LossDecreasesAcrossEpochs) {
  const data::dataset ds = tiny_dataset();
  vit_model m{tiny_vit()};
  const data::batch b = ds.gather_train({0, 1, 2, 3, 4, 5, 6, 7});
  m.params().zero_grads();
  const float initial = loss_and_grad(m, b);
  train_config cfg;
  cfg.epochs = 4;
  train_model(m, ds, cfg);
  m.params().zero_grads();
  const float after = loss_and_grad(m, b);
  EXPECT_LT(after, initial);
}

TEST(Model, PredictHelpers) {
  const data::dataset ds = tiny_dataset();
  vit_model m{tiny_vit()};
  train_config cfg;
  cfg.epochs = 6;
  train_model(m, ds, cfg);

  const tensor preds = predict(m, ds.test_images());
  EXPECT_EQ(preds.numel(), ds.test_size());
  const std::int64_t p0 = predict_one(m, ds.test_image(0));
  EXPECT_EQ(p0, static_cast<std::int64_t>(preds[0]));
  const float acc = accuracy(m, ds.test_images(), ds.test_labels());
  EXPECT_GE(acc, 0.0f);
  EXPECT_LE(acc, 1.0f);
}

TEST(Ensemble, RandomSelectionMixesMembers) {
  const data::dataset ds = tiny_dataset();
  vit_model vit{tiny_vit()};
  resnet_model cnn{tiny_resnet(resnet_flavor::groupnorm_ws)};
  train_config cfg;
  cfg.epochs = 6;
  train_model(vit, ds, cfg);
  train_model(cnn, ds, cfg);

  random_selection_ensemble ens{vit, cnn};
  rng g{8};
  const float acc = ens.accuracy(ds.test_images(), ds.test_labels(), g);
  const float a1 = accuracy(vit, ds.test_images(), ds.test_labels());
  const float a2 = accuracy(cnn, ds.test_images(), ds.test_labels());
  // Random selection lands between the members (with sampling slack).
  EXPECT_GE(acc, std::min(a1, a2) - 0.15f);
  EXPECT_LE(acc, std::max(a1, a2) + 0.15f);
}

TEST(Ensemble, ClassifyUsesSelectedMember) {
  vit_model vit{tiny_vit()};
  resnet_config rc = tiny_resnet(resnet_flavor::batchnorm);
  resnet_model cnn{rc};
  random_selection_ensemble ens{vit, cnn};
  rng g{9};
  const data::dataset ds = tiny_dataset();
  const std::int64_t pred = ens.classify(ds.test_image(0), g);
  EXPECT_GE(pred, 0);
  EXPECT_LT(pred, 4);
}

}  // namespace
}  // namespace pelta::models
