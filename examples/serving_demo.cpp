// Serving demo: a fleet of producer threads fires single-sample classify
// requests at a TEE-shielded model; the dynamic batcher coalesces them
// into model batches; every request comes back with its logits, its
// prediction and a latency breakdown (queue / batch / enclave / compute).
//
//   $ ./examples/serving_demo
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/pelta.h"
#include "core/table.h"
#include "data/dataset.h"
#include "models/trainer.h"
#include "models/vit.h"
#include "serve/server.h"

namespace {

using namespace pelta;

}  // namespace

int main() {
  std::printf("%s — batched shielded-inference serving demo\n\n", version());

  // 1. A small task and a briefly trained ViT classifier.
  data::dataset_config dc = data::cifar10_like();
  dc.classes = 4;
  dc.train_per_class = 40;
  dc.test_per_class = 25;
  const data::dataset ds{dc};

  models::vit_config vc;
  vc.name = "serving-vit";
  vc.image_size = 16;
  vc.patch_size = 4;
  vc.dim = 16;
  vc.heads = 2;
  vc.blocks = 1;
  vc.mlp_hidden = 32;
  vc.classes = dc.classes;
  vc.seed = 7;
  models::vit_model model{vc};

  models::train_config tc;
  tc.epochs = 6;
  tc.batch_size = 16;
  tc.lr = 4e-3f;
  const models::train_report tr = models::train_model(model, ds, tc);
  std::printf("trained %s: clean test accuracy %.1f%%\n\n", model.name().c_str(),
              100.0 * tr.test_accuracy);

  // 2. The server: shielded backend + enclave + dynamic batching policy.
  tee::enclave enclave;
  serve::model_backend backend{model};
  serve::server_config cfg;
  cfg.policy = {16, 2e6};  // close at 16 requests or 2 ms, whichever first
  serve::server srv{backend, enclave, cfg};

  // 3. Four producer threads submit 200 requests total, each stamped with
  //    its simulated arrival (a Poisson stream, ~0.3 ms mean gap).
  const std::int64_t producers = 4, per_producer = 50;
  const std::int64_t n = producers * per_producer;
  const std::vector<double> arrivals = serve::make_poisson_arrivals(n, 3e5, 42);
  std::vector<std::thread> fleet;
  for (std::int64_t p = 0; p < producers; ++p)
    fleet.emplace_back([&, p] {
      for (std::int64_t i = 0; i < per_producer; ++i) {
        const std::int64_t id = p * per_producer + i;
        serve::classify_request r;
        r.id = id;
        r.image = ds.test_image(id % ds.test_size());
        r.submit_ns = arrivals[static_cast<std::size_t>(id)];
        srv.queue().push(r);
      }
    });
  for (std::thread& t : fleet) t.join();
  srv.queue().close();

  const serve::serving_report report = srv.drain();

  // 4. What happened, per layer of the latency stack.
  std::int64_t correct = 0;
  std::vector<double> queue_ms, batch_ms, enclave_ms, compute_ms, total_ms;
  for (const serve::classify_result& r : report.results) {
    if (r.predicted ==
        static_cast<std::int64_t>(ds.test_label(r.request_id % ds.test_size())))
      ++correct;
    queue_ms.push_back(r.latency.queue_ns / 1e6);
    batch_ms.push_back(r.latency.batch_ns / 1e6);
    enclave_ms.push_back(r.latency.enclave_ns / 1e6);
    compute_ms.push_back(r.latency.compute_ns / 1e6);
    total_ms.push_back(r.latency.total_ns() / 1e6);
  }

  std::printf("served %lld requests in %lld batches (mean batch %.1f) — "
              "%.0f req/s on the simulated clock\n",
              static_cast<long long>(report.requests),
              static_cast<long long>(report.batches.size()), report.mean_batch_size(),
              static_cast<double>(report.requests) / (report.simulated_span_ns() / 1e9));
  std::printf("serving accuracy: %.1f%% (matches the clean model — the shield "
              "never changes predictions)\n\n",
              100.0 * static_cast<double>(correct) / static_cast<double>(n));

  text_table t;
  t.set_header({"latency stage", "p50 ms", "p95 ms"});
  const auto row = [&](const char* name, std::vector<double>& v) {
    char p50[32], p95[32];
    std::snprintf(p50, sizeof p50, "%.3f", bench::percentile(v, 0.5));
    std::snprintf(p95, sizeof p95, "%.3f", bench::percentile(v, 0.95));
    t.add_row({name, p50, p95});
  };
  row("queue (coalescing)", queue_ms);
  row("batch (head-of-line)", batch_ms);
  row("enclave (TEE session)", enclave_ms);
  row("compute (batched forward)", compute_ms);
  row("end-to-end", total_ms);
  std::printf("%s\n", t.to_string().c_str());

  const auto& session = srv.session().accumulated();
  std::printf("enclave session: %lld batches, %lld hot calls, %.2f ms modeled TEE time\n",
              static_cast<long long>(session.batches),
              static_cast<long long>(session.hotcalls), session.enclave_ns / 1e6);
  std::printf("per request that is %.1f us — an ecall-style per-request shield pays "
              "~%.0fx more\n",
              session.enclave_ns / 1e3 / static_cast<double>(n),
              (2.0 * enclave.costs().world_switch_ns) / enclave.costs().hotcall_ns);
  std::printf("\nThe batcher turned %lld single-sample calls into %lld shield "
              "applications;\nqueue+batch delay is the price, enclave+compute "
              "amortization is the payoff.\n",
              static_cast<long long>(n), static_cast<long long>(report.batches.size()));
  return 0;
}
