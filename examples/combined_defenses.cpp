// Example: composing PELTA with software input-transformation defenses.
//
// The paper (§II, §VII) frames PELTA as "a supplementary hardware-reliant
// aid to existing protocols", not a competitor to software defenses. This
// walk-through deploys a ViT behind a JPEG-encoding defense, with and
// without the PELTA shield underneath, and attacks both with the matched
// counter-attack (PGD through a BPDA-identity backward pass).
//
//   build/examples/combined_defenses
#include <cstdio>

#include "attacks/eot.h"
#include "defenses/encoding.h"
#include "models/trainer.h"
#include "models/zoo.h"

int main() {
  using namespace pelta;

  // 1. Train a small ViT on the CIFAR-10-like synthetic task.
  const data::dataset ds{[] {
    data::dataset_config c = data::cifar10_like();
    c.train_per_class = 60;
    c.test_per_class = 25;
    return c;
  }()};
  models::task_spec task;
  task.image_size = ds.config().image_size;
  task.classes = ds.config().classes;
  auto model = models::make_model("ViT-B/16", task);
  models::train_config tc;
  tc.epochs = 6;
  models::train_model(*model, ds, tc);
  std::printf("trained %s: clean accuracy %.1f%%\n", model->name().c_str(),
              100.0f * models::accuracy(*model, ds.test_images(), ds.test_labels()));

  // 2. Deploy it behind a JPEG-40 encoding defense.
  defenses::preprocessor_chain chain;
  chain.add(std::make_unique<defenses::jpeg_codec>(40));
  const defenses::defended_model deployed{*model, chain};
  std::printf("defense chain: %s (shatters gradients: %s)\n", chain.describe().c_str(),
              chain.shatters_gradient() ? "yes" : "no");

  // 3. Attack with PGD + BPDA, software defense only.
  attacks::defended_eval_config cfg;
  cfg.kind = attacks::attack_kind::pgd;
  cfg.params = attacks::params_for_dataset("cifar10_like");
  cfg.max_samples = 30;
  const attacks::robust_eval software_only =
      attacks::evaluate_attack_defended(deployed, ds, cfg, attacks::clear_oracle_factory(*model));
  std::printf("\nJPEG alone vs PGD+BPDA:   robust accuracy %5.1f%%  (BPDA walks through it)\n",
              100.0f * software_only.robust_accuracy);

  // 4. Same attack with the PELTA shield underneath: the attacker's inner
  //    oracle only ever sees the upsampled adjoint of the first clear layer.
  const attacks::robust_eval combined = attacks::evaluate_attack_defended(
      deployed, ds, cfg, attacks::shielded_oracle_factory(*model));
  std::printf("JPEG + PELTA vs PGD+BPDA: robust accuracy %5.1f%%  (the enclave holds)\n",
              100.0f * combined.robust_accuracy);

  return combined.robust_accuracy > software_only.robust_accuracy ? 0 : 1;
}
