// Example: a realistic federation — non-iid client data, Byzantine-robust
// aggregation, and a checkpointed global model whose frontier the enclave
// will protect at deployment.
//
// Real FL populations never hold iid data: each phone sees its own skewed
// slice of the world. This walk-through partitions the training set with a
// Dirichlet(α) sampler at three skew levels, trains the same federation on
// each, and shows the accuracy cost of skew; it then saves the final
// global model with models::save_checkpoint — the artifact a PELTA
// deployment pins and shields.
//
//   build/examples/noniid_federation
#include <cstdio>

#include "core/table.h"
#include "fl/federation.h"
#include "models/checkpoint.h"
#include "models/trainer.h"
#include "models/zoo.h"

int main() {
  using namespace pelta;

  data::dataset_config dc = data::cifar10_like();
  dc.classes = 6;
  dc.train_per_class = 60;
  dc.test_per_class = 20;
  const data::dataset ds{dc};

  const fl::model_factory factory = [&] {
    models::task_spec task;
    task.classes = dc.classes;
    task.seed = 11;
    return models::make_vit_b16_sim(task);
  };

  std::printf("federation: 5 clients, 6 rounds, coordinate-median aggregation\n\n");
  text_table t;
  t.set_header({"Client data distribution", "Mean shard entropy", "Global accuracy"});

  struct setting {
    const char* label;
    fl::shard_strategy strategy;
    float alpha;
  };
  const setting settings[] = {
      {"iid", fl::shard_strategy::iid, 0.0f},
      {"Dirichlet(1.0)", fl::shard_strategy::dirichlet, 1.0f},
      {"Dirichlet(0.1) — heavy skew", fl::shard_strategy::dirichlet, 0.1f},
      {"by-class — pathological", fl::shard_strategy::by_class, 0.0f},
  };

  std::string best_label;
  float best_acc = -1.0f;
  std::unique_ptr<fl::federation> best_fed;
  for (const setting& s : settings) {
    fl::federation_config cfg;
    cfg.clients = 5;
    cfg.compromised = 0;
    cfg.local.epochs = 2;
    cfg.local.batch_size = 16;
    cfg.sharding.strategy = s.strategy;
    cfg.sharding.dirichlet_alpha = s.alpha;
    cfg.aggregation.rule = fl::aggregation_rule::coordinate_median;

    auto fed = std::make_unique<fl::federation>(cfg, factory, ds);
    double entropy = 0.0;
    for (std::int64_t c = 0; c < cfg.clients; ++c) {
      // entropy over the client's label mix, via a probe shard rebuild
      fl::sharding_config probe = cfg.sharding;
      probe.seed = cfg.seed;
      entropy += fl::shard_label_entropy(ds, fl::make_shards(ds, cfg.clients, probe)[
                                                 static_cast<std::size_t>(c)]);
    }
    entropy /= static_cast<double>(cfg.clients);

    fed->run_rounds(6);
    const float acc = fed->global_test_accuracy();
    t.add_row({s.label, fixed(entropy, 2) + " nats", pct(acc)});
    if (acc > best_acc) {
      best_acc = acc;
      best_label = s.label;
      best_fed = std::move(fed);
    }
    std::printf("  %-28s done\n", s.label);
    std::fflush(stdout);
  }
  std::printf("\n%s\n", t.to_string().c_str());

  // Persist the best global model — the artifact a deployment shields.
  const std::string path = "/tmp/pelta_noniid_global.peltackp";
  models::save_checkpoint(best_fed->server().global_model(), path);
  std::printf("checkpointed the '%s' global model to %s\n", best_label.c_str(), path.c_str());
  std::printf("(reload with models::load_checkpoint; its name reads back as '%s')\n",
              models::checkpoint_model_name(path).c_str());

  std::printf("\nReading: median aggregation tolerates moderate skew, and even the\n"
              "pathological by-class split still learns — but every step away from\n"
              "iid costs accuracy, which is why FL protocols tune client sampling\n"
              "before they tune anything else.\n");
  return best_acc > 0.7f ? 0 : 1;
}
