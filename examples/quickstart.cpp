// Quickstart: train a classifier, wrap it in a PELTA defended_model, and
// watch a PGD attacker succeed against the open white box but fail against
// the shield.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/pelta.h"
#include "core/table.h"
#include "models/trainer.h"
#include "models/zoo.h"

int main() {
  using namespace pelta;
  std::printf("%s — quickstart\n\n", version());

  // 1. A small dataset (synthetic CIFAR-10 stand-in) and a ViT classifier.
  data::dataset_config dc = data::cifar10_like();
  dc.classes = 6;
  dc.train_per_class = 80;
  dc.test_per_class = 25;
  const data::dataset ds{dc};

  models::task_spec task;
  task.classes = dc.classes;
  defended_model defended{models::make_vit_b16_sim(task)};

  std::printf("training %s (%lld parameters) ...\n", defended.model().name().c_str(),
              static_cast<long long>(defended.model().parameter_count()));
  models::train_config tc;
  tc.epochs = 10;
  tc.lr = 3e-3f;
  const models::train_report tr = models::train_model(defended.model(), ds, tc);
  std::printf("clean accuracy: train %s, test %s\n\n", pct(tr.train_accuracy).c_str(),
              pct(tr.test_accuracy).c_str());

  // 2. Shielded inference: the PELTA frontier lives in the TEE enclave.
  const std::int64_t pred = defended.classify(ds.test_image(0));
  const auto cost = defended.measure_shield_cost(ds.test_image(0), /*with_gradients=*/true);
  std::printf("shielded inference -> class %lld\n", static_cast<long long>(pred));
  std::printf("enclave footprint: %s (%.2f%% of the model's parameters masked)\n\n",
              human_bytes(cost.tee_bytes).c_str(), 100.0 * cost.shielded_portion);

  // 3. PGD from the attacker's point of view, without and with PELTA.
  const attacks::suite_params params = attacks::table2_cifar_params();
  const std::int64_t samples = 40;
  const attacks::robust_eval clear =
      attacks::evaluate_attack(defended.model(), ds, attacks::attack_kind::pgd, params,
                               attacks::clear_oracle_factory(defended.model()), samples, 1);
  const attacks::robust_eval shielded =
      attacks::evaluate_attack(defended.model(), ds, attacks::attack_kind::pgd, params,
                               attacks::shielded_oracle_factory(defended.model()), samples, 1);

  text_table t;
  t.set_header({"Setting", "Robust accuracy", "Attack success"});
  t.add_row({"open white box", pct(clear.robust_accuracy),
             std::to_string(clear.attack_successes) + "/" + std::to_string(clear.samples)});
  t.add_row({"PELTA shielded", pct(shielded.robust_accuracy),
             std::to_string(shielded.attack_successes) + "/" + std::to_string(shielded.samples)});
  std::printf("PGD (eps=%.3f, %lld steps):\n%s\n", static_cast<double>(params.eps),
              static_cast<long long>(params.pgd_steps), t.to_string().c_str());

  std::printf("The shield leaves the attacker only the adjoint of the first clear\n"
              "layer; its upsampled substitute gradient no longer finds adversarial\n"
              "examples, while inference is untouched.\n");
  return 0;
}
