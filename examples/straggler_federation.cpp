// Example: a heterogeneous edge fleet with a straggler — synchronous
// barrier vs buffered asynchronous federation.
//
// The paper's §VI expects deployments to "harness the idle state of edge
// devices to handle intermittent compute node availability": real fleets
// mix fast and slow devices, and a synchronous round is hostage to its
// slowest participant. This walk-through builds one fleet with a single 6x
// straggler, trains the same model family under both runtimes, and shows
// what the FedBuff-style buffer (fl/async.h) buys: aggregations keep
// flowing at the fast clients' pace, stale updates are down-weighted by
// 1/sqrt(1+s), and time-to-accuracy (on the simulated event clock the
// network meters) drops well below the barrier's.
//
//   build/examples/straggler_federation
#include <cstdio>
#include <vector>

#include "core/table.h"
#include "fl/federation.h"
#include "models/zoo.h"

int main() {
  using namespace pelta;

  data::dataset_config dc = data::cifar10_like();
  dc.classes = 6;
  dc.train_per_class = 40;
  dc.test_per_class = 15;
  const data::dataset ds{dc};

  const fl::model_factory factory = [&] {
    models::task_spec task;
    task.classes = dc.classes;
    task.seed = 11;
    return models::make_vit_b16_sim(task);
  };

  fl::federation_config cfg;
  cfg.clients = 6;
  cfg.compromised = 0;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 16;
  cfg.async.buffer_size = 3;
  cfg.async.max_staleness = 6;
  cfg.async.weighting = fl::staleness_weighting::inverse_sqrt;
  cfg.async.heterogeneity.stragglers = 1;
  cfg.async.heterogeneity.straggler_slowdown = 6.0;
  cfg.async.heterogeneity.dropout_rate = 0.2;

  const std::vector<fl::client_profile> profiles =
      fl::make_client_profiles(cfg.clients, cfg.async.heterogeneity);
  std::printf("fleet: %lld clients; compute scales:", static_cast<long long>(cfg.clients));
  for (const fl::client_profile& p : profiles) std::printf(" %.1fx", p.compute_scale);
  std::printf("  (20%% per-episode dropout)\n\n");

  // ---- synchronous barrier: 6 rounds, each as slow as the straggler ---------
  fl::federation sync_fed{cfg, factory, ds};
  // Price the barrier with the federation's own simulated cost model.
  const fl::network& net = sync_fed.net();
  const std::int64_t payload =
      static_cast<std::int64_t>(sync_fed.server().broadcast().size());
  const auto episode_ns = [&](std::int64_t id) {
    // Price sync rounds with the async planner's own cost model.
    return fl::async_episode_ns(cfg.async, profiles[static_cast<std::size_t>(id)],
                                sync_fed.client(id).shard_size(), cfg.local.epochs, payload,
                                net);
  };
  const std::int64_t sync_rounds = 6;
  double sync_clock_ns = 0.0;
  for (std::int64_t r = 0; r < sync_rounds; ++r) {
    double round_ns = 0.0;
    for (const std::int64_t id : sync_fed.round_participant_ids(r))
      round_ns = std::max(round_ns, episode_ns(id));
    sync_fed.run_round();
    sync_clock_ns += round_ns;
  }
  const float sync_acc = sync_fed.global_test_accuracy();
  std::printf("  sync barrier: %lld rounds done\n", static_cast<long long>(sync_rounds));

  // ---- buffered async: same applied-update budget ---------------------------
  // 6 rounds x 6 clients = 36 updates = 12 flushes of K=3.
  fl::federation async_fed{cfg, factory, ds};
  const fl::async_report report = async_fed.run_async(12);
  const float async_acc = async_fed.global_test_accuracy();
  std::printf("  async buffer: %lld flushes done\n\n",
              static_cast<long long>(report.aggregations));

  text_table t;
  t.set_header({"Runtime", "Updates applied", "Simulated time", "Global accuracy"});
  t.add_row({"sync (barrier)", std::to_string(sync_rounds * cfg.clients),
             fixed(sync_clock_ns / 1e6, 1) + " ms", pct(sync_acc)});
  t.add_row({"async (K=3, 1/sqrt(1+s))", std::to_string(report.updates_applied),
             fixed(report.simulated_ns / 1e6, 1) + " ms", pct(async_acc)});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("async schedule: mean staleness %.2f (max %lld), %lld stale updates "
              "discarded, %lld dropouts absorbed\n",
              report.mean_staleness, static_cast<long long>(report.max_staleness_seen),
              static_cast<long long>(report.updates_stale),
              static_cast<long long>(report.updates_dropped));

  const double speedup = sync_clock_ns / std::max(report.simulated_ns, 1.0);
  std::printf("\nReading: the barrier waits %0.1fx longer for the same update budget —\n"
              "every sync round is hostage to the 6x straggler, while the buffer\n"
              "aggregates the five fast clients continuously and folds the straggler's\n"
              "late (stale-weighted) update in when it finally lands.\n",
              speedup);
  return async_acc > 0.5f && speedup > 1.5 ? 0 : 1;
}
