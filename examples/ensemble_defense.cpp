// Table IV in miniature: a ViT + BiT random-selection ensemble under the
// Self-Attention Gradient Attack, across the four shield settings.
//
//   $ ./examples/ensemble_defense
#include <cstdio>

#include "core/table.h"
#include "models/ensemble.h"
#include "models/trainer.h"
#include "attacks/runner.h"
#include "models/zoo.h"

int main() {
  using namespace pelta;
  std::printf("PELTA example — ensemble defense against SAGA\n\n");

  data::dataset_config dc = data::cifar10_like();
  dc.classes = 6;
  dc.train_per_class = 80;
  dc.test_per_class = 20;
  const data::dataset ds{dc};

  models::task_spec task;
  task.classes = dc.classes;
  auto vit = models::make_vit_l16_sim(task);
  auto bit = models::make_bit_r101x3_sim(task);

  models::train_config tc;
  tc.epochs = 10;
  tc.lr = 3e-3f;
  std::printf("training %s ...\n", vit->name().c_str());
  const auto rv = models::train_model(*vit, ds, tc);
  std::printf("training %s ...\n", bit->name().c_str());
  const auto rb = models::train_model(*bit, ds, tc);
  std::printf("clean accuracy: %s %s | %s %s\n\n", vit->name().c_str(),
              pct(rv.test_accuracy).c_str(), bit->name().c_str(), pct(rb.test_accuracy).c_str());

  models::random_selection_ensemble ensemble{*vit, *bit};
  rng policy_rng{5};
  std::printf("ensemble (random selection) clean accuracy: %s\n\n",
              pct(ensemble.accuracy(ds.test_images(), ds.test_labels(), policy_rng)).c_str());

  const attacks::suite_params params = attacks::table2_cifar_params();
  const std::int64_t samples = 30;

  struct setting {
    const char* name;
    bool shield_vit;
    bool shield_bit;
  };
  const setting settings[] = {{"none", false, false},
                              {"ViT only", true, false},
                              {"BiT only", false, true},
                              {"both (full PELTA)", true, true}};

  text_table t;
  t.set_header({"Applied shield", "ViT robust", "BiT robust", "Ensemble robust"});
  for (const setting& s : settings) {
    const attacks::saga_eval r =
        attacks::evaluate_saga(*vit, *bit, ds, s.shield_vit, s.shield_bit, params, samples, 11);
    t.add_row({s.name, pct(r.vit_robust_accuracy), pct(r.cnn_robust_accuracy),
               pct(r.ensemble_robust_accuracy)});
  }
  std::printf("SAGA (eps=%.3f, %lld steps, %lld samples):\n%s\n",
              static_cast<double>(params.eps), static_cast<long long>(params.saga_steps),
              static_cast<long long>(samples), t.to_string().c_str());

  std::printf("Shielding a single member pushes SAGA entirely onto the clear\n"
              "model; random selection then saves about half the queries. Shielding\n"
              "both members is the paper's recommended full-protection setting.\n");
  return 0;
}
