// Example: the poisoning attack chain PELTA is motivated by (§I), end to
// end — a federation with one malicious member planting a trojan-trigger
// backdoor via model replacement, and the server-side aggregation rules
// that blunt it.
//
//   build/examples/backdoor_poisoning
#include <cstdio>

#include "fl/poisoning.h"
#include "fl/server.h"
#include "models/trainer.h"
#include "models/zoo.h"

using namespace pelta;

namespace {

std::unique_ptr<models::model> fresh_model(const data::dataset& ds, std::uint64_t seed) {
  models::task_spec task;
  task.image_size = ds.config().image_size;
  task.classes = ds.config().classes;
  task.seed = seed;
  return models::make_model("ViT-B/16", task);
}

float run_federation(const data::dataset& ds, fl::aggregation_rule rule, float* clean_out) {
  const std::int64_t n_clients = 4;
  fl::backdoor_config bd;
  bd.target_class = 0;
  bd.boost = static_cast<float>(n_clients);

  fl::fl_server server{fresh_model(ds, 1)};
  std::vector<std::unique_ptr<fl::fl_client>> owned;
  const auto shard_of = [&](std::int64_t k) {
    std::vector<std::int64_t> out;
    for (std::int64_t i = k; i < ds.train_size(); i += n_clients) out.push_back(i);
    return out;
  };
  for (std::int64_t i = 0; i + 1 < n_clients; ++i)
    owned.push_back(std::make_unique<fl::fl_client>(i, fresh_model(ds, 2 + i), shard_of(i), ds));
  owned.push_back(std::make_unique<fl::backdoor_client>(n_clients - 1, fresh_model(ds, 99),
                                                        shard_of(n_clients - 1), ds, bd));

  fl::local_train_config lc;
  lc.epochs = 2;
  lc.batch_size = 16;
  fl::aggregation_config ac;
  ac.rule = rule;
  for (std::int64_t r = 0; r < 4; ++r) {
    const byte_buffer g = server.broadcast();
    std::vector<fl::model_update> updates;
    for (auto& c : owned) {
      c->receive_global(g);
      updates.push_back(c->local_update(lc));
    }
    server.aggregate(updates, ac);
  }
  *clean_out = models::accuracy(server.global_model(), ds.test_images(), ds.test_labels());
  return fl::backdoor_success_rate(server.global_model(), ds, bd, 100);
}

}  // namespace

int main() {
  const data::dataset ds{[] {
    data::dataset_config c = data::cifar10_like();
    c.train_per_class = 60;
    c.test_per_class = 25;
    return c;
  }()};

  std::printf("Federation: 3 honest clients + 1 backdoor client (trigger = white 4x4\n"
              "corner patch -> class 0, model replacement boost x4), 4 rounds.\n\n");

  float clean = 0.0f;
  const float fedavg = run_federation(ds, fl::aggregation_rule::fedavg, &clean);
  std::printf("FedAvg:            backdoor success %5.1f%%   clean accuracy %5.1f%%\n",
              100.0f * fedavg, 100.0f * clean);
  std::printf("  -> the trigger is in, and the main task looks perfectly healthy:\n"
              "     nothing in the aggregate metrics betrays the attack.\n\n");

  const float median = run_federation(ds, fl::aggregation_rule::coordinate_median, &clean);
  std::printf("Coordinate median: backdoor success %5.1f%%   clean accuracy %5.1f%%\n",
              100.0f * median, 100.0f * clean);
  std::printf("  -> the boosted update is an outlier in every coordinate; the\n"
              "     median simply never follows it.\n\n");

  std::printf("See bench_extension_poisoning for the full rule sweep and the\n"
              "evasion-poisoning scenario where PELTA removes the attacker's\n"
              "ability to find adversarial examples in the first place.\n");
  return fedavg > median ? 0 : 1;
}
