// Shield-depth vs enclave-budget explorer: how much TEE memory does each
// Select frontier cost, and when does a deeper shield stop fitting a
// TrustZone-class enclave? (The trade-off behind Table I and §VI.)
//
//   $ ./examples/tee_budget_explorer
#include <cstdio>

#include "autodiff/ops_loss.h"
#include "core/table.h"
#include "models/zoo.h"
#include "shield/policy.h"
#include "shield/shield.h"
#include "tensor/ops.h"

int main() {
  using namespace pelta;
  std::printf("PELTA example — TEE budget explorer\n\n");

  models::task_spec task;
  task.classes = 10;
  rng gen{3};
  const tensor image = tensor::rand_uniform(gen, {1, 3, 16, 16});

  for (const char* name : {"ViT-B/16", "ResNet-56", "BiT-M-R101x3"}) {
    auto m = models::make_model(name, task);
    std::printf("%s (%lld parameters), paper frontier: %s\n", name,
                static_cast<long long>(m->parameter_count()),
                m->shield_frontier_tags()[0].c_str());

    text_table t;
    t.set_header({"Select depth", "frontier node", "masked transforms", "masked params",
                  "enclave bytes", "of 30MB budget"});
    for (std::int64_t depth : {1, 2, 4, 8, 16}) {
      models::forward_pass fp = m->forward(image, ad::norm_mode::eval);
      const ad::node_id labels = fp.graph.add_constant(tensor{{1}, {0.0f}});
      const ad::node_id loss =
          fp.graph.add_transform(ad::make_cross_entropy(), {fp.logits, labels});
      fp.graph.backward(loss);

      std::vector<ad::node_id> frontier;
      try {
        frontier = shield::select_first_k_transforms(fp.graph, depth);
      } catch (const error&) {
        break;  // model has fewer transforms than `depth`
      }
      const shield::shield_report r = shield::pelta_shield(fp.graph, frontier, nullptr);
      const double budget =
          static_cast<double>(r.total_bytes()) / (30.0 * 1024.0 * 1024.0);
      t.add_row({std::to_string(depth), fp.graph.at(frontier[0]).tag,
                 std::to_string(r.masked_transforms.size()),
                 std::to_string(r.masked_param_scalars), human_bytes(r.total_bytes()),
                 pct(budget)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  std::printf("Shallow frontiers cost kilobytes; the budget only bites when large\n"
              "embedding or convolution stacks move inside — which is exactly why the\n"
              "paper shields only the first transformations of each model.\n");
  return 0;
}
