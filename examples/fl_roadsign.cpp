// Fig. 1 scenario: a federation fine-tunes a shared "road-sign classifier".
// One client is compromised: after the final broadcast it probes its own
// device memory for gradients and crafts adversarial samples (the patch-
// attack storyline of the paper's introduction), then replays them against
// a victim node running the same model. PELTA on the device blocks the
// probe.
//
//   $ ./examples/fl_roadsign
#include <cstdio>

#include "attacks/patch.h"
#include "core/table.h"
#include "fl/federation.h"
#include "models/trainer.h"
#include "models/zoo.h"

int main() {
  using namespace pelta;
  std::printf("PELTA example — federated road-sign classifier under attack\n\n");

  // Dataset: each class plays the role of one sign type.
  data::dataset_config dc = data::cifar10_like();
  dc.name = "roadsigns";
  dc.classes = 6;
  dc.train_per_class = 60;
  dc.test_per_class = 20;
  const data::dataset ds{dc};
  const char* sign_names[] = {"stop", "yield", "speed-30", "speed-50", "no-entry", "crossing"};

  // Federation: 4 clients, the last one compromised.
  fl::federation_config cfg;
  cfg.clients = 4;
  cfg.compromised = 1;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 16;
  cfg.local.lr = 4e-3f;
  fl::model_factory factory = [&] {
    models::task_spec task;
    task.classes = dc.classes;
    task.seed = 47;
    return models::make_resnet56_sim(task);
  };
  fl::federation fed{cfg, factory, ds};

  std::printf("running 8 FL rounds over %lld clients ...\n", static_cast<long long>(cfg.clients));
  fed.run_rounds(8);
  std::printf("global model test accuracy: %s\n", pct(fed.global_test_accuracy()).c_str());
  std::printf("traffic: %lld messages, %s on the wire, %.1f ms simulated\n\n",
              static_cast<long long>(fed.traffic().messages),
              human_bytes(fed.traffic().bytes).c_str(), fed.traffic().simulated_ns / 1e6);

  // The compromised node receives the final broadcast like everyone else.
  const byte_buffer global = fed.server().broadcast();
  fl::compromised_client* attacker = fed.compromised_clients()[0];
  attacker->receive_global(global);
  fl::fl_client& victim = fed.client(0);
  victim.receive_global(global);

  const attacks::suite_params params = attacks::table2_cifar_params();
  text_table t;
  t.set_header({"sign", "true", "no PELTA: attacker / victim", "with PELTA: attacker"});

  std::int64_t shown = 0;
  for (std::int64_t i = 0; i < ds.test_size() && shown < 8; ++i) {
    const std::int64_t label = ds.test_label(i);
    if (models::predict_one(attacker->local_model(), ds.test_image(i)) != label) continue;
    ++shown;

    const auto clear = attacker->craft_adversarial(ds.test_image(i), label, /*shielded=*/false,
                                                   attacks::attack_kind::pgd, params, 900 + i);
    const auto shielded = attacker->craft_adversarial(ds.test_image(i), label, /*shielded=*/true,
                                                      attacks::attack_kind::pgd, params, 900 + i);
    const std::int64_t victim_pred =
        models::predict_one(victim.local_model(), clear.adversarial);

    t.add_row({sign_names[label], sign_names[label],
               std::string{clear.misclassified ? "FOOLED" : "held"} + " / " +
                   (victim_pred != label ? std::string{"sees '"} + sign_names[victim_pred] + "'"
                                         : std::string{"held"}),
               shielded.misclassified ? "FOOLED" : "held"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Without PELTA the crafted samples replay perfectly on the victim\n"
              "(same broadcast weights). With PELTA the gradient probe only sees the\n"
              "masked view; attack success drops sharply — though, as the paper's\n"
              "Table III shows, CNN frontiers retain some residual attack surface\n"
              "(their clear-layer adjoint still carries spatial information).\n\n");

  // Act 2 — the literal §I scenario: one physical sticker (Brown et al.
  // [14]), trained over the attacker's samples, pasted on every sign.
  std::vector<tensor> pool;
  std::vector<std::int64_t> pool_labels;
  for (std::int64_t i = 0; i < ds.test_size() && pool.size() < 10; ++i) {
    if (models::predict_one(attacker->local_model(), ds.test_image(i)) != ds.test_label(i))
      continue;
    pool.push_back(ds.test_image(i));
    pool_labels.push_back(ds.test_label(i));
  }
  attacks::patch_config pc;
  pc.size = 5;
  pc.steps = 40;
  rng patch_gen{4242};
  auto clear_oracle = attacks::make_clear_oracle(attacker->local_model());
  auto shielded_oracle = attacks::make_shielded_oracle(attacker->local_model(), 4242);
  const auto open_sticker =
      attacks::train_universal_patch(*clear_oracle, pool, pool_labels, pc, patch_gen);
  rng patch_gen2{4242};
  const auto masked_sticker =
      attacks::train_universal_patch(*shielded_oracle, pool, pool_labels, pc, patch_gen2);

  const auto victim_fooled = [&](const tensor& sticker) {
    std::int64_t fooled = 0;
    for (std::size_t i = 0; i < pool.size(); ++i)
      if (models::predict_one(victim.local_model(), attacks::apply_patch(pool[i], sticker, pc)) !=
          pool_labels[i])
        ++fooled;
    return static_cast<float>(fooled) / static_cast<float>(pool.size());
  };
  std::printf("universal 5x5 sticker, replayed on the victim's signs:\n");
  std::printf("  trained without PELTA: fools the victim on %s of signs\n",
              pct(victim_fooled(open_sticker.patch)).c_str());
  std::printf("  trained against PELTA: fools the victim on %s of signs\n",
              pct(victim_fooled(masked_sticker.patch)).c_str());
  return 0;
}
