// pelta-lint CLI: walk <repo-root>/src and enforce the project invariants
// (rules R1-R5, see lint.h). Exit code 1 on any finding, so the CTest
// `lint` label and the CI static-analysis job gate on it directly.
#include <cstdio>
#include <string>

#include "lint.h"

namespace {

constexpr const char* k_rules_doc =
    "pelta-lint rules (suppress with `// pelta-lint: allow(<rule>) <reason>`):\n"
    "  R1  no raw float +=/-= accumulation in src/tensor/kernels.cpp,\n"
    "      src/tensor/conv.cpp, src/fl/aggregation.{h,cpp} outside\n"
    "      detail::fmadd / double-widened accumulators\n"
    "  R2  no std::vector / new / resize() in the arena-governed hot files\n"
    "      (src/tensor/kernels.cpp, src/tensor/conv.cpp)\n"
    "  R3  no steady_clock/system_clock/high_resolution_clock,\n"
    "      std::random_device, rand()/srand() in src/ outside the rng core\n"
    "      (src/tensor/rng.h)\n"
    "  R4  no std::thread / std::jthread / std::async outside\n"
    "      src/tensor/parallel.{h,cpp}\n"
    "  R5  no std::unordered_map / std::unordered_set in src/fl or src/serve\n";

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--rules") {
    std::fputs(k_rules_doc, stdout);
    return 0;
  }
  if (argc != 2) {
    std::fprintf(stderr, "usage: pelta-lint <repo-root> | pelta-lint --rules\n");
    return 2;
  }
  pelta::lint::tree_report report;
  try {
    report = pelta::lint::lint_tree(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pelta-lint: %s\n", e.what());
    return 2;
  }
  for (const pelta::lint::finding& f : report.findings)
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                 f.message.c_str());
  std::printf("pelta-lint: %d files scanned, %zu finding%s, %d suppressed\n",
              report.files_scanned, report.findings.size(),
              report.findings.size() == 1 ? "" : "s", report.suppressed);
  return report.findings.empty() ? 0 : 1;
}
