// pelta-lint CLI: walk <repo-root>/src and enforce the project invariants
// (rules R1-R6 plus the L1/L2 layering pass, see lint.h / layering.h). Exit
// code 1 on any finding, so the CTest `lint` label and the CI
// static-analysis job gate on it directly. `--json <path>` additionally
// writes the machine-readable report the CI job uploads as an artifact.
#include <cstdio>
#include <fstream>
#include <string>

#include "lint.h"

namespace {

constexpr const char* k_rules_doc =
    "pelta-lint rules (suppress with `// pelta-lint: allow(<rule>) <reason>`):\n"
    "  R1  no raw float +=/-= accumulation in src/tensor/kernels.cpp,\n"
    "      src/tensor/conv.cpp, src/fl/aggregation.{h,cpp} outside\n"
    "      detail::fmadd / double-widened accumulators\n"
    "  R2  no std::vector / new / resize() in the arena-governed hot files\n"
    "      (src/tensor/kernels.cpp, src/tensor/conv.cpp)\n"
    "  R3  no steady_clock/system_clock/high_resolution_clock,\n"
    "      std::random_device, rand()/srand() in src/ outside the rng core\n"
    "      (src/tensor/rng.h)\n"
    "  R4  no std::thread / std::jthread / std::async outside\n"
    "      src/tensor/parallel.{h,cpp}\n"
    "  R5  no std::unordered_map / std::unordered_set in src/fl or src/serve\n"
    "  R6  no raw std::mutex / std::condition_variable / std lock types\n"
    "      outside src/core/sync.h (use the annotated pelta::sync wrappers),\n"
    "      and every sync::mutex member must be named by a PELTA_GUARDED_BY /\n"
    "      PELTA_REQUIRES-family annotation in its file\n"
    "  L1  cross-subsystem #include edge not declared in the layering table\n"
    "      of docs/ARCHITECTURE.md (suppressible per include line)\n"
    "  L2  layering declaration defects: missing/unparseable table, cycle in\n"
    "      the declared DAG, stale declared edge, subsystem-set mismatch,\n"
    "      vocabulary header including non-vocabulary (not suppressible)\n";

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--rules") {
    std::fputs(k_rules_doc, stdout);
    return 0;
  }
  std::string root;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (root.empty() && !arg.empty() && arg[0] != '-') {
      root = arg;
    } else {
      root.clear();
      break;
    }
  }
  if (root.empty()) {
    std::fprintf(stderr,
                 "usage: pelta-lint <repo-root> [--json <out.json>] | pelta-lint --rules\n");
    return 2;
  }
  pelta::lint::tree_report report;
  try {
    report = pelta::lint::lint_tree(root);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pelta-lint: %s\n", e.what());
    return 2;
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    out << pelta::lint::to_json(report);
    if (!out) {
      std::fprintf(stderr, "pelta-lint: cannot write %s\n", json_path.c_str());
      return 2;
    }
  }
  for (const pelta::lint::finding& f : report.findings)
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                 f.message.c_str());
  std::printf("pelta-lint: %d files scanned, %zu finding%s, %d suppressed\n",
              report.files_scanned, report.findings.size(),
              report.findings.size() == 1 ? "" : "s", report.suppressed);
  return report.findings.empty() ? 0 : 1;
}
