// pelta-lint layering pass — the include-graph half of the checker.
//
// The per-file rules (lint.h) keep individual lines honest; this pass keeps
// the *architecture* honest. Every `#include "sub/..."` directive in src/ is
// an edge in the subsystem graph, and docs/ARCHITECTURE.md declares — in a
// machine-parsed markdown table between HTML-comment anchors — which edges
// are allowed. The doc IS the declaration: there is no second config file to
// drift from it, so an include the table does not permit fails the lint gate,
// and a table row the tree no longer exercises fails it too (stale docs are
// a finding, not a footnote).
//
// Two rules come out of the pass:
//
//   L1  an observed cross-subsystem include edge that the declared DAG does
//       not allow. Suppressible per include line with
//       `// pelta-lint: allow(L1) <reason>` for a deliberate, documented
//       exception.
//   L2  structural problems — docs/ARCHITECTURE.md missing or its anchored
//       table unparseable, a cycle in the *declared* graph (the allowed
//       edges must form a DAG even before the tree is consulted), a declared
//       edge no include uses (stale), a subsystem-set mismatch between the
//       table and src/'s directories, or a vocabulary header including a
//       non-vocabulary file. Not suppressible: these are defects of the
//       declaration itself, so the fix is the doc, not a waiver.
//
// Vocabulary headers (core/thread_annotations.h, core/sync.h) are the escape
// hatch that keeps the graph a DAG: every subsystem needs the annotation
// macros and the annotated mutex, but tensor -> core -> tensor would be a
// cycle. A header listed in the doc's vocabulary table creates no edge when
// included — and in exchange may itself include nothing from src/ except
// other vocabulary headers.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "lint.h"

namespace pelta::lint {

/// The layering declaration parsed out of docs/ARCHITECTURE.md.
struct layering_spec {
  std::vector<std::string> subsystems;  ///< one per table row, in row order
  /// Declared allowed edges, (from, to). Self-edges are implicit and must
  /// NOT be declared (check_layering flags them).
  std::vector<std::pair<std::string, std::string>> allowed;
  std::vector<std::string> vocabulary;  ///< repo-relative paths ("src/core/sync.h")
  bool parsed = false;                  ///< anchors found and >= 1 row read
  std::string error;                    ///< why parsing failed, when !parsed
  int table_line = 0;                   ///< 1-based line of the layering-table anchor
};

/// Parse the anchored tables out of ARCHITECTURE.md markdown:
///
///   <!-- pelta-lint: layering-table-begin -->
///   | Subsystem | May include from |
///   |---|---|
///   | `serve` | `defenses`, `models`, ... |
///   <!-- pelta-lint: layering-table-end -->
///
/// and (optional; no vocabulary headers when absent):
///
///   <!-- pelta-lint: vocabulary-headers-begin -->
///   | Header | Why it is edge-free |
///   | `src/core/sync.h` | ... |
///   <!-- pelta-lint: vocabulary-headers-end -->
///
/// Only backtick-quoted tokens in the first two cells are meaningful, so the
/// prose around them can change freely. An em-dash / empty second cell means
/// "may include from nothing".
layering_spec parse_layering_doc(const std::string& markdown);

struct layering_report {
  std::vector<finding> findings;             ///< L1 + L2
  std::vector<finding> suppressed_findings;  ///< L1 silenced by allow(L1)
};

/// Check the observed include edges (from lint_source/lint_tree) against the
/// declared spec. `observed_subsystems` is the set of src/ subdirectories —
/// the table must list exactly that set.
layering_report check_layering(const layering_spec& spec,
                               const std::vector<include_edge>& edges,
                               const std::vector<std::string>& observed_subsystems);

}  // namespace pelta::lint
