#include "layering.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace pelta::lint {

namespace {

constexpr const char* k_doc = "docs/ARCHITECTURE.md";

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Backtick-quoted tokens in one table cell: "`a`, `b`" -> {a, b}.
std::vector<std::string> ticks(const std::string& cell) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while ((pos = cell.find('`', pos)) != std::string::npos) {
    const std::size_t close = cell.find('`', pos + 1);
    if (close == std::string::npos) break;
    const std::string tok = trim(cell.substr(pos + 1, close - pos - 1));
    if (!tok.empty()) out.push_back(tok);
    pos = close + 1;
  }
  return out;
}

/// Split one markdown "| a | b |" row into cells (outer pipes stripped).
std::vector<std::string> cells(const std::string& line) {
  std::vector<std::string> out;
  const std::string body = trim(line);
  std::size_t start = 1;  // past the leading '|'
  for (std::size_t i = start; i <= body.size(); ++i) {
    if (i == body.size() || body[i] == '|') {
      out.push_back(trim(body.substr(start, i - start)));
      start = i + 1;
    }
  }
  if (!out.empty() && out.back().empty()) out.pop_back();
  return out;
}

struct table_rows {
  std::vector<std::vector<std::string>> rows;  ///< backtick tokens of cells 0 and 1
  bool found = false;
  int line = 0;  ///< 1-based line of the begin anchor
};

table_rows rows_between(const std::string& markdown, const std::string& begin_anchor,
                        const std::string& end_anchor) {
  table_rows out;
  std::istringstream in(markdown);
  std::string line;
  int lineno = 0;
  bool inside = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find(begin_anchor) != std::string::npos) {
      out.found = true;
      out.line = lineno;
      inside = true;
      continue;
    }
    if (line.find(end_anchor) != std::string::npos) inside = false;
    if (!inside) continue;
    const std::string body = trim(line);
    if (body.empty() || body.front() != '|') continue;
    const std::vector<std::string> cs = cells(body);
    if (cs.empty()) continue;
    const std::vector<std::string> first = ticks(cs[0]);
    if (first.empty()) continue;  // header or |---| separator row
    out.rows.push_back({cs[0], cs.size() > 1 ? cs[1] : std::string()});
  }
  return out;
}

}  // namespace

layering_spec parse_layering_doc(const std::string& markdown) {
  layering_spec spec;
  const table_rows dag = rows_between(markdown, "pelta-lint: layering-table-begin",
                                      "pelta-lint: layering-table-end");
  if (!dag.found) {
    spec.error =
        "docs/ARCHITECTURE.md has no `<!-- pelta-lint: layering-table-begin -->` anchor — "
        "the subsystem dependency DAG must be declared there (the doc is the "
        "machine-checked source of truth for allowed include edges)";
    return spec;
  }
  if (dag.rows.empty()) {
    spec.error =
        "the layering table between the pelta-lint anchors in docs/ARCHITECTURE.md has no "
        "data rows — every src/ subsystem needs a `| `sub` | allowed, ... |` row";
    spec.table_line = dag.line;
    return spec;
  }
  spec.table_line = dag.line;
  for (const auto& row : dag.rows) {
    const std::string sub = ticks(row[0]).front();
    spec.subsystems.push_back(sub);
    for (const std::string& to : ticks(row[1])) spec.allowed.emplace_back(sub, to);
  }
  const table_rows vocab = rows_between(markdown, "pelta-lint: vocabulary-headers-begin",
                                        "pelta-lint: vocabulary-headers-end");
  for (const auto& row : vocab.rows) spec.vocabulary.push_back(ticks(row[0]).front());
  spec.parsed = true;
  return spec;
}

layering_report check_layering(const layering_spec& spec,
                               const std::vector<include_edge>& edges,
                               const std::vector<std::string>& observed_subsystems) {
  layering_report out;
  auto add = [&](const std::string& file, int line, const char* rule, std::string msg) {
    out.findings.push_back(finding{file, line, rule, std::move(msg)});
  };
  if (!spec.parsed) {
    add(k_doc, std::max(1, spec.table_line), "L2", spec.error);
    return out;
  }
  const int doc_line = std::max(1, spec.table_line);

  // --- declaration self-consistency -----------------------------------
  const std::set<std::string> declared(spec.subsystems.begin(), spec.subsystems.end());
  {
    std::set<std::string> seen;
    for (const std::string& sub : spec.subsystems)
      if (!seen.insert(sub).second)
        add(k_doc, doc_line, "L2",
            "subsystem `" + sub + "` has more than one row in the layering table");
  }
  for (const auto& [from, to] : spec.allowed) {
    if (from == to)
      add(k_doc, doc_line, "L2",
          "layering table declares the self-edge `" + from +
              "` -> `" + to + "` — intra-subsystem includes are implicit; drop it");
    else if (declared.find(to) == declared.end())
      add(k_doc, doc_line, "L2",
          "layering table row for `" + from + "` allows `" + to +
              "`, which has no row of its own — every named subsystem needs one");
  }

  // --- declared set must equal the src/ directory set ------------------
  const std::set<std::string> observed(observed_subsystems.begin(), observed_subsystems.end());
  for (const std::string& sub : declared)
    if (observed.find(sub) == observed.end())
      add(k_doc, doc_line, "L2",
          "layering table lists `" + sub + "` but src/" + sub +
              "/ does not exist — remove the stale row");
  for (const std::string& sub : observed)
    if (declared.find(sub) == declared.end())
      add(k_doc, doc_line, "L2",
          "src/" + sub + "/ exists but the layering table has no row for `" + sub +
              "` — every subsystem must declare what it may include from");

  // --- the declared graph itself must be a DAG -------------------------
  {
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [from, to] : spec.allowed)
      if (from != to) adj[from].push_back(to);
    std::map<std::string, int> color;  // 0 new, 1 in-stack, 2 done
    std::vector<std::string> stack;
    std::string cycle;
    const std::function<bool(const std::string&)> dfs = [&](const std::string& u) {
      color[u] = 1;
      stack.push_back(u);
      for (const std::string& v : adj[u]) {
        if (color[v] == 1) {
          std::string msg;
          for (auto it = std::find(stack.begin(), stack.end(), v); it != stack.end(); ++it)
            msg += "`" + *it + "` -> ";
          cycle = msg + "`" + v + "`";
          return true;
        }
        if (color[v] == 0 && dfs(v)) return true;
      }
      stack.pop_back();
      color[u] = 2;
      return false;
    };
    for (const std::string& sub : spec.subsystems)
      if (color[sub] == 0 && dfs(sub)) break;
    if (!cycle.empty())
      add(k_doc, doc_line, "L2",
          "the declared layering graph has a cycle: " + cycle +
              " — the allowed edges must form a DAG (break the cycle with a "
              "vocabulary header or an interface inversion, not a waiver)");
  }

  // --- observed edges vs the declaration -------------------------------
  const std::set<std::string> vocabulary(spec.vocabulary.begin(), spec.vocabulary.end());
  std::vector<bool> used(spec.allowed.size(), false);
  for (const include_edge& e : edges) {
    const bool from_vocab = vocabulary.find(e.from) != vocabulary.end();
    const bool to_vocab = vocabulary.find("src/" + e.target) != vocabulary.end();
    if (from_vocab && !to_vocab) {
      add(e.from, e.line, "L2",
          "vocabulary header includes non-vocabulary `" + e.target +
              "` — edge-free status is earned by including nothing from src/ "
              "except other vocabulary headers");
      continue;
    }
    if (to_vocab) continue;  // vocabulary includes create no layering edge
    std::string from_sub, to_sub;
    if (e.from.compare(0, 4, "src/") == 0) {
      const std::size_t slash = e.from.find('/', 4);
      if (slash != std::string::npos) from_sub = e.from.substr(4, slash - 4);
    }
    const std::size_t slash = e.target.find('/');
    if (slash != std::string::npos) to_sub = e.target.substr(0, slash);
    if (from_sub.empty() || to_sub.empty()) continue;  // not a subsystem-rooted include
    if (declared.find(to_sub) == declared.end() && observed.find(to_sub) == observed.end())
      continue;  // quoted path outside the subsystem namespace (e.g. generated)
    if (from_sub == to_sub) continue;  // intra-subsystem, implicit
    bool allowed = false;
    for (std::size_t i = 0; i < spec.allowed.size(); ++i) {
      if (spec.allowed[i].first == from_sub && spec.allowed[i].second == to_sub) {
        used[i] = true;
        allowed = true;
        break;
      }
    }
    if (allowed) continue;
    finding f{e.from, e.line, "L1",
              "undeclared cross-subsystem include: `" + from_sub + "` -> `" + to_sub +
                  "` (`" + e.target +
                  "`) — add the edge to the layering table in docs/ARCHITECTURE.md or "
                  "suppress with `// pelta-lint: allow(L1) <reason>`"};
    if (e.suppressed)
      out.suppressed_findings.push_back(std::move(f));
    else
      out.findings.push_back(std::move(f));
  }

  // --- stale declared edges: the doc must match the tree, not outrun it --
  for (std::size_t i = 0; i < spec.allowed.size(); ++i) {
    const auto& [from, to] = spec.allowed[i];
    if (used[i] || from == to || declared.find(to) == declared.end()) continue;
    if (observed.find(from) == observed.end() || observed.find(to) == observed.end()) continue;
    add(k_doc, doc_line, "L2",
        "declared edge `" + from + "` -> `" + to +
            "` is stale — no #include in src/ uses it; drop it from the table so "
            "the declaration stays the tree's actual shape");
  }

  const auto order = [](const finding& a, const finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  };
  std::sort(out.findings.begin(), out.findings.end(), order);
  std::sort(out.suppressed_findings.begin(), out.suppressed_findings.end(), order);
  return out;
}

}  // namespace pelta::lint
