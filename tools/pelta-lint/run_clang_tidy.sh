#!/usr/bin/env bash
# Run clang-tidy over every library/tool translation unit using the
# compile_commands.json exported by CMake. The curated WarningsAsErrors set
# in .clang-tidy turns findings into a non-zero exit, so both the CTest
# `lint` label and the CI static-analysis job gate on this script.
#
# usage: run_clang_tidy.sh <repo-root> <build-dir> [log-file]
#
# The log (default <build-dir>/clang-tidy.log) is always written, so CI can
# upload it as an artifact whether or not the run passes.
set -u

root="${1:?usage: run_clang_tidy.sh <repo-root> <build-dir> [log-file]}"
build="${2:?usage: run_clang_tidy.sh <repo-root> <build-dir> [log-file]}"
log="${3:-"${build}/clang-tidy.log"}"

tidy="${CLANG_TIDY:-}"
if [ -z "${tidy}" ]; then
  for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "${cand}" >/dev/null 2>&1; then tidy="${cand}"; break; fi
  done
fi
if [ -z "${tidy}" ] || ! command -v "${tidy}" >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: no usable clang-tidy binary found (set CLANG_TIDY=...)" >&2
  exit 3
fi
if [ ! -f "${build}/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: ${build}/compile_commands.json missing (configure with CMake first)" >&2
  exit 3
fi

# Library + tool TUs only: tests/ and bench/ pull in gtest/benchmark headers
# whose diagnostics are not ours to fix, and the gate is about src/.
files=$(cd "${root}" && find src tools -name '*.cpp' | sort)

echo "== ${tidy} over $(echo "${files}" | wc -l) translation units ==" | tee "${log}"

# One clang-tidy process per TU, nproc-wide: per-file output lands in its own
# scratch file, so the merged log stays readable under parallelism.
scratch="$(mktemp -d)"
trap 'rm -rf "${scratch}"' EXIT
jobs="$(nproc 2>/dev/null || echo 2)"
export PELTA_TIDY="${tidy}" PELTA_TIDY_BUILD="${build}" \
       PELTA_TIDY_ROOT="${root}" PELTA_TIDY_SCRATCH="${scratch}"
echo "${files}" | xargs -P "${jobs}" -n 1 sh -c '
  out="${PELTA_TIDY_SCRATCH}/$(printf %s "$1" | tr "/" "_").log"
  if ! "${PELTA_TIDY}" -p "${PELTA_TIDY_BUILD}" --quiet \
       "${PELTA_TIDY_ROOT}/$1" >"${out}" 2>&1; then
    echo "FAIL $1" >> "${PELTA_TIDY_SCRATCH}/failures"
  fi' tidy-one

status=0
for f in ${files}; do
  cat "${scratch}/$(printf %s "${f}" | tr '/' '_').log" >> "${log}" 2>/dev/null || true
done
if [ -f "${scratch}/failures" ]; then
  status=1
  sort "${scratch}/failures" | tee -a "${log}"
fi

if [ "${status}" -ne 0 ]; then
  echo "== clang-tidy findings (full log: ${log}) ==" >&2
  grep -E "(warning|error):" "${log}" | head -100 >&2
fi
exit "${status}"
