// pelta-lint — the project-invariant static checker.
//
// The repo's correctness story rests on invariants that are documented in
// docs/ARCHITECTURE.md but would otherwise only be enforced by reviewer
// memory: bit-identity across PELTA_THREADS requires every float
// accumulation in the kernel files to route through detail::fmadd or a
// double-widened accumulator; zero steady-state allocation requires the
// arena-governed hot files to stay off std::vector/new/resize; the
// simulated-clock planners and seeded RNG must never read the wall clock
// or an OS entropy source; all concurrency must go through the single
// tensor/parallel pool; and the deterministic fl/serve aggregation and
// report paths must not touch unordered containers (iteration order is
// nondeterministic across libstdc++ versions and hash seeds).
//
// This checker tokenizes the source tree (comments and string literals are
// scrubbed before matching, so prose can mention std::thread freely) and
// enforces those invariants as named, individually-suppressible rules:
//
//   R1  no raw float +=/-= accumulation in src/tensor/kernels.cpp,
//       src/tensor/conv.cpp, src/fl/aggregation.cpp outside
//       detail::fmadd / double-widened (Kahan-class) accumulators.
//       Loop-header stepping (for (...; ...; i += 4)) and integer or
//       pointer arithmetic are recognized and allowed.
//   R2  no std::vector / new / resize() in the arena-governed hot files
//       (src/tensor/kernels.cpp, src/tensor/conv.cpp) — hot-path
//       workspaces come from scratch_arena.
//   R3  no wall clock (steady_clock / system_clock /
//       high_resolution_clock) and no std::random_device / rand() /
//       srand() anywhere in src/ except the seeded RNG core
//       (src/tensor/rng.h). bench/, tests/ and examples/ are outside the
//       scanned tree and may measure wall time freely.
//   R4  no std::thread / std::jthread / std::async outside
//       src/tensor/parallel.{h,cpp} — concurrency goes through the pool.
//   R5  no std::unordered_map / std::unordered_set in src/fl or
//       src/serve (deterministic aggregation/report paths). This
//       over-approximates "no iteration" on purpose: a point-lookup-only
//       use is fine but must say so via a suppression.
//   R6  lock discipline stays compiler-checkable: raw std::mutex /
//       std::condition_variable (and friends) are forbidden in src/
//       outside core/sync.h — locks must be the annotated pelta::sync
//       wrappers so Clang's -Wthread-safety can see them — and every
//       sync::mutex *member* (trailing-underscore convention) must be
//       named by at least one PELTA_GUARDED_BY / PELTA_REQUIRES-family
//       annotation in the same file: a mutex that guards nothing is
//       either dead or hiding an unannotated field.
//
// Besides the per-file rules, the tree walk runs a *layering* pass
// (layering.h): every `#include "sub/..."` edge is collapsed onto the
// subsystem graph and checked against the DAG declared in
// docs/ARCHITECTURE.md. Undeclared cross-subsystem edges are rule L1
// (suppressible per include line); structural problems — a cycle in the
// declared DAG, a stale declared edge, doc drift — are rule L2.
//
// Suppression syntax (reason mandatory, same line or the line above):
//   ... flagged code ...  // pelta-lint: allow(R4) worker owns the enclave
// A suppression with an empty reason is itself a finding.
#pragma once

#include <string>
#include <vector>

namespace pelta::lint {

struct finding {
  std::string file;     ///< repo-relative path, forward slashes
  int line = 0;         ///< 1-based
  std::string rule;     ///< "R1".."R6", "L1"/"L2", or "suppression"
  std::string message;  ///< human-readable diagnostic
};

struct file_report {
  std::vector<finding> findings;
  /// Findings silenced by a well-formed allow(), kept for --json output.
  std::vector<finding> suppressed_findings;
  int suppressed = 0;  ///< == suppressed_findings.size()
};

/// One `#include "..."` directive pointing inside src/, as seen by the
/// layering pass. `target` is the include path as written ("fl/network.h").
struct include_edge {
  std::string from;       ///< repo-relative includer ("src/serve/server.cpp")
  int line = 0;           ///< 1-based line of the directive
  std::string target;     ///< quoted include path, forward slashes
  bool suppressed = false;  ///< an allow(L1) with reason covers this line
};

/// Rule ids that apply to a repo-relative path ("src/fl/async.cpp").
/// Paths outside src/ get no rules.
std::vector<std::string> applicable_rules(const std::string& rel_path);

/// Lint one in-memory source. `rel_path` selects the applicable rules, so
/// fixture snippets can masquerade as any tree location. When `edges` is
/// non-null, every quoted include directive is appended to it (with its
/// allow(L1) suppression state) for the layering pass.
file_report lint_source(const std::string& rel_path, const std::string& content,
                        std::vector<include_edge>* edges = nullptr);

struct tree_report {
  std::vector<finding> findings;
  std::vector<finding> suppressed_findings;  ///< for --json; counts in `suppressed`
  std::vector<include_edge> edges;           ///< every in-src include edge observed
  int files_scanned = 0;
  int suppressed = 0;
};

/// Walk <root>/src and lint every *.h / *.cpp file, then run the layering
/// pass against the DAG declared in <root>/docs/ARCHITECTURE.md.
tree_report lint_tree(const std::string& root);

/// Machine-readable report (satellite of the CI static-analysis job):
/// {"files_scanned": N, "suppressed": N, "findings": [{"file", "line",
/// "rule", "message", "suppressed"}...]} — suppressed findings included,
/// flagged true, so the artifact shows the whole picture.
std::string to_json(const tree_report& report);

}  // namespace pelta::lint
