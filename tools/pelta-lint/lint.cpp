#include "lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "layering.h"

namespace pelta::lint {

namespace {

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// ---------------------------------------------------------------------------
// Scrubbing: replace comments and string/char literals with spaces (newlines
// kept so offsets map to the same lines), collecting pelta-lint suppression
// annotations from // comments along the way.
// ---------------------------------------------------------------------------

struct suppression {
  int line = 0;                    ///< line the comment sits on
  bool own_line = false;           ///< comment is alone on its line: covers line+1
  std::vector<std::string> rules;  ///< allow(R1,R4) -> {"R1","R4"}
  bool well_formed = false;        ///< allow(...) parsed
  bool has_reason = false;         ///< non-empty reason text after the ')'
};

struct scrubbed_source {
  std::string text;  ///< same length/lines as the input, code only
  std::vector<suppression> suppressions;
};

// Parses "<ws>pelta-lint: allow(R1,R2) reason..." out of one // comment body.
// Returns false if the comment does not mention pelta-lint at all.
bool parse_suppression_comment(const std::string& body, suppression& out) {
  const std::string marker = "pelta-lint:";
  const std::size_t m = body.find(marker);
  if (m == std::string::npos) return false;
  std::size_t p = m + marker.size();
  while (p < body.size() && std::isspace(static_cast<unsigned char>(body[p]))) ++p;
  const std::string allow = "allow(";
  if (body.compare(p, allow.size(), allow) != 0) return true;  // malformed
  p += allow.size();
  const std::size_t close = body.find(')', p);
  if (close == std::string::npos) return true;  // malformed
  std::string rule;
  for (std::size_t i = p; i <= close; ++i) {
    const char c = body[i];
    if (c == ',' || c == ')') {
      rule = trim(rule);
      if (!rule.empty()) out.rules.push_back(rule);
      rule.clear();
    } else {
      rule.push_back(c);
    }
  }
  out.well_formed = !out.rules.empty();
  out.has_reason = !trim(body.substr(close + 1)).empty();
  return true;
}

scrubbed_source scrub(const std::string& src) {
  scrubbed_source out;
  out.text.assign(src.size(), ' ');
  int line = 1;
  bool line_has_code = false;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto keep = [&](std::size_t pos) { out.text[pos] = src[pos]; };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      out.text[i] = '\n';
      ++line;
      line_has_code = false;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      suppression s;
      s.line = line;
      s.own_line = !line_has_code;
      if (parse_suppression_comment(src.substr(i + 2, end - i - 2), s))
        out.suppressions.push_back(s);
      i = end;  // newline handled by the main loop
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      end = (end == std::string::npos) ? n : end + 2;
      for (std::size_t j = i; j < end; ++j)
        if (src[j] == '\n') {
          out.text[j] = '\n';
          ++line;
          line_has_code = false;
        }
      i = end;
      continue;
    }
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      // Raw string literal: R"delim( ... )delim"
      std::size_t open = src.find('(', i + 2);
      if (open != std::string::npos) {
        const std::string delim = src.substr(i + 2, open - i - 2);
        const std::string closer = ")" + delim + "\"";
        std::size_t end = src.find(closer, open + 1);
        end = (end == std::string::npos) ? n : end + closer.size();
        for (std::size_t j = i; j < end; ++j)
          if (src[j] == '\n') {
            out.text[j] = '\n';
            ++line;
          }
        line_has_code = true;
        i = end;
        continue;
      }
    }
    // A ' between identifier chars is a digit separator (1'000'000), not a
    // character literal.
    const bool digit_separator = c == '\'' && i > 0 && is_ident_char(src[i - 1]);
    if ((c == '"' || c == '\'') && !digit_separator) {
      const char q = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != q) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;  // unterminated literal: stay line-accurate
        ++j;
      }
      line_has_code = true;
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) line_has_code = true;
    keep(i);
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Small lexical helpers over the scrubbed text.
// ---------------------------------------------------------------------------

std::vector<std::size_t> line_starts(const std::string& s) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < s.size(); ++i)
    if (s[i] == '\n') starts.push_back(i + 1);
  return starts;
}

int line_of(const std::vector<std::size_t>& starts, std::size_t pos) {
  auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return static_cast<int>(it - starts.begin());
}

// Occurrences of `word` with identifier boundaries. `allow_colon_prefix`
// lets qualified uses (std::rand) still match call-style patterns.
std::vector<std::size_t> find_word(const std::string& s, const std::string& word,
                                   bool allow_colon_prefix = true) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool front_ok =
        pos == 0 || (!is_ident_char(s[pos - 1]) && (allow_colon_prefix || s[pos - 1] != ':'));
    const std::size_t after = pos + word.size();
    const bool back_ok = after >= s.size() || !is_ident_char(s[after]);
    if (front_ok && back_ok) hits.push_back(pos);
    pos += word.size();
  }
  return hits;
}

// Char ranges [open, close] of every for(...) header, so loop stepping like
// `i += MR` is never mistaken for accumulation.
std::vector<std::pair<std::size_t, std::size_t>> for_header_ranges(const std::string& s) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t pos : find_word(s, "for", /*allow_colon_prefix=*/false)) {
    std::size_t p = pos + 3;
    while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p]))) ++p;
    if (p >= s.size() || s[p] != '(') continue;
    int depth = 0;
    std::size_t q = p;
    for (; q < s.size(); ++q) {
      if (s[q] == '(') ++depth;
      if (s[q] == ')' && --depth == 0) break;
    }
    ranges.emplace_back(p, q);
  }
  return ranges;
}

bool in_ranges(const std::vector<std::pair<std::size_t, std::size_t>>& ranges, std::size_t pos) {
  for (const auto& [a, b] : ranges)
    if (pos >= a && pos <= b) return true;
  return false;
}

// ---------------------------------------------------------------------------
// R1: declared-type classification for accumulation left-hand sides.
// ---------------------------------------------------------------------------

enum class decl_cat {
  unknown,
  float_value,    // float x        -> accumulation target, flagged
  float_pointer,  // float* p       -> p += n fine, p[i] += flagged
  double_value,   // double acc     -> widened accumulator, allowed
  double_pointer, // double* p      -> p[i] += allowed
  integral,       // ints, sizes, ptrdiff, bool, pointers to them
};

bool is_integral_type(const std::string& t) {
  static const std::array<const char*, 22> names = {
      "int",      "unsigned", "long",     "short",         "bool",          "char",
      "size_t",   "int8_t",   "int16_t",  "int32_t",       "int64_t",       "uint8_t",
      "uint16_t", "uint32_t", "uint64_t", "ptrdiff_t",     "intptr_t",      "uintptr_t",
      "byte",     "uint_fast32_t", "int_fast32_t", "ssize_t"};
  std::string base = t;
  if (starts_with(base, "std::")) base = base.substr(5);
  return std::find(names.begin(), names.end(), base) != names.end();
}

// Reads the token that ends at `end` (exclusive), walking backwards.
// Returns the token and sets `begin` to its first char.
std::string token_before(const std::string& s, std::size_t end, std::size_t& begin) {
  std::size_t e = end;
  while (e > 0 && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  if (e == 0) {
    begin = 0;
    return "";
  }
  std::size_t b = e;
  if (is_ident_char(s[e - 1])) {
    while (b > 0 && is_ident_char(s[b - 1])) --b;
    // absorb a std:: / chrono:: qualification into one token
    while (b >= 2 && s[b - 1] == ':' && s[b - 2] == ':') {
      std::size_t q = b - 2;
      while (q > 0 && is_ident_char(s[q - 1])) --q;
      b = q;
    }
  } else {
    b = e - 1;
  }
  begin = b;
  return s.substr(b, e - b);
}

// Best-effort declared type of `ident` anywhere in the file: find an
// occurrence preceded by (const) <type> (*|&)*. Unknown stays unknown — R1
// treats unknown conservatively (flagged, suppressible).
decl_cat decl_cat_of(const std::string& s, const std::string& ident) {
  for (std::size_t pos : find_word(s, ident, /*allow_colon_prefix=*/false)) {
    bool pointer = false;
    std::size_t cursor = pos;
    std::string tok;
    for (int hops = 0; hops < 4; ++hops) {
      std::size_t b = 0;
      tok = token_before(s, cursor, b);
      if (tok == "*") {
        pointer = true;
        cursor = b;
        continue;
      }
      if (tok == "&" || tok == "const" || tok == "constexpr" || tok == "inline" ||
          tok == "static") {
        cursor = b;
        continue;
      }
      break;
    }
    if (tok == "double") return pointer ? decl_cat::double_pointer : decl_cat::double_value;
    if (tok == "float") return pointer ? decl_cat::float_pointer : decl_cat::float_value;
    if (is_integral_type(tok)) return decl_cat::integral;
  }
  return decl_cat::unknown;
}

// The accumulation LHS ending just before the compound operator at `op`.
struct lhs_info {
  std::string base;        ///< base identifier ("" if unreadable)
  bool element = false;    ///< subscripted or dereferenced: targets an element
  bool qualified = false;  ///< member/qualified access — type unknowable here
};

lhs_info read_lhs(const std::string& s, std::size_t op) {
  lhs_info out;
  std::size_t e = op;
  while (e > 0 && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  // peel trailing subscripts: a[i][j]
  while (e > 0 && s[e - 1] == ']') {
    int depth = 0;
    std::size_t q = e;
    while (q > 0) {
      --q;
      if (s[q] == ']') ++depth;
      if (s[q] == '[' && --depth == 0) break;
    }
    out.element = true;
    e = q;
    while (e > 0 && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  }
  std::size_t b = e;
  while (b > 0 && is_ident_char(s[b - 1])) --b;
  if (b == e) return out;  // (*p) += … or weirder: unreadable, stays conservative
  out.base = s.substr(b, e - b);
  if (b > 0 && s[b - 1] == '*') out.element = true;
  if (b > 0 && (s[b - 1] == '.' || s[b - 1] == ':')) out.qualified = true;
  if (b > 1 && s[b - 1] == '>' && s[b - 2] == '-') out.qualified = true;
  return out;
}

// ---------------------------------------------------------------------------
// Rule scoping.
// ---------------------------------------------------------------------------

bool r1_applies(const std::string& p) {
  return p == "src/tensor/kernels.cpp" || p == "src/tensor/conv.cpp" ||
         p == "src/tensor/quantized_tensor.cpp" || p == "src/fl/aggregation.cpp" ||
         p == "src/fl/aggregation.h";
}
bool r2_applies(const std::string& p) {
  return p == "src/tensor/kernels.cpp" || p == "src/tensor/conv.cpp";
}
bool r3_applies(const std::string& p) {
  return starts_with(p, "src/") && p != "src/tensor/rng.h";
}
// core/simclock is the one file allowed to NAME time (`now`, `clock`):
// it owns the simulated-clock vocabulary the way rng.h owns entropy.
// It is NOT exempt from the wall-clock API bans — the simulated clock is
// pure arithmetic over stamps and never consults the host's time.
bool r3_simclock(const std::string& p) {
  return p == "src/core/simclock.h" || p == "src/core/simclock.cpp";
}
bool r4_applies(const std::string& p) {
  return starts_with(p, "src/") && p != "src/tensor/parallel.h" &&
         p != "src/tensor/parallel.cpp";
}
bool r5_applies(const std::string& p) {
  return starts_with(p, "src/fl/") || starts_with(p, "src/serve/");
}
// core/sync.h is where the annotated wrappers live (it has to touch the raw
// std:: primitives once); core/thread_annotations.h defines the macros.
// Everyone else must go through the wrappers — same exemption pattern as
// rng.h for R3 and parallel.{h,cpp} for R4.
bool r6_applies(const std::string& p) {
  return starts_with(p, "src/") && p != "src/core/sync.h" &&
         p != "src/core/thread_annotations.h";
}

}  // namespace

std::vector<std::string> applicable_rules(const std::string& rel_path) {
  std::string p = rel_path;
  std::replace(p.begin(), p.end(), '\\', '/');
  std::vector<std::string> rules;
  if (r1_applies(p)) rules.push_back("R1");
  if (r2_applies(p)) rules.push_back("R2");
  if (r3_applies(p)) rules.push_back("R3");
  if (r4_applies(p)) rules.push_back("R4");
  if (r5_applies(p)) rules.push_back("R5");
  if (r6_applies(p)) rules.push_back("R6");
  return rules;
}

file_report lint_source(const std::string& rel_path, const std::string& content,
                        std::vector<include_edge>* edges) {
  std::string path = rel_path;
  std::replace(path.begin(), path.end(), '\\', '/');

  const scrubbed_source sc = scrub(content);
  const std::string& s = sc.text;
  const std::vector<std::size_t> starts = line_starts(s);

  auto l1_suppressed_on = [&](int line) {
    for (const suppression& sup : sc.suppressions) {
      if (!sup.well_formed || !sup.has_reason) continue;
      if (sup.line != line && !(sup.own_line && sup.line + 1 == line)) continue;
      if (std::find(sup.rules.begin(), sup.rules.end(), std::string("L1")) != sup.rules.end())
        return true;
    }
    return false;
  };
  if (edges) {
    // Include directives live in the *original* text (the quoted path is a
    // string literal, scrubbed to spaces), but the '#' survives scrubbing,
    // which is how a directive quoted inside a comment is told apart.
    std::size_t pos = 0;
    while ((pos = content.find("#include", pos)) != std::string::npos) {
      const std::size_t here = pos;
      pos += 8;
      if (s[here] != '#') continue;  // commented-out include
      std::size_t q = content.find_first_of("\"<\n", here + 8);
      if (q == std::string::npos || content[q] != '"') continue;  // <system> header
      const std::size_t close = content.find('"', q + 1);
      if (close == std::string::npos) continue;
      include_edge e;
      e.from = path;
      e.line = line_of(starts, here);
      e.target = content.substr(q + 1, close - q - 1);
      std::replace(e.target.begin(), e.target.end(), '\\', '/');
      e.suppressed = l1_suppressed_on(e.line);
      edges->push_back(e);
    }
  }

  std::vector<finding> raw;
  auto add = [&](std::size_t pos, const char* rule, std::string msg) {
    raw.push_back(finding{path, line_of(starts, pos), rule, std::move(msg)});
  };

  // ---- R1: raw float accumulation ----------------------------------------
  if (r1_applies(path)) {
    const auto headers = for_header_ranges(s);
    for (const char* op : {"+=", "-="}) {
      std::size_t pos = 0;
      while ((pos = s.find(op, pos)) != std::string::npos) {
        const std::size_t here = pos;
        pos += 2;
        if (in_ranges(headers, here)) continue;  // loop stepping
        const lhs_info lhs = read_lhs(s, here);
        decl_cat cat = decl_cat::unknown;
        if (!lhs.base.empty() && !lhs.qualified) cat = decl_cat_of(s, lhs.base);
        const bool ok =
            lhs.element
                ? (cat == decl_cat::integral || cat == decl_cat::double_pointer ||
                   cat == decl_cat::double_value)
                : (cat == decl_cat::integral || cat == decl_cat::double_value ||
                   cat == decl_cat::double_pointer || cat == decl_cat::float_pointer);
        if (ok) continue;
        add(here, "R1",
            "raw float `" + std::string(op) + "` accumulation" +
                (lhs.base.empty() ? "" : " into `" + lhs.base + "`") +
                " — route through detail::fmadd or a double-widened accumulator "
                "(bit-identity across PELTA_THREADS depends on one rounding "
                "sequence per element)");
      }
    }
  }

  // ---- R2: allocation in arena-governed hot files ------------------------
  if (r2_applies(path)) {
    for (std::size_t pos : find_word(s, "std::vector"))
      add(pos, "R2",
          "std::vector in an arena-governed hot file — take workspace from "
          "scratch_arena::local() (zero steady-state allocation contract)");
    for (std::size_t pos : find_word(s, "new", /*allow_colon_prefix=*/false))
      add(pos, "R2", "raw `new` in an arena-governed hot file — use scratch_arena");
    {
      std::size_t pos = 0;
      while ((pos = s.find("resize", pos)) != std::string::npos) {
        const std::size_t here = pos;
        pos += 6;
        if (here == 0 || !(s[here - 1] == '.' || (here > 1 && s[here - 1] == '>' && s[here - 2] == '-')))
          continue;
        std::size_t after = here + 6;
        while (after < s.size() && std::isspace(static_cast<unsigned char>(s[after]))) ++after;
        if (after < s.size() && s[after] == '(')
          add(here, "R2", "container resize() in an arena-governed hot file — use scratch_arena");
      }
    }
  }

  // ---- R3: wall clock / OS entropy ---------------------------------------
  if (r3_applies(path)) {
    for (const char* clock : {"steady_clock", "system_clock", "high_resolution_clock"})
      for (std::size_t pos : find_word(s, clock))
        add(pos, "R3",
            std::string(clock) +
                " in src/ — planners and the serving runtime run on the simulated "
                "clock; wall timing belongs in bench/ or behind a suppression");
    for (std::size_t pos : find_word(s, "random_device"))
      add(pos, "R3",
          "std::random_device in src/ — all randomness is seeded through the rng core "
          "(src/tensor/rng.h) so runs replay exactly");
    for (const char* fn : {"rand", "srand"}) {
      for (std::size_t pos : find_word(s, fn)) {
        std::size_t after = pos + std::string(fn).size();
        while (after < s.size() && std::isspace(static_cast<unsigned char>(s[after]))) ++after;
        if (after < s.size() && s[after] == '(')
          add(pos, "R3",
              std::string(fn) + "() in src/ — unseeded libc RNG breaks replayability; "
              "use the rng core (src/tensor/rng.h)");
      }
    }
    // Wall-clock and sleep APIs are banned in EVERY R3 file — core/simclock
    // included: the simulated clock is pure arithmetic over stamps, so even
    // its implementation has no business consulting the host's time.
    for (const char* api : {"chrono", "clock_gettime", "gettimeofday", "timespec_get",
                            "nanosleep", "usleep"})
      for (std::size_t pos : find_word(s, api))
        add(pos, "R3",
            std::string(api) +
                " in src/ — wall-clock/sleep APIs never belong in the library; "
                "everything runs on the simulated clock (core/simclock.h)");
    // Time vocabulary: core/simclock is the one place allowed to name time.
    // Everyone else speaks in explicit stamps (submit_ns, at_ns, close_ns)
    // and routes ordering through core::event_queue, so a bare `now` or
    // `clock` identifier elsewhere is either a wall-clock habit leaking in
    // or a private event loop growing back.
    if (!r3_simclock(path)) {
      for (const char* word : {"now", "clock"})
        for (std::size_t pos : find_word(s, word))
          add(pos, "R3",
              std::string("`") + word +
                  "` in src/ — time vocabulary lives in core/simclock only; name "
                  "stamps explicitly (at_ns, submit_ns, ...) elsewhere");
    }
  }

  // ---- R4: threads outside the pool --------------------------------------
  if (r4_applies(path)) {
    for (const char* t : {"std::thread", "std::jthread", "std::async"})
      for (std::size_t pos : find_word(s, t))
        add(pos, "R4",
            std::string(t) +
                " outside src/tensor/parallel — all concurrency goes through the "
                "single PELTA_THREADS pool (width, nesting and shutdown rules "
                "live there)");
  }

  // ---- R5: unordered containers in deterministic fl/serve paths ----------
  if (r5_applies(path)) {
    for (const char* t : {"std::unordered_map", "std::unordered_set"})
      for (std::size_t pos : find_word(s, t))
        add(pos, "R5",
            std::string(t) +
                " in a deterministic aggregation/report path — iteration order is "
                "nondeterministic; use std::map / a sorted vector, or suppress "
                "with a reason if access is point-lookup only");
  }

  // ---- R6: raw locks / unguarded sync::mutex members ---------------------
  if (r6_applies(path)) {
    for (const char* t :
         {"std::mutex", "std::timed_mutex", "std::recursive_mutex",
          "std::recursive_timed_mutex", "std::shared_mutex", "std::shared_timed_mutex",
          "std::condition_variable", "std::condition_variable_any", "std::lock_guard",
          "std::scoped_lock", "std::unique_lock", "std::shared_lock"})
      for (std::size_t pos : find_word(s, t))
        add(pos, "R6",
            std::string(t) +
                " outside src/core/sync.h — locks must be the annotated pelta::sync "
                "wrappers so Clang's -Wthread-safety can see every acquire (a raw "
                "std primitive is invisible to the analysis)");

    // Every sync::mutex *member* (trailing-underscore convention) must be
    // named by at least one PELTA_* annotation in the same file: a mutex
    // nothing is annotated against is dead or hiding an unannotated field.
    std::vector<std::string> annotation_args;
    for (const char* macro :
         {"PELTA_GUARDED_BY", "PELTA_PT_GUARDED_BY", "PELTA_REQUIRES", "PELTA_ACQUIRE",
          "PELTA_RELEASE", "PELTA_TRY_ACQUIRE", "PELTA_EXCLUDES", "PELTA_RETURN_CAPABILITY"}) {
      for (std::size_t pos : find_word(s, macro, /*allow_colon_prefix=*/false)) {
        std::size_t p = pos + std::string(macro).size();
        while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p]))) ++p;
        if (p >= s.size() || s[p] != '(') continue;
        int depth = 0;
        std::size_t q = p;
        for (; q < s.size(); ++q) {
          if (s[q] == '(') ++depth;
          if (s[q] == ')' && --depth == 0) break;
        }
        annotation_args.push_back(s.substr(p + 1, q - p - 1));
      }
    }
    auto annotated = [&](const std::string& name) {
      for (const std::string& args : annotation_args)
        if (!find_word(args, name, /*allow_colon_prefix=*/false).empty()) return true;
      return false;
    };
    for (std::size_t pos : find_word(s, "sync::mutex")) {
      std::size_t p = pos + std::string("sync::mutex").size();
      while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p]))) ++p;
      if (p < s.size() && (s[p] == '&' || s[p] == '*')) continue;  // param/return, not an owning member
      std::size_t b = p;
      while (p < s.size() && is_ident_char(s[p])) ++p;
      const std::string name = s.substr(b, p - b);
      if (name.empty() || name.back() != '_') continue;  // locals/statics: no member convention
      if (!annotated(name))
        add(pos, "R6",
            "sync::mutex member `" + name +
                "` is never named by a PELTA_GUARDED_BY / PELTA_REQUIRES-family "
                "annotation in this file — a mutex that guards nothing is dead "
                "or hiding an unannotated field");
    }
  }

  // ---- suppressions -------------------------------------------------------
  file_report report;
  for (const suppression& sup : sc.suppressions) {
    if (!sup.well_formed)
      report.findings.push_back(
          {path, sup.line, "suppression",
           "malformed pelta-lint comment — expected `// pelta-lint: allow(<rule>) <reason>`"});
    else if (!sup.has_reason)
      report.findings.push_back(
          {path, sup.line, "suppression",
           "suppression without a reason — `// pelta-lint: allow(" + sup.rules.front() +
               ") <reason>` (the reason is mandatory)"});
  }
  auto suppressed_by = [&](const finding& f) {
    for (const suppression& sup : sc.suppressions) {
      if (!sup.well_formed || !sup.has_reason) continue;
      const bool covers_line = sup.line == f.line || (sup.own_line && sup.line + 1 == f.line);
      if (!covers_line) continue;
      if (std::find(sup.rules.begin(), sup.rules.end(), f.rule) != sup.rules.end()) return true;
    }
    return false;
  };
  for (finding& f : raw) {
    if (suppressed_by(f))
      report.suppressed_findings.push_back(std::move(f));
    else
      report.findings.push_back(std::move(f));
  }
  const auto by_position = [](const finding& a, const finding& b) {
    return std::tie(a.line, a.rule, a.message) < std::tie(b.line, b.rule, b.message);
  };
  std::sort(report.findings.begin(), report.findings.end(), by_position);
  std::sort(report.suppressed_findings.begin(), report.suppressed_findings.end(), by_position);
  report.suppressed = static_cast<int>(report.suppressed_findings.size());
  return report;
}

tree_report lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  tree_report out;
  const fs::path base = fs::path(root) / "src";
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(base)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cpp") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string rel =
        fs::relative(f, fs::path(root)).generic_string();
    file_report r = lint_source(rel, buf.str(), &out.edges);
    ++out.files_scanned;
    out.suppressed += r.suppressed;
    out.findings.insert(out.findings.end(), r.findings.begin(), r.findings.end());
    out.suppressed_findings.insert(out.suppressed_findings.end(), r.suppressed_findings.begin(),
                                   r.suppressed_findings.end());
  }

  // Layering pass: collapse the observed include edges onto the subsystem
  // graph and check them against the DAG declared in docs/ARCHITECTURE.md.
  std::vector<std::string> observed;
  for (const auto& entry : fs::directory_iterator(base))
    if (entry.is_directory()) observed.push_back(entry.path().filename().generic_string());
  std::sort(observed.begin(), observed.end());
  std::string doc;
  {
    std::ifstream in(fs::path(root) / "docs" / "ARCHITECTURE.md", std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    doc = buf.str();
  }
  const layering_report lr = check_layering(parse_layering_doc(doc), out.edges, observed);
  out.findings.insert(out.findings.end(), lr.findings.begin(), lr.findings.end());
  out.suppressed_findings.insert(out.suppressed_findings.end(), lr.suppressed_findings.begin(),
                                 lr.suppressed_findings.end());
  out.suppressed += static_cast<int>(lr.suppressed_findings.size());
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string to_json(const tree_report& report) {
  std::ostringstream o;
  o << "{\n  \"files_scanned\": " << report.files_scanned
    << ",\n  \"suppressed\": " << report.suppressed << ",\n  \"findings\": [";
  bool first = true;
  const auto emit = [&](const finding& f, bool suppressed) {
    o << (first ? "\n" : ",\n") << "    {\"file\": \"" << json_escape(f.file)
      << "\", \"line\": " << f.line << ", \"rule\": \"" << json_escape(f.rule)
      << "\", \"message\": \"" << json_escape(f.message)
      << "\", \"suppressed\": " << (suppressed ? "true" : "false") << "}";
    first = false;
  };
  for (const finding& f : report.findings) emit(f, false);
  for (const finding& f : report.suppressed_findings) emit(f, true);
  o << (first ? "]" : "\n  ]") << "\n}\n";
  return o.str();
}

}  // namespace pelta::lint
