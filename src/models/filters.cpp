#include "models/filters.h"

#include "autodiff/ops_conv.h"
#include "autodiff/ops_elementwise.h"

namespace pelta::models {

namespace {

tensor box_blur_kernel(std::int64_t channels) {
  tensor w{shape_t{channels, channels, 3, 3}};
  for (std::int64_t c = 0; c < channels; ++c)
    for (std::int64_t ky = 0; ky < 3; ++ky)
      for (std::int64_t kx = 0; kx < 3; ++kx) w.at(c, c, ky, kx) = 1.0f / 9.0f;
  return w;
}

}  // namespace

ad::node_id apply_box_blur(ad::graph& g, ad::node_id x, std::int64_t channels,
                           const std::string& tag) {
  const ad::node_id w = g.add_constant(box_blur_kernel(channels), tag + ".kernel");
  return g.add_transform(ad::make_conv2d(1, 1, false), {x, w}, tag);
}

ad::node_id apply_high_pass(ad::graph& g, ad::node_id x, std::int64_t channels,
                            const std::string& tag, float gain) {
  const ad::node_id blurred = apply_box_blur(g, x, channels, tag + ".blur");
  const ad::node_id neg = g.add_transform(ad::make_scale(-1.0f), {blurred}, tag + ".neg");
  const ad::node_id residual = g.add_transform(ad::make_add(), {x, neg}, tag + ".residual");
  return g.add_transform(ad::make_scale(gain), {residual}, tag);
}

}  // namespace pelta::models
