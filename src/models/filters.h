// Fixed (non-trainable) input filters encoding the families' frequency
// biases: ViTs are largely insensitive to high-frequency perturbations
// (they aggregate patches), CNNs are texture-biased. Modeling the bias as
// an explicit fixed band-pass at the model input reproduces the poor
// CNN↔ViT adversarial transfer the paper's ensemble defense builds on
// (Benz et al. [43], Mahmood et al. [44]) at simulator scale.
//
// The filters are constant graph nodes (architecture, not parameters):
// PELTA never needs to hide them, and gradients flow through them to the
// raw pixel input, so attacks keep operating in pixel space.
#pragma once

#include "autodiff/graph.h"

namespace pelta::models {

/// 3x3 per-channel box blur (low-pass), zero-padded. x [B,C,H,W].
ad::node_id apply_box_blur(ad::graph& g, ad::node_id x, std::int64_t channels,
                           const std::string& tag);

/// High-pass residual x - blur(x), amplified by `gain` to keep the band's
/// dynamic range trainable. x [B,C,H,W].
ad::node_id apply_high_pass(ad::graph& g, ad::node_id x, std::int64_t channels,
                            const std::string& tag, float gain = 4.0f);

}  // namespace pelta::models
