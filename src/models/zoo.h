// Named model factories — scaled-down analogues of the paper's defenders.
//
// The "_sim" suffix marks that these reproduce the *families* and relative
// size ordering (ViT-L > ViT-B; R152x4 > R101x3; ResNet-164 > ResNet-56) at
// CPU-trainable scale, not the original parameter counts (DESIGN.md §4).
#pragma once

#include <memory>

#include "models/resnet.h"
#include "models/vit.h"

namespace pelta::models {

/// Shape of the classification problem a model is instantiated for.
struct task_spec {
  std::int64_t image_size = 16;
  std::int64_t channels = 3;
  std::int64_t classes = 10;
  std::uint64_t seed = 11;
};

std::unique_ptr<vit_model> make_vit_l16_sim(const task_spec& task);
std::unique_ptr<vit_model> make_vit_b16_sim(const task_spec& task);
std::unique_ptr<vit_model> make_vit_b32_sim(const task_spec& task);
std::unique_ptr<resnet_model> make_resnet56_sim(const task_spec& task);
std::unique_ptr<resnet_model> make_resnet164_sim(const task_spec& task);
std::unique_ptr<resnet_model> make_bit_r101x3_sim(const task_spec& task);
std::unique_ptr<resnet_model> make_bit_r152x4_sim(const task_spec& task);

/// Factory by paper name ("ViT-L/16", "BiT-M-R101x3", "ResNet-56", ...).
std::unique_ptr<model> make_model(const std::string& paper_name, const task_spec& task);

/// All paper model names evaluated on a given dataset (Table III rows).
std::vector<std::string> table3_model_names(const std::string& dataset_name);

}  // namespace pelta::models
