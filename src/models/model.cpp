#include "models/model.h"

#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace pelta::models {

tensor predict(const model& m, const tensor& images) {
  return ops::argmax_lastdim(predict_logits(m, images));
}

tensor predict_logits(const model& m, const tensor& images) {
  PELTA_CHECK_MSG(images.ndim() == 4, "predict_logits expects [B,C,H,W]");
  const std::int64_t n = images.size(0);
  const std::int64_t c = images.size(1), h = images.size(2), w = images.size(3);
  const std::int64_t classes = m.num_classes();
  constexpr std::int64_t k_grain = 16;  // images per chunk keep eval fast on big splits

  tensor logits{shape_t{n, classes}};
  parallel_for_range(n, k_grain, [&](std::int64_t lo, std::int64_t hi) {
    tensor part{shape_t{hi - lo, c, h, w}};
    auto src = images.data();
    std::copy(src.begin() + lo * c * h * w, src.begin() + hi * c * h * w,
              part.data().begin());
    forward_pass fp = m.forward(part, ad::norm_mode::eval);
    const tensor& out = fp.graph.value(fp.logits);
    PELTA_CHECK_MSG(out.numel() == (hi - lo) * classes,
                    "model emitted " << out.numel() << " logits for " << hi - lo << " samples");
    std::copy(out.data().begin(), out.data().end(), logits.data().begin() + lo * classes);
  });
  return logits;
}

std::int64_t predict_one(const model& m, const tensor& image) {
  PELTA_CHECK_MSG(image.ndim() == 3, "predict_one expects [C,H,W]");
  shape_t batched{1};
  for (std::int64_t d : image.shape()) batched.push_back(d);
  const tensor preds = predict(m, image.reshape(batched));
  return static_cast<std::int64_t>(preds[0]);
}

float accuracy(const model& m, const tensor& images, const tensor& labels,
               std::int64_t /*batch_size*/) {
  PELTA_CHECK(images.ndim() == 4 && labels.numel() == images.size(0));
  const std::int64_t n = images.size(0);
  const tensor preds = predict(m, images);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i)
    if (static_cast<std::int64_t>(preds[i]) == static_cast<std::int64_t>(labels[i])) ++correct;
  return static_cast<float>(correct) / static_cast<float>(n);
}

}  // namespace pelta::models
