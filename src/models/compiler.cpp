#include "models/compiler.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "autodiff/ops_conv.h"
#include "autodiff/ops_elementwise.h"
#include "autodiff/ops_linalg.h"
#include "autodiff/ops_loss.h"
#include "tensor/quantized_tensor.h"

namespace pelta::models {

namespace {

// Effective keep-fp32 tag set. The default policy keeps everything up to
// the DEEPEST frontier-tagged step fp32: the shield masks those layers
// inside the enclave, and quantizing them would change the very activations
// the masking argument is about.
std::vector<std::string> effective_keep_tags(const std::vector<nn::chain_step>& chain,
                                             const std::vector<std::string>& frontier,
                                             const quantize_options& opts) {
  if (opts.quantize_all) {
    PELTA_CHECK_MSG(opts.keep_fp32_tags.empty(),
                    "quantize_all contradicts an explicit keep_fp32_tags list");
    return {};
  }
  if (!opts.keep_fp32_tags.empty()) return opts.keep_fp32_tags;
  std::size_t last = chain.size();  // npos
  for (std::size_t i = 0; i < chain.size(); ++i)
    if (std::find(frontier.begin(), frontier.end(), chain[i].tag) != frontier.end()) last = i;
  if (last == chain.size()) return {};
  std::vector<std::string> keep;
  for (std::size_t i = 0; i <= last; ++i) {
    PELTA_CHECK_MSG(!chain[i].tag.empty(),
                    "untagged chain step " << i << " inside the shield-frontier prefix — cannot "
                                              "express the default keep-fp32 policy by tag");
    keep.push_back(chain[i].tag);
  }
  return keep;
}

}  // namespace

std::unique_ptr<quantized_model> quantize_model(const model& source,
                                                const tensor& calibration_images,
                                                const quantize_options& opts,
                                                quantize_report* report) {
  PELTA_CHECK_MSG(calibration_images.ndim() == 4 && calibration_images.size(0) >= 1,
                  "calibration shard must be [B,C,H,W] with B >= 1, got "
                      << to_string(calibration_images.shape()));
  // One eval forward over the shard does double duty: its graph is the chain
  // we compile, and its cached node values are the calibration activations.
  const forward_pass fp = source.forward(calibration_images, ad::norm_mode::eval);
  const std::vector<nn::chain_step> chain = nn::parse_chain(fp.graph, fp.input, fp.logits);

  const std::vector<std::string> keep =
      effective_keep_tags(chain, source.shield_frontier_tags(), opts);
  const std::vector<nn::fusion_group> groups = nn::plan_fusion(chain, keep);

  std::unique_ptr<quantized_model> qm{new quantized_model{}};
  qm->name_ = source.name() + "+int8";
  qm->classes_ = source.num_classes();
  qm->frontier_ = source.shield_frontier_tags();

  // Own copies of every source parameter (names and creation order
  // preserved, so shield masking by name keeps working) ...
  const nn::param_store& src_params = source.params();
  for (std::size_t i = 0; i < src_params.size(); ++i) {
    const ad::parameter& p = src_params.at(i);
    qm->params_.create(p.name, p.value);
  }
  // ... and of every batch-norm buffer a kept-fp32 step reads.
  std::unordered_map<const ad::batchnorm_stats*, ad::batchnorm_stats*> stats_of;
  for (const nn::chain_step& st : chain) {
    if (st.bn_stats == nullptr || stats_of.count(st.bn_stats) != 0) continue;
    auto copy = std::make_unique<ad::batchnorm_stats>(
        ad::batchnorm_stats{st.bn_stats->running_mean, st.bn_stats->running_var});
    stats_of.emplace(st.bn_stats, copy.get());
    qm->bn_buffers_.push_back(std::move(copy));
  }

  const auto param_of = [&qm](const std::string& name) -> const tensor& {
    return std::as_const(qm->params_).get(name).value;
  };

  for (const nn::fusion_group& group : groups) {
    if (group.quantize) {
      auto stage =
          std::make_shared<nn::quantized_stage>(nn::build_quantized_stage(chain, group, param_of));
      // Calibrate: the stage's input is the source-graph value feeding the
      // group's first node (per-tensor symmetric, observed absolute max).
      const ad::node& head = fp.graph.at(chain[group.begin].node);
      const tensor& stage_in = fp.graph.value(head.parents[0]);
      stage->act_scale =
          quant::activation_scale(quant::absmax(stage_in.data().data(), stage_in.numel()));
      if (report != nullptr) report->quantized_tags.push_back(stage->tag);
      quantized_model::replay_step rs;
      rs.stage = std::move(stage);
      qm->steps_.push_back(std::move(rs));
      continue;
    }
    for (std::size_t i = group.begin; i < group.end; ++i) {
      quantized_model::replay_step rs;
      rs.step = chain[i];
      rs.step.bn_stats = nullptr;  // replay reads rs.stats (our copy) instead
      for (const std::string& pname : rs.step.param_names)
        rs.params.push_back(&qm->params_.get(pname));
      if (chain[i].kind == nn::step_kind::batchnorm2d) rs.stats = stats_of.at(chain[i].bn_stats);
      qm->steps_.push_back(std::move(rs));
    }
  }

  // The shield must be able to address the quantized model exactly like the
  // source: every frontier tag has to survive compilation (a fused stage
  // carries its group's last source tag).
  for (const std::string& tag : qm->frontier_) {
    bool found = false;
    for (const quantized_model::replay_step& rs : qm->steps_) {
      const std::string& t = rs.stage != nullptr ? rs.stage->tag : rs.step.tag;
      if (t == tag) {
        found = true;
        break;
      }
    }
    PELTA_CHECK_MSG(found, "shield frontier tag '" << tag
                                                   << "' did not survive quantization — it was "
                                                      "fused into the middle of an int8 stage");
  }

  if (report != nullptr) {
    report->stages_total = groups.size();
    report->stages_quantized =
        static_cast<std::size_t>(std::count_if(groups.begin(), groups.end(),
                                               [](const nn::fusion_group& g) { return g.quantize; }));
    report->stages_fp32 = report->stages_total - report->stages_quantized;
    report->kept_fp32_tags = keep;
  }
  return qm;
}

forward_pass quantized_model::forward(const tensor& images, ad::norm_mode mode) const {
  PELTA_CHECK_MSG(mode == ad::norm_mode::eval,
                  "quantized model '" << name_ << "' is inference-only (eval mode)");
  PELTA_CHECK_MSG(images.ndim() == 4,
                  "quantized model expects [B,C,H,W], got " << to_string(images.shape()));
  const std::int64_t batch = images.size(0);

  forward_pass fp;
  fp.input = fp.graph.add_input(images);
  ad::node_id x = fp.input;
  for (const replay_step& rs : steps_) {
    if (rs.stage != nullptr) {
      x = fp.graph.add_transform(nn::make_fused_stage(rs.stage), {x}, rs.stage->tag);
      continue;
    }
    const nn::chain_step& st = rs.step;
    std::vector<ad::node_id> parents{x};
    for (ad::parameter* p : rs.params) parents.push_back(fp.graph.add_parameter(*p));
    switch (st.kind) {
      case nn::step_kind::reshape: {
        shape_t target{batch};
        target.insert(target.end(), st.reshape_dims.begin(), st.reshape_dims.end());
        x = fp.graph.add_transform(ad::make_reshape(std::move(target)), std::move(parents), st.tag);
        break;
      }
      case nn::step_kind::affine:
        x = fp.graph.add_transform(ad::make_affine(st.scale, st.shift), std::move(parents), st.tag);
        break;
      case nn::step_kind::scale:
        x = fp.graph.add_transform(ad::make_scale(st.scale), std::move(parents), st.tag);
        break;
      case nn::step_kind::relu:
        x = fp.graph.add_transform(ad::make_relu(), std::move(parents), st.tag);
        break;
      case nn::step_kind::linear:
        x = fp.graph.add_transform(ad::make_linear(rs.params.size() > 1), std::move(parents),
                                   st.tag);
        break;
      case nn::step_kind::matmul:
        x = fp.graph.add_transform(ad::make_matmul(), std::move(parents), st.tag);
        break;
      case nn::step_kind::add_broadcast:
        x = fp.graph.add_transform(ad::make_add_broadcast(), std::move(parents), st.tag);
        break;
      case nn::step_kind::conv2d:
        x = fp.graph.add_transform(ad::make_conv2d(st.stride, st.pad, rs.params.size() > 1),
                                   std::move(parents), st.tag);
        break;
      case nn::step_kind::batchnorm2d:
        x = fp.graph.add_transform(
            ad::make_batchnorm2d(rs.stats, ad::norm_mode::eval, 0.1f, st.bn_eps),
            std::move(parents), st.tag);
        break;
      case nn::step_kind::maxpool2x2:
        x = fp.graph.add_transform(ad::make_maxpool2x2(), std::move(parents), st.tag);
        break;
      case nn::step_kind::global_avgpool:
        x = fp.graph.add_transform(ad::make_global_avgpool(), std::move(parents), st.tag);
        break;
    }
  }
  fp.logits = x;
  return fp;
}

std::vector<ad::batchnorm_stats*> quantized_model::batchnorm_buffers() const {
  std::vector<ad::batchnorm_stats*> out;
  out.reserve(bn_buffers_.size());
  for (const auto& b : bn_buffers_) out.push_back(b.get());
  return out;
}

}  // namespace pelta::models
