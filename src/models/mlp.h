// Plain deep neural network — the model class the paper's threat model is
// written against (§III):
//
//     f = softmax ∘ f_n ∘ f_{n-1} ∘ ... ∘ f_1,   f_i = σ_i(W_i · x + b_i)
//
// Transformers and CNNs get all the §V stage time, but the DNN is where
// PELTA's masking is easiest to reason about — and where the §II contrast
// with parameter-gradient shields (DarkneTZ/PPFL/GradSec) is sharpest:
// with an affine first layer, ∇W₁ = δ₁ xᵀ and ∇b₁ = δ₁, so anyone who can
// read the first layer's parameter gradients reconstructs the training
// input *analytically* (the attacks/inversion.h study). PELTA's frontier
// for this family is the first affine transform and its activation.
#pragma once

#include <memory>

#include "models/model.h"
#include "nn/layers.h"

namespace pelta::models {

struct mlp_config {
  std::string name = "mlp";
  std::int64_t image_size = 16;
  std::int64_t channels = 3;
  std::vector<std::int64_t> hidden{64, 32};
  std::int64_t classes = 10;
  std::uint64_t seed = 19;
};

class mlp_model final : public model {
public:
  explicit mlp_model(const mlp_config& config);

  const std::string& name() const override { return config_.name; }
  std::int64_t num_classes() const override { return config_.classes; }
  forward_pass forward(const tensor& images, ad::norm_mode mode) const override;
  nn::param_store& params() override { return params_; }
  const nn::param_store& params() const override { return params_; }

  /// §V-A analogue for the DNN family: the first affine layer and its ReLU
  /// live in the enclave.
  std::vector<std::string> shield_frontier_tags() const override { return {"mlp.act0"}; }

  const mlp_config& config() const { return config_; }
  std::int64_t input_dim() const { return config_.channels * config_.image_size * config_.image_size; }

private:
  mlp_config config_;
  nn::param_store params_;
  std::vector<std::unique_ptr<nn::linear_layer>> layers_;
};

}  // namespace pelta::models
