// Pre-activation ResNet-v2 (He et al. 2016) in two flavours:
//   * batchnorm       — the paper's ResNet-56 / ResNet-164 defenders
//   * groupnorm_ws    — Big Transfer (BiT): GroupNorm + weight-standardized
//                       convolutions (Kolesnikov et al. 2020)
//
// PELTA frontier (§V-A): ResNet masks the first conv + BN + ReLU
// ("stem.relu"); BiT masks the first weight-standardized convolution and
// its padding ("stem.conv").
#pragma once

#include <memory>

#include "models/model.h"
#include "nn/layers.h"

namespace pelta::models {

enum class resnet_flavor : std::uint8_t { batchnorm, groupnorm_ws };

struct resnet_config {
  std::string name = "resnet";
  resnet_flavor flavor = resnet_flavor::batchnorm;
  std::int64_t image_size = 16;
  std::int64_t channels = 3;
  std::vector<std::int64_t> stage_widths{8, 16, 32};
  std::int64_t blocks_per_stage = 2;
  std::int64_t groupnorm_groups = 4;  ///< only for groupnorm_ws
  std::int64_t classes = 10;
  std::uint64_t seed = 13;
};

class resnet_model final : public model {
public:
  explicit resnet_model(const resnet_config& config);

  const std::string& name() const override { return config_.name; }
  std::int64_t num_classes() const override { return config_.classes; }
  forward_pass forward(const tensor& images, ad::norm_mode mode) const override;
  nn::param_store& params() override { return params_; }
  const nn::param_store& params() const override { return params_; }
  std::vector<std::string> shield_frontier_tags() const override;
  std::vector<ad::batchnorm_stats*> batchnorm_buffers() const override;

  const resnet_config& config() const { return config_; }

private:
  // One pre-activation residual block.
  struct residual_block {
    std::unique_ptr<nn::batchnorm_layer> bn1, bn2;        // batchnorm flavour
    std::unique_ptr<nn::groupnorm_layer> gn1, gn2;        // groupnorm flavour
    std::unique_ptr<nn::conv2d_layer> conv1, conv2, proj; // proj: 1x1 shortcut
    std::string name;
    std::int64_t stride = 1;
  };

  ad::node_id apply_norm_relu(ad::graph& g, ad::node_id x, const nn::batchnorm_layer* bn,
                              const nn::groupnorm_layer* gn, ad::norm_mode mode,
                              const std::string& tag) const;
  ad::node_id apply_block(ad::graph& g, ad::node_id x, const residual_block& block,
                          ad::norm_mode mode) const;

  resnet_config config_;
  nn::param_store params_;
  std::unique_ptr<nn::conv2d_layer> stem_conv_;
  std::unique_ptr<nn::batchnorm_layer> stem_bn_;  // batchnorm flavour only
  std::vector<residual_block> blocks_;
  std::unique_ptr<nn::batchnorm_layer> final_bn_;
  std::unique_ptr<nn::groupnorm_layer> final_gn_;
  std::unique_ptr<nn::linear_layer> head_;
};

}  // namespace pelta::models
