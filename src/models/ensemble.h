// Random-selection ensemble (§V-A2): two models (a ViT and a BiT in the
// paper) where, per sample, one member is selected uniformly at random to
// classify the input (Srisakaokul et al.'s MULDEF policy).
#pragma once

#include <array>

#include "models/model.h"

namespace pelta::models {

class random_selection_ensemble {
public:
  /// Non-owning: both members must outlive the ensemble.
  random_selection_ensemble(model& first, model& second) : first_{&first}, second_{&second} {}

  model& first() { return *first_; }
  model& second() { return *second_; }
  const model& first() const { return *first_; }
  const model& second() const { return *second_; }

  /// Classify one [C,H,W] image with a uniformly selected member.
  std::int64_t classify(const tensor& image, rng& gen) const;

  /// Batched random-selection classify: predictions [N] for images
  /// [N,C,H,W]. Sample i draws its member from rng{seed}.fork(i) — exactly
  /// the stream a serial loop `classify(image_i, root.fork(i))` would use —
  /// then the batch is partitioned by selected member and each member runs
  /// ONE batched forward over its sub-batch (two large GEMM groups instead
  /// of N small ones). Bit-identical to the serial loop.
  tensor classify_batch(const tensor& images, std::uint64_t seed) const;

  /// Accuracy of the random-selection policy over a test set.
  float accuracy(const tensor& images, const tensor& labels, rng& gen) const;

private:
  model* first_;
  model* second_;
};

/// Per-sample member draw of the random-selection policy: element m of the
/// result lists the rows member m serves (0 = first). Sample i draws from
/// rng{seed}.fork(stream_ids[i]) — fork(i) when `stream_ids` is empty —
/// exactly the stream a serial `classify(image_i, root.fork(...))` loop
/// consumes. Shared by classify_batch and serve::ensemble_backend so the
/// draw can never diverge between the batched paths.
std::array<std::vector<std::int64_t>, 2> select_members(
    std::int64_t n, std::uint64_t seed, const std::vector<std::int64_t>& stream_ids = {});

}  // namespace pelta::models
