// Random-selection ensemble (§V-A2): two models (a ViT and a BiT in the
// paper) where, per sample, one member is selected uniformly at random to
// classify the input (Srisakaokul et al.'s MULDEF policy).
#pragma once

#include "models/model.h"

namespace pelta::models {

class random_selection_ensemble {
public:
  /// Non-owning: both members must outlive the ensemble.
  random_selection_ensemble(model& first, model& second) : first_{&first}, second_{&second} {}

  model& first() { return *first_; }
  model& second() { return *second_; }
  const model& first() const { return *first_; }
  const model& second() const { return *second_; }

  /// Classify one [C,H,W] image with a uniformly selected member.
  std::int64_t classify(const tensor& image, rng& gen) const;

  /// Accuracy of the random-selection policy over a test set.
  float accuracy(const tensor& images, const tensor& labels, rng& gen) const;

private:
  model* first_;
  model* second_;
};

}  // namespace pelta::models
