#include "models/trainer.h"

#include <algorithm>
#include <cstdio>

#include "autodiff/ops_loss.h"
#include "nn/optimizer.h"
#include "tensor/parallel.h"

namespace pelta::models {

float loss_and_grad(model& m, const data::batch& b) {
  forward_pass fp = m.forward(b.images, ad::norm_mode::train);
  const ad::node_id labels = fp.graph.add_constant(b.labels, "labels");
  const ad::node_id loss =
      fp.graph.add_transform(ad::make_cross_entropy(), {fp.logits, labels}, "loss");
  fp.graph.backward(loss);
  fp.graph.accumulate_param_grads();
  return fp.graph.value(loss).item();
}

float loss_and_grad_sharded(model& m, const data::batch& b, std::int64_t shards) {
  const std::int64_t n = b.images.size(0);
  shards = std::clamp<std::int64_t>(shards, 1, n);
  if (shards == 1) return loss_and_grad(m, b);

  const std::int64_t c = b.images.size(1), h = b.images.size(2), w = b.images.size(3);
  std::vector<ad::graph> graphs(static_cast<std::size_t>(shards));
  std::vector<float> shard_losses(static_cast<std::size_t>(shards), 0.0f);

  parallel_for(shards, [&](std::int64_t s) {
    const std::int64_t lo = s * n / shards, hi = (s + 1) * n / shards;
    const std::int64_t take = hi - lo;
    tensor images{shape_t{take, c, h, w}};
    tensor labels{shape_t{take}};
    auto src = b.images.data();
    std::copy(src.begin() + lo * c * h * w, src.begin() + hi * c * h * w,
              images.data().begin());
    for (std::int64_t i = 0; i < take; ++i) labels[i] = b.labels[lo + i];

    forward_pass fp = m.forward(images, ad::norm_mode::train);
    const ad::node_id lab = fp.graph.add_constant(labels, "labels");
    const ad::node_id loss =
        fp.graph.add_transform(ad::make_cross_entropy(), {fp.logits, lab}, "loss");
    const float frac = static_cast<float>(take) / static_cast<float>(n);
    // Seed with the shard's weight so the merged gradient is the batch mean.
    fp.graph.backward_from(loss, tensor::scalar(frac));
    shard_losses[static_cast<std::size_t>(s)] = fp.graph.value(loss).item() * frac;
    graphs[static_cast<std::size_t>(s)] = std::move(fp.graph);
  });

  // Merge in shard order: deterministic regardless of thread scheduling.
  double total_loss = 0.0;
  for (std::int64_t s = 0; s < shards; ++s) {
    graphs[static_cast<std::size_t>(s)].accumulate_param_grads();
    total_loss += shard_losses[static_cast<std::size_t>(s)];
  }
  return static_cast<float>(total_loss);
}

train_report train_model(model& m, const data::dataset& ds, const train_config& config) {
  nn::adam opt{config.lr, 0.9f, 0.999f, 1e-8f, config.weight_decay};
  data::batch_iterator batches{ds.train_size(), config.batch_size, rng{config.seed}};

  float last_loss = 0.0f;
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    const std::int64_t nb = batches.batches_per_epoch();
    for (std::int64_t i = 0; i < nb; ++i) {
      const data::batch b = ds.gather_train(batches.next());
      m.params().zero_grads();
      epoch_loss += loss_and_grad_sharded(m, b, config.shards);
      opt.step(m.params());
    }
    last_loss = static_cast<float>(epoch_loss / static_cast<double>(nb));
    if (config.verbose)
      std::printf("  [%s] epoch %lld/%lld loss %.4f\n", m.name().c_str(),
                  static_cast<long long>(epoch + 1), static_cast<long long>(config.epochs),
                  last_loss);
  }

  train_report report;
  report.final_loss = last_loss;
  report.train_accuracy = accuracy(m, ds.train_images(), ds.train_labels());
  report.test_accuracy = accuracy(m, ds.test_images(), ds.test_labels());
  return report;
}

}  // namespace pelta::models
