#include "models/ensemble.h"

namespace pelta::models {

std::int64_t random_selection_ensemble::classify(const tensor& image, rng& gen) const {
  const model& chosen = gen.bernoulli(0.5) ? *first_ : *second_;
  return predict_one(chosen, image);
}

std::array<std::vector<std::int64_t>, 2> select_members(
    std::int64_t n, std::uint64_t seed, const std::vector<std::int64_t>& stream_ids) {
  PELTA_CHECK_MSG(stream_ids.empty() || static_cast<std::int64_t>(stream_ids.size()) == n,
                  "stream_ids size " << stream_ids.size() << " != sample count " << n);
  const rng root{seed};
  std::array<std::vector<std::int64_t>, 2> rows;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::uint64_t stream =
        stream_ids.empty() ? static_cast<std::uint64_t>(i)
                           : static_cast<std::uint64_t>(stream_ids[static_cast<std::size_t>(i)]);
    rng gen = root.fork(stream);
    rows[gen.bernoulli(0.5) ? 0 : 1].push_back(i);
  }
  return rows;
}

tensor random_selection_ensemble::classify_batch(const tensor& images, std::uint64_t seed) const {
  PELTA_CHECK_MSG(images.ndim() == 4, "classify_batch expects [N,C,H,W]");
  const std::int64_t n = images.size(0);
  const std::int64_t c = images.size(1), h = images.size(2), w = images.size(3);
  const std::int64_t stride = c * h * w;
  const std::array<std::vector<std::int64_t>, 2> member_rows = select_members(n, seed);

  tensor preds{shape_t{n}};
  for (std::size_t m = 0; m < 2; ++m) {
    const std::vector<std::int64_t>& rows = member_rows[m];
    if (rows.empty()) continue;
    tensor sub{shape_t{static_cast<std::int64_t>(rows.size()), c, h, w}};
    auto src = images.data();
    for (std::size_t r = 0; r < rows.size(); ++r)
      std::copy(src.begin() + rows[r] * stride, src.begin() + (rows[r] + 1) * stride,
                sub.data().begin() + static_cast<std::int64_t>(r) * stride);
    const tensor sub_preds = predict(m == 0 ? *first_ : *second_, sub);
    for (std::size_t r = 0; r < rows.size(); ++r) preds[rows[r]] = sub_preds[static_cast<std::int64_t>(r)];
  }
  return preds;
}

float random_selection_ensemble::accuracy(const tensor& images, const tensor& labels,
                                          rng& gen) const {
  PELTA_CHECK(images.ndim() == 4 && labels.numel() == images.size(0));
  const std::int64_t n = images.size(0);
  const std::int64_t c = images.size(1), h = images.size(2), w = images.size(3);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    tensor img{shape_t{c, h, w}};
    auto src = images.data();
    std::copy(src.begin() + i * c * h * w, src.begin() + (i + 1) * c * h * w,
              img.data().begin());
    if (classify(img, gen) == static_cast<std::int64_t>(labels[i])) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(n);
}

}  // namespace pelta::models
