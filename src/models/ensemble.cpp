#include "models/ensemble.h"

namespace pelta::models {

std::int64_t random_selection_ensemble::classify(const tensor& image, rng& gen) const {
  const model& chosen = gen.bernoulli(0.5) ? *first_ : *second_;
  return predict_one(chosen, image);
}

float random_selection_ensemble::accuracy(const tensor& images, const tensor& labels,
                                          rng& gen) const {
  PELTA_CHECK(images.ndim() == 4 && labels.numel() == images.size(0));
  const std::int64_t n = images.size(0);
  const std::int64_t c = images.size(1), h = images.size(2), w = images.size(3);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    tensor img{shape_t{c, h, w}};
    auto src = images.data();
    std::copy(src.begin() + i * c * h * w, src.begin() + (i + 1) * c * h * w,
              img.data().begin());
    if (classify(img, gen) == static_cast<std::int64_t>(labels[i])) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(n);
}

}  // namespace pelta::models
