// Model checkpointing — durable persistence of a trained model's full
// state (parameters + batch-norm running statistics).
//
// The FL wire format (fl/state.h) is transient by design; checkpoints are
// what a deployment stores between sessions: examples and downstream users
// train once and reload, and a defender can pin the exact weights whose
// frontier the enclave protects. The format is versioned, self-describing
// (architecture name + per-tensor shapes) and integrity-checked, so a
// corrupted or mismatched file fails loudly instead of silently degrading
// the model.
//
// Layout (little-endian):
//   magic "PELTACKP" | u32 version | u32 name length | name bytes
//   | u64 payload length | payload (serialized tensors: params in creation
//   order, then BN buffers) | u64 FNV-1a checksum of the payload
#pragma once

#include <string>

#include "models/model.h"

namespace pelta::models {

/// Raised on any malformed, truncated, corrupted or mismatched checkpoint.
class checkpoint_error : public error {
public:
  using error::error;
};

/// Write `m`'s full state to `path` (overwrites).
void save_checkpoint(const model& m, const std::string& path);

/// Restore a checkpoint into an identically-architected model. The stored
/// architecture name must match m.name() unless `ignore_name` is set
/// (loading "ViT-B/16" weights into a model registered under another label).
void load_checkpoint(model& m, const std::string& path, bool ignore_name = false);

/// Architecture name recorded in a checkpoint (cheap header read).
std::string checkpoint_model_name(const std::string& path);

}  // namespace pelta::models
