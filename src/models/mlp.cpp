#include "models/mlp.h"

#include "autodiff/ops_elementwise.h"
#include "autodiff/ops_linalg.h"

namespace pelta::models {

mlp_model::mlp_model(const mlp_config& config) : config_{config} {
  PELTA_CHECK_MSG(!config.hidden.empty(), "mlp needs at least one hidden layer");
  rng gen{config.seed};
  std::int64_t in = input_dim();
  for (std::size_t i = 0; i < config.hidden.size(); ++i) {
    layers_.push_back(std::make_unique<nn::linear_layer>(
        params_, gen, "mlp.fc" + std::to_string(i), in, config.hidden[i]));
    in = config.hidden[i];
  }
  layers_.push_back(
      std::make_unique<nn::linear_layer>(params_, gen, "mlp.head", in, config.classes));
}

forward_pass mlp_model::forward(const tensor& images, ad::norm_mode /*mode*/) const {
  PELTA_CHECK_MSG(images.ndim() == 4, "mlp expects [B,C,H,W], got " << to_string(images.shape()));
  const std::int64_t batch = images.size(0);

  forward_pass fp;
  fp.input = fp.graph.add_input(images);
  ad::node_id x = fp.graph.add_transform(ad::make_reshape({batch, input_dim()}), {fp.input},
                                         "mlp.flatten");
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    x = layers_[i]->apply(fp.graph, x);
    x = fp.graph.add_transform(ad::make_relu(), {x}, "mlp.act" + std::to_string(i));
  }
  fp.logits = layers_.back()->apply(fp.graph, x);
  return fp;
}

}  // namespace pelta::models
