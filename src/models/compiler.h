// Post-training quantization of a trained model into a servable
// `models::model` (the user-facing face of the nn/compile pass).
//
// quantize_model() traces one eval-mode forward pass of the source model
// over a held-out calibration shard, parses it into a replayable chain
// (nn/compile.h), plans fusion, folds + quantizes the planned groups and
// calibrates each stage's per-tensor activation scale from the observed
// fp32 activations of that same pass. The result owns copies of every
// source parameter and batch-norm buffer — the source model is not retained.
//
// Keep-fp32 policy: by default every chain step up to and including the
// DEEPEST shield-frontier tag stays fp32 — the layers the PELTA shield
// masks inside the enclave keep their exact fp32 semantics, and only the
// clear suffix is quantized. Passing explicit `keep_fp32_tags` (or
// quantize_all) overrides this; the attack-placement bench sweeps exactly
// that knob (masked layers int8 vs fp32 against PGD/BPDA success).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "models/model.h"
#include "nn/compile.h"

namespace pelta::models {

struct quantize_options {
  /// Chain steps whose tags appear here replay in fp32. Empty = default
  /// policy (shield frontier prefix stays fp32) unless `quantize_all`.
  std::vector<std::string> keep_fp32_tags;
  /// Quantize every fusable stage, including the shield frontier prefix —
  /// the "masked layers quantized" arm of the placement sweep.
  bool quantize_all = false;
};

/// What the compile pass did, for reports and benches.
struct quantize_report {
  std::size_t stages_total = 0;      ///< fusion groups (quantized + fp32 runs)
  std::size_t stages_quantized = 0;
  std::size_t stages_fp32 = 0;
  std::vector<std::string> quantized_tags;  ///< tags of the fused int8 stages
  std::vector<std::string> kept_fp32_tags;  ///< effective keep-fp32 policy
};

/// A compiled int8 model. Inference-only: forward() PELTA_CHECKs eval mode.
/// Shield frontier tags are preserved (a fused stage carries its group's
/// last source tag), so shielding and attack tooling address the quantized
/// model exactly like the source.
class quantized_model final : public model {
public:
  const std::string& name() const override { return name_; }
  std::int64_t num_classes() const override { return classes_; }
  forward_pass forward(const tensor& images, ad::norm_mode mode) const override;
  nn::param_store& params() override { return params_; }
  const nn::param_store& params() const override { return params_; }
  std::vector<std::string> shield_frontier_tags() const override { return frontier_; }
  std::vector<ad::batchnorm_stats*> batchnorm_buffers() const override;

private:
  friend std::unique_ptr<quantized_model> quantize_model(const model& source,
                                                         const tensor& calibration_images,
                                                         const quantize_options& opts,
                                                         quantize_report* report);
  quantized_model() = default;

  /// One replay entry: a fused int8 stage, or one fp32 chain step with its
  /// operands resolved into this model's own parameter store.
  struct replay_step {
    nn::chain_step step;
    std::shared_ptr<const nn::quantized_stage> stage;  ///< null = fp32 replay
    std::vector<ad::parameter*> params;                ///< fp32 operands (ours)
    ad::batchnorm_stats* stats = nullptr;              ///< fp32 batch norm (ours)
  };

  std::string name_;
  std::int64_t classes_ = 0;
  std::vector<std::string> frontier_;
  nn::param_store params_;
  std::vector<std::unique_ptr<ad::batchnorm_stats>> bn_buffers_;
  std::vector<replay_step> steps_;
};

/// Compile `source` into an int8 model, calibrating activation scales over
/// `calibration_images` (one eval forward; [B,C,H,W], B >= 1). Fails loudly
/// (PELTA_CHECK) on non-chain graphs, train-mode batch norm, transform
/// operands, or a frontier tag that would not survive compilation.
std::unique_ptr<quantized_model> quantize_model(const model& source,
                                                const tensor& calibration_images,
                                                const quantize_options& opts = {},
                                                quantize_report* report = nullptr);

}  // namespace pelta::models
