#include "models/zoo.h"

namespace pelta::models {

namespace {

vit_config base_vit(const task_spec& task, std::string name) {
  vit_config c;
  c.name = std::move(name);
  c.image_size = task.image_size;
  c.channels = task.channels;
  c.classes = task.classes;
  c.seed = task.seed;
  // patch size scales with the image so the token count stays CPU-friendly
  c.patch_size = task.image_size / 4;
  return c;
}

resnet_config base_resnet(const task_spec& task, std::string name) {
  resnet_config c;
  c.name = std::move(name);
  c.image_size = task.image_size;
  c.channels = task.channels;
  c.classes = task.classes;
  c.seed = task.seed;
  return c;
}

}  // namespace

std::unique_ptr<vit_model> make_vit_l16_sim(const task_spec& task) {
  vit_config c = base_vit(task, "ViT-L/16");
  c.dim = 48;
  c.heads = 4;
  c.blocks = 4;
  c.mlp_hidden = 96;
  return std::make_unique<vit_model>(c);
}

std::unique_ptr<vit_model> make_vit_b16_sim(const task_spec& task) {
  vit_config c = base_vit(task, "ViT-B/16");
  c.dim = 32;
  c.heads = 4;
  c.blocks = 3;
  c.mlp_hidden = 64;
  return std::make_unique<vit_model>(c);
}

std::unique_ptr<vit_model> make_vit_b32_sim(const task_spec& task) {
  vit_config c = base_vit(task, "ViT-B/32");
  c.dim = 32;
  c.heads = 4;
  c.blocks = 3;
  c.mlp_hidden = 64;
  c.patch_size *= 2;  // /32 variant: coarser patches, fewer tokens
  return std::make_unique<vit_model>(c);
}

std::unique_ptr<resnet_model> make_resnet56_sim(const task_spec& task) {
  resnet_config c = base_resnet(task, "ResNet-56");
  c.flavor = resnet_flavor::batchnorm;
  c.stage_widths = {8, 16, 32};
  c.blocks_per_stage = 2;
  return std::make_unique<resnet_model>(c);
}

std::unique_ptr<resnet_model> make_resnet164_sim(const task_spec& task) {
  resnet_config c = base_resnet(task, "ResNet-164");
  c.flavor = resnet_flavor::batchnorm;
  c.stage_widths = {12, 24, 48};
  c.blocks_per_stage = 3;
  return std::make_unique<resnet_model>(c);
}

std::unique_ptr<resnet_model> make_bit_r101x3_sim(const task_spec& task) {
  resnet_config c = base_resnet(task, "BiT-M-R101x3");
  c.flavor = resnet_flavor::groupnorm_ws;
  c.stage_widths = {12, 24, 48};  // wider than the ResNets (BiT multiplier)
  c.blocks_per_stage = 2;
  return std::make_unique<resnet_model>(c);
}

std::unique_ptr<resnet_model> make_bit_r152x4_sim(const task_spec& task) {
  resnet_config c = base_resnet(task, "BiT-M-R152x4");
  c.flavor = resnet_flavor::groupnorm_ws;
  c.stage_widths = {16, 32, 64};  // wider still, deeper
  c.blocks_per_stage = 3;
  return std::make_unique<resnet_model>(c);
}

std::unique_ptr<model> make_model(const std::string& paper_name, const task_spec& task) {
  if (paper_name == "ViT-L/16") return make_vit_l16_sim(task);
  if (paper_name == "ViT-B/16") return make_vit_b16_sim(task);
  if (paper_name == "ViT-B/32") return make_vit_b32_sim(task);
  if (paper_name == "ResNet-56") return make_resnet56_sim(task);
  if (paper_name == "ResNet-164") return make_resnet164_sim(task);
  if (paper_name == "BiT-M-R101x3") return make_bit_r101x3_sim(task);
  if (paper_name == "BiT-M-R152x4") return make_bit_r152x4_sim(task);
  throw error{"unknown model name: " + paper_name};
}

std::vector<std::string> table3_model_names(const std::string& dataset_name) {
  if (dataset_name == "imagenet_like")  // Table III ImageNet rows
    return {"ViT-L/16", "ViT-B/16", "BiT-M-R101x3", "BiT-M-R152x4"};
  return {"ViT-L/16", "ViT-B/16", "ViT-B/32", "ResNet-56", "ResNet-164", "BiT-M-R101x3"};
}

}  // namespace pelta::models
