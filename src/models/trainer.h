// Model training loop (Adam + cross-entropy) and evaluation helpers.
#pragma once

#include "data/dataset.h"
#include "models/model.h"

namespace pelta::models {

struct train_config {
  std::int64_t epochs = 12;
  std::int64_t batch_size = 32;
  float lr = 2e-3f;
  float weight_decay = 1e-4f;
  std::uint64_t seed = 7;
  /// Data-parallel shards per batch (1 = sequential). Shard gradients are
  /// merged in shard order, so results are deterministic; batch-norm
  /// statistics are computed per shard (as in distributed BN).
  std::int64_t shards = 1;
  bool verbose = false;
};

struct train_report {
  float final_loss = 0.0f;
  float train_accuracy = 0.0f;
  float test_accuracy = 0.0f;  ///< the paper's "clean accuracy"
};

/// Train `m` on the dataset's train split; returns accuracies on both splits.
train_report train_model(model& m, const data::dataset& ds, const train_config& config);

/// One forward+backward over a batch; returns the loss. Parameter gradients
/// are accumulated into the model's param_store (caller zeroes/steps).
float loss_and_grad(model& m, const data::batch& b);

/// Same, split across `shards` data-parallel workers (see train_config).
float loss_and_grad_sharded(model& m, const data::batch& b, std::int64_t shards);

}  // namespace pelta::models
