#include "models/checkpoint.h"

#include <cstring>
#include <fstream>

namespace pelta::models {

namespace {

constexpr char k_magic[8] = {'P', 'E', 'L', 'T', 'A', 'C', 'K', 'P'};
constexpr std::uint32_t k_version = 1;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in, const char* what) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw checkpoint_error{std::string{"truncated checkpoint while reading "} + what};
  return v;
}

byte_buffer full_state(const model& m) {
  byte_buffer payload = m.params().save_values();
  for (const ad::batchnorm_stats* bn : m.batchnorm_buffers()) {
    serialize_tensor(bn->running_mean, payload);
    serialize_tensor(bn->running_var, payload);
  }
  return payload;
}

}  // namespace

void save_checkpoint(const model& m, const std::string& path) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) throw checkpoint_error{"cannot open checkpoint for writing: " + path};

  out.write(k_magic, sizeof(k_magic));
  write_pod(out, k_version);
  const std::string& name = m.name();
  write_pod(out, static_cast<std::uint32_t>(name.size()));
  out.write(name.data(), static_cast<std::streamsize>(name.size()));

  const byte_buffer payload = full_state(m);
  write_pod(out, static_cast<std::uint64_t>(payload.size()));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  write_pod(out, fnv1a(payload.data(), payload.size()));
  if (!out) throw checkpoint_error{"short write while saving checkpoint: " + path};
}

namespace {

struct header {
  std::string name;
  std::uint64_t payload_size = 0;
};

header read_header(std::ifstream& in, const std::string& path) {
  char magic[sizeof(k_magic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, k_magic, sizeof(k_magic)) != 0)
    throw checkpoint_error{"not a PELTA checkpoint: " + path};
  const auto version = read_pod<std::uint32_t>(in, "version");
  if (version != k_version)
    throw checkpoint_error{"unsupported checkpoint version " + std::to_string(version)};
  const auto name_len = read_pod<std::uint32_t>(in, "name length");
  if (name_len > 4096) throw checkpoint_error{"implausible checkpoint name length"};
  header h;
  h.name.resize(name_len);
  in.read(h.name.data(), static_cast<std::streamsize>(name_len));
  if (!in) throw checkpoint_error{"truncated checkpoint while reading the name"};
  h.payload_size = read_pod<std::uint64_t>(in, "payload length");
  return h;
}

}  // namespace

void load_checkpoint(model& m, const std::string& path, bool ignore_name) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw checkpoint_error{"cannot open checkpoint: " + path};
  const header h = read_header(in, path);
  if (!ignore_name && h.name != m.name())
    throw checkpoint_error{"checkpoint holds '" + h.name + "', model is '" + m.name() + "'"};

  byte_buffer payload(h.payload_size);
  in.read(reinterpret_cast<char*>(payload.data()), static_cast<std::streamsize>(payload.size()));
  if (!in) throw checkpoint_error{"truncated checkpoint payload: " + path};
  const auto stored_sum = read_pod<std::uint64_t>(in, "checksum");
  if (fnv1a(payload.data(), payload.size()) != stored_sum)
    throw checkpoint_error{"checkpoint payload corrupted (checksum mismatch): " + path};

  // Parameters first; whatever follows must exactly fill the BN buffers.
  std::size_t offset = m.params().load_values_at(payload, 0);
  for (ad::batchnorm_stats* bn : m.batchnorm_buffers()) {
    tensor mean = deserialize_tensor(payload, offset);
    tensor var = deserialize_tensor(payload, offset);
    if (!mean.same_shape(bn->running_mean) || !var.same_shape(bn->running_var))
      throw checkpoint_error{"checkpoint batch-norm buffers do not match the architecture"};
    bn->running_mean = std::move(mean);
    bn->running_var = std::move(var);
  }
  if (offset != payload.size())
    throw checkpoint_error{"checkpoint holds trailing state the architecture cannot place"};
}

std::string checkpoint_model_name(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw checkpoint_error{"cannot open checkpoint: " + path};
  return read_header(in, path).name;
}

}  // namespace pelta::models
