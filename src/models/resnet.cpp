#include "models/resnet.h"

#include "autodiff/ops_conv.h"
#include "autodiff/ops_elementwise.h"
#include "autodiff/ops_linalg.h"
#include "models/filters.h"

namespace pelta::models {

resnet_model::resnet_model(const resnet_config& config) : config_{config} {
  PELTA_CHECK_MSG(!config.stage_widths.empty(), "resnet needs at least one stage");
  rng gen{config.seed};
  const bool ws = config.flavor == resnet_flavor::groupnorm_ws;

  // Stem. BN flavour: conv + BN + ReLU (the masked triple of §V-A);
  // BiT flavour: a single weight-standardized conv (+ its padding).
  stem_conv_ = std::make_unique<nn::conv2d_layer>(params_, gen, "stem.conv", config.channels,
                                                  config.stage_widths[0], 3, 1, 1,
                                                  /*bias=*/false, /*weight_std=*/ws);
  if (!ws)
    stem_bn_ = std::make_unique<nn::batchnorm_layer>(params_, "stem.bn", config.stage_widths[0]);

  std::int64_t in_ch = config.stage_widths[0];
  for (std::size_t stage = 0; stage < config.stage_widths.size(); ++stage) {
    const std::int64_t out_ch = config.stage_widths[stage];
    for (std::int64_t b = 0; b < config.blocks_per_stage; ++b) {
      residual_block block;
      // Built by append, not operator+: `"s" + to_string(...) + "b" + ...`
      // routes through string::insert on a prepend path GCC 12's -Wrestrict
      // misanalyzes at -O3 (a non-overlapping copy reported as overlapping),
      // and the append chain is what the concat would compile to anyway.
      block.name = "s";
      block.name += std::to_string(stage);
      block.name += 'b';
      block.name += std::to_string(b);
      block.stride = (stage > 0 && b == 0) ? 2 : 1;
      if (ws) {
        block.gn1 = std::make_unique<nn::groupnorm_layer>(params_, block.name + ".gn1", in_ch,
                                                          config.groupnorm_groups);
        block.gn2 = std::make_unique<nn::groupnorm_layer>(params_, block.name + ".gn2", out_ch,
                                                          config.groupnorm_groups);
      } else {
        block.bn1 = std::make_unique<nn::batchnorm_layer>(params_, block.name + ".bn1", in_ch);
        block.bn2 = std::make_unique<nn::batchnorm_layer>(params_, block.name + ".bn2", out_ch);
      }
      block.conv1 = std::make_unique<nn::conv2d_layer>(params_, gen, block.name + ".conv1", in_ch,
                                                       out_ch, 3, block.stride, 1, false, ws);
      block.conv2 = std::make_unique<nn::conv2d_layer>(params_, gen, block.name + ".conv2",
                                                       out_ch, out_ch, 3, 1, 1, false, ws);
      if (block.stride != 1 || in_ch != out_ch)
        block.proj = std::make_unique<nn::conv2d_layer>(params_, gen, block.name + ".proj", in_ch,
                                                        out_ch, 1, block.stride, 0, false, ws);
      blocks_.push_back(std::move(block));
      in_ch = out_ch;
    }
  }

  if (ws)
    final_gn_ = std::make_unique<nn::groupnorm_layer>(params_, "final.gn", in_ch,
                                                      config.groupnorm_groups);
  else
    final_bn_ = std::make_unique<nn::batchnorm_layer>(params_, "final.bn", in_ch);
  head_ = std::make_unique<nn::linear_layer>(params_, gen, "head", in_ch, config.classes);
}

ad::node_id resnet_model::apply_norm_relu(ad::graph& g, ad::node_id x,
                                          const nn::batchnorm_layer* bn,
                                          const nn::groupnorm_layer* gn, ad::norm_mode mode,
                                          const std::string& tag) const {
  ad::node_id normed = bn != nullptr ? bn->apply(g, x, mode) : gn->apply(g, x);
  return g.add_transform(ad::make_relu(), {normed}, tag);
}

ad::node_id resnet_model::apply_block(ad::graph& g, ad::node_id x, const residual_block& block,
                                      ad::norm_mode mode) const {
  const ad::node_id a =
      apply_norm_relu(g, x, block.bn1.get(), block.gn1.get(), mode, block.name + ".relu1");
  const ad::node_id shortcut = block.proj != nullptr ? block.proj->apply(g, a) : x;
  ad::node_id h = block.conv1->apply(g, a);
  h = apply_norm_relu(g, h, block.bn2.get(), block.gn2.get(), mode, block.name + ".relu2");
  h = block.conv2->apply(g, h);
  return g.add_transform(ad::make_add(), {h, shortcut}, block.name + ".add");
}

forward_pass resnet_model::forward(const tensor& images, ad::norm_mode mode) const {
  PELTA_CHECK_MSG(images.ndim() == 4 && images.size(1) == config_.channels &&
                      images.size(2) == config_.image_size && images.size(3) == config_.image_size,
                  "resnet forward input " << to_string(images.shape()));
  forward_pass fp;
  fp.input = fp.graph.add_input(images, "x");
  // Dataset normalization, as in the ViT (see vit.cpp).
  const ad::node_id normed =
      fp.graph.add_transform(ad::make_affine(4.0f, -0.5f), {fp.input}, "normalize");
  // CNN-family texture bias: high-pass residual (see models/filters.h).
  const ad::node_id banded = apply_high_pass(fp.graph, normed, config_.channels, "highpass");
  ad::node_id h = stem_conv_->apply(fp.graph, banded);
  if (config_.flavor == resnet_flavor::batchnorm) {
    h = stem_bn_->apply(fp.graph, h, mode);
    h = fp.graph.add_transform(ad::make_relu(), {h}, "stem.relu");
  }
  for (const auto& block : blocks_) h = apply_block(fp.graph, h, block, mode);
  h = apply_norm_relu(fp.graph, h, final_bn_.get(), final_gn_.get(), mode, "final.relu");
  h = fp.graph.add_transform(ad::make_global_avgpool(), {h}, "avgpool");
  fp.logits = head_->apply(fp.graph, h);
  return fp;
}

std::vector<ad::batchnorm_stats*> resnet_model::batchnorm_buffers() const {
  std::vector<ad::batchnorm_stats*> out;
  if (config_.flavor != resnet_flavor::batchnorm) return out;  // GN has no state
  out.push_back(stem_bn_->stats());
  for (const auto& block : blocks_) {
    out.push_back(block.bn1->stats());
    out.push_back(block.bn2->stats());
  }
  out.push_back(final_bn_->stats());
  return out;
}

std::vector<std::string> resnet_model::shield_frontier_tags() const {
  // §V-A: ResNet masks first conv + BN + ReLU; BiT masks the first
  // weight-standardized conv (its padding is part of the conv node).
  if (config_.flavor == resnet_flavor::batchnorm) return {"stem.relu"};
  return {"stem.conv"};
}

}  // namespace pelta::models
