// Vision Transformer (Dosovitskiy et al.) — scaled-down analogue.
//
// Architecture: patch embedding (patchify -> projection E -> class token ->
// position embedding, exactly the pipeline the paper shields, §V-A) ->
// pre-LN encoder blocks -> final LN -> class-token readout -> linear head.
#pragma once

#include <memory>

#include "models/model.h"
#include "nn/blocks.h"

namespace pelta::models {

struct vit_config {
  std::string name = "vit";
  std::int64_t image_size = 16;
  std::int64_t channels = 3;
  std::int64_t patch_size = 4;
  std::int64_t dim = 32;
  std::int64_t heads = 4;
  std::int64_t blocks = 3;
  std::int64_t mlp_hidden = 64;
  std::int64_t classes = 10;
  std::uint64_t seed = 11;
};

class vit_model final : public model {
public:
  explicit vit_model(const vit_config& config);

  const std::string& name() const override { return config_.name; }
  std::int64_t num_classes() const override { return config_.classes; }
  forward_pass forward(const tensor& images, ad::norm_mode mode) const override;
  nn::param_store& params() override { return params_; }
  const nn::param_store& params() const override { return params_; }

  /// PELTA shields everything up to the position-embedding add ("embed.out").
  std::vector<std::string> shield_frontier_tags() const override { return {"embed.out"}; }

  std::int64_t attention_blocks() const override { return config_.blocks; }
  std::int64_t attention_heads() const override { return config_.heads; }
  std::string attention_softmax_tag(std::int64_t block, std::int64_t head) const override;
  std::int64_t patch_size() const override { return config_.patch_size; }

  const vit_config& config() const { return config_; }

private:
  vit_config config_;
  nn::param_store params_;
  std::unique_ptr<nn::patch_embedding> embed_;
  std::vector<nn::encoder_block> blocks_;
  std::unique_ptr<nn::layernorm_layer> final_ln_;
  std::unique_ptr<nn::linear_layer> head_;
};

}  // namespace pelta::models
