#include "models/vit.h"

#include "autodiff/ops_elementwise.h"
#include "autodiff/ops_linalg.h"
#include "models/filters.h"

namespace pelta::models {

vit_model::vit_model(const vit_config& config) : config_{config} {
  rng gen{config.seed};
  embed_ = std::make_unique<nn::patch_embedding>(params_, gen, "embed", config.channels,
                                                 config.image_size, config.patch_size, config.dim);
  blocks_.reserve(static_cast<std::size_t>(config.blocks));
  for (std::int64_t i = 0; i < config.blocks; ++i)
    blocks_.emplace_back(params_, gen, "enc" + std::to_string(i), config.dim, config.heads,
                         config.mlp_hidden);
  final_ln_ = std::make_unique<nn::layernorm_layer>(params_, "final_ln", config.dim);
  head_ = std::make_unique<nn::linear_layer>(params_, gen, "head", config.dim, config.classes);
}

forward_pass vit_model::forward(const tensor& images, ad::norm_mode /*mode*/) const {
  PELTA_CHECK_MSG(images.ndim() == 4 && images.size(1) == config_.channels &&
                      images.size(2) == config_.image_size && images.size(3) == config_.image_size,
                  "vit forward input " << to_string(images.shape()));
  forward_pass fp;
  fp.input = fp.graph.add_input(images, "x");
  // Dataset normalization (pixels [0,1] -> roughly zero-mean unit-range);
  // part of the model, so attacks still operate in pixel space.
  const ad::node_id normed =
      fp.graph.add_transform(ad::make_affine(4.0f, -0.5f), {fp.input}, "normalize");
  // Transformer-family frequency bias: low-pass before patch extraction
  // (see models/filters.h).
  const ad::node_id banded = apply_box_blur(fp.graph, normed, config_.channels, "lowpass");
  ad::node_id h = embed_->apply(fp.graph, banded);
  for (const auto& block : blocks_) h = block.apply(fp.graph, h);
  h = final_ln_->apply(fp.graph, h);
  const ad::node_id cls = fp.graph.add_transform(ad::make_slice_row(0), {h}, "cls_readout");
  fp.logits = head_->apply(fp.graph, cls);
  return fp;
}

std::string vit_model::attention_softmax_tag(std::int64_t block, std::int64_t head) const {
  PELTA_CHECK(block >= 0 && block < config_.blocks && head >= 0 && head < config_.heads);
  return "enc" + std::to_string(block) + ".attn.softmax.h" + std::to_string(head);
}

}  // namespace pelta::models
