// Abstract classifier interface shared by ViT, ResNet and BiT families.
//
// A model is a parameter store plus a graph builder: forward() constructs a
// fresh computational graph per batch (define-by-run), which is what both
// the trainer and the attacks differentiate, and what the PELTA shield
// masks. Each model declares its shield frontier — the deepest node tags
// Algorithm 1's Select step returns for it (§V-A of the paper).
#pragma once

#include <string>
#include <vector>

#include "autodiff/graph.h"
#include "autodiff/ops_norm.h"
#include "nn/param_store.h"

namespace pelta::models {

/// A freshly built forward pass: the graph plus the ids of its endpoints.
struct forward_pass {
  ad::graph graph;
  ad::node_id input = ad::invalid_node;
  ad::node_id logits = ad::invalid_node;
};

class model {
public:
  virtual ~model() = default;

  virtual const std::string& name() const = 0;
  virtual std::int64_t num_classes() const = 0;

  /// Build a fresh graph over images [B,C,H,W]. `mode` selects batch-norm
  /// behaviour (train = batch statistics, eval = running statistics).
  virtual forward_pass forward(const tensor& images, ad::norm_mode mode) const = 0;

  virtual nn::param_store& params() = 0;
  virtual const nn::param_store& params() const = 0;

  /// Tags of the deepest nodes PELTA shields for this architecture
  /// (Algorithm 1 Select): e.g. {"embed.out"} for ViT — everything up to
  /// and including the position-embedding add lives in the enclave.
  virtual std::vector<std::string> shield_frontier_tags() const = 0;

  // ---- attention introspection (SAGA Eq. 4); zero / empty for CNNs --------
  virtual std::int64_t attention_blocks() const { return 0; }
  virtual std::int64_t attention_heads() const { return 0; }
  virtual std::string attention_softmax_tag(std::int64_t /*block*/, std::int64_t /*head*/) const {
    return {};
  }
  /// ViT patch size (pixels per token side); 0 for CNNs.
  virtual std::int64_t patch_size() const { return 0; }

  /// Batch-norm running-statistics buffers (empty for BN-free models).
  /// These are state, not parameters: FL deployments must ship them with
  /// the model or the aggregated global model evaluates with untrained
  /// statistics — the classic BN-in-FL pitfall (and one reason BiT's
  /// GroupNorm is attractive for federated settings).
  virtual std::vector<ad::batchnorm_stats*> batchnorm_buffers() const { return {}; }

  std::int64_t parameter_count() const { return params().scalar_count(); }
};

/// Predictions [B] for a batch of images (eval mode).
tensor predict(const model& m, const tensor& images);

/// Logits [B, classes] for a batch of images (eval mode). Chunked across
/// the thread pool exactly like predict(); every row is bit-identical to a
/// batch-1 forward of that sample (the forward passes are per-sample
/// independent in eval mode), which is the contract the batched serving
/// runtime's scatter step relies on.
tensor predict_logits(const model& m, const tensor& images);

/// Predicted class for a single [C,H,W] image.
std::int64_t predict_one(const model& m, const tensor& image);

/// Fraction of images whose prediction matches the label.
float accuracy(const model& m, const tensor& images, const tensor& labels,
               std::int64_t batch_size = 64);

}  // namespace pelta::models
