// Full model state on the FL wire: trainable parameters followed by
// batch-norm running statistics. Aggregating only the parameters would
// leave the global model with untrained BN statistics — the classic
// BN-in-FL pitfall — so broadcast, upload and FedAvg all carry both.
#pragma once

#include "models/model.h"
#include "tensor/serialize.h"

namespace pelta::fl {

/// Serialize parameters + BN buffers of `m`.
byte_buffer snapshot_state(const models::model& m);

/// Install a snapshot produced by snapshot_state on an identically
/// structured model.
void install_state(models::model& m, const byte_buffer& buf);

}  // namespace pelta::fl
