#include "fl/federation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "tensor/parallel.h"

namespace pelta::fl {

federation::federation(const federation_config& config, const model_factory& factory,
                       const data::dataset& ds)
    : config_{config}, dataset_{&ds}, server_{factory()} {
  PELTA_CHECK_MSG(config.clients >= 1, "federation needs at least one client");
  PELTA_CHECK_MSG(config.compromised >= 0 && config.compromised <= config.clients,
                  "compromised count out of range");

  sharding_config sharding = config.sharding;
  sharding.seed = config.seed;
  std::vector<std::vector<std::int64_t>> shards = make_shards(ds, config.clients, sharding);
  for (std::int64_t c = 0; c < config.clients; ++c) {
    const bool malicious = c >= config.clients - config.compromised;
    if (malicious)
      clients_.push_back(std::make_unique<compromised_client>(
          c, factory(), std::move(shards[static_cast<std::size_t>(c)]), ds));
    else
      clients_.push_back(std::make_unique<fl_client>(
          c, factory(), std::move(shards[static_cast<std::size_t>(c)]), ds));
  }
}

std::vector<std::int64_t> federation::round_participant_ids(std::int64_t round) const {
  PELTA_CHECK_MSG(config_.participation > 0.0f && config_.participation <= 1.0f,
                  "participation " << config_.participation << " outside (0, 1]");
  std::vector<std::int64_t> ids(clients_.size());
  std::iota(ids.begin(), ids.end(), 0);
  // Floor semantics (documented on federation_config): 0.5 over 5 clients
  // samples 2, never 3 — llround's round-half-away would overshoot the
  // requested fraction at .5 boundaries. The *relative* epsilon absorbs
  // float representation error (~1.2e-7 relative: 0.7f stores below 0.7,
  // yet 0.7 of 10 clients must still reach 7).
  const double requested = static_cast<double>(config_.participation) *
                           static_cast<double>(ids.size()) *
                           (1.0 + 8.0 * static_cast<double>(
                                            std::numeric_limits<float>::epsilon()));
  const auto wanted =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(std::floor(requested)));
  if (wanted >= static_cast<std::int64_t>(ids.size())) return ids;
  // Round seed through rng::fork's splitmix64 finalizer: the previous
  // seed ^ (0xab5e17 + round * 131) XOR-mix collided across (seed, round)
  // pairs and could hand the engine a near-degenerate state.
  rng round_gen = rng{config_.seed}.fork(static_cast<std::uint64_t>(round));
  std::shuffle(ids.begin(), ids.end(), round_gen.engine());
  ids.resize(static_cast<std::size_t>(wanted));
  return ids;
}

std::vector<fl_client*> federation::sample_round_participants() {
  std::vector<fl_client*> out;
  for (const std::int64_t id : round_participant_ids(server_.round()))
    out.push_back(clients_[static_cast<std::size_t>(id)].get());
  return out;
}

void federation::run_round() {
  const byte_buffer global = server_.broadcast();
  const std::vector<fl_client*> participants = sample_round_participants();
  local_train_config local = config_.local;
  local.seed = config_.seed + static_cast<std::uint64_t>(server_.round());

  // Train the round's participants concurrently. Each client owns its model
  // and derives its rng stream from (id, round), so every update is
  // bit-identical to the serial schedule; the pre-sized slot array keeps
  // them in participant order for aggregation.
  std::vector<model_update> updates(participants.size());
  parallel_for(static_cast<std::int64_t>(participants.size()), 1, [&](std::int64_t i) {
    fl_client* client = participants[static_cast<std::size_t>(i)];
    client->receive_global(global);
    updates[static_cast<std::size_t>(i)] = client->local_update(local);
  });

  // Replay network accounting in participant order after the join so the
  // metered stats are deterministic for every thread count.
  for (const model_update& u : updates) {
    network_.record(static_cast<std::int64_t>(global.size()));            // broadcast leg
    network_.record(static_cast<std::int64_t>(u.parameters.size()));      // upload leg
  }
  server_.aggregate(updates, config_.aggregation);
}

void federation::run_rounds(std::int64_t rounds) {
  for (std::int64_t r = 0; r < rounds; ++r) run_round();
}

async_report federation::run_async(std::int64_t aggregations, const async_observer& on_flush) {
  return run_async(config_.async, aggregations, on_flush);
}

async_report federation::run_async(const async_config& config, std::int64_t aggregations,
                                   const async_observer& on_flush) {
  const std::vector<client_profile> profiles =
      make_client_profiles(client_count(), config.heterogeneity);
  std::vector<std::int64_t> shard_sizes;
  shard_sizes.reserve(clients_.size());
  for (const auto& client : clients_) shard_sizes.push_back(client->shard_size());
  const std::int64_t payload = static_cast<std::int64_t>(server_.broadcast().size());

  // The whole schedule — which episode trains from which global version,
  // which flush consumes it — is fixed up front on the simulated clock, so
  // nothing below depends on thread count or wall-clock.
  const async_schedule plan = plan_async_schedule(
      config, profiles, shard_sizes, config_.local.epochs, payload, network_, aggregations,
      rng{config_.seed}.fork(0xa57ull).seed());

  // Group the applied episodes by start version, per client in episode
  // order: episodes of the same client share its local model and rng round
  // counter, so they stay sequential; distinct clients run concurrently.
  std::vector<std::vector<std::pair<std::int64_t, std::vector<std::size_t>>>> by_version(
      static_cast<std::size_t>(aggregations));
  {
    std::vector<std::vector<std::vector<std::size_t>>> per_client(
        static_cast<std::size_t>(aggregations),
        std::vector<std::vector<std::size_t>>(clients_.size()));
    for (std::size_t j = 0; j < plan.jobs.size(); ++j) {
      const async_job& job = plan.jobs[j];
      if (job.aggregation < 0) continue;  // dropped / stale / never flushed
      per_client[static_cast<std::size_t>(job.start_version)]
                [static_cast<std::size_t>(job.client)]
                    .push_back(j);
    }
    for (std::size_t v = 0; v < per_client.size(); ++v)
      for (std::size_t c = 0; c < per_client[v].size(); ++c)
        if (!per_client[v][c].empty())
          by_version[v].push_back({static_cast<std::int64_t>(c), std::move(per_client[v][c])});
  }

  async_report report;
  report.aggregations = plan.aggregations;
  report.updates_dropped = plan.dropped;
  report.updates_stale = plan.stale;
  report.simulated_ns = plan.end_ns;

  local_train_config local = config_.local;
  // Per-(client, episode) rng streams separate through the client's own
  // round counter inside local_update; the base seed stays fixed.
  local.seed = config_.seed;

  // Replay the metered traffic in simulated-event order, drained up to each
  // flush so traffic() read from the on_flush observer is consistent with
  // the simulated clock — same determinism guarantee as the sync path (the
  // legs never cross worker threads).
  std::size_t leg_cursor = 0;
  const auto replay_legs_until = [&](double t) {
    while (leg_cursor < plan.legs.size() && plan.legs[leg_cursor].ns <= t) {
      network_.record(payload,
                      profiles[static_cast<std::size_t>(plan.legs[leg_cursor].client)]);
      ++leg_cursor;
    }
  };

  std::vector<model_update> updates(plan.jobs.size());
  double staleness_sum = 0.0;
  for (std::int64_t k = 0; k < plan.aggregations; ++k) {
    // 1. Train every applied episode that starts from the current global
    //    version, concurrently across clients.
    const byte_buffer state = server_.broadcast();
    const auto& groups = by_version[static_cast<std::size_t>(k)];
    parallel_for(static_cast<std::int64_t>(groups.size()), 1, [&](std::int64_t g) {
      const auto& [client_id, job_indices] = groups[static_cast<std::size_t>(g)];
      fl_client* client = clients_[static_cast<std::size_t>(client_id)].get();
      for (const std::size_t j : job_indices) {
        client->receive_global(state);
        updates[j] = client->local_update(local);
      }
    });
    for (const auto& group : groups)
      report.trainings += static_cast<std::int64_t>(group.second.size());

    // 2. Flush the planned buffer: stamp staleness, aggregate with the
    //    configured down-weighting.
    std::vector<model_update> batch;
    batch.reserve(plan.flush_inputs[static_cast<std::size_t>(k)].size());
    for (const std::size_t j : plan.flush_inputs[static_cast<std::size_t>(k)]) {
      model_update u = std::move(updates[j]);
      u.staleness = plan.jobs[j].staleness;
      staleness_sum += static_cast<double>(u.staleness);
      report.max_staleness_seen = std::max(report.max_staleness_seen, u.staleness);
      ++report.updates_applied;
      batch.push_back(std::move(u));
    }
    aggregation_config rule = config_.aggregation;
    rule.staleness = config.weighting;
    server_.aggregate(batch, rule);
    replay_legs_until(plan.flush_ns[static_cast<std::size_t>(k)]);
    if (on_flush) on_flush(k, plan.flush_ns[static_cast<std::size_t>(k)]);
  }
  if (report.updates_applied > 0)
    report.mean_staleness = staleness_sum / static_cast<double>(report.updates_applied);

  // Every planned leg is timestamped at or before the final flush, but
  // drain defensively so the totals never depend on that invariant.
  replay_legs_until(plan.end_ns);
  while (leg_cursor < plan.legs.size()) {
    network_.record(payload,
                    profiles[static_cast<std::size_t>(plan.legs[leg_cursor].client)]);
    ++leg_cursor;
  }

  return report;
}

std::vector<compromised_client*> federation::compromised_clients() {
  std::vector<compromised_client*> out;
  for (auto& client : clients_)
    if (auto* cc = dynamic_cast<compromised_client*>(client.get())) out.push_back(cc);
  return out;
}

float federation::global_test_accuracy() const {
  return models::accuracy(server_.global_model(), dataset_->test_images(),
                          dataset_->test_labels());
}

}  // namespace pelta::fl
