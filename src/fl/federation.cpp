#include "fl/federation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/parallel.h"

namespace pelta::fl {

federation::federation(const federation_config& config, const model_factory& factory,
                       const data::dataset& ds)
    : config_{config}, dataset_{&ds}, server_{factory()} {
  PELTA_CHECK_MSG(config.clients >= 1, "federation needs at least one client");
  PELTA_CHECK_MSG(config.compromised >= 0 && config.compromised <= config.clients,
                  "compromised count out of range");

  sharding_config sharding = config.sharding;
  sharding.seed = config.seed;
  std::vector<std::vector<std::int64_t>> shards = make_shards(ds, config.clients, sharding);
  for (std::int64_t c = 0; c < config.clients; ++c) {
    const bool malicious = c >= config.clients - config.compromised;
    if (malicious)
      clients_.push_back(std::make_unique<compromised_client>(
          c, factory(), std::move(shards[static_cast<std::size_t>(c)]), ds));
    else
      clients_.push_back(std::make_unique<fl_client>(
          c, factory(), std::move(shards[static_cast<std::size_t>(c)]), ds));
  }
}

std::vector<fl_client*> federation::sample_round_participants() {
  PELTA_CHECK_MSG(config_.participation > 0.0f && config_.participation <= 1.0f,
                  "participation " << config_.participation << " outside (0, 1]");
  std::vector<fl_client*> all;
  for (auto& client : clients_) all.push_back(client.get());
  const auto wanted = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(config_.participation *
                                                static_cast<float>(all.size()))));
  if (wanted >= static_cast<std::int64_t>(all.size())) return all;
  rng round_gen{config_.seed ^ (0xab5e17u + static_cast<std::uint64_t>(server_.round()) * 131)};
  std::shuffle(all.begin(), all.end(), round_gen.engine());
  all.resize(static_cast<std::size_t>(wanted));
  return all;
}

void federation::run_round() {
  const byte_buffer global = server_.broadcast();
  const std::vector<fl_client*> participants = sample_round_participants();
  local_train_config local = config_.local;
  local.seed = config_.seed + static_cast<std::uint64_t>(server_.round());

  // Train the round's participants concurrently. Each client owns its model
  // and derives its rng stream from (id, round), so every update is
  // bit-identical to the serial schedule; the pre-sized slot array keeps
  // them in participant order for aggregation.
  std::vector<model_update> updates(participants.size());
  parallel_for(static_cast<std::int64_t>(participants.size()), 1, [&](std::int64_t i) {
    fl_client* client = participants[static_cast<std::size_t>(i)];
    client->receive_global(global);
    updates[static_cast<std::size_t>(i)] = client->local_update(local);
  });

  // Replay network accounting in participant order after the join so the
  // metered stats are deterministic for every thread count.
  for (const model_update& u : updates) {
    network_.record(static_cast<std::int64_t>(global.size()));            // broadcast leg
    network_.record(static_cast<std::int64_t>(u.parameters.size()));      // upload leg
  }
  server_.aggregate(updates, config_.aggregation);
}

void federation::run_rounds(std::int64_t rounds) {
  for (std::int64_t r = 0; r < rounds; ++r) run_round();
}

std::vector<compromised_client*> federation::compromised_clients() {
  std::vector<compromised_client*> out;
  for (auto& client : clients_)
    if (auto* cc = dynamic_cast<compromised_client*>(client.get())) out.push_back(cc);
  return out;
}

float federation::global_test_accuracy() const {
  return models::accuracy(server_.global_model(), dataset_->test_images(),
                          dataset_->test_labels());
}

}  // namespace pelta::fl
