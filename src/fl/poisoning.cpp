#include "fl/poisoning.h"

#include <algorithm>

#include "fl/state.h"
#include "models/trainer.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace pelta::fl {

tensor apply_trigger(const tensor& image, const trigger_pattern& trigger) {
  PELTA_CHECK_MSG(image.ndim() == 3, "trigger expects [C,H,W]");
  PELTA_CHECK_MSG(trigger.size >= 1 && trigger.size <= image.size(1) &&
                      trigger.size <= image.size(2),
                  "trigger size " << trigger.size << " too large for " << to_string(image.shape()));
  tensor out = image;
  for (std::int64_t c = 0; c < out.size(0); ++c)
    for (std::int64_t y = out.size(1) - trigger.size; y < out.size(1); ++y)
      for (std::int64_t x = out.size(2) - trigger.size; x < out.size(2); ++x)
        out.at(c, y, x) = trigger.value;
  return out;
}

namespace {

/// Stamp the first `count` images of the batch in-place and relabel them.
void poison_batch(data::batch& b, std::int64_t count, const trigger_pattern& trigger,
                  std::int64_t target_class) {
  const std::int64_t n = b.labels.numel();
  const std::int64_t chw = b.images.numel() / n;
  for (std::int64_t i = 0; i < std::min(count, n); ++i) {
    tensor img{shape_t{b.images.size(1), b.images.size(2), b.images.size(3)}};
    const auto src = b.images.data();
    std::copy(src.begin() + i * chw, src.begin() + (i + 1) * chw, img.data().begin());
    const tensor stamped = apply_trigger(img, trigger);
    std::copy(stamped.data().begin(), stamped.data().end(),
              b.images.data().begin() + i * chw);
    b.labels[i] = static_cast<float>(target_class);
  }
}

}  // namespace

backdoor_client::backdoor_client(std::int64_t id, std::unique_ptr<models::model> local_model,
                                 std::vector<std::int64_t> shard, const data::dataset& ds,
                                 const backdoor_config& config)
    : fl_client{id, std::move(local_model), std::move(shard), ds}, config_{config} {
  PELTA_CHECK_MSG(config.target_class >= 0 && config.target_class < this->local_model().num_classes(),
                  "backdoor target class out of range");
  PELTA_CHECK_MSG(config.poison_fraction >= 0.0f && config.poison_fraction <= 1.0f,
                  "poison_fraction outside [0,1]");
  PELTA_CHECK_MSG(config.boost >= 1.0f, "boost must be >= 1");
  PELTA_CHECK_MSG(config.extra_epochs_factor >= 1, "extra_epochs_factor must be >= 1");
}

void backdoor_client::receive_global(const byte_buffer& global_parameters) {
  last_global_ = global_parameters;
  fl_client::receive_global(global_parameters);
}

model_update backdoor_client::local_update(const local_train_config& config) {
  nn::adam opt{config.lr};
  rng order_gen{config.seed + static_cast<std::uint64_t>(id()) * 7919 +
                static_cast<std::uint64_t>(local_round()) * 104729};
  advance_round();

  const std::int64_t epochs = config.epochs * config_.extra_epochs_factor;
  for (std::int64_t epoch = 0; epoch < epochs; ++epoch) {
    std::vector<std::int64_t> order = shard();
    std::shuffle(order.begin(), order.end(), order_gen.engine());
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(config.batch_size));
      const std::vector<std::int64_t> indices(order.begin() + static_cast<std::ptrdiff_t>(start),
                                              order.begin() + static_cast<std::ptrdiff_t>(end));
      data::batch b = dataset().gather_train(indices);
      const auto poisoned = static_cast<std::int64_t>(
          config_.poison_fraction * static_cast<float>(indices.size()));
      poison_batch(b, poisoned, config_.trigger, config_.target_class);
      local_model().params().zero_grads();
      models::loss_and_grad(local_model(), b);
      opt.step(local_model().params());
    }
  }

  // Model replacement (Bagdasaryan et al.): scale the delta so FedAvg's
  // dilution by honest clients is cancelled.
  if (config_.boost > 1.0f) {
    PELTA_CHECK_MSG(!last_global_.empty(), "boost requires a received global model");
    const byte_buffer local = snapshot_state(local_model());
    byte_buffer boosted;
    std::size_t lo = 0, go = 0;
    while (lo < local.size()) {
      tensor l = deserialize_tensor(local, lo);
      const tensor g = deserialize_tensor(last_global_, go);
      PELTA_CHECK_MSG(l.same_shape(g), "global/local structure mismatch in boost");
      for (std::int64_t i = 0; i < l.numel(); ++i)
        l[i] = g[i] + config_.boost * (l[i] - g[i]);
      serialize_tensor(l, boosted);
    }
    install_state(local_model(), boosted);
  }

  model_update update;
  update.client_id = id();
  update.sample_count = shard_size();
  update.parameters = snapshot_state(local_model());
  return update;
}

float backdoor_success_rate(const models::model& m, const data::dataset& ds,
                            const backdoor_config& config, std::int64_t max_samples) {
  std::int64_t hits = 0, total = 0;
  for (std::int64_t i = 0; i < ds.test_size() && total < max_samples; ++i) {
    if (ds.test_label(i) == config.target_class) continue;  // stamping these proves nothing
    ++total;
    const tensor triggered = apply_trigger(ds.test_image(i), config.trigger);
    if (models::predict_one(m, triggered) == config.target_class) ++hits;
  }
  PELTA_CHECK_MSG(total > 0, "no non-target test samples available");
  return static_cast<float>(hits) / static_cast<float>(total);
}

evasion_poison_client::evasion_poison_client(std::int64_t id,
                                             std::unique_ptr<models::model> local_model,
                                             std::vector<std::int64_t> shard,
                                             const data::dataset& ds,
                                             const evasion_poison_config& config)
    : fl_client{id, std::move(local_model), std::move(shard), ds}, config_{config} {
  PELTA_CHECK_MSG(config.crafts_per_round >= 1, "crafts_per_round must be >= 1");
}

model_update evasion_poison_client::local_update(const local_train_config& config) {
  // 1. Probe the local copy for fresh adversarial examples (the step PELTA
  //    intercepts): white-box PGD via the clear oracle, or the upsampling
  //    substitute when the device is shielded.
  const attacks::oracle_factory factory =
      config_.shielded ? attacks::shielded_oracle_factory(local_model())
                       : attacks::clear_oracle_factory(local_model());
  rng gen{config_.seed + static_cast<std::uint64_t>(local_round()) * 31337};
  for (std::int64_t k = 0; k < config_.crafts_per_round; ++k) {
    const std::int64_t idx = shard()[static_cast<std::size_t>(
        gen.uniform_int(0, shard_size() - 1))];
    const data::batch one = dataset().gather_train({idx});
    tensor image{shape_t{one.images.size(1), one.images.size(2), one.images.size(3)}};
    std::copy(one.images.data().begin(), one.images.data().end(), image.data().begin());
    const auto label = static_cast<std::int64_t>(one.labels[0]);

    auto oracle = factory(gen.next_u64());
    attacks::pgd_config pc;
    pc.eps = config_.params.eps;
    pc.eps_step = config_.params.eps_step;
    pc.steps = config_.params.pgd_steps;
    const attacks::attack_result r = attacks::run_pgd(*oracle, image, label, pc);
    ++craft_attempts_;
    // Only a "newfound" misclassification is worth reinforcing: the
    // attacker adopts the wrong class its own copy predicts. When PELTA
    // leaves the probe with the upsampled adjoint, most attempts end here.
    const std::int64_t predicted = models::predict_one(local_model(), r.adversarial);
    if (predicted != label) replay_.push_back({r.adversarial, label, predicted});
  }

  // 2. Honest-looking local training, with the replay set mixed in under
  //    the attacker's labels (Bhagoji et al.'s repeated-misclassification).
  nn::adam opt{config.lr};
  rng order_gen{config.seed + static_cast<std::uint64_t>(id()) * 7919 +
                static_cast<std::uint64_t>(local_round()) * 104729};
  advance_round();
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    std::vector<std::int64_t> order = shard();
    std::shuffle(order.begin(), order.end(), order_gen.engine());
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(config.batch_size));
      const std::vector<std::int64_t> indices(order.begin() + static_cast<std::ptrdiff_t>(start),
                                              order.begin() + static_cast<std::ptrdiff_t>(end));
      data::batch b = dataset().gather_train(indices);

      // splice up to batch_size/2 replay samples into the batch (most
      // recent first — those were crafted against the freshest weights)
      const std::int64_t n = b.labels.numel();
      const std::int64_t chw = b.images.numel() / n;
      const auto splice = std::min<std::int64_t>(
          {n / 2, static_cast<std::int64_t>(replay_.size())});
      for (std::int64_t i = 0; i < splice; ++i) {
        const replay_sample& s = replay_[replay_.size() - 1 - static_cast<std::size_t>(i)];
        std::copy(s.x_adv.data().begin(), s.x_adv.data().end(),
                  b.images.data().begin() + i * chw);
        b.labels[i] = static_cast<float>(s.adopted_label);
      }

      local_model().params().zero_grads();
      models::loss_and_grad(local_model(), b);
      opt.step(local_model().params());
    }
  }

  model_update update;
  update.client_id = id();
  update.sample_count = shard_size();
  update.parameters = snapshot_state(local_model());
  return update;
}

float replay_attack_rate(const models::model& m,
                         const std::vector<evasion_poison_client::replay_sample>& replay,
                         std::int64_t craft_attempts) {
  PELTA_CHECK_MSG(craft_attempts > 0, "no craft attempts recorded");
  std::int64_t hits = 0;
  for (const auto& s : replay)
    if (models::predict_one(m, s.x_adv) != s.true_label) ++hits;
  return static_cast<float>(hits) / static_cast<float>(craft_attempts);
}

}  // namespace pelta::fl
