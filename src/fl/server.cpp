#include "fl/server.h"

#include "fl/state.h"

namespace pelta::fl {

fl_server::fl_server(std::unique_ptr<models::model> global_model)
    : model_{std::move(global_model)} {
  PELTA_CHECK_MSG(model_ != nullptr, "server needs a global model");
}

byte_buffer fl_server::broadcast() const { return snapshot_state(*model_); }

void fl_server::aggregate(const std::vector<model_update>& updates) {
  aggregate(updates, aggregation_config{});  // default rule: FedAvg
}

void fl_server::aggregate(const std::vector<model_update>& updates,
                          const aggregation_config& config) {
  install_state(*model_, aggregate_states(snapshot_state(*model_), updates, config));
  ++round_;
}

}  // namespace pelta::fl
