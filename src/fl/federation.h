// Round orchestration for a star-topology federation (Fig. 1): the trusted
// server broadcasts, clients (one of which may be compromised) train
// locally, updates flow back for FedAvg. All traffic is metered through the
// network simulator.
#pragma once

#include <functional>

#include "fl/server.h"
#include "fl/sharding.h"

namespace pelta::fl {

using model_factory = std::function<std::unique_ptr<models::model>()>;

struct federation_config {
  std::int64_t clients = 4;
  std::int64_t compromised = 1;  ///< the last `compromised` clients are malicious
  local_train_config local;
  sharding_config sharding;      ///< iid / by-class / dirichlet (fl/sharding.h)
  aggregation_config aggregation;///< FedAvg / robust rules (fl/aggregation.h)
  /// Fraction of clients sampled per round (at least one). Real edge
  /// deployments "harness the idle state of edge devices to handle
  /// intermittent compute node availability" (§VI, [67]) — a round only
  /// ever reaches the currently available subset.
  float participation = 1.0f;
  std::uint64_t seed = 23;
};

class federation {
public:
  /// Shards the dataset's train split across clients per config.sharding.
  federation(const federation_config& config, const model_factory& factory,
             const data::dataset& ds);

  /// One FL round: broadcast -> local training -> aggregate.
  void run_round();
  void run_rounds(std::int64_t rounds);

  fl_server& server() { return server_; }
  std::int64_t client_count() const { return static_cast<std::int64_t>(clients_.size()); }
  fl_client& client(std::int64_t i) { return *clients_[static_cast<std::size_t>(i)]; }

  /// The compromised clients (empty when config.compromised == 0).
  std::vector<compromised_client*> compromised_clients();

  network_stats traffic() const { return network_.stats(); }

  /// Global-model accuracy on the dataset's test split.
  float global_test_accuracy() const;

private:
  /// The clients available this round (all of them at participation = 1).
  std::vector<fl_client*> sample_round_participants();

  federation_config config_;
  const data::dataset* dataset_;
  fl_server server_;
  std::vector<std::unique_ptr<fl_client>> clients_;
  network network_;
};

}  // namespace pelta::fl
