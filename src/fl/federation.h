// Round orchestration for a star-topology federation (Fig. 1): the trusted
// server broadcasts, clients (one of which may be compromised) train
// locally, updates flow back for FedAvg. All traffic is metered through the
// network simulator. Two runtimes share the substrate:
//
//   run_round / run_rounds — the synchronous barrier: every sampled client
//       trains to completion, then one aggregation.
//   run_async — FedBuff-style buffered asynchronous rounds on a simulated
//       clock (fl/async.h): clients train continuously, the server
//       aggregates whenever config.async.buffer_size updates are buffered,
//       stale updates are down-weighted / discarded.
#pragma once

#include <functional>

#include "fl/async.h"
#include "fl/server.h"
#include "fl/sharding.h"

namespace pelta::fl {

using model_factory = std::function<std::unique_ptr<models::model>()>;

/// Called after each async buffer flush with (aggregation index, simulated
/// time of the flush); the bench samples time-to-accuracy through this.
using async_observer = std::function<void(std::int64_t, double)>;

struct federation_config {
  std::int64_t clients = 4;
  std::int64_t compromised = 1;  ///< the last `compromised` clients are malicious
  local_train_config local;
  sharding_config sharding;      ///< iid / by-class / dirichlet (fl/sharding.h)
  aggregation_config aggregation;///< FedAvg / robust rules (fl/aggregation.h)
  async_config async;            ///< buffered-async runtime knobs (fl/async.h)
  /// Fraction of clients sampled per round, with floor semantics: a round
  /// reaches max(1, floor(participation * clients)) clients, so 0.5 over 5
  /// clients samples 2 — never rounds up past the requested fraction. Real
  /// edge deployments "harness the idle state of edge devices to handle
  /// intermittent compute node availability" (§VI, [67]) — a round only
  /// ever reaches the currently available subset.
  float participation = 1.0f;
  std::uint64_t seed = 23;
};

class federation {
public:
  /// Shards the dataset's train split across clients per config.sharding.
  federation(const federation_config& config, const model_factory& factory,
             const data::dataset& ds);

  /// One FL round: broadcast -> local training -> aggregate.
  void run_round();
  void run_rounds(std::int64_t rounds);

  /// Buffered asynchronous federation for `aggregations` buffer flushes,
  /// per config.async (or an explicit override). The schedule is planned on
  /// a simulated clock (fl/async.h) and the training episodes execute on
  /// the thread pool — bit-identical for every PELTA_THREADS value.
  async_report run_async(std::int64_t aggregations, const async_observer& on_flush = {});
  async_report run_async(const async_config& config, std::int64_t aggregations,
                         const async_observer& on_flush = {});

  fl_server& server() { return server_; }
  std::int64_t client_count() const { return static_cast<std::int64_t>(clients_.size()); }
  fl_client& client(std::int64_t i) { return *clients_[static_cast<std::size_t>(i)]; }

  /// The compromised clients (empty when config.compromised == 0).
  std::vector<compromised_client*> compromised_clients();

  network_stats traffic() const { return network_.stats(); }

  /// The cost model every transfer (sync and async) is metered with — the
  /// bench prices its sync-side clock against the same instance.
  const network& net() const { return network_; }

  /// Deterministic preview of the client ids a sync round would sample for
  /// `round` (in training order). Depends only on (seed, round,
  /// participation, clients); run_round consumes the same list.
  std::vector<std::int64_t> round_participant_ids(std::int64_t round) const;

  /// Global-model accuracy on the dataset's test split.
  float global_test_accuracy() const;

private:
  /// The clients available this round (all of them at participation = 1).
  std::vector<fl_client*> sample_round_participants();

  federation_config config_;
  const data::dataset* dataset_;
  fl_server server_;
  std::vector<std::unique_ptr<fl_client>> clients_;
  network network_;
};

}  // namespace pelta::fl
