#include "fl/network.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/check.h"
#include "tensor/rng.h"

namespace pelta::fl {

namespace {

/// Log-uniform draw in [1/spread, spread]; spread <= 1 pins it to 1 (and
/// consumes no randomness, so turning one axis off doesn't shift the
/// streams of the others — each axis draws from its own forked stream).
double log_uniform_scale(rng& gen, double spread) {
  if (spread <= 1.0) return 1.0;
  const double lo = -std::log(spread);
  const double hi = std::log(spread);
  return std::exp(static_cast<double>(gen.uniform(static_cast<float>(lo),
                                                  static_cast<float>(hi))));
}

}  // namespace

std::vector<client_profile> make_client_profiles(std::int64_t clients,
                                                 const heterogeneity_config& config) {
  PELTA_CHECK_MSG(clients >= 1, "need at least one client profile");
  PELTA_CHECK_MSG(config.stragglers >= 0 && config.stragglers <= clients,
                  "straggler count " << config.stragglers << " outside [0, " << clients << "]");
  PELTA_CHECK_MSG(config.straggler_slowdown >= 1.0, "straggler_slowdown must be >= 1");
  PELTA_CHECK_MSG(config.dropout_rate >= 0.0 && config.dropout_rate < 1.0,
                  "dropout_rate " << config.dropout_rate << " outside [0, 1)");

  const rng base{config.seed};
  std::vector<client_profile> profiles(static_cast<std::size_t>(clients));
  for (std::size_t c = 0; c < profiles.size(); ++c) {
    // One forked stream per (client, axis): adding clients or reordering
    // axes never reshuffles another client's draws.
    rng bw = base.fork(3 * c + 0);
    rng lat = base.fork(3 * c + 1);
    rng comp = base.fork(3 * c + 2);
    profiles[c].bandwidth_scale = log_uniform_scale(bw, config.bandwidth_spread);
    profiles[c].latency_scale = log_uniform_scale(lat, config.latency_spread);
    profiles[c].compute_scale = log_uniform_scale(comp, config.compute_spread);
    profiles[c].dropout_rate = config.dropout_rate;
  }

  if (config.stragglers > 0) {
    std::vector<std::size_t> order(profiles.size());
    std::iota(order.begin(), order.end(), 0);
    rng pick = base.fork(0x57a661e5ull);
    std::shuffle(order.begin(), order.end(), pick.engine());
    for (std::int64_t s = 0; s < config.stragglers; ++s)
      profiles[order[static_cast<std::size_t>(s)]].compute_scale *= config.straggler_slowdown;
  }
  return profiles;
}

}  // namespace pelta::fl
