// Aggregation rules for the FL server.
//
// The paper's motivation (§I) is that compromised clients weaponize
// adversarial examples into poisoning and backdoor attacks ([15] model
// replacement, [16] the adversarial lens on FL). A production FL substrate
// therefore ships Byzantine-robust aggregation alongside plain FedAvg;
// these rules are the standard trio evaluated by that literature, and the
// poisoning bench measures how each interacts with PELTA's client-side
// mitigation.
//
//   fedavg            — sample-count weighted mean (baseline; no defense)
//   coordinate_median — per-coordinate median across clients
//   trimmed_mean      — per-coordinate mean after dropping the k highest
//                       and k lowest values
//   norm_clipped_mean — each client's delta from the current global model
//                       is l2-clipped before the weighted mean (caps the
//                       boost of model-replacement attacks)
#pragma once

#include "fl/client.h"

namespace pelta::fl {

enum class aggregation_rule : std::uint8_t {
  fedavg,
  coordinate_median,
  trimmed_mean,
  norm_clipped_mean,
};

const char* aggregation_rule_name(aggregation_rule rule);

struct aggregation_config {
  aggregation_rule rule = aggregation_rule::fedavg;
  /// trimmed_mean: fraction trimmed from EACH side; floor(n * fraction)
  /// values are dropped per end (at least one when n >= 3).
  float trim_fraction = 0.2f;
  /// norm_clipped_mean: per-update delta l2 cap; <= 0 selects the median of
  /// the client delta norms (self-tuning, no magic constant).
  float clip_norm = 0.0f;
};

/// Aggregate `updates` (snapshot_state payloads) into a fresh state buffer.
/// `reference` is the current global state — it defines the tensor
/// structure and anchors delta-based rules. All updates must match it.
byte_buffer aggregate_states(const byte_buffer& reference,
                             const std::vector<model_update>& updates,
                             const aggregation_config& config);

}  // namespace pelta::fl
