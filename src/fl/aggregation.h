// Aggregation rules for the FL server.
//
// The paper's motivation (§I) is that compromised clients weaponize
// adversarial examples into poisoning and backdoor attacks ([15] model
// replacement, [16] the adversarial lens on FL). A production FL substrate
// therefore ships Byzantine-robust aggregation alongside plain FedAvg;
// these rules are the standard trio evaluated by that literature, and the
// poisoning bench measures how each interacts with PELTA's client-side
// mitigation.
//
//   fedavg            — sample-count weighted mean (baseline; no defense)
//   coordinate_median — per-coordinate median across clients
//   trimmed_mean      — per-coordinate mean after dropping the k highest
//                       and k lowest values
//   norm_clipped_mean — each client's delta from the current global model
//                       is l2-clipped before the weighted mean (caps the
//                       boost of model-replacement attacks)
#pragma once

#include "fl/client.h"

namespace pelta::fl {

enum class aggregation_rule : std::uint8_t {
  fedavg,
  coordinate_median,
  trimmed_mean,
  norm_clipped_mean,
};

const char* aggregation_rule_name(aggregation_rule rule);

/// Down-weighting of stale updates in buffered-asynchronous aggregation
/// (FedBuff-style; see fl/async.h). An update's staleness s counts the
/// global versions that landed between the model it trained from and the
/// aggregation consuming it; sync rounds always aggregate at s = 0.
enum class staleness_weighting : std::uint8_t {
  none,            ///< ignore staleness (every update weighs its sample count)
  inverse_sqrt,    ///< 1 / sqrt(1 + s) — the FedBuff default
  inverse_linear,  ///< 1 / (1 + s) — harsher decay
};

const char* staleness_weighting_name(staleness_weighting weighting);

/// Multiplier applied to an update's aggregation weight: 1 at s = 0,
/// decaying as configured.
float staleness_weight(staleness_weighting weighting, std::int64_t staleness);

struct aggregation_config {
  aggregation_rule rule = aggregation_rule::fedavg;
  /// trimmed_mean: fraction trimmed from EACH side; floor(n * fraction)
  /// values are dropped per end (at least one when n >= 3).
  float trim_fraction = 0.2f;
  /// norm_clipped_mean: per-update delta l2 cap; <= 0 selects the median of
  /// the client delta norms (self-tuning, no magic constant).
  float clip_norm = 0.0f;
  /// Staleness down-weighting of each update's weight. Only the weighted
  /// rules (fedavg, norm_clipped_mean) honor it — coordinate_median and
  /// trimmed_mean are order statistics and intentionally ignore weights
  /// (sample counts and staleness alike). Note: federation::run_async
  /// overrides this per flush with async_config::weighting — configure the
  /// async knob there; this field drives direct aggregate_states callers.
  staleness_weighting staleness = staleness_weighting::none;
};

/// Aggregate `updates` (snapshot_state payloads) into a fresh state buffer.
/// `reference` is the current global state — it defines the tensor
/// structure and anchors delta-based rules. All updates must match it.
byte_buffer aggregate_states(const byte_buffer& reference,
                             const std::vector<model_update>& updates,
                             const aggregation_config& config);

}  // namespace pelta::fl
