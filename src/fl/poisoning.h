// Poisoning and backdoor clients — the attacks the paper's introduction
// motivates PELTA with.
//
// §I: a malicious client "initiates a poisoning attack that can break a
// model's robustness by sending the central server updates that stem from
// inference on samples engineered with a trojan trigger to create an
// unsuspected backdoor [Bagdasaryan et al.]", or has "the model
// purposefully and repeatedly misclassify their newfound adversarial
// examples to severely undermine the quality of the aggregated updates
// [Bhagoji et al.]". Two malicious client types implement those stories:
//
//   backdoor_client       — trigger-stamped samples relabelled to a target
//                           class, with optional model-replacement boosting
//                           (the [15] attack); measured by the backdoor
//                           success rate on triggered test images.
//   evasion_poison_client — crafts adversarial examples against its own
//                           local copy each round (the probe PELTA blocks)
//                           and trains them under the wrong label so every
//                           federation member inherits the misclassification.
//                           With PELTA, the probe only yields the upsampled
//                           adjoint and the poison loses its aim.
#pragma once

#include "fl/client.h"

namespace pelta::fl {

/// Square trigger stamped into the bottom-right corner, all channels. The
/// default size of 4 aligns with one ViT patch — a maximally salient token
/// for transformer defenders (any size works for CNNs).
struct trigger_pattern {
  std::int64_t size = 4;
  float value = 1.0f;
};

/// Stamp `trigger` onto a copy of `image` [C,H,W].
tensor apply_trigger(const tensor& image, const trigger_pattern& trigger);

struct backdoor_config {
  trigger_pattern trigger;
  std::int64_t target_class = 0;
  /// Fraction of each local mini-batch that is trigger-stamped + relabelled.
  /// Kept small by default: an aggressive fraction wrecks the malicious
  /// client's clean accuracy, which both weakens the embedded trigger after
  /// aggregation and gives the attack away (Bagdasaryan et al.'s stealth
  /// argument).
  float poison_fraction = 0.25f;
  /// Model replacement: upload θ_g + boost (θ_local − θ_g); 1 = no boost.
  float boost = 1.0f;
  /// The attacker trains extra_epochs_factor × the honest epoch budget
  /// before boosting. Boosting an *unconverged* delta amplifies its noise,
  /// wrecks the global clean accuracy, and the honest repair work of the
  /// next round erases the trigger; converging first is what makes model
  /// replacement both stealthy and persistent (Bagdasaryan et al.).
  std::int64_t extra_epochs_factor = 3;
};

class backdoor_client final : public fl_client {
public:
  backdoor_client(std::int64_t id, std::unique_ptr<models::model> local_model,
                  std::vector<std::int64_t> shard, const data::dataset& ds,
                  const backdoor_config& config);

  void receive_global(const byte_buffer& global_parameters) override;
  model_update local_update(const local_train_config& config) override;

  const backdoor_config& attack_config() const { return config_; }

private:
  backdoor_config config_;
  byte_buffer last_global_;  ///< anchor for the model-replacement boost
};

/// Fraction of triggered test images (whose true label differs from the
/// target) the model classifies as the backdoor target.
float backdoor_success_rate(const models::model& m, const data::dataset& ds,
                            const backdoor_config& config, std::int64_t max_samples = 200);

struct evasion_poison_config {
  attacks::suite_params params;      ///< attack budget of the probe
  bool shielded = false;             ///< PELTA on this device?
  std::int64_t crafts_per_round = 8; ///< adversarial samples forged per round
  std::uint64_t seed = 97;
};

class evasion_poison_client final : public fl_client {
public:
  evasion_poison_client(std::int64_t id, std::unique_ptr<models::model> local_model,
                        std::vector<std::int64_t> shard, const data::dataset& ds,
                        const evasion_poison_config& config);

  model_update local_update(const local_train_config& config) override;

  /// One successfully "newfound" adversarial example: the attacker adopts
  /// the wrong class its local copy already predicts and reinforces it
  /// through training, so the misclassification survives aggregation and
  /// replays against every other member's copy.
  struct replay_sample {
    tensor x_adv;
    std::int64_t true_label = -1;
    std::int64_t adopted_label = -1;  ///< the local copy's wrong prediction
  };

  const std::vector<replay_sample>& replay_set() const { return replay_; }
  /// Probe attempts so far (successful or not) — the denominator of the
  /// end-to-end poisoning rate. With PELTA most attempts fail, leaving the
  /// attacker nothing to reinforce.
  std::int64_t craft_attempts() const { return craft_attempts_; }

private:
  evasion_poison_config config_;
  std::vector<replay_sample> replay_;
  std::int64_t craft_attempts_ = 0;
};

/// End-to-end poisoning success: the fraction of ALL probe attempts whose
/// replay sample the final model still misclassifies (higher favors the
/// attacker; failed crafts count against the attacker — they produced
/// nothing to replay).
float replay_attack_rate(const models::model& m,
                         const std::vector<evasion_poison_client::replay_sample>& replay,
                         std::int64_t craft_attempts);

}  // namespace pelta::fl
