// Buffered asynchronous federation (FedBuff-style) on a simulated clock.
//
// federation::run_round is a synchronous barrier: every sampled client
// trains to completion before aggregation, so one straggler stalls the
// round. Real edge fleets are intermittently available (§VI), which is why
// async FL buffers updates instead: clients train continuously, each pull
// of the global model starts a new local episode, and the server aggregates
// whenever K updates have been buffered — stale updates down-weighted by
// aggregation_config.staleness (1/sqrt(1+s) by default) and discarded
// beyond max_staleness.
//
// The runtime is split so the schedule never depends on wall-clock or
// thread count:
//
//   1. plan_async_schedule — a pure, single-threaded event loop over the
//      *simulated* clock. Completion times come from the network cost model
//      (client_profile-scaled transfers) plus a modeled compute duration
//      (compute_ns_per_sample × epochs × shard size × compute_scale);
//      dropout draws come from per-job forked rng streams. The plan fixes,
//      deterministically, which episode trains from which global version
//      and which aggregation consumes it.
//   2. federation::run_async — executes the plan, dispatching the training
//      episodes of each global version onto the thread pool (episodes of
//      the same client stay sequential), then aggregating exactly the
//      planned buffer. Bit-identical for every PELTA_THREADS value; the
//      determinism suite compares pooled vs forced-serial runs.
#pragma once

#include <cstdint>
#include <vector>

#include "fl/aggregation.h"
#include "fl/network.h"

namespace pelta::fl {

struct async_config {
  /// K: aggregate whenever this many updates are buffered.
  std::int64_t buffer_size = 2;
  /// Updates arriving with staleness beyond this are discarded unseen.
  std::int64_t max_staleness = 8;
  /// Down-weighting of the staleness the surviving updates do carry. On
  /// the async path this is the single source of truth: run_async installs
  /// it into aggregation_config.staleness for every flush, overriding
  /// whatever federation_config.aggregation carries (sync rounds always
  /// aggregate at staleness 0, where the knob is inert anyway).
  staleness_weighting weighting = staleness_weighting::inverse_sqrt;
  /// Fleet heterogeneity (per-client link/compute scales, stragglers,
  /// dropout) driving the simulated clock.
  heterogeneity_config heterogeneity;
  /// Modeled local-training cost per (sample × epoch) before the client's
  /// compute_scale. Default ≈ 0.2 ms/sample keeps compute comparable to a
  /// few MB of model transfer on the default ~1 Gbps link.
  double compute_ns_per_sample = 2e5;
};

/// One planned client training episode.
struct async_job {
  std::int64_t client = -1;
  std::int64_t start_version = 0;  ///< global version installed at episode start
  std::int64_t aggregation = -1;   ///< flush that consumed it; -1 = never applied
  std::int64_t staleness = 0;      ///< versions elapsed when the upload arrived
  bool dropped = false;            ///< device went offline before the upload
  bool stale = false;              ///< arrived beyond max_staleness, discarded
  double start_ns = 0.0;
  double finish_ns = 0.0;
};

/// Modeled duration of one client training episode: download the broadcast,
/// train (compute_ns_per_sample × epochs × shard size × compute_scale),
/// upload the update. The single source of the simulated cost model — the
/// planner, the sync-side clock of bench_fl_async and the straggler example
/// all price episodes through this.
double async_episode_ns(const async_config& config, const client_profile& profile,
                        std::int64_t shard_size, std::int64_t epochs,
                        std::int64_t payload_bytes, const network& net);

/// One metered transfer leg, in simulated chronological order.
struct async_traffic_leg {
  std::int64_t client = -1;
  bool upload = false;  ///< false: broadcast (server -> client)
  double ns = 0.0;      ///< simulated time the leg is metered at
};

struct async_schedule {
  std::vector<async_job> jobs;  ///< in episode-creation order
  /// Per-aggregation job indices, in buffer-arrival order.
  std::vector<std::vector<std::size_t>> flush_inputs;
  std::vector<double> flush_ns;  ///< simulated time of each aggregation
  std::vector<async_traffic_leg> legs;
  std::int64_t aggregations = 0;
  std::int64_t dropped = 0;
  std::int64_t stale = 0;
  double end_ns = 0.0;  ///< simulated time of the final aggregation
};

/// Plan the buffered-async schedule up to `target_aggregations` flushes.
/// Pure timing: depends only on the configuration, the profiles, the shard
/// sizes, the payload size and `seed` — never on trained parameter values,
/// wall-clock or thread count.
async_schedule plan_async_schedule(const async_config& config,
                                   const std::vector<client_profile>& profiles,
                                   const std::vector<std::int64_t>& shard_sizes,
                                   std::int64_t epochs, std::int64_t payload_bytes,
                                   const network& net, std::int64_t target_aggregations,
                                   std::uint64_t seed);

/// Same, but planning drains at `horizon_ns` — the shared simulated-clock
/// shutdown rule (core/simclock.h), boundary INCLUSIVE: an upload (and the
/// flush it completes) stamped exactly AT the horizon still lands; episodes
/// finishing after it are never processed, so the plan may end with fewer
/// than `target_aggregations` flushes. `horizon_ns = +inf` is the overload
/// above.
async_schedule plan_async_schedule(const async_config& config,
                                   const std::vector<client_profile>& profiles,
                                   const std::vector<std::int64_t>& shard_sizes,
                                   std::int64_t epochs, std::int64_t payload_bytes,
                                   const network& net, std::int64_t target_aggregations,
                                   std::uint64_t seed, double horizon_ns);

/// What one run_async call did, in simulated terms.
struct async_report {
  std::int64_t aggregations = 0;    ///< buffer flushes applied
  std::int64_t updates_applied = 0; ///< client updates aggregated
  std::int64_t updates_dropped = 0; ///< device dropouts (upload never sent)
  std::int64_t updates_stale = 0;   ///< discarded beyond max_staleness
  std::int64_t trainings = 0;       ///< training episodes actually executed
  double simulated_ns = 0.0;        ///< event-clock time of the final flush
  double mean_staleness = 0.0;      ///< over applied updates
  std::int64_t max_staleness_seen = 0;
};

}  // namespace pelta::fl
