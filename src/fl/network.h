// In-process star-topology network simulator for the FL substrate.
//
// Transfers are instantaneous in wall-clock terms; the simulator accounts
// message counts, bytes on the wire and a modeled latency (per-message RTT
// plus per-byte bandwidth cost), which the §VI overhead bench reports
// alongside the TEE costs.
//
// Real edge fleets are heterogeneous — the paper's §VI calls for harnessing
// "the idle state of edge devices to handle intermittent compute node
// availability" — so each client can carry a client_profile scaling the
// shared link cost model and the modeled local-compute time, plus a
// per-episode dropout probability. make_client_profiles draws a seeded
// fleet with log-uniform spreads and a fixed number of stragglers; the
// async scheduler (fl/async.h) plans its simulated clock from these.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sync.h"

namespace pelta::fl {

struct network_stats {
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  double simulated_ns = 0.0;
};

/// Per-client heterogeneity. Scales the network's shared cost model: a
/// transfer for this client costs per_message_ns * latency_scale +
/// ns_per_byte * bandwidth_scale * bytes. compute_scale multiplies the
/// modeled local-training duration on the async scheduler's simulated
/// clock, and dropout_rate is the probability one training episode ends
/// with the device offline before its upload lands.
struct client_profile {
  double bandwidth_scale = 1.0;  ///< >1 = slower link (scales the per-byte cost)
  double latency_scale = 1.0;    ///< >1 = higher RTT
  double compute_scale = 1.0;    ///< >1 = slower device
  double dropout_rate = 0.0;     ///< per-episode offline probability in [0, 1)
};

/// Seeded fleet generator: spreads are log-uniform in [1/spread, spread]
/// around 1 (spread <= 1 pins the scale to exactly 1), then `stragglers`
/// distinct clients — chosen by seeded shuffle — get their compute_scale
/// multiplied by straggler_slowdown.
struct heterogeneity_config {
  double bandwidth_spread = 1.0;
  double latency_spread = 1.0;
  double compute_spread = 1.0;
  std::int64_t stragglers = 0;
  double straggler_slowdown = 4.0;
  double dropout_rate = 0.0;
  std::uint64_t seed = 23;
};

std::vector<client_profile> make_client_profiles(std::int64_t clients,
                                                 const heterogeneity_config& config);

class network {
public:
  /// Defaults model a ~1 Gbps link with 2 ms round-trip latency.
  explicit network(double ns_per_byte = 8.0, double per_message_ns = 2e6)
      : ns_per_byte_{ns_per_byte}, per_message_ns_{per_message_ns} {}

  /// Modeled one-way transfer time of `bytes` over `link`, without
  /// recording it. The async scheduler plans completion times from this
  /// and replays the accounting afterwards in simulated-event order.
  double transfer_ns(std::int64_t bytes, const client_profile& link = {}) const {
    return per_message_ns_ * link.latency_scale +
           ns_per_byte_ * link.bandwidth_scale * static_cast<double>(bytes);
  }

  /// Record one message of `bytes` payload over `link`; returns its
  /// simulated latency. Thread-safe; still, for *deterministic* stats,
  /// record in a fixed order (federation replays the legs in participant /
  /// simulated-event order after the training join rather than from inside
  /// worker threads).
  double record(std::int64_t bytes, const client_profile& link = {}) {
    const double ns = transfer_ns(bytes, link);
    const sync::lock_guard lock{mutex_};
    ++stats_.messages;
    stats_.bytes += bytes;
    stats_.simulated_ns += ns;
    return ns;
  }

  /// Snapshot of the counters. Taken under the lock so a reader never sees
  /// a half-applied record() from another thread.
  network_stats stats() const {
    const sync::lock_guard lock{mutex_};
    return stats_;
  }
  void reset() {
    const sync::lock_guard lock{mutex_};
    stats_ = {};
  }

private:
  double ns_per_byte_;
  double per_message_ns_;
  mutable sync::mutex mutex_;
  network_stats stats_ PELTA_GUARDED_BY(mutex_);
};

}  // namespace pelta::fl
