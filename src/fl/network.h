// In-process star-topology network simulator for the FL substrate.
//
// Transfers are instantaneous in wall-clock terms; the simulator accounts
// message counts, bytes on the wire and a modeled latency (per-message RTT
// plus per-byte bandwidth cost), which the §VI overhead bench reports
// alongside the TEE costs.
#pragma once

#include <cstdint>
#include <mutex>

namespace pelta::fl {

struct network_stats {
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  double simulated_ns = 0.0;
};

class network {
public:
  /// Defaults model a ~1 Gbps link with 2 ms round-trip latency.
  explicit network(double ns_per_byte = 8.0, double per_message_ns = 2e6)
      : ns_per_byte_{ns_per_byte}, per_message_ns_{per_message_ns} {}

  /// Record one message of `bytes` payload; returns its simulated latency.
  /// Thread-safe; still, for *deterministic* stats, record in a fixed order
  /// (federation::run_round replays the legs in participant order after the
  /// training join rather than from inside worker threads).
  double record(std::int64_t bytes) {
    std::lock_guard<std::mutex> lock{mutex_};
    ++stats_.messages;
    stats_.bytes += bytes;
    const double ns = per_message_ns_ + ns_per_byte_ * static_cast<double>(bytes);
    stats_.simulated_ns += ns;
    return ns;
  }

  /// Snapshot of the counters. Taken under the lock so a reader never sees
  /// a half-applied record() from another thread.
  network_stats stats() const {
    std::lock_guard<std::mutex> lock{mutex_};
    return stats_;
  }
  void reset() {
    std::lock_guard<std::mutex> lock{mutex_};
    stats_ = {};
  }

private:
  double ns_per_byte_;
  double per_message_ns_;
  mutable std::mutex mutex_;
  network_stats stats_;
};

}  // namespace pelta::fl
