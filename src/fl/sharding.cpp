#include "fl/sharding.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pelta::fl {

const char* shard_strategy_name(shard_strategy strategy) {
  switch (strategy) {
    case shard_strategy::iid: return "iid";
    case shard_strategy::by_class: return "by-class";
    case shard_strategy::dirichlet: return "dirichlet";
  }
  return "?";
}

namespace {

std::int64_t label_of(const data::dataset& ds, std::int64_t index) {
  return static_cast<std::int64_t>(ds.train_labels()[index]);
}

/// Move one sample from the largest shard into each empty one.
void fix_empty_shards(std::vector<std::vector<std::int64_t>>& shards) {
  for (auto& shard : shards) {
    if (!shard.empty()) continue;
    auto largest = std::max_element(
        shards.begin(), shards.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    PELTA_CHECK_MSG(largest->size() >= 2, "not enough samples to populate every client");
    shard.push_back(largest->back());
    largest->pop_back();
  }
}

}  // namespace

std::vector<std::vector<std::int64_t>> make_shards(const data::dataset& ds,
                                                   std::int64_t clients,
                                                   const sharding_config& config) {
  PELTA_CHECK_MSG(clients >= 1, "need at least one client");
  PELTA_CHECK_MSG(ds.train_size() >= clients, "more clients than training samples");

  std::vector<std::int64_t> order(static_cast<std::size_t>(ds.train_size()));
  std::iota(order.begin(), order.end(), 0);
  rng gen{config.seed};

  std::vector<std::vector<std::int64_t>> shards(static_cast<std::size_t>(clients));
  switch (config.strategy) {
    case shard_strategy::iid: {
      std::shuffle(order.begin(), order.end(), gen.engine());
      for (std::size_t i = 0; i < order.size(); ++i)
        shards[i % static_cast<std::size_t>(clients)].push_back(order[i]);
      break;
    }
    case shard_strategy::by_class: {
      // label-major, random within a label, then contiguous equal chunks
      std::shuffle(order.begin(), order.end(), gen.engine());
      std::stable_sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
        return label_of(ds, a) < label_of(ds, b);
      });
      const std::size_t per =
          (order.size() + static_cast<std::size_t>(clients) - 1) / static_cast<std::size_t>(clients);
      for (std::size_t i = 0; i < order.size(); ++i)
        shards[std::min(i / per, static_cast<std::size_t>(clients) - 1)].push_back(order[i]);
      break;
    }
    case shard_strategy::dirichlet: {
      PELTA_CHECK_MSG(config.dirichlet_alpha > 0.0f, "dirichlet_alpha must be positive");
      // group indices by label
      std::vector<std::vector<std::int64_t>> by_label(
          static_cast<std::size_t>(ds.config().classes));
      for (std::int64_t i : order) by_label[static_cast<std::size_t>(label_of(ds, i))].push_back(i);

      std::gamma_distribution<double> gamma{static_cast<double>(config.dirichlet_alpha), 1.0};
      for (auto& members : by_label) {
        std::shuffle(members.begin(), members.end(), gen.engine());
        // p ~ Dir(α) over clients for this class
        std::vector<double> p(static_cast<std::size_t>(clients));
        double total = 0.0;
        for (double& v : p) {
          v = std::max(gamma(gen.engine()), 1e-12);
          total += v;
        }
        // cumulative split of this class's members by p
        double cum = 0.0;
        std::size_t start = 0;
        for (std::size_t c = 0; c < p.size(); ++c) {
          cum += p[c] / total;
          const auto end = c + 1 == p.size()
                               ? members.size()
                               : static_cast<std::size_t>(
                                     std::llround(cum * static_cast<double>(members.size())));
          for (std::size_t i = start; i < std::min(end, members.size()); ++i)
            shards[c].push_back(members[i]);
          start = std::max(start, std::min(end, members.size()));
        }
      }
      break;
    }
  }

  fix_empty_shards(shards);

  std::size_t covered = 0;
  for (const auto& s : shards) covered += s.size();
  PELTA_CHECK_MSG(covered == order.size(), "sharding lost samples");
  return shards;
}

double shard_label_entropy(const data::dataset& ds, const std::vector<std::int64_t>& shard) {
  PELTA_CHECK_MSG(!shard.empty(), "entropy of an empty shard");
  std::vector<double> counts(static_cast<std::size_t>(ds.config().classes), 0.0);
  for (std::int64_t i : shard) counts[static_cast<std::size_t>(label_of(ds, i))] += 1.0;
  double h = 0.0;
  for (double c : counts) {
    if (c == 0.0) continue;
    const double p = c / static_cast<double>(shard.size());
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace pelta::fl
