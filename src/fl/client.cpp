#include "fl/client.h"

#include "fl/state.h"
#include "models/trainer.h"
#include "nn/optimizer.h"

namespace pelta::fl {

fl_client::fl_client(std::int64_t id, std::unique_ptr<models::model> local_model,
                     std::vector<std::int64_t> shard, const data::dataset& ds)
    : id_{id}, model_{std::move(local_model)}, shard_{std::move(shard)}, dataset_{&ds} {
  PELTA_CHECK_MSG(model_ != nullptr, "client needs a model");
  PELTA_CHECK_MSG(!shard_.empty(), "client shard is empty");
}

void fl_client::receive_global(const byte_buffer& global_parameters) {
  install_state(*model_, global_parameters);
}

model_update fl_client::local_update(const local_train_config& config) {
  nn::adam opt{config.lr};
  rng order_gen{config.seed + static_cast<std::uint64_t>(id_) * 7919 +
                static_cast<std::uint64_t>(round_) * 104729};
  ++round_;

  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Shuffle the shard and iterate mini-batches.
    std::vector<std::int64_t> order = shard_;
    std::shuffle(order.begin(), order.end(), order_gen.engine());
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(config.batch_size));
      const std::vector<std::int64_t> indices(order.begin() + static_cast<std::ptrdiff_t>(start),
                                              order.begin() + static_cast<std::ptrdiff_t>(end));
      const data::batch b = dataset_->gather_train(indices);
      model_->params().zero_grads();
      models::loss_and_grad(*model_, b);
      opt.step(model_->params());
    }
  }

  model_update update;
  update.client_id = id_;
  update.sample_count = shard_size();
  update.parameters = snapshot_state(*model_);
  return update;
}

attacks::attack_result compromised_client::craft_adversarial(
    const tensor& image, std::int64_t label, bool shielded, attacks::attack_kind kind,
    const attacks::suite_params& params, std::uint64_t seed) const {
  const attacks::oracle_factory factory = shielded
                                              ? attacks::shielded_oracle_factory(local_model())
                                              : attacks::clear_oracle_factory(local_model());
  auto oracle = factory(seed);
  rng sample_rng{seed};
  switch (kind) {
    case attacks::attack_kind::fgsm: {
      attacks::fgsm_config c;
      c.eps = params.eps;
      return attacks::run_fgsm(*oracle, image, label, c);
    }
    case attacks::attack_kind::pgd: {
      attacks::pgd_config c;
      c.eps = params.eps;
      c.eps_step = params.eps_step;
      c.steps = params.pgd_steps;
      return attacks::run_pgd(*oracle, image, label, c);
    }
    case attacks::attack_kind::mim: {
      attacks::mim_config c;
      c.eps = params.eps;
      c.eps_step = params.eps_step;
      c.steps = params.pgd_steps;
      c.mu = params.mim_mu;
      return attacks::run_mim(*oracle, image, label, c);
    }
    case attacks::attack_kind::cw: {
      attacks::cw_config c;
      c.confidence = params.cw_confidence;
      c.eps_step = params.cw_step;
      c.steps = params.cw_steps;
      return attacks::run_cw(*oracle, image, label, c);
    }
    case attacks::attack_kind::apgd: {
      attacks::apgd_config c;
      c.eps = params.eps;
      c.max_queries = params.apgd_queries;
      c.restarts = params.apgd_restarts;
      c.rho = params.apgd_rho;
      return attacks::run_apgd(*oracle, image, label, c, sample_rng);
    }
  }
  throw error{"unknown attack kind"};
}

}  // namespace pelta::fl
