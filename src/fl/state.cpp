#include "fl/state.h"

namespace pelta::fl {

byte_buffer snapshot_state(const models::model& m) {
  byte_buffer out = m.params().save_values();
  for (const ad::batchnorm_stats* s : m.batchnorm_buffers()) {
    serialize_tensor(s->running_mean, out);
    serialize_tensor(s->running_var, out);
  }
  return out;
}

void install_state(models::model& m, const byte_buffer& buf) {
  std::size_t offset = m.params().load_values_at(buf, 0);
  for (ad::batchnorm_stats* s : m.batchnorm_buffers()) {
    tensor mean = deserialize_tensor(buf, offset);
    tensor var = deserialize_tensor(buf, offset);
    PELTA_CHECK_MSG(mean.same_shape(s->running_mean) && var.same_shape(s->running_var),
                    "batch-norm buffer shape mismatch on install");
    s->running_mean = std::move(mean);
    s->running_var = std::move(var);
  }
  PELTA_CHECK_MSG(offset == buf.size(), "trailing bytes in model-state payload");
}

}  // namespace pelta::fl
