#include "fl/async.h"

#include <limits>

#include "core/simclock.h"
#include "tensor/check.h"
#include "tensor/rng.h"

namespace pelta::fl {

double async_episode_ns(const async_config& config, const client_profile& profile,
                        std::int64_t shard_size, std::int64_t epochs,
                        std::int64_t payload_bytes, const network& net) {
  const double compute = config.compute_ns_per_sample * static_cast<double>(epochs) *
                         static_cast<double>(shard_size) * profile.compute_scale;
  return net.transfer_ns(payload_bytes, profile) + compute +
         net.transfer_ns(payload_bytes, profile);
}

async_schedule plan_async_schedule(const async_config& config,
                                   const std::vector<client_profile>& profiles,
                                   const std::vector<std::int64_t>& shard_sizes,
                                   std::int64_t epochs, std::int64_t payload_bytes,
                                   const network& net, std::int64_t target_aggregations,
                                   std::uint64_t seed) {
  return plan_async_schedule(config, profiles, shard_sizes, epochs, payload_bytes, net,
                             target_aggregations, seed,
                             std::numeric_limits<double>::infinity());
}

async_schedule plan_async_schedule(const async_config& config,
                                   const std::vector<client_profile>& profiles,
                                   const std::vector<std::int64_t>& shard_sizes,
                                   std::int64_t epochs, std::int64_t payload_bytes,
                                   const network& net, std::int64_t target_aggregations,
                                   std::uint64_t seed, double horizon_ns) {
  PELTA_CHECK_MSG(config.buffer_size >= 1, "async buffer_size must be >= 1");
  PELTA_CHECK_MSG(config.max_staleness >= 0, "max_staleness must be >= 0");
  PELTA_CHECK_MSG(config.compute_ns_per_sample >= 0.0, "compute_ns_per_sample must be >= 0");
  PELTA_CHECK_MSG(!profiles.empty() && profiles.size() == shard_sizes.size(),
                  "async planning needs one profile per client shard");
  PELTA_CHECK_MSG(epochs >= 1 && payload_bytes > 0, "invalid epochs / payload size");
  PELTA_CHECK_MSG(target_aggregations >= 1, "need at least one target aggregation");

  const std::size_t clients = profiles.size();
  const rng base{seed};
  async_schedule plan;

  // The shared simulated-clock queue (core/simclock.h): events pop by
  // (finish stamp, job index) — the job index, unique and assigned in
  // creation order, is the deterministic tie-break, so the pop order is
  // total. The horizon is the queue's inclusive drain boundary: an upload
  // (and therefore a flush) stamped exactly AT the horizon still lands;
  // episodes finishing after it are rejected by the queue and never
  // processed.
  core::event_queue events{horizon_ns};

  std::int64_t version = 0;
  std::vector<std::size_t> buffer;  // job indices, arrival order

  const auto start_job = [&](std::size_t c, double at_ns) {
    async_job job;
    job.client = static_cast<std::int64_t>(c);
    job.start_version = version;
    job.start_ns = at_ns;
    job.finish_ns =
        at_ns + async_episode_ns(config, profiles[c], shard_sizes[c], epochs, payload_bytes, net);
    plan.legs.push_back({job.client, /*upload=*/false, at_ns});  // broadcast leg
    const std::size_t index = plan.jobs.size();
    plan.jobs.push_back(job);
    events.push(job.finish_ns, static_cast<std::int64_t>(index));
  };

  for (std::size_t c = 0; c < clients; ++c) start_job(c, 0.0);

  // A fleet that never fills the buffer (e.g. every upload beyond
  // max_staleness) would loop forever; this bound is far above any
  // converging schedule.
  const std::size_t max_jobs =
      clients * static_cast<std::size_t>(target_aggregations * config.buffer_size + 64) * 4;

  while (plan.aggregations < target_aggregations && !events.empty()) {
    PELTA_CHECK_MSG(plan.jobs.size() < max_jobs,
                    "async schedule is not converging after "
                        << plan.jobs.size() << " episodes (staleness bound or dropout "
                        << "rate starves the buffer)");
    const core::sim_event upload = events.pop();
    const double at_ns = upload.stamp_ns;
    const std::size_t index = static_cast<std::size_t>(upload.id);
    async_job& job = plan.jobs[index];

    // Per-job forked stream: the draw depends only on (seed, job index),
    // never on the event interleaving.
    rng fate = base.fork(0xd20ull + static_cast<std::uint64_t>(index));
    if (profiles[static_cast<std::size_t>(job.client)].dropout_rate > 0.0 &&
        fate.bernoulli(profiles[static_cast<std::size_t>(job.client)].dropout_rate)) {
      job.dropped = true;
      ++plan.dropped;
    } else {
      plan.legs.push_back({job.client, /*upload=*/true, at_ns});
      job.staleness = version - job.start_version;
      if (job.staleness > config.max_staleness) {
        job.stale = true;
        ++plan.stale;
      } else {
        buffer.push_back(index);
        if (static_cast<std::int64_t>(buffer.size()) == config.buffer_size) {
          for (const std::size_t b : buffer) plan.jobs[b].aggregation = plan.aggregations;
          plan.flush_inputs.push_back(std::move(buffer));
          buffer.clear();
          plan.flush_ns.push_back(at_ns);
          ++plan.aggregations;
          ++version;
          plan.end_ns = at_ns;
          if (plan.aggregations == target_aggregations) break;
        }
      }
    }
    // The device immediately begins its next episode from the current
    // global version (post-flush if one just happened).
    start_job(static_cast<std::size_t>(job.client), at_ns);
  }
  return plan;
}

}  // namespace pelta::fl
