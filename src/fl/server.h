// Trusted FL server: broadcasts the global model, aggregates client updates
// with FedAvg (weighted by local sample counts).
#pragma once

#include <memory>

#include "fl/aggregation.h"
#include "fl/client.h"

namespace pelta::fl {

class fl_server {
public:
  explicit fl_server(std::unique_ptr<models::model> global_model);

  models::model& global_model() { return *model_; }
  const models::model& global_model() const { return *model_; }

  /// Serialized global parameters (the broadcast payload).
  byte_buffer broadcast() const;

  /// FedAvg: θ ← Σ_i (n_i / n) θ_i over the received updates.
  void aggregate(const std::vector<model_update>& updates);

  /// Aggregate under an explicit rule (Byzantine-robust variants included;
  /// see fl/aggregation.h).
  void aggregate(const std::vector<model_update>& updates, const aggregation_config& config);

  std::int64_t round() const { return round_; }

private:
  std::unique_ptr<models::model> model_;
  std::int64_t round_ = 0;
};

}  // namespace pelta::fl
