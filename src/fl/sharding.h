// Client data partitioning strategies for the FL substrate.
//
// The paper's evaluation assumes each client holds local private data; how
// that data is distributed across clients is the main axis real FL
// deployments vary on. Three standard partitioners:
//
//   iid       — shuffle and split evenly (the Fig. 1 baseline)
//   by_class  — label-sorted contiguous chunks: each client sees only a few
//               classes (pathological non-iid of McMahan et al.)
//   dirichlet — per class, client proportions drawn from Dir(α): α → ∞
//               approaches iid, α → 0 approaches by_class (Hsu et al.)
#pragma once

#include "data/dataset.h"

namespace pelta::fl {

enum class shard_strategy : std::uint8_t { iid, by_class, dirichlet };

const char* shard_strategy_name(shard_strategy strategy);

struct sharding_config {
  shard_strategy strategy = shard_strategy::iid;
  float dirichlet_alpha = 0.5f;  ///< concentration; smaller = more skew
  std::uint64_t seed = 23;
};

/// Partition the dataset's train indices into `clients` disjoint shards
/// covering every sample. Every shard is guaranteed non-empty (a client
/// with no data cannot participate in a round).
std::vector<std::vector<std::int64_t>> make_shards(const data::dataset& ds,
                                                   std::int64_t clients,
                                                   const sharding_config& config);

/// Shannon entropy (nats) of a shard's label distribution — the standard
/// skew diagnostic (log(classes) for uniform, 0 for single-class).
double shard_label_entropy(const data::dataset& ds, const std::vector<std::int64_t>& shard);

}  // namespace pelta::fl
