#include "fl/aggregation.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"  // detail::fmadd — the float-accumulation policy (R1)

namespace pelta::fl {

const char* aggregation_rule_name(aggregation_rule rule) {
  switch (rule) {
    case aggregation_rule::fedavg: return "FedAvg";
    case aggregation_rule::coordinate_median: return "coordinate median";
    case aggregation_rule::trimmed_mean: return "trimmed mean";
    case aggregation_rule::norm_clipped_mean: return "norm-clipped mean";
  }
  return "?";
}

const char* staleness_weighting_name(staleness_weighting weighting) {
  switch (weighting) {
    case staleness_weighting::none: return "none";
    case staleness_weighting::inverse_sqrt: return "1/sqrt(1+s)";
    case staleness_weighting::inverse_linear: return "1/(1+s)";
  }
  return "?";
}

float staleness_weight(staleness_weighting weighting, std::int64_t staleness) {
  PELTA_CHECK_MSG(staleness >= 0, "negative staleness " << staleness);
  switch (weighting) {
    case staleness_weighting::none: return 1.0f;
    case staleness_weighting::inverse_sqrt:
      return 1.0f / std::sqrt(1.0f + static_cast<float>(staleness));
    case staleness_weighting::inverse_linear:
      return 1.0f / (1.0f + static_cast<float>(staleness));
  }
  return 1.0f;
}

namespace {

std::vector<tensor> decode_state(const byte_buffer& buf) {
  std::vector<tensor> out;
  std::size_t offset = 0;
  while (offset < buf.size()) out.push_back(deserialize_tensor(buf, offset));
  return out;
}

void check_structure(const std::vector<tensor>& reference, const std::vector<tensor>& update,
                     std::int64_t client_id) {
  PELTA_CHECK_MSG(reference.size() == update.size(),
                  "update from client " << client_id << " has mismatched tensor count");
  for (std::size_t i = 0; i < reference.size(); ++i)
    PELTA_CHECK_MSG(update[i].same_shape(reference[i]),
                    "update from client " << client_id << " has mismatched structure");
}

byte_buffer encode_state(const std::vector<tensor>& tensors) {
  byte_buffer out;
  for (const tensor& t : tensors) serialize_tensor(t, out);
  return out;
}

double delta_norm(const std::vector<tensor>& state, const std::vector<tensor>& reference) {
  double sq = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i)
    for (std::int64_t j = 0; j < state[i].numel(); ++j) {
      const double d = static_cast<double>(state[i][j]) - static_cast<double>(reference[i][j]);
      sq += d * d;
    }
  return std::sqrt(sq);
}

}  // namespace

byte_buffer aggregate_states(const byte_buffer& reference,
                             const std::vector<model_update>& updates,
                             const aggregation_config& config) {
  PELTA_CHECK_MSG(!updates.empty(), "aggregate_states() without updates");
  const std::vector<tensor> ref = decode_state(reference);

  std::vector<std::vector<tensor>> states;
  states.reserve(updates.size());
  for (const model_update& u : updates) {
    PELTA_CHECK_MSG(u.sample_count > 0, "update with non-positive sample count");
    states.push_back(decode_state(u.parameters));
    check_structure(ref, states.back(), u.client_id);
  }
  const std::size_t n = states.size();

  // Per-update weights for the weighted rules: sample count scaled by the
  // staleness multiplier, normalized to sum to 1. The order-statistic rules
  // (coordinate_median, trimmed_mean) ignore these by design.
  std::vector<float> weights(n);
  {
    double total = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      const double w = static_cast<double>(updates[c].sample_count) *
                       static_cast<double>(staleness_weight(config.staleness,
                                                            updates[c].staleness));
      weights[c] = static_cast<float>(w);
      total += w;
    }
    PELTA_CHECK_MSG(total > 0.0, "aggregation weights sum to zero");
    for (std::size_t c = 0; c < n; ++c)
      weights[c] = static_cast<float>(static_cast<double>(weights[c]) / total);
  }

  std::vector<tensor> out;
  out.reserve(ref.size());
  for (const tensor& t : ref) out.emplace_back(t.shape());

  switch (config.rule) {
    case aggregation_rule::fedavg: {
      for (std::size_t c = 0; c < n; ++c) {
        const float w = weights[c];
        for (std::size_t i = 0; i < out.size(); ++i) out[i].add_scaled_(states[c][i], w);
      }
      break;
    }
    case aggregation_rule::coordinate_median: {
      std::vector<float> column(n);
      for (std::size_t i = 0; i < out.size(); ++i)
        for (std::int64_t j = 0; j < out[i].numel(); ++j) {
          for (std::size_t c = 0; c < n; ++c) column[c] = states[c][i][j];
          const std::size_t mid = n / 2;
          std::nth_element(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(mid),
                           column.end());
          float median = column[mid];
          if (n % 2 == 0) {
            // lower middle = max of the first half after partition
            const float lower =
                *std::max_element(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(mid));
            median = 0.5f * (median + lower);
          }
          out[i][j] = median;
        }
      break;
    }
    case aggregation_rule::trimmed_mean: {
      PELTA_CHECK_MSG(config.trim_fraction >= 0.0f && config.trim_fraction < 0.5f,
                      "trim_fraction " << config.trim_fraction << " outside [0, 0.5)");
      std::size_t k =
          static_cast<std::size_t>(std::floor(static_cast<double>(n) * config.trim_fraction));
      // A caller explicitly asking for trim_fraction == 0 gets the plain
      // mean; the k = 1 floor only backstops a positive fraction that
      // rounds to zero at small n.
      if (k == 0 && config.trim_fraction > 0.0f && n >= 3) k = 1;
      PELTA_CHECK_MSG(2 * k < n, "trimming discards every update (n=" << n << ", k=" << k << ")");
      std::vector<float> column(n);
      const double inv = 1.0 / static_cast<double>(n - 2 * k);
      for (std::size_t i = 0; i < out.size(); ++i)
        for (std::int64_t j = 0; j < out[i].numel(); ++j) {
          for (std::size_t c = 0; c < n; ++c) column[c] = states[c][i][j];
          std::sort(column.begin(), column.end());
          // Double-widened accumulator (R1): the sorted column can pair
          // large cancelling extremes around small survivors, and a float
          // running sum sheds the survivors' low-order bits entirely.
          double acc = 0.0;
          for (std::size_t c = k; c < n - k; ++c) acc += column[c];
          out[i][j] = static_cast<float>(acc * inv);
        }
      break;
    }
    case aggregation_rule::norm_clipped_mean: {
      std::vector<double> norms(n);
      for (std::size_t c = 0; c < n; ++c) norms[c] = delta_norm(states[c], ref);
      double cap = static_cast<double>(config.clip_norm);
      if (cap <= 0.0) {
        std::vector<double> sorted = norms;
        std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n / 2),
                         sorted.end());
        cap = sorted[n / 2];
        if (cap <= 0.0) cap = 1.0;  // all updates identical to global: no-op clip
      }
      // out = ref + weighted mean of clipped deltas
      for (std::size_t i = 0; i < out.size(); ++i) out[i] = ref[i];
      for (std::size_t c = 0; c < n; ++c) {
        const float w = weights[c];
        const float scale =
            norms[c] > cap ? static_cast<float>(cap / norms[c]) : 1.0f;
        // detail::fmadd (R1): a raw `out += ws * delta` leaves -ffp-contract
        // free to fuse this accumulation on FMA targets while other paths
        // stay mul+add, so the same aggregation could round differently per
        // build flag; the helper pins one rounding sequence everywhere.
        const float ws = w * scale;
        for (std::size_t i = 0; i < out.size(); ++i)
          for (std::int64_t j = 0; j < out[i].numel(); ++j)
            out[i][j] = ops::detail::fmadd(ws, states[c][i][j] - ref[i][j], out[i][j]);
      }
      break;
    }
  }
  return encode_state(out);
}

}  // namespace pelta::fl
