// Federated-learning clients.
//
// An fl_client owns a local copy of the model architecture and a shard of
// the training data (Fig. 1). Each round it loads the broadcast global
// parameters, trains locally, and returns its updated parameters for
// FedAvg aggregation. The compromised_client additionally probes its own
// local copy to craft adversarial examples — the attack PELTA mitigates.
#pragma once

#include <memory>

#include "attacks/runner.h"
#include "data/dataset.h"
#include "fl/network.h"
#include "models/model.h"
#include "tensor/serialize.h"

namespace pelta::fl {

struct local_train_config {
  std::int64_t epochs = 1;
  std::int64_t batch_size = 16;
  float lr = 2e-3f;
  std::uint64_t seed = 17;
};

struct model_update {
  std::int64_t client_id = -1;
  std::int64_t sample_count = 0;  ///< FedAvg weight
  byte_buffer parameters;         ///< serialized updated parameter values
  /// Global versions that landed between the broadcast this update trained
  /// from and the aggregation consuming it. Sync rounds aggregate at 0; the
  /// async runtime (fl/async.h) stamps it so aggregation_config.staleness
  /// can down-weight stale deltas.
  std::int64_t staleness = 0;
};

class fl_client {
public:
  /// `shard` indexes into the shared dataset's train split.
  fl_client(std::int64_t id, std::unique_ptr<models::model> local_model,
            std::vector<std::int64_t> shard, const data::dataset& ds);
  virtual ~fl_client() = default;

  std::int64_t id() const { return id_; }
  std::int64_t shard_size() const { return static_cast<std::int64_t>(shard_.size()); }
  models::model& local_model() { return *model_; }
  const models::model& local_model() const { return *model_; }

  /// Install the broadcast global parameters into the local copy.
  virtual void receive_global(const byte_buffer& global_parameters);

  /// Local training on the shard; returns the FedAvg update. Virtual so
  /// that malicious client variants (fl/poisoning.h) can substitute their
  /// own training loop without changing the protocol the server sees.
  virtual model_update local_update(const local_train_config& config);

protected:
  const std::vector<std::int64_t>& shard() const { return shard_; }
  const data::dataset& dataset() const { return *dataset_; }
  /// Rounds this client has participated in (advanced by local_update).
  std::int64_t local_round() const { return round_; }
  void advance_round() { ++round_; }

private:
  std::int64_t id_;
  std::unique_ptr<models::model> model_;
  std::vector<std::int64_t> shard_;
  const data::dataset* dataset_;
  std::int64_t round_ = 0;
};

/// A compromised node (Fig. 1): taps its own device memory for gradients.
/// With PELTA (`shielded = true`) the probe only sees the masked view and
/// falls back to the upsampling substitute.
class compromised_client final : public fl_client {
public:
  using fl_client::fl_client;

  attacks::attack_result craft_adversarial(const tensor& image, std::int64_t label, bool shielded,
                                           attacks::attack_kind kind,
                                           const attacks::suite_params& params,
                                           std::uint64_t seed) const;
};

}  // namespace pelta::fl
