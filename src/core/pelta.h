// PELTA public API.
//
// defended_model bundles a classifier with a TEE enclave and applies the
// PELTA shield on every pass: the quantities Algorithm 1 selects live in
// the enclave, inference still works end-to-end, and any attacker probe of
// the device memory goes through the masked view.
//
//   auto defended = pelta::defended_model{models::make_vit_b16_sim(task)};
//   defended.classify(image);                  // shielded inference
//   auto cost = defended.measure_shield_cost(image, /*with_gradients=*/true);
//   cost.tee_bytes / cost.shielded_portion     // Table I quantities
#pragma once

#include <memory>

#include "attacks/runner.h"
#include "models/model.h"
#include "shield/masked_view.h"
#include "tee/enclave.h"

namespace pelta {

/// Bare library version as configured by the build (major.minor.patch).
const char* version_string();

class defended_model {
public:
  explicit defended_model(std::unique_ptr<models::model> m,
                          std::int64_t enclave_capacity = tee::enclave::k_default_capacity);

  models::model& model() { return *model_; }
  const models::model& model() const { return *model_; }
  tee::enclave& enclave() { return enclave_; }
  const tee::enclave& enclave() const { return enclave_; }

  /// Shielded inference on one [C,H,W] image: the forward pass runs, the
  /// shield places the frontier quantities into the enclave, and the
  /// prediction (from the clear, deep part of the model) is returned.
  std::int64_t classify(const tensor& image);

  /// Batched shielded inference: predictions [N] for images [N,C,H,W] from
  /// ONE forward pass and ONE shield application — the enclave boundary is
  /// crossed per batch, not per request. Each prediction is bit-identical
  /// to classify() on that sample. This is the entry point the serving
  /// runtime (serve/server.h) amortizes TEE costs through.
  tensor classify_batch(const tensor& images);

  /// Table I quantities measured on a probe input. `with_gradients` models
  /// the FL training rounds, where the device also back-propagates (the
  /// paper's worst case: activations and gradients are not flushed).
  struct shield_cost {
    std::int64_t tee_bytes = 0;           ///< enclave memory used by the shield
    std::int64_t bytes_activations = 0;
    std::int64_t bytes_gradients = 0;
    std::int64_t bytes_parameters = 0;
    std::int64_t masked_parameters = 0;   ///< masked scalar parameters
    std::int64_t total_parameters = 0;
    double shielded_portion = 0.0;        ///< masked / total parameters
    std::int64_t masked_transforms = 0;
    std::int64_t jacobian_records = 0;
  };
  shield_cost measure_shield_cost(const tensor& probe_image, bool with_gradients);

  /// The attacker's oracle against this defended model (upsampling/BPDA).
  std::unique_ptr<attacks::gradient_oracle> attacker_oracle(std::uint64_t seed);

private:
  std::unique_ptr<models::model> model_;
  tee::enclave enclave_;
};

/// Library version string.
const char* version();

}  // namespace pelta
