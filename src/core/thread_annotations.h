// Clang Thread Safety Analysis annotation macros (no-op on GCC).
//
// The repo's locking story is small on purpose — the pool mutex, the serve
// ingress queue, the fl network counters, the HotCalls client lock, the
// batch-norm stats guard — and PR 2..6 keep it honest dynamically (the TSan
// CI leg) and lexically (pelta-lint R4/R6). These macros add the third,
// strongest layer: Clang's `-Wthread-safety` analysis proves at compile
// time that every field marked PELTA_GUARDED_BY is only touched with its
// named mutex held, and that every function marked PELTA_REQUIRES is only
// called under the right lock. The CI `clang-thread-safety` job builds the
// whole tree with `-Werror=thread-safety`, so lock-discipline misuse is a
// build break, not a flaky TSan repro.
//
// GCC has no equivalent attribute set, so everything expands to nothing
// there — which is why pelta-lint rule R6 exists: it checks, on any
// compiler, that mutex members are the annotated pelta::sync wrappers and
// that every mutex member actually names the fields it guards.
//
// Usage (see core/sync.h for the annotated mutex wrappers):
//
//   class account {
//     sync::mutex mutex_;
//     double balance_ PELTA_GUARDED_BY(mutex_) = 0.0;
//     void apply_locked(double d) PELTA_REQUIRES(mutex_);
//   };
//
// This header is a *vocabulary header*: it may be included from any
// subsystem without creating a layering edge (see docs/ARCHITECTURE.md,
// "Subsystem dependency DAG"), and in exchange it must include nothing
// from src/ itself. The layering pass enforces both directions.
#pragma once

#if defined(__clang__)
#define PELTA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PELTA_THREAD_ANNOTATION(x)  // no-op: GCC has no thread-safety analysis
#endif

/// Marks a class as a lockable capability ("mutex" is the diagnostics name).
#define PELTA_CAPABILITY(x) PELTA_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define PELTA_SCOPED_CAPABILITY PELTA_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding the named mutex.
#define PELTA_GUARDED_BY(x) PELTA_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is guarded by the named mutex.
#define PELTA_PT_GUARDED_BY(x) PELTA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function may only be called with the named mutex(es) already held.
#define PELTA_REQUIRES(...) PELTA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the named mutex(es) (no argument: the object itself).
#define PELTA_ACQUIRE(...) PELTA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the named mutex(es) (no argument: the object itself).
#define PELTA_RELEASE(...) PELTA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define PELTA_TRY_ACQUIRE(...) PELTA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called with the named mutex(es) NOT held (deadlock guard
/// for non-reentrant locks).
#define PELTA_EXCLUDES(...) PELTA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named mutex (accessor pattern).
#define PELTA_RETURN_CAPABILITY(x) PELTA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code whose synchronization the analysis cannot model
/// (hand-over-hand locking, locks passed by reference). Every use must carry
/// a justification comment and be listed in docs/ARCHITECTURE.md's
/// lock-discipline exceptions table.
#define PELTA_NO_THREAD_SAFETY_ANALYSIS PELTA_THREAD_ANNOTATION(no_thread_safety_analysis)
