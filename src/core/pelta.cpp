#include "core/pelta.h"

#include "autodiff/ops_loss.h"
#include "core/version.h"
#include "tensor/ops.h"

namespace pelta {

const char* version_string() { return PELTA_VERSION_STRING; }

defended_model::defended_model(std::unique_ptr<models::model> m, std::int64_t enclave_capacity)
    : model_{std::move(m)}, enclave_{enclave_capacity} {
  PELTA_CHECK_MSG(model_ != nullptr, "defended_model needs a model");
}

std::int64_t defended_model::classify(const tensor& image) {
  PELTA_CHECK_MSG(image.ndim() == 3, "classify expects [C,H,W]");
  shape_t batched{1};
  for (std::int64_t d : image.shape()) batched.push_back(d);
  models::forward_pass fp = model_->forward(image.reshape(batched), ad::norm_mode::eval);
  shield::pelta_shield_tags(fp.graph, model_->shield_frontier_tags(), &enclave_,
                            model_->name() + "/");
  return ops::argmax(fp.graph.value(fp.logits));
}

tensor defended_model::classify_batch(const tensor& images) {
  PELTA_CHECK_MSG(images.ndim() == 4, "classify_batch expects [N,C,H,W]");
  models::forward_pass fp = model_->forward(images, ad::norm_mode::eval);
  shield::pelta_shield_tags(fp.graph, model_->shield_frontier_tags(), &enclave_,
                            model_->name() + "/");
  return ops::argmax_lastdim(fp.graph.value(fp.logits));
}

defended_model::shield_cost defended_model::measure_shield_cost(const tensor& probe_image,
                                                                bool with_gradients) {
  PELTA_CHECK_MSG(probe_image.ndim() == 3, "probe image must be [C,H,W]");
  shape_t batched{1};
  for (std::int64_t d : probe_image.shape()) batched.push_back(d);
  models::forward_pass fp = model_->forward(probe_image.reshape(batched), ad::norm_mode::eval);

  if (with_gradients) {
    // FL training rounds: the device back-propagates a loss; use the
    // model's own prediction as the label (any label exercises the pass).
    const std::int64_t label = ops::argmax(fp.graph.value(fp.logits));
    const ad::node_id labels =
        fp.graph.add_constant(tensor{shape_t{1}, {static_cast<float>(label)}});
    const ad::node_id loss =
        fp.graph.add_transform(ad::make_cross_entropy(), {fp.logits, labels}, "probe_loss");
    fp.graph.backward(loss);
  }

  enclave_.clear();
  const shield::shield_report report = shield::pelta_shield_tags(
      fp.graph, model_->shield_frontier_tags(), &enclave_, model_->name() + "/");

  shield_cost cost;
  cost.tee_bytes = enclave_.used_bytes();
  cost.bytes_activations = report.bytes_activations;
  cost.bytes_gradients = report.bytes_gradients;
  cost.bytes_parameters = report.bytes_parameters;
  cost.masked_parameters = report.masked_param_scalars;
  cost.total_parameters = model_->parameter_count();
  cost.shielded_portion =
      static_cast<double>(cost.masked_parameters) / static_cast<double>(cost.total_parameters);
  cost.masked_transforms = static_cast<std::int64_t>(report.masked_transforms.size());
  cost.jacobian_records = static_cast<std::int64_t>(report.jacobians.size());
  return cost;
}

std::unique_ptr<attacks::gradient_oracle> defended_model::attacker_oracle(std::uint64_t seed) {
  return attacks::make_shielded_oracle(*model_, seed, &enclave_);
}

const char* version() { return "pelta " PELTA_VERSION_STRING " (ICDCS'23 reproduction)"; }

}  // namespace pelta
