// Plain-text table formatting for the benchmark binaries (paper-style rows).
#pragma once

#include <string>
#include <vector>

namespace pelta {

class text_table {
public:
  void set_header(std::vector<std::string> cells) { header_ = std::move(cells); }
  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }
  void add_separator() { rows_.push_back({}); }  // empty row renders as a rule

  std::string to_string() const;

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "57.2%" style percentage formatting (one decimal).
std::string pct(double fraction);

/// Human bytes: "15.16 MB" / "322.1 KB".
std::string human_bytes(std::int64_t bytes);

/// Fixed-precision float.
std::string fixed(double v, int digits);

}  // namespace pelta
