// The shared simulated-clock event queue.
//
// Before this header existed, every planner that walked the simulated clock
// hand-rolled its own event loop: fl/plan_async_schedule kept a
// priority_queue of (finish stamp, job index) pairs, serve/plan_batches
// stable-sorted arrival stamps, and each re-implemented the same two rules
// — the deterministic tie-break and the drain-on-shutdown boundary. This
// queue is the one implementation both planners (and the serve cluster
// planner on top of them) share:
//
//   * TOTAL ORDER. Events pop by (stamp_ns, id, seq) ascending. `id` is the
//     caller's tie-break key — a job index, a request id, an event-kind
//     priority — and `seq` (the push-call counter) is the last resort, so
//     two pushes that agree on stamp AND id still pop in push order. No
//     interleaving of pushes and pops can change what a given (stamp, id)
//     multiset pops as: the order is a pure function of the pushes.
//
//   * DRAIN-ON-SHUTDOWN, boundary INCLUSIVE. A queue may carry a shutdown
//     stamp (construction or close_at): an event stamped exactly AT the
//     shutdown stamp is still delivered — a flush scheduled at the same
//     instant the stream ends must happen — while anything stamped after it
//     is rejected and counted, never silently lost. This is the single
//     statement of the rule plan_batches (closed_by_drain) and
//     plan_async_schedule (final-flush horizon) previously duplicated;
//     tests/test_simclock.cpp pins the equal-stamp-still-flushes boundary
//     for both subsystems.
//
// Simulated-only by construction: stamps are caller-supplied doubles, and
// this file — like everything else in src/ — never reads a wall clock
// (pelta-lint R3 bans the OS time APIs here too; what R3 grants simclock
// alone is the *vocabulary*: outside this file and tensor/rng.h no src/
// code may even name time).
#pragma once

#include <cstdint>
#include <vector>

namespace pelta::core {

/// One scheduled event. `id` is the caller's deterministic tie-break key;
/// `seq` is the queue-assigned push-call counter (every push() call
/// consumes one, accepted or rejected, so seq doubles as a stable index
/// into whatever side table the caller keeps per push).
struct sim_event {
  double stamp_ns = 0.0;
  std::int64_t id = 0;
  std::uint64_t seq = 0;
};

/// Ascending (stamp_ns, id, seq) — the queue's total order, exposed so
/// reference implementations in tests can sort with the exact comparator.
inline bool sim_event_before(const sim_event& a, const sim_event& b) {
  if (a.stamp_ns != b.stamp_ns) return a.stamp_ns < b.stamp_ns;
  if (a.id != b.id) return a.id < b.id;
  return a.seq < b.seq;
}

class event_queue {
public:
  /// An open queue: no shutdown stamp, every finite push is accepted.
  event_queue();
  /// A queue that drains at `shutdown_ns`: pushes stamped <= shutdown_ns
  /// (inclusive) are accepted, later ones rejected and counted.
  explicit event_queue(double shutdown_ns);

  /// Schedule an event. Returns false (and counts the rejection) when the
  /// stamp lies beyond the shutdown boundary. Every call consumes one seq.
  /// Stamps must not be NaN (checked); +inf is only meaningful on an open
  /// queue.
  bool push(double stamp_ns, std::int64_t id);

  /// Smallest (stamp, id, seq) event. Checked: the queue must be non-empty.
  sim_event pop();
  /// Same event pop() would return, without removing it.
  const sim_event& peek() const;

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Install (or tighten) the shutdown stamp mid-stream: already-queued
  /// events stamped after it are dropped and counted alongside rejected
  /// pushes. The boundary stays inclusive — an event stamped exactly at
  /// `shutdown_ns` survives.
  void close_at(double shutdown_ns);

  bool closed() const { return closed_; }
  double shutdown_ns() const { return shutdown_ns_; }
  /// Pushes refused + queued events dropped by close_at. Nothing is lost
  /// silently: callers decide whether a non-zero count is an error.
  std::int64_t rejected() const { return rejected_; }
  /// Total push() calls (== the next seq to be assigned).
  std::uint64_t pushes() const { return next_seq_; }

private:
  std::vector<sim_event> heap_;  ///< binary min-heap under sim_event_before
  std::uint64_t next_seq_ = 0;
  double shutdown_ns_ = 0.0;
  bool closed_ = false;
  std::int64_t rejected_ = 0;
};

}  // namespace pelta::core
