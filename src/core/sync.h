// Annotated synchronization primitives — thin wrappers over std::mutex /
// std::condition_variable carrying the Clang Thread Safety attributes from
// core/thread_annotations.h.
//
// libstdc++'s std::mutex is not annotated as a capability, so Clang's
// `-Wthread-safety` cannot see a std::lock_guard<std::mutex> acquire
// anything — fields marked PELTA_GUARDED_BY would warn on every access.
// These wrappers make the lock visible to the analysis while compiling to
// the exact same code (every method is a single forwarded call). They are
// the ONLY way to hold a lock in src/: pelta-lint rule R6 rejects raw
// std::mutex / std::condition_variable members anywhere else, so a GCC-only
// build cannot quietly grow an unanalyzable lock.
//
// This is a *vocabulary header* like core/thread_annotations.h: any
// subsystem may include it without creating a layering edge, and it may
// include nothing from src/ except other vocabulary headers (enforced by
// the pelta-lint layering pass).
#pragma once

#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

namespace pelta::sync {

/// std::mutex as a Clang capability. `native()` exposes the underlying
/// handle for condition_variable, which needs a std::unique_lock<std::mutex>.
class PELTA_CAPABILITY("mutex") mutex {
public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() PELTA_ACQUIRE() { m_.lock(); }
  void unlock() PELTA_RELEASE() { m_.unlock(); }
  bool try_lock() PELTA_TRY_ACQUIRE(true) { return m_.try_lock(); }

  std::mutex& native() { return m_; }

private:
  std::mutex m_;
};

/// Scoped lock for the plain hold-for-the-whole-scope pattern.
class PELTA_SCOPED_CAPABILITY lock_guard {
public:
  explicit lock_guard(mutex& m) PELTA_ACQUIRE(m) : m_{m} { m_.lock(); }
  ~lock_guard() PELTA_RELEASE() { m_.unlock(); }

  lock_guard(const lock_guard&) = delete;
  lock_guard& operator=(const lock_guard&) = delete;

private:
  mutex& m_;
};

/// Scoped lock that can be dropped and re-taken mid-scope (the pool's
/// claim-release-execute-reacquire loop) and handed to condition_variable.
/// The analysis tracks the locked/unlocked state of locally constructed
/// instances through unlock()/lock() pairs.
class PELTA_SCOPED_CAPABILITY unique_lock {
public:
  explicit unique_lock(mutex& m) PELTA_ACQUIRE(m) : inner_{m.native()} {}
  ~unique_lock() PELTA_RELEASE() {}  // std::unique_lock skips the unlock if already released

  unique_lock(const unique_lock&) = delete;
  unique_lock& operator=(const unique_lock&) = delete;

  void lock() PELTA_ACQUIRE() { inner_.lock(); }
  void unlock() PELTA_RELEASE() { inner_.unlock(); }

  std::unique_lock<std::mutex>& native() { return inner_; }

private:
  std::unique_lock<std::mutex> inner_;
};

/// Condition variable over sync::unique_lock. wait() is deliberately
/// unannotated: it releases and re-acquires the lock internally, but always
/// returns with it held, so the caller's capability assumption stays valid
/// at every point the caller can observe. There is no predicate overload on
/// purpose — a predicate lambda is a separate function to the analysis and
/// would read guarded fields without a visible capability; write the
/// `while (!condition) cv.wait(lock);` loop in the annotated caller instead.
class condition_variable {
public:
  condition_variable() = default;
  condition_variable(const condition_variable&) = delete;
  condition_variable& operator=(const condition_variable&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }
  void wait(unique_lock& lock) { cv_.wait(lock.native()); }

private:
  std::condition_variable cv_;
};

}  // namespace pelta::sync
