#include "core/table.h"

#include <cstdio>
#include <sstream>

namespace pelta {

std::string text_table::to_string() const {
  std::vector<std::size_t> widths;
  const auto grow = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 3;

  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << c << std::string(widths[i] - c.size() + (i + 1 < widths.size() ? 3 : 0), ' ');
    }
    os << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) {
    if (row.empty())
      os << std::string(total, '-') << '\n';
    else
      emit(row);
  }
  return os.str();
}

std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string human_bytes(std::int64_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024)
    std::snprintf(buf, sizeof(buf), "%.2f MB", static_cast<double>(bytes) / (1024.0 * 1024.0));
  else if (bytes >= 1024)
    std::snprintf(buf, sizeof(buf), "%.1f KB", static_cast<double>(bytes) / 1024.0);
  else
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  return buf;
}

std::string fixed(double v, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace pelta
