#include "core/simclock.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace pelta::core {

namespace {

// std::push_heap/pop_heap build a MAX-heap under the comparator, so feed
// them the inverted order to get the min-(stamp, id, seq) element on top.
bool heap_after(const sim_event& a, const sim_event& b) { return sim_event_before(b, a); }

}  // namespace

event_queue::event_queue() = default;

event_queue::event_queue(double shutdown_ns) : shutdown_ns_{shutdown_ns}, closed_{true} {
  PELTA_CHECK_MSG(!std::isnan(shutdown_ns), "event_queue shutdown stamp is NaN");
}

bool event_queue::push(double stamp_ns, std::int64_t id) {
  PELTA_CHECK_MSG(!std::isnan(stamp_ns), "event stamp is NaN");
  const std::uint64_t seq = next_seq_++;
  // Inclusive boundary: an event stamped exactly at shutdown still drains.
  if (closed_ && stamp_ns > shutdown_ns_) {
    ++rejected_;
    return false;
  }
  heap_.push_back(sim_event{stamp_ns, id, seq});
  std::push_heap(heap_.begin(), heap_.end(), heap_after);
  return true;
}

sim_event event_queue::pop() {
  PELTA_CHECK_MSG(!heap_.empty(), "pop() on an empty event_queue");
  std::pop_heap(heap_.begin(), heap_.end(), heap_after);
  const sim_event out = heap_.back();
  heap_.pop_back();
  return out;
}

const sim_event& event_queue::peek() const {
  PELTA_CHECK_MSG(!heap_.empty(), "peek() on an empty event_queue");
  return heap_.front();
}

void event_queue::close_at(double shutdown_ns) {
  PELTA_CHECK_MSG(!std::isnan(shutdown_ns), "event_queue shutdown stamp is NaN");
  PELTA_CHECK_MSG(!closed_ || shutdown_ns <= shutdown_ns_,
                  "close_at may only tighten an existing shutdown stamp");
  closed_ = true;
  shutdown_ns_ = shutdown_ns;
  const auto beyond = [&](const sim_event& e) { return e.stamp_ns > shutdown_ns_; };
  const auto it = std::remove_if(heap_.begin(), heap_.end(), beyond);
  rejected_ += static_cast<std::int64_t>(heap_.end() - it);
  heap_.erase(it, heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), heap_after);
}

}  // namespace pelta::core
