#include "tee/profiles.h"

namespace pelta::tee {

tee_profile profile(tee_profile_kind kind) {
  tee_profile p;
  switch (kind) {
    case tee_profile_kind::trustzone_optee:
      p.name = "TrustZone/OP-TEE";
      p.costs.world_switch_ns = 4'000.0;   // SMC + OP-TEE dispatch (Amacher & Schiavoni)
      p.costs.per_byte_ns = 0.8;
      p.costs.seal_per_byte_ns = 1.6;
      p.capacity_bytes = 30ll * 1024 * 1024;  // the paper's ≈30 MB scenario
      break;
    case tee_profile_kind::sgx_classic:
      p.name = "SGX (ecall/ocall)";
      p.costs.world_switch_ns = 10'000.0;  // ecall incl. TLB flush (Weisse et al. baseline)
      p.costs.per_byte_ns = 1.6;           // MEE encryption on every EPC line
      p.costs.seal_per_byte_ns = 3.2;
      p.capacity_bytes = 93ll * 1024 * 1024;  // usable EPC of classic SGX
      break;
    case tee_profile_kind::sgx_hotcalls:
      p.name = "SGX + HotCalls";
      p.costs.world_switch_ns = 620.0;  // polled shared-slot call (Weisse et al.)
      p.costs.per_byte_ns = 1.6;
      p.costs.seal_per_byte_ns = 3.2;
      p.capacity_bytes = 93ll * 1024 * 1024;
      break;
  }
  return p;
}

std::vector<tee_profile_kind> all_profiles() {
  return {tee_profile_kind::trustzone_optee, tee_profile_kind::sgx_classic,
          tee_profile_kind::sgx_hotcalls};
}

enclave make_enclave(tee_profile_kind kind) {
  const tee_profile p = profile(kind);
  return enclave{p.capacity_bytes, p.costs};
}

}  // namespace pelta::tee
