// Remote attestation stub (WaTZ-style, paper ref [22]): a verifier sends a
// nonce, the enclave answers with a quote binding its current measurement
// to that nonce. The FL server uses this to check that a client's PELTA
// enclave really holds the expected shielded state before trusting its
// updates.
#pragma once

#include "tee/enclave.h"

namespace pelta::tee {

struct quote {
  std::uint64_t measurement = 0;  ///< enclave content hash at quote time
  std::uint64_t nonce = 0;        ///< verifier's challenge
  std::uint64_t signature = 0;    ///< binds (measurement, nonce); simulation-grade
};

/// Produce a quote over the enclave's current contents for `nonce`.
quote issue_quote(const enclave& e, std::uint64_t nonce);

/// Verify a quote against an expected measurement and the challenge nonce.
/// Returns false on any mismatch or a forged signature.
bool verify_quote(const quote& q, std::uint64_t expected_measurement, std::uint64_t nonce);

}  // namespace pelta::tee
