// Enclave data sealing: authenticated encryption-at-rest for blobs that
// leave secure memory (e.g. persisted shielded weights between FL rounds).
//
// This is a *simulation-grade* cipher (keystream XOR + FNV-1a tag), not a
// cryptographic primitive: it exercises the seal/unseal/verify code paths
// and fails loudly on tampering, which is what the tests and the FL
// substrate need from it.
#pragma once

#include <cstdint>

#include "tensor/serialize.h"

namespace pelta::tee {

struct sealed_blob {
  byte_buffer ciphertext;
  std::uint64_t tag = 0;  ///< integrity tag over the plaintext
};

/// Seal a buffer under a 64-bit enclave key.
sealed_blob seal(const byte_buffer& plaintext, std::uint64_t key);

/// Unseal and verify; throws pelta::error on a bad tag (tampering).
byte_buffer unseal(const sealed_blob& blob, std::uint64_t key);

/// FNV-1a 64-bit hash (also used for enclave measurement).
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n, std::uint64_t seed = 0xcbf29ce484222325ull);

}  // namespace pelta::tee
