#include "tee/update_channel.h"

#include "tensor/ops.h"

namespace pelta::tee {

secure_update_channel::secure_update_channel(enclave& e, std::int64_t pull_period,
                                             const std::string& key_prefix)
    : enclave_{&e}, pull_period_{pull_period}, prefix_{key_prefix} {
  PELTA_CHECK_MSG(pull_period >= 1, "pull_period must be >= 1");
}

void secure_update_channel::push_batch(const std::vector<tensor>& frontier_grads) {
  PELTA_CHECK_MSG(!frontier_grads.empty(), "push_batch with no gradients");
  if (slots_ < 0) slots_ = static_cast<std::int64_t>(frontier_grads.size());
  PELTA_CHECK_MSG(static_cast<std::int64_t>(frontier_grads.size()) == slots_,
                  "push_batch tensor count changed mid-stream");

  // The gradients are *produced* inside the enclave during the shielded
  // backward pass — accumulating them is secure-world work, no boundary
  // crossing happens here. The sum is Kahan-compensated: a plain float
  // accumulator drifts over large pull_periods (each add of a small
  // gradient into a large sum sheds its low-order bits), while the
  // compensation slot carries those bits so the averaged pull stays at
  // double-reference precision.
  const secure_session session{*enclave_};
  for (std::size_t i = 0; i < frontier_grads.size(); ++i) {
    const std::string key = prefix_ + ".acc." + std::to_string(i);
    const std::string comp_key = prefix_ + ".comp." + std::to_string(i);
    if (pending_ == 0) {
      enclave_->store(key, frontier_grads[i]);
      enclave_->store(comp_key, tensor::zeros(frontier_grads[i].shape()));
    } else {
      const tensor& acc = enclave_->load(key);
      PELTA_CHECK_MSG(acc.same_shape(frontier_grads[i]),
                      "frontier gradient " << i << " changed shape mid-stream");
      const tensor y = ops::sub(frontier_grads[i], enclave_->load(comp_key));
      const tensor t = ops::add(acc, y);
      enclave_->store(comp_key, ops::sub(ops::sub(t, acc), y));
      enclave_->store(key, t);
    }
  }
  ++pending_;
  ++total_batches_;
}

std::vector<tensor> secure_update_channel::pull() {
  PELTA_CHECK_MSG(pending_ > 0, "pull() with no accumulated batches");
  std::vector<tensor> out;
  out.reserve(static_cast<std::size_t>(slots_));

  std::int64_t bytes = 0;
  {
    const secure_session session{*enclave_};
    const float inv = 1.0f / static_cast<float>(pending_);
    for (std::int64_t i = 0; i < slots_; ++i) {
      const std::string key = prefix_ + ".acc." + std::to_string(i);
      out.push_back(ops::mul_scalar(enclave_->load(key), inv));
      bytes += out.back().byte_size();  // only the average crosses; the
                                        // compensation slot never leaves
      enclave_->erase(key);
      enclave_->erase(prefix_ + ".comp." + std::to_string(i));
    }
  }
  // The averaged update crosses to the normal world for the FL upload.
  enclave_->charge_ns(static_cast<double>(bytes) * enclave_->costs().per_byte_ns);
  bytes_pulled_ += bytes;
  ++pulls_;
  pending_ = 0;
  return out;
}

}  // namespace pelta::tee
