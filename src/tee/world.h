// TrustZone-style execution worlds and the §VI cost model.
//
// The simulator charges a fixed latency per normal↔secure world switch and
// a per-byte marshalling cost for data crossing the boundary — the two
// overhead sources the paper's System Implications section discusses.
// Defaults follow the µs-scale figures of the papers cited there
// (Amacher & Schiavoni 2019; Weisse et al. 2017; Mukherjee et al. 2019).
#pragma once

#include <cstdint>

namespace pelta::tee {

enum class world : std::uint8_t {
  normal,  ///< rich OS side — the attacker's vantage point
  secure,  ///< enclave side — PELTA's shielded quantities live here
};

/// Latency model for simulated TEE operations (values in nanoseconds).
struct cost_model {
  double world_switch_ns = 4'000.0;   ///< one SMC/ecall-style transition (~4 µs)
  double per_byte_ns = 0.8;           ///< encrypt+copy across the boundary
  double seal_per_byte_ns = 1.6;      ///< sealing (encryption-at-rest) cost
  double hotcall_ns = 620.0;          ///< one switchless call handoff (Weisse et al.)
};

/// Counters accumulated by the enclave simulator.
struct tee_stats {
  std::int64_t world_switches = 0;
  std::int64_t bytes_in = 0;    ///< normal -> secure
  std::int64_t bytes_out = 0;   ///< secure -> normal
  std::int64_t stores = 0;
  std::int64_t loads = 0;
  std::int64_t denied_accesses = 0;  ///< attacker reads rejected by access control
  double simulated_ns = 0.0;         ///< total modeled latency
};

}  // namespace pelta::tee
