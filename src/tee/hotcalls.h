// Switchless enclave calls — HotCalls (Weisse et al., ISCA'17), the
// optimization §VI points at when it notes that "minimizing context
// switches is an important optimization technique in the design of TEE
// applications".
//
// Instead of paying an ecall/SMC world switch per operation, a dedicated
// worker thread stays inside the enclave and polls a shared request slot.
// The normal world publishes a request, spins until the worker marks it
// done, and never transitions privilege levels. This file implements the
// mechanism for real (an SPSC slot on C++ atomics with acquire/release
// hand-off, served by an actual worker thread), while the latency model
// charges the measured-in-literature ≈0.6 µs per call instead of the
// multi-µs switch.
//
// Discipline: while a hotcall_server is attached, ALL enclave operations
// must go through it (the worker owns the enclave; this is exactly the
// single-consumer assumption HotCalls make).
#pragma once

#include <atomic>
#include <optional>
#include <thread>

#include "core/sync.h"
#include "tee/enclave.h"

namespace pelta::tee {

struct hotcall_stats {
  std::int64_t calls = 0;
  std::int64_t worker_polls = 0;  ///< spin iterations on the worker side
  double simulated_ns = 0.0;      ///< modeled cost of all calls (handoff + bytes)
};

class hotcall_server {
public:
  /// Takes the enclave into the secure world (one world switch) and starts
  /// the polling worker. The enclave must currently be in the normal world.
  explicit hotcall_server(enclave& e);

  /// Stops the worker, returns the enclave to the normal world.
  ~hotcall_server();

  hotcall_server(const hotcall_server&) = delete;
  hotcall_server& operator=(const hotcall_server&) = delete;

  // ---- normal-world call interface (thread-safe, serialized) -----------------

  /// Store `value` under `key` inside the enclave.
  void store(const std::string& key, const tensor& value);

  /// Privileged read-back of an enclave entry. The worker executes the load
  /// in the secure world; the result is copied out through the shared slot
  /// (charged per byte). Throws whatever the enclave op threw.
  tensor load(const std::string& key);

  bool contains(const std::string& key);
  void erase(const std::string& key);

  hotcall_stats statistics() const;

private:
  enum class op : std::uint8_t { store, load, contains, erase };
  enum class slot_state : int { empty, ready, done };

  struct request {
    op kind = op::store;
    std::string key;
    const tensor* in = nullptr;
    std::optional<tensor> out;
    bool flag = false;
    std::string error_message;
  };

  void worker_loop();
  void call(request& r) PELTA_EXCLUDES(client_mutex_);

  enclave* enclave_;
  // The HotCalls design point: a dedicated thread parked INSIDE the enclave
  // for the server's lifetime. It cannot be a pool task — pool workers are
  // normal-world and a task would pin one for the whole session.
  std::thread worker_;  // pelta-lint: allow(R4) enclave-resident HotCalls worker, not pool work
  std::atomic<slot_state> state_{slot_state::empty};
  std::atomic<bool> stop_{false};
  // slot_ carries no GUARDED_BY: the worker reads it without client_mutex_,
  // synchronized instead by the state_ acquire/release handoff (publish
  // happens-before ready, done happens-before the client's next touch).
  request* slot_ = nullptr;  // published by call(), consumed by the worker
  mutable sync::mutex client_mutex_;  // serializes normal-world callers (SPSC slot)
  std::atomic<std::int64_t> worker_polls_{0};
  std::int64_t calls_ PELTA_GUARDED_BY(client_mutex_) = 0;
  double simulated_ns_ PELTA_GUARDED_BY(client_mutex_) = 0.0;
};

}  // namespace pelta::tee
