// Named TEE cost/capacity profiles (§VI system implications).
//
// The paper's defense targets Arm TrustZone but its discussion (and the
// cited measurements — Amacher & Schiavoni for TrustZone/OP-TEE, Weisse et
// al.'s HotCalls for SGX, Costan & Devadas for SGX itself) spans both
// architectures. A profile packages the boundary-crossing cost model with
// the enclave capacity, so every §VI bench can be replayed per platform:
//
//   trustzone_optee — SMC world switch ≈ 4 µs, secure memory ≈ 30 MB (the
//                     constraint that motivates PELTA's partial shielding)
//   sgx_classic     — ecall/ocall ≈ 10 µs (TLB shootdown included), usable
//                     EPC ≈ 93 MB, costlier per-byte (MEE encryption)
//   sgx_hotcalls    — Weisse et al.'s switchless calls: a worker thread
//                     inside the enclave polls a shared request slot, so a
//                     call costs ≈ 0.6 µs and no context switch
#pragma once

#include <string>

#include "tee/enclave.h"

namespace pelta::tee {

enum class tee_profile_kind : std::uint8_t { trustzone_optee, sgx_classic, sgx_hotcalls };

struct tee_profile {
  std::string name;
  cost_model costs;
  std::int64_t capacity_bytes = 0;
};

tee_profile profile(tee_profile_kind kind);

/// All profiles, for sweeps.
std::vector<tee_profile_kind> all_profiles();

/// Construct an enclave configured per profile.
enclave make_enclave(tee_profile_kind kind);

}  // namespace pelta::tee
