// TrustZone-like enclave simulator.
//
// A capacity-capped secure memory region holding named tensors. Access
// control is world-based: loads from the normal world are denied (this is
// the attacker's vantage point — exactly the guarantee PELTA builds on),
// loads from within a secure session succeed. Every boundary crossing and
// byte transferred is accounted against the §VI cost model, and the
// capacity cap enforces the TrustZone ≈ 30 MB constraint that motivates
// PELTA's partial-shielding design.
#pragma once

#include <map>
#include <string>

#include "tee/sealing.h"
#include "tee/world.h"
#include "tensor/tensor.h"

namespace pelta::tee {

/// Raised when normal-world code reads enclave-resident data.
class enclave_access_error : public error {
public:
  using error::error;
};

/// Raised when a store would exceed the enclave capacity.
class enclave_capacity_error : public error {
public:
  using error::error;
};

class enclave {
public:
  /// TrustZone secure memory is limited — up to ~30 MB in the scenarios the
  /// paper cites — hence the default capacity.
  static constexpr std::int64_t k_default_capacity = 30ll * 1024 * 1024;

  explicit enclave(std::int64_t capacity_bytes = k_default_capacity, cost_model costs = {});

  // ---- world management -----------------------------------------------------

  world current_world() const { return world_; }
  void enter_secure();  ///< counts a world switch
  void exit_secure();   ///< counts a world switch

  // ---- secure storage ---------------------------------------------------------

  /// Store a tensor under `key` (replaces an existing entry). Charged as a
  /// normal->secure transfer when invoked from the normal world.
  void store(const std::string& key, const tensor& value);

  /// Read back a stored tensor. Requires the secure world: from the normal
  /// world this throws enclave_access_error (and counts a denied access) —
  /// the attacker-facing behaviour PELTA's masking relies on.
  const tensor& load(const std::string& key) const;

  bool contains(const std::string& key) const;
  void erase(const std::string& key);
  void clear();

  std::int64_t used_bytes() const { return used_bytes_; }
  std::int64_t capacity_bytes() const { return capacity_; }
  std::int64_t entry_count() const { return static_cast<std::int64_t>(store_.size()); }
  std::vector<std::string> keys() const;

  // ---- sealing / attestation ---------------------------------------------------

  /// Seal a stored entry for export (encrypted under the enclave key).
  sealed_blob seal_entry(const std::string& key) const;
  /// Import a sealed entry (verifies integrity).
  void import_sealed(const std::string& key, const sealed_blob& blob);

  /// Measurement over the enclave contents (attestation stub): hash of all
  /// keys and payloads, order-independent of insertion history.
  std::uint64_t measurement() const;

  const tee_stats& statistics() const { return stats_; }
  void reset_statistics() { stats_ = {}; }
  const cost_model& costs() const { return costs_; }

  /// Charge extra modeled latency (used by the switchless-call layer, whose
  /// handoffs bypass the per-operation world-switch charging).
  void charge_ns(double ns) { stats_.simulated_ns += ns; }

private:
  std::int64_t capacity_;
  cost_model costs_;
  std::uint64_t sealing_key_;
  world world_ = world::normal;
  std::map<std::string, tensor> store_;
  std::int64_t used_bytes_ = 0;
  mutable tee_stats stats_;
};

/// RAII secure-world session: enter on construction, exit on destruction.
class secure_session {
public:
  explicit secure_session(enclave& e) : enclave_{e} { enclave_.enter_secure(); }
  ~secure_session() { enclave_.exit_secure(); }
  secure_session(const secure_session&) = delete;
  secure_session& operator=(const secure_session&) = delete;

private:
  enclave& enclave_;
};

}  // namespace pelta::tee
