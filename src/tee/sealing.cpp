#include "tee/sealing.h"

#include "tensor/check.h"

namespace pelta::tee {

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

// splitmix64 keystream
std::uint64_t next_key(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void xor_keystream(byte_buffer& buf, std::uint64_t key) {
  std::uint64_t state = key;
  std::uint64_t block = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (i % 8 == 0) block = next_key(state);
    buf[i] ^= static_cast<std::uint8_t>(block >> ((i % 8) * 8));
  }
}

}  // namespace

sealed_blob seal(const byte_buffer& plaintext, std::uint64_t key) {
  sealed_blob blob;
  blob.tag = fnv1a(plaintext.data(), plaintext.size(), key);
  blob.ciphertext = plaintext;
  xor_keystream(blob.ciphertext, key);
  return blob;
}

byte_buffer unseal(const sealed_blob& blob, std::uint64_t key) {
  byte_buffer plain = blob.ciphertext;
  xor_keystream(plain, key);
  const std::uint64_t tag = fnv1a(plain.data(), plain.size(), key);
  PELTA_CHECK_MSG(tag == blob.tag, "sealed blob failed integrity verification");
  return plain;
}

}  // namespace pelta::tee
