#include "tee/hotcalls.h"

namespace pelta::tee {

hotcall_server::hotcall_server(enclave& e) : enclave_{&e} {
  PELTA_CHECK_MSG(e.current_world() == world::normal,
                  "hotcall_server expects the enclave in the normal world");
  // One switch for the worker's lifetime instead of two per operation.
  enclave_->enter_secure();
  // pelta-lint: allow(R4) enclave-resident HotCalls worker, not pool work
  worker_ = std::thread{[this] { worker_loop(); }};
}

hotcall_server::~hotcall_server() {
  stop_.store(true, std::memory_order_release);
  worker_.join();
  enclave_->exit_secure();
}

void hotcall_server::worker_loop() {
  for (;;) {
    if (state_.load(std::memory_order_acquire) == slot_state::ready) {
      request& r = *slot_;
      try {
        switch (r.kind) {
          case op::store:
            enclave_->store(r.key, *r.in);
            break;
          case op::load:
            r.out = enclave_->load(r.key);
            break;
          case op::contains:
            r.flag = enclave_->contains(r.key);
            break;
          case op::erase:
            enclave_->erase(r.key);
            break;
        }
      } catch (const std::exception& ex) {
        r.error_message = ex.what();
      }
      state_.store(slot_state::done, std::memory_order_release);
    } else {
      if (stop_.load(std::memory_order_acquire)) return;
      worker_polls_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  }
}

void hotcall_server::call(request& r) {
  const sync::lock_guard lock{client_mutex_};
  slot_ = &r;
  state_.store(slot_state::ready, std::memory_order_release);
  while (state_.load(std::memory_order_acquire) != slot_state::done) std::this_thread::yield();
  state_.store(slot_state::empty, std::memory_order_release);

  // Modeled cost: one polled handoff plus the bytes that crossed the slot.
  std::int64_t bytes = 0;
  if (r.in != nullptr) bytes += r.in->byte_size();
  if (r.out.has_value()) bytes += r.out->byte_size();
  const double ns =
      enclave_->costs().hotcall_ns + static_cast<double>(bytes) * enclave_->costs().per_byte_ns;
  simulated_ns_ += ns;
  enclave_->charge_ns(ns);
  ++calls_;

  if (!r.error_message.empty()) throw error{r.error_message};
}

void hotcall_server::store(const std::string& key, const tensor& value) {
  request r;
  r.kind = op::store;
  r.key = key;
  r.in = &value;
  call(r);
}

tensor hotcall_server::load(const std::string& key) {
  request r;
  r.kind = op::load;
  r.key = key;
  call(r);
  PELTA_CHECK_MSG(r.out.has_value(), "hotcall load returned nothing");
  return std::move(*r.out);
}

bool hotcall_server::contains(const std::string& key) {
  request r;
  r.kind = op::contains;
  r.key = key;
  call(r);
  return r.flag;
}

void hotcall_server::erase(const std::string& key) {
  request r;
  r.kind = op::erase;
  r.key = key;
  call(r);
}

hotcall_stats hotcall_server::statistics() const {
  // calls_ / simulated_ns_ are written by call() under client_mutex_; reading
  // them lock-free here raced concurrent callers (surfaced by the clang
  // thread-safety sweep — the serve enclave_session meters per-batch deltas
  // through this accessor while producers may still be pushing).
  const sync::lock_guard lock{client_mutex_};
  hotcall_stats s;
  s.calls = calls_;
  s.worker_polls = worker_polls_.load(std::memory_order_relaxed);
  s.simulated_ns = simulated_ns_;
  return s;
}

}  // namespace pelta::tee
