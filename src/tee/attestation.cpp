#include "tee/attestation.h"

namespace pelta::tee {

namespace {

// Simulation-grade MAC over (measurement, nonce). A real deployment uses
// the TEE's attestation key; the tests only need unforgeability against
// accidental misuse, not cryptographic strength.
std::uint64_t sign(std::uint64_t measurement, std::uint64_t nonce) {
  std::uint8_t buf[16];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(measurement >> (i * 8));
  for (int i = 0; i < 8; ++i) buf[8 + i] = static_cast<std::uint8_t>(nonce >> (i * 8));
  return fnv1a(buf, sizeof(buf), 0xa77e57a7e5ull);
}

}  // namespace

quote issue_quote(const enclave& e, std::uint64_t nonce) {
  quote q;
  q.measurement = e.measurement();
  q.nonce = nonce;
  q.signature = sign(q.measurement, nonce);
  return q;
}

bool verify_quote(const quote& q, std::uint64_t expected_measurement, std::uint64_t nonce) {
  if (q.measurement != expected_measurement) return false;
  if (q.nonce != nonce) return false;
  return q.signature == sign(q.measurement, q.nonce);
}

}  // namespace pelta::tee
