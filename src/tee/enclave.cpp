#include "tee/enclave.h"

namespace pelta::tee {

enclave::enclave(std::int64_t capacity_bytes, cost_model costs)
    : capacity_{capacity_bytes}, costs_{costs} {
  PELTA_CHECK_MSG(capacity_bytes > 0, "enclave capacity must be positive");
  // Per-instance sealing key (derived, not secret — simulation only).
  sealing_key_ = fnv1a(reinterpret_cast<const std::uint8_t*>(&capacity_), sizeof(capacity_),
                       0x7ee5ec0de5ull);
}

void enclave::enter_secure() {
  PELTA_CHECK_MSG(world_ == world::normal, "already in the secure world");
  world_ = world::secure;
  ++stats_.world_switches;
  stats_.simulated_ns += costs_.world_switch_ns;
}

void enclave::exit_secure() {
  PELTA_CHECK_MSG(world_ == world::secure, "not in the secure world");
  world_ = world::normal;
  ++stats_.world_switches;
  stats_.simulated_ns += costs_.world_switch_ns;
}

void enclave::store(const std::string& key, const tensor& value) {
  const std::int64_t incoming = value.byte_size();
  std::int64_t delta = incoming;
  auto it = store_.find(key);
  if (it != store_.end()) delta -= it->second.byte_size();
  if (used_bytes_ + delta > capacity_) {
    std::ostringstream os;
    os << "enclave capacity exceeded: " << used_bytes_ + delta << " > " << capacity_
       << " bytes while storing '" << key << "'";
    throw enclave_capacity_error{os.str()};
  }

  if (world_ == world::normal) {
    // Data crossing into secure memory: charged as an ecall-style transfer.
    stats_.simulated_ns +=
        2 * costs_.world_switch_ns + static_cast<double>(incoming) * costs_.per_byte_ns;
    stats_.world_switches += 2;
  }
  stats_.bytes_in += incoming;
  ++stats_.stores;
  store_[key] = value;
  used_bytes_ += delta;
}

const tensor& enclave::load(const std::string& key) const {
  if (world_ != world::secure) {
    ++stats_.denied_accesses;
    throw enclave_access_error{"enclave access denied from the normal world: '" + key + "'"};
  }
  auto it = store_.find(key);
  PELTA_CHECK_MSG(it != store_.end(), "no enclave entry named '" << key << "'");
  ++stats_.loads;
  stats_.bytes_out += it->second.byte_size();
  return it->second;
}

bool enclave::contains(const std::string& key) const { return store_.count(key) != 0; }

void enclave::erase(const std::string& key) {
  auto it = store_.find(key);
  if (it == store_.end()) return;
  used_bytes_ -= it->second.byte_size();
  store_.erase(it);
}

void enclave::clear() {
  store_.clear();
  used_bytes_ = 0;
}

std::vector<std::string> enclave::keys() const {
  std::vector<std::string> out;
  out.reserve(store_.size());
  for (const auto& [k, v] : store_) out.push_back(k);
  return out;
}

sealed_blob enclave::seal_entry(const std::string& key) const {
  auto it = store_.find(key);
  PELTA_CHECK_MSG(it != store_.end(), "no enclave entry named '" << key << "'");
  const byte_buffer plain = to_bytes(it->second);
  stats_.simulated_ns += static_cast<double>(plain.size()) * costs_.seal_per_byte_ns;
  return seal(plain, sealing_key_);
}

void enclave::import_sealed(const std::string& key, const sealed_blob& blob) {
  const byte_buffer plain = unseal(blob, sealing_key_);
  stats_.simulated_ns += static_cast<double>(plain.size()) * costs_.seal_per_byte_ns;
  store(key, from_bytes(plain));
}

std::uint64_t enclave::measurement() const {
  // Deterministic: std::map iterates keys in sorted order.
  std::uint64_t h = 0x5ee1d0c0de5ull;
  for (const auto& [k, v] : store_) {
    h = fnv1a(reinterpret_cast<const std::uint8_t*>(k.data()), k.size(), h);
    h = fnv1a(reinterpret_cast<const std::uint8_t*>(v.data().data()),
              v.data().size() * sizeof(float), h);
  }
  return h;
}

}  // namespace pelta::tee
