// The §VI training-phase bandwidth knob.
//
// "Inside the enclave, gradients which were not generated during regular
// end-user inference are now being computed: these gradients seldom need to
// be read from within the enclave in order to be sent for aggregation ...
// the frequency at which the weight updates are pulled out of the enclave
// could be lowered to allow averaging hidden gradients over larger batches
// on the client nodes."
//
// secure_update_channel implements exactly that: per training batch the
// shielded frontier gradients are accumulated inside the enclave; only
// every `pull_period` batches does the averaged update cross the boundary
// for the FL upload. The bench sweeps pull_period and reports the §VI
// quantities — boundary bytes, world switches, modeled latency — per
// training round.
#pragma once

#include <vector>

#include "tee/enclave.h"

namespace pelta::tee {

class secure_update_channel {
public:
  /// `pull_period` >= 1 batches between boundary crossings.
  secure_update_channel(enclave& e, std::int64_t pull_period,
                        const std::string& key_prefix = "channel");

  /// Accumulate one batch's frontier gradients inside the enclave
  /// (Kahan-compensated, so large pull_periods don't drift the float sum).
  /// All calls must pass the same number of tensors with stable shapes.
  /// Note: compensation doubles the channel's secure-memory footprint while
  /// a window is open (one same-shape slot per accumulator — the cost any
  /// double-precision accumulation would also pay against the ~30 MB cap);
  /// pull() releases both slots.
  void push_batch(const std::vector<tensor>& frontier_grads);

  /// True when `pull_period` batches have accumulated since the last pull.
  bool ready() const { return pending_ >= pull_period_; }

  /// Averaged accumulated gradients, crossing secure -> normal (charged:
  /// two world switches plus per-byte marshalling); resets the accumulator.
  /// Callable early (flush at end of round) as long as >= 1 batch pushed.
  std::vector<tensor> pull();

  std::int64_t pull_period() const { return pull_period_; }
  std::int64_t pending_batches() const { return pending_; }
  std::int64_t total_batches() const { return total_batches_; }
  std::int64_t pulls() const { return pulls_; }
  /// Bytes that crossed secure -> normal through this channel.
  std::int64_t bytes_pulled() const { return bytes_pulled_; }

private:
  enclave* enclave_;
  std::int64_t pull_period_;
  std::string prefix_;
  std::int64_t slots_ = -1;  ///< tensors per batch, fixed by the first push
  std::int64_t pending_ = 0;
  std::int64_t total_batches_ = 0;
  std::int64_t pulls_ = 0;
  std::int64_t bytes_pulled_ = 0;
};

}  // namespace pelta::tee
