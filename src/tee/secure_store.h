// Write ports into secure memory — the session/hot-call accounting hook the
// serving runtime batches TEE costs through.
//
// The shield (shield/shield.h) stores every masked tensor through this
// interface instead of a concrete enclave, so the caller chooses the
// transition mechanism and therefore the cost model:
//
//   ecall_store   — per-operation stores; each one issued from the normal
//                   world pays the two world switches of an ecall/SMC-style
//                   transition (the per-request deployment of core/pelta.h).
//   hotcall_store — stores routed through a running hotcall_server whose
//                   worker stays inside the enclave; a store costs one
//                   ≈0.6 µs switchless handoff (Weisse et al.). The serving
//                   runtime (serve/session.h) keeps one such session open
//                   per enclave so shield traffic is charged per *batch*,
//                   not per request.
#pragma once

#include "tee/enclave.h"
#include "tee/hotcalls.h"

namespace pelta::tee {

/// Abstract write port: something that can place a named tensor in secure
/// memory. Implementations decide how the boundary crossing is paid for.
class secure_store {
public:
  virtual ~secure_store() = default;
  virtual void store(const std::string& key, const tensor& value) = 0;
};

/// Direct enclave stores (ecall-style): two world switches plus per-byte
/// marshalling are charged for every operation issued from the normal world.
class ecall_store final : public secure_store {
public:
  explicit ecall_store(enclave& e) : enclave_{&e} {}
  void store(const std::string& key, const tensor& value) override { enclave_->store(key, value); }

private:
  enclave* enclave_;
};

/// Switchless stores through an attached hotcall_server: the enclave stays
/// in the secure world for the server's lifetime and each store costs one
/// polled handoff instead of a switch pair.
class hotcall_store final : public secure_store {
public:
  explicit hotcall_store(hotcall_server& server) : server_{&server} {}
  void store(const std::string& key, const tensor& value) override { server_->store(key, value); }

private:
  hotcall_server* server_;
};

}  // namespace pelta::tee
