// Attacks against software input-transformation defenses (§VII study).
//
// Athalye et al. [35] — the same paper the PELTA design confronts in
// §IV-C — give the two standard counters to software defenses:
//
//   * BPDA:  a gradient-shattering transform (quantization, JPEG) is
//            treated as the identity on the backward pass; the gradient is
//            evaluated at the *transformed* point.
//   * EOT:   a randomized transform is attacked in expectation — the
//            attacker averages gradients over several fresh draws of the
//            defense randomness per step.
//
// defended_oracle composes both with any inner oracle, so every pairing in
// the combined-defense bench — {software-only, PELTA-only, both} x
// {single-sample, EOT} — reuses the exact attack implementations of §V-B.
#pragma once

#include "attacks/runner.h"
#include "defenses/defended.h"

namespace pelta::attacks {

/// Wrap `inner` (clear or PELTA-shielded) behind `chain`. Each query draws
/// `eot_samples` transformed copies of the input (one if the chain is
/// deterministic), queries `inner` on each, and returns the averaged
/// gradient / logits — BPDA-identity through the chain, EOT over its
/// randomness. The wrapper's query count tallies real model passes.
std::unique_ptr<gradient_oracle> make_defended_oracle(std::unique_ptr<gradient_oracle> inner,
                                                      const defenses::preprocessor_chain& chain,
                                                      std::int64_t eot_samples,
                                                      std::uint64_t seed);

/// Factory form used by the evaluation harness: `inner_factory` builds the
/// per-sample inner oracle (clear / shielded), then the chain wraps it.
oracle_factory defended_oracle_factory(const oracle_factory& inner_factory,
                                       const defenses::preprocessor_chain& chain,
                                       std::int64_t eot_samples);

struct defended_eval_config {
  attack_kind kind = attack_kind::pgd;
  suite_params params;
  std::int64_t eot_samples = 1;  ///< 1 = plain BPDA; >1 = EOT averaging
  std::int64_t max_samples = 50;
  std::uint64_t seed = 2023;
};

/// Robust accuracy of a defended model (chain + optional PELTA inner
/// oracle). Candidates are test samples the *defended* model classifies
/// correctly; the final success check also runs through the defense, on a
/// fresh per-sample randomness stream (the deployment view).
robust_eval evaluate_attack_defended(const defenses::defended_model& dm, const data::dataset& ds,
                                     const defended_eval_config& config,
                                     const oracle_factory& inner_factory);

/// Clean accuracy of the defended model over the test split (the defense's
/// generalization cost — software defenses are not free).
float defended_clean_accuracy(const defenses::defended_model& dm, const data::dataset& ds,
                              std::uint64_t seed);

}  // namespace pelta::attacks
