#include "attacks/runner.h"

#include <atomic>

#include "tensor/parallel.h"

namespace pelta::attacks {

const char* attack_name(attack_kind kind) {
  switch (kind) {
    case attack_kind::fgsm: return "FGSM";
    case attack_kind::pgd: return "PGD";
    case attack_kind::mim: return "MIM";
    case attack_kind::cw: return "C&W";
    case attack_kind::apgd: return "APGD";
  }
  return "?";
}

suite_params table2_cifar_params() {
  suite_params p;
  p.eps = 0.031f;
  p.eps_step = 0.00155f;
  p.pgd_steps = 20;
  p.mim_mu = 1.0f;
  p.apgd_rho = 0.75f;
  p.apgd_restarts = 1;
  p.cw_confidence = 50.0f;
  p.cw_step = 0.00155f;
  p.cw_steps = 30;
  p.saga_alpha_k = 2.0e-4f;
  p.saga_eps_step = 0.0031f;
  return p;
}

suite_params table2_imagenet_params() {
  suite_params p = table2_cifar_params();
  p.eps = 0.062f;
  p.eps_step = 0.0031f;
  p.cw_step = 0.0031f;
  p.saga_alpha_k = 0.001f;
  p.saga_eps_step = 0.0031f;
  return p;
}

suite_params params_for_dataset(const std::string& dataset_name) {
  return dataset_name == "imagenet_like" ? table2_imagenet_params() : table2_cifar_params();
}

oracle_factory clear_oracle_factory(const models::model& m) {
  const models::model* mp = &m;
  return [mp](std::uint64_t /*seed*/) { return make_clear_oracle(*mp); };
}

oracle_factory shielded_oracle_factory(const models::model& m) {
  const models::model* mp = &m;
  return [mp](std::uint64_t seed) { return make_shielded_oracle(*mp, seed); };
}

std::vector<std::int64_t> correctly_classified_indices(const models::model& m,
                                                       const data::dataset& ds,
                                                       std::int64_t max_samples) {
  const tensor preds = predict(m, ds.test_images());
  std::vector<std::int64_t> out;
  for (std::int64_t i = 0; i < ds.test_size() &&
                           static_cast<std::int64_t>(out.size()) < max_samples;
       ++i)
    if (static_cast<std::int64_t>(preds[i]) == ds.test_label(i)) out.push_back(i);
  return out;
}

namespace {

attack_result dispatch(attack_kind kind, gradient_oracle& oracle, const tensor& x0,
                       std::int64_t label, const suite_params& p, rng& sample_rng) {
  switch (kind) {
    case attack_kind::fgsm: {
      fgsm_config c;
      c.eps = p.eps;
      return run_fgsm(oracle, x0, label, c);
    }
    case attack_kind::pgd: {
      pgd_config c;
      c.eps = p.eps;
      c.eps_step = p.eps_step;
      c.steps = p.pgd_steps;
      return run_pgd(oracle, x0, label, c);
    }
    case attack_kind::mim: {
      mim_config c;
      c.eps = p.eps;
      c.eps_step = p.eps_step;
      c.steps = p.pgd_steps;
      c.mu = p.mim_mu;
      return run_mim(oracle, x0, label, c);
    }
    case attack_kind::cw: {
      cw_config c;
      c.confidence = p.cw_confidence;
      c.eps_step = p.cw_step;
      c.steps = p.cw_steps;
      return run_cw(oracle, x0, label, c);
    }
    case attack_kind::apgd: {
      apgd_config c;
      c.eps = p.eps;
      c.max_queries = p.apgd_queries;
      c.restarts = p.apgd_restarts;
      c.rho = p.apgd_rho;
      return run_apgd(oracle, x0, label, c, sample_rng);
    }
  }
  throw error{"unknown attack kind"};
}

}  // namespace

robust_eval evaluate_attack(const models::model& m, const data::dataset& ds, attack_kind kind,
                            const suite_params& params, const oracle_factory& factory,
                            std::int64_t max_samples, std::uint64_t seed) {
  const std::vector<std::int64_t> candidates = correctly_classified_indices(m, ds, max_samples);
  PELTA_CHECK_MSG(!candidates.empty(), "model classifies no test sample correctly");

  const rng root{seed};
  // Lock-free on purpose (lock discipline, docs/ARCHITECTURE.md): these are
  // commutative-sum atomics incremented from parallel_for chunks — order
  // cannot affect the integer totals, so no mutex / PELTA_GUARDED_BY is
  // needed and fetch-add contention is the only synchronization.
  std::atomic<std::int64_t> successes{0};
  std::atomic<std::int64_t> total_queries{0};

  parallel_for(static_cast<std::int64_t>(candidates.size()), [&](std::int64_t i) {
    rng sample_rng = root.fork(static_cast<std::uint64_t>(i));
    auto oracle = factory(sample_rng.next_u64());
    const std::int64_t idx = candidates[static_cast<std::size_t>(i)];
    const attack_result r =
        dispatch(kind, *oracle, ds.test_image(idx), ds.test_label(idx), params, sample_rng);
    if (r.misclassified) successes.fetch_add(1, std::memory_order_relaxed);
    total_queries.fetch_add(r.queries, std::memory_order_relaxed);
  });

  robust_eval out;
  out.samples = static_cast<std::int64_t>(candidates.size());
  out.attack_successes = successes.load();
  out.robust_accuracy =
      1.0f - static_cast<float>(out.attack_successes) / static_cast<float>(out.samples);
  out.mean_queries = static_cast<double>(total_queries.load()) / static_cast<double>(out.samples);
  return out;
}

robust_eval evaluate_random_uniform(const models::model& m, const data::dataset& ds, float eps,
                                    std::int64_t max_samples, std::uint64_t seed) {
  const std::vector<std::int64_t> candidates = correctly_classified_indices(m, ds, max_samples);
  PELTA_CHECK_MSG(!candidates.empty(), "model classifies no test sample correctly");

  const rng root{seed};
  std::atomic<std::int64_t> successes{0};
  parallel_for(static_cast<std::int64_t>(candidates.size()), [&](std::int64_t i) {
    rng sample_rng = root.fork(static_cast<std::uint64_t>(i));
    const std::int64_t idx = candidates[static_cast<std::size_t>(i)];
    random_uniform_config c;
    c.eps = eps;
    const tensor x = run_random_uniform(ds.test_image(idx), c, sample_rng);
    if (predict_one(m, x) != ds.test_label(idx)) successes.fetch_add(1, std::memory_order_relaxed);
  });

  robust_eval out;
  out.samples = static_cast<std::int64_t>(candidates.size());
  out.attack_successes = successes.load();
  out.robust_accuracy =
      1.0f - static_cast<float>(out.attack_successes) / static_cast<float>(out.samples);
  out.mean_queries = 1.0;
  return out;
}

saga_eval evaluate_saga(const models::model& vit, const models::model& cnn,
                        const data::dataset& ds, bool shield_vit, bool shield_cnn,
                        const suite_params& params, std::int64_t max_samples, std::uint64_t seed) {
  // Candidate pool: samples both members classify correctly (per-model rows
  // of Table IV then start from 100% robust accuracy).
  const tensor vit_preds = predict(vit, ds.test_images());
  const tensor cnn_preds = predict(cnn, ds.test_images());
  std::vector<std::int64_t> candidates;
  for (std::int64_t i = 0; i < ds.test_size() &&
                           static_cast<std::int64_t>(candidates.size()) < max_samples;
       ++i)
    if (static_cast<std::int64_t>(vit_preds[i]) == ds.test_label(i) &&
        static_cast<std::int64_t>(cnn_preds[i]) == ds.test_label(i))
      candidates.push_back(i);
  PELTA_CHECK_MSG(!candidates.empty(), "no sample classified correctly by both members");

  saga_config config;
  config.eps = params.eps;
  config.eps_step = params.saga_eps_step;
  config.steps = params.saga_steps;
  config.alpha_k = params.saga_alpha_k_sim;  // unit-scale terms (see saga.h)

  const rng root{seed};
  // Same commutative-sum atomic policy as above: no lock needed.
  std::atomic<std::int64_t> vit_ok{0}, cnn_ok{0}, ens_ok{0};

  parallel_for(static_cast<std::int64_t>(candidates.size()), [&](std::int64_t i) {
    rng sample_rng = root.fork(static_cast<std::uint64_t>(i));
    auto vit_oracle = shield_vit ? make_shielded_oracle(vit, sample_rng.next_u64())
                                 : make_clear_oracle(vit);
    auto cnn_oracle = shield_cnn ? make_shielded_oracle(cnn, sample_rng.next_u64())
                                 : make_clear_oracle(cnn);
    const std::int64_t idx = candidates[static_cast<std::size_t>(i)];
    const std::int64_t label = ds.test_label(idx);
    const saga_result r =
        run_saga(*vit_oracle, *cnn_oracle, ds.test_image(idx), label, config);

    const bool vit_correct = !r.vit_fooled;
    const bool cnn_correct = !r.cnn_fooled;
    if (vit_correct) vit_ok.fetch_add(1, std::memory_order_relaxed);
    if (cnn_correct) cnn_ok.fetch_add(1, std::memory_order_relaxed);
    // Random-selection policy: one member chosen uniformly at test time.
    const bool pick_vit = sample_rng.bernoulli(0.5);
    if ((pick_vit && vit_correct) || (!pick_vit && cnn_correct))
      ens_ok.fetch_add(1, std::memory_order_relaxed);
  });

  saga_eval out;
  out.samples = static_cast<std::int64_t>(candidates.size());
  const float n = static_cast<float>(out.samples);
  out.vit_robust_accuracy = static_cast<float>(vit_ok.load()) / n;
  out.cnn_robust_accuracy = static_cast<float>(cnn_ok.load()) / n;
  out.ensemble_robust_accuracy = static_cast<float>(ens_ok.load()) / n;
  return out;
}

}  // namespace pelta::attacks
