// Prior-based attackers on the shielded frontier (§VII future work (i)).
//
// The paper warns that "an attacker can exploit commonly used embedding
// matrices and subsequent parameters across existing models as a prior on
// the shielded layers (this case being circumvented by the defender if it
// trains its own first parameters)". PELTA hides only the shallow frontier;
// everything deeper is clear — so an attacker with a guess for the frontier
// can assemble a complete substitute model:
//
//     substitute = [frontier prior] ∘ [victim's clear deep layers]
//
// and run the ordinary white-box attack on it. Three prior tiers measure
// how good that guess must be:
//
//   none    — random re-initialization (no prior; the paper's default threat)
//   related — frontier copied from a same-architecture model trained on
//             *public* data (the "commonly used embedding matrices" case)
//   exact   — frontier equals the victim's, e.g. a public pretrained
//             embedding the defender failed to re-train (the case the paper
//             says the defender must circumvent)
//
// Expected shape (the bench's check): exact ≈ open white box, related in
// between, none ≈ the upsampling attacker — PELTA's protection degrades
// exactly as fast as the attacker's prior improves.
#pragma once

#include "attacks/runner.h"

namespace pelta::attacks {

enum class prior_tier : std::uint8_t { none, related, exact };

const char* prior_tier_name(prior_tier tier);

/// Names of the victim's enclave-resident (frontier) parameters, derived
/// from a dry shield run over one forward pass on `sample_image`.
std::vector<std::string> shielded_parameter_names(const models::model& m,
                                                  const tensor& sample_image);

struct prior_attack_config {
  prior_tier tier = prior_tier::none;
  /// Same-architecture source for the related tier (trained on public
  /// data); ignored for none/exact.
  const models::model* prior_source = nullptr;
  /// Seed for the none tier's random frontier re-initialization.
  std::uint64_t seed = 7;
};

/// Fill `substitute` (a freshly constructed model of the victim's exact
/// architecture) with the attacker's best knowledge: every clear parameter
/// is copied from the victim verbatim; the shielded frontier comes from the
/// prior tier. Batch-norm style running buffers are copied from the victim
/// (they ride along with the clear FL broadcast for the architectures this
/// study uses — ViT and BiT carry none inside the frontier).
/// Returns the frontier parameter names that were substituted.
std::vector<std::string> assemble_prior_substitute(models::model& substitute,
                                                   const models::model& victim,
                                                   const prior_attack_config& config,
                                                   const tensor& sample_image);

/// Full tier evaluation: assemble the substitute, PGD on it, replay on the
/// victim (higher robust accuracy favors the defender).
robust_eval evaluate_prior_attack(const models::model& victim, models::model& substitute,
                                  const prior_attack_config& config, const data::dataset& ds,
                                  const suite_params& params, std::int64_t max_samples,
                                  std::uint64_t seed);

/// Fraction of frontier scalars at which substitute and victim agree to
/// within `tol` — a direct measure of prior quality (1.0 for exact).
float frontier_agreement(const models::model& substitute, const models::model& victim,
                         const std::vector<std::string>& frontier_names, float tol = 1e-6f);

}  // namespace pelta::attacks
