#include "attacks/eot.h"

#include <atomic>

#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace pelta::attacks {

namespace {

class defended_oracle final : public gradient_oracle {
public:
  defended_oracle(std::unique_ptr<gradient_oracle> inner,
                  const defenses::preprocessor_chain& chain, std::int64_t eot_samples,
                  std::uint64_t seed)
      : inner_{std::move(inner)},
        chain_{&chain},
        eot_samples_{chain.randomized() ? eot_samples : 1},
        gen_{seed} {
    PELTA_CHECK_MSG(eot_samples >= 1, "eot_samples " << eot_samples << " must be >= 1");
  }

  oracle_result query(const tensor& image, std::int64_t label) override {
    return average([&](const tensor& xt) { return inner_->query(xt, label); }, image);
  }

  oracle_result query_logit_seed(const tensor& image, const tensor& seed) override {
    return average([&](const tensor& xt) { return inner_->query_logit_seed(xt, seed); }, image);
  }

  tensor attention_saliency(const tensor& image) override {
    return inner_->attention_saliency(chain_->apply(image, gen_));
  }

  void reset(rng& gen) override { inner_->reset(gen); }

private:
  template <typename Query>
  oracle_result average(const Query& one, const tensor& image) {
    oracle_result acc;
    for (std::int64_t k = 0; k < eot_samples_; ++k) {
      const oracle_result r = one(chain_->apply(image, gen_));
      ++queries_;
      if (k == 0) {
        acc = r;
      } else {
        acc.gradient = ops::add(acc.gradient, r.gradient);
        acc.logits = ops::add(acc.logits, r.logits);
        acc.loss += r.loss;
      }
    }
    const float inv = 1.0f / static_cast<float>(eot_samples_);
    acc.gradient = ops::mul_scalar(acc.gradient, inv);
    acc.logits = ops::mul_scalar(acc.logits, inv);
    acc.loss *= inv;
    acc.predicted = ops::argmax(acc.logits);
    return acc;
  }

  std::unique_ptr<gradient_oracle> inner_;
  const defenses::preprocessor_chain* chain_;
  std::int64_t eot_samples_;
  rng gen_;
};

}  // namespace

std::unique_ptr<gradient_oracle> make_defended_oracle(std::unique_ptr<gradient_oracle> inner,
                                                      const defenses::preprocessor_chain& chain,
                                                      std::int64_t eot_samples,
                                                      std::uint64_t seed) {
  return std::make_unique<defended_oracle>(std::move(inner), chain, eot_samples, seed);
}

oracle_factory defended_oracle_factory(const oracle_factory& inner_factory,
                                       const defenses::preprocessor_chain& chain,
                                       std::int64_t eot_samples) {
  const defenses::preprocessor_chain* cp = &chain;
  return [inner_factory, cp, eot_samples](std::uint64_t seed) {
    return make_defended_oracle(inner_factory(seed), *cp, eot_samples, seed ^ 0xe07e07u);
  };
}

robust_eval evaluate_attack_defended(const defenses::defended_model& dm, const data::dataset& ds,
                                     const defended_eval_config& config,
                                     const oracle_factory& inner_factory) {
  // Candidate pool: correctly classified *through the defense* — robust
  // accuracy starts at 100% exactly as in the paper's protocol.
  const rng root{config.seed};
  std::vector<std::int64_t> candidates;
  for (std::int64_t i = 0; i < ds.test_size() &&
                           static_cast<std::int64_t>(candidates.size()) < config.max_samples;
       ++i) {
    rng gen = root.fork(static_cast<std::uint64_t>(i));
    if (dm.predict_one(ds.test_image(i), gen) == ds.test_label(i)) candidates.push_back(i);
  }
  PELTA_CHECK_MSG(!candidates.empty(), "defended model classifies no test sample correctly");

  const oracle_factory factory =
      defended_oracle_factory(inner_factory, dm.chain(), config.eot_samples);

  // Lock-free on purpose (lock discipline, docs/ARCHITECTURE.md): these are
  // commutative-sum atomics incremented from parallel_for chunks — order
  // cannot affect the integer totals, so no mutex / PELTA_GUARDED_BY is
  // needed and fetch-add contention is the only synchronization.
  std::atomic<std::int64_t> successes{0};
  std::atomic<std::int64_t> total_queries{0};
  parallel_for(static_cast<std::int64_t>(candidates.size()), [&](std::int64_t i) {
    rng sample_rng = root.fork(0x10000u + static_cast<std::uint64_t>(i));
    auto oracle = factory(sample_rng.next_u64());
    const std::int64_t idx = candidates[static_cast<std::size_t>(i)];
    const tensor x0 = ds.test_image(idx);
    const std::int64_t label = ds.test_label(idx);

    attack_result r;
    switch (config.kind) {
      case attack_kind::fgsm: {
        fgsm_config c;
        c.eps = config.params.eps;
        r = run_fgsm(*oracle, x0, label, c);
        break;
      }
      case attack_kind::pgd: {
        pgd_config c;
        c.eps = config.params.eps;
        c.eps_step = config.params.eps_step;
        c.steps = config.params.pgd_steps;
        c.early_stop = false;  // success is judged by the defended model below
        r = run_pgd(*oracle, x0, label, c);
        break;
      }
      case attack_kind::mim: {
        mim_config c;
        c.eps = config.params.eps;
        c.eps_step = config.params.eps_step;
        c.steps = config.params.pgd_steps;
        c.mu = config.params.mim_mu;
        c.early_stop = false;
        r = run_mim(*oracle, x0, label, c);
        break;
      }
      case attack_kind::apgd: {
        apgd_config c;
        c.eps = config.params.eps;
        c.max_queries = config.params.apgd_queries;
        c.restarts = config.params.apgd_restarts;
        c.rho = config.params.apgd_rho;
        c.early_stop = false;
        r = run_apgd(*oracle, x0, label, c, sample_rng);
        break;
      }
      case attack_kind::cw: {
        cw_config c;
        c.confidence = config.params.cw_confidence;
        c.eps_step = config.params.cw_step;
        c.steps = config.params.cw_steps;
        r = run_cw(*oracle, x0, label, c);
        break;
      }
    }

    // Deployment check: the victim's device also applies the defense, on
    // randomness the attacker does not control.
    rng deploy = root.fork(0x20000u + static_cast<std::uint64_t>(i));
    if (dm.predict_one(r.adversarial, deploy) != label)
      successes.fetch_add(1, std::memory_order_relaxed);
    total_queries.fetch_add(r.queries, std::memory_order_relaxed);
  });

  robust_eval out;
  out.samples = static_cast<std::int64_t>(candidates.size());
  out.attack_successes = successes.load();
  out.robust_accuracy =
      1.0f - static_cast<float>(out.attack_successes) / static_cast<float>(out.samples);
  out.mean_queries = static_cast<double>(total_queries.load()) / static_cast<double>(out.samples);
  return out;
}

float defended_clean_accuracy(const defenses::defended_model& dm, const data::dataset& ds,
                              std::uint64_t seed) {
  return dm.accuracy(ds.test_images(), ds.test_labels(), seed);
}

}  // namespace pelta::attacks
