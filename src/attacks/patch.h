// Adversarial patch attacks (Brown et al. [14]) — the paper's §I opening
// scenario: "he puts adversarial stickers on objects (roadsigns for
// instance) ... the objects are then misclassified by unaware agents
// running the collaboratively learned model".
//
// Unlike the ε-ball attacks of §V-B, a patch is *unconstrained in
// magnitude but constrained in support*: only the pixels inside a small
// square change, by any amount in [0,1]. Both variants follow the input
// gradient restricted to the patch mask — exactly the ∇ₓL signal PELTA
// removes — so the shielded attacker degrades the same way the ε-ball
// attackers do.
//
//   * run_patch             — per-sample sticker on one image
//   * train_universal_patch — one physical sticker optimized over a pool
//                             of training images and replayed on unseen
//                             ones (the transferable "road-sign sticker")
#pragma once

#include "attacks/attack.h"

namespace pelta::attacks {

struct patch_config {
  std::int64_t size = 4;         ///< square side, pixels
  std::int64_t top = -1;         ///< patch origin; -1 = bottom-right corner
  std::int64_t left = -1;
  std::int64_t steps = 60;       ///< gradient-ascent iterations
  float step_size = 0.08f;       ///< sign-step magnitude inside the mask
  bool early_stop = true;
  std::int64_t target = -1;      ///< < 0 = untargeted
};

/// Optimize a sticker on one image; attack_result.misclassified is the
/// goal predicate (untargeted: label flipped; targeted: target hit).
attack_result run_patch(gradient_oracle& oracle, const tensor& x0, std::int64_t label,
                        const patch_config& config);

/// Apply a trained patch [C,s,s] onto a copy of `image` at the config's
/// location.
tensor apply_patch(const tensor& image, const tensor& patch, const patch_config& config);

struct universal_patch_result {
  tensor patch;                ///< [C,s,s]
  float train_success = 0.0f;  ///< misclassification rate on the pool
  std::int64_t queries = 0;
};

/// Train one patch over a pool of (image,label) pairs: per step, gradients
/// of the loss w.r.t. the input are averaged over the pool and only the
/// masked region of the shared patch is updated.
universal_patch_result train_universal_patch(gradient_oracle& oracle,
                                             const std::vector<tensor>& images,
                                             const std::vector<std::int64_t>& labels,
                                             const patch_config& config, rng& gen);

}  // namespace pelta::attacks
