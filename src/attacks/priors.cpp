#include "attacks/priors.h"

#include <cmath>

#include "attacks/bpda.h"
#include "shield/shield.h"
#include "tensor/ops.h"

namespace pelta::attacks {

const char* prior_tier_name(prior_tier tier) {
  switch (tier) {
    case prior_tier::none: return "none (random re-init)";
    case prior_tier::related: return "related (public-data model)";
    case prior_tier::exact: return "exact (shared pretrained embedding)";
  }
  return "?";
}

std::vector<std::string> shielded_parameter_names(const models::model& m,
                                                  const tensor& sample_image) {
  PELTA_CHECK_MSG(sample_image.ndim() == 3, "expects one [C,H,W] sample image");
  const shape_t batched{1, sample_image.size(0), sample_image.size(1), sample_image.size(2)};
  models::forward_pass fp = m.forward(sample_image.reshape(batched), ad::norm_mode::eval);
  const shield::shield_report report =
      shield::pelta_shield_tags(fp.graph, m.shield_frontier_tags(), /*enclave=*/nullptr);

  std::vector<std::string> names;
  for (ad::node_id id : report.masked_side) {
    const ad::node& n = fp.graph.at(id);
    if (n.kind == ad::node_kind::parameter && n.param != nullptr) names.push_back(n.param->name);
  }
  PELTA_CHECK_MSG(!names.empty(), "shield frontier of " << m.name() << " masks no parameters");
  return names;
}

std::vector<std::string> assemble_prior_substitute(models::model& substitute,
                                                   const models::model& victim,
                                                   const prior_attack_config& config,
                                                   const tensor& sample_image) {
  const std::vector<std::string> frontier = shielded_parameter_names(victim, sample_image);

  // Start from the victim's full weights (deep layers are clear in PELTA's
  // threat model), then overwrite the frontier according to the tier.
  substitute.params().copy_values_from(victim.params());
  const auto victim_buffers = victim.batchnorm_buffers();
  const auto sub_buffers = substitute.batchnorm_buffers();
  PELTA_CHECK_MSG(victim_buffers.size() == sub_buffers.size(),
                  "substitute architecture mismatch: batch-norm buffer count");
  for (std::size_t i = 0; i < victim_buffers.size(); ++i) *sub_buffers[i] = *victim_buffers[i];

  switch (config.tier) {
    case prior_tier::exact:
      break;  // frontier already equals the victim's
    case prior_tier::related: {
      PELTA_CHECK_MSG(config.prior_source != nullptr, "related tier needs a prior_source model");
      for (const std::string& name : frontier) {
        const ad::parameter& src = config.prior_source->params().get(name);
        ad::parameter& dst = substitute.params().get(name);
        PELTA_CHECK_MSG(src.value.same_shape(dst.value),
                        "prior_source parameter " << name << " shape mismatch");
        dst.value = src.value;
      }
      break;
    }
    case prior_tier::none: {
      rng gen{config.seed};
      for (const std::string& name : frontier) {
        ad::parameter& dst = substitute.params().get(name);
        // Re-draw at the victim's own scale: the attacker knows the
        // architecture and its initialization statistics, just not the
        // trained values.
        const float n = static_cast<float>(dst.value.numel());
        float mean = 0.0f;
        for (float v : dst.value.data()) mean += v;
        mean /= n;
        float var = 0.0f;
        for (float v : dst.value.data()) var += (v - mean) * (v - mean);
        const float stddev = std::sqrt(var / std::max(1.0f, n - 1.0f));
        dst.value = tensor::randn(gen, dst.value.shape(), mean, std::max(stddev, 1e-3f));
      }
      break;
    }
  }
  return frontier;
}

robust_eval evaluate_prior_attack(const models::model& victim, models::model& substitute,
                                  const prior_attack_config& config, const data::dataset& ds,
                                  const suite_params& params, std::int64_t max_samples,
                                  std::uint64_t seed) {
  assemble_prior_substitute(substitute, victim, config, ds.test_image(0));
  return evaluate_transfer_attack(victim, substitute, ds, params, max_samples, seed);
}

float frontier_agreement(const models::model& substitute, const models::model& victim,
                         const std::vector<std::string>& frontier_names, float tol) {
  std::int64_t total = 0, agree = 0;
  for (const std::string& name : frontier_names) {
    const ad::parameter& a = substitute.params().get(name);
    const ad::parameter& b = victim.params().get(name);
    PELTA_CHECK_MSG(a.value.same_shape(b.value), "frontier parameter shape mismatch: " << name);
    for (std::int64_t i = 0; i < a.value.numel(); ++i) {
      ++total;
      if (std::abs(a.value[i] - b.value[i]) <= tol) ++agree;
    }
  }
  PELTA_CHECK_MSG(total > 0, "empty frontier");
  return static_cast<float>(agree) / static_cast<float>(total);
}

}  // namespace pelta::attacks
