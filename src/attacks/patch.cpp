#include "attacks/patch.h"

#include "tensor/ops.h"

namespace pelta::attacks {

namespace {

struct patch_region {
  std::int64_t top = 0;
  std::int64_t left = 0;
  std::int64_t size = 0;
};

patch_region resolve_region(const shape_t& image_shape, const patch_config& config) {
  PELTA_CHECK_MSG(image_shape.size() == 3, "patch expects a [C,H,W] image");
  const std::int64_t h = image_shape[1], w = image_shape[2];
  PELTA_CHECK_MSG(config.size >= 1 && config.size <= h && config.size <= w,
                  "patch size " << config.size << " too large for " << to_string(image_shape));
  patch_region r;
  r.size = config.size;
  r.top = config.top >= 0 ? config.top : h - config.size;
  r.left = config.left >= 0 ? config.left : w - config.size;
  PELTA_CHECK_MSG(r.top + r.size <= h && r.left + r.size <= w,
                  "patch at (" << r.top << "," << r.left << ") exceeds the image");
  return r;
}

bool goal_achieved(std::int64_t predicted, std::int64_t label, std::int64_t target) {
  return target >= 0 ? predicted == target : predicted != label;
}

}  // namespace

tensor apply_patch(const tensor& image, const tensor& patch, const patch_config& config) {
  const patch_region r = resolve_region(image.shape(), config);
  PELTA_CHECK_MSG(patch.ndim() == 3 && patch.size(0) == image.size(0) &&
                      patch.size(1) == r.size && patch.size(2) == r.size,
                  "patch shape " << to_string(patch.shape()) << " does not match the config");
  tensor out = image;
  for (std::int64_t c = 0; c < out.size(0); ++c)
    for (std::int64_t y = 0; y < r.size; ++y)
      for (std::int64_t x = 0; x < r.size; ++x)
        out.at(c, r.top + y, r.left + x) = patch.at(c, y, x);
  return out;
}

attack_result run_patch(gradient_oracle& oracle, const tensor& x0, std::int64_t label,
                        const patch_config& config) {
  PELTA_CHECK_MSG(config.target < 0 || config.target != label,
                  "targeted patch: target equals the true label");
  const patch_region r = resolve_region(x0.shape(), config);
  const std::int64_t query_label = config.target >= 0 ? config.target : label;
  const float direction = config.target >= 0 ? -1.0f : 1.0f;

  attack_result result;
  tensor x = x0;
  for (std::int64_t step = 0; step < config.steps; ++step) {
    const oracle_result q = oracle.query(x, query_label);
    ++result.queries;
    if (config.early_stop && goal_achieved(q.predicted, label, config.target)) {
      result.adversarial = std::move(x);
      result.misclassified = true;
      return result;
    }
    // sign ascent restricted to the sticker's support; magnitude only
    // bounded by the pixel range
    for (std::int64_t c = 0; c < x.size(0); ++c)
      for (std::int64_t y = 0; y < r.size; ++y)
        for (std::int64_t xx = 0; xx < r.size; ++xx) {
          const float g = q.gradient.at(c, r.top + y, r.left + xx);
          float& pixel = x.at(c, r.top + y, r.left + xx);
          pixel += direction * config.step_size * (g > 0.0f ? 1.0f : (g < 0.0f ? -1.0f : 0.0f));
          pixel = std::min(1.0f, std::max(0.0f, pixel));
        }
  }
  const oracle_result final_q = oracle.query(x, query_label);
  ++result.queries;
  result.misclassified = goal_achieved(final_q.predicted, label, config.target);
  result.adversarial = std::move(x);
  return result;
}

universal_patch_result train_universal_patch(gradient_oracle& oracle,
                                             const std::vector<tensor>& images,
                                             const std::vector<std::int64_t>& labels,
                                             const patch_config& config, rng& gen) {
  PELTA_CHECK_MSG(!images.empty() && images.size() == labels.size(),
                  "universal patch needs a non-empty (image,label) pool");
  const patch_region r = resolve_region(images.front().shape(), config);
  const std::int64_t channels = images.front().size(0);

  universal_patch_result result;
  result.patch = tensor::rand_uniform(gen, {channels, r.size, r.size});

  for (std::int64_t step = 0; step < config.steps; ++step) {
    // Average the sticker-region gradient over the pool (untargeted:
    // ascend each sample's own loss; targeted: descend toward the target).
    tensor grad{result.patch.shape()};
    for (std::size_t i = 0; i < images.size(); ++i) {
      const tensor patched = apply_patch(images[i], result.patch, config);
      const std::int64_t q_label = config.target >= 0 ? config.target : labels[i];
      const oracle_result q = oracle.query(patched, q_label);
      ++result.queries;
      for (std::int64_t c = 0; c < channels; ++c)
        for (std::int64_t y = 0; y < r.size; ++y)
          for (std::int64_t x = 0; x < r.size; ++x)
            grad.at(c, y, x) += q.gradient.at(c, r.top + y, r.left + x);
    }
    const float direction = config.target >= 0 ? -1.0f : 1.0f;
    result.patch.add_scaled_(ops::sign(grad), direction * config.step_size);
    result.patch.clamp_(0.0f, 1.0f);
  }

  std::int64_t fooled = 0;
  for (std::size_t i = 0; i < images.size(); ++i) {
    const oracle_result q =
        oracle.query(apply_patch(images[i], result.patch, config), labels[i]);
    ++result.queries;
    if (goal_achieved(q.predicted, labels[i], config.target)) ++fooled;
  }
  result.train_success = static_cast<float>(fooled) / static_cast<float>(images.size());
  return result;
}

}  // namespace pelta::attacks
