#include "attacks/attack.h"

#include <cmath>

namespace pelta::attacks {

tensor project_linf(const tensor& x, const tensor& x0, float eps) {
  PELTA_CHECK_MSG(x.same_shape(x0), "project_linf shape mismatch");
  tensor out{x.shape()};
  auto px = x.data();
  auto p0 = x0.data();
  auto po = out.data();
  for (std::size_t i = 0; i < po.size(); ++i) {
    const float lo = std::max(0.0f, p0[i] - eps);
    const float hi = std::min(1.0f, p0[i] + eps);
    po[i] = std::min(std::max(px[i], lo), hi);
  }
  return out;
}

float linf_distance(const tensor& x, const tensor& x0) {
  PELTA_CHECK_MSG(x.same_shape(x0), "linf_distance shape mismatch");
  float m = 0.0f;
  auto px = x.data();
  auto p0 = x0.data();
  for (std::size_t i = 0; i < px.size(); ++i) m = std::max(m, std::fabs(px[i] - p0[i]));
  return m;
}

}  // namespace pelta::attacks
