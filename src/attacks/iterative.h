// Iterative maximum-allowable attacks (§V-B, Fig. 3): FGSM, PGD, MIM, APGD.
#pragma once

#include "attacks/attack.h"

namespace pelta::attacks {

/// Targeted mode, shared by FGSM/PGD/MIM: instead of ascending the loss of
/// the true label, the attack *descends* the loss of a chosen target class
/// (the paper's §V-C attributes part of BiT's weakness to sensitivity to
/// targeted attacks). With target >= 0: step direction flips to
/// -sign(∇ₓL(x, target)) and attack_result.misclassified reports
/// "predicted == target" instead of "predicted != label".
struct fgsm_config {
  float eps = 0.031f;
  std::int64_t target = -1;  ///< < 0 = untargeted
};

struct pgd_config {
  float eps = 0.031f;
  float eps_step = 0.00155f;
  std::int64_t steps = 20;
  bool early_stop = true;   ///< stop once the attack goal holds
  bool trace = false;       ///< record the Fig. 3 trajectory
  std::int64_t target = -1; ///< < 0 = untargeted
};

struct mim_config {
  float eps = 0.031f;
  float eps_step = 0.00155f;
  std::int64_t steps = 20;
  float mu = 1.0f;  ///< momentum decay factor
  bool early_stop = true;
  bool trace = false;
  std::int64_t target = -1;  ///< < 0 = untargeted
};

struct apgd_config {
  float eps = 0.031f;
  std::int64_t max_queries = 100;  ///< paper: 5e3; scaled for the CPU simulator
  std::int64_t restarts = 1;
  float rho = 0.75f;               ///< step-halving progress threshold
  float alpha = 0.75f;             ///< momentum blending
  bool early_stop = true;
};

/// x_adv = x0 + ε · sign(∇ₓL(x0, y)), one query (Goodfellow et al.).
attack_result run_fgsm(gradient_oracle& oracle, const tensor& x0, std::int64_t label,
                       const fgsm_config& config);

/// Projected gradient descent (Madry et al.).
attack_result run_pgd(gradient_oracle& oracle, const tensor& x0, std::int64_t label,
                      const pgd_config& config);

/// Momentum iterative method (Dong et al.): velocity over normalized grads.
attack_result run_mim(gradient_oracle& oracle, const tensor& x0, std::int64_t label,
                      const mim_config& config);

/// Auto-PGD (Croce & Hein, simplified): momentum step, halving of the step
/// size at checkpoints when the ascent stalls (fraction < rho), restart from
/// the best point; each restart re-randomizes the oracle (which re-draws
/// the upsampling kernel in the shielded setting).
attack_result run_apgd(gradient_oracle& oracle, const tensor& x0, std::int64_t label,
                       const apgd_config& config, rng& restart_gen);

}  // namespace pelta::attacks
