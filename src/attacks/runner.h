// Robust-accuracy evaluation harness.
//
// Mirrors the paper's protocol (§V-C): select correctly-classified test
// samples, run a given attack on each under a given oracle (clear or
// PELTA-shielded), and report the fraction still classified correctly
// afterwards ("astuteness"). Samples are attacked in parallel with
// per-sample deterministic rng streams, so results are independent of the
// thread count.
#pragma once

#include <functional>

#include "attacks/cw.h"
#include "attacks/iterative.h"
#include "attacks/random_uniform.h"
#include "attacks/saga.h"
#include "data/dataset.h"

namespace pelta::attacks {

enum class attack_kind : std::uint8_t { fgsm, pgd, mim, cw, apgd };

const char* attack_name(attack_kind kind);

/// Table II parameter block (one struct drives every attack).
struct suite_params {
  float eps = 0.031f;
  float eps_step = 0.00155f;
  std::int64_t pgd_steps = 20;
  float mim_mu = 1.0f;
  std::int64_t apgd_queries = 100;   ///< paper: 5e3; scaled for the CPU simulator
  std::int64_t apgd_restarts = 1;
  float apgd_rho = 0.75f;
  float cw_confidence = 50.0f;
  float cw_step = 0.00155f;
  std::int64_t cw_steps = 30;
  float saga_alpha_k = 2.0e-4f;      ///< paper's raw-scale α (Table II record)
  float saga_alpha_k_sim = 0.5f;     ///< balanced effective α under unit-scale terms
  float saga_eps_step = 0.0031f;
  std::int64_t saga_steps = 20;
};

/// Paper presets (Table II): CIFAR-10/CIFAR-100 block and ImageNet block.
suite_params table2_cifar_params();
suite_params table2_imagenet_params();
/// Preset for one of our dataset names ("cifar10_like", …).
suite_params params_for_dataset(const std::string& dataset_name);

/// Builds a fresh oracle per evaluated sample (thread isolation). The seed
/// parameterizes any randomized substitute machinery.
using oracle_factory = std::function<std::unique_ptr<gradient_oracle>(std::uint64_t seed)>;

oracle_factory clear_oracle_factory(const models::model& m);
oracle_factory shielded_oracle_factory(const models::model& m);

struct robust_eval {
  float robust_accuracy = 0.0f;   ///< higher favors the defender
  std::int64_t samples = 0;
  std::int64_t attack_successes = 0;
  double mean_queries = 0.0;
};

/// Indices of up to `max_samples` test samples the model classifies
/// correctly (the paper's candidate pool; robust accuracy starts at 100%).
std::vector<std::int64_t> correctly_classified_indices(const models::model& m,
                                                       const data::dataset& ds,
                                                       std::int64_t max_samples);

/// Run one attack kind against one model (one Table III cell).
robust_eval evaluate_attack(const models::model& m, const data::dataset& ds, attack_kind kind,
                            const suite_params& params, const oracle_factory& factory,
                            std::int64_t max_samples, std::uint64_t seed);

/// Random-uniform baseline (Table IV "Random" column).
robust_eval evaluate_random_uniform(const models::model& m, const data::dataset& ds, float eps,
                                    std::int64_t max_samples, std::uint64_t seed);

/// One Table IV row-set: SAGA against the ensemble under a shield setting.
struct saga_eval {
  float vit_robust_accuracy = 0.0f;
  float cnn_robust_accuracy = 0.0f;
  float ensemble_robust_accuracy = 0.0f;  ///< random-selection policy
  std::int64_t samples = 0;
};

saga_eval evaluate_saga(const models::model& vit, const models::model& cnn,
                        const data::dataset& ds, bool shield_vit, bool shield_cnn,
                        const suite_params& params, std::int64_t max_samples, std::uint64_t seed);

}  // namespace pelta::attacks
