// Random-uniform l∞ baseline (Table IV "Random" column): perturb every
// pixel by U(-ε, ε) and clamp — the gradient-free yardstick a shielded
// attacker should not be able to beat by much.
#pragma once

#include "attacks/attack.h"

namespace pelta::attacks {

struct random_uniform_config {
  float eps = 0.031f;
};

tensor run_random_uniform(const tensor& x0, const random_uniform_config& config, rng& gen);

}  // namespace pelta::attacks
