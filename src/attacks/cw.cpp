#include "attacks/cw.h"

#include "tensor/ops.h"

namespace pelta::attacks {

attack_result run_cw(gradient_oracle& oracle, const tensor& x0, std::int64_t label,
                     const cw_config& config) {
  attack_result r;
  tensor x = x0;
  const std::int64_t dim = x0.numel();

  for (std::int64_t step = 0; step < config.steps; ++step) {
    // One probe for the logits (to build the margin seed), then a seeded
    // backward for d<seed, Z>/dx.
    const oracle_result probe = oracle.query(x, label);
    ++r.queries;
    const tensor& z = probe.logits;
    const std::int64_t classes = z.numel();

    if (config.early_stop && probe.predicted != label) {
      r.adversarial = std::move(x);
      r.misclassified = true;
      return r;
    }

    // runner-up class j* = argmax_{j != y} Z_j
    std::int64_t runner_up = label == 0 ? 1 : 0;
    for (std::int64_t j = 0; j < classes; ++j)
      if (j != label && z[j] > z[runner_up]) runner_up = j;

    const float margin = z[label] - z[runner_up];
    tensor seed{shape_t{classes}};
    if (margin > -config.confidence) {  // f active: ∂f/∂Z = e_y - e_{j*}
      seed[label] = 1.0f;
      seed[runner_up] = -1.0f;
    }

    const oracle_result q = oracle.query_logit_seed(x, seed);
    ++r.queries;

    // ∇(||δ||² + c f) = 2 δ + c ∂f/∂x
    tensor grad = ops::sub(x, x0);
    grad.mul_(2.0f / static_cast<float>(dim));
    grad.add_scaled_(q.gradient, config.c);

    x.add_scaled_(grad, -config.eps_step);
    x.clamp_(0.0f, 1.0f);
  }

  const oracle_result final_q = oracle.query(x, label);
  ++r.queries;
  r.misclassified = final_q.predicted != label;
  r.adversarial = std::move(x);
  return r;
}

}  // namespace pelta::attacks
