// BPDA-style surrogate attacker (§IV-C, §VII future work).
//
// Against PELTA, the paper's attacker has no priors on the shielded
// parameters and resorts to random-kernel upsampling. §IV-C notes the
// stronger (and fundamentally limiting, Athalye et al.) option: *train* a
// differentiable approximation — which "supposes he has training resources
// equivalent to that of the FL system". This module implements that
// attacker: it distills a full surrogate model from the victim's visible
// logits (model stealing over the attacker's own data), then runs the
// white-box attack on the surrogate and transfers the example.
//
// The extension bench quantifies both sides of the paper's argument: the
// transfer attack recovers much of the lost attack success — gradient
// masking is not information-theoretic security — at the price of a full
// training run, which the FL threat model makes expensive.
#pragma once

#include "attacks/runner.h"

namespace pelta::attacks {

struct surrogate_config {
  std::string architecture;      ///< zoo name; attacker knows the architecture
  std::int64_t epochs = 6;
  std::int64_t batch_size = 16;
  float lr = 3e-3f;
  std::int64_t shards = 1;
  std::uint64_t seed = 99;       ///< attacker's own init — no weight priors
  bool distill = true;           ///< train on victim-predicted labels (stealing)
};

struct surrogate_result {
  std::unique_ptr<models::model> surrogate;
  std::int64_t label_queries = 0;   ///< victim forward passes spent on labels
  float agreement = 0.0f;           ///< surrogate-vs-victim test agreement
};

/// Train the attacker's surrogate on `attacker_data` (their local shard in
/// the FL story). With distill=true the labels are the victim's predictions
/// — only the clear model *outputs*, never the shielded internals.
surrogate_result train_surrogate(const models::model& victim, const data::dataset& attacker_data,
                                 const surrogate_config& config);

/// Craft PGD white-box on the surrogate, replay on the victim; robust
/// accuracy is measured on the victim (higher favors the defender).
robust_eval evaluate_transfer_attack(const models::model& victim,
                                     const models::model& surrogate, const data::dataset& ds,
                                     const suite_params& params, std::int64_t max_samples,
                                     std::uint64_t seed);

}  // namespace pelta::attacks
