#include "attacks/oracle.h"

#include <cmath>

#include "autodiff/ops_loss.h"
#include "shield/baselines.h"
#include "shield/policy.h"
#include "tensor/conv.h"
#include "tensor/ops.h"

namespace pelta::attacks {

namespace {

shape_t batched(const tensor& image) {
  PELTA_CHECK_MSG(image.ndim() == 3, "oracles expect a single [C,H,W] image");
  return shape_t{1, image.size(0), image.size(1), image.size(2)};
}

// Forward + seeded backward shared by both oracles. When `label` >= 0 the
// objective is cross-entropy at that label; otherwise `seed` is applied to
// the logits directly.
struct pass {
  models::forward_pass fp;
  float loss = 0.0f;
  tensor logits;       // [classes]
  std::int64_t predicted = -1;
};

pass run_pass(const models::model& m, const tensor& image, std::int64_t label,
              const tensor* seed) {
  pass p;
  p.fp = m.forward(image.reshape(batched(image)), ad::norm_mode::eval);
  const tensor& logits2d = p.fp.graph.value(p.fp.logits);
  p.logits = logits2d.reshape({logits2d.size(1)});
  p.predicted = ops::argmax(p.logits);

  if (label >= 0) {
    const ad::node_id labels = p.fp.graph.add_constant(tensor{shape_t{1}, {static_cast<float>(label)}});
    const ad::node_id loss =
        p.fp.graph.add_transform(ad::make_cross_entropy(), {p.fp.logits, labels}, "atk_loss");
    p.loss = p.fp.graph.value(loss).item();
    p.fp.graph.backward(loss);
  } else {
    PELTA_CHECK(seed != nullptr && seed->numel() == p.logits.numel());
    p.loss = ops::dot(*seed, p.logits);
    p.fp.graph.backward_from(p.fp.logits, seed->reshape(logits2d.shape()));
  }
  return p;
}

class clear_oracle final : public gradient_oracle {
public:
  explicit clear_oracle(const models::model& m) : model_{&m} {}

  oracle_result query(const tensor& image, std::int64_t label) override {
    return finish(run_pass(*model_, image, label, nullptr), image.shape());
  }

  oracle_result query_logit_seed(const tensor& image, const tensor& seed) override {
    return finish(run_pass(*model_, image, -1, &seed), image.shape());
  }

  tensor attention_saliency(const tensor& image) override {
    models::forward_pass fp = model_->forward(image.reshape(batched(image)), ad::norm_mode::eval);
    return attention_rollout(*model_, fp.graph, image.shape());
  }

private:
  oracle_result finish(pass p, const shape_t& image_shape) {
    ++queries_;
    oracle_result r;
    r.gradient = p.fp.graph.adjoint(p.fp.input).reshape(image_shape);
    r.logits = std::move(p.logits);
    r.loss = p.loss;
    r.predicted = p.predicted;
    return r;
  }

  const models::model* model_;
};

// Random-uniform initialized transposed-convolution upsampler lifting the
// clear-layer adjoint δ_{L+1} back to image shape (§V-B).
class adjoint_upsampler {
public:
  tensor apply(const tensor& delta, const shape_t& image_shape, rng& gen) {
    const std::int64_t img_c = image_shape[0], img_h = image_shape[1], img_w = image_shape[2];
    if (delta.ndim() == 3) {
      // Token adjoint [1, T(+1), D] (ViT): drop the class token when
      // present, arrange the patch tokens on their grid as a channels-first
      // feature map, then transposed-convolve with stride = patch size.
      std::int64_t t = delta.size(1);
      const std::int64_t d = delta.size(2);
      std::int64_t first_row = 0;
      std::int64_t grid = static_cast<std::int64_t>(std::llround(std::sqrt(static_cast<double>(t))));
      if (grid * grid != t) {
        grid = static_cast<std::int64_t>(std::llround(std::sqrt(static_cast<double>(t - 1))));
        PELTA_CHECK_MSG(grid * grid == t - 1, "non-square token grid " << t);
        first_row = 1;
        t -= 1;
      }
      const std::int64_t ps = img_h / grid;
      PELTA_CHECK_MSG(ps * grid == img_h && img_h == img_w, "token grid incompatible with image");
      ensure_kernel(gen, {d, img_c, ps, ps});
      tensor grid_map{shape_t{1, d, grid, grid}};
      for (std::int64_t tok = 0; tok < t; ++tok)
        for (std::int64_t c = 0; c < d; ++c)
          grid_map.at(0, c, tok / grid, tok % grid) = delta.at(0, tok + first_row, c);
      return ops::conv2d_transpose(grid_map, kernel_, ps, 0)
          .reshape({img_c, img_h, img_w});
    }
    if (delta.ndim() == 2) {
      // Dense adjoint [1, D] (plain DNN, §III): random linear lift to pixel
      // space — the dense analogue of the transposed convolution, realized
      // as a 1x1-input transposed conv whose kernel spans the whole image.
      PELTA_CHECK_MSG(delta.size(0) == 1, "unexpected adjoint shape " << to_string(delta.shape()));
      ensure_kernel(gen, {delta.size(1), img_c, img_h, img_w});
      return ops::conv2d_transpose(delta.reshape({1, delta.size(1), 1, 1}), kernel_, 1, 0)
          .reshape({img_c, img_h, img_w});
    }
    PELTA_CHECK_MSG(delta.ndim() == 4 && delta.size(0) == 1,
                    "unexpected adjoint shape " << to_string(delta.shape()));
    // Spatial adjoint [1, C', h, w] (ResNet/BiT).
    const std::int64_t h = delta.size(2);
    if (h == img_h) {
      ensure_kernel(gen, {delta.size(1), img_c, 3, 3});
      return ops::conv2d_transpose(delta, kernel_, 1, 1).reshape({img_c, img_h, img_w});
    }
    const std::int64_t s = img_h / h;
    PELTA_CHECK_MSG(s * h == img_h, "adjoint spatial size incompatible with image");
    ensure_kernel(gen, {delta.size(1), img_c, s, s});
    return ops::conv2d_transpose(delta, kernel_, s, 0).reshape({img_c, img_h, img_w});
  }

  void invalidate() { kernel_ = tensor{}; }

private:
  void ensure_kernel(rng& gen, shape_t shape) {
    if (kernel_.ndim() == 4 && kernel_.shape() == shape) return;
    const std::int64_t fan = shape[0] * shape[2] * shape[3];
    const float a = 1.0f / std::sqrt(static_cast<float>(fan));
    kernel_ = tensor::rand_uniform(gen, std::move(shape), -a, a);
  }

  tensor kernel_;
};

class shielded_oracle final : public gradient_oracle {
public:
  /// depth == 0: the model's paper (§V-A) frontier; depth > 0: mask the
  /// first `depth` input-dependent transforms (ablation).
  shielded_oracle(const models::model& m, std::uint64_t kernel_seed, tee::enclave* enclave,
                  std::int64_t depth = 0)
      : model_{&m}, gen_{kernel_seed}, enclave_{enclave}, depth_{depth} {}

  oracle_result query(const tensor& image, std::int64_t label) override {
    return finish(run_pass(*model_, image, label, nullptr), image.shape());
  }

  oracle_result query_logit_seed(const tensor& image, const tensor& seed) override {
    return finish(run_pass(*model_, image, -1, &seed), image.shape());
  }

  tensor attention_saliency(const tensor& image) override {
    // Attention blocks are deep (clear) — rollout stays available to the
    // attacker even under the shield.
    models::forward_pass fp = model_->forward(image.reshape(batched(image)), ad::norm_mode::eval);
    return attention_rollout(*model_, fp.graph, image.shape());
  }

  void reset(rng& gen) override {
    gen_ = rng{gen.next_u64()};
    upsampler_.invalidate();
  }

private:
  oracle_result finish(pass p, const shape_t& image_shape) {
    ++queries_;
    // The device back-propagated the full graph; PELTA now decides what the
    // attacker can read from memory.
    const shield::shield_report report =
        depth_ > 0
            ? shield::pelta_shield(p.fp.graph,
                                   shield::select_first_k_transforms(p.fp.graph, depth_),
                                   enclave_, model_->name() + "/")
            : shield::pelta_shield_tags(p.fp.graph, model_->shield_frontier_tags(), enclave_,
                                        model_->name() + "/");
    const shield::masked_view view{p.fp.graph, report};

    oracle_result r;
    r.gradient = upsampler_.apply(view.clear_adjoint(), image_shape, gen_);
    r.logits = std::move(p.logits);
    r.loss = p.loss;
    r.predicted = p.predicted;
    return r;
  }

  const models::model* model_;
  rng gen_;
  tee::enclave* enclave_;
  std::int64_t depth_;
  adjoint_upsampler upsampler_;
};

// Related-work baseline: parameters shielded, input gradient exposed. The
// gradient is read *through the masked view* so the exposure is mechanical,
// not assumed.
class param_shield_oracle final : public gradient_oracle {
public:
  param_shield_oracle(const models::model& m, tee::enclave* enclave)
      : model_{&m}, enclave_{enclave} {}

  oracle_result query(const tensor& image, std::int64_t label) override {
    return finish(run_pass(*model_, image, label, nullptr), image.shape());
  }

  oracle_result query_logit_seed(const tensor& image, const tensor& seed) override {
    return finish(run_pass(*model_, image, -1, &seed), image.shape());
  }

  tensor attention_saliency(const tensor& image) override {
    models::forward_pass fp = model_->forward(image.reshape(batched(image)), ad::norm_mode::eval);
    return attention_rollout(*model_, fp.graph, image.shape());
  }

private:
  oracle_result finish(pass p, const shape_t& image_shape) {
    ++queries_;
    const shield::shield_report report =
        shield::param_gradient_shield(p.fp.graph, enclave_, model_->name() + "/pg/");
    const shield::masked_view view{p.fp.graph, report};
    PELTA_CHECK_MSG(shield::input_gradient_exposed(p.fp.graph, report),
                    "param-gradient shield unexpectedly masked the input");
    oracle_result r;
    r.gradient = view.adjoint(p.fp.input).reshape(image_shape);  // allowed: dL/dx is clear
    r.logits = std::move(p.logits);
    r.loss = p.loss;
    r.predicted = p.predicted;
    return r;
  }

  const models::model* model_;
  tee::enclave* enclave_;
};

}  // namespace

tensor attention_rollout(const models::model& m, const ad::graph& g,
                         const shape_t& image_shape) {
  const std::int64_t blocks = m.attention_blocks(), heads = m.attention_heads();
  PELTA_CHECK_MSG(blocks > 0 && heads > 0,
                  "attention_rollout on a model without attention: " << m.name());

  tensor rollout;  // [T+1, T+1]
  for (std::int64_t l = 0; l < blocks; ++l) {
    tensor avg;  // mean over heads of W_att
    for (std::int64_t h = 0; h < heads; ++h) {
      const ad::node_id id = g.find_tag(m.attention_softmax_tag(l, h));
      PELTA_CHECK_MSG(id != ad::invalid_node, "attention node missing for rollout");
      const tensor& probs = g.value(id);  // [1, T+1, T+1]
      tensor flat = probs.reshape({probs.size(1), probs.size(2)});
      if (h == 0)
        avg = std::move(flat);
      else
        avg.add_(flat);
    }
    avg.mul_(1.0f / static_cast<float>(heads));

    // A_l = row-normalized (0.5 W̄ + 0.5 I) — Eq. 4's per-block factor.
    const std::int64_t t1 = avg.size(0);
    for (std::int64_t i = 0; i < t1; ++i) {
      double row = 0.0;
      for (std::int64_t j = 0; j < t1; ++j) {
        avg.at(i, j) = 0.5f * avg.at(i, j) + (i == j ? 0.5f : 0.0f);
        row += avg.at(i, j);
      }
      for (std::int64_t j = 0; j < t1; ++j)
        avg.at(i, j) /= static_cast<float>(row);
    }
    rollout = (l == 0) ? std::move(avg) : ops::matmul(avg, rollout);
  }

  // Class-token attention to the patch tokens -> patch grid -> pixels.
  const std::int64_t t = rollout.size(0) - 1;
  const std::int64_t grid = static_cast<std::int64_t>(std::llround(std::sqrt(static_cast<double>(t))));
  PELTA_CHECK_MSG(grid * grid == t, "non-square token grid in rollout");
  tensor patch_map{shape_t{1, grid, grid}};
  for (std::int64_t tok = 0; tok < t; ++tok)
    patch_map.at(0, tok / grid, tok % grid) = rollout.at(0, tok + 1);

  const std::int64_t img_c = image_shape[0], img_h = image_shape[1], img_w = image_shape[2];
  const std::int64_t factor = img_h / grid;
  tensor pixel_map = ops::upsample_bilinear(patch_map, factor);  // [1, H, W]
  const float mu = ops::mean(pixel_map);
  if (mu > 0.0f) pixel_map.mul_(1.0f / mu);  // unit mean: keeps gradient scale

  tensor out{shape_t{img_c, img_h, img_w}};
  for (std::int64_t c = 0; c < img_c; ++c)
    for (std::int64_t y = 0; y < img_h; ++y)
      for (std::int64_t x = 0; x < img_w; ++x) out.at(c, y, x) = pixel_map.at(0, y, x);
  return out;
}

std::unique_ptr<gradient_oracle> make_clear_oracle(const models::model& m) {
  return std::make_unique<clear_oracle>(m);
}

std::unique_ptr<gradient_oracle> make_shielded_oracle(const models::model& m,
                                                      std::uint64_t kernel_seed,
                                                      tee::enclave* enclave) {
  return std::make_unique<shielded_oracle>(m, kernel_seed, enclave);
}

std::unique_ptr<gradient_oracle> make_shielded_oracle_depth(const models::model& m,
                                                            std::int64_t depth,
                                                            std::uint64_t kernel_seed,
                                                            tee::enclave* enclave) {
  PELTA_CHECK_MSG(depth >= 1, "ablation depth must be >= 1");
  return std::make_unique<shielded_oracle>(m, kernel_seed, enclave, depth);
}

std::unique_ptr<gradient_oracle> make_param_shield_oracle(const models::model& m,
                                                          tee::enclave* enclave) {
  return std::make_unique<param_shield_oracle>(m, enclave);
}

}  // namespace pelta::attacks
