#include "attacks/iterative.h"

#include <cmath>

#include "tensor/ops.h"

namespace pelta::attacks {

namespace {

void trace_point(attack_result& r, bool enabled, std::int64_t step, float loss,
                 const tensor& x, const tensor& x0, std::int64_t predicted) {
  if (!enabled) return;
  r.trajectory.push_back(trajectory_point{step, loss, linf_distance(x, x0), predicted});
}

// Targeted mode plumbing (see iterative.h): the loss is queried at the
// target class and descended; the goal flips to hitting the target.
struct goal {
  std::int64_t label;   ///< class the oracle is queried with
  float direction;      ///< +1 ascend (untargeted), -1 descend (targeted)
  std::int64_t target;  ///< < 0 = untargeted

  goal(std::int64_t true_label, std::int64_t target_class)
      : label{target_class >= 0 ? target_class : true_label},
        direction{target_class >= 0 ? -1.0f : 1.0f},
        target{target_class} {
    PELTA_CHECK_MSG(target_class < 0 || target_class != true_label,
                    "targeted attack: target equals the true label");
    true_label_ = true_label;
  }

  bool achieved(std::int64_t predicted) const {
    return target >= 0 ? predicted == target : predicted != true_label_;
  }

private:
  std::int64_t true_label_;
};

}  // namespace

attack_result run_fgsm(gradient_oracle& oracle, const tensor& x0, std::int64_t label,
                       const fgsm_config& config) {
  const goal g{label, config.target};
  attack_result r;
  const oracle_result q = oracle.query(x0, g.label);
  tensor x = x0;
  x.add_scaled_(ops::sign(q.gradient), g.direction * config.eps);
  r.adversarial = project_linf(x, x0, config.eps);
  r.queries = 1;

  const oracle_result check = oracle.query(r.adversarial, g.label);
  ++r.queries;
  r.misclassified = g.achieved(check.predicted);
  return r;
}

attack_result run_pgd(gradient_oracle& oracle, const tensor& x0, std::int64_t label,
                      const pgd_config& config) {
  const goal g{label, config.target};
  attack_result r;
  tensor x = x0;
  for (std::int64_t step = 0; step < config.steps; ++step) {
    const oracle_result q = oracle.query(x, g.label);
    ++r.queries;
    trace_point(r, config.trace, step, q.loss, x, x0, q.predicted);
    if (config.early_stop && g.achieved(q.predicted)) {
      r.adversarial = std::move(x);
      r.misclassified = true;
      return r;
    }
    x.add_scaled_(ops::sign(q.gradient), g.direction * config.eps_step);
    x = project_linf(x, x0, config.eps);
  }
  const oracle_result final_q = oracle.query(x, g.label);
  ++r.queries;
  trace_point(r, config.trace, config.steps, final_q.loss, x, x0, final_q.predicted);
  r.misclassified = g.achieved(final_q.predicted);
  r.adversarial = std::move(x);
  return r;
}

attack_result run_mim(gradient_oracle& oracle, const tensor& x0, std::int64_t label,
                      const mim_config& config) {
  const goal gl{label, config.target};
  attack_result r;
  tensor x = x0;
  tensor velocity{x0.shape()};
  for (std::int64_t step = 0; step < config.steps; ++step) {
    const oracle_result q = oracle.query(x, gl.label);
    ++r.queries;
    trace_point(r, config.trace, step, q.loss, x, x0, q.predicted);
    if (config.early_stop && gl.achieved(q.predicted)) {
      r.adversarial = std::move(x);
      r.misclassified = true;
      return r;
    }
    // g_µ(i) = µ g_µ(i-1) + grad / ||grad||₁  (Dong et al. Eq. 6)
    tensor g = q.gradient;
    const float l1 = ops::sum(ops::abs(g));
    if (l1 > 0.0f) g.mul_(1.0f / l1);
    velocity.mul_(config.mu);
    velocity.add_(g);
    x.add_scaled_(ops::sign(velocity), gl.direction * config.eps_step);
    x = project_linf(x, x0, config.eps);
  }
  const oracle_result final_q = oracle.query(x, gl.label);
  ++r.queries;
  trace_point(r, config.trace, config.steps, final_q.loss, x, x0, final_q.predicted);
  r.misclassified = gl.achieved(final_q.predicted);
  r.adversarial = std::move(x);
  return r;
}

attack_result run_apgd(gradient_oracle& oracle, const tensor& x0, std::int64_t label,
                       const apgd_config& config, rng& restart_gen) {
  attack_result r;
  tensor global_best = x0;
  float global_best_loss = -1e30f;

  const std::int64_t per_restart =
      std::max<std::int64_t>(4, config.max_queries / std::max<std::int64_t>(1, config.restarts));

  for (std::int64_t restart = 0; restart < config.restarts; ++restart) {
    oracle.reset(restart_gen);  // shielded setting: fresh upsampling kernel

    // Checkpoint schedule p_{j+1} = p_j + max(p_j - p_{j-1} - 0.03, 0.06).
    std::vector<std::int64_t> checkpoints;
    {
      double p_prev = 0.0, p_cur = 0.22;
      checkpoints.push_back(static_cast<std::int64_t>(p_cur * static_cast<double>(per_restart)));
      while (checkpoints.back() < per_restart) {
        const double p_next = p_cur + std::max(p_cur - p_prev - 0.03, 0.06);
        p_prev = p_cur;
        p_cur = p_next;
        checkpoints.push_back(static_cast<std::int64_t>(p_cur * static_cast<double>(per_restart)));
      }
    }

    float step_size = 2.0f * config.eps;
    tensor x = x0;
    tensor x_prev = x0;
    tensor best = x0;
    float best_loss = -1e30f;
    float best_loss_at_checkpoint = -1e30f;
    float step_at_checkpoint = step_size;
    std::int64_t ascents = 0, since_checkpoint = 0;
    std::size_t next_cp = 0;
    float prev_loss = -1e30f;

    for (std::int64_t k = 0; k < per_restart; ++k) {
      const oracle_result q = oracle.query(x, label);
      ++r.queries;
      if (q.loss > best_loss) {
        best_loss = q.loss;
        best = x;
      }
      if (q.loss > prev_loss) ++ascents;
      prev_loss = q.loss;
      ++since_checkpoint;

      if (config.early_stop && q.predicted != label) {
        r.adversarial = std::move(x);
        r.misclassified = true;
        return r;
      }

      // z = P(x + η sign g); x⁺ = P(x + α (z - x) + (1-α)(x - x_prev))
      tensor z = x;
      z.add_scaled_(ops::sign(q.gradient), step_size);
      z = project_linf(z, x0, config.eps);
      tensor x_next = x;
      x_next.add_scaled_(ops::sub(z, x), config.alpha);
      x_next.add_scaled_(ops::sub(x, x_prev), 1.0f - config.alpha);
      x_next = project_linf(x_next, x0, config.eps);
      x_prev = std::move(x);
      x = std::move(x_next);

      if (next_cp < checkpoints.size() && k + 1 >= checkpoints[next_cp]) {
        const bool stalled =
            static_cast<float>(ascents) < config.rho * static_cast<float>(since_checkpoint);
        const bool no_progress =
            step_size == step_at_checkpoint && best_loss == best_loss_at_checkpoint;
        if (stalled || no_progress) {
          step_size *= 0.5f;
          x = best;  // restart the search from the incumbent
          x_prev = best;
        }
        step_at_checkpoint = step_size;
        best_loss_at_checkpoint = best_loss;
        ascents = 0;
        since_checkpoint = 0;
        ++next_cp;
      }
    }

    if (best_loss > global_best_loss) {
      global_best_loss = best_loss;
      global_best = best;
    }
  }

  const oracle_result final_q = oracle.query(global_best, label);
  ++r.queries;
  r.misclassified = final_q.predicted != label;
  r.adversarial = std::move(global_best);
  return r;
}

}  // namespace pelta::attacks
