#include "attacks/random_uniform.h"

namespace pelta::attacks {

tensor run_random_uniform(const tensor& x0, const random_uniform_config& config, rng& gen) {
  tensor x = x0;
  for (float& v : x.data()) v += gen.uniform(-config.eps, config.eps);
  x.clamp_(0.0f, 1.0f);
  return x;
}

}  // namespace pelta::attacks
