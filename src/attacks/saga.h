// Self-Attention Gradient Attack (Mahmood et al., §V-B) against the
// ViT + BiT random-selection ensemble:
//
//   x^(i+1) = x^(i) + ε_step · sign(G_blend(x^(i)))                 (Eq. 2)
//   G_blend = α_k ∂L_k/∂x + α_v φ_v ⊙ ∂L_v/∂x,  α_v = 1 - α_k      (Eq. 3)
//
// φ_v is the self-attention rollout map of Eq. 4, applied at pixel level
// (class-token attention row → patch grid → bilinear upsample), following
// the SAGA reference implementation. Under a PELTA shield the corresponding
// ∂L/∂x term degrades to the upsampled adjoint its oracle provides; the
// attention maps are deep in the network and stay readable either way.
#pragma once

#include "attacks/attack.h"

namespace pelta::attacks {

struct saga_config {
  float eps = 0.031f;
  float eps_step = 0.0031f;
  std::int64_t steps = 20;
  /// CNN-gradient weight; α_v = 1 - α_k. The paper's Table II values
  /// (2e-4 / 1e-3) are tuned to the *raw* gradient scales of their models,
  /// where BiT gradients dwarf the φ_v-weighted ViT term. With `normalize`
  /// on (each term scaled to unit l∞ first, our simulator default), the
  /// balanced effective weight is 0.5.
  float alpha_k = 0.5f;
  bool normalize = true;
  bool early_stop = true;  ///< stop when *both* members are fooled
};

struct saga_result {
  tensor adversarial;
  bool vit_fooled = false;
  bool cnn_fooled = false;
  std::int64_t queries = 0;
};

/// `vit_oracle` must belong to the transformer member (provides
/// attention_saliency); `cnn_oracle` to the CNN member. Either may be the
/// clear or the shielded variant — that is exactly Table IV's four settings.
saga_result run_saga(gradient_oracle& vit_oracle, gradient_oracle& cnn_oracle, const tensor& x0,
                     std::int64_t label, const saga_config& config);

}  // namespace pelta::attacks
