// Carlini & Wagner attack (regularization-based, §V-B): iteratively
// minimizes ||δ||₂² + c · f(x0 + δ) where f is the logit-margin term
// f(x) = max(Z_y - max_{j≠y} Z_j, -κ) with confidence κ.
#pragma once

#include "attacks/attack.h"

namespace pelta::attacks {

struct cw_config {
  float confidence = 50.0f;  ///< κ
  float eps_step = 0.00155f; ///< gradient-descent learning rate
  std::int64_t steps = 30;
  float c = 10.0f;           ///< misclassification weight
  bool early_stop = true;
};

attack_result run_cw(gradient_oracle& oracle, const tensor& x0, std::int64_t label,
                     const cw_config& config);

}  // namespace pelta::attacks
