// Gradient-inversion attack and the §II defense matrix.
//
// The related-work shields (DarkneTZ, PPFL, GradSec) protect ∇θL because
// parameter gradients leak private training data — the inversion threat.
// PELTA protects ∇ₓL because input gradients power evasion attacks. The
// paper contrasts the two in §II; this module makes the contrast
// measurable by implementing the classic inversion primitive:
//
// For batch-size-1 cross-entropy training of a model whose first layer is
// affine over the raw input (the §III DNN, models/mlp.h), the chain rule
// factors the first layer's gradients as a rank-1 outer product
//
//     ∇W₁ = xᵀ δ₁,   ∇b₁ = δ₁
//
// so anyone who can read them reconstructs the private input exactly:
// x_j = ∇W₁[j,i] / ∇b₁[i]. (Zhu et al.'s DLG generalizes this by
// optimization; the analytic first-layer case is the strongest leak and
// needs no iteration.)
//
// Three observation policies cover the matrix's rows:
//   clear          — no shield: both attacks work
//   param_gradient — GradSec-style: inversion blocked, evasion untouched
//   pelta          — frontier masked: evasion blocked; the *first layer's*
//                    gradients happen to sit inside the frontier, so the
//                    analytic inversion is blocked too (deeper layers stay
//                    readable but only leak through iterative DLG, which
//                    loses the closed form)
#pragma once

#include "attacks/runner.h"
#include "models/mlp.h"

namespace pelta::attacks {

enum class observation_policy : std::uint8_t { clear, param_gradient, pelta };

const char* observation_policy_name(observation_policy policy);

struct inversion_result {
  tensor reconstruction;  ///< [C,H,W]; meaningful only when !blocked
  float cosine = 0.0f;    ///< similarity to the true private input
  float mse = 0.0f;
  bool blocked = false;   ///< the shield denied the required gradients
};

/// One local training step (batch = 1) on (image, label); the adversary
/// then reads the first layer's parameter gradients through the masked
/// view of `policy` and runs the rank-1 reconstruction.
inversion_result run_gradient_inversion(const models::mlp_model& m, const tensor& image,
                                        std::int64_t label, observation_policy policy);

/// Mean reconstruction cosine over `max_samples` test images (blocked
/// observations contribute 0 — the attacker learned nothing).
float inversion_quality(const models::mlp_model& m, const data::dataset& ds,
                        observation_policy policy, std::int64_t max_samples);

}  // namespace pelta::attacks
