#include "attacks/inversion.h"

#include <cmath>

#include "autodiff/ops_loss.h"
#include "shield/baselines.h"
#include "shield/masked_view.h"
#include "shield/policy.h"
#include "tensor/ops.h"

namespace pelta::attacks {

const char* observation_policy_name(observation_policy policy) {
  switch (policy) {
    case observation_policy::clear: return "no shield";
    case observation_policy::param_gradient: return "param-gradient shield (GradSec)";
    case observation_policy::pelta: return "PELTA";
  }
  return "?";
}

namespace {

ad::node_id find_parameter_node(const ad::graph& g, const std::string& param_name) {
  for (ad::node_id id = 0; id < g.node_count(); ++id) {
    const ad::node& n = g.at(id);
    if (n.kind == ad::node_kind::parameter && n.param != nullptr && n.param->name == param_name)
      return id;
  }
  throw error{"no parameter node named " + param_name};
}

}  // namespace

inversion_result run_gradient_inversion(const models::mlp_model& m, const tensor& image,
                                        std::int64_t label, observation_policy policy) {
  PELTA_CHECK_MSG(image.ndim() == 3, "expects one [C,H,W] image");

  // The victim's local training step (batch = 1).
  models::forward_pass fp =
      m.forward(image.reshape({1, image.size(0), image.size(1), image.size(2)}),
                ad::norm_mode::train);
  const ad::node_id labels =
      fp.graph.add_constant(tensor{shape_t{1}, {static_cast<float>(label)}});
  const ad::node_id loss =
      fp.graph.add_transform(ad::make_cross_entropy(), {fp.logits, labels}, "inv_loss");
  fp.graph.backward(loss);

  // What the adversary may observe.
  shield::shield_report report;  // clear: nothing masked
  switch (policy) {
    case observation_policy::clear:
      break;
    case observation_policy::param_gradient:
      report = shield::param_gradient_shield(fp.graph, nullptr);
      break;
    case observation_policy::pelta:
      report = shield::pelta_shield_tags(fp.graph, m.shield_frontier_tags(), nullptr);
      break;
  }
  const shield::masked_view view{fp.graph, report};

  inversion_result out;
  const ad::node_id w_node = find_parameter_node(fp.graph, "mlp.fc0.w");
  const ad::node_id b_node = find_parameter_node(fp.graph, "mlp.fc0.b");
  tensor grad_w, grad_b;
  try {
    grad_w = view.adjoint(w_node);  // [in, out] = xᵀ δ
    grad_b = view.adjoint(b_node);  // [out]     = δ
  } catch (const tee::enclave_access_error&) {
    out.blocked = true;
    return out;
  }

  // Rank-1 reconstruction: pick the output unit with the largest |δ_i|.
  std::int64_t best = ops::argmax(ops::abs(grad_b));
  const float delta_i = grad_b[best];
  if (std::abs(delta_i) < 1e-12f) return out;  // degenerate step: zero loss

  const std::int64_t in_dim = grad_w.size(0);
  tensor flat{shape_t{in_dim}};
  for (std::int64_t j = 0; j < in_dim; ++j) flat[j] = grad_w.at(j, best) / delta_i;
  out.reconstruction = flat.reshape(image.shape());

  const float dot = ops::dot(out.reconstruction, image);
  const float denom = ops::norm_l2(out.reconstruction) * ops::norm_l2(image);
  out.cosine = denom > 0.0f ? dot / denom : 0.0f;
  out.mse = [&] {
    const tensor diff = ops::sub(out.reconstruction, image);
    return ops::dot(diff, diff) / static_cast<float>(diff.numel());
  }();
  return out;
}

float inversion_quality(const models::mlp_model& m, const data::dataset& ds,
                        observation_policy policy, std::int64_t max_samples) {
  PELTA_CHECK_MSG(max_samples > 0, "max_samples must be positive");
  const std::int64_t n = std::min(max_samples, ds.test_size());
  float acc = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    const inversion_result r = run_gradient_inversion(m, ds.test_image(i), ds.test_label(i), policy);
    if (!r.blocked) acc += std::max(0.0f, r.cosine);
  }
  return acc / static_cast<float>(n);
}

}  // namespace pelta::attacks
