// Common attack types and helpers (Fig. 3: maximum-allowable attacks stay
// inside an l∞ ε-ball around the origin sample; every iterate is also
// clamped to the valid pixel range [0,1]).
#pragma once

#include "attacks/oracle.h"

namespace pelta::attacks {

/// Per-step record of an attack trajectory (Fig. 3 bench).
struct trajectory_point {
  std::int64_t step = 0;
  float loss = 0.0f;
  float linf_from_origin = 0.0f;
  std::int64_t predicted = -1;
};

/// Outcome of one attack run on one sample.
struct attack_result {
  tensor adversarial;                      ///< final (or best) iterate
  std::int64_t queries = 0;                ///< oracle queries consumed
  bool misclassified = false;              ///< predicted != label at the end
  std::vector<trajectory_point> trajectory;///< filled only when traced
};

/// Project x into the l∞ ε-ball around x0, then clamp to [0,1] (the P
/// operator of the PGD step, composed with the pixel-range constraint).
tensor project_linf(const tensor& x, const tensor& x0, float eps);

/// ||x - x0||∞.
float linf_distance(const tensor& x, const tensor& x0);

}  // namespace pelta::attacks
