#include "attacks/saga.h"

#include "tensor/ops.h"

namespace pelta::attacks {

saga_result run_saga(gradient_oracle& vit_oracle, gradient_oracle& cnn_oracle, const tensor& x0,
                     std::int64_t label, const saga_config& config) {
  saga_result r;
  const float alpha_v = 1.0f - config.alpha_k;
  tensor x = x0;

  for (std::int64_t step = 0; step < config.steps; ++step) {
    const oracle_result qv = vit_oracle.query(x, label);
    const oracle_result qk = cnn_oracle.query(x, label);
    const tensor phi_v = vit_oracle.attention_saliency(x);
    r.queries += 3;

    r.vit_fooled = qv.predicted != label;
    r.cnn_fooled = qk.predicted != label;
    if (config.early_stop && r.vit_fooled && r.cnn_fooled) {
      r.adversarial = std::move(x);
      return r;
    }

    // G_blend = α_k g_k + α_v (φ_v ⊙ g_v)
    tensor g_vit = ops::mul(phi_v, qv.gradient);
    tensor g_cnn = qk.gradient;
    if (config.normalize) {
      const float nv = ops::norm_linf(g_vit);
      const float nk = ops::norm_linf(g_cnn);
      if (nv > 0.0f) g_vit.mul_(1.0f / nv);
      if (nk > 0.0f) g_cnn.mul_(1.0f / nk);
    }
    tensor blend = std::move(g_vit);
    blend.mul_(alpha_v);
    blend.add_scaled_(g_cnn, config.alpha_k);

    x.add_scaled_(ops::sign(blend), config.eps_step);
    x = project_linf(x, x0, config.eps);
  }

  const oracle_result fv = vit_oracle.query(x, label);
  const oracle_result fk = cnn_oracle.query(x, label);
  r.queries += 2;
  r.vit_fooled = fv.predicted != label;
  r.cnn_fooled = fk.predicted != label;
  r.adversarial = std::move(x);
  return r;
}

}  // namespace pelta::attacks
