// Gradient oracles: what the attacker can extract from its local model copy.
//
//   * clear_oracle    — open white box: the true ∇ₓL (no defense).
//   * shielded_oracle — PELTA in place: the true gradient chain stops at the
//     enclave, so the oracle returns the BPDA-style substitute the paper's
//     attacker uses (§IV-C, §V-B): the adjoint δ_{L+1} of the shallowest
//     clear layer lifted to input shape by a random-uniform initialized
//     transposed convolution.
//
// Both oracles also expose logits (the deep, clear part of the model) and
// support custom objectives via a seed on the logits (used by C&W), plus
// the ViT attention-rollout saliency needed by SAGA's φᵥ term (Eq. 4).
#pragma once

#include <memory>

#include "models/model.h"
#include "shield/masked_view.h"

namespace pelta::attacks {

struct oracle_result {
  tensor gradient;  ///< (substitute) gradient w.r.t. the input, [C,H,W]
  tensor logits;    ///< [classes] — the clear model head
  float loss = 0.0f;
  std::int64_t predicted = -1;
};

class gradient_oracle {
public:
  virtual ~gradient_oracle() = default;

  /// Gradient of the cross-entropy loss at (image, label).
  virtual oracle_result query(const tensor& image, std::int64_t label) = 0;

  /// Gradient of <seed, logits> w.r.t. the input — arbitrary logit-space
  /// objectives (C&W). `seed` has shape [classes].
  virtual oracle_result query_logit_seed(const tensor& image, const tensor& seed) = 0;

  /// ViT attention-rollout saliency [C,H,W] for SAGA's φᵥ (Eq. 4); throws
  /// for models without attention blocks.
  virtual tensor attention_saliency(const tensor& image) = 0;

  /// Re-randomize substitute machinery (APGD restarts re-draw the
  /// upsampling kernel); no-op for the clear oracle.
  virtual void reset(rng& /*gen*/) {}

  /// Number of forward/backward queries issued so far.
  std::int64_t queries() const { return queries_; }

protected:
  std::int64_t queries_ = 0;
};

/// Open white box (non-shielded setting of Tables III/IV).
std::unique_ptr<gradient_oracle> make_clear_oracle(const models::model& m);

/// PELTA-shielded white box. `kernel_seed` draws the upsampling kernel.
/// When `enclave` is non-null every pass's masked tensors are stored into
/// it (Table I worst-case accounting); otherwise a report-only shield runs.
std::unique_ptr<gradient_oracle> make_shielded_oracle(const models::model& m,
                                                      std::uint64_t kernel_seed,
                                                      tee::enclave* enclave = nullptr);

/// Same, but Select() masks the first `depth` input-dependent transforms
/// instead of the model's default frontier — the shield-depth ablation.
std::unique_ptr<gradient_oracle> make_shielded_oracle_depth(const models::model& m,
                                                            std::int64_t depth,
                                                            std::uint64_t kernel_seed,
                                                            tee::enclave* enclave = nullptr);

/// Related-work baseline (§II: DarkneTZ / PPFL / GradSec): parameters and
/// their gradients are enclave-resident, but ∇ₓL is not — this oracle reads
/// the true input gradient straight through the masked view, demonstrating
/// that the policy does not mitigate evasion attacks.
std::unique_ptr<gradient_oracle> make_param_shield_oracle(const models::model& m,
                                                          tee::enclave* enclave = nullptr);

/// Attention rollout over a ViT forward pass (shared with SAGA):
/// R = Π_l row_norm(0.5·mean_h W_att + 0.5·I); saliency = class-token row,
/// reshaped to the patch grid, bilinearly upsampled to pixels, normalized
/// to unit mean, broadcast over channels.
tensor attention_rollout(const models::model& m, const ad::graph& g, const shape_t& image_shape);

}  // namespace pelta::attacks
