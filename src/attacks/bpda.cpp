#include "attacks/bpda.h"

#include <atomic>

#include "models/trainer.h"
#include "models/zoo.h"
#include "nn/optimizer.h"
#include "tensor/parallel.h"

namespace pelta::attacks {

surrogate_result train_surrogate(const models::model& victim, const data::dataset& attacker_data,
                                 const surrogate_config& config) {
  PELTA_CHECK_MSG(!config.architecture.empty(), "surrogate needs an architecture name");
  models::task_spec task;
  task.image_size = attacker_data.config().image_size;
  task.channels = attacker_data.config().channels;
  task.classes = attacker_data.config().classes;
  task.seed = config.seed;  // fresh init: the attacker holds no weight priors

  surrogate_result result;
  result.surrogate = models::make_model(config.architecture, task);

  // Labels: the victim's predictions over the attacker's data (distill) or
  // the attacker's own ground truth.
  tensor labels = attacker_data.train_labels();
  if (config.distill) {
    labels = models::predict(victim, attacker_data.train_images());
    result.label_queries = attacker_data.train_size();
  }

  nn::adam opt{config.lr};
  data::batch_iterator batches{attacker_data.train_size(), config.batch_size,
                               rng{config.seed + 1}};
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    const std::int64_t nb = batches.batches_per_epoch();
    for (std::int64_t i = 0; i < nb; ++i) {
      const std::vector<std::int64_t> idx = batches.next();
      data::batch b = attacker_data.gather_train(idx);
      for (std::size_t k = 0; k < idx.size(); ++k)
        b.labels[static_cast<std::int64_t>(k)] = labels[idx[k]];
      result.surrogate->params().zero_grads();
      models::loss_and_grad_sharded(*result.surrogate, b, config.shards);
      opt.step(result.surrogate->params());
    }
  }

  // Agreement: how often surrogate and victim answer alike on held-out data.
  const tensor sv = models::predict(*result.surrogate, attacker_data.test_images());
  const tensor vv = models::predict(victim, attacker_data.test_images());
  std::int64_t same = 0;
  for (std::int64_t i = 0; i < sv.numel(); ++i)
    if (sv[i] == vv[i]) ++same;
  result.agreement = static_cast<float>(same) / static_cast<float>(sv.numel());
  return result;
}

robust_eval evaluate_transfer_attack(const models::model& victim,
                                     const models::model& surrogate, const data::dataset& ds,
                                     const suite_params& params, std::int64_t max_samples,
                                     std::uint64_t seed) {
  const std::vector<std::int64_t> candidates =
      correctly_classified_indices(victim, ds, max_samples);
  PELTA_CHECK_MSG(!candidates.empty(), "victim classifies no test sample correctly");

  const rng root{seed};
  // Lock-free on purpose (lock discipline, docs/ARCHITECTURE.md): these are
  // commutative-sum atomics incremented from parallel_for chunks — order
  // cannot affect the integer totals, so no mutex / PELTA_GUARDED_BY is
  // needed and fetch-add contention is the only synchronization.
  std::atomic<std::int64_t> successes{0};
  std::atomic<std::int64_t> total_queries{0};

  parallel_for(static_cast<std::int64_t>(candidates.size()), [&](std::int64_t i) {
    rng sample_rng = root.fork(static_cast<std::uint64_t>(i));
    (void)sample_rng.next_u64();
    auto oracle = make_clear_oracle(surrogate);  // white box on the surrogate
    const std::int64_t idx = candidates[static_cast<std::size_t>(i)];
    pgd_config c;
    c.eps = params.eps;
    c.eps_step = params.eps_step;
    c.steps = params.pgd_steps;
    c.early_stop = false;  // surrogate success is not the goal; transfer is
    const attack_result r = run_pgd(*oracle, ds.test_image(idx), ds.test_label(idx), c);
    total_queries.fetch_add(r.queries, std::memory_order_relaxed);
    // Replay against the victim.
    if (models::predict_one(victim, r.adversarial) != ds.test_label(idx))
      successes.fetch_add(1, std::memory_order_relaxed);
  });

  robust_eval out;
  out.samples = static_cast<std::int64_t>(candidates.size());
  out.attack_successes = successes.load();
  out.robust_accuracy =
      1.0f - static_cast<float>(out.attack_successes) / static_cast<float>(out.samples);
  out.mean_queries = static_cast<double>(total_queries.load()) / static_cast<double>(out.samples);
  return out;
}

}  // namespace pelta::attacks
