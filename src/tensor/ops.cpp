#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"
#include "tensor/parallel.h"

namespace pelta::ops {

namespace {

// Elementwise loops split across the pool only above this many elements per
// chunk; below it the whole tensor runs inline on the calling thread with no
// pool (or std::function) overhead. Each output element depends on its own
// inputs only, so the split is bit-identical for every PELTA_THREADS value.
constexpr std::int64_t k_elementwise_grain = 1 << 15;

template <class F>
void elementwise_dispatch(std::int64_t n, const F& chunk) {
  if (n > k_elementwise_grain)
    parallel_for_range(n, k_elementwise_grain,
                       [&](std::int64_t lo, std::int64_t hi) { chunk(lo, hi); });
  else
    chunk(0, n);
}

// F is a template parameter (not a function pointer) so the compiler can
// inline the op into the vectorized loop body.
template <class F>
tensor zip(const tensor& a, const tensor& b, const char* what, const F& f) {
  PELTA_CHECK_MSG(a.same_shape(b), what << " shape mismatch " << to_string(a.shape()) << " vs "
                                        << to_string(b.shape()));
  tensor out{a.shape()};
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.data().data();
  elementwise_dispatch(out.numel(), [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
  });
  return out;
}

template <class F>
tensor unary(const tensor& a, const F& f) {
  tensor out{a.shape()};
  const float* pa = a.data().data();
  float* po = out.data().data();
  elementwise_dispatch(out.numel(), [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) po[i] = f(pa[i]);
  });
  return out;
}

}  // namespace

tensor add(const tensor& a, const tensor& b) {
  return zip(a, b, "add", [](float x, float y) { return x + y; });
}
tensor sub(const tensor& a, const tensor& b) {
  return zip(a, b, "sub", [](float x, float y) { return x - y; });
}
tensor mul(const tensor& a, const tensor& b) {
  return zip(a, b, "mul", [](float x, float y) { return x * y; });
}
tensor div(const tensor& a, const tensor& b) {
  return zip(a, b, "div", [](float x, float y) { return x / y; });
}

tensor add_scalar(const tensor& a, float s) {
  return unary(a, [s](float x) { return x + s; });
}

tensor mul_scalar(const tensor& a, float s) {
  return unary(a, [s](float x) { return x * s; });
}

tensor neg(const tensor& a) {
  return unary(a, [](float x) { return -x; });
}
tensor relu(const tensor& a) {
  return unary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
tensor exp(const tensor& a) {
  return unary(a, [](float x) { return std::exp(x); });
}
tensor log(const tensor& a) {
  return unary(a, [](float x) { return std::log(x); });
}
tensor sqrt(const tensor& a) {
  return unary(a, [](float x) { return std::sqrt(x); });
}
tensor tanh(const tensor& a) {
  return unary(a, [](float x) { return std::tanh(x); });
}
tensor abs(const tensor& a) {
  return unary(a, [](float x) { return std::fabs(x); });
}
tensor sign(const tensor& a) {
  return unary(a, [](float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); });
}

tensor clamp(const tensor& a, float lo, float hi) {
  tensor out = a;
  out.clamp_(lo, hi);
  return out;
}

tensor map(const tensor& a, const std::function<float(float)>& f) {
  return unary(a, f);
}

float sum(const tensor& a) {
  double acc = 0.0;  // double accumulator for numerical stability
  for (float x : a.data()) acc += x;
  return static_cast<float>(acc);
}

float mean(const tensor& a) {
  PELTA_CHECK(a.numel() > 0);
  return sum(a) / static_cast<float>(a.numel());
}

float max(const tensor& a) {
  PELTA_CHECK(a.numel() > 0);
  return *std::max_element(a.data().begin(), a.data().end());
}

float min(const tensor& a) {
  PELTA_CHECK(a.numel() > 0);
  return *std::min_element(a.data().begin(), a.data().end());
}

std::int64_t argmax(const tensor& a) {
  PELTA_CHECK(a.numel() > 0);
  auto d = a.data();
  return static_cast<std::int64_t>(std::max_element(d.begin(), d.end()) - d.begin());
}

tensor argmax_lastdim(const tensor& a) {
  PELTA_CHECK_MSG(a.ndim() >= 1, "argmax_lastdim on scalar");
  const std::int64_t last = a.size(-1);
  const std::int64_t rows = a.numel() / last;
  shape_t out_shape{a.shape().begin(), a.shape().end() - 1};
  tensor out{out_shape};
  auto pa = a.data();
  auto po = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = pa.data() + r * last;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < last; ++c)
      if (row[c] > row[best]) best = c;
    po[static_cast<std::size_t>(r)] = static_cast<float>(best);
  }
  return out;
}

float norm_l2(const tensor& a) {
  double acc = 0.0;
  for (float x : a.data()) acc += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(acc));
}

float norm_linf(const tensor& a) {
  float m = 0.0f;
  for (float x : a.data()) m = std::max(m, std::fabs(x));
  return m;
}

float dot(const tensor& a, const tensor& b) {
  PELTA_CHECK_MSG(a.same_shape(b), "dot shape mismatch");
  double acc = 0.0;
  auto pa = a.data();
  auto pb = b.data();
  for (std::size_t i = 0; i < pa.size(); ++i) acc += static_cast<double>(pa[i]) * pb[i];
  return static_cast<float>(acc);
}

namespace {

using detail::gemm_accumulate;

// Below this flop count the pool submit overhead beats the row split.
constexpr std::int64_t k_parallel_flops = 1 << 15;

}  // namespace

tensor matmul(const tensor& a, const tensor& b) {
  PELTA_CHECK_MSG(a.ndim() == 2 && b.ndim() == 2,
                  "matmul expects 2-d, got " << to_string(a.shape()) << " x " << to_string(b.shape()));
  PELTA_CHECK_MSG(a.size(1) == b.size(0),
                  "matmul inner dim mismatch " << to_string(a.shape()) << " x " << to_string(b.shape()));
  const std::int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  tensor out{shape_t{m, n}};
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.data().data();
  detail::finite_cache b_finite;  // shared across chunks: B scanned at most once
  if (m >= 2 && m * k * n >= k_parallel_flops) {
    // Output rows are disjoint, so the split is bit-identical to serial.
    // The grain rounds up to the register-tile height so mid-matrix chunks
    // keep full row tiles (a throughput concern only — element values are
    // independent of the chunk partitioning).
    constexpr std::int64_t mr = detail::k_gemm_mr;
    std::int64_t grain =
        std::max<std::int64_t>(1, m / (8 * static_cast<std::int64_t>(parallel_thread_count())));
    grain = (grain + mr - 1) / mr * mr;
    parallel_for_range(m, grain, [&](std::int64_t lo, std::int64_t hi) {
      gemm_accumulate(pa + lo * k, pb, po + lo * n, hi - lo, k, n, b_finite);
    });
  } else {
    gemm_accumulate(pa, pb, po, m, k, n, b_finite);
  }
  return out;
}

tensor bmm(const tensor& a, const tensor& b) {
  PELTA_CHECK_MSG(a.ndim() == 3 && b.ndim() == 3,
                  "bmm expects 3-d, got " << to_string(a.shape()) << " x " << to_string(b.shape()));
  PELTA_CHECK_MSG(a.size(0) == b.size(0) && a.size(2) == b.size(1),
                  "bmm shape mismatch " << to_string(a.shape()) << " x " << to_string(b.shape()));
  const std::int64_t bt = a.size(0), m = a.size(1), k = a.size(2), n = b.size(2);
  tensor out{shape_t{bt, m, n}};
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.data().data();
  const auto one_batch = [&](std::int64_t i) {
    const float* bslice = pb + i * k * n;
    detail::finite_cache b_finite;  // per batch: each has its own B slice
    gemm_accumulate(pa + i * m * k, bslice, po + i * m * n, m, k, n, b_finite);
  };
  if (bt >= 2 && bt * m * k * n >= k_parallel_flops) {
    parallel_for(bt, one_batch);  // batches write disjoint output slices
  } else {
    for (std::int64_t i = 0; i < bt; ++i) one_batch(i);
  }
  return out;
}

tensor transpose2d(const tensor& a) {
  PELTA_CHECK_MSG(a.ndim() == 2, "transpose2d on " << to_string(a.shape()));
  const std::int64_t m = a.size(0), n = a.size(1);
  tensor out{shape_t{n, m}};
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  return out;
}

tensor transpose_last2(const tensor& a) {
  PELTA_CHECK_MSG(a.ndim() == 3, "transpose_last2 on " << to_string(a.shape()));
  const std::int64_t b = a.size(0), m = a.size(1), n = a.size(2);
  tensor out{shape_t{b, n, m}};
  for (std::int64_t t = 0; t < b; ++t)
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < n; ++j) out.at(t, j, i) = a.at(t, i, j);
  return out;
}

}  // namespace pelta::ops
