// Tensor <-> byte-buffer serialization.
//
// Used by the FL substrate (model updates on the wire) and by the TEE
// secure channel (marshalling across the world boundary, where byte counts
// feed the §VI overhead study).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace pelta {

using byte_buffer = std::vector<std::uint8_t>;

/// Append a tensor (rank, extents, payload) to `out`; returns bytes written.
std::size_t serialize_tensor(const tensor& t, byte_buffer& out);

/// Read one tensor from `buf` starting at `offset`; advances `offset`.
/// Throws pelta::error on truncated or malformed input.
tensor deserialize_tensor(const byte_buffer& buf, std::size_t& offset);

/// Convenience: one tensor to a fresh buffer / from a whole buffer.
byte_buffer to_bytes(const tensor& t);
tensor from_bytes(const byte_buffer& buf);

}  // namespace pelta
