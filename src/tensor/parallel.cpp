#include "tensor/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <thread>
#include <vector>

#include "core/sync.h"
#include "tensor/check.h"

namespace pelta {

namespace {

thread_local int tl_region_depth = 0;  // > 0: executing a pool chunk
thread_local int tl_serial_depth = 0;  // serial_guard nesting
thread_local int tl_thread_limit = 0;  // concurrency_guard cap (0 = none)

// One fork-join loop in flight. Lives on the submitter's stack; the pool
// deque only holds it between submission and completion, and every field
// except `cancelled` is guarded by the pool mutex.
struct pool_job {
  std::int64_t n = 0;
  std::int64_t grain = 1;
  std::int64_t chunk_count = 0;
  const std::function<void(std::int64_t, std::int64_t)>* body = nullptr;
  int width = 1;         // max participating threads, submitter included
  int participants = 1;  // submitter counts itself
  std::int64_t next_chunk = 0;
  int in_flight = 0;  // chunks claimed but not yet retired
  std::atomic<bool> cancelled{false};
  std::exception_ptr error;

  bool drained() const {
    return cancelled.load(std::memory_order_relaxed) || next_chunk >= chunk_count;
  }
  bool finished() const { return drained() && in_flight == 0; }
};

thread_local const pool_job* tl_current_job = nullptr;

}  // namespace

namespace detail {

// Shared state of one submitted task. `claimed` is guarded by the pool
// mutex (claim hand-off between workers and a stealing get() — a different
// object's capability, which GUARDED_BY cannot name from here; the pool's
// methods only touch it under their own mutex_); `done` and `error` by the
// task's own mutex (completion signalling).
struct task_state {
  std::function<void()> body;
  sync::mutex mutex;
  sync::condition_variable finished;
  std::exception_ptr error PELTA_GUARDED_BY(mutex);
  bool claimed = false;
  bool done PELTA_GUARDED_BY(mutex) = false;
};

}  // namespace detail

namespace {

// Execute a task body on the calling thread. Tasks count as parallel
// regions (nested loops run inline, one thread per task) but belong to no
// sweep: a cancelled enclosing parallel_for must not abort an independent
// task that happens to run on the same worker.
void run_task(detail::task_state& task) {
  const pool_job* enclosing = tl_current_job;
  tl_current_job = nullptr;
  ++tl_region_depth;
  std::exception_ptr thrown;
  try {
    task.body();
  } catch (...) {
    thrown = std::current_exception();
  }
  --tl_region_depth;
  tl_current_job = enclosing;
  {
    const sync::lock_guard lock{task.mutex};
    task.error = thrown;
    task.done = true;
  }
  task.finished.notify_all();
}

class thread_pool {
public:
  static thread_pool& instance() {
    static thread_pool pool;
    return pool;
  }

  int max_participants() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run `job` to completion. The calling thread participates; idle workers
  /// join until job.width threads are attached. Returns with job.error set
  /// to the first body exception (if any) and no thread touching `job`.
  void run(pool_job& job) PELTA_EXCLUDES(mutex_) {
    sync::unique_lock lock{mutex_};
    jobs_.push_back(&job);
    if (job.width > 1) work_cv_.notify_all();
    work_on(job, lock);
    while (!job.finished()) done_cv_.wait(lock);
    // Workers release the mutex only while a claimed chunk is in flight, so
    // finished() observed under the lock implies every worker has detached.
    jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), &job), jobs_.end());
  }

  /// Enqueue one task for any idle worker.
  void submit(std::shared_ptr<detail::task_state> task) PELTA_EXCLUDES(mutex_) {
    {
      const sync::lock_guard lock{mutex_};
      tasks_.push_back(std::move(task));
    }
    work_cv_.notify_one();
  }

  /// Wait for `task` to complete. A task still sitting in the queue is
  /// claimed and run by the waiting thread itself, so a get() always makes
  /// progress even when every worker is busy elsewhere.
  void wait_task(const std::shared_ptr<detail::task_state>& task) PELTA_EXCLUDES(mutex_) {
    {
      sync::unique_lock lock{mutex_};
      if (!task->claimed) {
        task->claimed = true;
        tasks_.erase(std::find(tasks_.begin(), tasks_.end(), task));
        lock.unlock();
        run_task(*task);
        return;
      }
    }
    sync::unique_lock lock{task->mutex};
    while (!task->done) task->finished.wait(lock);
  }

private:
  thread_pool() {
    const int workers = parallel_thread_count() - 1;
    workers_.reserve(static_cast<std::size_t>(std::max(workers, 0)));
    for (int t = 0; t < workers; ++t) workers_.emplace_back([this] { worker_loop(); });
  }

  ~thread_pool() {
    {
      const sync::lock_guard lock{mutex_};
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  pool_job* claimable_job() PELTA_REQUIRES(mutex_) {
    for (pool_job* job : jobs_)
      if (!job->drained() && job->participants < job->width) return job;
    return nullptr;
  }

  void worker_loop() PELTA_EXCLUDES(mutex_) {
    sync::unique_lock lock{mutex_};
    for (;;) {
      // Fork-join sweeps first (their submitter is blocked on the join),
      // then queued tasks; shutdown only once both are drained, so no
      // submitted task is ever silently dropped.
      pool_job* job = claimable_job();
      if (job != nullptr) {
        ++job->participants;
        work_on(*job, lock);
        --job->participants;
        if (job->finished()) done_cv_.notify_all();
        continue;
      }
      if (!tasks_.empty()) {
        std::shared_ptr<detail::task_state> task = std::move(tasks_.front());
        tasks_.pop_front();
        task->claimed = true;
        lock.unlock();
        run_task(*task);
        lock.lock();
        continue;
      }
      if (shutdown_) return;
      work_cv_.wait(lock);
    }
  }

  /// Claim and execute chunks of `job` until it drains. Called (and returns)
  /// with the lock held; releases it only around body execution. The body is
  /// opted out of the clang analysis: it drops and re-takes a lock owned by
  /// its CALLER (hand-over-hand through a by-reference scoped lock), an
  /// aliasing pattern the analysis cannot track — the REQUIRES contract on
  /// the declaration is still enforced at every call site. Listed in
  /// docs/ARCHITECTURE.md's lock-discipline exceptions table.
  void work_on(pool_job& job, sync::unique_lock& lock)
      PELTA_REQUIRES(mutex_) PELTA_NO_THREAD_SAFETY_ANALYSIS {
    while (!job.drained()) {
      const std::int64_t chunk = job.next_chunk++;
      ++job.in_flight;
      lock.unlock();

      const std::int64_t lo = chunk * job.grain;
      const std::int64_t hi = std::min(job.n, lo + job.grain);
      const pool_job* enclosing = tl_current_job;
      tl_current_job = &job;
      ++tl_region_depth;
      std::exception_ptr thrown;
      try {
        (*job.body)(lo, hi);
      } catch (...) {
        thrown = std::current_exception();
      }
      --tl_region_depth;
      tl_current_job = enclosing;

      lock.lock();
      --job.in_flight;
      if (thrown) {
        if (!job.error) job.error = thrown;
        job.cancelled.store(true, std::memory_order_relaxed);
      }
      if (job.finished()) done_cv_.notify_all();
    }
  }

  std::vector<std::thread> workers_;
  sync::mutex mutex_;
  sync::condition_variable work_cv_;  // workers: new job/task arrived / shutdown
  sync::condition_variable done_cv_;  // submitters: some job finished
  std::deque<pool_job*> jobs_ PELTA_GUARDED_BY(mutex_);
  std::deque<std::shared_ptr<detail::task_state>> tasks_ PELTA_GUARDED_BY(mutex_);
  bool shutdown_ PELTA_GUARDED_BY(mutex_) = false;
};

}  // namespace

int parallel_thread_count() {
  static const int count = [] {
    if (const char* env = std::getenv("PELTA_THREADS")) {
      const int v = std::atoi(env);
      if (v >= 1) return v;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return count;
}

bool in_parallel_region() { return tl_region_depth > 0; }

bool parallel_cancelled() {
  return tl_current_job != nullptr &&
         tl_current_job->cancelled.load(std::memory_order_relaxed);
}

void parallel_for_range(std::int64_t n, std::int64_t grain,
                        const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (n <= 0) return;

  int width = parallel_thread_count();
  if (tl_thread_limit > 0) width = std::min(width, tl_thread_limit);
  if (grain <= 0) grain = std::max<std::int64_t>(1, n / (8 * static_cast<std::int64_t>(width)));
  const std::int64_t chunk_count = (n + grain - 1) / grain;
  width = static_cast<int>(std::min<std::int64_t>(width, chunk_count));

  // Inline (serial) execution still honors the chunk boundaries, so bodies
  // sized for a grain (e.g. bounded batch memory) behave the same way.
  const auto run_inline = [&] {
    for (std::int64_t lo = 0; lo < n; lo += grain) body(lo, std::min(n, lo + grain));
  };

  if (width <= 1 || tl_region_depth > 0 || tl_serial_depth > 0) {
    run_inline();
    return;
  }

  thread_pool& pool = thread_pool::instance();
  width = std::min(width, pool.max_participants());
  if (width <= 1) {
    run_inline();
    return;
  }

  pool_job job;
  job.n = n;
  job.grain = grain;
  job.chunk_count = chunk_count;
  job.body = &body;
  job.width = width;
  pool.run(job);
  if (job.error) std::rethrow_exception(job.error);
}

void parallel_for(std::int64_t n, std::int64_t grain,
                  const std::function<void(std::int64_t)>& body) {
  parallel_for_range(n, grain, [&body](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      // Cooperative cancellation stays exception-ful: a sibling's failure
      // must never let a loop complete silently with indices skipped. The
      // first real error still wins the rethrow (it is recorded before the
      // cancelled flag becomes visible); this throw also aborts loops
      // running inline under a cancelled enclosing sweep.
      if (parallel_cancelled()) throw error{"parallel_for cancelled by a sibling failure"};
      body(i);
    }
  });
}

void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& body) {
  parallel_for(n, 0, body);
}

task_future::task_future(std::shared_ptr<detail::task_state> state)
    : state_{std::move(state)} {}

void task_future::get() {
  PELTA_CHECK_MSG(state_ != nullptr, "task_future::get on an empty future");
  const std::shared_ptr<detail::task_state> state = std::move(state_);
  bool done;
  {
    const sync::lock_guard lock{state->mutex};
    done = state->done;
  }
  if (!done) thread_pool::instance().wait_task(state);
  if (state->error) std::rethrow_exception(state->error);
}

task_future submit_task(std::function<void()> body) {
  auto state = std::make_shared<detail::task_state>();
  state->body = std::move(body);

  int width = parallel_thread_count();
  if (tl_thread_limit > 0) width = std::min(width, tl_thread_limit);
  const bool inline_now = width <= 1 || tl_serial_depth > 0 || tl_region_depth > 0;
  if (inline_now || thread_pool::instance().max_participants() <= 1)
    run_task(*state);
  else
    thread_pool::instance().submit(state);
  return task_future{std::move(state)};
}

serial_guard::serial_guard() { ++tl_serial_depth; }
serial_guard::~serial_guard() { --tl_serial_depth; }

concurrency_guard::concurrency_guard(int max_threads) : previous_{tl_thread_limit} {
  tl_thread_limit = std::max(max_threads, 1);
}
concurrency_guard::~concurrency_guard() { tl_thread_limit = previous_; }

}  // namespace pelta
